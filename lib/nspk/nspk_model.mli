(** The NSPK / NSL protocols as observational transition systems — the same
    symbolic treatment the paper gives TLS, applied to its comparison
    protocol (Section 3.2, Lowe [6]).

    Nonces are structured, [nonce(owner, peer, seed)], so that secrecy is
    expressible exactly like the paper's inv1 for pre-master secrets: a
    gleanable nonce involves the intruder.  In the [Classic] variant the
    responder-identity field of message 2 carries the inert constant [ca]
    ("absent"); in [Lowe_fixed] it names the responder and initiators check
    it.  The proof campaign in {!Nspk_proofs} then refutes nonce secrecy
    for [Classic] — at the initiator's message-3 transition, which is
    precisely where Lowe's attack bites — and proves it for [Lowe_fixed]. *)

open Kernel
open Core

(** The two protocol variants: the original NSPK and Lowe's fixed NSL. *)
type variant = Classic | Lowe_fixed

(** Sorts (fresh, shared by both variants; [Prin]/[PubKey] come from
    {!Tls.Data}). *)

val nonce : Sort.t
val nseed : Sort.t
val nenc1 : Sort.t
val nenc2 : Sort.t
val nenc3 : Sort.t
val nmsg : Sort.t
val nnet : Sort.t
val useed : Sort.t

(** The data module holding the declarations. *)
val spec : Cafeobj.Spec.t

(** {1 Term builders} *)

val nonce_ : owner:Term.t -> peer:Term.t -> Term.t -> Term.t
val nonce_owner : Term.t -> Term.t
val nonce_peer : Term.t -> Term.t

(** [enc1_ key nonce claimed] *)
val enc1_ : Term.t -> Term.t -> Term.t -> Term.t

(** [enc2_ key n1 n2 responder] — [responder] is [Tls.Data.ca] in the
    classic variant *)
val enc2_ : Term.t -> Term.t -> Term.t -> Term.t -> Term.t

(** [enc3_ key nonce] *)
val enc3_ : Term.t -> Term.t -> Term.t

val m1_ : crt:Term.t -> src:Term.t -> dst:Term.t -> Term.t -> Term.t
val m2_ : crt:Term.t -> src:Term.t -> dst:Term.t -> Term.t -> Term.t
val m3_ : crt:Term.t -> src:Term.t -> dst:Term.t -> Term.t -> Term.t

val e1_key : Term.t -> Term.t
val e1_nonce : Term.t -> Term.t
val e1_prin : Term.t -> Term.t
val e2_key : Term.t -> Term.t
val e2_n1 : Term.t -> Term.t
val e2_n2 : Term.t -> Term.t
val e2_prin : Term.t -> Term.t
val e3_key : Term.t -> Term.t
val e3_nonce : Term.t -> Term.t
val is_m1 : Term.t -> Term.t
val is_m2 : Term.t -> Term.t
val is_m3 : Term.t -> Term.t
val payload1 : Term.t -> Term.t
val payload2 : Term.t -> Term.t
val payload3 : Term.t -> Term.t

(** Membership / gleaning (mirrors {!Tls.Data}): [nmsg_in] over the
    network, [in_cn] the gleanable nonces, [in_ce1/2/3] the replayable
    ciphertexts. *)

val nmsg_in : Term.t -> Term.t -> Term.t
val in_cn : Term.t -> Term.t -> Term.t
val in_ce1 : Term.t -> Term.t -> Term.t
val in_ce2 : Term.t -> Term.t -> Term.t
val in_ce3 : Term.t -> Term.t -> Term.t
val seed_in : Term.t -> Term.t -> Term.t

(** {1 The transition systems} *)

(** [ots variant] — memoized; observers [nw : NProto -> NNet] and
    [usd : NProto -> USeed]; transitions [start], [respond], [finishInit]
    plus six intruder fakes (construct/replay per message kind). *)
val ots : variant -> Ots.t

(** [gen_spec variant] — the memoized generated equational theory of the
    OTS (successor equations, if-rules, if-lifting), the input to the
    prover and to the static independence/symmetry analyses. *)
val gen_spec : variant -> Cafeobj.Spec.t

(** [proof_env variant] — a fresh proof environment over the generated
    equational theory. *)
val proof_env : variant -> Induction.env

val nw : variant -> Term.t -> Term.t
val usd : variant -> Term.t -> Term.t
