open Kernel
module D = Tls.Data
module Spec = Cafeobj.Spec
module Datatype = Cafeobj.Datatype

type variant = Nspk_model.variant = Classic | Lowe_fixed

(* ------------------------------------------------------------------ *)
(* Protocol data: own constructors, shared Prin/Rand/PubKey sorts. *)

let spec = Spec.create ~imports:[ D.spec ] "NSPK-DATA"
let nenc1 = Spec.declare_sort spec "NEnc1"
let nenc2 = Spec.declare_sort spec "NEnc2"
let nenc3 = Spec.declare_sort spec "NEnc3"
let nmsg = Spec.declare_sort spec "NMsg"

let enc1_op =
  Datatype.declare_ctor spec ~sort:nenc1 "nspk-enc1"
    [ "e1-key", D.pub_key; "e1-nonce", D.rand; "e1-prin", D.prin ]

(* The classic message 2 {Na,Nb}pk and Lowe's fix {Na,Nb,B}pk share a
   constructor; the classic variant stores the responder slot as [ca] (a
   principal that never participates), which models "field absent". *)
let enc2_op =
  Datatype.declare_ctor spec ~sort:nenc2 "nspk-enc2"
    [
      "e2-key", D.pub_key; "e2-nonce1", D.rand; "e2-nonce2", D.rand;
      "e2-prin", D.prin;
    ]

let enc3_op =
  Datatype.declare_ctor spec ~sort:nenc3 "nspk-enc3"
    [ "e3-key", D.pub_key; "e3-nonce", D.rand ]

let hdr = [ "crt", D.prin; "src", D.prin; "dst", D.prin ]

let nm1_op =
  Datatype.declare_ctor spec ~sort:nmsg "nm1" (hdr @ [ "nm1-enc", nenc1 ])

let nm2_op =
  Datatype.declare_ctor spec ~sort:nmsg "nm2" (hdr @ [ "nm2-enc", nenc2 ])

let nm3_op =
  Datatype.declare_ctor spec ~sort:nmsg "nm3" (hdr @ [ "nm3-enc", nenc3 ])

let () = List.iter (Datatype.finalize_sort spec) [ nenc1; nenc2; nenc3; nmsg ]

let enc1 k n p = Term.app enc1_op [ k; n; p ]
let enc2 k n1 n2 p = Term.app enc2_op [ k; n1; n2; p ]
let enc3 k n = Term.app enc3_op [ k; n ]
let nm1 ~crt ~src ~dst e = Term.app nm1_op [ crt; src; dst; e ]
let nm2 ~crt ~src ~dst e = Term.app nm2_op [ crt; src; dst; e ]
let nm3 ~crt ~src ~dst e = Term.app nm3_op [ crt; src; dst; e ]

let nonces_pool =
  lazy (Datatype.distinct_constants D.spec ~sort:D.rand [ "nA"; "nB"; "nE" ])

(* ------------------------------------------------------------------ *)
(* Intruder knowledge *)

let name t =
  match Term.view t with Term.App (o, _) -> o.Signature.name | Term.Var _ -> "?"

let args t = match Term.view t with Term.App (_, a) -> a | Term.Var _ -> []

module Algebra = struct
  type t = Term.t

  let compare = Term.compare

  let intruder_key k = Term.equal k (D.pk_ D.intruder)

  let analyze ~knows:_ t =
    match name t, args t with
    | "nm1", [ _; _; _; e ] | "nm2", [ _; _; _; e ] | "nm3", [ _; _; _; e ] ->
      [ e ]
    | "nspk-enc1", (k :: rest) when intruder_key k -> rest
    | "nspk-enc2", (k :: rest) when intruder_key k -> rest
    | "nspk-enc3", (k :: rest) when intruder_key k -> rest
    | _ -> []

  let components t =
    match name t, args t with
    | "nspk-enc1", parts | "nspk-enc2", parts | "nspk-enc3", parts ->
      Some parts
    | "pk", parts -> Some parts
    | _ -> None
end

module K = Dolevyao.Make (Algebra)

(* ------------------------------------------------------------------ *)
(* Scenario and state *)

type scenario = {
  initiators : Term.t list;
  responders : Term.t list;
  nonces : Term.t list;  (** honest principals' fresh-nonce pool *)
  intruder_nonces : Term.t list;  (** the intruder's own nonces *)
  variant : variant;
}

let default_scenario variant =
  let c = Tls.Scenario.cast in
  match Lazy.force nonces_pool with
  | [ na; nb; ne ] ->
    {
      initiators = [ c.alice ];
      responders = [ c.bob ];
      nonces = [ na; nb ];
      intruder_nonces = [ ne ];
      variant;
    }
  | _ -> assert false

type run = { who : Term.t; peer : Term.t; na : Term.t; nb : Term.t option }

module TS = Term.Set

type state = {
  msgs : TS.t;
  used : TS.t;
  istarts : run list;  (** initiator sent message 1 *)
  rruns : run list;  (** responder sent message 2 *)
  rdones : run list;  (** responder accepted message 3 *)
  scen : scenario;
  mutable kn : K.knowledge option;
}

let initial scen =
  {
    msgs = TS.empty;
    used = TS.empty;
    istarts = [];
    rruns = [];
    rdones = [];
    scen;
    kn = None;
  }

let seed scen =
  let prins = scen.initiators @ scen.responders @ [ D.intruder; D.ca ] in
  prins @ List.map D.pk_ prins @ scen.intruder_nonces

let knowledge st =
  match st.kn with
  | Some k -> k
  | None ->
    let k = K.learn K.empty (seed st.scen @ TS.elements st.msgs) in
    st.kn <- Some k;
    k

let run_str r =
  Printf.sprintf "%s-%s-%s-%s" (Term.to_string r.who) (Term.to_string r.peer)
    (Term.to_string r.na)
    (match r.nb with None -> "_" | Some n -> Term.to_string n)

let key st =
  let b = Buffer.create 256 in
  TS.iter (fun m -> Buffer.add_string b (Term.to_string m)) st.msgs;
  Buffer.add_string b "|";
  TS.iter (fun m -> Buffer.add_string b (Term.to_string m)) st.used;
  List.iter
    (fun (tag, runs) ->
      Buffer.add_string b tag;
      List.iter (fun r -> Buffer.add_string b (run_str r)) runs)
    [ "|i:", st.istarts; "|r:", st.rruns; "|d:", st.rdones ];
  Buffer.contents b

let sorted_runs runs = List.sort (fun r1 r2 -> compare (run_str r1) (run_str r2)) runs
let send st m = { st with msgs = TS.add m st.msgs; kn = None }
let fresh st = match List.filter (fun n -> not (TS.mem n st.used)) st.scen.nonces with
  | [] -> None
  | n :: _ -> Some n

type label = { rule : string; info : string }

let pp_label ppf l = Format.fprintf ppf "%-12s %s" l.rule l.info
let label rule terms = { rule; info = String.concat " " (List.map Term.to_string terms) }

(* In the classic variant the "responder identity" slot of message 2 is the
   constant [ca]; honest initiators then do not check it. *)
let absent = D.ca

let msg2_enc st ~resp ~init ~n1 ~n2 =
  match st.scen.variant with
  | Classic -> enc2 (D.pk_ init) n1 n2 absent
  | Lowe_fixed -> enc2 (D.pk_ init) n1 n2 resp

(* ------------------------------------------------------------------ *)
(* Transitions *)

let t_start st =
  match fresh st with
  | None -> []
  | Some na ->
    List.concat_map
      (fun a ->
        List.map
          (fun b ->
            let m = nm1 ~crt:a ~src:a ~dst:b (enc1 (D.pk_ b) na a) in
            ( label "start" [ a; b; na ],
              {
                (send st m) with
                used = TS.add na st.used;
                istarts = sorted_runs ({ who = a; peer = b; na; nb = None } :: st.istarts);
              } ))
          (st.scen.responders @ [ D.intruder ]))
      st.scen.initiators

let t_respond st =
  match fresh st with
  | None -> []
  | Some nb ->
    List.concat_map
      (fun b ->
        List.filter_map
          (fun m ->
            match args m with
            | [ _; _; dst; e ] when Term.equal dst b -> (
              match args e with
              | [ k; na; claimed ] when Term.equal k (D.pk_ b) ->
                let e2 = msg2_enc st ~resp:b ~init:claimed ~n1:na ~n2:nb in
                let m2 = nm2 ~crt:b ~src:b ~dst:claimed e2 in
                Some
                  ( label "respond" [ b; claimed; nb ],
                    {
                      (send st m2) with
                      used = TS.add nb st.used;
                      rruns =
                        sorted_runs
                          ({ who = b; peer = claimed; na; nb = Some nb } :: st.rruns);
                    } )
              | _ -> None)
            | _ -> None)
          (List.filter (fun m -> name m = "nm1") (TS.elements st.msgs)))
      st.scen.responders

let t_finish_init st =
  List.concat_map
    (fun r ->
      (* r.who contacted r.peer with nonce r.na and waits for message 2. *)
      List.filter_map
        (fun m ->
          match args m with
          | [ _; src; dst; e ]
            when Term.equal dst r.who && Term.equal src r.peer -> (
            match args e with
            | [ k; na; nb; named ]
              when Term.equal k (D.pk_ r.who) && Term.equal na r.na
                   && (st.scen.variant = Classic || Term.equal named r.peer) ->
              let m3 = nm3 ~crt:r.who ~src:r.who ~dst:r.peer (enc3 (D.pk_ r.peer) nb) in
              Some (label "finish-init" [ r.who; r.peer; nb ], send st m3)
            | _ -> None)
          | _ -> None)
        (List.filter (fun m -> name m = "nm2") (TS.elements st.msgs)))
    st.istarts

let t_finish_resp st =
  List.concat_map
    (fun r ->
      match r.nb with
      | None -> []
      | Some nb ->
        List.filter_map
          (fun m ->
            match args m with
            | [ _; _; dst; e ] when Term.equal dst r.who ->
              if Term.equal e (enc3 (D.pk_ r.who) nb) then
                Some
                  ( label "finish-resp" [ r.who; r.peer ],
                    { st with rdones = sorted_runs (r :: st.rdones) } )
              else None
            | _ -> None)
          (List.filter (fun m -> name m = "nm3") (TS.elements st.msgs)))
    st.rruns

let all_nonces st = st.scen.nonces @ st.scen.intruder_nonces

let t_fake st =
  let k = knowledge st in
  let fakes = ref [] in
  let push rule m = fakes := (label rule [ m ], send st m) :: !fakes in
  let prins = st.scen.initiators @ st.scen.responders in
  (* Fake message 1 towards responders. *)
  List.iter
    (fun b ->
      List.iter
        (fun n ->
          List.iter
            (fun cl ->
              let e = enc1 (D.pk_ b) n cl in
              if K.derivable k e then
                push "fake-m1" (nm1 ~crt:D.intruder ~src:D.intruder ~dst:b e))
            prins)
        (all_nonces st))
    st.scen.responders;
  (* Fake message 2 towards initiators, seemingly from any peer the
     initiator might be running with (including the intruder itself). *)
  List.iter
    (fun r ->
      List.iter
        (fun n2 ->
          let e = msg2_enc st ~resp:r.peer ~init:r.who ~n1:r.na ~n2 in
          if K.derivable k e then
            push "fake-m2" (nm2 ~crt:D.intruder ~src:r.peer ~dst:r.who e))
        (all_nonces st))
    st.istarts;
  (* Fake message 3 towards responders. *)
  List.iter
    (fun b ->
      List.iter
        (fun n ->
          let e = enc3 (D.pk_ b) n in
          if K.derivable k e then
            push "fake-m3" (nm3 ~crt:D.intruder ~src:D.intruder ~dst:b e))
        (all_nonces st))
    st.scen.responders;
  !fakes

let next st =
  t_start st @ t_respond st @ t_finish_init st @ t_finish_resp st @ t_fake st

let system scen =
  {
    Mc.initial = initial scen;
    next;
    key;
    show_action = (fun l -> Format.asprintf "%a" pp_label l);
  }

(* ------------------------------------------------------------------ *)
(* Properties *)

let honest st p =
  (not (Term.equal p D.intruder))
  && List.exists (Term.equal p) (st.scen.initiators @ st.scen.responders)

let responder_agreement st =
  List.for_all
    (fun r ->
      if honest st r.who && honest st r.peer then
        List.exists
          (fun i ->
            Term.equal i.who r.peer && Term.equal i.peer r.who
            && Term.equal i.na r.na)
          st.istarts
      else true)
    st.rdones

let nonce_secrecy st =
  let k = knowledge st in
  List.for_all
    (fun r ->
      if honest st r.who && honest st r.peer then
        match r.nb with None -> true | Some nb -> not (K.derivable k nb)
      else true)
    st.rruns

let some_responder_done st = st.rdones <> []

(* ------------------------------------------------------------------ *)
(* State-space reduction, justified by the static analyses on the
   generated equational theory of the same protocol. *)

(* Concrete fake rules against the symbolic intruder actions they
   enumerate: each concrete rule covers both the construct and the replay
   action of its message kind. *)
let fake_classes variant =
  let sfx = match variant with Classic -> "-c" | Lowe_fixed -> "-l" in
  List.map
    (fun (rule, acts) -> rule, List.map (fun a -> a ^ sfx) acts)
    [
      "fake-m1", [ "fakeM1c"; "fakeM1r" ];
      "fake-m2", [ "fakeM2c"; "fakeM2r" ];
      "fake-m3", [ "fakeM3c"; "fakeM3r" ];
    ]

type analysis = {
  an_ample : string list;  (** concrete fake rules certified ample *)
  an_indep : Analysis.Indep.result option;
  an_sym : Analysis.Symmetry.result;
}

let analysis_cache : (variant, analysis) Hashtbl.t = Hashtbl.create 2

(* The static pass runs on the *generated equational theory* of the OTS:
   independence of the intruder actions from every action (self included)
   admits them as an ample/flooding set; the symmetry classes over [Rand]
   give the canonization orbit.  Memoized per variant (~0.4 s). *)
let analysis variant =
  match Hashtbl.find_opt analysis_cache variant with
  | Some a -> a
  | None ->
    let gspec = Nspk_model.gen_spec variant in
    let classes = fake_classes variant in
    let focus = List.concat_map snd classes in
    let indep = Analysis.Indep.analyze ~focus gspec in
    let ample =
      match indep with
      | None -> []
      | Some r ->
        let certified = Analysis.Indep.certified_ample r focus in
        List.filter_map
          (fun (rule, acts) ->
            if List.for_all (fun a -> List.mem a certified) acts then
              Some rule
            else None)
          classes
    in
    let sym = Analysis.Symmetry.analyze gspec in
    let a = { an_ample = ample; an_indep = indep; an_sym = sym } in
    Hashtbl.replace analysis_cache variant a;
    a

let independence variant = (analysis variant).an_indep
let symmetries variant = (analysis variant).an_sym

(* Swap constants through a state: simultaneous image under the
   permutation [map], rebuilding every stored term. *)
let remap_term map t =
  let rec go t =
    match Term.view t with
    | Term.Var _ -> t
    | Term.App (_, []) -> (
      match List.find_opt (fun (c, _) -> Term.equal c t) map with
      | Some (_, d) -> d
      | None -> t)
    | Term.App (o, args) -> Term.app_unchecked o (List.map go args)
  in
  go t

let remap_run map r =
  {
    r with
    na = remap_term map r.na;
    nb = Option.map (remap_term map) r.nb;
  }

let remap_state map st =
  if List.for_all (fun (c, d) -> Term.equal c d) map then st
  else
    {
      st with
      msgs = TS.map (remap_term map) st.msgs;
      used = TS.map (remap_term map) st.used;
      istarts = sorted_runs (List.map (remap_run map) st.istarts);
      rruns = sorted_runs (List.map (remap_run map) st.rruns);
      rdones = sorted_runs (List.map (remap_run map) st.rdones);
      kn = None;
    }

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        List.map
          (fun p -> x :: p)
          (permutations (List.filter (fun y -> not (Term.equal y x)) l)))
      l

(* Orbit minimization over the interchangeable-nonce pool: the canonical
   representative is the permutation image with the smallest key, which
   makes canonization idempotent by construction. *)
let canon_over pool =
  if List.length pool < 2 then fun st -> st
  else
    let maps = List.map (List.combine pool) (permutations pool) in
    fun st ->
      let best = ref st and best_key = ref (key st) in
      List.iter
        (fun map ->
          let st' = remap_state map st in
          let k' = key st' in
          if String.compare k' !best_key < 0 then begin
            best := st';
            best_key := k'
          end)
        maps;
      !best

let reduction ?(por = true) ?(symmetry = true) scen =
  let a = analysis scen.variant in
  let ample =
    if por then fun (l : label) -> List.mem l.rule a.an_ample
    else fun _ -> false
  in
  let canon =
    if symmetry then
      (* Only the scenario's honest-nonce pool is interchangeable: the
         intruder's own nonces are part of its (asymmetric) identity. *)
      canon_over
        (Analysis.Symmetry.orbit_elems a.an_sym ~candidates:scen.nonces)
    else fun st -> st
  in
  { Mc.ample; canon }

(* Re-exports: the symbolic OTS treatment (model + proof campaign). *)
module Symbolic = Nspk_model
module Symbolic_proofs = Nspk_proofs
