open Kernel

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type scope = {
  spec : Spec.t;
  mutable vars : (string * Sort.t) list;
}

type env = {
  modules : (string, scope) Hashtbl.t;
  mutable last : scope option;
  mutable opened : scope option;
  mutable scratch_counter : int;
  mutable eq_counter : int;
  mutable tracing : bool;
  mutable uncached : bool;
  mutable indexing : bool;
}

let create () =
  {
    modules = Hashtbl.create 16;
    last = None;
    opened = None;
    scratch_counter = 0;
    eq_counter = 0;
    tracing = false;
    uncached = false;
    indexing = true;
  }

let set_tracing env on = env.tracing <- on
let set_uncached env on = env.uncached <- on
let set_indexing env on = env.indexing <- on

let find_module env name =
  Option.map (fun sc -> sc.spec) (Hashtbl.find_opt env.modules name)

type reduction = {
  input : Term.t;
  normal_form : Term.t;
  steps : int;
  trace : Trace.step list option;
}

type output =
  | Defined of string
  | Reduced of reduction
  | Opened of string
  | Closed
  | Shown of string

(* ------------------------------------------------------------------ *)
(* Term elaboration *)

let sort_named name =
  if Sort.mem name then Sort.find name else fail "unknown sort %s" name

let rec elaborate sc (t : Parser.term) : Term.t =
  match t with
  | Parser.TTrue -> Term.tt
  | Parser.TFalse -> Term.ff
  | Parser.TNot t -> Term.not_ (elaborate sc t)
  | Parser.TBin (op, l, r) ->
    let l = elaborate sc l and r = elaborate sc r in
    (match op with
    | "and" -> Term.and_ l r
    | "or" -> Term.or_ l r
    | "xor" -> Term.xor l r
    | "implies" -> Term.implies l r
    | "iff" -> Term.iff l r
    | other -> fail "unknown connective %s" other)
  | Parser.TEq (l, r) ->
    let l = elaborate sc l and r = elaborate sc r in
    (try Term.eq l r with Invalid_argument m -> fail "%s" m)
  | Parser.TIf (c, t, e) ->
    let c = elaborate sc c and t = elaborate sc t and e = elaborate sc e in
    (try Term.ite c t e with Invalid_argument m -> fail "%s" m)
  | Parser.TIdent name -> (
    match List.assoc_opt name sc.vars with
    | Some sort -> Term.var name sort
    | None -> (
      match Spec.find_op sc.spec name with
      | Some op when op.Signature.arity = [] -> Term.const op
      | Some _ -> fail "operator %s expects arguments" name
      | None -> fail "unknown identifier %s" name))
  | Parser.TApp (name, targs) -> (
    match Spec.find_op sc.spec name with
    | None -> fail "unknown operator %s" name
    | Some op ->
      let args = List.map (elaborate sc) targs in
      (try Term.app op args with Invalid_argument m -> fail "%s" m))

(* ------------------------------------------------------------------ *)
(* Declarations *)

let attr_of = function
  | "ctor" -> Signature.Ctor
  | "assoc" -> Signature.Ac
  | "comm" -> Signature.Comm
  | a -> fail "unknown attribute %s" a

(* Declarations are evaluated with their source position: the position is
   recorded in the spec (keys ["sort:..."], ["op:..."], ["eq:<label>"]) so
   later diagnostics — the linter's, or a late [Rewrite.rule] variable
   check — can cite the offending line, and any error raised while
   elaborating the declaration is prefixed with it. *)
let eval_decl env sc ({ Parser.decl = d; dpos } : Parser.ldecl) =
  let record key = Spec.record_pos sc.spec key (dpos.Lexer.line, dpos.Lexer.col) in
  let located f =
    try f () with
    | Error m -> raise (Error (Printf.sprintf "line %d, col %d: %s" dpos.Lexer.line dpos.Lexer.col m))
    | Invalid_argument m ->
      raise (Error (Printf.sprintf "line %d, col %d: %s" dpos.Lexer.line dpos.Lexer.col m))
  in
  located @@ fun () ->
  match d with
  | Parser.DImport _ -> ()  (* imports are resolved at module creation *)
  | Parser.DSorts names ->
    List.iter
      (fun n ->
        record ("sort:" ^ n);
        ignore (Spec.declare_sort sc.spec n))
      names
  | Parser.DHSort name ->
    record ("sort:" ^ name);
    ignore (Spec.declare_hsort sc.spec name)
  | Parser.DOp { op_name; arity; sort; attrs } ->
    record ("op:" ^ op_name);
    let arity = List.map sort_named arity in
    let sort = sort_named sort in
    let attrs = List.map attr_of attrs in
    ignore (Spec.declare_op sc.spec op_name arity sort ~attrs)
  | Parser.DVars (names, sort) ->
    let sort = sort_named sort in
    sc.vars <- sc.vars @ List.map (fun n -> n, sort) names
  | Parser.DEq (lhs, rhs) ->
    env.eq_counter <- env.eq_counter + 1;
    let label = Printf.sprintf "%s-eq-%d" (Spec.name sc.spec) env.eq_counter in
    record ("eq:" ^ label);
    let lhs = elaborate sc lhs and rhs = elaborate sc rhs in
    Spec.add_eq sc.spec ~label lhs rhs
  | Parser.DCeq (lhs, rhs, cond) ->
    env.eq_counter <- env.eq_counter + 1;
    let label = Printf.sprintf "%s-ceq-%d" (Spec.name sc.spec) env.eq_counter in
    record ("eq:" ^ label);
    let lhs = elaborate sc lhs
    and rhs = elaborate sc rhs
    and cond = elaborate sc cond in
    Spec.add_ceq sc.spec ~label lhs rhs ~cond

(* Free-constructor semantics: after elaborating a module, every sort that
   received [ctor] operators gets its recognizers and no-confusion equality
   theory, as in Section 4.2 of the paper. *)
let finalize_ctors sc =
  let ctor_sorts =
    List.filter_map
      (fun (o : Signature.op) ->
        if Signature.is_ctor o then Some o.Signature.sort else None)
      (Spec.own_ops sc.spec)
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (s : Sort.t) ->
      if not (Hashtbl.mem seen s.Sort.name) then begin
        Hashtbl.add seen s.Sort.name ();
        Datatype.finalize_sort sc.spec s
      end)
    ctor_sorts

let imports_of env decls =
  List.filter_map
    (fun (ld : Parser.ldecl) ->
      match ld.Parser.decl with
      | Parser.DImport name -> (
        match Hashtbl.find_opt env.modules name with
        | Some sc -> Some sc.spec
        | None -> fail "unknown module %s" name)
      | _ -> None)
    decls

let scope_for_red env in_module =
  match in_module with
  | Some name -> (
    match Hashtbl.find_opt env.modules name with
    | Some sc -> sc
    | None -> fail "unknown module %s" name)
  | None -> (
    match env.opened with
    | Some sc -> sc
    | None -> (
      match env.last with
      | Some sc -> sc
      | None -> fail "no module to reduce in"))

let eval env (phrase : Parser.toplevel) =
  match phrase with
  | Parser.TModule (name, decls) ->
    let spec = Spec.create ~imports:(imports_of env decls) name in
    let sc = { spec; vars = [] } in
    List.iter (eval_decl env sc) decls;
    finalize_ctors sc;
    (* [if_then_else] is available at every sort the module declares. *)
    List.iter (Builtins.add_if_rules spec) (Sort.bool :: Spec.sorts spec);
    Hashtbl.replace env.modules name sc;
    env.last <- Some sc;
    Defined name
  | Parser.TRed (in_module, t) ->
    let sc = scope_for_red env in_module in
    let input = elaborate sc t in
    let sys = Spec.system sc.spec in
    (* [Spec.system] is cached per spec; re-assert the env's choice each
       red so flipping the flag mid-session takes effect. *)
    Rewrite.set_indexing sys env.indexing;
    let before = Rewrite.steps sys in
    if env.tracing then begin
      let normal_form, deriv = Rewrite.normalize_traced sys input in
      Reduced
        {
          input;
          normal_form;
          steps = Rewrite.steps sys - before;
          trace = Some (Trace.linearize deriv);
        }
    end
    else
      let normal_form =
        if env.uncached then Rewrite.normalize_uncached sys input
        else Rewrite.normalize sys input
      in
      Reduced { input; normal_form; steps = Rewrite.steps sys - before; trace = None }
  | Parser.TOpen name -> (
    match Hashtbl.find_opt env.modules name with
    | None -> fail "unknown module %s" name
    | Some target ->
      env.scratch_counter <- env.scratch_counter + 1;
      let spec =
        Spec.create ~imports:[ target.spec ]
          (Printf.sprintf "%%scratch-%d" env.scratch_counter)
      in
      env.opened <- Some { spec; vars = target.vars };
      Opened name)
  | Parser.TClose ->
    env.opened <- None;
    Closed
  | Parser.TDecl d -> (
    match env.opened with
    | Some sc ->
      eval_decl env sc d;
      Defined (Spec.name sc.spec)
    | None -> fail "declarations outside a module require an open module")
  | Parser.TShow name -> (
    match Hashtbl.find_opt env.modules name with
    | None -> fail "unknown module %s" name
    | Some sc -> Shown (Format.asprintf "%a" Spec.pp sc.spec))

let eval_string env src =
  List.map (fun (phrase, _pos) -> eval env phrase) (Parser.parse_string src)

let reduce_string env src =
  let outputs = eval_string env src in
  match
    List.filter_map (function Reduced r -> Some r | _ -> None) outputs
    |> List.rev
  with
  | r :: _ -> r
  | [] -> fail "no reduction performed"

let pp_output ppf = function
  | Defined name -> Format.fprintf ppf "defined module %s" name
  | Reduced r -> (
    Format.fprintf ppf "@[<v2>reduce %a@," Term.pp r.input;
    (match r.trace with
    | None | Some [] -> ()
    | Some steps -> Format.fprintf ppf "%a@," Trace.pp_steps steps);
    Format.fprintf ppf "result: %a (%d rewrites)@]" Term.pp r.normal_form r.steps)
  | Opened name -> Format.fprintf ppf "opened %s" name
  | Closed -> Format.pp_print_string ppf "closed"
  | Shown text -> Format.pp_print_string ppf text
