(** Parser for the mini-CafeOBJ concrete syntax.

    Grammar (terms use prefix application plus infix boolean connectives
    and [==] for the equality predicate):

    {v
    toplevel ::= "mod" NAME "{" decl* "}"
               | "red" [ "in" NAME ":" ] term "."
               | "open" NAME | "close"
               | "show" NAME
    decl     ::= "pr" "(" NAME ")"
               | "[" NAME+ "]"                      -- visible sorts
               | "*[" NAME "]*"                     -- hidden sort
               | "op" NAME ":" NAME* "->" NAME [ "{" attr+ "}" ] "."
               | "var"|"vars" NAME+ ":" NAME "."
               | "eq" term "=" term "."
               | "ceq" term "=" term "if" term "."
    attr     ::= "ctor" | "assoc" | "comm"
    term     ::= term "iff" term | term "implies" term
               | term ("or"|"xor") term | term "and" term
               | "not" term | term "==" term
               | "if" term "then" term "else" term "fi"
               | "true" | "false" | NAME | NAME "(" term ("," term)* ")"
               | "(" term ")"
    v} *)

type term =
  | TIdent of string
  | TApp of string * term list
  | TTrue
  | TFalse
  | TNot of term
  | TBin of string * term * term  (** "and" | "or" | "xor" | "implies" | "iff" *)
  | TEq of term * term
  | TIf of term * term * term

type decl =
  | DImport of string
  | DSorts of string list
  | DHSort of string
  | DOp of {
      op_name : string;
      arity : string list;
      sort : string;
      attrs : string list;
    }
  | DVars of string list * string
  | DEq of term * term
  | DCeq of term * term * term

(** A declaration located at its source position (the position of the
    declaration's first token). *)
type ldecl = { decl : decl; dpos : Lexer.pos }

type toplevel =
  | TModule of string * ldecl list
  | TRed of string option * term
  | TOpen of string
  | TClose
  | TShow of string
  | TDecl of ldecl
      (** a bare declaration, allowed between [open] and [close] (the
          paper's proof passages declare constants and assumption
          equations there) *)

(** A parsed program: toplevel phrases with their source positions. *)
type program = (toplevel * Lexer.pos) list

(** Raised with a message prefixed by ["line L, col C: "]. *)
exception Error of string

(** [parse tokens] parses a whole program (a list of located toplevel
    phrases). *)
val parse : (Lexer.token * Lexer.pos) list -> program

(** [parse_string src] = lex + parse. *)
val parse_string : string -> program

(** [parse_term_string src] parses a single term (for the REPL and tests). *)
val parse_term_string : string -> term
