open Kernel

let arg_vars prefix fields =
  List.mapi
    (fun i (_, s) -> Term.var (Printf.sprintf "%s%d" prefix i) s)
    fields

let declare_ctor spec ~sort name fields =
  let ctor =
    Spec.declare_op spec name (List.map snd fields) sort
      ~attrs:[ Signature.Ctor ]
  in
  let xs = arg_vars "X" fields in
  List.iteri
    (fun i (proj_name, field_sort) ->
      let proj =
        Spec.declare_op spec proj_name [ sort ] field_sort ~attrs:[]
      in
      Spec.add_eq spec
        ~label:(Printf.sprintf "proj-%s-%s" proj_name name)
        (Term.app proj [ Term.app ctor xs ])
        (List.nth xs i))
    fields;
  ctor

let ctor_pattern prefix (ctor : Signature.op) =
  let vars =
    List.mapi
      (fun i s -> Term.var (Printf.sprintf "%s%d" prefix i) s)
      ctor.Signature.arity
  in
  Term.app ctor vars, vars

let equality_rules_for ~ctors sort =
  let x = Term.var "X" sort in
  let refl =
    Rewrite.rule ~label:(Printf.sprintf "eq-refl-%s" sort.Sort.name)
      (Term.eq x x) Term.tt
  in
  refl
  :: List.concat_map
    (fun (c : Signature.op) ->
      List.map
        (fun (d : Signature.op) ->
          let cpat, cvars = ctor_pattern "X" c in
          let dpat, dvars = ctor_pattern "Y" d in
          let label =
            Printf.sprintf "eq-%s-%s" c.Signature.name d.Signature.name
          in
          if Signature.op_equal c d then
            let rhs = Term.conj (List.map2 Term.eq cvars dvars) in
            Rewrite.rule ~label (Term.eq cpat dpat) rhs
          else Rewrite.rule ~label (Term.eq cpat dpat) Term.ff)
        ctors)
       ctors

let distinct_constants spec ~sort names =
  let existing_constants () =
    List.filter
      (fun (o : Signature.op) ->
        Signature.is_ctor o && o.Signature.arity = []
        && Sort.equal o.Signature.sort sort)
      (Spec.own_ops spec)
  in
  (* Recognizers of this sort's finalized constructors: each must also
     reject the new constants, or terms like [intruder?(alice)] get stuck
     (the completeness linter flags exactly this). *)
  let recognizers =
    List.filter_map
      (fun (o : Signature.op) ->
        if Signature.is_ctor o && Sort.equal o.Signature.sort sort then
          match Spec.find_op spec (o.Signature.name ^ "?") with
          | Some r
            when r.Signature.arity = [ sort ]
                 && Sort.equal r.Signature.sort Sort.bool ->
            Some r
          | _ -> None
        else None)
      (Spec.own_ops spec)
  in
  List.map
    (fun name ->
      let others = existing_constants () in
      let c = Spec.declare_op spec name [] sort ~attrs:[ Signature.Ctor ] in
      let ct = Term.const c in
      List.iter
        (fun (o : Signature.op) ->
          let ot = Term.const o in
          Spec.add_eq spec
            ~label:(Printf.sprintf "neq-%s-%s" name o.Signature.name)
            (Term.eq ct ot) Term.ff;
          Spec.add_eq spec
            ~label:(Printf.sprintf "neq-%s-%s" o.Signature.name name)
            (Term.eq ot ct) Term.ff)
        others;
      List.iter
        (fun (r : Signature.op) ->
          Spec.add_eq spec
            ~label:(Printf.sprintf "recog-%s-%s" r.Signature.name name)
            (Term.app r [ ct ]) Term.ff)
        recognizers;
      ct)
    names

let finalize_sort spec sort =
  let ctors =
    List.filter
      (fun (o : Signature.op) ->
        Signature.is_ctor o && Sort.equal o.Signature.sort sort)
      (Spec.own_ops spec)
  in
  (* Recognizers. *)
  List.iter
    (fun (c : Signature.op) ->
      let recog =
        Spec.declare_op spec (c.Signature.name ^ "?") [ sort ] Sort.bool
          ~attrs:[]
      in
      List.iter
        (fun (d : Signature.op) ->
          let dpat, _ = ctor_pattern "X" d in
          let value = Term.bool_ (Signature.op_equal c d) in
          Spec.add_eq spec
            ~label:(Printf.sprintf "recog-%s-%s" c.Signature.name d.Signature.name)
            (Term.app recog [ dpat ])
            value)
        ctors)
    ctors;
  (* No-confusion equality theory. *)
  List.iter (Spec.add_rule spec) (equality_rules_for ~ctors sort)
