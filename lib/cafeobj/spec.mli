(** CafeOBJ-style specification modules.

    A module owns a signature fragment and a list of equations, and may
    import other modules (CafeOBJ's [pr(...)], protecting import).  The
    equations of a module and its imports, oriented left-to-right, form the
    rewrite system used by the [red] command (Section 2.1 of the paper).

    Modules are mutable while being defined and are typically frozen by the
    first call to {!reduce}; adding declarations later simply invalidates the
    cached rewrite system. *)

open Kernel

type t

(** [create ?imports name] makes an empty module.  Every module implicitly
    imports the builtin [BOOL] ({!Builtins.bool_spec}); pass
    [~bool:false] to opt out (used only by [BOOL] itself). *)
val create : ?bool:bool -> ?imports:t list -> string -> t

val name : t -> string
val imports : t -> t list

(** [branch base name] is a fresh child module importing [base]: it sees
    everything [base] declares, while its own declarations (fresh proof
    constants) and its rewrite system's memo table and step counter are
    private.  Proof cases each run in their own branch, which is what makes
    them safe to execute on separate domains — the shared base is only
    read.  O(1); the child's rewrite system is built on first use. *)
val branch : t -> string -> t

(** [declare_sort m name] interns a visible sort and records it as declared
    by [m]. *)
val declare_sort : t -> string -> Sort.t

(** [declare_hsort m name] interns a hidden sort (state space). *)
val declare_hsort : t -> string -> Sort.t

(** [declare_op m name arity sort ~attrs] declares an operator in [m]'s
    signature fragment. *)
val declare_op :
  t -> string -> Sort.t list -> Sort.t -> attrs:Signature.attr list -> Signature.op

(** [find_op m name] resolves [name] in [m]'s signature or, failing that, in
    its imports (depth-first) and the builtins. *)
val find_op : t -> string -> Signature.op option

(** [sorts m] lists the sorts declared by [m] itself. *)
val sorts : t -> Sort.t list

(** [own_ops m] lists the operators declared by [m] itself. *)
val own_ops : t -> Signature.op list

(** [all_ops m] lists the operators visible in [m] (own + imports,
    duplicates removed, own first). *)
val all_ops : t -> Signature.op list

(** [add_eq m ~label lhs rhs] records the equation [lhs = rhs]. *)
val add_eq : t -> label:string -> Term.t -> Term.t -> unit

(** [add_ceq m ~label lhs rhs ~cond] records the conditional equation
    [lhs = rhs if cond]. *)
val add_ceq : t -> label:string -> Term.t -> Term.t -> cond:Term.t -> unit

(** [add_rule m rule] records a pre-built rule. *)
val add_rule : t -> Rewrite.rule -> unit

(** [own_rules m] lists the equations declared by [m] itself, in order. *)
val own_rules : t -> Rewrite.rule list

(** [all_rules m] lists [m]'s rules followed by its imports' (own rules take
    precedence, imports depth-first, duplicates by label removed). *)
val all_rules : t -> Rewrite.rule list

(** [system m] is the rewrite system of [m] (cached; invalidated by any
    [add_*]). *)
val system : t -> Rewrite.system

(** [reduce m t] is CafeOBJ's [red t .] in module [m]: the normal form of
    [t]. *)
val reduce : t -> Term.t -> Term.t

(** [reduce_in m ~assumptions t] is [red] inside an [open m ... close]
    proof passage: the assumption equations extend the system, then [t] is
    normalized.  Assumptions are pairs [(lhs, rhs)] oriented as given. *)
val reduce_in : t -> assumptions:(Term.t * Term.t) list -> Term.t -> Term.t

(** [record_pos m key (line, col)] records the source position of a
    declaration.  Keys are ["eq:<label>"], ["op:<name>"] and
    ["sort:<name>"]; the first recording of a key wins.  Generated specs
    record nothing — diagnostics then simply omit the location. *)
val record_pos : t -> string -> int * int -> unit

(** [pos_of m key] looks a declaration's position up in [m] and,
    depth-first, its imports. *)
val pos_of : t -> string -> (int * int) option

val pp : Format.formatter -> t -> unit

(**/**)

(** Internal: the BOOL module; exposed for {!Builtins}. *)
val bool_spec : t Lazy.t
