open Kernel

type t = {
  name : string;
  imports : t list;
  signature : Signature.t;
  mutable own_sorts : Sort.t list;
  mutable equations : Rewrite.rule list;  (** reverse order *)
  mutable cached_system : Rewrite.system option;
  positions : (string, int * int) Hashtbl.t;
      (** source positions keyed by ["eq:<label>"], ["op:<name>"],
          ["sort:<name>"] *)
}

(* The builtin BOOL module implicitly imported everywhere: constant folding
   only, so that it composes with arbitrary data-level rule sets without
   blow-up.  The complete Hsiang system (paper, Section 2.1) is available
   separately as [Builtins.hsiang_spec]. *)
let rec bool_spec =
  lazy
    (let m = create_raw ~imports:[] "BOOL" in
     m.own_sorts <- [ Sort.bool ];
     m.equations <- List.rev (Boolring.const_rules ());
     m)

and create_raw ~imports name =
  {
    name;
    imports;
    signature = Signature.create ();
    own_sorts = [];
    equations = [];
    cached_system = None;
    positions = Hashtbl.create 16;
  }

let create ?(bool = true) ?(imports = []) name =
  let imports = if bool then imports @ [ Lazy.force bool_spec ] else imports in
  create_raw ~imports name

(* A branch is a child module importing [base]: it sees every sort,
   operator and rule of the base, while its own declarations (typically the
   fresh constants of one proof case) land in its private signature and its
   [system] carries a private memo table and step counter.  This is what
   makes proof cases independent enough to run on separate domains — the
   base spec is only ever read. *)
let branch base name = create_raw ~imports:[ base ] name

let name m = m.name
let imports m = m.imports

let invalidate m = m.cached_system <- None

let record_pos m key pos =
  if not (Hashtbl.mem m.positions key) then Hashtbl.add m.positions key pos

let rec pos_of m key =
  match Hashtbl.find_opt m.positions key with
  | Some _ as r -> r
  | None -> List.find_map (fun i -> pos_of i key) m.imports

let declare_sort m sort_name =
  let s = Sort.visible sort_name in
  if not (List.exists (Sort.equal s) m.own_sorts) then
    m.own_sorts <- m.own_sorts @ [ s ];
  s

let declare_hsort m sort_name =
  let s = Sort.hidden sort_name in
  if not (List.exists (Sort.equal s) m.own_sorts) then
    m.own_sorts <- m.own_sorts @ [ s ];
  s

(* Declaring an operator alone cannot change the rewrite relation (rules
   are added separately), so the cached system stays valid — proof
   campaigns declare thousands of fresh constants and must not pay a system
   rebuild for each. *)
let declare_op m op_name arity sort ~attrs =
  Signature.declare m.signature op_name arity sort ~attrs

let builtin_by_name op_name =
  let module B = Signature.Builtin in
  List.find_opt
    (fun (o : Signature.op) -> String.equal o.Signature.name op_name)
    [ B.tt; B.ff; B.not_; B.and_; B.or_; B.xor; B.implies; B.iff ]

let rec find_op m op_name =
  match Signature.find_opt m.signature op_name with
  | Some _ as r -> r
  | None -> (
    match List.find_map (fun i -> find_op i op_name) m.imports with
    | Some _ as r -> r
    | None -> builtin_by_name op_name)

let sorts m = m.own_sorts
let own_ops m = Signature.ops m.signature

let all_ops m =
  let rec collect acc m =
    let acc =
      List.fold_left
        (fun acc o ->
          if List.exists (Signature.op_equal o) acc then acc else acc @ [ o ])
        acc (own_ops m)
    in
    List.fold_left collect acc m.imports
  in
  collect [] m

let add_rule m rule =
  invalidate m;
  m.equations <- rule :: m.equations

let add_eq m ~label lhs rhs = add_rule m (Rewrite.rule ~label lhs rhs)

let add_ceq m ~label lhs rhs ~cond =
  add_rule m (Rewrite.rule ~label ~cond lhs rhs)

let own_rules m = List.rev m.equations

let all_rules m =
  let seen = Hashtbl.create 64 in
  let keep (r : Rewrite.rule) =
    if Hashtbl.mem seen r.Rewrite.label then false
    else begin
      Hashtbl.add seen r.Rewrite.label ();
      true
    end
  in
  let rec collect m =
    List.filter keep (own_rules m) @ List.concat_map collect m.imports
  in
  collect m

let system m =
  match m.cached_system with
  | Some sys -> sys
  | None ->
    let sys = Rewrite.make (all_rules m) in
    m.cached_system <- Some sys;
    sys

let reduce m t = Rewrite.normalize (system m) t

let reduce_in m ~assumptions t =
  let rules =
    List.mapi
      (fun i (lhs, rhs) ->
        Rewrite.rule ~label:(Printf.sprintf "assumption-%d" i) lhs rhs)
      assumptions
  in
  Rewrite.normalize (Rewrite.extend (system m) rules) t

let pp ppf m =
  Format.fprintf ppf "@[<v2>mod %s {" m.name;
  List.iter
    (fun i -> Format.fprintf ppf "@,pr(%s)" i.name)
    m.imports;
  List.iter (fun s -> Format.fprintf ppf "@,[%a]" Sort.pp s) m.own_sorts;
  List.iter (fun o -> Format.fprintf ppf "@,%a ." Signature.pp_op o) (own_ops m);
  List.iter (fun r -> Format.fprintf ppf "@,%a ." Rewrite.pp_rule r) (own_rules m);
  Format.fprintf ppf "@]@,}"
