type term =
  | TIdent of string
  | TApp of string * term list
  | TTrue
  | TFalse
  | TNot of term
  | TBin of string * term * term
  | TEq of term * term
  | TIf of term * term * term

type decl =
  | DImport of string
  | DSorts of string list
  | DHSort of string
  | DOp of {
      op_name : string;
      arity : string list;
      sort : string;
      attrs : string list;
    }
  | DVars of string list * string
  | DEq of term * term
  | DCeq of term * term * term

type ldecl = { decl : decl; dpos : Lexer.pos }

type toplevel =
  | TModule of string * ldecl list
  | TRed of string option * term
  | TOpen of string
  | TClose
  | TShow of string
  | TDecl of ldecl

type program = (toplevel * Lexer.pos) list

exception Error of string

type stream = { mutable toks : (Lexer.token * Lexer.pos) list }

let cur_pos st =
  match st.toks with
  | [] -> { Lexer.line = 0; col = 0 }
  | (_, p) :: _ -> p

let fail st fmt =
  let p = cur_pos st in
  Printf.ksprintf
    (fun s -> raise (Error (Printf.sprintf "line %d, col %d: %s" p.Lexer.line p.Lexer.col s)))
    fmt

let peek st = match st.toks with [] -> Lexer.EOF | (t, _) :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let got = peek st in
  if got <> tok then
    fail st "expected %s but found %s"
      (Format.asprintf "%a" Lexer.pp_token tok)
      (Format.asprintf "%a" Lexer.pp_token got)
  else advance st

let ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> fail st "expected an identifier, found %s" (Format.asprintf "%a" Lexer.pp_token t)

(* ------------------------------------------------------------------ *)
(* Terms, by precedence climbing *)

let rec term st = iff_term st

and iff_term st =
  let lhs = implies_term st in
  match peek st with
  | Lexer.KW "iff" ->
    advance st;
    TBin ("iff", lhs, iff_term st)
  | _ -> lhs

and implies_term st =
  let lhs = or_term st in
  match peek st with
  | Lexer.KW "implies" ->
    advance st;
    (* right-associative, as in CafeOBJ *)
    TBin ("implies", lhs, implies_term st)
  | _ -> lhs

and or_term st =
  let lhs = and_term st in
  match peek st with
  | Lexer.KW (("or" | "xor") as op) ->
    advance st;
    TBin (op, lhs, or_term st)
  | _ -> lhs

and and_term st =
  let lhs = eq_term st in
  match peek st with
  | Lexer.KW "and" ->
    advance st;
    TBin ("and", lhs, and_term st)
  | _ -> lhs

and eq_term st =
  let lhs = unary_term st in
  match peek st with
  | Lexer.EQEQ ->
    advance st;
    TEq (lhs, unary_term st)
  | _ -> lhs

and unary_term st =
  match peek st with
  | Lexer.KW "not" ->
    advance st;
    TNot (unary_term st)
  | _ -> atom_term st

and atom_term st =
  match peek st with
  | Lexer.KW "true" ->
    advance st;
    TTrue
  | Lexer.KW "false" ->
    advance st;
    TFalse
  | Lexer.KW "if" ->
    advance st;
    let c = term st in
    expect st (Lexer.KW "then");
    let t = term st in
    expect st (Lexer.KW "else");
    let e = term st in
    expect st (Lexer.KW "fi");
    TIf (c, t, e)
  | Lexer.LPAREN ->
    advance st;
    let t = term st in
    expect st Lexer.RPAREN;
    t
  | Lexer.IDENT name -> (
    advance st;
    match peek st with
    | Lexer.LPAREN ->
      advance st;
      let rec args acc =
        let a = term st in
        match peek st with
        | Lexer.COMMA ->
          advance st;
          args (a :: acc)
        | Lexer.RPAREN ->
          advance st;
          List.rev (a :: acc)
        | t -> fail st "expected ',' or ')' in arguments, found %s"
                 (Format.asprintf "%a" Lexer.pp_token t)
      in
      TApp (name, args [])
    | _ -> TIdent name)
  | t -> fail st "unexpected %s in term" (Format.asprintf "%a" Lexer.pp_token t)

(* ------------------------------------------------------------------ *)
(* Declarations and toplevel phrases *)

let idents_until st stop =
  let rec go acc =
    match peek st with
    | Lexer.IDENT s ->
      advance st;
      go (s :: acc)
    | t when t = stop -> List.rev acc
    | t -> fail st "expected identifier or %s, found %s"
             (Format.asprintf "%a" Lexer.pp_token stop)
             (Format.asprintf "%a" Lexer.pp_token t)
  in
  go []

let attrs st =
  match peek st with
  | Lexer.LBRACE ->
    advance st;
    let rec go acc =
      match peek st with
      | Lexer.KW (("ctor" | "assoc" | "comm") as a) ->
        advance st;
        go (a :: acc)
      | Lexer.RBRACE ->
        advance st;
        List.rev acc
      | t -> fail st "expected attribute, found %s" (Format.asprintf "%a" Lexer.pp_token t)
    in
    go []
  | _ -> []

let decl st =
  let dpos = cur_pos st in
  let d =
    match next st with
    | Lexer.KW "pr" ->
      expect st Lexer.LPAREN;
      let name = ident st in
      expect st Lexer.RPAREN;
      DImport name
    | Lexer.LBRACKET ->
      let sorts = idents_until st Lexer.RBRACKET in
      expect st Lexer.RBRACKET;
      DSorts sorts
    | Lexer.HLBRACKET ->
      let name = ident st in
      expect st Lexer.HRBRACKET;
      DHSort name
    | Lexer.KW "op" | Lexer.KW "ctor" ->
      let op_name = ident st in
      expect st Lexer.COLON;
      let arity = idents_until st Lexer.ARROW in
      expect st Lexer.ARROW;
      let sort = ident st in
      let attrs = attrs st in
      expect st Lexer.DOT;
      DOp { op_name; arity; sort; attrs }
    | Lexer.KW ("var" | "vars") ->
      let names = idents_until st Lexer.COLON in
      expect st Lexer.COLON;
      let sort = ident st in
      expect st Lexer.DOT;
      DVars (names, sort)
    | Lexer.KW "eq" ->
      let lhs = term st in
      expect st Lexer.EQUALS;
      let rhs = term st in
      expect st Lexer.DOT;
      DEq (lhs, rhs)
    | Lexer.KW "ceq" ->
      let lhs = term st in
      expect st Lexer.EQUALS;
      let rhs = term st in
      expect st (Lexer.KW "if");
      let cond = term st in
      expect st Lexer.DOT;
      DCeq (lhs, rhs, cond)
    | t -> fail st "expected a declaration, found %s" (Format.asprintf "%a" Lexer.pp_token t)
  in
  { decl = d; dpos }

let toplevel st =
  match peek st with
  | Lexer.KW ("op" | "ctor" | "var" | "vars" | "eq" | "ceq" | "pr")
  | Lexer.LBRACKET | Lexer.HLBRACKET ->
    TDecl (decl st)
  | _ ->
  match next st with
  | Lexer.KW "mod" ->
    let name = ident st in
    expect st Lexer.LBRACE;
    let rec decls acc =
      match peek st with
      | Lexer.RBRACE ->
        advance st;
        List.rev acc
      | _ -> decls (decl st :: acc)
    in
    TModule (name, decls [])
  | Lexer.KW "red" ->
    let in_module =
      match peek st with
      | Lexer.KW "in" ->
        advance st;
        let m = ident st in
        expect st Lexer.COLON;
        Some m
      | _ -> None
    in
    let t = term st in
    expect st Lexer.DOT;
    TRed (in_module, t)
  | Lexer.KW "open" -> TOpen (ident st)
  | Lexer.KW "close" -> TClose
  | Lexer.KW "show" -> TShow (ident st)
  | t -> fail st "expected a toplevel phrase, found %s" (Format.asprintf "%a" Lexer.pp_token t)

let parse tokens =
  let st = { toks = tokens } in
  let rec go acc =
    match peek st with
    | Lexer.EOF -> List.rev acc
    | _ ->
      let p = cur_pos st in
      go ((toplevel st, p) :: acc)
  in
  go []

let parse_string src = parse (Lexer.tokenize_pos src)

let parse_term_string src =
  let st = { toks = Lexer.tokenize_pos src } in
  let t = term st in
  match peek st with
  | Lexer.EOF | Lexer.DOT -> t
  | tok -> fail st "trailing %s after term" (Format.asprintf "%a" Lexer.pp_token tok)
