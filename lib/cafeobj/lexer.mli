(** Lexer for the mini-CafeOBJ concrete syntax. *)

type token =
  | IDENT of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | HLBRACKET  (** [*\[] — opens a hidden-sort declaration *)
  | HRBRACKET  (** [\]*] *)
  | COLON
  | COMMA
  | DOT
  | ARROW  (** [->] *)
  | EQUALS  (** [=] — the equation separator *)
  | EQEQ  (** [==] — the equality predicate inside terms *)
  | KW of string  (** keywords: mod, pr, op, var, eq, ceq, red, open, close,
                      if, then, else, fi, in, and, or, xor, not, implies,
                      iff, true, false, show *)
  | EOF

(** Source position of a token: 1-based line and column. *)
type pos = { line : int; col : int }

val pp_pos : Format.formatter -> pos -> unit

exception Error of { line : int; col : int; message : string }

(** [tokenize_pos src] lexes a whole source string, pairing every token
    with its starting position.  Comments run from [--] to the end of the
    line.  Identifiers may contain letters, digits, [-], [_], [?], [']
    and [#]. *)
val tokenize_pos : string -> (token * pos) list

(** [tokenize src] is [tokenize_pos] without the positions. *)
val tokenize : string -> token list

val pp_token : Format.formatter -> token -> unit
