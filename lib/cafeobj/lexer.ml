type token =
  | IDENT of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | HLBRACKET
  | HRBRACKET
  | COLON
  | COMMA
  | DOT
  | ARROW
  | EQUALS
  | EQEQ
  | KW of string
  | EOF

type pos = { line : int; col : int }

let pp_pos ppf { line; col } = Format.fprintf ppf "line %d, col %d" line col

exception Error of { line : int; col : int; message : string }

let keywords =
  [
    "mod"; "pr"; "op"; "ctor"; "var"; "vars"; "eq"; "ceq"; "red"; "open";
    "close"; "if"; "then"; "else"; "fi"; "in"; "and"; "or"; "xor"; "not";
    "implies"; "iff"; "true"; "false"; "show"; "assoc"; "comm";
  ]

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = '?' || c = '\'' || c = '#'

let tokenize_pos src =
  let n = String.length src in
  let line = ref 1 in
  (* Byte offset of the start of the current line: col = i - bol + 1. *)
  let bol = ref 0 in
  let pos_at i = { line = !line; col = i - !bol + 1 } in
  let fail i message = raise (Error { line = !line; col = i - !bol + 1; message }) in
  let rec go i acc =
    if i >= n then List.rev ((EOF, pos_at i) :: acc)
    else
      let c = src.[i] in
      let emit tok width = go (i + width) ((tok, pos_at i) :: acc) in
      match c with
      | '\n' ->
        incr line;
        bol := i + 1;
        go (i + 1) acc
      | ' ' | '\t' | '\r' -> go (i + 1) acc
      | '-' when i + 1 < n && src.[i + 1] = '-' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip i) acc
      | '-' when i + 1 < n && src.[i + 1] = '>' -> emit ARROW 2
      | '(' -> emit LPAREN 1
      | ')' -> emit RPAREN 1
      | '{' -> emit LBRACE 1
      | '}' -> emit RBRACE 1
      | '*' when i + 1 < n && src.[i + 1] = '[' -> emit HLBRACKET 2
      | ']' when i + 1 < n && src.[i + 1] = '*' -> emit HRBRACKET 2
      | '[' -> emit LBRACKET 1
      | ']' -> emit RBRACKET 1
      | ':' -> emit COLON 1
      | ',' -> emit COMMA 1
      | '.' -> emit DOT 1
      | '=' when i + 1 < n && src.[i + 1] = '=' -> emit EQEQ 2
      | '=' -> emit EQUALS 1
      | c when is_ident_char c ->
        let rec scan j = if j < n && is_ident_char src.[j] then scan (j + 1) else j in
        let j = scan i in
        let word = String.sub src i (j - i) in
        let tok = if List.mem word keywords then KW word else IDENT word in
        go j ((tok, pos_at i) :: acc)
      | c -> fail i (Printf.sprintf "unexpected character %C" c)
  in
  go 0 []

let tokenize src = List.map fst (tokenize_pos src)

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "identifier %S" s
  | LPAREN -> Format.pp_print_string ppf "'('"
  | RPAREN -> Format.pp_print_string ppf "')'"
  | LBRACE -> Format.pp_print_string ppf "'{'"
  | RBRACE -> Format.pp_print_string ppf "'}'"
  | LBRACKET -> Format.pp_print_string ppf "'['"
  | RBRACKET -> Format.pp_print_string ppf "']'"
  | HLBRACKET -> Format.pp_print_string ppf "'*['"
  | HRBRACKET -> Format.pp_print_string ppf "']*'"
  | COLON -> Format.pp_print_string ppf "':'"
  | COMMA -> Format.pp_print_string ppf "','"
  | DOT -> Format.pp_print_string ppf "'.'"
  | ARROW -> Format.pp_print_string ppf "'->'"
  | EQUALS -> Format.pp_print_string ppf "'='"
  | EQEQ -> Format.pp_print_string ppf "'=='"
  | KW s -> Format.fprintf ppf "keyword %S" s
  | EOF -> Format.pp_print_string ppf "end of input"
