(** Evaluator for the mini-CafeOBJ language: elaborates parsed modules into
    {!Spec} values and executes [red] commands — enough to replay the
    paper's specification-and-proof-score workflow from concrete syntax
    (Section 2.1: “The command red is used to rewrite a given term”). *)

open Kernel

type env

val create : unit -> env

(** [set_tracing env on] — with tracing on, every [red] also records its
    derivation and {!reduction.trace} carries the linearized steps
    ([caferepl --trace]). *)
val set_tracing : env -> bool -> unit

(** [set_uncached env on] — with uncached on, every untraced [red] runs
    through {!Kernel.Rewrite.normalize_uncached} (the seed engine's path,
    private per-call memo) instead of the shared normal-form memo.  Used by
    the differential test suite to compare both engines on every spec. *)
val set_uncached : env -> bool -> unit

(** [set_indexing env on] — with indexing off, every [red] (traced or not)
    selects candidate rules by the seed's linear head-operator scan
    instead of the discrimination-tree index
    ({!Kernel.Rewrite.set_indexing}).  Normal forms, step counts and
    traces are identical either way; the differential suite proves it. *)
val set_indexing : env -> bool -> unit

(** [find_module env name] returns an elaborated module. *)
val find_module : env -> string -> Spec.t option

type reduction = {
  input : Term.t;
  normal_form : Term.t;
  steps : int;  (** rule applications used by this reduction *)
  trace : Trace.step list option;  (** with {!set_tracing}: one entry per step *)
}

type output =
  | Defined of string  (** a module was elaborated *)
  | Reduced of reduction
  | Opened of string
  | Closed
  | Shown of string  (** pretty-printed module text *)

exception Error of string

(** [eval env phrase] executes one toplevel phrase.  [red] commands reduce
    in the module named by [in], in the currently open scratch module, or
    in the most recently defined module, in that order of preference. *)
val eval : env -> Parser.toplevel -> output

(** [eval_string env src] parses and evaluates a whole program. *)
val eval_string : env -> string -> output list

(** [reduce_string env src] — convenience: evaluate and return the last
    reduction.
    @raise Error if [src] performs no reduction. *)
val reduce_string : env -> string -> reduction

val pp_output : Format.formatter -> output -> unit
