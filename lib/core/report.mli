(** Reporting of verification campaigns.

    The paper reports that 18 invariants were verified in about a week of
    human effort (Sections 1 and 7).  Our campaign report records, per
    invariant and per transition case, the prover outcome and its cost, and
    aggregates the totals that EXPERIMENTS.md compares against the paper. *)

type summary = {
  invariants_total : int;
  invariants_proved : int;
  cases_total : int;
  cases_proved : int;
  total_splits : int;
  total_rewrite_steps : int;
  total_time : float;  (** seconds *)
}

val summarize : Induction.result list -> summary

(** [pp_result ppf r] prints one invariant's per-case table. *)
val pp_result : Format.formatter -> Induction.result -> unit

(** [pp_summary ppf s] prints the campaign totals. *)
val pp_summary : Format.formatter -> summary -> unit

(** [pp_campaign ppf results] prints every result then the summary. *)
val pp_campaign : Format.formatter -> Induction.result list -> unit

(** [result_fingerprint r] is a canonical one-line rendering of everything
    deterministic in [r] — invariant name, proved flag, and per case the
    name, verdict, split and step counts — with wall-clock durations left
    out.  Two runs of the same proof are byte-identical here whatever the
    machine, pool size or process they ran in; the remote-verification
    tests compare server verdicts against local runs through this. *)
val result_fingerprint : Induction.result -> string

(** [failures results] lists [(invariant, case, outcome)] for every case
    that did not come back [Proved]. *)
val failures :
  Induction.result list -> (string * string * Prover.outcome) list
