type summary = {
  invariants_total : int;
  invariants_proved : int;
  cases_total : int;
  cases_proved : int;
  total_splits : int;
  total_rewrite_steps : int;
  total_time : float;
}

let case_proved (c : Induction.case_result) =
  match c.Induction.outcome with Prover.Proved _ -> true | _ -> false

let summarize results =
  let cases = List.concat_map (fun r -> r.Induction.cases) results in
  let stats = List.map (fun c -> Prover.outcome_stats c.Induction.outcome) cases in
  {
    invariants_total = List.length results;
    invariants_proved =
      List.length (List.filter (fun r -> r.Induction.proved) results);
    cases_total = List.length cases;
    cases_proved = List.length (List.filter case_proved cases);
    total_splits = List.fold_left (fun n s -> n + s.Prover.splits) 0 stats;
    total_rewrite_steps =
      List.fold_left (fun n s -> n + s.Prover.rewrite_steps) 0 stats;
    total_time =
      List.fold_left (fun t c -> t +. c.Induction.duration) 0. cases;
  }

let verdict c = if case_proved c then "ok" else "FAIL"

let pp_result ppf (r : Induction.result) =
  Format.fprintf ppf "@[<v2>%s: %s" r.Induction.res_invariant
    (if r.Induction.proved then "proved" else "NOT PROVED");
  List.iter
    (fun (c : Induction.case_result) ->
      let s = Prover.outcome_stats c.Induction.outcome in
      Format.fprintf ppf "@,%-12s %-4s splits=%-6d steps=%-8d %.3fs"
        c.Induction.case_name (verdict c) s.Prover.splits
        s.Prover.rewrite_steps c.Induction.duration;
      match c.Induction.outcome with
      | Prover.Proved _ -> ()
      | outcome -> Format.fprintf ppf "@,  %a" Prover.pp_outcome outcome)
    r.Induction.cases;
  Format.fprintf ppf "@]"

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>invariants: %d/%d proved@,cases: %d/%d proved@,splits: %d@,\
     rewrite steps: %d@,time: %.3fs@]"
    s.invariants_proved s.invariants_total s.cases_proved s.cases_total
    s.total_splits s.total_rewrite_steps s.total_time

let pp_campaign ppf results =
  List.iter (fun r -> Format.fprintf ppf "%a@.@." pp_result r) results;
  pp_summary ppf (summarize results)

let outcome_tag = function
  | Prover.Proved _ -> "proved"
  | Prover.Refuted _ -> "refuted"
  | Prover.Unknown _ -> "unknown"

let result_fingerprint (r : Induction.result) =
  let b = Buffer.create 256 in
  Buffer.add_string b r.Induction.res_invariant;
  Buffer.add_string b (if r.Induction.proved then "=proved" else "=unproved");
  List.iter
    (fun (c : Induction.case_result) ->
      let s = Prover.outcome_stats c.Induction.outcome in
      Buffer.add_string b
        (Printf.sprintf ";%s:%s:splits=%d:steps=%d" c.Induction.case_name
           (outcome_tag c.Induction.outcome)
           s.Prover.splits s.Prover.rewrite_steps))
    r.Induction.cases;
  Buffer.contents b

let failures results =
  List.concat_map
    (fun (r : Induction.result) ->
      List.filter_map
        (fun (c : Induction.case_result) ->
          if case_proved c then None
          else
            Some
              (r.Induction.res_invariant, c.Induction.case_name, c.Induction.outcome))
        r.Induction.cases)
    results
