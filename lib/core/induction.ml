open Kernel

type invariant = {
  inv_name : string;
  inv_params : (string * Sort.t) list;
  inv_body : Term.t -> Term.t list -> Term.t;
}

type hint = {
  hint_action : string;
  hint_instances : Term.t -> inv_args:Term.t list -> act_args:Term.t list -> Term.t list;
}

type case_result = {
  case_name : string;
  outcome : Prover.outcome;
  duration : float;
}

type result = {
  res_invariant : string;
  cases : case_result list;
  proved : bool;
}

type env = {
  spec : Cafeobj.Spec.t;
  env_ots : Ots.t;
  recognizer_suffix : string;
  mutable fresh_counter : int;
  record_ctors : (string, Signature.op option) Hashtbl.t;
      (** per-sort cache; sound because fresh constants are never
          constructors, so later declarations cannot change the answer *)
}

let make_env ?(recognizer_suffix = "?") ~spec ~ots () =
  {
    spec;
    env_ots = ots;
    recognizer_suffix;
    fresh_counter = 0;
    record_ctors = Hashtbl.create 32;
  }

(* A record sort has exactly one constructor, with at least one argument
   (rules out open sorts populated by scenario constants).  An arbitrary
   value of such a sort is, by no-junk, an application of that constructor
   to arbitrary values — so fresh constants of record sorts are expanded
   eagerly: an arbitrary [EncPms] is [epms(pk(p#), pms(a#, b#, s#))].  This
   is what lets the paper's proof passages reason about the components of
   received quantities. *)
let record_ctor env sort =
  match Hashtbl.find_opt env.record_ctors sort.Sort.name with
  | Some cached -> cached
  | None ->
    let ctors =
      List.filter
        (fun (o : Signature.op) ->
          Signature.is_ctor o && Sort.equal o.Signature.sort sort)
        (Cafeobj.Spec.all_ops env.spec)
    in
    let answer =
      match ctors with
      | [ c ] when c.Signature.arity <> [] -> Some c
      | _ -> None
    in
    Hashtbl.add env.record_ctors sort.Sort.name answer;
    answer

let rec fresh_at_depth env depth sort =
  match if depth <= 0 then None else record_ctor env sort with
  | Some c -> Term.app c (List.map (fresh_at_depth env (depth - 1)) c.Signature.arity)
  | None ->
    env.fresh_counter <- env.fresh_counter + 1;
    let name =
      Printf.sprintf "%s#%d"
        (String.lowercase_ascii sort.Sort.name)
        env.fresh_counter
    in
    Term.const (Cafeobj.Spec.declare_op env.spec name [] sort ~attrs:[])

let fresh_const env sort = fresh_at_depth env 8 sort

let ctor_of_recognizer env (op : Signature.op) =
  let name = op.Signature.name in
  let suffix = env.recognizer_suffix in
  let sl = String.length suffix and nl = String.length name in
  if nl > sl && String.equal (String.sub name (nl - sl) sl) suffix then
    match Cafeobj.Spec.find_op env.spec (String.sub name 0 (nl - sl)) with
    | Some ctor when Signature.is_ctor ctor -> Some ctor
    | Some _ | None -> None
  else None

let prover_ctx env =
  {
    Prover.system = Cafeobj.Spec.system env.spec;
    fresh = fresh_const env;
    ctor_of_recognizer = ctor_of_recognizer env;
  }

(* Monotonic, like every duration in the telemetry layer: wall-clock time
   can step backwards under NTP and would mis-report a case's duration. *)
let timed f =
  let t0 = Telemetry.Probe.now_ns () in
  let r = f () in
  r, float_of_int (Telemetry.Probe.now_ns () - t0) /. 1e9

let base_case ?config env inv =
  let ctx = prover_ctx env in
  let args = List.map (fun (_, s) -> fresh_const env s) inv.inv_params in
  let goal = inv.inv_body (Ots.init_state env.env_ots) args in
  let outcome, duration =
    timed (fun () -> Prover.prove ?config ctx ~hyps:[] ~goal)
  in
  { case_name = "init"; outcome; duration }

let prove_case ?config env ~hints inv ~action =
  let ctx = prover_ctx env in
  let act = Ots.action env.env_ots action in
  let s = fresh_const env env.env_ots.Ots.hidden in
  let inv_args = List.map (fun (_, srt) -> fresh_const env srt) inv.inv_params in
  let act_args = List.map (fun (_, srt) -> fresh_const env srt) act.Ots.act_params in
  let s' = Term.app act.Ots.act_op (s :: act_args) in
  let ih = inv.inv_body s inv_args in
  let extra =
    List.concat_map
      (fun h ->
        if String.equal h.hint_action action || String.equal h.hint_action "*"
        then h.hint_instances s ~inv_args ~act_args
        else [])
      hints
  in
  let goal = inv.inv_body s' inv_args in
  let outcome, duration =
    timed (fun () -> Prover.prove ?config ctx ~hyps:(ih :: extra) ~goal)
  in
  { case_name = action; outcome; duration }

(* One proof case = one branch: a child spec whose fresh constants, memo
   table and step counter are private, so cases are independent — they can
   run on separate pool domains, and their results (fresh-constant
   numbering included) do not depend on which cases ran before them.  The
   per-sort constructor cache starts empty rather than copied: the base
   env's cache may be mutated concurrently by non-branched use. *)
let branch_env env label =
  {
    spec = Cafeobj.Spec.branch env.spec label;
    env_ots = env.env_ots;
    recognizer_suffix = env.recognizer_suffix;
    fresh_counter = 0;
    record_ctors = Hashtbl.create 32;
  }

let prove_derived ?config env ~hyps inv =
  Telemetry.Probe.with_span ~always:true ~cat:"case"
    (inv.inv_name ^ "@derived")
  @@ fun () ->
  let env = branch_env env ("derived@" ^ inv.inv_name) in
  let ctx = prover_ctx env in
  let s = fresh_const env env.env_ots.Ots.hidden in
  let args = List.map (fun (_, srt) -> fresh_const env srt) inv.inv_params in
  let goal = inv.inv_body s args in
  let outcome, duration =
    timed (fun () -> Prover.prove ?config ctx ~hyps:(hyps s args) ~goal)
  in
  let case = { case_name = "derived"; outcome; duration } in
  {
    res_invariant = inv.inv_name;
    cases = [ case ];
    proved = (match outcome with Prover.Proved _ -> true | _ -> false);
  }

let prove_invariant ?config ?pool env ~hints inv =
  let case_names =
    None
    :: List.map
         (fun (a : Ots.action) -> Some a.Ots.act_op.Signature.name)
         env.env_ots.Ots.actions
  in
  let run_case case =
    let label =
      Printf.sprintf "%s@%s" inv.inv_name
        (Option.value ~default:"init" case)
    in
    (* One span per proof case, attributed to whichever pool domain the
       work-stealing scheduler ran it on. *)
    Telemetry.Probe.with_span ~always:true ~cat:"case" label @@ fun () ->
    let env' = branch_env env label in
    match case with
    | None -> base_case ?config env' inv
    | Some action -> prove_case ?config env' ~hints inv ~action
  in
  let cases =
    match pool with
    | None -> List.map run_case case_names
    | Some p -> Sched.Pool.parallel_map p run_case case_names
  in
  let proved =
    List.for_all
      (fun c -> match c.outcome with Prover.Proved _ -> true | _ -> false)
      cases
  in
  { res_invariant = inv.inv_name; cases; proved }

let system env = Cafeobj.Spec.system env.spec
let ots env = env.env_ots
