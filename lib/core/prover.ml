open Kernel

type config = { max_splits : int; max_depth : int }

let default_config = { max_splits = 100_000; max_depth = 2_000 }

type stats = {
  splits : int;
  max_depth_reached : int;
  rewrite_steps : int;
  vacuous : int;
}

type trail_entry = { atom : Term.t; value : bool }

type outcome =
  | Proved of stats
  | Refuted of { trail : trail_entry list; stats : stats }
  | Unknown of { reason : string; residual : Term.t; stats : stats }

type ctx = {
  system : Rewrite.system;
  fresh : Sort.t -> Term.t;
  ctor_of_recognizer : Signature.op -> Signature.op option;
}

(* ------------------------------------------------------------------ *)
(* Atom classification *)

let is_opaque_constant t =
  match Term.view t with
  | Term.App (o, []) ->
    (not (Signature.is_ctor o)) && not (Signature.Builtin.is_builtin o)
  | Term.App _ | Term.Var _ -> false

type atom_kind =
  | Equality of Term.t * Term.t
  | Recognizer of Signature.op * Term.t  (** constructor, opaque argument *)
  | Plain

let classify ctx atom =
  match Term.view atom with
  | Term.App (o, [ t1; t2 ]) when Signature.Builtin.is_eq o -> Equality (t1, t2)
  | Term.App (o, [ m ]) when is_opaque_constant m -> (
    match ctx.ctor_of_recognizer o with
    | Some ctor -> Recognizer (ctor, m)
    | None -> Plain)
  | Term.App _ | Term.Var _ -> Plain

(* All constructor positions from the root of [inside] down to an occurrence
   of [t]: the equation [t = inside] is then unsatisfiable in the free
   algebra (occurs check). *)
let rec ctor_occurs ~inside t =
  match Term.view inside with
  | Term.Var _ -> false
  | Term.App (o, args) ->
    Signature.is_ctor o
    && List.exists (fun a -> Term.equal a t || ctor_occurs ~inside:a t) args

(* Orientation of an assumed equality as a ground rewrite rule.  Preference:
   expand an opaque constant into the structured side (keeps projections and
   gleaning rules applicable); otherwise rewrite the larger side to the
   smaller.  Returns [None] when no terminating orientation is safe. *)
let orient t1 t2 =
  (* [ac_compare], not the raw id order: the tie-break decides which way an
     assumption rewrites, and that choice must not depend on intern-table
     allocation history (ids are reused-free but weak-table-unstable). *)
  let c = Term.ac_compare t1 t2 in
  if c = 0 then None
  else
    let const1 = is_opaque_constant t1 and const2 = is_opaque_constant t2 in
    match const1, const2 with
    | true, true -> if c > 0 then Some (t1, t2) else Some (t2, t1)
    | true, false ->
      if Term.occurs ~inside:t2 t1 then None else Some (t1, t2)
    | false, true ->
      if Term.occurs ~inside:t1 t2 then None else Some (t2, t1)
    | false, false ->
      let s1 = Term.size t1 and s2 = Term.size t2 in
      if s1 > s2 && not (Term.occurs ~inside:t2 t1) then Some (t1, t2)
      else if s2 > s1 && not (Term.occurs ~inside:t1 t2) then Some (t2, t1)
      else if s1 = s2 then if c > 0 then Some (t1, t2) else Some (t2, t1)
      else None

(* ------------------------------------------------------------------ *)
(* The search *)

type search_state = {
  cfg : config;
  ctx : ctx;
  mutable splits : int;
  mutable deepest : int;
  mutable vacuous_count : int;
  mutable steps0 : int;
  mutable rule_counter : int;
      (** per-call, so labels are deterministic and parallel proof tasks
          never contend on a shared counter *)
}

exception Stop of outcome

let mk_stats st =
  {
    splits = st.splits;
    max_depth_reached = st.deepest;
    rewrite_steps = Rewrite.steps st.ctx.system - st.steps0;
    vacuous = st.vacuous_count;
  }

let ground_rule st lhs rhs =
  st.rule_counter <- st.rule_counter + 1;
  Rewrite.rule ~label:(Printf.sprintf "split-%d" st.rule_counter) lhs rhs

(* Normalize hypotheses and the goal under [sys] as {e separate}
   polynomials (multiplying them together squares the monomial count), then
   substitute the forced valuation into each.  A branch is:
   - [`Vacuous] when a hypothesis or forced assumption is contradictory;
   - [`True] when the goal polynomial is the constant [true];
   - [`Open (hyps, goal)] otherwise: split on an atom.  With no atom left
     every polynomial is a constant, so an open node with constant parts is
     a genuine counterexample assignment. *)
let rec eval_node sys forced hyps goal =
  let norm_poly t = Boolring.of_term (Rewrite.normalize sys t) in
  let exception Vacuous in
  match
    let single_atoms, compound =
      List.fold_left
        (fun (singles, compound) (atom, value) ->
          let ap = norm_poly atom in
          if Boolring.is_true ap then
            if value then singles, compound else raise Vacuous
          else if Boolring.is_false ap then
            if value then raise Vacuous else singles, compound
          else
            match Boolring.atoms_of ap with
            | [ single ] when Boolring.equal ap (Boolring.atom single) ->
              (single, value) :: singles, compound
            | _ ->
              let p = if value then ap else Boolring.not_ ap in
              singles, p :: compound)
        ([], []) forced
    in
    let assign_all p =
      List.fold_left (fun p (a, v) -> Boolring.assign p a v) p single_atoms
    in
    let check_hyp p =
      let p = assign_all p in
      if Boolring.is_false p then raise Vacuous
      else if Boolring.is_true p then None
      else Some p
    in
    let hyps =
      List.filter_map check_hyp (compound @ List.map norm_poly hyps)
    in
    let g = assign_all (norm_poly goal) in
    hyps, g
  with
  | exception Vacuous -> `Vacuous
  | hyps, g ->
    if Boolring.is_true g then `True
    else if entailed_cheaply hyps g then `True
    else `Open (hyps, g)

(* Bounded algebraic entailment: fold the hypotheses into the goal as
   curried implications, giving up when the polynomial grows past a fixed
   budget.  The boolean ring often cancels an entailed goal outright (e.g.
   when it is an instance of the inductive hypothesis), saving a whole
   splitting subtree; when the product would blow up we fall back to
   DPLL-style splitting, which is what makes large cases feasible. *)
and entailed_cheaply hyps g =
  let budget = 5_000 in
  let rec fold g = function
    | [] -> Boolring.is_true g
    | h :: rest ->
      (Boolring.count_monomials h + 1) * (Boolring.count_monomials g + 1)
      <= budget
      && fold (Boolring.implies_ h g) rest
  in
  Boolring.count_monomials g <= budget && fold g hyps

(* Unit propagation: a hypothesis that is a single (possibly negated) atom
   forces that atom's value — no branching needed, and for equality atoms
   the full substitution machinery applies. *)
let find_unit skip hyps =
  List.find_map
    (fun h ->
      let unit_of a v =
        if List.exists (Term.equal a) skip then None else Some (a, v)
      in
      match Boolring.atoms_of h with
      | [ a ] ->
        if Boolring.equal h (Boolring.atom a) then unit_of a true
        else if Boolring.equal h (Boolring.not_ (Boolring.atom a)) then
          unit_of a false
        else None
      | _ -> None)
    hyps

let pick_atom ctx skip hyps goal =
  (* Goal atoms first: deciding them is what closes branches; hypothesis
     atoms only matter for consistency. *)
  let atoms =
    Boolring.atoms_of goal
    @ List.concat_map Boolring.atoms_of hyps
  in
  let available =
    List.filter (fun a -> not (List.exists (Term.equal a) skip)) atoms
  in
  let score a =
    match classify ctx a with
    | Equality _ -> 0, Term.size a
    | Recognizer _ -> 1, Term.size a
    | Plain -> 2, Term.size a
  in
  match available with
  | [] -> None
  | _ :: _ ->
    Some
      (List.fold_left
         (fun best a -> if score a < score best then a else best)
         (List.hd available) (List.tl available))

let prove ?(config = default_config) ctx ~hyps ~goal =
  let st =
    {
      cfg = config;
      ctx;
      splits = 0;
      deepest = 0;
      vacuous_count = 0;
      steps0 = Rewrite.steps ctx.system;
      rule_counter = 0;
    }
  in
  let rec go sys forced trail depth =
    if depth > st.deepest then st.deepest <- depth;
    if depth > st.cfg.max_depth then
      raise
        (Stop
           (Unknown
              { reason = "depth limit"; residual = goal; stats = mk_stats st }));
    match eval_node sys forced hyps goal with
    | `Vacuous -> st.vacuous_count <- st.vacuous_count + 1
    | `True -> ()
    | `Open (hpolys, gpoly) ->
      begin
        let skip = List.map fst forced in
        match find_unit skip hpolys with
        | Some (atom, true) ->
          (* Propagated positively: take only the true branch (with the
             substitution machinery for equalities/recognizers). *)
          branch_true sys forced trail depth atom
        | Some (atom, false) ->
          go sys ((atom, false) :: forced)
            ({ atom; value = false } :: trail)
            (depth + 1)
        | None -> (
          match pick_atom ctx skip hpolys gpoly with
          | None ->
            (* No atom left: all polynomials are constants, the remaining
               hypotheses are true and the goal is false. *)
            raise
              (Stop (Refuted { trail = List.rev trail; stats = mk_stats st }))
          | Some atom ->
            st.splits <- st.splits + 1;
            if st.splits > st.cfg.max_splits then
              raise
                (Stop
                   (Unknown
                      {
                        reason = "split budget exhausted";
                        residual = Boolring.to_term gpoly;
                        stats = mk_stats st;
                      }));
            branch_true sys forced trail depth atom;
            go sys ((atom, false) :: forced)
              ({ atom; value = false } :: trail)
              (depth + 1))
      end
  and branch_true sys forced trail depth atom =
    let trail = { atom; value = true } :: trail in
    match classify ctx atom with
    | Equality (t1, t2) -> (
      if ctor_occurs ~inside:t2 t1 || ctor_occurs ~inside:t1 t2 then
        (* Occurs check in the free algebra: assumption unsatisfiable. *)
        st.vacuous_count <- st.vacuous_count + 1
      else
        match orient t1 t2 with
        | Some (lhs, rhs) ->
          let sys' = Rewrite.extend sys [ ground_rule st lhs rhs ] in
          go sys' forced trail (depth + 1)
        | None -> go sys ((atom, true) :: forced) trail (depth + 1))
    | Recognizer (ctor, m) ->
      let args = List.map ctx.fresh ctor.Signature.arity in
      let sys' = Rewrite.extend sys [ ground_rule st m (Term.app ctor args) ] in
      go sys' forced trail (depth + 1)
    | Plain -> go sys ((atom, true) :: forced) trail (depth + 1)
  in
  try
    go ctx.system [] [] 0;
    Proved (mk_stats st)
  with
  | Stop outcome -> outcome
  | Rewrite.Limit_exceeded { limit; _ } ->
    (* A truncated reduction proves nothing: surface the exhaustion as an
       inconclusive outcome instead of letting a partial run masquerade as
       progress (or crash the whole campaign). *)
    let reason =
      match limit with
      | Rewrite.Steps n -> Printf.sprintf "rewrite step limit %d exhausted" n
      | Rewrite.Deadline d -> Printf.sprintf "rewrite deadline %.3fs exhausted" d
    in
    Unknown { reason; residual = goal; stats = mk_stats st }

let outcome_stats = function
  | Proved s -> s
  | Refuted { stats; _ } -> stats
  | Unknown { stats; _ } -> stats

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "splits=%d depth=%d steps=%d vacuous=%d" s.splits
    s.max_depth_reached s.rewrite_steps s.vacuous

let pp_outcome ppf = function
  | Proved s -> Format.fprintf ppf "proved (%a)" pp_stats s
  | Refuted { trail; stats } ->
    Format.fprintf ppf "@[<v2>refuted (%a); trail:" pp_stats stats;
    List.iter
      (fun { atom; value } ->
        Format.fprintf ppf "@,%a := %b" Term.pp atom value)
      trail;
    Format.fprintf ppf "@]"
  | Unknown { reason; residual; stats } ->
    Format.fprintf ppf "unknown (%s, %a): residual %a" reason pp_stats stats
      Term.pp residual
