(** Simultaneous induction over the transitions of an OTS (Section 2.4).

    To prove an invariant [inv] the paper checks one proof score per
    transition: the basic formula [istep = inv(s, xs) implies inv(s', xs)]
    where [s'] is the transition applied to an arbitrary state [s] at
    arbitrary parameters, plus a base case at the initial state.  Other
    invariants may strengthen the inductive hypothesis (the paper's [SIH]);
    which instances to use is given by per-transition {e hints}, mirroring
    the paper's choice of, e.g., [inv1(p, pms(a,b,s))] in the fifth sub-case
    of [fakeSfin2] for [inv2]. *)

open Kernel

(** An invariant [inv_i : H × V_{i1} … V_{im_i} -> Bool].  [body] receives
    the state term and one term per declared parameter. *)
type invariant = {
  inv_name : string;
  inv_params : (string * Sort.t) list;
  inv_body : Term.t -> Term.t list -> Term.t;
}

(** A strengthening hint: for the named action (or ["*"] for all actions),
    add the given lemma instances to the hypotheses.  The function receives
    the state term [s], the invariant's parameter constants and the action's
    parameter constants, and returns fully instantiated lemma bodies. *)
type hint = {
  hint_action : string;
  hint_instances : Term.t -> inv_args:Term.t list -> act_args:Term.t list -> Term.t list;
}

type case_result = {
  case_name : string;  (** ["init"] or the action name *)
  outcome : Prover.outcome;
  duration : float;  (** seconds *)
}

type result = {
  res_invariant : string;
  cases : case_result list;
  proved : bool;  (** all cases proved *)
}

(** Proof environment: the generated protocol module and the prover
    context pieces that depend on it. *)
type env

(** [make_env ~spec ~ots] prepares an environment.  [recognizer_suffix]
    (default ["?"]) tells the prover how recognizer operators are named. *)
val make_env : ?recognizer_suffix:string -> spec:Cafeobj.Spec.t -> ots:Ots.t -> unit -> env

(** [fresh_const env sort] declares a fresh opaque constant (also used by
    client code to build lemma instances in hints). *)
val fresh_const : env -> Sort.t -> Term.t

(** [prove_invariant ?config ?pool env ~hints inv] runs the base case and
    one inductive case per action of the OTS.

    Every case runs in its own {e branched} environment (a child spec of
    [env]'s, see {!Cafeobj.Spec.branch}): fresh-constant numbering, rewrite
    memo tables and step counters are all case-local.  Cases are therefore
    independent, and when [pool] is given they execute on its domains —
    with results (including every statistic) identical to the sequential
    run, whatever the pool size. *)
val prove_invariant :
  ?config:Prover.config ->
  ?pool:Sched.Pool.t ->
  env ->
  hints:hint list ->
  invariant ->
  result

(** [prove_case ?config env ~hints inv ~action] runs a single inductive
    case (exposed for tests and for the paper's per-transition narrative). *)
val prove_case :
  ?config:Prover.config -> env -> hints:hint list -> invariant -> action:string -> case_result

(** [base_case ?config env inv] runs only the initial-state case. *)
val base_case : ?config:Prover.config -> env -> invariant -> case_result

(** [prove_derived ?config env ~hyps inv] proves [inv] at an {e arbitrary}
    state by case analysis from other invariants, without induction — the
    paper proves five of its 18 properties this way (Section 5.1).  [hyps]
    receives the arbitrary state and the invariant's parameter constants and
    returns the lemma instances to assume.  Runs in a branched environment
    (like {!prove_invariant}'s cases), so concurrent derived proofs sharing
    [env] are safe. *)
val prove_derived :
  ?config:Prover.config ->
  env ->
  hyps:(Term.t -> Term.t list -> Term.t list) ->
  invariant ->
  result

(** [system env] is the rewrite system of the protocol module (for external
    reductions and benches). *)
val system : env -> Rewrite.system

(** [ots env] is the transition system the environment was built from. *)
val ots : env -> Ots.t
