(** verifyd — the resident verification server.

    A long-lived Unix-domain-socket daemon that loads the TLS protocol
    specs {e once} at startup and keeps the whole term universe hot across
    requests: the weak intern table, the generation-stamped normal-form
    memos of the resident proof environments, the lint reports and the
    completed-obligation result cache all survive from one request to the
    next — so the second identical campaign subset costs a registry lookup
    where a cold CLI run pays spec elaboration and every red from zero.

    Architecture: one single-threaded [select] event loop owns all socket
    I/O (accept, incremental frame decoding, response write-back) and
    dispatches proof obligations onto a {!Sched.Pool} of worker domains,
    polling their futures between I/O ticks — verdicts stream back in
    campaign order while later obligations are still running.  Identical
    in-flight obligations from concurrent clients are deduplicated against
    a single shared future ({!Registry}).  Each request runs under a
    [cat = "server"] telemetry span, and always-on {!Telemetry.Metrics}
    (request counters, dedup hit rate, latency histograms, memo/intern
    occupancy gauges) are served by the [metrics] request.

    Graceful shutdown: a [shutdown] request, SIGINT or SIGTERM stops
    accepting, lets in-flight requests finish, flushes every connection,
    removes the socket file and returns.  A reduction that exhausts its
    step budget or deadline ({!Kernel.Rewrite.Limit_exceeded}) is answered
    with a structured [timeout] verdict on that request's stream — the
    connection survives.

    Observability: with [metrics_port] set, the same event loop also
    serves HTTP on loopback — [GET /metrics] (OpenMetrics text, including
    per-request-type latency histograms labeled [type="…"]), [/healthz]
    (flips to 503 the moment a drain starts, while the protocol socket is
    still finishing work) and [/statusz] (a JSON summary).  Requests
    tagged with a client id ({!Protocol.encode_request}) carry that id
    through the structured log ({!Telemetry.Log}), the obligation
    registry, and — when profiling is on — every {!Telemetry.Probe} span
    the request causes, pool workers included.  With [flight_path] set,
    a {!Telemetry.Flight} ring records recent events and is dumped there
    on a crash, a SIGQUIT, or a [Limit_exceeded]. *)

type config = {
  socket : string;  (** path of the Unix-domain socket to bind *)
  jobs : int;  (** sched-pool parallelism (≥ 1) *)
  idle_timeout_s : float;  (** close connections idle this long; 0 = never *)
  max_frame : int;  (** per-frame byte cap (see {!Protocol.Frame}) *)
  handle_signals : bool;
      (** install SIGINT/SIGTERM drain handlers and the SIGQUIT
          flight-dump handler *)
  metrics_port : int option;
      (** loopback TCP port for the HTTP endpoint; [Some 0] binds an
          ephemeral port (see [announce_metrics_port]); [None] disables *)
  announce_metrics_port : int -> unit;
      (** called once with the actually-bound HTTP port *)
  log_file : string option;  (** JSON-lines sink; [None] leaves stderr *)
  log_level : Telemetry.Log.level option;  (** [None] = leave as configured *)
  log_rotate_bytes : int;  (** rotate the sink beyond this size; 0 = never *)
  slow_ms : float;
      (** requests at least this slow log at [Warn] as [slow_request];
          0 disables the slow log *)
  flight_path : string option;  (** post-mortem dump path; [None] disables *)
}

val default_config : socket:string -> config

(** [run config] binds, serves until drained, cleans up, returns.
    @raise Failure if the socket cannot be bound (e.g. another live
    daemon owns it — a stale socket file left by a crash is reclaimed). *)
val run : config -> unit

(** [verdict_of_result ~negative r] is the wire verdict for one proof
    result, [v_text] rendered exactly as the standalone [verify] binary
    prints it.  Exposed so tests and the bench can fingerprint local runs
    with the very function the server uses. *)
val verdict_of_result :
  negative:bool -> Core.Induction.result -> Protocol.verdict
