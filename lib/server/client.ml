module P = Protocol

type t = { fd : Unix.file_descr }

let connect ~socket =
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_client ~socket f =
  let t = connect ~socket in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let request ?id t req ~on_response =
  P.Frame.write t.fd (P.encode_request ?id req);
  let rec loop () =
    match P.Frame.read t.fd with
    | Error msg -> failwith ("verifyd protocol error: " ^ msg)
    | Ok None -> failwith "verifyd closed the connection mid-response"
    | Ok (Some payload) -> (
      match P.decode_response payload with
      | Error msg -> failwith ("verifyd protocol error: " ^ msg)
      | Ok (P.Done { exit_code }) -> exit_code
      | Ok resp ->
        on_response resp;
        loop ())
  in
  loop ()

let request_collect ?id t req =
  let acc = ref [] in
  let code = request ?id t req ~on_response:(fun r -> acc := r :: !acc) in
  List.rev !acc, code
