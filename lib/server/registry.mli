(** Obligation deduplication for the resident server.

    Every proof obligation the server dispatches is keyed by a canonical
    string (e.g. ["verify:original:inv1"]).  The registry maps keys to the
    {!Sched.Task.t} computing them: a second request for a key whose task
    is still running shares the in-flight future, and a request for a key
    whose task has already resolved gets the resolved future back — the
    resident result cache that makes a warm repeat of a campaign subset
    near-instant.  Resolved entries are evicted oldest-first beyond
    [capacity]; in-flight entries are never evicted.

    Counters [server.dedup.hits] / [server.dedup.misses]
    ({!Telemetry.Metrics}) record the hit rate. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t

(** [find_or_submit ?requester t ~key spawn] returns the shared future
    for [key], calling [spawn] (which must submit the work and return its
    future) only when no live entry exists.  The flag distinguishes a
    fresh submission ([`Fresh]) from a dedup hit against a running
    ([`Inflight]) or completed ([`Cached]) obligation.

    [requester] attaches a request id to the entry, so observability can
    answer which requests are (or were) waiting on a shared obligation;
    ids are kept newest-first, deduplicated, capped at 8. *)
val find_or_submit :
  ?requester:string ->
  'a t ->
  key:string ->
  (unit -> 'a Sched.Task.t) ->
  'a Sched.Task.t * [ `Fresh | `Inflight | `Cached ]

(** [requesters t ~key] — the request ids attached to [key], newest
    first; [[]] for an unknown key. *)
val requesters : 'a t -> key:string -> string list

(** [in_flight_count t] counts entries whose task has not resolved yet. *)
val in_flight_count : 'a t -> int

(** [size t] is the number of live entries (cached + in flight). *)
val size : 'a t -> int
