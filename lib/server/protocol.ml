module Sexp = Certify.Sexp

(* ------------------------------------------------------------------ *)
(* Framing *)

module Frame = struct
  let default_max = 64 * 1024 * 1024
  let header_len = 4

  let encode buf payload =
    let n = String.length payload in
    Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
    Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
    Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr (n land 0xff));
    Buffer.add_string buf payload

  let to_string payload =
    let buf = Buffer.create (String.length payload + header_len) in
    encode buf payload;
    Buffer.contents buf

  type decoder = {
    max_frame : int;
    mutable acc : Buffer.t;
    mutable err : string option;
  }

  let decoder ?(max_frame = default_max) () =
    { max_frame; acc = Buffer.create 256; err = None }

  let feed dec bytes off len =
    if dec.err = None then Buffer.add_subbytes dec.acc bytes off len

  let buffered dec = Buffer.length dec.acc

  let peek_len dec =
    let b i = Char.code (Buffer.nth dec.acc i) in
    (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

  let next dec =
    match dec.err with
    | Some e -> Error e
    | None ->
      if Buffer.length dec.acc < header_len then Ok None
      else begin
        let len = peek_len dec in
        if len > dec.max_frame then begin
          let e =
            Printf.sprintf "frame length %d exceeds the %d-byte limit" len
              dec.max_frame
          in
          dec.err <- Some e;
          Error e
        end
        else if Buffer.length dec.acc < header_len + len then Ok None
        else begin
          let payload = Buffer.sub dec.acc header_len len in
          let rest =
            Buffer.sub dec.acc (header_len + len)
              (Buffer.length dec.acc - header_len - len)
          in
          let acc = Buffer.create (max 256 (String.length rest)) in
          Buffer.add_string acc rest;
          dec.acc <- acc;
          Ok (Some payload)
        end
      end

  let really_read fd bytes off len =
    let rec go off len =
      if len = 0 then true
      else
        match Unix.read fd bytes off len with
        | 0 -> false
        | n -> go (off + n) (len - n)
    in
    go off len

  let read ?(max_frame = default_max) fd =
    let hdr = Bytes.create header_len in
    match Unix.read fd hdr 0 header_len with
    | 0 -> Ok None
    | n ->
      if n < header_len && not (really_read fd hdr n (header_len - n)) then
        Error "truncated frame header"
      else begin
        let b i = Char.code (Bytes.get hdr i) in
        let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
        if len > max_frame then
          Error
            (Printf.sprintf "frame length %d exceeds the %d-byte limit" len
               max_frame)
        else begin
          let payload = Bytes.create len in
          if really_read fd payload 0 len then
            Ok (Some (Bytes.unsafe_to_string payload))
          else Error "truncated frame payload"
        end
      end

  let write fd payload =
    let s = to_string payload in
    let b = Bytes.unsafe_of_string s in
    let rec go off len =
      if len > 0 then begin
        let n = Unix.write fd b off len in
        go (off + n) (len - n)
      end
    in
    go 0 (Bytes.length b)
end

(* ------------------------------------------------------------------ *)
(* Wire types *)

type style = Original | Variant

type request =
  | Ping
  | Status
  | Metrics
  | Shutdown
  | Lint of { style : style }
  | Verify of {
      style : style;
      only : string list;
      negative : bool;
      extensions : bool;
      certify : bool;
    }
  | Secrecy of { style : style }
  | Check of { cert : string }
  | Eval of { src : string; step_limit : int option; deadline_s : float option }

type case = { c_name : string; c_status : string; c_splits : int; c_steps : int }

type verdict = {
  v_name : string;
  v_proved : bool;
  v_negative : bool;
  v_cases : case list;
  v_text : string;
}

type response =
  | Pong of { pid : int; uptime_s : float }
  | Rstatus of {
      uptime_s : float;
      jobs : int;
      requests : int;
      in_flight : int;
      dedup_hits : int;
      dedup_misses : int;
      styles : style list;
    }
  | Rmetrics of {
      counters : (string * int) list;
      gauges : (string * float) list;
      histograms : (string * float array) list;
    }
  | Rverdict of verdict
  | Rsummary of {
      invariants : int * int;
      cases : int * int;
      splits : int;
      steps : int;
      text : string;
    }
  | Rlint of { errors : int; warnings : int; infos : int; cached : bool; text : string }
  | Rsecrecy of {
      verdict : string;
      clauses : int;
      facts : int;
      rounds : int;
      resolutions : int;
      cached : bool;
    }
  | Rcert of { cert : string }
  | Rcheck of {
      ok : bool;
      obligations : int;
      steps : int;
      errors : (string * string) list;
    }
  | Reval of { text : string }
  | Rtimeout of {
      limit : [ `Steps of int | `Deadline of float ];
      steps : int;
      name : string;
    }
  | Rerror of { code : string; msg : string }
  | Done of { exit_code : int }

(* ------------------------------------------------------------------ *)
(* Sexp building blocks *)

let atom s = Sexp.Atom s
let slist l = Sexp.List l
let sint n = atom (string_of_int n)
let sbool b = atom (string_of_bool b)

(* %h (hex float) round-trips doubles exactly through float_of_string. *)
let sfloat f = atom (Printf.sprintf "%h" f)
let field key values = slist (atom key :: values)

let style_name = function Original -> "original" | Variant -> "variant"

let style_of_name = function
  | "original" -> Ok Original
  | "variant" -> Ok Variant
  | s -> Error (Printf.sprintf "unknown style %S" s)

(* ------------------------------------------------------------------ *)
(* Decoding helpers: requests/responses are (tag field ...) lists where a
   field is (key value ...).  All failures funnel into Error, never raise. *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let fields = function
  | Sexp.List (Sexp.Atom tag :: rest) -> Ok (tag, rest)
  | _ -> Error "expected (tag field ...)"

let assoc key flds =
  List.find_map
    (function
      | Sexp.List (Sexp.Atom k :: vs) when String.equal k key -> Some vs
      | _ -> None)
    flds

let get key flds =
  match assoc key flds with
  | Some vs -> Ok vs
  | None -> Error (Printf.sprintf "missing field %S" key)

let as_atom what = function
  | [ Sexp.Atom s ] -> Ok s
  | _ -> Error (Printf.sprintf "field %S: expected one atom" what)

let as_int what v =
  let* s = as_atom what v in
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "field %S: expected an integer" what)

let as_float what v =
  let* s = as_atom what v in
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S: expected a float" what)

let as_bool what v =
  let* s = as_atom what v in
  match bool_of_string_opt s with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "field %S: expected a bool" what)

let as_atoms what vs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | Sexp.Atom s :: rest -> go (s :: acc) rest
    | _ -> Error (Printf.sprintf "field %S: expected atoms" what)
  in
  go [] vs

let get_style flds =
  let* v = get "style" flds in
  let* s = as_atom "style" v in
  style_of_name s

let opt_int key flds =
  match assoc key flds with
  | None -> Ok None
  | Some v ->
    let* n = as_int key v in
    Ok (Some n)

let opt_float key flds =
  match assoc key flds with
  | None -> Ok None
  | Some v ->
    let* f = as_float key v in
    Ok (Some f)

let parse_payload s =
  match Sexp.parse_one s with
  | Ok sx -> Ok sx
  | Error e -> Error ("malformed s-expression: " ^ e)

(* ------------------------------------------------------------------ *)
(* Requests *)

let encode_request ?id req =
  let sx =
    match req with
    | Ping -> slist [ atom "ping" ]
    | Status -> slist [ atom "status" ]
    | Metrics -> slist [ atom "metrics" ]
    | Shutdown -> slist [ atom "shutdown" ]
    | Lint { style } ->
      slist [ atom "lint"; field "style" [ atom (style_name style) ] ]
    | Verify { style; only; negative; extensions; certify } ->
      slist
        [
          atom "verify";
          field "style" [ atom (style_name style) ];
          field "only" (List.map atom only);
          field "negative" [ sbool negative ];
          field "extensions" [ sbool extensions ];
          field "certify" [ sbool certify ];
        ]
    | Secrecy { style } ->
      slist [ atom "secrecy"; field "style" [ atom (style_name style) ] ]
    | Check { cert } -> slist [ atom "check"; field "cert" [ atom cert ] ]
    | Eval { src; step_limit; deadline_s } ->
      slist
        ([ atom "eval"; field "src" [ atom src ] ]
        @ (match step_limit with
          | None -> []
          | Some n -> [ field "step-limit" [ sint n ] ])
        @
        match deadline_s with
        | None -> []
        | Some d -> [ field "deadline-s" [ sfloat d ] ])
  in
  (* the request id rides as an ordinary trailing field: decoders ignore
     unknown fields, so tagged payloads stay readable by old daemons and
     untagged ones by new daemons *)
  let sx =
    match id, sx with
    | Some rid, Sexp.List items -> slist (items @ [ field "id" [ atom rid ] ])
    | _ -> sx
  in
  Sexp.to_string sx

(* Extracted separately from decode_request so id-tagging stays invisible
   to the request variants (and to their roundtrip properties). *)
let request_id s =
  match parse_payload s with
  | Error _ -> None
  | Ok sx -> (
    match fields sx with
    | Error _ -> None
    | Ok (_, flds) -> (
      match assoc "id" flds with
      | None -> None
      | Some v -> ( match as_atom "id" v with Ok rid -> Some rid | Error _ -> None)))

let decode_request s =
  let* sx = parse_payload s in
  let* tag, flds = fields sx in
  match tag with
  | "ping" -> Ok Ping
  | "status" -> Ok Status
  | "metrics" -> Ok Metrics
  | "shutdown" -> Ok Shutdown
  | "lint" ->
    let* style = get_style flds in
    Ok (Lint { style })
  | "verify" ->
    let* style = get_style flds in
    let* only =
      match assoc "only" flds with
      | None -> Ok []
      | Some vs -> as_atoms "only" vs
    in
    let* negative =
      match assoc "negative" flds with
      | None -> Ok false
      | Some v -> as_bool "negative" v
    in
    let* extensions =
      match assoc "extensions" flds with
      | None -> Ok false
      | Some v -> as_bool "extensions" v
    in
    let* certify =
      match assoc "certify" flds with
      | None -> Ok false
      | Some v -> as_bool "certify" v
    in
    Ok (Verify { style; only; negative; extensions; certify })
  | "secrecy" ->
    let* style = get_style flds in
    Ok (Secrecy { style })
  | "check" ->
    let* v = get "cert" flds in
    let* cert = as_atom "cert" v in
    Ok (Check { cert })
  | "eval" ->
    let* v = get "src" flds in
    let* src = as_atom "src" v in
    let* step_limit = opt_int "step-limit" flds in
    let* deadline_s = opt_float "deadline-s" flds in
    Ok (Eval { src; step_limit; deadline_s })
  | t -> Error (Printf.sprintf "unknown request %S" t)

(* ------------------------------------------------------------------ *)
(* Responses *)

let case_sx c =
  slist [ atom c.c_name; atom c.c_status; sint c.c_splits; sint c.c_steps ]

let case_of_sx = function
  | Sexp.List [ Sexp.Atom n; Sexp.Atom st; Sexp.Atom sp; Sexp.Atom rs ] -> (
    match int_of_string_opt sp, int_of_string_opt rs with
    | Some c_splits, Some c_steps ->
      Ok { c_name = n; c_status = st; c_splits; c_steps }
    | _ -> Error "case: expected integer splits/steps")
  | _ -> Error "case: expected (name status splits steps)"

let encode_response resp =
  let sx =
    match resp with
    | Pong { pid; uptime_s } ->
      slist
        [ atom "pong"; field "pid" [ sint pid ]; field "uptime-s" [ sfloat uptime_s ] ]
    | Rstatus
        { uptime_s; jobs; requests; in_flight; dedup_hits; dedup_misses; styles }
      ->
      slist
        [
          atom "status";
          field "uptime-s" [ sfloat uptime_s ];
          field "jobs" [ sint jobs ];
          field "requests" [ sint requests ];
          field "in-flight" [ sint in_flight ];
          field "dedup-hits" [ sint dedup_hits ];
          field "dedup-misses" [ sint dedup_misses ];
          field "styles" (List.map (fun s -> atom (style_name s)) styles);
        ]
    | Rmetrics { counters; gauges; histograms } ->
      slist
        [
          atom "metrics";
          field "counters"
            (List.map (fun (k, v) -> slist [ atom k; sint v ]) counters);
          field "gauges"
            (List.map (fun (k, v) -> slist [ atom k; sfloat v ]) gauges);
          field "histograms"
            (List.map
               (fun (k, vs) ->
                 slist (atom k :: List.map sfloat (Array.to_list vs)))
               histograms);
        ]
    | Rverdict v ->
      slist
        [
          atom "verdict";
          field "name" [ atom v.v_name ];
          field "proved" [ sbool v.v_proved ];
          field "negative" [ sbool v.v_negative ];
          field "cases" (List.map case_sx v.v_cases);
          field "text" [ atom v.v_text ];
        ]
    | Rsummary { invariants = ip, it; cases = cp, ct; splits; steps; text } ->
      slist
        [
          atom "summary";
          field "invariants" [ sint ip; sint it ];
          field "cases" [ sint cp; sint ct ];
          field "splits" [ sint splits ];
          field "steps" [ sint steps ];
          field "text" [ atom text ];
        ]
    | Rlint { errors; warnings; infos; cached; text } ->
      slist
        [
          atom "lint-report";
          field "errors" [ sint errors ];
          field "warnings" [ sint warnings ];
          field "infos" [ sint infos ];
          field "cached" [ sbool cached ];
          field "text" [ atom text ];
        ]
    | Rsecrecy { verdict; clauses; facts; rounds; resolutions; cached } ->
      slist
        [
          atom "secrecy-report";
          field "verdict" [ atom verdict ];
          field "clauses" [ sint clauses ];
          field "facts" [ sint facts ];
          field "rounds" [ sint rounds ];
          field "resolutions" [ sint resolutions ];
          field "cached" [ sbool cached ];
        ]
    | Rcert { cert } ->
      slist [ atom "certificate"; field "cert" [ atom cert ] ]
    | Rcheck { ok; obligations; steps; errors } ->
      slist
        [
          atom "check-report";
          field "ok" [ sbool ok ];
          field "obligations" [ sint obligations ];
          field "steps" [ sint steps ];
          field "errors"
            (List.map (fun (p, m) -> slist [ atom p; atom m ]) errors);
        ]
    | Reval { text } -> slist [ atom "eval-output"; field "text" [ atom text ] ]
    | Rtimeout { limit; steps; name } ->
      slist
        [
          atom "timeout";
          field "limit"
            (match limit with
            | `Steps n -> [ atom "steps"; sint n ]
            | `Deadline d -> [ atom "deadline"; sfloat d ]);
          field "steps" [ sint steps ];
          field "name" [ atom name ];
        ]
    | Rerror { code; msg } ->
      slist [ atom "error"; field "code" [ atom code ]; field "msg" [ atom msg ] ]
    | Done { exit_code } -> slist [ atom "done"; field "exit" [ sint exit_code ] ]
  in
  Sexp.to_string sx

let decode_response s =
  let* sx = parse_payload s in
  let* tag, flds = fields sx in
  match tag with
  | "pong" ->
    let* v = get "pid" flds in
    let* pid = as_int "pid" v in
    let* v = get "uptime-s" flds in
    let* uptime_s = as_float "uptime-s" v in
    Ok (Pong { pid; uptime_s })
  | "status" ->
    let* v = get "uptime-s" flds in
    let* uptime_s = as_float "uptime-s" v in
    let* v = get "jobs" flds in
    let* jobs = as_int "jobs" v in
    let* v = get "requests" flds in
    let* requests = as_int "requests" v in
    let* v = get "in-flight" flds in
    let* in_flight = as_int "in-flight" v in
    (* absent on daemons predating the dedup counters; default 0 *)
    let* dedup_hits =
      match assoc "dedup-hits" flds with
      | None -> Ok 0
      | Some v -> as_int "dedup-hits" v
    in
    let* dedup_misses =
      match assoc "dedup-misses" flds with
      | None -> Ok 0
      | Some v -> as_int "dedup-misses" v
    in
    let* names =
      match assoc "styles" flds with
      | None -> Ok []
      | Some vs -> as_atoms "styles" vs
    in
    let* styles =
      List.fold_right
        (fun n acc ->
          let* acc = acc in
          let* st = style_of_name n in
          Ok (st :: acc))
        names (Ok [])
    in
    Ok
      (Rstatus
         {
           uptime_s;
           jobs;
           requests;
           in_flight;
           dedup_hits;
           dedup_misses;
           styles;
         })
  | "metrics" ->
    let pair conv = function
      | Sexp.List [ Sexp.Atom k; Sexp.Atom v ] -> (
        match conv v with
        | Some v -> Ok (k, v)
        | None -> Error "metrics: bad value")
      | _ -> Error "metrics: expected (name value)"
    in
    let all conv vs =
      List.fold_right
        (fun sx acc ->
          let* acc = acc in
          let* kv = pair conv sx in
          Ok (kv :: acc))
        vs (Ok [])
    in
    let* cs = get "counters" flds in
    let* counters = all int_of_string_opt cs in
    let* gs = get "gauges" flds in
    let* gauges = all float_of_string_opt gs in
    let* hs = get "histograms" flds in
    let* histograms =
      List.fold_right
        (fun sx acc ->
          let* acc = acc in
          match sx with
          | Sexp.List (Sexp.Atom k :: vs) ->
            let* floats =
              List.fold_right
                (fun v acc ->
                  let* acc = acc in
                  match v with
                  | Sexp.Atom a -> (
                    match float_of_string_opt a with
                    | Some f -> Ok (f :: acc)
                    | None -> Error "histograms: bad value")
                  | _ -> Error "histograms: expected atoms")
                vs (Ok [])
            in
            Ok ((k, Array.of_list floats) :: acc)
          | _ -> Error "histograms: expected (name values...)")
        hs (Ok [])
    in
    Ok (Rmetrics { counters; gauges; histograms })
  | "verdict" ->
    let* v = get "name" flds in
    let* v_name = as_atom "name" v in
    let* v = get "proved" flds in
    let* v_proved = as_bool "proved" v in
    let* v = get "negative" flds in
    let* v_negative = as_bool "negative" v in
    let* cs = get "cases" flds in
    let* v_cases =
      List.fold_right
        (fun sx acc ->
          let* acc = acc in
          let* c = case_of_sx sx in
          Ok (c :: acc))
        cs (Ok [])
    in
    let* v = get "text" flds in
    let* v_text = as_atom "text" v in
    Ok (Rverdict { v_name; v_proved; v_negative; v_cases; v_text })
  | "summary" ->
    let pair what v =
      match v with
      | [ Sexp.Atom a; Sexp.Atom b ] -> (
        match int_of_string_opt a, int_of_string_opt b with
        | Some a, Some b -> Ok (a, b)
        | _ -> Error (Printf.sprintf "field %S: expected two integers" what))
      | _ -> Error (Printf.sprintf "field %S: expected two integers" what)
    in
    let* v = get "invariants" flds in
    let* invariants = pair "invariants" v in
    let* v = get "cases" flds in
    let* cases = pair "cases" v in
    let* v = get "splits" flds in
    let* splits = as_int "splits" v in
    let* v = get "steps" flds in
    let* steps = as_int "steps" v in
    let* v = get "text" flds in
    let* text = as_atom "text" v in
    Ok (Rsummary { invariants; cases; splits; steps; text })
  | "lint-report" ->
    let* v = get "errors" flds in
    let* errors = as_int "errors" v in
    let* v = get "warnings" flds in
    let* warnings = as_int "warnings" v in
    let* v = get "infos" flds in
    let* infos = as_int "infos" v in
    let* v = get "cached" flds in
    let* cached = as_bool "cached" v in
    let* v = get "text" flds in
    let* text = as_atom "text" v in
    Ok (Rlint { errors; warnings; infos; cached; text })
  | "secrecy-report" ->
    let* v = get "verdict" flds in
    let* verdict = as_atom "verdict" v in
    let* v = get "clauses" flds in
    let* clauses = as_int "clauses" v in
    let* v = get "facts" flds in
    let* facts = as_int "facts" v in
    let* v = get "rounds" flds in
    let* rounds = as_int "rounds" v in
    let* v = get "resolutions" flds in
    let* resolutions = as_int "resolutions" v in
    let* v = get "cached" flds in
    let* cached = as_bool "cached" v in
    Ok (Rsecrecy { verdict; clauses; facts; rounds; resolutions; cached })
  | "certificate" ->
    let* v = get "cert" flds in
    let* cert = as_atom "cert" v in
    Ok (Rcert { cert })
  | "check-report" ->
    let* v = get "ok" flds in
    let* ok = as_bool "ok" v in
    let* v = get "obligations" flds in
    let* obligations = as_int "obligations" v in
    let* v = get "steps" flds in
    let* steps = as_int "steps" v in
    let* es = get "errors" flds in
    let* errors =
      List.fold_right
        (fun sx acc ->
          let* acc = acc in
          match sx with
          | Sexp.List [ Sexp.Atom p; Sexp.Atom m ] -> Ok ((p, m) :: acc)
          | _ -> Error "check-report: expected (path msg)")
        es (Ok [])
    in
    Ok (Rcheck { ok; obligations; steps; errors })
  | "eval-output" ->
    let* v = get "text" flds in
    let* text = as_atom "text" v in
    Ok (Reval { text })
  | "timeout" ->
    let* v = get "limit" flds in
    let* limit =
      match v with
      | [ Sexp.Atom "steps"; Sexp.Atom n ] -> (
        match int_of_string_opt n with
        | Some n -> Ok (`Steps n)
        | None -> Error "timeout: bad step limit")
      | [ Sexp.Atom "deadline"; Sexp.Atom d ] -> (
        match float_of_string_opt d with
        | Some d -> Ok (`Deadline d)
        | None -> Error "timeout: bad deadline")
      | _ -> Error "timeout: expected (limit steps N) or (limit deadline D)"
    in
    let* v = get "steps" flds in
    let* steps = as_int "steps" v in
    let* v = get "name" flds in
    let* name = as_atom "name" v in
    Ok (Rtimeout { limit; steps; name })
  | "error" ->
    let* v = get "code" flds in
    let* code = as_atom "code" v in
    let* v = get "msg" flds in
    let* msg = as_atom "msg" v in
    Ok (Rerror { code; msg })
  | "done" ->
    let* v = get "exit" flds in
    let* exit_code = as_int "exit" v in
    Ok (Done { exit_code })
  | t -> Error (Printf.sprintf "unknown response %S" t)

(* Mirrors Core.Report.result_fingerprint; keep the two in sync (the
   cross-check test compares their outputs byte for byte). *)
let verdict_fingerprint v =
  let b = Buffer.create 256 in
  Buffer.add_string b v.v_name;
  Buffer.add_string b (if v.v_proved then "=proved" else "=unproved");
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf ";%s:%s:splits=%d:steps=%d" c.c_name c.c_status
           c.c_splits c.c_steps))
    v.v_cases;
  Buffer.contents b
