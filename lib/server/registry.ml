(* The server's event loop is single-threaded, but the registry is also
   exercised directly by tests from several domains, so every operation
   holds the (uncontended) lock. *)

let c_hits = Telemetry.Metrics.counter "server.dedup.hits"
let c_misses = Telemetry.Metrics.counter "server.dedup.misses"

(* Requesters are kept newest-first and capped: the list exists so a
   trace or log line can answer "who is waiting on this obligation",
   not to be an unbounded audit log. *)
let max_requesters = 8

type 'a entry = {
  task : 'a Sched.Task.t;
  mutable seq : int;
  mutable requesters : string list;
}

type 'a t = {
  lock : Mutex.t;
  entries : (string, 'a entry) Hashtbl.t;
  capacity : int;
  mutable next_seq : int;
}

let create ?(capacity = 1024) () =
  {
    lock = Mutex.create ();
    entries = Hashtbl.create 64;
    capacity = max 1 capacity;
    next_seq = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Evict the oldest *resolved* entries until we are back under capacity;
   in-flight futures must survive (dropping one would fork duplicate
   work and break the shared-future invariant). *)
let evict t =
  if Hashtbl.length t.entries > t.capacity then begin
    let resolved =
      Hashtbl.fold
        (fun k e acc ->
          if Sched.Task.is_resolved e.task then (e.seq, k) :: acc else acc)
        t.entries []
      |> List.sort compare
    in
    let excess = Hashtbl.length t.entries - t.capacity in
    List.iteri
      (fun i (_, k) -> if i < excess then Hashtbl.remove t.entries k)
      resolved
  end

let attach e requester =
  match requester with
  | None -> ()
  | Some r ->
    let others = List.filter (fun r' -> r' <> r) e.requesters in
    e.requesters <- r :: others;
    if List.length e.requesters > max_requesters then
      e.requesters <- List.filteri (fun i _ -> i < max_requesters) e.requesters

let find_or_submit ?requester t ~key spawn =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.entries key with
  | Some e ->
    Telemetry.Metrics.incr c_hits;
    (* refresh recency so hot obligations outlive cold ones *)
    e.seq <- t.next_seq;
    t.next_seq <- t.next_seq + 1;
    attach e requester;
    e.task, if Sched.Task.is_resolved e.task then `Cached else `Inflight
  | None ->
    Telemetry.Metrics.incr c_misses;
    let task = spawn () in
    let e = { task; seq = t.next_seq; requesters = [] } in
    attach e requester;
    Hashtbl.replace t.entries key e;
    t.next_seq <- t.next_seq + 1;
    evict t;
    task, `Fresh

let requesters t ~key =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.entries key with
  | Some e -> e.requesters
  | None -> []

let in_flight_count t =
  with_lock t @@ fun () ->
  Hashtbl.fold
    (fun _ e n -> if Sched.Task.is_resolved e.task then n else n + 1)
    t.entries 0

let size t = with_lock t @@ fun () -> Hashtbl.length t.entries
