(** The verifyd wire protocol: length-prefixed s-expression frames.

    A connection carries a sequence of {e frames} in each direction.  A
    frame is a 4-byte big-endian payload length followed by that many
    bytes of payload; each payload is exactly one s-expression
    ({!Certify.Sexp}, the certificate syntax).  The client sends one
    {!request} per frame; the server answers every request with a stream
    of {!response} frames terminated by [Done] — so responses are
    self-delimiting and verdicts stream back as they are proved, before
    the campaign finishes.

    Malformed input — an oversized or negative length, a payload that is
    not a well-formed s-expression, an s-expression that is not a known
    request — is reported as an [Error _] result (and answered over the
    wire with an [Rerror] frame), never as an exception escape: a hostile
    or confused client cannot take the server down.

    The module is deliberately self-contained (no kernel, no prover): the
    fuzz tests exercise the codec without loading any spec. *)

(** {1 Framing} *)

module Frame : sig
  (** Frames longer than this are rejected at decode time (default
      64 MiB — whole-campaign certificates fit comfortably). *)
  val default_max : int

  (** [encode buf payload] appends the length prefix and payload. *)
  val encode : Buffer.t -> string -> unit

  (** [to_string payload] is a single encoded frame. *)
  val to_string : string -> string

  (** An incremental decoder: feed it raw bytes as they arrive, pull
      complete frames out.  A decoder that has returned [Error _] is
      poisoned and returns the same error forever. *)
  type decoder

  val decoder : ?max_frame:int -> unit -> decoder

  (** [feed dec bytes off len] appends received bytes. *)
  val feed : decoder -> bytes -> int -> int -> unit

  (** [next dec] is [Ok (Some payload)] when a complete frame is
      available, [Ok None] when more bytes are needed, [Error msg] on a
      violated framing invariant (oversized length; the error sticks). *)
  val next : decoder -> (string option, string) result

  (** [buffered dec] — bytes fed but not yet returned as frames. *)
  val buffered : decoder -> int

  (** Blocking helpers for simple clients (the server uses the
      incremental decoder). [read fd] is [Ok None] on clean EOF. *)
  val read : ?max_frame:int -> Unix.file_descr -> (string option, string) result

  val write : Unix.file_descr -> string -> unit
end

(** {1 Requests} *)

(** Protocol style over the wire; {!Server} maps it onto
    [Tls.Model.style]. *)
type style = Original | Variant

(** [style_name s] is the wire spelling: ["original"] / ["variant"]. *)
val style_name : style -> string

type request =
  | Ping
  | Status
  | Metrics
  | Shutdown  (** stop accepting, drain in-flight work, exit *)
  | Lint of { style : style }
  | Verify of {
      style : style;
      only : string list;  (** empty: the whole campaign *)
      negative : bool;  (** also attempt properties 2'/3' *)
      extensions : bool;
      certify : bool;
          (** trace the campaign's reductions, build a proof certificate
              and stream it back as an [Rcert] frame before the summary *)
    }
  | Secrecy of { style : style }
      (** static Dolev-Yao secrecy analysis of the resident spec; the
          saturation result is cached per style, so re-queries are warm *)
  | Check of { cert : string }  (** a serialized proof certificate *)
  | Eval of {
      src : string;  (** mini-CafeOBJ phrases, as for [caferepl] *)
      step_limit : int option;  (** cap on each red of a defined module *)
      deadline_s : float option;
    }

(** {1 Responses} *)

type case = {
  c_name : string;
  c_status : string;  (** ["proved"] | ["refuted"] | ["unknown"] *)
  c_splits : int;
  c_steps : int;
}

type verdict = {
  v_name : string;
  v_proved : bool;
  v_negative : bool;  (** a Section-5.3 negative property: refutation expected *)
  v_cases : case list;
  v_text : string;  (** the standalone binary's rendering, durations included *)
}

type response =
  | Pong of { pid : int; uptime_s : float }
  | Rstatus of {
      uptime_s : float;
      jobs : int;
      requests : int;
      in_flight : int;
      dedup_hits : int;
          (** requests coalesced onto an in-flight or cached obligation *)
      dedup_misses : int;
      styles : style list;
    }
  | Rmetrics of {
      counters : (string * int) list;
      gauges : (string * float) list;
      histograms : (string * float array) list;
          (** per histogram: [count; sum_ms; p50; p90; p99; max_ms] *)
    }
  | Rverdict of verdict
  | Rsummary of {
      invariants : int * int;  (** proved, total *)
      cases : int * int;
      splits : int;
      steps : int;
      text : string;
    }
  | Rlint of { errors : int; warnings : int; infos : int; cached : bool; text : string }
  | Rsecrecy of {
      verdict : string;
          (** {!Analysis.Secrecy.verdict_name}: ["secure"], ["leaks"],
              ["inconclusive"] or ["n/a"] *)
      clauses : int;
      facts : int;
      rounds : int;
      resolutions : int;
      cached : bool;
    }
  | Rcert of { cert : string }
      (** the serialized certificate of a [Verify { certify = true }]
          campaign, replayable locally or via a [Check] request *)
  | Rcheck of {
      ok : bool;
      obligations : int;
      steps : int;
      errors : (string * string) list;  (** (breadcrumb path, message) *)
    }
  | Reval of { text : string }
  | Rtimeout of {
      limit : [ `Steps of int | `Deadline of float ];
      steps : int;
      name : string;  (** which obligation / phrase hit the limit *)
    }
  | Rerror of { code : string; msg : string }
      (** codes: ["protocol"], ["bad-request"], ["eval"], ["server"] *)
  | Done of { exit_code : int }

(** {1 Codec} *)

(** [encode_request ?id req] — with [id], a client-chosen request id is
    appended as a trailing [(id …)] field.  Decoders ignore unknown
    fields, so tagging is backward- and forward-compatible;
    {!decode_request} never sees it (use {!request_id}). *)
val encode_request : ?id:string -> request -> string

val decode_request : string -> (request, string) result

(** [request_id payload] extracts the [(id …)] tag from an encoded
    request, if any.  [None] on untagged or malformed payloads. *)
val request_id : string -> string option
val encode_response : response -> string
val decode_response : string -> (response, string) result

(** [verdict_fingerprint v] — the deterministic subset of a verdict (name,
    proved flag, cases with splits/steps; no [v_text], no durations), in
    the same format as [Core.Report.result_fingerprint].  Server and
    standalone runs of the same obligation agree byte-for-byte here. *)
val verdict_fingerprint : verdict -> string
