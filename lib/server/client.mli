(** A thin blocking client for {!Server}.

    One {!t} is one connection; {!request} writes a request frame and
    reads the response stream until the terminating [Done], handing every
    intermediate response to [on_response] as it arrives (so campaign
    verdicts can be printed while later obligations are still running).
    The returned int is the server-assigned exit code for the request —
    the same {!Telemetry.Cli.Exit} codes the standalone binaries use. *)

type t

(** [connect ~socket] connects to a listening verifyd.
    @raise Unix.Unix_error if nothing is serving the socket. *)
val connect : socket:string -> t

val close : t -> unit

(** [with_client ~socket f] — connect, run [f], always close. *)
val with_client : socket:string -> (t -> 'a) -> 'a

(** [request ?id t req ~on_response] performs one request round-trip.
    [id] tags the request ({!Protocol.encode_request}) so server-side
    logs, metrics and traces can be filtered to it.
    @raise Failure on protocol violations (bad frame, EOF before [Done]). *)
val request :
  ?id:string ->
  t ->
  Protocol.request ->
  on_response:(Protocol.response -> unit) ->
  int

(** [request_collect ?id t req] — as {!request}, accumulating the
    responses. *)
val request_collect :
  ?id:string -> t -> Protocol.request -> Protocol.response list * int
