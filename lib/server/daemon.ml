module P = Protocol
module Metrics = Telemetry.Metrics
module Log = Telemetry.Log
module Flight = Telemetry.Flight
module Obs = Telemetry.Obs
module Exit = Telemetry.Cli.Exit

(* ------------------------------------------------------------------ *)
(* Operational metrics (always on; served by the [metrics] request) *)

let c_requests = Metrics.counter "server.requests"
let c_connections = Metrics.counter "server.connections"
let c_timeouts = Metrics.counter "server.timeouts"
let c_protocol_errors = Metrics.counter "server.protocol_errors"
let c_lint_cache_hits = Metrics.counter "server.lint.cache_hits"
let c_secrecy_cache_hits = Metrics.counter "server.secrecy.cache_hits"
let h_latency = Metrics.histogram "server.request_latency"

type config = {
  socket : string;
  jobs : int;
  idle_timeout_s : float;
  max_frame : int;
  handle_signals : bool;
  metrics_port : int option;
  announce_metrics_port : int -> unit;
  log_file : string option;
  log_level : Log.level option;
  log_rotate_bytes : int;
  slow_ms : float;
  flight_path : string option;
}

let default_config ~socket =
  {
    socket;
    jobs = Domain.recommended_domain_count ();
    idle_timeout_s = 300.;
    max_frame = P.Frame.default_max;
    handle_signals = true;
    metrics_port = None;
    announce_metrics_port = ignore;
    log_file = None;
    log_level = None;
    log_rotate_bytes = 0;
    slow_ms = 500.;
    flight_path = Some (socket ^ ".flight.json");
  }

(* ------------------------------------------------------------------ *)
(* Resident state: everything the daemon keeps hot across requests *)

type resident = {
  pool : Sched.Pool.t;
  envs : (P.style * Core.Induction.env) list;
  registry : Core.Induction.result Registry.t;
  lint_cache : (P.style, Analysis.Lint.report) Hashtbl.t;
  secrecy_cache : (P.style, Analysis.Secrecy.result) Hashtbl.t;
  (* the expensive, campaign-independent certificate parts (LPO
     precedence, critical-pair joins) computed once per style *)
  static_certs :
    ( P.style,
      Kernel.Signature.op list option
      * (Kernel.Completion.overlap * Analysis.Confluence.jcert) list )
    Hashtbl.t;
  eval_env : Cafeobj.Eval.env;
  started_ns : int;
  slow_ms : float;
  flight_path : string option;
  mutable served : int;
  mutable pending : int;  (* queued jobs, refreshed once per loop tick *)
}

(* Post-mortem snapshot of the flight rings; called on the paths where a
   core dump would otherwise be the only evidence. *)
let flight_dump resident reason =
  match resident.flight_path with
  | Some path when Flight.enabled () -> Flight.dump_to_file ~reason path
  | _ -> ()

let model_style = function
  | P.Original -> Tls.Model.Original
  | P.Variant -> Tls.Model.Cf2First

let uptime_s resident =
  float_of_int (Telemetry.Probe.now_ns () - resident.started_ns) /. 1e9

let verdict_of_result ~negative (r : Core.Induction.result) =
  let case (c : Core.Induction.case_result) =
    let s = Core.Prover.outcome_stats c.Core.Induction.outcome in
    {
      P.c_name = c.Core.Induction.case_name;
      c_status =
        (match c.Core.Induction.outcome with
        | Core.Prover.Proved _ -> "proved"
        | Core.Prover.Refuted _ -> "refuted"
        | Core.Prover.Unknown _ -> "unknown");
      c_splits = s.Core.Prover.splits;
      c_steps = s.Core.Prover.rewrite_steps;
    }
  in
  {
    P.v_name = r.Core.Induction.res_invariant;
    v_proved = r.Core.Induction.proved;
    v_negative = negative;
    v_cases = List.map case r.Core.Induction.cases;
    v_text = Format.asprintf "%a" Core.Report.pp_result r;
  }

(* ------------------------------------------------------------------ *)
(* Per-connection state *)

(* Requests on one connection are answered strictly in request order;
   obligations are dispatched to the pool the moment the request frame
   arrives, so later requests compute while earlier ones stream. *)
type active =
  | Aimmediate of P.request
  | Aerror of { responses : P.response list; exit_code : int }
  | Averify of {
      mutable todo : (bool * Core.Induction.result Sched.Task.t) list;
      mutable results : Core.Induction.result list;  (* positives, reversed *)
      mutable timed_out : bool;
      mutable unexpected : bool;
      mutable errored : bool;
    }
  | Alint of {
      style : P.style;
      task : Analysis.Lint.report Sched.Task.t;
      cached : bool;
    }
  | Asecrecy of {
      style : P.style;
      task : Analysis.Secrecy.result Sched.Task.t;
      cached : bool;
    }
  | Acert of {
      task : ((bool * Core.Induction.result) list * string) Sched.Task.t;
          (** certifying campaign: (negative?, result) list + certificate *)
    }
  | Acheck of { task : Analysis.Certgen.check_result Sched.Task.t }

type job = { active : active; kind : string; req_id : string; t0_ns : int }

(* fallback ids for clients that did not tag their request *)
let srv_id = Atomic.make 0

type conn = {
  fd : Unix.file_descr;
  dec : P.Frame.decoder;
  out : Buffer.t;
  mutable out_off : int;
  jobs_q : job Queue.t;
  mutable last_active : float;
  mutable closing : bool;  (* stop reading; close once drained *)
  mutable dead : bool;  (* close now *)
}

let send conn resp = P.Frame.encode conn.out (P.encode_response resp)
let has_output conn = Buffer.length conn.out > conn.out_off

let finish_job resident conn job ~exit_code =
  send conn (P.Done { exit_code });
  ignore (Queue.pop conn.jobs_q);
  resident.served <- resident.served + 1;
  Metrics.incr c_requests;
  Metrics.incr (Metrics.counter ("server.requests." ^ job.kind));
  let dt_ns = Telemetry.Probe.now_ns () - job.t0_ns in
  Metrics.observe_ns h_latency dt_ns;
  Metrics.observe_ns
    (Metrics.histogram ("server.request_latency." ^ job.kind))
    dt_ns;
  if Telemetry.Probe.enabled () then
    Telemetry.Probe.with_request (Some job.req_id) (fun () ->
        Telemetry.Probe.span_since ~cat:"server" ("req:" ^ job.kind) job.t0_ns)
  else Telemetry.Probe.span_since ~cat:"server" ("req:" ^ job.kind) job.t0_ns;
  let ms = float_of_int dt_ns /. 1e6 in
  let fields =
    [
      "id", Log.S job.req_id;
      "kind", Log.S job.kind;
      "ms", Log.F ms;
      "exit", Log.I exit_code;
    ]
  in
  if resident.slow_ms > 0. && ms >= resident.slow_ms then
    Log.warn "slow_request" fields
  else Log.info "request_done" fields;
  conn.last_active <- Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Immediate requests *)

(* Point-in-time gauges, recomputed on every export (s-expr Metrics
   request and HTTP /metrics alike). *)
let refresh_gauges resident =
  List.iter
    (fun (wire, env) ->
      let sys = Core.Induction.system env in
      let ms = Kernel.Rewrite.memo_stats sys in
      let looked = ms.Kernel.Rewrite.hits + ms.Kernel.Rewrite.misses in
      let prefix = "server.memo." ^ P.style_name wire in
      Metrics.set_gauge (prefix ^ ".hit_rate")
        (if looked = 0 then 0.
         else float_of_int ms.Kernel.Rewrite.hits /. float_of_int looked);
      Metrics.set_gauge (prefix ^ ".entries")
        (float_of_int ms.Kernel.Rewrite.entries))
    resident.envs;
  Metrics.set_gauge "server.intern.live_terms"
    (float_of_int (Kernel.Term.intern_table_len ()));
  Metrics.set_gauge "server.registry.entries"
    (float_of_int (Registry.size resident.registry));
  Metrics.set_gauge "server.registry.in_flight"
    (float_of_int (Registry.in_flight_count resident.registry));
  Metrics.set_gauge "server.queue_depth" (float_of_int resident.pending);
  Metrics.set_gauge "server.uptime_s" (uptime_s resident)

let metrics_response resident =
  refresh_gauges resident;
  let snap = Metrics.snapshot () in
  P.Rmetrics
    {
      counters = snap.Metrics.m_counters;
      gauges = snap.Metrics.m_gauges;
      histograms =
        List.map
          (fun (h : Metrics.histogram_view) ->
            ( h.Metrics.h_name,
              [|
                float_of_int h.Metrics.h_count;
                h.Metrics.h_sum_ms;
                h.Metrics.h_p50_ms;
                h.Metrics.h_p90_ms;
                h.Metrics.h_p99_ms;
                h.Metrics.h_max_ms;
              |] ))
          snap.Metrics.m_histograms;
    }

let handle_eval resident ~step_limit ~deadline_s src emit =
  (* [red] runs synchronously on the event loop: evals are bounded by the
     per-request step limit / deadline, which is also what makes this the
     direct wire exercise of Limit_exceeded. *)
  let apply_limits name =
    match Cafeobj.Eval.find_module resident.eval_env name with
    | Some spec ->
      let sys = Cafeobj.Spec.system spec in
      Option.iter (Kernel.Rewrite.set_step_limit sys) step_limit;
      Option.iter (Kernel.Rewrite.set_deadline sys) deadline_s
    | None -> ()
  in
  match Cafeobj.Parser.parse_string src with
  | exception Cafeobj.Parser.Error m ->
    emit (P.Rerror { code = "eval"; msg = m });
    Exit.failure
  | exception Cafeobj.Lexer.Error { line; col; message } ->
    emit
      (P.Rerror
         {
           code = "eval";
           msg = Printf.sprintf "line %d, col %d: %s" line col message;
         });
    Exit.failure
  | program -> (
    try
      List.iter
        (fun (phrase, _pos) ->
          let out = Cafeobj.Eval.eval resident.eval_env phrase in
          (match out with
          | Cafeobj.Eval.Defined m -> apply_limits m
          | _ -> ());
          emit (P.Reval { text = Format.asprintf "%a" Cafeobj.Eval.pp_output out }))
        program;
      Exit.ok
    with
    | Kernel.Rewrite.Limit_exceeded { limit; steps } ->
      Metrics.incr c_timeouts;
      Log.warn "timeout" [ "kind", Log.S "eval"; "steps", Log.I steps ];
      flight_dump resident "limit-exceeded: eval";
      let limit =
        match limit with
        | Kernel.Rewrite.Steps n -> `Steps n
        | Kernel.Rewrite.Deadline d -> `Deadline d
      in
      emit (P.Rtimeout { limit; steps; name = "eval" });
      Exit.timeout
    | Cafeobj.Eval.Error m ->
      emit (P.Rerror { code = "eval"; msg = m });
      Exit.failure)

(* ------------------------------------------------------------------ *)
(* Request intake: build the job (dispatching pool work now), enqueue *)

let start_request resident conn ~req_id req =
  let t0_ns = Telemetry.Probe.now_ns () in
  let enqueue kind active =
    Queue.push { active; kind; req_id; t0_ns } conn.jobs_q
  in
  match req with
  | P.Ping -> enqueue "ping" (Aimmediate req)
  | P.Status -> enqueue "status" (Aimmediate req)
  | P.Metrics -> enqueue "metrics" (Aimmediate req)
  | P.Shutdown -> enqueue "shutdown" (Aimmediate req)
  | P.Eval _ -> enqueue "eval" (Aimmediate req)
  | P.Lint { style } ->
    let cached = Hashtbl.find_opt resident.lint_cache style in
    let task =
      match cached with
      | Some report ->
        Metrics.incr c_lint_cache_hits;
        Sched.Task.of_result report
      | None ->
        Sched.Pool.submit resident.pool (fun () ->
            Analysis.Lint.run ~pool:resident.pool
              [
                Analysis.Lint.Generated
                  {
                    label = "generated:tls-" ^ P.style_name style;
                    spec = Tls.Model.spec (model_style style);
                  };
              ])
    in
    enqueue "lint" (Alint { style; task; cached = cached <> None })
  | P.Secrecy { style } ->
    let cached = Hashtbl.find_opt resident.secrecy_cache style in
    let task =
      match cached with
      | Some result ->
        Metrics.incr c_secrecy_cache_hits;
        Sched.Task.of_result result
      | None ->
        Sched.Pool.submit resident.pool (fun () ->
            Analysis.Secrecy.analyze (Tls.Model.spec (model_style style)))
    in
    enqueue "secrecy" (Asecrecy { style; task; cached = cached <> None })
  | P.Check { cert } -> (
    match Certify.Cert.of_string cert with
    | Error msg ->
      enqueue "check"
        (Aerror
           {
             responses =
               [
                 P.Rerror
                   { code = "bad-request"; msg = "malformed certificate: " ^ msg };
               ];
             exit_code = Exit.usage;
           })
    | Ok cert ->
      let task =
        Sched.Pool.submit resident.pool (fun () ->
            Analysis.Certgen.check ~pool:resident.pool cert)
      in
      enqueue "check" (Acheck { task }))
  | P.Verify { style; only; negative; extensions; certify } -> (
    let mstyle = model_style style in
    let resolve () =
      match only with
      | [] ->
        Ok
          (Proofs.Tls_invariants.all mstyle
          @
          if extensions then Proofs.Tls_invariants.extensions mstyle else [])
      | names ->
        List.fold_right
          (fun name acc ->
            match acc with
            | Error _ as e -> e
            | Ok ps -> (
              match Proofs.Tls_invariants.find mstyle name with
              | p -> Ok (p :: ps)
              | exception Not_found -> Error name))
          names (Ok [])
    in
    match resolve () with
    | Error name ->
      enqueue "verify"
        (Aerror
           {
             responses =
               [
                 P.Rerror
                   {
                     code = "bad-request";
                     msg = Printf.sprintf "unknown proof %S" name;
                   };
               ];
             exit_code = Exit.usage;
           })
    | Ok proofs ->
      let env = List.assoc style resident.envs in
      let obligations =
        List.map (fun p -> false, p) proofs
        @
        if negative then
          [
            true, Proofs.Tls_invariants.prop2' mstyle;
            true, Proofs.Tls_invariants.prop3' mstyle;
          ]
        else []
      in
      if certify then begin
        (* A certifying campaign bypasses the registry (cached results
           carry no trace) and runs as one pool task: every red is traced,
           then the trace plus the per-style static evidence (LPO, joins —
           computed once and kept resident) becomes the certificate. *)
        let task =
          Sched.Pool.submit resident.pool (fun () ->
              Telemetry.Probe.with_span ~always:true ~cat:"server"
                "verify-certify"
              @@ fun () ->
              let tr = Kernel.Rewrite.tracer () in
              Kernel.Rewrite.set_tracer (Some tr);
              let results =
                Fun.protect
                  ~finally:(fun () -> Kernel.Rewrite.set_tracer None)
                  (fun () ->
                    List.map
                      (fun (neg, proof) ->
                        neg, Proofs.Tls_invariants.run ~pool:resident.pool env proof)
                      obligations)
              in
              let spec = Tls.Model.spec mstyle in
              let precedence, joins =
                match Hashtbl.find_opt resident.static_certs style with
                | Some sc -> sc
                | None ->
                  let term = Analysis.Termination.check spec in
                  let prec =
                    if term.Analysis.Termination.certified then
                      Some
                        term.Analysis.Termination.search
                          .Kernel.Order.precedence
                    else None
                  in
                  let conf =
                    Analysis.Confluence.check ~pool:resident.pool
                      ~certify:true spec
                  in
                  let sc = prec, conf.Analysis.Confluence.certs in
                  Hashtbl.replace resident.static_certs style sc;
                  sc
              in
              let b = Analysis.Certgen.create () in
              Analysis.Certgen.add_obligations b (Kernel.Rewrite.obligations tr);
              (match precedence with
              | Some p ->
                Analysis.Certgen.add_lpo b ~precedence:p
                  (Cafeobj.Spec.all_rules spec)
              | None -> ());
              Analysis.Certgen.add_joins b
                ~rules:(Cafeobj.Spec.all_rules spec)
                joins;
              results, Certify.Cert.to_string (Analysis.Certgen.cert b))
        in
        enqueue "verify" (Acert { task })
      end
      else
      let todo =
        List.map
          (fun (neg, proof) ->
            let name = Proofs.Tls_invariants.name_of proof in
            let key =
              Printf.sprintf "verify:%s:%s" (P.style_name style) name
            in
            let task, _how =
              Registry.find_or_submit ~requester:req_id resident.registry ~key
                (fun () ->
                  Sched.Pool.submit resident.pool (fun () ->
                      Telemetry.Probe.with_span ~always:true ~cat:"server"
                        ("obligation:" ^ name)
                      @@ fun () ->
                      Proofs.Tls_invariants.run ~pool:resident.pool env proof))
            in
            neg, task)
          obligations
      in
      enqueue "verify"
        (Averify
           {
             todo;
             results = [];
             timed_out = false;
             unexpected = false;
             errored = false;
           }))

(* ------------------------------------------------------------------ *)
(* Job progress: pump the head job of a connection as far as it goes *)

let progress resident conn ~request_shutdown =
  let rec pump () =
    match Queue.peek_opt conn.jobs_q with
    | None -> ()
    | Some job -> (
      match job.active with
      | Aimmediate req ->
        let exit_code =
          match req with
          | P.Ping ->
            send conn
              (P.Pong { pid = Unix.getpid (); uptime_s = uptime_s resident });
            Exit.ok
          | P.Status ->
            send conn
              (P.Rstatus
                 {
                   uptime_s = uptime_s resident;
                   jobs = Sched.Pool.jobs resident.pool;
                   requests = resident.served;
                   in_flight = Registry.in_flight_count resident.registry;
                   dedup_hits =
                     Metrics.value (Metrics.counter "server.dedup.hits");
                   dedup_misses =
                     Metrics.value (Metrics.counter "server.dedup.misses");
                   styles = List.map fst resident.envs;
                 });
            Exit.ok
          | P.Metrics ->
            send conn (metrics_response resident);
            Exit.ok
          | P.Shutdown ->
            request_shutdown ();
            Exit.ok
          | P.Eval { src; step_limit; deadline_s } ->
            handle_eval resident ~step_limit ~deadline_s src (send conn)
          | _ -> Exit.ok
        in
        finish_job resident conn job ~exit_code;
        pump ()
      | Aerror { responses; exit_code } ->
        List.iter (send conn) responses;
        finish_job resident conn job ~exit_code;
        pump ()
      | Alint a -> (
        match Sched.Task.poll a.task with
        | None -> ()
        | Some report ->
          if not (Hashtbl.mem resident.lint_cache a.style) then
            Hashtbl.replace resident.lint_cache a.style report;
          send conn
            (P.Rlint
               {
                 errors = report.Analysis.Lint.errors;
                 warnings = report.Analysis.Lint.warnings;
                 infos = report.Analysis.Lint.infos;
                 cached = a.cached;
                 text = Format.asprintf "%a" Analysis.Lint.pp_report report;
               });
          finish_job resident conn job
            ~exit_code:
              (if report.Analysis.Lint.errors > 0 then Exit.failure else Exit.ok);
          pump ()
        | exception e ->
          send conn (P.Rerror { code = "server"; msg = Printexc.to_string e });
          finish_job resident conn job ~exit_code:Exit.failure;
          pump ())
      | Asecrecy a -> (
        match Sched.Task.poll a.task with
        | None -> ()
        | Some result ->
          if not (Hashtbl.mem resident.secrecy_cache a.style) then
            Hashtbl.replace resident.secrecy_cache a.style result;
          let verdict = Analysis.Secrecy.verdict_name result in
          send conn
            (P.Rsecrecy
               {
                 verdict;
                 clauses = result.Analysis.Secrecy.r_clauses;
                 facts = result.Analysis.Secrecy.r_facts;
                 rounds = result.Analysis.Secrecy.r_rounds;
                 resolutions = result.Analysis.Secrecy.r_resolutions;
                 cached = a.cached;
               });
          finish_job resident conn job
            ~exit_code:
              (match result.Analysis.Secrecy.r_verdict with
              | Analysis.Secrecy.Secure | Analysis.Secrecy.Not_applicable _ ->
                Exit.ok
              | Analysis.Secrecy.Leak _ | Analysis.Secrecy.Inconclusive ->
                Exit.failure);
          pump ()
        | exception e ->
          send conn (P.Rerror { code = "server"; msg = Printexc.to_string e });
          finish_job resident conn job ~exit_code:Exit.failure;
          pump ())
      | Acert a -> (
        match Sched.Task.poll a.task with
        | None -> ()
        | Some (results, cert) ->
          let unexpected = ref false in
          List.iter
            (fun (neg, r) ->
              send conn (P.Rverdict (verdict_of_result ~negative:neg r));
              if neg && r.Core.Induction.proved then unexpected := true)
            results;
          let positives =
            List.filter_map (fun (neg, r) -> if neg then None else Some r) results
          in
          let summary = Core.Report.summarize positives in
          send conn
            (P.Rsummary
               {
                 invariants =
                   ( summary.Core.Report.invariants_proved,
                     summary.Core.Report.invariants_total );
                 cases =
                   ( summary.Core.Report.cases_proved,
                     summary.Core.Report.cases_total );
                 splits = summary.Core.Report.total_splits;
                 steps = summary.Core.Report.total_rewrite_steps;
                 text = Format.asprintf "%a" Core.Report.pp_summary summary;
               });
          send conn (P.Rcert { cert });
          finish_job resident conn job
            ~exit_code:
              (if !unexpected || Core.Report.failures positives <> [] then
                 Exit.failure
               else Exit.ok);
          pump ()
        | exception Kernel.Rewrite.Limit_exceeded { limit; steps } ->
          Metrics.incr c_timeouts;
          Log.warn "timeout"
            [ "id", Log.S job.req_id; "kind", Log.S job.kind; "steps", Log.I steps ];
          flight_dump resident "limit-exceeded: verify-certify";
          Kernel.Rewrite.set_tracer None;
          let limit =
            match limit with
            | Kernel.Rewrite.Steps n -> `Steps n
            | Kernel.Rewrite.Deadline d -> `Deadline d
          in
          send conn (P.Rtimeout { limit; steps; name = "obligation" });
          finish_job resident conn job ~exit_code:Exit.timeout;
          pump ()
        | exception e ->
          Kernel.Rewrite.set_tracer None;
          send conn (P.Rerror { code = "server"; msg = Printexc.to_string e });
          finish_job resident conn job ~exit_code:Exit.failure;
          pump ())
      | Acheck a -> (
        match Sched.Task.poll a.task with
        | None -> ()
        | Some res ->
          send conn
            (P.Rcheck
               {
                 ok = res.Analysis.Certgen.errors = [];
                 obligations = res.Analysis.Certgen.obligations;
                 steps = res.Analysis.Certgen.steps_replayed;
                 errors =
                   List.map
                     (fun (e : Certify.Check.error) ->
                       e.Certify.Check.e_path, e.Certify.Check.e_msg)
                     res.Analysis.Certgen.errors;
               });
          finish_job resident conn job
            ~exit_code:
              (if res.Analysis.Certgen.errors = [] then Exit.ok else Exit.failure);
          pump ()
        | exception e ->
          send conn (P.Rerror { code = "server"; msg = Printexc.to_string e });
          finish_job resident conn job ~exit_code:Exit.failure;
          pump ())
      | Averify a -> (
        match a.todo with
        | [] ->
          let results = List.rev a.results in
          let summary = Core.Report.summarize results in
          send conn
            (P.Rsummary
               {
                 invariants =
                   ( summary.Core.Report.invariants_proved,
                     summary.Core.Report.invariants_total );
                 cases =
                   ( summary.Core.Report.cases_proved,
                     summary.Core.Report.cases_total );
                 splits = summary.Core.Report.total_splits;
                 steps = summary.Core.Report.total_rewrite_steps;
                 text = Format.asprintf "%a" Core.Report.pp_summary summary;
               });
          let exit_code =
            if a.timed_out then Exit.timeout
            else if
              a.errored || a.unexpected
              || Core.Report.failures results <> []
            then Exit.failure
            else Exit.ok
          in
          finish_job resident conn job ~exit_code;
          pump ()
        | (neg, task) :: rest -> (
          match Sched.Task.poll task with
          | None -> ()
          | Some r ->
            send conn (P.Rverdict (verdict_of_result ~negative:neg r));
            if neg then begin
              if r.Core.Induction.proved then a.unexpected <- true
            end
            else a.results <- r :: a.results;
            a.todo <- rest;
            pump ()
          | exception Kernel.Rewrite.Limit_exceeded { limit; steps } ->
            Metrics.incr c_timeouts;
            Log.warn "timeout"
              [
                "id", Log.S job.req_id;
                "kind", Log.S job.kind;
                "steps", Log.I steps;
              ];
            flight_dump resident "limit-exceeded: obligation";
            let limit =
              match limit with
              | Kernel.Rewrite.Steps n -> `Steps n
              | Kernel.Rewrite.Deadline d -> `Deadline d
            in
            send conn (P.Rtimeout { limit; steps; name = "obligation" });
            a.timed_out <- true;
            a.todo <- rest;
            pump ()
          | exception e ->
            send conn
              (P.Rerror { code = "server"; msg = Printexc.to_string e });
            a.errored <- true;
            a.todo <- rest;
            pump ())))
  in
  pump ()

(* ------------------------------------------------------------------ *)
(* Socket plumbing *)

let flush_conn conn =
  if has_output conn then begin
    let bytes = Buffer.to_bytes conn.out in
    let len = Bytes.length bytes - conn.out_off in
    match Unix.write conn.fd bytes conn.out_off len with
    | n ->
      conn.out_off <- conn.out_off + n;
      if conn.out_off >= Buffer.length conn.out then begin
        Buffer.clear conn.out;
        conn.out_off <- 0
      end;
      conn.last_active <- Unix.gettimeofday ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
      conn.dead <- true
  end

let read_conn resident conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> conn.dead <- true
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error (ECONNRESET, _, _) -> conn.dead <- true
  | n ->
    conn.last_active <- Unix.gettimeofday ();
    P.Frame.feed conn.dec chunk 0 n;
    let rec drain_frames () =
      match P.Frame.next conn.dec with
      | Ok None -> ()
      | Ok (Some payload) ->
        (match P.decode_request payload with
        | Ok req ->
          let req_id =
            match P.request_id payload with
            | Some id -> id
            | None -> Printf.sprintf "srv-%d" (Atomic.fetch_and_add srv_id 1)
          in
          Log.debug "request_start" [ "id", Log.S req_id ];
          (* the request id is installed while dispatching so the pool
             captures it onto every obligation submitted for this job *)
          if Telemetry.Probe.enabled () then
            Telemetry.Probe.with_request (Some req_id) (fun () ->
                start_request resident conn ~req_id req)
          else start_request resident conn ~req_id req
        | Error msg ->
          Metrics.incr c_protocol_errors;
          Log.warn "protocol_error" [ "msg", Log.S msg ];
          send conn (P.Rerror { code = "protocol"; msg });
          send conn (P.Done { exit_code = Exit.usage }));
        drain_frames ()
      | Error msg ->
        (* framing is unrecoverable: answer, then close once flushed *)
        Metrics.incr c_protocol_errors;
        Log.warn "protocol_error" [ "msg", Log.S msg ];
        send conn (P.Rerror { code = "protocol"; msg });
        send conn (P.Done { exit_code = Exit.usage });
        conn.closing <- true
    in
    drain_frames ()

(* ------------------------------------------------------------------ *)
(* The HTTP sidecar: GET /metrics, /healthz, /statusz on a loopback TCP
   port, multiplexed through the same select() loop as the wire protocol
   so a scrape can never be starved by (or starve) proof work. *)

type hconn = {
  hfd : Unix.file_descr;
  hin : Buffer.t;
  mutable hout : string;  (* "" until the response is computed *)
  mutable hout_off : int;
  mutable hdead : bool;
}

let statusz_json resident ~draining =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"uptime_s\":%.3f,\"pid\":%d,\"jobs\":%d,\"draining\":%b,\
        \"requests_served\":%d,\"queue_depth\":%d"
       (uptime_s resident) (Unix.getpid ())
       (Sched.Pool.jobs resident.pool)
       draining resident.served resident.pending);
  Buffer.add_string b
    (Printf.sprintf
       ",\"registry\":{\"entries\":%d,\"in_flight\":%d,\"dedup_hits\":%d,\
        \"dedup_misses\":%d}"
       (Registry.size resident.registry)
       (Registry.in_flight_count resident.registry)
       (Metrics.value (Metrics.counter "server.dedup.hits"))
       (Metrics.value (Metrics.counter "server.dedup.misses")));
  Buffer.add_string b ",\"styles\":[";
  List.iteri
    (fun i (s, _) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\"" (P.style_name s)))
    resident.envs;
  Buffer.add_string b "]";
  Buffer.add_string b
    (Printf.sprintf ",\"build\":{\"ocaml\":\"%s\"}"
       (Obs.json_escape Sys.ocaml_version));
  Buffer.add_string b "}\n";
  Buffer.contents b

let http_route resident ~draining (r : Obs.Http.request) =
  if not (String.equal r.Obs.Http.meth "GET") then
    Obs.Http.response ~status:405 "method not allowed\n"
  else
    match r.Obs.Http.target with
    | "/metrics" ->
      refresh_gauges resident;
      Obs.Http.response ~content_type:Obs.content_type
        (Obs.render_openmetrics
           ~labeled:[ "server.request_latency", "type" ]
           (Metrics.snapshot ()))
    | "/healthz" ->
      if draining then Obs.Http.response ~status:503 "draining\n"
      else Obs.Http.response "ok\n"
    | "/statusz" ->
      Obs.Http.response ~content_type:"application/json"
        (statusz_json resident ~draining)
    | _ -> Obs.Http.response ~status:404 "not found\n"

(* ------------------------------------------------------------------ *)
(* The server proper *)

let stop_flag = Atomic.make false
let quit_flag = Atomic.make false

let claim_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket PF_UNIX SOCK_STREAM 0 in
    match Unix.connect probe (ADDR_UNIX path) with
    | () ->
      Unix.close probe;
      failwith (path ^ ": a verifyd is already serving this socket")
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) ->
      Unix.close probe;
      (try Unix.unlink path with Unix.Unix_error _ -> ())
    | exception e ->
      Unix.close probe;
      raise e
  end

let run config =
  if config.jobs < 1 then invalid_arg "Daemon.run: jobs must be at least 1";
  Atomic.set stop_flag false;
  Atomic.set quit_flag false;
  Option.iter (fun l -> Log.set_level (Some l)) config.log_level;
  let opened_sink =
    match config.log_file with
    | Some path ->
      Log.open_sink ~rotate_bytes:config.log_rotate_bytes path;
      true
    | None -> false
  in
  let flight_was_enabled = Flight.enabled () in
  if config.flight_path <> None then Flight.set_enabled true;
  (* bind the HTTP sidecar before claiming the unix socket: a TCP bind
     failure (port in use) must not unlink a live daemon's socket *)
  let hlfd =
    match config.metrics_port with
    | None -> None
    | Some port ->
      let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd SO_REUSEADDR true;
         Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, port));
         Unix.listen fd 16;
         Unix.set_nonblock fd
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      let bound =
        match Unix.getsockname fd with ADDR_INET (_, p) -> p | _ -> port
      in
      config.announce_metrics_port bound;
      Log.info "metrics_listening" [ "port", Log.I bound ];
      Some fd
  in
  claim_socket config.socket;
  let lfd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Unix.bind lfd (ADDR_UNIX config.socket);
  Unix.listen lfd 64;
  Unix.set_nonblock lfd;
  let previous_signals = ref [] in
  if config.handle_signals then begin
    let install signum handler =
      let old = Sys.signal signum (Sys.Signal_handle handler) in
      previous_signals := (signum, old) :: !previous_signals
    in
    install Sys.sigint (fun _ -> Atomic.set stop_flag true);
    install Sys.sigterm (fun _ -> Atomic.set stop_flag true);
    (* SIGQUIT: dump the flight recorder without dying *)
    install Sys.sigquit (fun _ -> Atomic.set quit_flag true)
  end;
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let pool = Sched.Pool.create ~jobs:config.jobs () in
  (* Load the specs once: both proof environments are built before the
     first request, so every request — including the first — runs against
     the resident term universe. *)
  let resident =
    {
      pool;
      envs =
        [
          P.Original, Tls.Model.env Tls.Model.Original;
          P.Variant, Tls.Model.env Tls.Model.Cf2First;
        ];
      registry = Registry.create ();
      lint_cache = Hashtbl.create 4;
      secrecy_cache = Hashtbl.create 4;
      static_certs = Hashtbl.create 4;
      eval_env = Cafeobj.Eval.create ();
      started_ns = Telemetry.Probe.now_ns ();
      slow_ms = config.slow_ms;
      flight_path = config.flight_path;
      served = 0;
      pending = 0;
    }
  in
  Log.info "daemon_start"
    [
      "socket", Log.S config.socket;
      "jobs", Log.I config.jobs;
      "pid", Log.I (Unix.getpid ());
    ];
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let hconns : (Unix.file_descr, hconn) Hashtbl.t = Hashtbl.create 8 in
  let draining = ref false in
  let listening = ref true in
  let request_shutdown () = Atomic.set stop_flag true in
  let cleanup () =
    Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) conns;
    Hashtbl.reset conns;
    Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) hconns;
    Hashtbl.reset hconns;
    (match hlfd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    if !listening then (try Unix.close lfd with Unix.Unix_error _ -> ());
    (try Unix.unlink config.socket with Unix.Unix_error _ -> ());
    Sched.Pool.shutdown pool;
    List.iter (fun (signum, old) -> Sys.set_signal signum old) !previous_signals;
    Sys.set_signal Sys.sigpipe old_pipe;
    Log.info "daemon_exit" [ "served", Log.I resident.served ];
    if opened_sink then Log.close_sink ();
    if config.flight_path <> None && not flight_was_enabled then
      Flight.set_enabled false
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let accept_all () =
    let rec go () =
      match Unix.accept ~cloexec:true lfd with
      | fd, _ ->
        Unix.set_nonblock fd;
        Metrics.incr c_connections;
        Hashtbl.replace conns fd
          {
            fd;
            dec = P.Frame.decoder ~max_frame:config.max_frame ();
            out = Buffer.create 1024;
            out_off = 0;
            jobs_q = Queue.create ();
            last_active = Unix.gettimeofday ();
            closing = false;
            dead = false;
          };
        go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    in
    go ()
  in
  let pending_jobs () =
    Hashtbl.fold (fun _ c n -> n + Queue.length c.jobs_q) conns 0
  in
  let accept_http lfd =
    let rec go () =
      match Unix.accept ~cloexec:true lfd with
      | fd, _ ->
        Unix.set_nonblock fd;
        Hashtbl.replace hconns fd
          {
            hfd = fd;
            hin = Buffer.create 256;
            hout = "";
            hout_off = 0;
            hdead = false;
          };
        go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    in
    go ()
  in
  let read_http h =
    let chunk = Bytes.create 4096 in
    match Unix.read h.hfd chunk 0 (Bytes.length chunk) with
    | 0 -> h.hdead <- true
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (ECONNRESET, _, _) -> h.hdead <- true
    | n ->
      Buffer.add_subbytes h.hin chunk 0 n;
      if String.equal h.hout "" then begin
        match Obs.Http.parse (Buffer.contents h.hin) with
        | `Partial -> ()
        | `Bad -> h.hout <- Obs.Http.response ~status:400 "bad request\n"
        | `Ready r -> h.hout <- http_route resident ~draining:!draining r
      end
  in
  let write_http h =
    let len = String.length h.hout - h.hout_off in
    if len > 0 then
      match Unix.write_substring h.hfd h.hout h.hout_off len with
      | n ->
        h.hout_off <- h.hout_off + n;
        (* Connection: close — one exchange per connection *)
        if h.hout_off >= String.length h.hout then h.hdead <- true
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
        h.hdead <- true
  in
  let finished = ref false in
  (try
     while not !finished do
       if Atomic.get stop_flag && not !draining then begin
         Log.info "drain_begin" [];
         draining := true
       end;
       if Atomic.exchange quit_flag false then begin
         Log.info "sigquit_dump" [];
         flight_dump resident "sigquit"
       end;
       if !draining && !listening then begin
         listening := false;
         (try Unix.close lfd with Unix.Unix_error _ -> ())
       end;
       (* pump every connection's head job, then flush what it produced *)
       Hashtbl.iter
         (fun _ c ->
           if not c.dead then begin
             progress resident c ~request_shutdown;
             flush_conn c
           end)
         conns;
       resident.pending <- pending_jobs ();
       (* a 1-job pool has no workers: the loop lends its own domain *)
       if Sched.Pool.jobs pool = 1 && resident.pending > 0 then
         ignore (Sched.Pool.try_help pool : bool);
       let rfds =
         (if !listening then [ lfd ] else [])
         (* the HTTP listener stays up through the drain: health checks
            must be able to observe the 503 flip *)
         @ (match hlfd with Some fd -> [ fd ] | None -> [])
         @ Hashtbl.fold
             (fun fd c acc -> if c.closing || c.dead then acc else fd :: acc)
             conns []
         @ Hashtbl.fold
             (fun fd h acc ->
               if h.hdead || not (String.equal h.hout "") then acc
               else fd :: acc)
             hconns []
       in
       let wfds =
         Hashtbl.fold
           (fun fd c acc ->
             if (not c.dead) && has_output c then fd :: acc else acc)
           conns []
         @ Hashtbl.fold
             (fun fd h acc ->
               if (not h.hdead) && not (String.equal h.hout "") then fd :: acc
               else acc)
             hconns []
       in
       let timeout = if resident.pending > 0 then 0.005 else 0.25 in
       let readable, writable =
         match Unix.select rfds wfds [] timeout with
         | r, w, _ -> r, w
         | exception Unix.Unix_error (EINTR, _, _) -> [], []
       in
       List.iter
         (fun fd ->
           if fd = lfd && !listening then accept_all ()
           else if hlfd = Some fd then accept_http fd
           else
             match Hashtbl.find_opt conns fd with
             | Some c when not c.dead -> read_conn resident c
             | _ -> (
               match Hashtbl.find_opt hconns fd with
               | Some h when not h.hdead -> read_http h
               | _ -> ()))
         readable;
       List.iter
         (fun fd ->
           match Hashtbl.find_opt conns fd with
           | Some c when not c.dead -> flush_conn c
           | _ -> (
             match Hashtbl.find_opt hconns fd with
             | Some h when not h.hdead -> write_http h
             | _ -> ()))
         writable;
       (* close idle, drained and broken connections *)
       let now = Unix.gettimeofday () in
       let doomed =
         Hashtbl.fold
           (fun fd c acc ->
             let drained = Queue.is_empty c.jobs_q && not (has_output c) in
             if
               c.dead
               || (c.closing && drained)
               || (!draining && drained)
               || (config.idle_timeout_s > 0. && drained
                  && now -. c.last_active > config.idle_timeout_s)
             then fd :: acc
             else acc)
           conns []
       in
       List.iter
         (fun fd ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           Hashtbl.remove conns fd)
         doomed;
       let hdoomed =
         Hashtbl.fold (fun fd h acc -> if h.hdead then fd :: acc else acc)
           hconns []
       in
       List.iter
         (fun fd ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           Hashtbl.remove hconns fd)
         hdoomed;
       if !draining && Hashtbl.length conns = 0 then finished := true
     done
   with e ->
     (* the flight recorder's raison d'être: capture the last moments
        before the event loop dies *)
     Log.error "crash" [ "exn", Log.S (Printexc.to_string e) ];
     flight_dump resident ("crash: " ^ Printexc.to_string e);
     raise e)
