(** A blocking multi-producer / multi-consumer channel.

    The pool uses one as its injection queue (tasks submitted from outside
    the worker domains); it is exposed because pipelines built on top of
    {!Pool} routinely need an unbounded handoff queue as well.

    All operations are linearizable; blocking operations never spin. *)

type 'a t

(** [create ()] is an empty open channel. *)
val create : unit -> 'a t

(** [send ch v] enqueues [v].
    @raise Closed if the channel has been closed. *)
val send : 'a t -> 'a -> unit

(** [recv ch] dequeues the oldest element, blocking while the channel is
    empty.  Returns [None] once the channel is closed {e and} drained. *)
val recv : 'a t -> 'a option

(** [try_recv ch] dequeues without blocking. *)
val try_recv : 'a t -> 'a option

(** [close ch] marks the channel closed: further {!send}s raise {!Closed},
    blocked receivers drain the remaining elements and then see [None]. *)
val close : 'a t -> unit

(** [length ch] is the number of queued elements (a snapshot). *)
val length : 'a t -> int

exception Closed
