(** Write-once futures.

    A task is the handle to a result that some domain will eventually
    produce.  Exceptions raised by the producer are captured together with
    their backtrace and re-raised in the consumer at {!wait} (or at
    {!Pool.await}), so a failure inside the pool surfaces exactly like a
    failure in direct code. *)

type 'a t

(** [create ()] is an unresolved task. *)
val create : unit -> 'a t

(** [fill t v] resolves [t] with a value and wakes all waiters.
    @raise Invalid_argument if [t] is already resolved. *)
val fill : 'a t -> 'a -> unit

(** [fail t e bt] resolves [t] with an exception and its backtrace. *)
val fail : 'a t -> exn -> Printexc.raw_backtrace -> unit

(** [is_resolved t] is true once {!fill} or {!fail} has run. *)
val is_resolved : 'a t -> bool

(** [poll t] is the value if [t] resolved successfully, re-raises the
    captured exception if it failed, and is [None] while unresolved. *)
val poll : 'a t -> 'a option

(** [wait t] blocks the calling domain until [t] resolves.  Prefer
    {!Pool.await} from inside pool tasks — [wait] does not help execute
    pending work and so can deadlock a worker. *)
val wait : 'a t -> 'a

(** [of_result v] / [of_fun f] — pre-resolved tasks, the latter capturing
    an exception from [f] (used by the pool's sequential fallback). *)
val of_result : 'a -> 'a t

val of_fun : (unit -> 'a) -> 'a t
