exception Deadlock

module Probe = Telemetry.Probe

(* Pool telemetry: submissions by entry path, successful steals, entries
   executed and the time spent executing them (per-domain cells — the
   busy-ns total divided by pool wall time is worker utilization), plus a
   high-water mark for the owner deque depth.  All of it is behind the
   probe's single-branch guard. *)
let c_pushes_local = Probe.counter "sched.pushes_local"
let c_injected = Probe.counter "sched.injected"
let c_steals = Probe.counter "sched.steals"
let c_tasks = Probe.counter "sched.tasks_run"
let c_busy_ns = Probe.counter "sched.busy_ns"
let c_queue_peak = Probe.counter ~mode:`Max "sched.queue_depth_peak"

(* ------------------------------------------------------------------ *)
(* Chase-Lev work-stealing deque (Chase & Lev, SPAA 2005), the dynamic
   circular array variant.  The owner pushes and pops at [bottom]; thieves
   CAS [top] upward.  [top]/[bottom] are atomics; the array itself is
   published through an atomic so a thief holding a stale array still reads
   valid slots (grow never clears the old array, and its [top] CAS fails if
   the element moved).  Slots are only cleared by their consumer, which for
   the contended last element is decided by the CAS on [top]. *)
module Deque = struct
  type 'a t = {
    top : int Atomic.t;
    bottom : int Atomic.t;
    tab : 'a option array Atomic.t;
  }

  let create () =
    {
      top = Atomic.make 0;
      bottom = Atomic.make 0;
      tab = Atomic.make (Array.make 64 None);
    }

  let grow q b t =
    let old = Atomic.get q.tab in
    let n = Array.length old in
    let fresh = Array.make (2 * n) None in
    for i = t to b - 1 do
      fresh.(i mod (2 * n)) <- old.(i mod n)
    done;
    Atomic.set q.tab fresh

  (* owner only *)
  let push q v =
    let b = Atomic.get q.bottom and t = Atomic.get q.top in
    let tab = Atomic.get q.tab in
    if b - t >= Array.length tab - 1 then grow q b t;
    let tab = Atomic.get q.tab in
    tab.(b mod Array.length tab) <- Some v;
    Atomic.set q.bottom (b + 1)

  (* owner only *)
  let pop q =
    let b = Atomic.get q.bottom - 1 in
    Atomic.set q.bottom b;
    let t = Atomic.get q.top in
    if b < t then begin
      (* empty: restore the canonical empty shape *)
      Atomic.set q.bottom t;
      None
    end
    else begin
      let tab = Atomic.get q.tab in
      let i = b mod Array.length tab in
      let v = tab.(i) in
      if b > t then begin
        tab.(i) <- None;
        v
      end
      else begin
        (* last element: race the thieves for it *)
        let won = Atomic.compare_and_set q.top t (t + 1) in
        Atomic.set q.bottom (t + 1);
        if won then begin
          tab.(i) <- None;
          v
        end
        else None
      end
    end

  (* any domain *)
  let steal q =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if t >= b then None
    else begin
      let tab = Atomic.get q.tab in
      let v = tab.(t mod Array.length tab) in
      if Atomic.compare_and_set q.top t (t + 1) then v else None
    end
end

(* ------------------------------------------------------------------ *)
(* The pool *)

type entry = unit -> unit

type t = {
  uid : int;  (** distinguishes pools in the per-domain worker registry *)
  deques : entry Deque.t array;  (** one per worker domain *)
  inject : entry Chan.t;  (** submissions from non-worker domains *)
  mutable domains : unit Domain.t array;
  stopped : bool Atomic.t;
  epoch : int Atomic.t;  (** bumped on every submission; guards sleep *)
  idle_mutex : Mutex.t;
  idle_wake : Condition.t;
  born_ns : int;  (** creation time; utilization gauge at shutdown *)
}

let next_uid = Atomic.make 0

(* Which pool/worker the current domain belongs to, if any: lets [submit]
   push to the local deque and [await] help instead of block. *)
let worker_id : (int * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let my_index pool =
  match !(Domain.DLS.get worker_id) with
  | Some (uid, i) when uid = pool.uid -> Some i
  | _ -> None

let wake_all pool =
  Mutex.lock pool.idle_mutex;
  Condition.broadcast pool.idle_wake;
  Mutex.unlock pool.idle_mutex

(* Find one runnable entry: own deque first (LIFO), then steal from the
   other workers (round-robin from our right-hand neighbour, so contention
   spreads), then the injection queue. *)
let find_work pool me =
  let nworkers = Array.length pool.deques in
  let own =
    match me with
    | Some i -> Deque.pop pool.deques.(i)
    | None -> None
  in
  match own with
  | Some _ as r -> r
  | None ->
    let start = match me with Some i -> i + 1 | None -> 0 in
    let rec try_steal k =
      if k >= nworkers then None
      else
        let j = (start + k) mod nworkers in
        if me = Some j then try_steal (k + 1)
        else
          match Deque.steal pool.deques.(j) with
          | Some _ as r ->
            Probe.incr c_steals;
            r
          | None -> try_steal (k + 1)
    in
    (match try_steal 0 with
    | Some _ as r -> r
    | None -> Chan.try_recv pool.inject)

(* Entries trap their own exceptions into the task (see [submit]), so the
   timed branch needs no handler. *)
let run_entry (e : entry) =
  if not (Probe.enabled ()) then e ()
  else begin
    Probe.incr c_tasks;
    let t0 = Probe.now_ns () in
    e ();
    Probe.add c_busy_ns (Probe.now_ns () - t0)
  end

let worker_loop pool i () =
  Domain.DLS.get worker_id := Some (pool.uid, i);
  let spin_budget = 256 in
  let rec loop spins =
    match find_work pool (Some i) with
    | Some e ->
      run_entry e;
      loop spin_budget
    | None ->
      if Atomic.get pool.stopped then ()
      else if spins > 0 then begin
        Domain.cpu_relax ();
        loop (spins - 1)
      end
      else begin
        (* Sleep, unless a submission happened after our last sweep: the
           epoch is read before re-checking the queues, and submitters bump
           it before broadcasting, so a push between our sweep and the wait
           is detected and we sweep again. *)
        let seen = Atomic.get pool.epoch in
        match find_work pool (Some i) with
        | Some e ->
          run_entry e;
          loop spin_budget
        | None ->
          Mutex.lock pool.idle_mutex;
          if Atomic.get pool.epoch = seen && not (Atomic.get pool.stopped)
          then Condition.wait pool.idle_wake pool.idle_mutex;
          Mutex.unlock pool.idle_mutex;
          loop spin_budget
      end
  in
  loop spin_budget

let create ~jobs () =
  let jobs = max 1 jobs in
  let nworkers = jobs - 1 in
  let pool =
    {
      uid = Atomic.fetch_and_add next_uid 1;
      deques = Array.init nworkers (fun _ -> Deque.create ());
      inject = Chan.create ();
      domains = [||];
      stopped = Atomic.make false;
      epoch = Atomic.make 0;
      idle_mutex = Mutex.create ();
      idle_wake = Condition.create ();
      born_ns = Probe.now_ns ();
    }
  in
  pool.domains <-
    Array.init nworkers (fun i -> Domain.spawn (worker_loop pool i));
  pool

let jobs pool = Array.length pool.deques + 1

let submit pool f =
  if Atomic.get pool.stopped then
    invalid_arg "Sched.Pool.submit: pool is shut down";
  (* carry the submitter's request attribution onto whichever domain
     eventually runs the task, so spans stay filterable by request id
     across steals; costs one atomic load when the probe is off *)
  let f =
    if Probe.enabled () then
      match Probe.current_request () with
      | None -> f
      | Some _ as req -> fun () -> Probe.with_request req f
    else f
  in
  let task = Task.create () in
  let entry () =
    match f () with
    | v -> Task.fill task v
    | exception e -> Task.fail task e (Printexc.get_raw_backtrace ())
  in
  (match my_index pool with
  | Some i ->
    let q = pool.deques.(i) in
    Deque.push q entry;
    if Probe.enabled () then begin
      Probe.incr c_pushes_local;
      Probe.record_max c_queue_peak (Atomic.get q.Deque.bottom - Atomic.get q.Deque.top)
    end
  | None ->
    Probe.incr c_injected;
    Chan.send pool.inject entry);
  Atomic.incr pool.epoch;
  wake_all pool;
  task

(* Awaiting helps: run queued tasks until the target resolves.  When the
   queues run dry the awaiter blocks on the task itself rather than
   spinning — crucial when domains outnumber cores (including the 1-core
   degenerate case, where a spinner would starve the domain actually
   running the task).  Blocking here cannot deadlock the pool: a domain
   only blocks when no work is queued, and any domain that enqueues work
   sweeps its own queues before it blocks in turn, so as long as some task
   is unresolved some domain is executing one. *)
let await pool task =
  let me = my_index pool in
  let single_domain = Array.length pool.deques = 0 && me = None in
  let rec help dry =
    match Task.poll task with
    | Some v -> v
    | None -> (
      match find_work pool me with
      | Some e ->
        run_entry e;
        help 64
      | None ->
        if Task.is_resolved task then help dry
        else if single_domain then
          (* nobody else can run anything: the awaited task can only be
             pending below us on this very stack *)
          raise Deadlock
        else if dry > 0 then begin
          (* brief grace period: catch a task racing into a queue *)
          Domain.cpu_relax ();
          help (dry - 1)
        end
        else Task.wait task)
  in
  help 64

let run pool f = await pool (submit pool f)

let try_help pool =
  match find_work pool (my_index pool) with
  | Some e ->
    run_entry e;
    true
  | None -> false

let parallel_map pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
    let tasks = List.map (fun x -> submit pool (fun () -> f x)) xs in
    let settled =
      List.map
        (fun t ->
          match await pool t with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ()))
        tasks
    in
    List.map
      (function Ok v -> v | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
      settled

let parallel_filter_map pool f xs =
  List.filter_map Fun.id (parallel_map pool f xs)

let shutdown pool =
  if not (Atomic.get pool.stopped) then begin
    Atomic.set pool.stopped true;
    wake_all pool;
    Array.iter Domain.join pool.domains;
    pool.domains <- [||];
    if Probe.enabled () then begin
      (* busy time over worker-seconds available; the caller domain also
         helps in [await], so > 1.0 is possible on small pools *)
      let elapsed = Probe.now_ns () - pool.born_ns in
      let capacity = elapsed * max 1 (Array.length pool.deques) in
      if capacity > 0 then
        Probe.set_gauge "sched.utilization"
          (float_of_int (Probe.value c_busy_ns) /. float_of_int capacity)
    end
  end

let with_pool ~jobs f =
  let pool = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
