type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a t = {
  state : 'a state Atomic.t;
  mutex : Mutex.t;
  resolved : Condition.t;
}

let create () =
  {
    state = Atomic.make Pending;
    mutex = Mutex.create ();
    resolved = Condition.create ();
  }

(* Resolution publishes the state with an atomic write, then broadcasts
   under the mutex; waiters re-check the state while holding the mutex, so
   the wake-up cannot be lost between their check and their wait. *)
let resolve t state =
  if not (Atomic.compare_and_set t.state Pending state) then
    invalid_arg "Sched.Task: already resolved";
  Mutex.lock t.mutex;
  Condition.broadcast t.resolved;
  Mutex.unlock t.mutex

let fill t v = resolve t (Done v)
let fail t e bt = resolve t (Failed (e, bt))
let is_resolved t = Atomic.get t.state <> Pending

let poll t =
  match Atomic.get t.state with
  | Pending -> None
  | Done v -> Some v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt

let wait t =
  let rec finish () =
    match Atomic.get t.state with
    | Done v -> v
    | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending ->
      Condition.wait t.resolved t.mutex;
      finish ()
  in
  match Atomic.get t.state with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending ->
    Mutex.lock t.mutex;
    let r = try finish () with e -> Mutex.unlock t.mutex; raise e in
    Mutex.unlock t.mutex;
    r

let of_result v =
  let t = create () in
  fill t v;
  t

let of_fun f =
  let t = create () in
  (try fill t (f ())
   with e -> fail t e (Printexc.get_raw_backtrace ()));
  t
