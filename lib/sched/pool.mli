(** A hand-rolled work-stealing domain pool.

    [create ~jobs] spawns [jobs - 1] worker domains; the submitting domain
    is the remaining unit of parallelism (it helps execute pool work inside
    {!await} and {!parallel_map}).  Each worker owns a Chase-Lev-style
    deque: it pushes and pops at the bottom (LIFO, for locality of nested
    tasks) while idle workers steal from the top (FIFO, so the oldest —
    typically largest — task migrates).  Tasks submitted from outside the
    pool enter a shared injection queue that every worker polls.

    {b Nested submission is safe}: a task may submit further tasks and
    {!await} them — awaiting from inside the pool {e helps} (runs pending
    tasks) instead of blocking the domain, so a pool of any size, including
    [jobs = 1] (zero workers, everything runs on the caller during
    [await]), never deadlocks on task nesting.

    {b Determinism}: {!parallel_map} returns results keyed by submission
    index, and exceptions are re-raised by the lowest failing index after
    all sibling tasks have settled — so for pure task functions the
    observable behaviour of [parallel_map] is byte-identical to [List.map],
    whatever the number of workers. *)

type t

(** [create ~jobs ()] builds a pool of [jobs] units of parallelism
    ([jobs - 1] worker domains).  [jobs] is clamped to at least 1. *)
val create : jobs:int -> unit -> t

(** [jobs pool] is the total parallelism (workers + the calling domain). *)
val jobs : t -> int

(** [submit pool f] schedules [f] and returns its future. *)
val submit : t -> (unit -> 'a) -> 'a Task.t

(** [await pool task] returns the task's value, executing other pool work
    while it is unresolved.  Re-raises the task's exception (with its
    original backtrace) if it failed. *)
val await : t -> 'a Task.t -> 'a

(** [run pool f] is [await pool (submit pool f)]. *)
val run : t -> (unit -> 'a) -> 'a

(** [try_help pool] runs at most one queued entry on the calling domain
    and returns whether it ran one.  For event loops that own a pool but
    must not block in {!await}: polling futures and calling [try_help]
    while idle keeps a [jobs = 1] pool (zero workers) making progress
    without ever parking the loop. *)
val try_help : t -> bool

(** [parallel_map pool f xs] maps [f] over [xs] in parallel; the result
    order follows [xs] regardless of completion order.  If any application
    raises, the exception of the least index is re-raised after all other
    elements have settled. *)
val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list

(** [parallel_filter_map pool f xs] — as {!parallel_map}, keeping [Some]
    results (order preserved). *)
val parallel_filter_map : t -> ('a -> 'b option) -> 'a list -> 'b list

(** [shutdown pool] drains remaining work, stops the workers and joins
    their domains.  Idempotent; submitting to a shut-down pool raises
    [Invalid_argument]. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] with a fresh pool, shutting it down on
    exit (including exceptional exit). *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** Raised by {!await} on a zero-worker pool when no pending task can
    resolve the awaited one (a task transitively awaiting itself). *)
exception Deadlock
