exception Closed

type 'a t = {
  queue : 'a Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create () =
  {
    queue = Queue.create ();
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let with_lock ch f =
  Mutex.lock ch.mutex;
  match f () with
  | v ->
    Mutex.unlock ch.mutex;
    v
  | exception e ->
    Mutex.unlock ch.mutex;
    raise e

let send ch v =
  with_lock ch (fun () ->
      if ch.closed then raise Closed;
      Queue.add v ch.queue;
      Condition.signal ch.nonempty)

let recv ch =
  with_lock ch (fun () ->
      let rec wait () =
        match Queue.take_opt ch.queue with
        | Some _ as r -> r
        | None ->
          if ch.closed then None
          else begin
            Condition.wait ch.nonempty ch.mutex;
            wait ()
          end
      in
      wait ())

let try_recv ch = with_lock ch (fun () -> Queue.take_opt ch.queue)

let close ch =
  with_lock ch (fun () ->
      ch.closed <- true;
      (* wake every blocked receiver so it can observe the close *)
      Condition.broadcast ch.nonempty)

let length ch = with_lock ch (fun () -> Queue.length ch.queue)
