open Kernel
module Spec = Cafeobj.Spec

type query = {
  q_name : string;
  q_pred : string;
  q_pattern : Term.t;
  q_honest : Term.var list;
}

type options = {
  network : string;
  depth : int;
  max_facts : int;
  expansion : int;
  queries : query list;
}

let default_options =
  { network = "nw"; depth = 16; max_facts = 20_000; expansion = 4; queries = [] }

type leak = { l_query : query; l_fact : Horn.fact; l_secret : Term.t }

type verdict =
  | Secure
  | Leak of leak
  | Inconclusive
  | Not_applicable of string

type result = {
  r_verdict : verdict;
  r_clauses : int;
  r_facts : int;
  r_rounds : int;
  r_resolutions : int;
  r_queries : query list;
}

(* ------------------------------------------------------------------ *)
(* Recognizing the OTS view of a spec *)

(* One observer equation [obs(action(S, xs), ys) = rhs]. *)
type obs_eq = {
  oe_rule : Rewrite.rule;
  oe_obs : Signature.op;
  oe_state : Term.var;
}

(* One defining rule of a collector predicate [m(x, container)]. *)
type coll_rule = {
  cr_rule : Rewrite.rule;
  cr_elem : Term.t;  (* first argument pattern, usually a variable *)
  cr_container : Term.t;  (* [nil] or [cons(hd, tail)] *)
}

type view = {
  v_spec : Spec.t;
  v_hidden : Sort.t;
  v_net : Signature.op;
  v_nil : Signature.op;
  v_cons : Signature.op;
  v_observers : Signature.op list;
  v_stored : Signature.op list;  (* observers written with non-frame values *)
  v_members : Signature.op list;  (* plain membership collectors *)
  v_gleaners : (Signature.op * coll_rule list) list;
  v_shapes : (Signature.op * Signature.op) list;
      (* shape predicate -> the constructor it accepts *)
  v_obs_eqs : obs_eq list;
}

let recognize_obs_eq (r : Rewrite.rule) =
  match Term.view r.Rewrite.lhs with
  | Term.App (obs, inner :: _) -> (
    match Term.view inner with
    | Term.App (act, s :: _) when act.Signature.sort.Sort.hidden -> (
      match Term.view s with
      | Term.Var v when v.Term.v_sort.Sort.hidden ->
        Some { oe_rule = r; oe_obs = obs; oe_state = v }
      | _ -> None)
    | _ -> None)
  | _ -> None

let ctors_of spec srt =
  List.filter
    (fun (o : Signature.op) ->
      Signature.is_ctor o && Sort.equal o.Signature.sort srt)
    (Spec.all_ops spec)

(* The container sort's nil/cons pair: the unique nullary constructor and
   the unique binary constructor recursing in its last argument. *)
let chain_ctors spec srt =
  let cs = ctors_of spec srt in
  let nils = List.filter (fun (o : Signature.op) -> o.Signature.arity = []) cs in
  let conses =
    List.filter
      (fun (o : Signature.op) ->
        match o.Signature.arity with
        | [ _; s ] -> Sort.equal s srt
        | _ -> false)
      cs
  in
  match (nils, conses) with [ n ], [ c ] -> Some (n, c) | _ -> None

let rec flat op t =
  match Term.view t with
  | Term.App (o, [ a; b ]) when Signature.op_equal o op -> flat op a @ flat op b
  | _ -> [ t ]

let conjuncts t = flat Signature.Builtin.and_ t
let disjuncts t = flat Signature.Builtin.or_ t

(* Collector rules over containers of sort [nsort] built by [nil]/[cons]. *)
let collector_rules rules ~nil ~cons =
  let classify (r : Rewrite.rule) =
    match Term.view r.Rewrite.lhs with
    | Term.App (m, [ e; c ])
      when (not (Signature.Builtin.is_builtin m))
           && Sort.equal m.Signature.sort Sort.bool -> (
      match Term.view c with
      | Term.App (o, [])
        when Signature.op_equal o nil ->
        Some (m, { cr_rule = r; cr_elem = e; cr_container = c })
      | Term.App (o, [ _; _ ])
        when Signature.op_equal o cons ->
        Some (m, { cr_rule = r; cr_elem = e; cr_container = c })
      | _ -> None)
    | _ -> None
  in
  List.fold_left
    (fun acc r ->
      match classify r with
      | None -> acc
      | Some (m, cr) -> (
        match List.assq_opt m acc with
        | Some l ->
          l := !l @ [ cr ];
          acc
        | None -> acc @ [ (m, ref [ cr ]) ]))
    [] rules
  |> List.map (fun (m, l) -> (m, !l))

(* A collector is a plain membership predicate when every cons rule says
   exactly [(x == hd) or m(x, tail)] with [hd] a variable — it reveals
   nothing beyond the element itself. *)
let is_member (rules : coll_rule list) =
  let cons_rules =
    List.filter
      (fun cr ->
        match Term.view cr.cr_container with
        | Term.App (_, [ _; _ ]) -> true
        | _ -> false)
      rules
  in
  cons_rules <> []
  && List.for_all
       (fun cr ->
         match Term.view cr.cr_container with
         | Term.App (_, [ hd; tail ]) -> (
           match Term.view hd with
           | Term.Var _ ->
             let tail_vars = Term.vars tail in
             let recursive d =
               List.exists (fun v -> List.mem v tail_vars) (Term.vars d)
             in
             let nonrec_ =
               List.filter
                 (fun d -> not (recursive d))
                 (disjuncts cr.cr_rule.Rewrite.rhs)
             in
             List.for_all
               (fun d ->
                 match Term.view d with
                 | Term.App (o, [ a; b ]) when Signature.Builtin.is_eq o ->
                   (Term.equal a cr.cr_elem && Term.equal b hd)
                   || (Term.equal a hd && Term.equal b cr.cr_elem)
                 | _ -> false)
               nonrec_
           | _ -> false)
         | _ -> true)
       cons_rules

(* Shape predicates: unary boolean tests accepting exactly one
   constructor, recognized from their [p(c(x1..xn)) = true] rules
   (CafeOBJ's [ch?], [sh?], ... message discriminators). *)
let shape_preds rules =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (r : Rewrite.rule) ->
      if r.Rewrite.cond = None && Term.equal r.Rewrite.rhs Term.tt then
        match Term.view r.Rewrite.lhs with
        | Term.App (p, [ arg ])
          when (not (Signature.Builtin.is_builtin p))
               && Sort.equal p.Signature.sort Sort.bool -> (
          match Term.view arg with
          | Term.App (c, args)
            when Signature.is_ctor c
                 && List.for_all
                      (fun a ->
                        match Term.view a with Term.Var _ -> true | _ -> false)
                      args ->
            let prev =
              Option.value ~default:[]
                (Hashtbl.find_opt tbl p.Signature.index)
            in
            Hashtbl.replace tbl p.Signature.index ((p, c) :: prev)
          | _ -> ())
        | _ -> ())
    rules;
  Hashtbl.fold
    (fun _ entries acc ->
      match entries with
      | [ ((_, _) as e) ] -> e :: acc
      | _ -> acc  (* ambiguous: accepts several constructors *))
    tbl []
  |> List.sort (fun ((a : Signature.op), _) ((b : Signature.op), _) ->
         Int.compare a.Signature.index b.Signature.index)

let frame_of oe =
  match Term.view oe.oe_rule.Rewrite.lhs with
  | Term.App (obs, _ :: ys) ->
    Term.app_unchecked obs
      (Term.var oe.oe_state.Term.v_name oe.oe_state.Term.v_sort :: ys)
  | _ -> assert false

(* The if-then-else leaves of [t] with their path conditions. *)
let leaves_of t =
  let rec go conds t acc =
    match Term.view t with
    | Term.App (o, [ c; th; el ]) when Signature.Builtin.is_if o ->
      go (c :: conds) th (go conds el acc)
    | _ -> (List.rev conds, t) :: acc
  in
  List.rev (go [] t [])

(* Is [t] a read [o(S, ...)] of observer [o] on the pre-state? *)
let read_of ~observers ~state t =
  match Term.view t with
  | Term.App (o, s :: _)
    when Term.equal s state && List.exists (Signature.op_equal o) observers ->
    Some o
  | _ -> None

let recognize ~network spec =
  let rules = Spec.all_rules spec in
  let obs_eqs = List.filter_map recognize_obs_eq (Spec.own_rules spec) in
  if obs_eqs = [] then Error "no observational transition rules"
  else
    let observers =
      List.fold_left
        (fun acc oe ->
          if List.exists (Signature.op_equal oe.oe_obs) acc then acc
          else oe.oe_obs :: acc)
        [] obs_eqs
      |> List.rev
    in
    match
      List.find_opt
        (fun (o : Signature.op) -> String.equal o.Signature.name network)
        observers
    with
    | None -> Error (Printf.sprintf "no network observer %S" network)
    | Some net -> (
      let nsort = net.Signature.sort in
      match chain_ctors spec nsort with
      | None ->
        Error
          (Printf.sprintf "network sort %s has no nil/cons constructor pair"
             nsort.Sort.name)
      | Some (nil, cons) ->
        let collectors = collector_rules rules ~nil ~cons in
        let members =
          List.filter_map
            (fun (m, rs) -> if is_member rs then Some m else None)
            collectors
        in
        let gleaners =
          List.filter
            (fun ((m : Signature.op), _) ->
              not (List.exists (Signature.op_equal m) members))
            collectors
        in
        let hidden =
          match net.Signature.arity with
          | s :: _ -> s
          | [] -> Sort.hidden "?"
        in
        (* observers some equation stores a non-frame value into *)
        let stored =
          List.filter
            (fun (o : Signature.op) ->
              (not (Signature.op_equal o net))
              && List.exists
                   (fun oe ->
                     Signature.op_equal oe.oe_obs o
                     && List.exists
                          (fun (_, leaf) ->
                            (not (Term.equal leaf (frame_of oe)))
                            && read_of ~observers
                                 ~state:
                                   (Term.var oe.oe_state.Term.v_name
                                      oe.oe_state.Term.v_sort)
                                 leaf
                               = None)
                          (leaves_of oe.oe_rule.Rewrite.rhs))
                   obs_eqs)
            observers
        in
        Ok
          {
            v_spec = spec;
            v_hidden = hidden;
            v_net = net;
            v_nil = nil;
            v_cons = cons;
            v_observers = observers;
            v_stored = stored;
            v_members = members;
            v_gleaners = gleaners;
            v_shapes = shape_preds rules;
            v_obs_eqs = obs_eqs;
          })

(* ------------------------------------------------------------------ *)
(* Guard compilation *)

let safe_reduce spec t =
  try Spec.reduce spec t with Rewrite.Limit_exceeded _ -> t

(* Compilation context for one clause. *)
type cctx = {
  cc_view : view;
  cc_state : Term.t option;  (* the pre-state variable, when in a transition *)
  cc_tail : Term.t option;  (* the recursion tail, when in a collector rule *)
  mutable cc_theta : Subst.t;
  mutable cc_premises : (string * Term.t) list;  (* reversed *)
  mutable cc_residual : (Term.t * Term.t) list;  (* reversed *)
  mutable cc_feasible : bool;
  mutable cc_fresh : int;
}

let cc_make view ?state ?tail () =
  {
    cc_view = view;
    cc_state = state;
    cc_tail = tail;
    cc_theta = Subst.empty;
    cc_premises = [];
    cc_residual = [];
    cc_feasible = true;
    cc_fresh = 0;
  }

let cc_fresh_var ctx prefix srt =
  ctx.cc_fresh <- ctx.cc_fresh + 1;
  Term.var (Printf.sprintf "%%%s%d" prefix ctx.cc_fresh) srt

(* Is [t] the network the guard may draw messages from: [nw(S)] on the
   pre-state, or the recursion tail of the collector rule being
   compiled? *)
let net_container ctx t =
  (match ctx.cc_tail with Some tl -> Term.equal t tl | None -> false)
  ||
  match (Term.view t, ctx.cc_state) with
  | Term.App (o, [ s ]), Some state ->
    Signature.op_equal o ctx.cc_view.v_net && Term.equal s state
  | _ -> false

let is_collector ctx (m : Signature.op) =
  List.exists (Signature.op_equal m) ctx.cc_view.v_members
  || List.exists
       (fun ((g : Signature.op), _) -> Signature.op_equal g m)
       ctx.cc_view.v_gleaners

let premise_pred ctx (m : Signature.op) =
  if List.exists (Signature.op_equal m) ctx.cc_view.v_members then "net"
  else "glean:" ^ m.Signature.name

(* Compile the guard conjuncts of one rule branch into premises, eager
   bindings and residual constraints.  Positive membership of the network
   becomes a premise; equalities are solved eagerly when they unify and
   kept as residual constraints otherwise; negative and otherwise
   unclassifiable atoms are dropped (over-approximation) — except that a
   guard normalizing to [false] kills the branch. *)
let compile ctx pending =
  let rec pass pending =
    let again = ref [] in
    let progressed = ref false in
    let residual a b = again := (a, b) :: !again in
    List.iter
      (fun c ->
        if ctx.cc_feasible then begin
          let c = safe_reduce ctx.cc_view.v_spec (Subst.apply ctx.cc_theta c) in
          if Term.equal c Term.tt then progressed := true
          else if Term.equal c Term.ff then ctx.cc_feasible <- false
          else
            match Term.view c with
            | Term.App (o, [ _; _ ])
              when Signature.op_equal o Signature.Builtin.and_ ->
              progressed := true;
              List.iter (fun d -> again := (d, Term.tt) :: !again) (conjuncts c)
            | Term.App (m, [ e; cont ])
              when is_collector ctx m && net_container ctx cont ->
              progressed := true;
              ctx.cc_premises <- (premise_pred ctx m, e) :: ctx.cc_premises
            | Term.App (o, [ a; b ]) when Signature.Builtin.is_eq o -> (
              match Matching.unify a b with
              | Some s ->
                progressed := true;
                ctx.cc_theta <- Horn.compose ctx.cc_theta s
              | None ->
                if Horn.ctor_rigid a && Horn.ctor_rigid b then
                  ctx.cc_feasible <- false
                else residual a b)
            | Term.App (p, [ arg ])
              when List.exists
                     (fun ((q : Signature.op), _) -> Signature.op_equal q p)
                     ctx.cc_view.v_shapes -> (
              let _, ctor =
                List.find
                  (fun ((q : Signature.op), _) -> Signature.op_equal q p)
                  ctx.cc_view.v_shapes
              in
              match Term.view arg with
              | Term.Var v ->
                (* refine the variable by the accepted constructor *)
                progressed := true;
                let args =
                  List.map
                    (fun s -> cc_fresh_var ctx "s" s)
                    ctor.Signature.arity
                in
                ctx.cc_theta <-
                  Horn.compose ctx.cc_theta
                    (Subst.of_list [ (v, Term.app_unchecked ctor args) ])
              | Term.App (c', _) when Signature.is_ctor c' ->
                if Signature.op_equal c' ctor then progressed := true
                else ctx.cc_feasible <- false
              | _ -> residual c Term.tt)
            | Term.App (o, [ _ ])
              when Signature.op_equal o Signature.Builtin.not_ ->
              (* negative guards (freshness, disequality) are dropped *)
              progressed := true
            | _ ->
              (* leave the whole atom as a [c = true] constraint: the
                 saturation engine's constructor expansion can still
                 discharge it (e.g. shape predicates) *)
              residual c Term.tt
        end)
      pending;
    if ctx.cc_feasible && !progressed && !again <> [] then
      pass (List.rev_map (fun (a, b) ->
                if Term.equal b Term.tt then a else Term.eq a b)
              !again)
    else ctx.cc_residual <- !again @ ctx.cc_residual
  in
  pass pending

(* Replace observer reads on the pre-state by fresh variables, adding a
   [stored:<o>] premise when the observer is a store (its content comes
   from somewhere) and leaving the variable unconstrained otherwise (the
   read could be anything — over-approximation). *)
let replace_reads ctx t =
  match ctx.cc_state with
  | None -> t
  | Some state ->
    let memo = Hashtbl.create 4 in
    let rec go t =
      match read_of ~observers:ctx.cc_view.v_observers ~state t with
      | Some o -> (
        match Hashtbl.find_opt memo (Term.id t) with
        | Some w -> w
        | None ->
          let w = cc_fresh_var ctx "r" (Term.sort t) in
          Hashtbl.add memo (Term.id t) w;
          if List.exists (Signature.op_equal o) ctx.cc_view.v_stored then
            ctx.cc_premises <-
              ("stored:" ^ o.Signature.name, w) :: ctx.cc_premises;
          w)
      | None -> (
        match Term.view t with
        | Term.Var _ -> t
        | Term.App (o, args) -> Term.app_unchecked o (List.map go args))
    in
    go t

(* Assemble the clause once compilation succeeded. *)
let finish ctx ~label ~head ~carrier =
  if not ctx.cc_feasible then None
  else begin
    let apply t =
      replace_reads ctx
        (safe_reduce ctx.cc_view.v_spec (Subst.apply ctx.cc_theta t))
    in
    let head = (fst head, apply (snd head)) in
    let residual =
      List.rev_map
        (fun (a, b) ->
          (apply a, safe_reduce ctx.cc_view.v_spec (Subst.apply ctx.cc_theta b)))
        ctx.cc_residual
    in
    (* premises recorded before this point already carry theta of their
       time; re-apply the final theta for the late bindings *)
    let premises = List.rev_map (fun (p, e) -> (p, apply e)) ctx.cc_premises in
    let carrier = Option.map (fun c -> Subst.apply ctx.cc_theta c) carrier in
    Some
      {
        Horn.c_label = label;
        c_head = head;
        c_premises = premises;
        c_constraints = residual;
        c_carrier = carrier;
      }
  end

(* ------------------------------------------------------------------ *)
(* Clause generation *)

(* Unfold a [cons(m1, cons(m2, ... base))] chain into its elements. *)
let rec chain_elems ~cons t =
  match Term.view t with
  | Term.App (o, [ m; rest ]) when Signature.op_equal o cons ->
    m :: chain_elems ~cons rest
  | _ -> []

let transition_clauses view =
  List.concat_map
    (fun oe ->
      let r = oe.oe_rule in
      let state = Term.var oe.oe_state.Term.v_name oe.oe_state.Term.v_sort in
      let frame = frame_of oe in
      let is_net = Signature.op_equal oe.oe_obs view.v_net in
      let is_store =
        List.exists (Signature.op_equal oe.oe_obs) view.v_stored
      in
      if not (is_net || is_store) then []
      else
        List.concat_map
          (fun (conds, leaf) ->
            if Term.equal leaf frame then []
            else if read_of ~observers:view.v_observers ~state leaf <> None
            then []
            else begin
              let conds =
                match r.Rewrite.cond with Some c -> conds @ [ c ] | None -> conds
              in
              let heads =
                if is_net then
                  List.map (fun m -> ("net", m)) (chain_elems ~cons:view.v_cons leaf)
                else begin
                  (* store observers: element-wise for chain-sorted stores
                     (freshness sets), whole-value otherwise (sessions) *)
                  let pred = "stored:" ^ oe.oe_obs.Signature.name in
                  match chain_ctors view.v_spec oe.oe_obs.Signature.sort with
                  | Some (_, cons) when chain_elems ~cons leaf <> [] ->
                    List.map (fun e -> (pred, e)) (chain_elems ~cons leaf)
                  | _ -> [ (pred, leaf) ]
                end
              in
              List.concat_map
                (fun (i, head) ->
                  let ctx = cc_make view ~state () in
                  compile ctx conds;
                  let label =
                    if List.length heads > 1 then
                      Printf.sprintf "%s#%d" r.Rewrite.label i
                    else r.Rewrite.label
                  in
                  Option.to_list
                    (finish ctx ~label ~head ~carrier:(Some r.Rewrite.lhs)))
                (List.mapi (fun i h -> (i + 1, h)) heads)
            end)
          (leaves_of r.Rewrite.rhs))
    view.v_obs_eqs

let gleaning_clauses view =
  List.concat_map
    (fun ((g : Signature.op), (rules : coll_rule list)) ->
      let pred = "glean:" ^ g.Signature.name in
      List.concat_map
        (fun cr ->
          let r = cr.cr_rule in
          match Term.view cr.cr_container with
          | Term.App (_, []) ->
            (* base case: knowledge the intruder starts with *)
            List.concat_map
              (fun (i, d) ->
                let ctx = cc_make view () in
                compile ctx [ d ];
                let label = Printf.sprintf "%s/base%d" r.Rewrite.label i in
                Option.to_list
                  (finish ctx ~label ~head:(pred, cr.cr_elem) ~carrier:None))
              (List.mapi (fun i d -> (i + 1, d)) (disjuncts r.Rewrite.rhs))
          | Term.App (_, [ hd; tail ]) ->
            let tail_vars = Term.vars tail in
            let recursive d =
              List.exists (fun v -> List.mem v tail_vars) (Term.vars d)
            in
            List.concat_map
              (fun (i, d) ->
                if recursive d then []
                else begin
                  let ctx = cc_make view ~tail () in
                  ctx.cc_premises <- [ ("net", hd) ];
                  compile ctx [ d ];
                  let label = Printf.sprintf "%s/%d" r.Rewrite.label i in
                  Option.to_list
                    (finish ctx ~label ~head:(pred, cr.cr_elem) ~carrier:None)
                end)
              (List.mapi (fun i d -> (i + 1, d)) (disjuncts r.Rewrite.rhs))
          | _ -> [])
        rules)
    view.v_gleaners

let translate view = transition_clauses view @ gleaning_clauses view

(* ------------------------------------------------------------------ *)
(* Queries *)

let intruder_of view =
  List.find_opt
    (fun (o : Signature.op) ->
      String.equal o.Signature.name "intruder" && o.Signature.arity = [])
    (Spec.all_ops view.v_spec)

(* A gleaner deserves a default secrecy query when its element sort has a
   single constructor combining principals with an unforgeable sort —
   one the intruder can never synthesize, i.e. a secret (the TLS
   pre-master secret [pms : Prin Prin Secret]).  A sort is unforgeable
   when it is not the principal sort and none of its constructors takes
   arguments: named constants (concrete scenario nonces, for instance)
   don't let the intruder cover a fresh honest value, but a structured
   constructor would. *)
let default_queries view =
  match intruder_of view with
  | None -> []
  | Some intr ->
    let psort = intr.Signature.sort in
    List.filter_map
      (fun ((g : Signature.op), _) ->
        match g.Signature.arity with
        | [ esort; _ ] -> (
          match ctors_of view.v_spec esort with
          | [ c ] ->
            let vars =
              List.mapi
                (fun i s -> Term.var (Printf.sprintf "Q%d" (i + 1)) s)
                c.Signature.arity
            in
            let honest =
              List.filter_map
                (fun t ->
                  match Term.view t with
                  | Term.Var v when Sort.equal v.Term.v_sort psort -> Some v
                  | _ -> None)
                vars
            in
            let has_secret =
              List.exists
                (fun s ->
                  (not (Sort.equal s psort))
                  && List.for_all
                       (fun (o : Signature.op) -> o.Signature.arity = [])
                       (ctors_of view.v_spec s))
                c.Signature.arity
            in
            if honest <> [] && has_secret then
              Some
                {
                  q_name = g.Signature.name;
                  q_pred = "glean:" ^ g.Signature.name;
                  q_pattern = Term.app_unchecked c vars;
                  q_honest = honest;
                }
            else None
          | _ -> None)
        | _ -> None)
      view.v_gleaners

let find_leak view outcome q =
  let intr = intruder_of view in
  let intruder_term =
    match intr with Some o -> Some (Term.const o) | None -> None
  in
  let candidates = Horn.facts_of outcome q.q_pred in
  (* prefer replayable (uncut) facts *)
  let candidates =
    List.filter (fun (f : Horn.fact) -> not f.Horn.f_cut) candidates
    @ List.filter (fun (f : Horn.fact) -> f.Horn.f_cut) candidates
  in
  List.find_map
    (fun (f : Horn.fact) ->
      let arg =
        Horn.map_vars
          (fun v -> Term.var (v.Term.v_name ^ "!f") v.Term.v_sort)
          f.Horn.f_arg
      in
      match Matching.unify arg q.q_pattern with
      | None -> None
      | Some s ->
        let honest_ok =
          List.for_all
            (fun v ->
              match (Subst.find s v, intruder_term) with
              | Some t, Some intr -> not (Term.equal t intr)
              | _ -> true)
            q.q_honest
        in
        if honest_ok then
          Some { l_query = q; l_fact = f; l_secret = Subst.apply s q.q_pattern }
        else None)
    candidates

(* ------------------------------------------------------------------ *)
(* Analysis entry point *)

let c_clauses = Telemetry.Probe.counter ~mode:`Max "secrecy.horn_clauses"
let c_facts = Telemetry.Probe.counter ~mode:`Max "secrecy.facts"
let c_rounds = Telemetry.Probe.counter "secrecy.saturation_rounds"
let c_resolutions = Telemetry.Probe.counter "secrecy.resolutions"

let analyze ?(opts = default_options) spec =
  Telemetry.Probe.with_span ~always:true ~cat:"secrecy" "secrecy.analyze"
  @@ fun () ->
  match recognize ~network:opts.network spec with
  | Error msg ->
    {
      r_verdict = Not_applicable msg;
      r_clauses = 0;
      r_facts = 0;
      r_rounds = 0;
      r_resolutions = 0;
      r_queries = [];
    }
  | Ok view ->
    let clauses = translate view in
    let queries =
      if opts.queries <> [] then opts.queries else default_queries view
    in
    let normalize t = safe_reduce spec t in
    let constructors srt = ctors_of spec srt in
    let outcome =
      Telemetry.Probe.with_span ~always:true ~cat:"secrecy" "secrecy.saturate"
      @@ fun () ->
      Horn.saturate ~depth:opts.depth ~max_facts:opts.max_facts
        ~expansion:opts.expansion ~normalize ~constructors clauses
    in
    Telemetry.Probe.record_max c_clauses (List.length clauses);
    Telemetry.Probe.record_max c_facts outcome.Horn.stats.Horn.facts_total;
    Telemetry.Probe.add c_rounds outcome.Horn.stats.Horn.rounds;
    Telemetry.Probe.add c_resolutions outcome.Horn.stats.Horn.resolutions;
    let verdict =
      if queries = [] then
        Not_applicable "no secrecy query (none given, none derivable)"
      else
        match List.find_map (find_leak view outcome) queries with
        | Some l -> Leak l
        | None -> if outcome.Horn.saturated then Secure else Inconclusive
    in
    {
      r_verdict = verdict;
      r_clauses = List.length clauses;
      r_facts = outcome.Horn.stats.Horn.facts_total;
      r_rounds = outcome.Horn.stats.Horn.rounds;
      r_resolutions = outcome.Horn.stats.Horn.resolutions;
      r_queries = queries;
    }

let verdict_name r =
  match r.r_verdict with
  | Secure -> "secure"
  | Leak _ -> "leaks"
  | Inconclusive -> "inconclusive"
  | Not_applicable _ -> "n/a"

let clauses ?(network = default_options.network) spec =
  Result.map translate (recognize ~network spec)

(* ------------------------------------------------------------------ *)
(* Lint checker *)

type check = { result : result; diagnostics : Diagnostic.t list }

let derivation_labels (f : Horn.fact) =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go (f : Horn.fact) =
    List.iter (fun (g, _) -> go g) f.Horn.f_parents;
    if not (Hashtbl.mem seen f.Horn.f_clause.Horn.c_label) then begin
      Hashtbl.add seen f.Horn.f_clause.Horn.c_label ();
      out := f.Horn.f_clause.Horn.c_label :: !out
    end
  in
  go f;
  List.rev !out

let check spec =
  let r = analyze spec in
  let name = Spec.name spec in
  let diagnostics =
    match r.r_verdict with
    | Leak l ->
      let chain = String.concat " -> " (derivation_labels l.l_fact) in
      (* clause labels carry [/i] / [#i] disjunct suffixes on top of the
         underlying rule label *)
      let rule_label l =
        match String.index_opt l '/' with
        | Some i -> String.sub l 0 i
        | None -> (
          match String.index_opt l '#' with
          | Some i -> String.sub l 0 i
          | None -> l)
      in
      let pos =
        Spec.pos_of spec
          ("eq:" ^ rule_label l.l_fact.Horn.f_clause.Horn.c_label)
      in
      [
        Diagnostic.make ?pos ~severity:Diagnostic.Error ~checker:"secrecy"
          ~code:"secret-leaks" ~spec:name
          (Printf.sprintf
             "secret %s is derivable by the intruder (query %s; derivation: %s)%s"
             (Term.to_string l.l_secret) l.l_query.q_name chain
             (if l.l_fact.Horn.f_cut then
                " — abstract derivation (depth cut), may not replay"
              else ""));
      ]
    | Inconclusive ->
      [
        Diagnostic.make ~severity:Diagnostic.Warning ~checker:"secrecy"
          ~code:"saturation-budget" ~spec:name
          (Printf.sprintf
             "saturation stopped at %d facts before reaching a fixpoint — verdict inconclusive"
             r.r_facts);
      ]
    | Secure | Not_applicable _ -> []
  in
  { result = r; diagnostics }

(* ------------------------------------------------------------------ *)
(* Witness s-expressions *)

module Sexp = Certify.Sexp

let rec term_sexp t =
  match Term.view t with
  | Term.Var v ->
    Sexp.List [ Sexp.Atom "?"; Sexp.Atom v.Term.v_name; Sexp.Atom v.Term.v_sort.Sort.name ]
  | Term.App (o, []) -> Sexp.Atom o.Signature.name
  | Term.App (o, args) ->
    Sexp.List (Sexp.Atom o.Signature.name :: List.map term_sexp args)

let rec step_sexp (f : Horn.fact) =
  Sexp.List
    ([
       Sexp.Atom "step";
       Sexp.List [ Sexp.Atom "pred"; Sexp.Atom f.Horn.f_pred ];
       Sexp.List [ Sexp.Atom "fact"; term_sexp f.Horn.f_arg ];
       Sexp.List [ Sexp.Atom "rule"; Sexp.Atom f.Horn.f_clause.Horn.c_label ];
     ]
    @ (if f.Horn.f_cut then [ Sexp.List [ Sexp.Atom "cut"; Sexp.Atom "true" ] ]
       else [])
    @ List.map
        (fun (g, inst) ->
          Sexp.List [ Sexp.Atom "via"; term_sexp inst; step_sexp g ])
        f.Horn.f_parents)

let witness_sexp ~spec leak =
  Sexp.List
    [
      Sexp.Atom "secrecy-witness";
      Sexp.List [ Sexp.Atom "spec"; Sexp.Atom spec ];
      Sexp.List [ Sexp.Atom "query"; Sexp.Atom leak.l_query.q_name ];
      Sexp.List [ Sexp.Atom "secret"; term_sexp leak.l_secret ];
      step_sexp leak.l_fact;
    ]

(* ------------------------------------------------------------------ *)
(* Concrete replay *)

type replay = {
  rp_ok : bool;
  rp_checks : int;
  rp_cert_ok : bool;
  rp_obligations : int;
  rp_error : string option;
}

exception Replay_failed of string

let replay spec leak =
  match recognize ~network:default_options.network spec with
  | Error msg ->
    {
      rp_ok = false;
      rp_checks = 0;
      rp_cert_ok = false;
      rp_obligations = 0;
      rp_error = Some msg;
    }
  | Ok view -> (
    let branch = Spec.branch spec "secrecy-replay" in
    let st0 =
      Term.const (Spec.declare_op branch "%st0" [] view.v_hidden ~attrs:[])
    in
    let fresh_consts = Hashtbl.create 8 in
    let fresh_const prefix srt =
      let key = prefix ^ "/" ^ srt.Sort.name in
      match Hashtbl.find_opt fresh_consts key with
      | Some t -> t
      | None ->
        let t =
          Term.const
            (Spec.declare_op branch
               (Printf.sprintf "%%%s-%s" prefix
                  (String.lowercase_ascii srt.Sort.name))
               [] srt ~attrs:[])
        in
        Hashtbl.add fresh_consts key t;
        t
    in
    (* smallest ground constructor term of a sort, else a fresh witness
       constant declared in the replay branch *)
    let inhab_memo = Hashtbl.create 8 in
    let inhabit srt =
      if srt.Sort.hidden then st0
      else
        match Hashtbl.find_opt inhab_memo srt.Sort.name with
        | Some t -> t
        | None ->
          let rec build fuel srt =
            if fuel = 0 then None
            else
              List.find_map
                (fun (c : Signature.op) ->
                  let args =
                    List.map (fun s -> build (fuel - 1) s) c.Signature.arity
                  in
                  if List.for_all Option.is_some args then
                    Some
                      (Term.app_unchecked c
                         (List.map Option.get args))
                  else None)
                (List.sort
                   (fun (a : Signature.op) (b : Signature.op) ->
                     Int.compare
                       (List.length a.Signature.arity)
                       (List.length b.Signature.arity))
                   (ctors_of spec srt))
          in
          let t =
            match build 4 srt with Some t -> t | None -> fresh_const "w" srt
          in
          Hashtbl.add inhab_memo srt.Sort.name t;
          t
    in
    let honest_vars = Hashtbl.create 4 in
    let ground ?(honest = false) t =
      Horn.map_vars
        (fun v ->
          if v.Term.v_sort.Sort.hidden then st0
          else if honest || Hashtbl.mem honest_vars (v.Term.v_name, v.Term.v_sort.Sort.name)
          then fresh_const ("h-" ^ v.Term.v_name) v.Term.v_sort
          else inhabit v.Term.v_sort)
        t
    in
    (* the root instance: the fact under the leak unifier, honest
       variables pinned to fresh (non-intruder) constants *)
    let renamed_arg =
      Horn.map_vars
        (fun v -> Term.var (v.Term.v_name ^ "!f") v.Term.v_sort)
        leak.l_fact.Horn.f_arg
    in
    let mu =
      match Matching.unify renamed_arg leak.l_query.q_pattern with
      | Some s -> s
      | None -> Subst.empty
    in
    List.iter
      (fun (h : Term.var) ->
        let img =
          match Subst.find mu h with
          | Some t -> t
          | None -> Term.var h.Term.v_name h.Term.v_sort
        in
        List.iter
          (fun (v : Term.var) ->
            Hashtbl.replace honest_vars (v.Term.v_name, v.Term.v_sort.Sort.name) ())
          (Term.vars img))
      leak.l_query.q_honest;
    let root_instance =
      ground
        (Horn.map_vars
           (fun v ->
             let v' = Term.var (v.Term.v_name ^ "!f") v.Term.v_sort in
             match Term.view v' with
             | Term.Var vv -> (
               match Subst.find mu vv with Some t -> t | None -> v')
             | _ -> v')
           leak.l_fact.Horn.f_arg)
    in
    let checks = ref 0 in
    let visited = Hashtbl.create 16 in
    let find_member_for srt =
      List.find_opt
        (fun (m : Signature.op) ->
          match m.Signature.arity with
          | [ e; _ ] -> Sort.equal e srt
          | _ -> false)
        view.v_members
    in
    let glean_op name =
      List.find_opt
        (fun ((g : Signature.op), _) -> String.equal g.Signature.name name)
        view.v_gleaners
      |> Option.map fst
    in
    let net_of elems =
      List.fold_right
        (fun m acc -> Term.app_unchecked view.v_cons [ m; acc ])
        elems (Term.const view.v_nil)
    in
    (* default assumptions: every observer of the pre-state reads its
       empty/initial value unless a stored premise pins it *)
    let base_assumption (o : Signature.op) =
      match o.Signature.arity with
      | _ :: params ->
        let lhs =
          Term.app_unchecked o
            (st0
            :: List.mapi
                 (fun i s -> Term.var (Printf.sprintf "%%P%d" (i + 1)) s)
                 params)
        in
        let rhs =
          match chain_ctors spec o.Signature.sort with
          | Some (nil, _) -> Some (Term.const nil)
          | None -> (
            match
              List.find_opt
                (fun (c : Signature.op) -> c.Signature.arity = [])
                (ctors_of spec o.Signature.sort)
            with
            | Some c -> Some (Term.const c)
            | None -> None)
        in
        Option.map (fun r -> (lhs, r)) rhs
      | [] -> None
    in
    let rec play (f : Horn.fact) instance =
      let key = (f.Horn.f_id, Term.id instance) in
      if not (Hashtbl.mem visited key) then begin
        Hashtbl.add visited key ();
        if f.Horn.f_cut then
          raise (Replay_failed "derivation crosses the depth cut");
        let sigma =
          match Matching.match_ f.Horn.f_arg instance with
          | Some s -> s
          | None ->
            raise
              (Replay_failed
                 (Printf.sprintf "fact %s does not cover required instance %s"
                    (Term.to_string f.Horn.f_arg)
                    (Term.to_string instance)))
        in
        let inst_of pat = ground (Subst.apply sigma pat) in
        let children =
          List.map (fun (g, pat) -> (g, inst_of pat)) f.Horn.f_parents
        in
        List.iter (fun (g, inst) -> play g inst) children;
        let net_children =
          List.filter_map
            (fun ((g : Horn.fact), inst) ->
              if String.equal g.Horn.f_pred "net" then Some inst else None)
            children
        in
        let stored_children =
          List.filter_map
            (fun ((g : Horn.fact), inst) ->
              match String.index_opt g.Horn.f_pred ':' with
              | Some i when String.length g.Horn.f_pred > i
                            && String.equal (String.sub g.Horn.f_pred 0 i) "stored"
                ->
                Some
                  ( String.sub g.Horn.f_pred (i + 1)
                      (String.length g.Horn.f_pred - i - 1),
                    inst )
              | _ -> None)
            children
        in
        incr checks;
        let is_glean =
          String.length f.Horn.f_pred > 6
          && String.equal (String.sub f.Horn.f_pred 0 6) "glean:"
        in
        if not is_glean then begin
          match f.Horn.f_carrier with
          | Some carrier ->
            (* transition step: re-fire the observer equation *)
            let carrier_inst = inst_of carrier in
            let assumptions =
              List.filter_map
                (fun (o : Signature.op) ->
                  if Signature.op_equal o view.v_net then
                    match o.Signature.arity with
                    | [ _ ] ->
                      Some
                        (Term.app_unchecked o [ st0 ], net_of net_children)
                    | _ -> None
                  else
                    match
                      List.find_opt
                        (fun (n, _) -> String.equal n o.Signature.name)
                        stored_children
                    with
                    | Some (_, inst) -> (
                      match o.Signature.arity with
                      | _ :: params ->
                        Some
                          ( Term.app_unchecked o
                              (st0
                              :: List.mapi
                                   (fun i s ->
                                     Term.var
                                       (Printf.sprintf "%%P%d" (i + 1))
                                       s)
                                   params),
                            inst )
                      | [] -> None)
                    | None -> base_assumption o)
                view.v_observers
            in
            let reduced = Spec.reduce_in branch ~assumptions carrier_inst in
            let ok =
              if String.equal f.Horn.f_pred "net" then
                (* the emitted message must be on the post-state network *)
                match find_member_for (Term.sort instance) with
                | Some m ->
                  Term.equal
                    (Spec.reduce_in branch ~assumptions
                       (Term.app_unchecked m [ instance; carrier_inst ]))
                    Term.tt
                | None ->
                  List.exists (Term.equal instance)
                    (chain_elems ~cons:view.v_cons reduced)
                  || Term.equal reduced instance
              else
                (* stored value: whole cell or chain element *)
                Term.equal reduced instance
                || List.exists (Term.equal instance)
                     (match chain_ctors spec (Term.sort reduced) with
                     | Some (_, cons) -> chain_elems ~cons reduced
                     | None -> [])
            in
            if not ok then
              raise
                (Replay_failed
                   (Printf.sprintf
                      "step %s: %s did not produce %s (got %s)"
                      f.Horn.f_clause.Horn.c_label
                      (Term.to_string carrier_inst)
                      (Term.to_string instance)
                      (Term.to_string reduced)))
          | None ->
            raise
              (Replay_failed
                 (Printf.sprintf "step %s: no carrier to replay"
                    f.Horn.f_clause.Horn.c_label))
        end
        else begin
          (* gleaning step: the collector must accept the instance over
             the materialized network *)
          match glean_op (String.sub f.Horn.f_pred 6
                            (String.length f.Horn.f_pred - 6))
          with
          | Some g ->
            let n = net_of net_children in
            let r =
              Spec.reduce branch (Term.app_unchecked g [ instance; n ])
            in
            if not (Term.equal r Term.tt) then
              raise
                (Replay_failed
                   (Printf.sprintf
                      "gleaning %s(%s, %s) reduced to %s, not true"
                      g.Signature.name (Term.to_string instance)
                      (Term.to_string n) (Term.to_string r)))
          | None ->
            raise
              (Replay_failed
                 ("unknown gleaning predicate " ^ f.Horn.f_pred))
        end
      end
    in
    let tr = Rewrite.tracer () in
    Rewrite.set_tracer (Some tr);
    let outcome =
      match play leak.l_fact root_instance with
      | () -> Ok ()
      | exception Replay_failed msg -> Error msg
      | exception Rewrite.Limit_exceeded _ -> Error "rewrite limit exceeded"
    in
    Rewrite.set_tracer None;
    let b = Certgen.create () in
    Certgen.add_obligations b (Rewrite.obligations tr);
    let cert_res = Certgen.check (Certgen.cert b) in
    let cert_ok = cert_res.Certgen.errors = [] in
    match outcome with
    | Ok () ->
      {
        rp_ok = cert_ok;
        rp_checks = !checks;
        rp_cert_ok = cert_ok;
        rp_obligations = cert_res.Certgen.obligations;
        rp_error = None;
      }
    | Error msg ->
      {
        rp_ok = false;
        rp_checks = !checks;
        rp_cert_ok = cert_ok;
        rp_obligations = cert_res.Certgen.obligations;
        rp_error = Some msg;
      })
