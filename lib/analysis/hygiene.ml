open Kernel

type result = {
  rules : int;
  diagnostics : Diagnostic.t list;
}

let option_equal eq a b =
  match a, b with
  | None, None -> true
  | Some x, Some y -> eq x y
  | _ -> false

let head_name (r : Rewrite.rule) =
  match Term.view r.Rewrite.lhs with
  | Term.App (o, _) -> o.Signature.name
  | Term.Var _ -> ""

(* Rules are tried in list order by {!Kernel.Rewrite}, so an earlier
   unconditional rule whose lhs is more general than a later rule's lhs
   makes the later rule dead code: subsumed if it computes the same
   result, shadowed (a silent behaviour change) otherwise. *)
let shadowing spec name rules =
  let arr = Array.of_list rules in
  let n = Array.length arr in
  let diags = ref [] in
  for j = 0 to n - 1 do
    let rj = arr.(j) in
    let shadow = ref None in
    (* first shadowing rule wins the report *)
    for i = j - 1 downto 0 do
      let ri = arr.(i) in
      if
        ri.Rewrite.cond = None
        && String.equal (head_name ri) (head_name rj)
      then
        match Matching.match_ ri.Rewrite.lhs rj.Rewrite.lhs with
        | Some sub ->
          let same_rhs =
            Term.equal (Subst.apply sub ri.Rewrite.rhs) rj.Rewrite.rhs
            && rj.Rewrite.cond = None
          in
          shadow := Some (ri, same_rhs)
        | None -> ()
    done;
    match !shadow with
    | None -> ()
    | Some (ri, same_rhs) ->
      let pos = Cafeobj.Spec.pos_of spec ("eq:" ^ rj.Rewrite.label) in
      let d =
        if same_rhs then
          Diagnostic.make ?pos ~severity:Diagnostic.Info ~checker:"hygiene"
            ~code:"subsumed-rule" ~spec:name
            (Printf.sprintf "rule %s is subsumed by earlier rule %s (same result)"
               rj.Rewrite.label ri.Rewrite.label)
        else
          Diagnostic.make ?pos ~severity:Diagnostic.Warning ~checker:"hygiene"
            ~code:"shadowed-rule" ~spec:name
            (Printf.sprintf
               "rule %s can never fire: earlier more general rule %s rewrites every instance"
               rj.Rewrite.label ri.Rewrite.label)
      in
      diags := d :: !diags
  done;
  List.rev !diags

let vacuous_conditions spec name rules =
  List.filter_map
    (fun (r : Rewrite.rule) ->
      match r.Rewrite.cond with
      | None -> None
      | Some c -> (
        let pos = Cafeobj.Spec.pos_of spec ("eq:" ^ r.Rewrite.label) in
        match Boolring.of_term c with
        | p when Boolring.is_false p ->
          Some
            (Diagnostic.make ?pos ~severity:Diagnostic.Error ~checker:"hygiene"
               ~code:"vacuous-condition" ~spec:name
               (Format.asprintf
                  "condition of rule %s is propositionally false — the rule can never fire"
                  r.Rewrite.label))
        | p when Boolring.is_true p ->
          Some
            (Diagnostic.make ?pos ~severity:Diagnostic.Info ~checker:"hygiene"
               ~code:"trivial-condition" ~spec:name
               (Printf.sprintf
                  "condition of rule %s is propositionally true — use an unconditional equation"
                  r.Rewrite.label))
        | _ -> None
        | exception Invalid_argument _ -> None))
    rules

let unused spec name ~ops ~rules =
  let used_ops = Hashtbl.create 64 in
  let used_sorts = Hashtbl.create 64 in
  let note_sort (s : Sort.t) = Hashtbl.replace used_sorts s.Sort.name () in
  let note t =
    List.iter
      (fun sub ->
        match Term.view sub with
        | Term.App (o, _) ->
          Hashtbl.replace used_ops o.Signature.name ();
          note_sort o.Signature.sort;
          List.iter note_sort o.Signature.arity
        | Term.Var v -> note_sort v.Term.v_sort)
      (Term.subterms t)
  in
  List.iter
    (fun (r : Rewrite.rule) ->
      note r.Rewrite.lhs;
      note r.Rewrite.rhs;
      Option.iter note r.Rewrite.cond)
    rules;
  (* Constructors build data (no rules needed), so they also mark their
     sorts as used even when no current rule mentions them. *)
  List.iter
    (fun (o : Signature.op) ->
      if Signature.is_ctor o then begin
        note_sort o.Signature.sort;
        List.iter note_sort o.Signature.arity
      end)
    ops;
  let op_diags =
    List.filter_map
      (fun (o : Signature.op) ->
        if
          Signature.is_ctor o
          || Signature.Builtin.is_builtin o
          || Hashtbl.mem used_ops o.Signature.name
        then None
        else
          Some
            (Diagnostic.make
               ?pos:(Cafeobj.Spec.pos_of spec ("op:" ^ o.Signature.name))
               ~severity:Diagnostic.Info ~checker:"hygiene" ~code:"unused-op"
               ~spec:name
               (Printf.sprintf "op %s occurs in no equation" o.Signature.name)))
      ops
  in
  let rec spec_sorts m =
    Cafeobj.Spec.sorts m
    @ List.concat_map spec_sorts (Cafeobj.Spec.imports m)
  in
  let sort_diags =
    List.filter_map
      (fun (s : Sort.t) ->
        if Hashtbl.mem used_sorts s.Sort.name then None
        else if
          List.exists
            (fun (o : Signature.op) ->
              Sort.equal o.Signature.sort s
              || List.exists (Sort.equal s) o.Signature.arity)
            ops
        then None
        else
          Some
            (Diagnostic.make
               ?pos:(Cafeobj.Spec.pos_of spec ("sort:" ^ s.Sort.name))
               ~severity:Diagnostic.Info ~checker:"hygiene" ~code:"unused-sort"
               ~spec:name
               (Printf.sprintf "sort %s is used by no operator or equation" s.Sort.name)))
      (List.sort_uniq Sort.compare (spec_sorts spec))
  in
  op_diags @ sort_diags

let duplicates spec name rules =
  let seen = ref [] in
  List.filter_map
    (fun (r : Rewrite.rule) ->
      let dup =
        List.find_opt
          (fun (r' : Rewrite.rule) ->
            Term.equal r.Rewrite.lhs r'.Rewrite.lhs
            && Term.equal r.Rewrite.rhs r'.Rewrite.rhs
            && option_equal Term.equal r.Rewrite.cond r'.Rewrite.cond)
          !seen
      in
      seen := r :: !seen;
      match dup with
      | None -> None
      | Some r' ->
        Some
          (Diagnostic.make
             ?pos:(Cafeobj.Spec.pos_of spec ("eq:" ^ r.Rewrite.label))
             ~severity:Diagnostic.Info ~checker:"hygiene" ~code:"duplicate-rule"
             ~spec:name
             (Printf.sprintf "rule %s duplicates rule %s" r.Rewrite.label
                r'.Rewrite.label)))
    rules

let check spec =
  let name = Cafeobj.Spec.name spec in
  let rules = Cafeobj.Spec.all_rules spec in
  let ops = Cafeobj.Spec.all_ops spec in
  let dup_diags = duplicates spec name rules in
  (* Exact duplicates are reported once as duplicate-rule; exclude them
     from the shadowing scan so they are not double-reported as subsumed. *)
  let seen = ref [] in
  let without_dups =
    List.filter
      (fun (r : Rewrite.rule) ->
        let dup =
          List.exists
            (fun (r' : Rewrite.rule) ->
              Term.equal r.Rewrite.lhs r'.Rewrite.lhs
              && Term.equal r.Rewrite.rhs r'.Rewrite.rhs
              && option_equal Term.equal r.Rewrite.cond r'.Rewrite.cond)
            !seen
        in
        seen := r :: !seen;
        not dup)
      rules
  in
  let diagnostics =
    dup_diags
    @ shadowing spec name without_dups
    @ vacuous_conditions spec name rules
    @ unused spec name ~ops ~rules
  in
  { rules = List.length rules; diagnostics }
