(** Static symmetry detection from the signature.

    A sort whose constants occur only {e symmetrically} in the rule set —
    every rule stays a rule under any transposition of two of them — is a
    scalarset in the Murφ sense: permuting those constants is an
    automorphism of the induced transition system, so the model checker
    may canonize states up to the permutation group.  The analysis finds
    the maximal interchangeable classes per sort (union-find over
    transposition invariance, which generates the full symmetric group on
    each class); constants that appear asymmetrically in some rule (an
    intruder's name, a certificate authority) are pinned, with the
    breaking rule recorded.

    Like {!Indep}, the result is certified: the certificate lists the
    classes and {!check} replays every transposition against the spec's
    own rules, rejecting forged classes with a breadcrumb path. *)

open Kernel

type cls = {
  c_sort : Sort.t;
  c_elems : Signature.op list;  (** interchangeable constants, sorted by name *)
}

type result = {
  y_spec : string;
  y_classes : cls list;
  y_pinned : (Signature.op * string) list;
      (** asymmetric constants, with the label of the first breaking rule *)
}

val analyze : Cafeobj.Spec.t -> result

(** [orbit_elems r ~candidates]: the largest subset of the candidate
    constant terms lying together in one symmetry class (at least two
    elements, else empty) — the safe canonization pool for a scenario
    drawing interchangeable fresh values from [candidates]. *)
val orbit_elems : result -> candidates:Term.t list -> Term.t list

val certificate : result -> Certify.Sexp.t

(** Replay the certificate: every transposition within every claimed
    class is re-checked against the rule set.  [Ok classes] or
    [Error breadcrumb], e.g. [classes/class[Rand]/swap[nA,nE]/rule[...]]. *)
val check : Cafeobj.Spec.t -> Certify.Sexp.t -> (int, string) Stdlib.result
