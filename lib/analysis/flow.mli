(** Rule-level flow analysis over OTS-style specs.

    Transition rules of an observational transition system have the
    shape [obs(action(S, xs), ys) = rhs]: the equation describes how one
    observer reads the post-state of one action.  This checker recovers
    that structure from the elaborated rewrite rules, computes per-action
    read/write footprints over the observers, derives the action
    dependency graph (an edge [a -> b] when [a] writes an observer [b]
    reads), and reports:

    - ["dead-transition"]: an action none of whose equations changes any
      observer — it can never affect the state (warning);
    - ["dead-guard"]: an observer equation whose guard normalizes to
      [false], so its effect branch is unreachable (warning);
    - ["duplicate-transition"]: two actions whose equations are
      alpha-identical modulo the action name (info);
    - ["unreachable-rule"]: any rule (OTS or not) whose left-hand side
      contains a proper subpattern reducible by an unconditional rule of
      the same system — under the innermost strategy the arguments are
      already normalized when the root is tried, so the rule can never
      fire (warning).

    Specs with no transition rules get footprint-free results and only
    the [unreachable-rule] scan. *)

type transition = {
  t_name : string;  (** action operator *)
  t_reads : string list;  (** observers read by guards/effects *)
  t_writes : string list;  (** observers whose value can change *)
  t_dead : bool;
}

type result = {
  transitions : transition list;  (** sorted by action name *)
  edges : (string * string) list;
      (** dependency edges: writer action, reader action — sorted, deduped *)
  diagnostics : Diagnostic.t list;
}

(** One observer equation [obs(action(S, xs), ys) = rhs], as recovered from
    an elaborated rewrite rule.  Exported for the independence analyzer
    ({!Indep}), which recombines the equations into commutation
    obligations. *)
type obs_eq = {
  oe_rule : Kernel.Rewrite.rule;
  oe_obs : Kernel.Signature.op;
  oe_action : Kernel.Signature.op;
  oe_state : Kernel.Term.var;
  oe_params : Kernel.Term.t list;  (** the observer's own parameters [ys] *)
}

(** [recognize_rule r] recovers the OTS structure of one rewrite rule, or
    [None] when [r] is not an observer-of-successor-state equation. *)
val recognize_rule : Kernel.Rewrite.rule -> obs_eq option

(** The frame of an observer equation: the observer re-applied to the
    pre-state with the same parameters. *)
val frame : obs_eq -> Kernel.Term.t

val check : Cafeobj.Spec.t -> result

(** Graphviz rendering of the action dependency graph. *)
val dot : result -> string
