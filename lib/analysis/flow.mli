(** Rule-level flow analysis over OTS-style specs.

    Transition rules of an observational transition system have the
    shape [obs(action(S, xs), ys) = rhs]: the equation describes how one
    observer reads the post-state of one action.  This checker recovers
    that structure from the elaborated rewrite rules, computes per-action
    read/write footprints over the observers, derives the action
    dependency graph (an edge [a -> b] when [a] writes an observer [b]
    reads), and reports:

    - ["dead-transition"]: an action none of whose equations changes any
      observer — it can never affect the state (warning);
    - ["dead-guard"]: an observer equation whose guard normalizes to
      [false], so its effect branch is unreachable (warning);
    - ["duplicate-transition"]: two actions whose equations are
      alpha-identical modulo the action name (info);
    - ["unreachable-rule"]: any rule (OTS or not) whose left-hand side
      contains a proper subpattern reducible by an unconditional rule of
      the same system — under the innermost strategy the arguments are
      already normalized when the root is tried, so the rule can never
      fire (warning).

    Specs with no transition rules get footprint-free results and only
    the [unreachable-rule] scan. *)

type transition = {
  t_name : string;  (** action operator *)
  t_reads : string list;  (** observers read by guards/effects *)
  t_writes : string list;  (** observers whose value can change *)
  t_dead : bool;
}

type result = {
  transitions : transition list;
  edges : (string * string) list;
      (** dependency edges: writer action, reader action *)
  diagnostics : Diagnostic.t list;
}

val check : Cafeobj.Spec.t -> result

(** Graphviz rendering of the action dependency graph. *)
val dot : result -> string
