open Kernel

type join_status =
  | Syntactic
  | Semantic
  | Undecided
  | Unjoinable of Term.t * Term.t

(* A join certificate: how each side of the divergence was reduced, and how
   the two reducts were reconciled — syntactic identity, boolean-ring
   identity, or a Shannon split on an [if] condition with a certificate per
   branch.  Replayed by the engine-independent [Certify] checker. *)
type jtail = Tsyn | Tring | Tsplit of Term.t * jcert * jcert
and jcert = { jc_left : Rewrite.deriv; jc_right : Rewrite.deriv; jc_tail : jtail }

type pair_report = {
  overlap : Completion.overlap;
  status : join_status;
  cert : jcert option;
}

type result = {
  certified : bool;
  total : int;
  syntactic : int;
  semantic : int;
  reports : pair_report list;
  certs : (Completion.overlap * jcert) list;
  diagnostics : Diagnostic.t list;
}

let norm sys t =
  try Some (Rewrite.normalize sys t) with Rewrite.Limit_exceeded _ -> None

let norm_traced sys t =
  try Some (Rewrite.normalize_traced sys t)
  with Rewrite.Limit_exceeded _ -> None

let bool_equal l r =
  Sort.equal (Term.sort l) Sort.bool
  && Sort.equal (Term.sort r) Sort.bool
  && try Boolring.equal (Boolring.of_term l) (Boolring.of_term r)
    with Invalid_argument _ -> false

(* A boolean condition to case-split on: the condition of some [if]
   application.  Splitting it to [true]/[false] lets the if-simplification
   rules collapse the conditional — exactly what a proof passage does by
   hand.  A variable condition ranges over the free Bool constructors
   [true]/[false], so substituting both is a sound, complete case split;
   application conditions are preferred since collapsing them may also
   unblock recognizer rules. *)
let split_candidate t =
  let conds =
    List.filter_map
      (fun s ->
        match Term.view s with
        | Term.App (o, [ c; _; _ ]) when Signature.Builtin.is_if o -> Some c
        | _ -> None)
      (Term.subterms t)
  in
  match
    List.find_opt
      (fun c -> match Term.view c with Term.App _ -> true | Term.Var _ -> false)
      conds
  with
  | Some _ as c -> c
  | None -> ( match conds with c :: _ -> Some c | [] -> None)

(* Joinability of one divergence, innermost-first:
   1. both sides normalize to the same term — syntactically joinable;
   2. both sides are boolean and equal in the boolean ring (Hsiang):
      semantically joinable — [Boolring.of_term] interprets [if]/[and]/…,
      so e.g. nested conditionals in different orders are identified;
   3. otherwise case-split on an [if] condition (Shannon expansion) and
      require both branches to join, up to [fuel] splits. *)
let rec join sys fuel l r =
  match norm sys l, norm sys r with
  | None, _ | _, None -> Undecided
  | Some l', Some r' ->
    if Term.equal l' r' then Syntactic
    else if bool_equal l' r' then Semantic
    else if fuel <= 0 then Undecided
    else (
      match
        (match split_candidate l' with
        | Some _ as c -> c
        | None -> split_candidate r')
      with
      | None -> Unjoinable (l', r')
      | Some c ->
        let branch v =
          join sys (fuel - 1)
            (Term.replace ~old:c ~by:(Term.bool_ v) l')
            (Term.replace ~old:c ~by:(Term.bool_ v) r')
        in
        combine (branch true) (branch false))

and combine a b =
  match a, b with
  | Unjoinable _, _ -> a
  | _, Unjoinable _ -> b
  | Undecided, _ | _, Undecided -> Undecided
  | (Syntactic | Semantic), (Syntactic | Semantic) -> Semantic

let join_terms = join

(* [join], but additionally building the replayable certificate.  Kept as a
   separate function so the common (untraced) linter path pays no
   derivation-recording cost. *)
let rec join_cert sys fuel l r =
  match norm_traced sys l, norm_traced sys r with
  | None, _ | _, None -> (Undecided, None)
  | Some (l', dl), Some (r', dr) ->
    let leaf tail = Some { jc_left = dl; jc_right = dr; jc_tail = tail } in
    if Term.equal l' r' then (Syntactic, leaf Tsyn)
    else if bool_equal l' r' then (Semantic, leaf Tring)
    else if fuel <= 0 then (Undecided, None)
    else (
      match
        (match split_candidate l' with
        | Some _ as c -> c
        | None -> split_candidate r')
      with
      | None -> (Unjoinable (l', r'), None)
      | Some c ->
        let branch v =
          join_cert sys (fuel - 1)
            (Term.replace ~old:c ~by:(Term.bool_ v) l')
            (Term.replace ~old:c ~by:(Term.bool_ v) r')
        in
        let st, ct = branch true in
        let sf, cf = branch false in
        let status = combine st sf in
        let cert =
          match ct, cf with
          | Some ct, Some cf -> leaf (Tsplit (c, ct, cf))
          | _ -> None
        in
        (status, cert))

let chunks size xs =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n >= size then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

let check ?pool ?(budget = 20_000) ?(fuel = 8) ?(certify = false) spec =
  let name = Cafeobj.Spec.name spec in
  let rules = Cafeobj.Spec.all_rules spec in
  let overlaps = Completion.all_critical_pairs rules in
  let total = List.length overlaps in
  let run_chunk os =
    (* Each chunk builds a private system: [Rewrite.system] carries a
       mutable memo table and step counter, so sharing one across pool
       workers would race. *)
    let sys = Rewrite.make rules in
    Rewrite.set_step_limit sys budget;
    List.map
      (fun (o : Completion.overlap) ->
        let status, cert =
          if certify then join_cert sys fuel o.Completion.left o.Completion.right
          else
            (join sys fuel o.Completion.left o.Completion.right, None)
        in
        { overlap = o; status; cert })
      os
  in
  let chunked = chunks (max 8 (total / 64)) overlaps in
  let reports =
    List.concat
      (match pool with
      | Some pool when List.length chunked > 1 -> Sched.Pool.parallel_map pool run_chunk chunked
      | _ -> List.map run_chunk chunked)
  in
  let syntactic =
    List.length (List.filter (fun p -> p.status = Syntactic) reports)
  in
  let semantic = List.length (List.filter (fun p -> p.status = Semantic) reports) in
  let diag (p : pair_report) =
    let o = p.overlap in
    let labels =
      Printf.sprintf "%s/%s" o.Completion.outer.Rewrite.label
        o.Completion.inner.Rewrite.label
    in
    let pos =
      Cafeobj.Spec.pos_of spec ("eq:" ^ o.Completion.outer.Rewrite.label)
    in
    match p.status with
    | Syntactic | Semantic -> None
    | Undecided ->
      Some
        (Diagnostic.make ?pos ~severity:Diagnostic.Warning ~checker:"confluence"
           ~code:"undecided-join" ~spec:name
           (Format.asprintf
              "critical pair of rules %s undecided within budget (peak %a)" labels
              Term.pp o.Completion.peak))
    | Unjoinable (l, r) ->
      Some
        (Diagnostic.make ?pos ~severity:Diagnostic.Error ~checker:"confluence"
           ~code:"unjoinable-pair" ~spec:name
           (Format.asprintf
              "critical pair of rules %s is not joinable: %a reduces to both %a and %a"
              labels Term.pp o.Completion.peak Term.pp l Term.pp r))
  in
  let diagnostics = List.filter_map diag reports in
  let certs =
    List.filter_map
      (fun p -> Option.map (fun c -> (p.overlap, c)) p.cert)
      reports
  in
  let reports = List.filter (fun p -> p.status <> Syntactic) reports in
  {
    certified = syntactic + semantic = total;
    total;
    syntactic;
    semantic;
    reports;
    certs;
    diagnostics;
  }
