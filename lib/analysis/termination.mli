(** Termination checker: search for an LPO precedence under which every
    rule of the module (imports included) is strictly decreasing
    ({!Kernel.Order.search_precedence}).  A successful search is a
    termination certificate for the whole rewrite system behind [red];
    each rule left unoriented yields one error diagnostic.  Sound but
    incomplete: a diagnostic means "no proof found", not "loops". *)

open Kernel

type result = {
  certified : bool;  (** every rule oriented *)
  search : Order.search_result;
      (** the found precedence — reused by the confluence checker and
          printable for [--prec] overrides *)
  diagnostics : Diagnostic.t list;
}

(** [check ?hint spec] — [hint] seeds the precedence search (the CLI's
    [--prec] list, later operators greater). *)
val check : ?hint:Signature.op list -> Cafeobj.Spec.t -> result
