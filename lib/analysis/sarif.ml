let esc = Diagnostic.json_escape

let level_of = function
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"
  | Diagnostic.Info -> "note"

let of_report (r : Lint.report) =
  (* module name -> source file, for physicalLocation URIs *)
  let sources =
    List.map (fun m -> (m.Lint.m_name, m.Lint.m_source)) r.Lint.modules
  in
  let uri_of (d : Diagnostic.t) =
    match List.assoc_opt d.Diagnostic.spec sources with
    | Some s -> s
    | None -> d.Diagnostic.spec
  in
  let rule_id (d : Diagnostic.t) =
    d.Diagnostic.checker ^ "/" ^ d.Diagnostic.code
  in
  let rules =
    List.sort_uniq compare (List.map rule_id r.Lint.diagnostics)
  in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  add "  \"version\": \"2.1.0\",\n";
  add "  \"runs\": [\n";
  add "    {\n";
  add "      \"tool\": {\n";
  add "        \"driver\": {\n";
  add "          \"name\": \"ots-lint\",\n";
  add "          \"informationUri\": \"https://example.invalid/ots-lint\",\n";
  add "          \"rules\": [\n";
  List.iteri
    (fun i id ->
      add "            {\"id\": \"%s\", \"name\": \"%s\"}%s\n" (esc id)
        (esc id)
        (if i = List.length rules - 1 then "" else ","))
    rules;
  add "          ]\n";
  add "        }\n";
  add "      },\n";
  add "      \"results\": [\n";
  List.iteri
    (fun i (d : Diagnostic.t) ->
      add "        {\n";
      add "          \"ruleId\": \"%s\",\n" (esc (rule_id d));
      add "          \"level\": \"%s\",\n" (level_of d.Diagnostic.severity);
      add "          \"message\": {\"text\": \"%s: %s\"},\n"
        (esc d.Diagnostic.spec)
        (esc d.Diagnostic.message);
      add "          \"locations\": [\n";
      add "            {\n";
      add "              \"physicalLocation\": {\n";
      add "                \"artifactLocation\": {\"uri\": \"%s\"}%s\n"
        (esc (uri_of d))
        (if d.Diagnostic.pos = None then "" else ",");
      (match d.Diagnostic.pos with
      | Some (line, col) ->
        add
          "                \"region\": {\"startLine\": %d, \"startColumn\": \
           %d}\n"
          line col
      | None -> ());
      add "              }\n";
      add "            }\n";
      add "          ]\n";
      add "        }%s\n" (if i = List.length r.Lint.diagnostics - 1 then "" else ",");
      ())
    r.Lint.diagnostics;
  add "      ]\n";
  add "    }\n";
  add "  ]\n";
  add "}\n";
  Buffer.contents buf

let write path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (of_report r))
