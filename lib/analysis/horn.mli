(** Horn-clause saturation over term patterns — the engine behind the
    static secrecy analysis ({!Secrecy}).

    A {e fact} is a predicate applied to one term pattern; its variables
    are implicitly universally quantified, so one fact covers every
    instance (ProVerif-style).  A {e clause} derives a head fact from
    premise facts under equality constraints.  {!saturate} runs unit
    resolution to a fixpoint: premises unify with known facts (renamed
    apart), constraints are discharged by normalization + unification
    with bounded constructor expansion of blocked variables, and derived
    heads are generalized by a depth-k cut so the abstract fact space is
    finite.

    Soundness direction: an undischargeable constraint is {e dropped}
    (the clause fires anyway) and a too-deep subterm is {e generalized}
    to a fresh variable — both over-approximate, so a saturation that
    never derives the secret is a proof.  Constraint failure prunes a
    branch only when both sides are constructor-rigid, where disequality
    is definitive.  Derivations are recorded on every fact, so a derived
    secret unwinds into a witness tree. *)

open Kernel

type clause = {
  c_label : string;  (** usually the originating rule label *)
  c_head : string * Term.t;
  c_premises : (string * Term.t) list;
  c_constraints : (Term.t * Term.t) list;
      (** equalities solved at resolution time (normalize, then unify) *)
  c_carrier : Term.t option;
      (** the concrete-spec term this clause abstracts (e.g. the full
          observer-equation lhs), instantiated along with the head —
          replay reconstructs the concrete rewrite from it *)
}

type fact = {
  f_pred : string;
  f_arg : Term.t;  (** canonically renamed pattern *)
  f_clause : clause;
  f_parents : (fact * Term.t) list;
      (** premise facts and the instance patterns they were used at,
          sharing variables with [f_arg] *)
  f_carrier : Term.t option;
  f_cut : bool;  (** this fact (or an ancestor) lost structure to the
                     depth cut — its derivation may not replay *)
  f_id : int;
  mutable f_alive : bool;  (** false once back-subsumed *)
}

type stats = {
  rounds : int;  (** worklist items processed *)
  resolutions : int;  (** successful clause firings *)
  subsumed : int;  (** derived facts dropped as instances of known ones *)
  facts_total : int;  (** alive facts at the end *)
}

type outcome = {
  saturated : bool;  (** false: the fact budget ran out (inconclusive) *)
  facts : fact list;  (** alive facts, in derivation order *)
  stats : stats;
}

(** [saturate ~normalize ~constructors clauses] runs the worklist to
    fixpoint (or until [max_facts] alive facts exist).  [normalize]
    should be a total simplifier — typically the spec's [reduce] with
    [Limit_exceeded] caught; [constructors] drives bounded expansion of
    variables blocking a constraint (sort with no constructors: the
    constraint is dropped instead).  [depth] is the generalization cut
    on derived heads; [expansion] the per-constraint expansion fuel.
    Deterministic: clause order and fact insertion order fix the
    result. *)
val saturate :
  ?depth:int ->
  ?max_facts:int ->
  ?expansion:int ->
  normalize:(Term.t -> Term.t) ->
  constructors:(Sort.t -> Signature.op list) ->
  clause list ->
  outcome

(** [facts_of outcome pred] — alive facts of one predicate. *)
val facts_of : outcome -> string -> fact list

(** [subsumes general specific] — every instance of [specific] is an
    instance of [general] (same predicate, one-way match). *)
val subsumes : pred:string -> Term.t -> pred2:string -> Term.t -> bool

(** [map_vars f t] rebuilds [t] replacing each variable [v] by [f v]. *)
val map_vars : (Term.var -> Term.t) -> Term.t -> Term.t

(** [canonicalize ts] renames the variables of the tuple [ts]
    consistently to [%1], [%2], … in left-to-right order of first
    occurrence — alpha-equal tuples become structurally equal. *)
val canonicalize : Term.t list -> Term.t list

(** [compose s1 s2] — apply [s2] after [s1] ([apply (compose s1 s2) t =
    apply s2 (apply s1 t)] for [t] over [s1]'s domain). *)
val compose : Subst.t -> Subst.t -> Subst.t

(** [ctor_rigid t] — [t] is built only from constructors, [true]/[false]
    and variables, so unification failure against another rigid term is
    a definitive disequality. *)
val ctor_rigid : Term.t -> bool
