(** Sufficient-completeness checker: every defined (non-constructor)
    operator must reduce on all constructor argument patterns.

    Patterns are enumerated by need: starting from [f(x1…xn)], a pattern
    already matched by some rule's left-hand side is covered (conditional
    rules count optimistically); otherwise a variable is split along the
    constructors of its sort wherever an overlapping rule demands it.
    Sorts without [ctor] declarations split along their {e generators}
    (all operators producing the sort) — for an OTS state sort this checks
    that every observer is defined on [init] and on every action, the
    paper's induction structure.  AC/commutative operators are skipped
    (pattern matching here is syntactic).

    Missing patterns of a partial {e projection} (all right-hand sides
    plain variables, e.g. the paper's [rand] on messages that carry no
    random) are reported as info; missing patterns of computing operators
    are errors. *)

type result = {
  checked : int;  (** defined ops with at least one rule *)
  complete : int;
  diagnostics : Diagnostic.t list;
}

val check : Cafeobj.Spec.t -> result
