(** Local-confluence checker: every critical pair of the module's rule set
    ({!Kernel.Completion.all_critical_pairs}, self-overlaps included) must
    be joinable.  Together with a termination certificate this gives
    confluence (Newman's lemma), i.e. [red] computes a unique normal form.

    Pairs are joined innermost-first within a step budget.  A pair whose
    normal forms differ syntactically may still be {e semantically}
    joinable: both sides boolean-ring equal (Hsiang — how the paper's BOOL
    identifies [xor]-permuted forms), or joinable in every branch of a
    Shannon case split on an [if] condition (the if-lifted TLS rules
    produce nested conditionals in different orders).  Such pairs are
    counted [semantic] and do not fail certification; truly divergent
    pairs are errors, budget blow-ups are warnings. *)

open Kernel

type join_status =
  | Syntactic  (** identical normal forms *)
  | Semantic  (** equal after boolean-ring reasoning / [if] case split *)
  | Undecided  (** step budget or split fuel exhausted *)
  | Unjoinable of Term.t * Term.t  (** the divergent normal forms *)

(** A replayable join certificate: the derivation of each side's reduct and
    the reconciliation tail — syntactic identity, boolean-ring identity, or
    a Shannon split on an [if] condition with one certificate per branch.
    Checked by the engine-independent [Certify] kernel; the enumeration of
    critical pairs itself remains trusted (documented trust boundary). *)
type jtail = Tsyn | Tring | Tsplit of Term.t * jcert * jcert
and jcert = { jc_left : Rewrite.deriv; jc_right : Rewrite.deriv; jc_tail : jtail }

type pair_report = {
  overlap : Completion.overlap;
  status : join_status;
  cert : jcert option;  (** present when [check ~certify:true] decided the pair *)
}

type result = {
  certified : bool;  (** every pair [Syntactic] or [Semantic] *)
  total : int;
  syntactic : int;
  semantic : int;
  reports : pair_report list;  (** the non-syntactic pairs *)
  certs : (Completion.overlap * jcert) list;
      (** with [~certify:true]: one join certificate per decided pair *)
  diagnostics : Diagnostic.t list;
}

(** [join_terms sys fuel l r] decides one divergence: normalize both sides
    in [sys], then reconcile syntactically, by boolean-ring reasoning, or by
    a Shannon case split on an [if] condition (up to [fuel] splits).  This
    is the joinability core of {!check}, exported for reuse by the
    independence analyzer ({!Indep}). *)
val join_terms : Rewrite.system -> int -> Term.t -> Term.t -> join_status

(** [split_candidate t] is the condition of some [if] application inside
    [t] — the preferred Shannon-split pivot (application conditions before
    variable ones), or [None] when [t] contains no conditional. *)
val split_candidate : Term.t -> Term.t option

(** [check ?pool ?budget ?fuel ?certify spec] — [budget] caps rewrite steps
    per normalization (default 20k), [fuel] caps Shannon splits per pair
    (default 8).  With [pool], pair chunks are joined in parallel; each
    chunk rebuilds a private rewrite system, so results are deterministic
    and race-free.  With [certify] (default [false]), every decided pair
    also records a join certificate in [certs]. *)
val check :
  ?pool:Sched.Pool.t ->
  ?budget:int ->
  ?fuel:int ->
  ?certify:bool ->
  Cafeobj.Spec.t ->
  result
