(** Local-confluence checker: every critical pair of the module's rule set
    ({!Kernel.Completion.all_critical_pairs}, self-overlaps included) must
    be joinable.  Together with a termination certificate this gives
    confluence (Newman's lemma), i.e. [red] computes a unique normal form.

    Pairs are joined innermost-first within a step budget.  A pair whose
    normal forms differ syntactically may still be {e semantically}
    joinable: both sides boolean-ring equal (Hsiang — how the paper's BOOL
    identifies [xor]-permuted forms), or joinable in every branch of a
    Shannon case split on an [if] condition (the if-lifted TLS rules
    produce nested conditionals in different orders).  Such pairs are
    counted [semantic] and do not fail certification; truly divergent
    pairs are errors, budget blow-ups are warnings. *)

open Kernel

type join_status =
  | Syntactic  (** identical normal forms *)
  | Semantic  (** equal after boolean-ring reasoning / [if] case split *)
  | Undecided  (** step budget or split fuel exhausted *)
  | Unjoinable of Term.t * Term.t  (** the divergent normal forms *)

type pair_report = {
  overlap : Completion.overlap;
  status : join_status;
}

type result = {
  certified : bool;  (** every pair [Syntactic] or [Semantic] *)
  total : int;
  syntactic : int;
  semantic : int;
  reports : pair_report list;  (** the non-syntactic pairs *)
  diagnostics : Diagnostic.t list;
}

(** [check ?pool ?budget ?fuel spec] — [budget] caps rewrite steps per
    normalization (default 20k), [fuel] caps Shannon splits per pair
    (default 8).  With [pool], pair chunks are joined in parallel; each
    chunk rebuilds a private rewrite system, so results are deterministic
    and race-free. *)
val check :
  ?pool:Sched.Pool.t -> ?budget:int -> ?fuel:int -> Cafeobj.Spec.t -> result
