(** SARIF 2.1.0 export of a lint report, for CI code-scanning upload and
    PR annotation.

    One run per report: the tool driver is [ots-lint], each distinct
    [checker/code] pair becomes a reporting rule, and each diagnostic a
    result.  Severities map [Error]→[error], [Warning]→[warning],
    [Info]→[note].  Source positions (when the diagnostic carries one)
    become [physicalLocation] regions against the module's source file;
    diagnostics about generated specs fall back to the source label. *)

val of_report : Lint.report -> string

(** [write path report] writes {!of_report} to [path]. *)
val write : string -> Lint.report -> unit
