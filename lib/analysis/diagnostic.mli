(** Linter diagnostics: one finding of one checker about one module.

    Diagnostics carry a severity ([Error] findings make the lint gate and
    the CI job fail), the emitting checker's name, a stable short [code]
    for filtering, the module name and an optional source position (absent
    for generated specs). *)

type severity = Error | Warning | Info

val severity_name : severity -> string

(** [Error] < [Warning] < [Info] — sorting puts errors first. *)
val severity_rank : severity -> int

type t = {
  severity : severity;
  checker : string;  (** "termination", "confluence", … *)
  code : string;  (** stable slug, e.g. "unoriented-rule" *)
  spec : string;  (** module name *)
  pos : (int * int) option;  (** 1-based line/col of the culprit declaration *)
  message : string;
}

val make :
  ?pos:int * int ->
  severity:severity ->
  checker:string ->
  code:string ->
  spec:string ->
  string ->
  t

(** Severity first, then module, checker, position, message. *)
val compare : t -> t -> int

(** [count sev ds] — how many diagnostics of severity [sev]. *)
val count : severity -> t list -> int

val pp : Format.formatter -> t -> unit

(** One JSON object, e.g.
    [{"severity": "error", "checker": "termination", ...}]. *)
val to_json : t -> string

(** Escape a string for embedding in a JSON literal (shared by the CLI's
    report writer). *)
val json_escape : string -> string
