type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type t = {
  severity : severity;
  checker : string;
  code : string;
  spec : string;
  pos : (int * int) option;
  message : string;
}

let make ?pos ~severity ~checker ~code ~spec message =
  { severity; checker; code; spec; pos; message }

let compare d1 d2 =
  let c = compare (severity_rank d1.severity) (severity_rank d2.severity) in
  if c <> 0 then c
  else
    let c = String.compare d1.spec d2.spec in
    if c <> 0 then c
    else
      let c = String.compare d1.checker d2.checker in
      if c <> 0 then c
      else
        let c = compare d1.pos d2.pos in
        if c <> 0 then c else String.compare d1.message d2.message

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let pp ppf d =
  let pp_pos ppf = function
    | Some (l, c) -> Format.fprintf ppf ":%d:%d" l c
    | None -> ()
  in
  Format.fprintf ppf "%s%a: %s: [%s/%s] %s" d.spec pp_pos d.pos
    (severity_name d.severity) d.checker d.code d.message

(* ------------------------------------------------------------------ *)
(* JSON — hand-rolled, the repo has no JSON dependency. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let pos =
    match d.pos with
    | Some (l, c) -> Printf.sprintf {|, "line": %d, "col": %d|} l c
    | None -> ""
  in
  Printf.sprintf
    {|{"severity": "%s", "checker": "%s", "code": "%s", "module": "%s"%s, "message": "%s"}|}
    (severity_name d.severity) (json_escape d.checker) (json_escape d.code)
    (json_escape d.spec) pos (json_escape d.message)
