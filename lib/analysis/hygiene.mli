(** Rule-hygiene lints over a module's full rule set (imports included),
    in system order — the order {!Kernel.Rewrite} tries rules:

    - [duplicate-rule] (info): a rule textually identical to an earlier one
      (harmless for rewriting, but usually a copy-paste);
    - [subsumed-rule] (info) / [shadowed-rule] (warning): a rule an earlier
      unconditional more-general rule prevents from ever firing — a warning
      when the two compute {e different} results, i.e. the spec silently
      changed meaning;
    - [vacuous-condition] (error) / [trivial-condition] (info): a [ceq]
      whose condition is propositionally false (never fires) or true
      (should be an [eq]), decided in the boolean ring;
    - [unused-op] / [unused-sort] (info): declared but occurring in no
      equation (constructors are exempt — they build data).

    Variable-condition violations ([rhs]/[cond] variables missing from the
    lhs) cannot exist in a built {!Cafeobj.Spec.t} — {!Kernel.Rewrite.rule}
    rejects them — and are instead reported at elaboration time by
    {!Cafeobj.Eval} with the declaration's source position. *)

type result = {
  rules : int;
  diagnostics : Diagnostic.t list;
}

val check : Cafeobj.Spec.t -> result
