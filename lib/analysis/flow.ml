open Kernel

type transition = {
  t_name : string;
  t_reads : string list;
  t_writes : string list;
  t_dead : bool;
}

type result = {
  transitions : transition list;
  edges : (string * string) list;
  diagnostics : Diagnostic.t list;
}

(* One observer equation [obs(action(S, xs), ys) = rhs]. *)
type obs_eq = {
  oe_rule : Rewrite.rule;
  oe_obs : Signature.op;
  oe_action : Signature.op;
  oe_state : Term.var;
  oe_params : Term.t list;  (** the observer's own parameters [ys] *)
}

let recognize_rule (r : Rewrite.rule) =
  match Term.view r.Rewrite.lhs with
  | Term.App (obs, inner :: ys) -> (
    match Term.view inner with
    | Term.App (act, s :: _) when act.Signature.sort.Sort.hidden -> (
      match Term.view s with
      | Term.Var v when v.Term.v_sort.Sort.hidden ->
        Some { oe_rule = r; oe_obs = obs; oe_action = act; oe_state = v; oe_params = ys }
      | _ -> None)
    | _ -> None)
  | _ -> None

(* The frame of an observer equation: the observer re-applied to the
   pre-state with the same parameters. *)
let frame oe =
  Term.app_unchecked oe.oe_obs (Term.var oe.oe_state.Term.v_name oe.oe_state.Term.v_sort :: oe.oe_params)

(* Observers [o'(S, ...)] read anywhere inside [t]. *)
let reads_of ~observers ~state t =
  List.filter_map
    (fun sub ->
      match Term.view sub with
      | Term.App (o, s :: _)
        when List.exists (Signature.op_equal o) observers && Term.equal s state
        -> Some o.Signature.name
      | _ -> None)
    (Term.subterms t)

let check spec =
  let name = Cafeobj.Spec.name spec in
  let rules = Cafeobj.Spec.all_rules spec in
  let own = Cafeobj.Spec.own_rules spec in
  let pos_of (r : Rewrite.rule) =
    Cafeobj.Spec.pos_of spec ("eq:" ^ r.Rewrite.label)
  in
  let obs_eqs = List.filter_map recognize_rule own in
  let observers =
    List.fold_left
      (fun acc oe ->
        if List.exists (Signature.op_equal oe.oe_obs) acc then acc
        else oe.oe_obs :: acc)
      [] obs_eqs
    |> List.rev
  in
  let diags = ref [] in
  let diag ?pos severity code msg =
    diags :=
      Diagnostic.make ?pos ~severity ~checker:"flow" ~code ~spec:name msg
      :: !diags
  in
  (* --- per-action footprints ------------------------------------- *)
  let actions =
    List.fold_left
      (fun acc oe ->
        if List.exists (Signature.op_equal oe.oe_action) acc then acc
        else oe.oe_action :: acc)
      [] obs_eqs
    |> List.rev
  in
  let safe_reduce t =
    try Cafeobj.Spec.reduce spec t with Kernel.Rewrite.Limit_exceeded _ -> t
  in
  let transitions =
    List.map
      (fun (act : Signature.op) ->
        let eqs =
          List.filter (fun oe -> Signature.op_equal oe.oe_action act) obs_eqs
        in
        let reads = ref [] and writes = ref [] in
        List.iter
          (fun oe ->
            let state =
              Term.var oe.oe_state.Term.v_name oe.oe_state.Term.v_sort
            in
            let rhs = oe.oe_rule.Rewrite.rhs in
            let r = reads_of ~observers ~state rhs in
            let r =
              match oe.oe_rule.Rewrite.cond with
              | Some c -> r @ reads_of ~observers ~state c
              | None -> r
            in
            reads := !reads @ r;
            if not (Term.equal rhs (frame oe)) then begin
              (* a guard that rewrites to false makes the equation a
                 frame in disguise *)
              let live =
                match Term.view rhs with
                | Term.App (o, [ c; t; _e ]) when Signature.Builtin.is_if o ->
                  if Term.equal (safe_reduce c) Term.ff then begin
                    if not (Term.equal t (frame oe)) then
                      diag ?pos:(pos_of oe.oe_rule) Diagnostic.Warning
                        "dead-guard"
                        (Printf.sprintf
                           "guard of rule %s always rewrites to false — its effect on %s is unreachable"
                           oe.oe_rule.Rewrite.label oe.oe_obs.Signature.name);
                    false
                  end
                  else true
                | _ -> true
              in
              if live then writes := oe.oe_obs.Signature.name :: !writes
            end)
          eqs;
        let dedup l = List.sort_uniq String.compare l in
        let t_writes = dedup !writes in
        let t_dead = t_writes = [] && eqs <> [] in
        if t_dead then begin
          let pos =
            List.find_map (fun oe -> pos_of oe.oe_rule) eqs
          in
          diag ?pos Diagnostic.Warning "dead-transition"
            (Printf.sprintf
               "transition %s changes no observer — it can never affect the state"
               act.Signature.name)
        end;
        {
          t_name = act.Signature.name;
          t_reads = dedup !reads;
          t_writes;
          t_dead;
        })
      actions
  in
  (* --- duplicate transitions ------------------------------------- *)
  let eqs_of (act : Signature.op) =
    List.filter (fun oe -> Signature.op_equal oe.oe_action act) obs_eqs
  in
  let action_shape (act : Signature.op) =
    let eqs =
      eqs_of act
      |> List.sort (fun a b ->
             String.compare a.oe_obs.Signature.name b.oe_obs.Signature.name)
    in
    (* the action symbol itself is erased: only its arguments, the
       observer parameters and the right-hand side are compared *)
    List.concat_map
      (fun oe ->
        let lhs_args =
          match Term.view oe.oe_rule.Rewrite.lhs with
          | Term.App (_, inner :: ys) -> (
            match Term.view inner with
            | Term.App (_, args) -> args @ ys
            | _ -> inner :: ys)
          | _ -> []
        in
        Horn.canonicalize (lhs_args @ [ oe.oe_rule.Rewrite.rhs ]))
      eqs
  in
  let rec dup_scan = function
    | [] -> ()
    | a :: rest ->
      List.iter
        (fun b ->
          if
            List.length (action_shape a) > 0
            && (try List.for_all2 Term.equal (action_shape a) (action_shape b)
                with Invalid_argument _ -> false)
          then begin
            let pos = List.find_map (fun oe -> pos_of oe.oe_rule) (eqs_of a) in
            diag ?pos Diagnostic.Info "duplicate-transition"
              (Printf.sprintf "transitions %s and %s have identical behaviour"
                 a.Signature.name b.Signature.name)
          end)
        rest;
      dup_scan rest
  in
  dup_scan actions;
  (* --- innermost-unreachable rules ------------------------------- *)
  let unconditional =
    List.filter (fun (r : Rewrite.rule) -> r.Rewrite.cond = None) rules
  in
  List.iter
    (fun (r : Rewrite.rule) ->
      let proper_subs =
        match Term.view r.Rewrite.lhs with
        | Term.App (_, args) ->
          List.concat_map Term.subterms args
          |> List.filter (fun t ->
                 match Term.view t with Term.Var _ -> false | _ -> true)
        | _ -> []
      in
      let blocker =
        List.find_map
          (fun sub ->
            List.find_map
              (fun (r2 : Rewrite.rule) ->
                if r2 == r then None
                else if Matching.match_ r2.Rewrite.lhs sub <> None then Some r2
                else None)
              unconditional)
          proper_subs
      in
      match blocker with
      | Some r2 ->
        diag ?pos:(pos_of r) Diagnostic.Warning "unreachable-rule"
          (Printf.sprintf
             "rule %s can never fire: its left-hand side contains a redex of rule %s, which the innermost strategy reduces first"
             r.Rewrite.label r2.Rewrite.label)
      | None -> ())
    own;
  (* --- dependency graph ------------------------------------------ *)
  let edges =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if
              a.t_name <> b.t_name
              && List.exists (fun w -> List.mem w b.t_reads) a.t_writes
            then Some (a.t_name, b.t_name)
            else None)
          transitions)
      transitions
  in
  (* Deterministic output: transitions by action name, edges sorted and
     deduplicated, so reports, dot renderings and downstream analyses do
     not depend on declaration order. *)
  let transitions =
    List.sort (fun a b -> String.compare a.t_name b.t_name) transitions
  in
  let edges = List.sort_uniq compare edges in
  { transitions; edges; diagnostics = List.rev !diags }

let dot r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph flow {\n";
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\"%s;\n" t.t_name
           (if t.t_dead then " [style=dashed]" else "")))
    r.transitions;
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf (Printf.sprintf "  \"%s\" -> \"%s\";\n" a b))
    r.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
