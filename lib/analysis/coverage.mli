(** Proof-score coverage checker.

    The paper's proof scores split an inductive step into [open M … close]
    passages, one per case, each assuming its case predicate with equations
    like [eq lock(s) = false .].  The proof is only sound if the case
    predicates are exhaustive.  This checker finds maximal runs of two or
    more consecutive passages over the same module, abstracts each
    passage's boolean assumptions ([eq c = true/false .]) into literals
    over syntax-keyed atoms, and requires the disjunction of the case
    predicates to be [true] in the boolean ring ({!Kernel.Boolring}) —
    statically, without running any [red].

    Single passages and passage runs with no boolean assumptions are not
    case analyses and are skipped. *)

type group = {
  module_name : string;
  pos : int * int;  (** position of the group's first [open] *)
  passages : int;
  exhaustive : bool;
  residual : string option;  (** the uncovered condition, when inexhaustive *)
}

type result = {
  groups : group list;
  diagnostics : Diagnostic.t list;
}

val check : Cafeobj.Parser.program -> result
