module P = Cafeobj.Parser
module Lexer = Cafeobj.Lexer

let checkers =
  [
    "termination";
    "confluence";
    "completeness";
    "hygiene";
    "coverage";
    "secrecy";
    "flow";
    "independence";
  ]

type source =
  | File of string
  | Generated of { label : string; spec : Cafeobj.Spec.t }

type module_summary = {
  m_name : string;
  m_source : string;
  m_rules : int;
  m_terminating : bool option;  (** [None]: checker skipped or load failed *)
  m_pairs : int option;
  m_joinable : bool option;
  m_semantic_joins : int option;
  m_secrecy : string option;  (** verdict name; [None]: checker skipped *)
  m_transitions : int option;  (** flow: recognized transitions *)
  m_independent : (int * int) option;
      (** independence: (proved-independent, total) action pairs *)
}

type report = {
  diagnostics : Diagnostic.t list;
  modules : module_summary list;
  graphs : (string * string) list;
      (** per module: the flow dependency graph with independence edges
          overlaid, as Graphviz dot (needs both checkers enabled) *)
  errors : int;
  warnings : int;
  infos : int;
}

type options = {
  only : string list;
  skip : string list;
  hint : string list;  (** operator names, later = greater in the precedence *)
  budget : int;
  fuel : int;
  allow : string list;  (** ["SPEC:code"] findings demoted to info *)
}

let default_options =
  { only = []; skip = []; hint = []; budget = 20_000; fuel = 8; allow = [] }

let validate_options opts =
  List.iter
    (fun c ->
      if not (List.mem c checkers) then
        invalid_arg
          (Printf.sprintf "unknown checker %s (expected one of %s)" c
             (String.concat ", " checkers)))
    (opts.only @ opts.skip)

let enabled opts c =
  (opts.only = [] || List.mem c opts.only) && not (List.mem c opts.skip)

(* ------------------------------------------------------------------ *)
(* Checking one elaborated module *)

let check_spec ?pool ~opts ~source spec =
  let name = Cafeobj.Spec.name spec in
  let hint = List.filter_map (Cafeobj.Spec.find_op spec) opts.hint in
  (* one span per checker per module, so the trace shows where lint wall
     time goes (critical-pair joining dwarfs the rest on the TLS spec) *)
  let span checker f =
    Telemetry.Probe.with_span ~always:true ~cat:"lint"
      (checker ^ ":" ^ name) f
  in
  let term_result =
    if enabled opts "termination" then
      Some (span "termination" (fun () -> Termination.check ~hint spec))
    else None
  in
  let conf_result =
    if enabled opts "confluence" then
      Some
        (span "confluence" (fun () ->
             Confluence.check ?pool ~budget:opts.budget ~fuel:opts.fuel spec))
    else None
  in
  let comp_diags =
    if enabled opts "completeness" then
      (span "completeness" (fun () -> Completeness.check spec))
        .Completeness.diagnostics
    else []
  in
  let hyg_diags =
    if enabled opts "hygiene" then
      (span "hygiene" (fun () -> Hygiene.check spec)).Hygiene.diagnostics
    else []
  in
  let secrecy_result =
    if enabled opts "secrecy" then
      Some (span "secrecy" (fun () -> Secrecy.check spec))
    else None
  in
  let flow_result =
    if enabled opts "flow" then Some (span "flow" (fun () -> Flow.check spec))
    else None
  in
  let indep_result =
    (* [analyze] itself returns [None] on specs without transition rules
       (plain data modules), which also reads as "nothing to report". *)
    if enabled opts "independence" then
      span "independence" (fun () ->
          Indep.analyze ?pool ~fuel:opts.fuel ~budget:opts.budget spec)
    else None
  in
  let graph =
    match flow_result, indep_result with
    | Some f, Some i when f.Flow.transitions <> [] ->
      Some (name, Indep.dot f i)
    | _ -> None
  in
  let diagnostics =
    (match term_result with Some r -> r.Termination.diagnostics | None -> [])
    @ (match conf_result with Some r -> r.Confluence.diagnostics | None -> [])
    @ comp_diags @ hyg_diags
    @ (match secrecy_result with Some c -> c.Secrecy.diagnostics | None -> [])
    @ (match flow_result with Some r -> r.Flow.diagnostics | None -> [])
    @ (match indep_result with Some r -> r.Indep.r_diagnostics | None -> [])
  in
  let summary =
    {
      m_name = name;
      m_source = source;
      m_rules = List.length (Cafeobj.Spec.all_rules spec);
      m_terminating = Option.map (fun r -> r.Termination.certified) term_result;
      m_pairs = Option.map (fun r -> r.Confluence.total) conf_result;
      m_joinable = Option.map (fun r -> r.Confluence.certified) conf_result;
      m_semantic_joins = Option.map (fun r -> r.Confluence.semantic) conf_result;
      m_secrecy =
        Option.map
          (fun c -> Secrecy.verdict_name c.Secrecy.result)
          secrecy_result;
      m_transitions =
        Option.map
          (fun r -> List.length r.Flow.transitions)
          flow_result;
      m_independent =
        Option.map
          (fun r -> r.Indep.r_independent, r.Indep.r_total)
          indep_result;
    }
  in
  summary, diagnostics, graph

(* ------------------------------------------------------------------ *)
(* Loading sources *)

type loaded = {
  l_source : string;
  l_specs : Cafeobj.Spec.t list;
  l_program : P.program option;  (** [None] for generated specs *)
  l_diags : Diagnostic.t list;  (** load errors *)
}

let load_file path =
  let fail_diag ?pos code msg =
    {
      l_source = path;
      l_specs = [];
      l_program = None;
      l_diags =
        [
          Diagnostic.make ?pos ~severity:Diagnostic.Error ~checker:"load" ~code
            ~spec:(Filename.basename path) msg;
        ];
    }
  in
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> fail_diag "io-error" m
  | src -> (
    match P.parse_string src with
    | exception Lexer.Error { line; col; message } ->
      fail_diag ~pos:(line, col) "lex-error" message
    | exception P.Error m -> fail_diag "parse-error" m
    | program -> (
      let env = Cafeobj.Eval.create () in
      (* Evaluate the whole program; [red] phrases do run (they are part of
         the file's meaning) but their results are not the linter's
         concern — only the modules they build. *)
      match
        List.iter (fun (phrase, _) -> ignore (Cafeobj.Eval.eval env phrase)) program
      with
      | exception Cafeobj.Eval.Error m -> fail_diag "elaboration-error" m
      | exception Kernel.Rewrite.Limit_exceeded _ ->
        fail_diag "step-limit" "a red command exceeded its step/deadline limit"
      | () ->
        let names =
          List.filter_map
            (fun (phrase, _) ->
              match phrase with P.TModule (n, _) -> Some n | _ -> None)
            program
        in
        let specs =
          List.filter_map (fun n -> Cafeobj.Eval.find_module env n) names
        in
        { l_source = path; l_specs = specs; l_program = Some program; l_diags = [] }))

let load = function
  | File path -> load_file path
  | Generated { label; spec } ->
    { l_source = label; l_specs = [ spec ]; l_program = None; l_diags = [] }

(* ------------------------------------------------------------------ *)

let run ?pool ?(opts = default_options) sources =
  validate_options opts;
  (* Elaboration interns sorts and operators in shared tables, so sources
     load sequentially; the parallelism is inside the per-module checks
     (critical-pair joining). *)
  let loadeds = List.map load sources in
  let results =
    List.concat_map
      (fun l ->
        let per_spec =
          List.map
            (fun spec -> check_spec ?pool ~opts ~source:l.l_source spec)
            l.l_specs
        in
        let coverage =
          match l.l_program with
          | Some program when enabled opts "coverage" ->
            (Coverage.check program).Coverage.diagnostics
          | _ -> []
        in
        [
          ( List.map (fun (s, _, _) -> s) per_spec,
            l.l_diags
            @ List.concat_map (fun (_, d, _) -> d) per_spec
            @ coverage,
            List.filter_map (fun (_, _, g) -> g) per_spec );
        ])
      loadeds
  in
  let modules = List.concat_map (fun (s, _, _) -> s) results in
  let graphs = List.concat_map (fun (_, _, g) -> g) results in
  (* [--allow SPEC:code] findings stay visible but no longer gate *)
  let allow (d : Diagnostic.t) =
    if
      d.Diagnostic.severity <> Diagnostic.Info
      && List.mem (d.Diagnostic.spec ^ ":" ^ d.Diagnostic.code) opts.allow
    then
      { d with Diagnostic.severity = Diagnostic.Info;
        message = d.Diagnostic.message ^ " [allowed]" }
    else d
  in
  let diagnostics =
    List.stable_sort Diagnostic.compare
      (List.map allow (List.concat_map (fun (_, d, _) -> d) results))
  in
  {
    diagnostics;
    modules;
    graphs;
    errors = Diagnostic.count Diagnostic.Error diagnostics;
    warnings = Diagnostic.count Diagnostic.Warning diagnostics;
    infos = Diagnostic.count Diagnostic.Info diagnostics;
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pp_report ppf r =
  List.iter (fun d -> Format.fprintf ppf "%a@." Diagnostic.pp d) r.diagnostics;
  List.iter
    (fun m ->
      let flag label = function
        | Some true -> label
        | Some false -> "NOT " ^ label
        | None -> label ^ " unchecked"
      in
      Format.fprintf ppf "%s (%s): %d rules, %s, %s%s%s%s@." m.m_name m.m_source
        m.m_rules
        (flag "terminating" m.m_terminating)
        (match m.m_pairs with
        | Some n -> Printf.sprintf "%d critical pairs " n
        | None -> "")
        (flag "joinable" m.m_joinable
        ^
        match m.m_semantic_joins with
        | Some n when n > 0 -> Printf.sprintf " (%d semantic)" n
        | _ -> "")
        (match m.m_secrecy with
        | Some v -> Printf.sprintf ", secrecy %s" v
        | None -> "")
        (match m.m_independent with
        | Some (ind, total) ->
          Printf.sprintf ", %d/%d independent action pairs" ind total
        | None -> ""))
    r.modules;
  Format.fprintf ppf "%d errors, %d warnings, %d infos@." r.errors r.warnings
    r.infos

let report_to_json r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"summary\": {\"errors\": %d, \"warnings\": %d, \"infos\": %d},\n"
       r.errors r.warnings r.infos);
  Buffer.add_string buf "  \"modules\": [\n";
  let opt_bool = function
    | Some true -> "true"
    | Some false -> "false"
    | None -> "null"
  in
  let opt_int = function Some n -> string_of_int n | None -> "null" in
  List.iteri
    (fun i m ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": \"%s\", \"source\": \"%s\", \"rules\": %d, \
            \"terminating\": %s, \"critical_pairs\": %s, \"joinable\": %s, \
            \"semantic_joins\": %s, \"secrecy\": %s, \"transitions\": %s, \
            \"independent_pairs\": %s, \"action_pairs\": %s}%s\n"
           (Diagnostic.json_escape m.m_name)
           (Diagnostic.json_escape m.m_source)
           m.m_rules
           (opt_bool m.m_terminating)
           (opt_int m.m_pairs) (opt_bool m.m_joinable)
           (opt_int m.m_semantic_joins)
           (match m.m_secrecy with
           | Some v -> Printf.sprintf "\"%s\"" (Diagnostic.json_escape v)
           | None -> "null")
           (opt_int m.m_transitions)
           (opt_int (Option.map fst m.m_independent))
           (opt_int (Option.map snd m.m_independent))
           (if i = List.length r.modules - 1 then "" else ",")))
    r.modules;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"diagnostics\": [\n";
  List.iteri
    (fun i d ->
      Buffer.add_string buf ("    " ^ Diagnostic.to_json d);
      Buffer.add_string buf (if i = List.length r.diagnostics - 1 then "\n" else ",\n"))
    r.diagnostics;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf
