(** Static independence analysis over OTS-style specs.

    Two transitions [a] and [b] of an observational transition system are
    {e independent} when, from any state where both are enabled, firing
    them in either order reaches behaviourally equal states and neither
    order disables the other — the classical commutation condition behind
    ample-set partial-order reduction.  In the equational setting this is
    a {e static} property of the transition rules, provable without
    touching the state graph:

    - every critical-pair overlap between the two actions' rewrite rules
      joins to the same normal form ({!Kernel.Completion} overlaps joined
      by the {!Confluence} machinery);
    - for every observer one of them writes, the composed post-states
      [o(b(a(S)), zs)] and [o(a(b(S)), zs)] join under the co-enabledness
      hypotheses — directly, or through {e every} boolean view of the
      observer's result sort (hidden-algebra behavioural equivalence:
      collection-valued observers are compared through their membership
      predicates, exactly how the executable checker's states store them);
    - each action's enabling guard still holds after the other fires
      (no-disable, checked in the boolean ring).

    The analysis emits a machine-checkable certificate ({!certificate})
    replayed by {!check} in the [Certify] style: every claimed commutation
    is re-derived from the spec and re-executed as two concrete rewrite
    sequences that must land on identical (or boolean-ring identical)
    normal forms.  Forged or tampered claims are rejected with a
    breadcrumb path into the certificate. *)

open Kernel

type target =
  | Obs of string  (** commutation of one observer over the two orders *)
  | Enabled of string  (** the named action stays enabled after the other *)

type claim = {
  cl_target : target;
  cl_via : string option;  (** collector predicate used as the view, if any *)
  cl_left : Term.t;
  cl_right : Term.t;
  cl_status : Confluence.join_status;
}

type verdict = Independent | Dependent of string

type pair = {
  p_a : string;
  p_b : string;
  p_overlaps : int;  (** critical-pair overlaps between the two rule sets *)
  p_hyps : Term.t list;  (** co-enabledness hypotheses *)
  p_claims : claim list;
  p_verdict : verdict;
}

type result = {
  r_spec : string;
  r_actions : string list;  (** sorted *)
  r_pairs : pair list;
  r_independent : int;
  r_total : int;
  r_diagnostics : Diagnostic.t list;
}

(** [analyze ?pool ?fuel ?budget ?focus spec] examines every unordered
    action pair (including self-pairs, needed to chain an action with
    itself), or — with [focus] — only pairs touching a focused action.
    [None] when the spec has no recognizable transition rules.  [fuel]
    caps Shannon splits per join, [budget] caps rewrite steps per
    normalization; with [pool] the pairs are analyzed in parallel. *)
val analyze :
  ?pool:Sched.Pool.t ->
  ?fuel:int ->
  ?budget:int ->
  ?focus:string list ->
  Cafeobj.Spec.t ->
  result option

(** The proved-independent pairs, as (action, action) names. *)
val independent_pairs : result -> (string * string) list

(** [is_independent r a b] — symmetric lookup. *)
val is_independent : result -> string -> string -> bool

(** [certified_ample r candidates]: the candidates proved independent of
    {e every} action of the spec (themselves included) — the admission
    condition for using them as an ample/flooding set in the model
    checker. *)
val certified_ample : result -> string list -> string list

(** S-expression certificate over the independent pairs: hypotheses and
    the left/right term of every commutation and stability claim. *)
val certificate : result -> Certify.Sexp.t

(** [check spec cert] replays the certificate against the spec.
    [Ok (pairs, claims)] counts what was re-verified; [Error breadcrumb]
    pinpoints the first rejected entry, e.g.
    [pairs/pair[start-l,respond-l]/claim[obs:nnw-l/via:nmsg-in]/term-mismatch]. *)
val check :
  ?fuel:int -> ?budget:int -> Cafeobj.Spec.t -> Certify.Sexp.t ->
  (int * int, string) Stdlib.result

(** The {!Flow} dependency graph with the proved independencies overlaid
    as undirected dashed edges — [lint --dot]. *)
val dot : Flow.result -> result -> string
