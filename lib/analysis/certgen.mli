(** Certificate generation: the bridge from the engine to {!Certify}.

    A builder interns engine operators, terms, rules, rule-set chains and
    derivations into the certificate AST, preserving DAG sharing so that a
    sub-derivation reused by a thousand obligations serializes once.  This
    module sits on the {e untrusted} side of the de Bruijn boundary: a bug
    here yields a certificate the independent checker rejects, never one it
    wrongly accepts. *)

open Kernel

type t

val create : unit -> t

(** [add_obligation b ob] adds one traced [red] (named [r0], [r1], … in
    insertion order), scoped to the rule-set chain of the system that ran
    it. *)
val add_obligation : t -> Rewrite.obligation -> unit

val add_obligations : t -> Rewrite.obligation list -> unit

(** [add_lpo b ~precedence rules] records the termination certificate:
    [precedence] (later = greater, from
    {!Kernel.Order.search_precedence}) must orient every rule in
    [rules]. *)
val add_lpo : t -> precedence:Signature.op list -> Rewrite.rule list -> unit

(** [add_joins b ~rules certs] records one join certificate per critical
    pair, scoped to the flat [rules] set the confluence checker reduced
    under. *)
val add_joins :
  t -> rules:Rewrite.rule list -> (Completion.overlap * Confluence.jcert) list -> unit

(** [cert b] assembles the certificate (insertion order preserved). *)
val cert : t -> Certify.Cert.t

(** {1 Chunked checking} *)

type check_result = {
  errors : Certify.Check.error list;
  obligations : int;  (** reds + joins *)
  steps_replayed : int;  (** rule applications successfully replayed *)
}

(** [check ?pool c] replays the whole certificate, chunking obligations
    across [pool] when given; each chunk gets a private checker, so results
    are deterministic and race-free. *)
val check : ?pool:Sched.Pool.t -> Certify.Cert.t -> check_result
