open Kernel

type result = {
  certified : bool;
  search : Order.search_result;
  diagnostics : Diagnostic.t list;
}

let check ?(hint = []) spec =
  let name = Cafeobj.Spec.name spec in
  let rules = Cafeobj.Spec.all_rules spec in
  let ops = Cafeobj.Spec.all_ops spec in
  let search = Order.search_precedence ~hint ~ops rules in
  let diagnostics =
    List.map
      (fun (r : Rewrite.rule) ->
        let pos = Cafeobj.Spec.pos_of spec ("eq:" ^ r.Rewrite.label) in
        Diagnostic.make ?pos ~severity:Diagnostic.Error ~checker:"termination"
          ~code:"unoriented-rule" ~spec:name
          (Format.asprintf
             "no LPO precedence orients rule %s (%a); the rewrite system may loop"
             r.Rewrite.label Rewrite.pp_rule r))
      search.Order.unoriented
  in
  { certified = diagnostics = []; search; diagnostics }
