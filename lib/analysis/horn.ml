open Kernel

type clause = {
  c_label : string;
  c_head : string * Term.t;
  c_premises : (string * Term.t) list;
  c_constraints : (Term.t * Term.t) list;
  c_carrier : Term.t option;
}

type fact = {
  f_pred : string;
  f_arg : Term.t;
  f_clause : clause;
  f_parents : (fact * Term.t) list;
  f_carrier : Term.t option;
  f_cut : bool;
  f_id : int;
  mutable f_alive : bool;
}

type stats = {
  rounds : int;
  resolutions : int;
  subsumed : int;
  facts_total : int;
}

type outcome = { saturated : bool; facts : fact list; stats : stats }

(* ------------------------------------------------------------------ *)
(* Term helpers *)

let map_vars f t =
  let rec go t =
    match Term.view t with
    | Term.Var v -> f v
    | Term.App (o, args) -> Term.app_unchecked o (List.map go args)
  in
  go t

let canonicalize ts =
  let tbl = Hashtbl.create 16 in
  let n = ref 0 in
  let f (v : Term.var) =
    let key = (v.Term.v_name, v.Term.v_sort.Sort.name) in
    match Hashtbl.find_opt tbl key with
    | Some t -> t
    | None ->
      incr n;
      let t = Term.var (Printf.sprintf "%%%d" !n) v.Term.v_sort in
      Hashtbl.add tbl key t;
      t
  in
  List.map (map_vars f) ts

let compose s1 s2 =
  let b1 =
    List.map (fun (v, t) -> (v, Subst.apply s2 t)) (Subst.bindings s1)
  in
  let b2 =
    List.filter (fun (v, _) -> not (List.mem_assoc v b1)) (Subst.bindings s2)
  in
  Subst.of_list (b1 @ b2)

let rec ctor_rigid t =
  match Term.view t with
  | Term.Var _ -> true
  | Term.App (o, args) ->
    (Signature.is_ctor o
    || Signature.op_equal o Signature.Builtin.tt
    || Signature.op_equal o Signature.Builtin.ff)
    && List.for_all ctor_rigid args

let subsumes ~pred general ~pred2 specific =
  String.equal pred pred2 && Matching.match_ general specific <> None

(* ------------------------------------------------------------------ *)
(* Saturation *)

type state = {
  cfg_depth : int;
  cfg_max_facts : int;
  cfg_expansion : int;
  normalize : Term.t -> Term.t;
  constructors : Sort.t -> Signature.op list;
  (* fact database: per-predicate, insertion-ordered *)
  index : (string, fact list ref) Hashtbl.t;
  (* clauses indexed by premise predicate: (clause, premise position) *)
  by_premise : (string, (clause * int) list) Hashtbl.t;
  queue : fact Queue.t;
  mutable fresh : int;
  mutable next_id : int;
  mutable n_rounds : int;
  mutable n_resolutions : int;
  mutable n_subsumed : int;
  mutable n_alive : int;
  mutable exhausted : bool;
}

let fresh_var st prefix sort =
  st.fresh <- st.fresh + 1;
  Term.var (Printf.sprintf "%%%s%d" prefix st.fresh) sort

(* A variable sitting directly under a non-constructor operator blocks
   normalization; instantiating it by each constructor of its sort can
   unstick the projection.  Innermost blocked variable first. *)
let rec blocking_var t =
  match Term.view t with
  | Term.Var _ -> None
  | Term.App (o, args) -> (
    match List.find_map blocking_var args with
    | Some _ as r -> r
    | None ->
      if Signature.is_ctor o || Signature.Builtin.is_builtin o then None
      else
        List.find_map
          (fun a -> match Term.view a with Term.Var v -> Some v | _ -> None)
          args)

(* Discharge one equality under [theta]: normalize both sides, unify;
   on failure expand a blocking variable by constructors (bounded by
   [fuel]) and retry.  Returns every solved branch; an undecidable
   constraint yields [theta] unchanged (dropped, over-approximating),
   a rigid-vs-rigid clash yields no branch (definitive). *)
let rec solve_eq st fuel theta (a, b) =
  let na = st.normalize (Subst.apply theta a) in
  let nb = st.normalize (Subst.apply theta b) in
  if Term.equal na nb then [ theta ]
  else
    match Matching.unify na nb with
    | Some s -> [ compose theta s ]
    | None ->
      if ctor_rigid na && ctor_rigid nb then []
      else if fuel <= 0 then [ theta ]
      else (
        match
          (match blocking_var na with None -> blocking_var nb | r -> r)
        with
        | None -> [ theta ]
        | Some v -> (
          match st.constructors v.Term.v_sort with
          | [] -> [ theta ]
          | ctors ->
            List.concat_map
              (fun (c : Signature.op) ->
                let args =
                  List.map (fresh_var st "e") c.Signature.arity
                in
                match
                  Subst.of_list [ (v, Term.app_unchecked c args) ]
                with
                | s -> solve_eq st (fuel - 1) (compose theta s) (a, b)
                | exception Invalid_argument _ -> [])
              ctors))

let solve_constraints st theta cs =
  List.fold_left
    (fun thetas c ->
      List.concat_map (fun th -> solve_eq st st.cfg_expansion th c) thetas)
    [ theta ] cs

(* Depth-k generalization: replace every subterm that would sit deeper
   than [cfg_depth] by a fresh variable of its sort. *)
let cut st t =
  let did = ref false in
  let rec go k t =
    if Term.depth t <= k then t
    else if k <= 1 then begin
      did := true;
      fresh_var st "c" (Term.sort t)
    end
    else Term.map_children (go (k - 1)) t
  in
  let t' = go st.cfg_depth t in
  (t', !did)

let facts_ref st pred =
  match Hashtbl.find_opt st.index pred with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add st.index pred r;
    r

let rename_apart st t =
  st.fresh <- st.fresh + 1;
  let suffix = Printf.sprintf "~%d" st.fresh in
  map_vars
    (fun v -> Term.var (v.Term.v_name ^ suffix) v.Term.v_sort)
    t

let add_fact st clause theta parents carrier =
  let pred, head_pat = clause.c_head in
  let head = st.normalize (Subst.apply theta head_pat) in
  let head, was_cut = cut st head in
  let parent_insts =
    List.map (fun (g, pat) -> (g, Subst.apply theta pat)) parents
  in
  let carrier_inst = Option.map (Subst.apply theta) carrier in
  (* canonical renaming across the whole tuple keeps head and premise
     instances sharing variables, and makes alpha-equal facts equal *)
  let tuple =
    (head :: List.map snd parent_insts)
    @ match carrier_inst with Some c -> [ c ] | None -> []
  in
  let tuple = canonicalize tuple in
  let head = List.hd tuple in
  let rest = List.tl tuple in
  let carrier_inst, parent_pats =
    match carrier_inst with
    | Some _ ->
      let rec split = function
        | [ c ] -> ([], Some c)
        | x :: tl ->
          let ps, c = split tl in
          (x :: ps, c)
        | [] -> ([], None)
      in
      let ps, c = split rest in
      (c, ps)
    | None -> (None, rest)
  in
  let parents =
    List.map2 (fun (g, _) pat -> (g, pat)) parent_insts parent_pats
  in
  let db = facts_ref st pred in
  if
    List.exists
      (fun g -> g.f_alive && Matching.match_ g.f_arg head <> None)
      !db
  then st.n_subsumed <- st.n_subsumed + 1
  else begin
    (* back-subsumption: strictly less general facts die *)
    List.iter
      (fun g ->
        if g.f_alive && Matching.match_ head g.f_arg <> None then begin
          g.f_alive <- false;
          st.n_alive <- st.n_alive - 1
        end)
      !db;
    st.next_id <- st.next_id + 1;
    let f =
      {
        f_pred = pred;
        f_arg = head;
        f_clause = clause;
        f_parents = parents;
        f_carrier = carrier_inst;
        f_cut = was_cut || List.exists (fun (g, _) -> g.f_cut) parents;
        f_id = st.next_id;
        f_alive = true;
      }
    in
    db := !db @ [ f ];
    st.n_alive <- st.n_alive + 1;
    if st.n_alive > st.cfg_max_facts then st.exhausted <- true;
    Queue.add f st.queue
  end

(* Fire [clause] with premise [pin] bound to [f] (when given); remaining
   premises join against the whole database. *)
let fire st clause pin f =
  let rec go theta parents i = function
    | [] ->
      List.iter
        (fun th ->
          st.n_resolutions <- st.n_resolutions + 1;
          add_fact st clause th (List.rev parents) clause.c_carrier)
        (solve_constraints st theta clause.c_constraints)
    | (pred, pat) :: rest ->
      let candidates =
        match f with
        | Some f when i = pin -> [ f ]
        | _ -> List.filter (fun g -> g.f_alive) !(facts_ref st pred)
      in
      List.iter
        (fun g ->
          if not st.exhausted then begin
            let garg = rename_apart st g.f_arg in
            match Matching.unify (Subst.apply theta pat) garg with
            | None -> ()
            | Some s -> go (compose theta s) ((g, pat) :: parents) (i + 1) rest
          end)
        candidates
  in
  go Subst.empty [] 0 clause.c_premises

let saturate ?(depth = 16) ?(max_facts = 20_000) ?(expansion = 4) ~normalize
    ~constructors clauses =
  let st =
    {
      cfg_depth = depth;
      cfg_max_facts = max_facts;
      cfg_expansion = expansion;
      normalize;
      constructors;
      index = Hashtbl.create 16;
      by_premise = Hashtbl.create 16;
      queue = Queue.create ();
      fresh = 0;
      next_id = 0;
      n_rounds = 0;
      n_resolutions = 0;
      n_subsumed = 0;
      n_alive = 0;
      exhausted = false;
    }
  in
  List.iter
    (fun c ->
      List.iteri
        (fun i (pred, _) ->
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt st.by_premise pred)
          in
          Hashtbl.replace st.by_premise pred (prev @ [ (c, i) ]))
        c.c_premises)
    clauses;
  (* seed: premise-less clauses fire once *)
  List.iter
    (fun c ->
      if c.c_premises = [] && not st.exhausted then fire st c (-1) None)
    clauses;
  while (not (Queue.is_empty st.queue)) && not st.exhausted do
    let f = Queue.pop st.queue in
    st.n_rounds <- st.n_rounds + 1;
    if f.f_alive then
      List.iter
        (fun (c, i) -> if not st.exhausted then fire st c i (Some f))
        (Option.value ~default:[] (Hashtbl.find_opt st.by_premise f.f_pred))
  done;
  let facts =
    Hashtbl.fold (fun _ r acc -> List.filter (fun f -> f.f_alive) !r @ acc)
      st.index []
    |> List.sort (fun a b -> Int.compare a.f_id b.f_id)
  in
  {
    saturated = not st.exhausted;
    facts;
    stats =
      {
        rounds = st.n_rounds;
        resolutions = st.n_resolutions;
        subsumed = st.n_subsumed;
        facts_total = st.n_alive;
      };
  }

let facts_of outcome pred =
  List.filter (fun f -> String.equal f.f_pred pred) outcome.facts
