open Kernel

type result = {
  checked : int;
  complete : int;
  diagnostics : Diagnostic.t list;
}

let max_patterns = 4096

(* Constructors available for case-splitting an argument of [sort]:
   declared [ctor] operators; [true]/[false] for Bool; and for sorts with
   no constructors at all (the hidden state sort of an OTS), the
   generators — every visible operator producing the sort.  The last case
   is exactly the paper's induction structure: an observer is completely
   defined when it reduces on [init] and on every action. *)
let splitters ~ops sort =
  if Sort.equal sort Sort.bool then [ Signature.Builtin.tt; Signature.Builtin.ff ]
  else
    let ctors =
      List.filter
        (fun (o : Signature.op) ->
          Signature.is_ctor o && Sort.equal o.Signature.sort sort)
        ops
    in
    if ctors <> [] then ctors
    else
      List.filter
        (fun (o : Signature.op) ->
          Sort.equal o.Signature.sort sort && not (Signature.Builtin.is_builtin o))
        ops

let head_is (f : Signature.op) t =
  match Term.view t with
  | Term.App (o, args) ->
    Signature.op_equal o f && List.length args = List.length f.Signature.arity
  | Term.Var _ -> false

(* First position (pre-order walk of pattern and rule lhs in lockstep)
   where the pattern has a variable and the rule's lhs an application:
   the variable to split to make progress towards the rule. *)
let rec split_var pat lhs =
  match Term.view pat, Term.view lhs with
  | Term.Var v, Term.App _ -> Some v
  | Term.App (_, ps), Term.App (_, ls) when List.length ps = List.length ls ->
    List.find_map (fun (p, l) -> split_var p l) (List.combine ps ls)
  | _ -> None

type verdict =
  | Complete
  | Missing of Term.t list
  | Inconclusive of string

let check_op ~ops ~rules (f : Signature.op) =
  let f_rules =
    List.filter (fun (r : Rewrite.rule) -> head_is f r.Rewrite.lhs) rules
  in
  if f_rules = [] then None
  else begin
    let fresh =
      let c = ref 0 in
      fun sort ->
        incr c;
        Term.var (Printf.sprintf "%%sc%d" !c) sort
    in
    let top = Term.app f (List.map fresh f.Signature.arity) in
    let missing = ref [] in
    let verdict = ref None in
    let expanded = ref 0 in
    let rec walk pat =
      if !verdict = None then begin
        incr expanded;
        if !expanded > max_patterns then verdict := Some (Inconclusive "pattern budget exceeded")
        else
          let covered =
            List.exists
              (fun (r : Rewrite.rule) -> Matching.match_ r.Rewrite.lhs pat <> None)
              f_rules
          in
          if not covered then begin
            let unifying =
              List.filter
                (fun (r : Rewrite.rule) ->
                  Matching.unify r.Rewrite.lhs pat <> None)
                f_rules
            in
            if unifying = [] then missing := pat :: !missing
            else
              match
                List.find_map
                  (fun (r : Rewrite.rule) -> split_var pat r.Rewrite.lhs)
                  unifying
              with
              | None -> missing := pat :: !missing
              | Some v -> (
                match splitters ~ops v.Term.v_sort with
                | [] ->
                  verdict :=
                    Some
                      (Inconclusive
                         (Format.asprintf "sort %a has no constructors to split on"
                            Sort.pp v.Term.v_sort))
                | cs ->
                  List.iter
                    (fun (c : Signature.op) ->
                      let inst = Term.app c (List.map fresh c.Signature.arity) in
                      walk
                        (Term.replace ~old:(Term.var v.Term.v_name v.Term.v_sort)
                           ~by:inst pat))
                    cs)
          end
      end
    in
    walk top;
    match !verdict with
    | Some v -> Some (f, f_rules, v)
    | None ->
      Some (f, f_rules, if !missing = [] then Complete else Missing (List.rev !missing))
  end

let check spec =
  let name = Cafeobj.Spec.name spec in
  let ops = Cafeobj.Spec.all_ops spec in
  let rules = Cafeobj.Spec.all_rules spec in
  let candidates =
    List.filter
      (fun (o : Signature.op) ->
        (not (Signature.is_ctor o))
        && (not (Signature.Builtin.is_builtin o))
        && (not (Signature.is_ac o))
        && not (Signature.is_comm o))
      ops
  in
  let verdicts = List.filter_map (check_op ~ops ~rules) candidates in
  let diagnostics =
    List.concat_map
      (fun ((f : Signature.op), f_rules, v) ->
        let pos = Cafeobj.Spec.pos_of spec ("op:" ^ f.Signature.name) in
        match v with
        | Complete -> []
        | Inconclusive why ->
          [
            Diagnostic.make ?pos ~severity:Diagnostic.Info ~checker:"completeness"
              ~code:"inconclusive" ~spec:name
              (Printf.sprintf "completeness of %s undecided: %s" f.Signature.name why);
          ]
        | Missing pats ->
          (* A partial projection (every rhs a plain variable, e.g. the
             paper's [rand], defined only on the message kinds that carry a
             random) is idiomatic CafeOBJ: missing cases are junk terms no
             proof score ever builds.  Report those as info, genuine
             missing cases of computing ops as errors. *)
          let projection =
            List.for_all
              (fun (r : Rewrite.rule) ->
                match Term.view r.Rewrite.rhs with
                | Term.Var _ -> true
                (* if-lifting rules ride along with every selector; they do
                   not make it a computing op. *)
                | Term.App (o, _) -> Signature.Builtin.is_if o)
              f_rules
          in
          let severity = if projection then Diagnostic.Info else Diagnostic.Error in
          List.map
            (fun pat ->
              Diagnostic.make ?pos ~severity ~checker:"completeness"
                ~code:"missing-pattern" ~spec:name
                (Format.asprintf "op %s does not reduce on pattern %a"
                   f.Signature.name Term.pp pat))
            pats)
      verdicts
  in
  let complete =
    List.length (List.filter (fun (_, _, v) -> v = Complete) verdicts)
  in
  { checked = List.length verdicts; complete; diagnostics }
