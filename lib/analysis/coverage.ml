open Kernel
module P = Cafeobj.Parser
module Lexer = Cafeobj.Lexer

type group = {
  module_name : string;
  pos : int * int;
  passages : int;
  exhaustive : bool;
  residual : string option;
}

type result = {
  groups : group list;
  diagnostics : Diagnostic.t list;
}

(* Canonical syntax of a parser term, used to identify the same predicate
   across passages: each passage redeclares its fresh constants, so the
   only stable identity the checker has is the printed form. *)
let rec term_key (t : P.term) =
  match t with
  | P.TIdent s -> s
  | P.TApp (f, args) -> f ^ "(" ^ String.concat "," (List.map term_key args) ^ ")"
  | P.TTrue -> "true"
  | P.TFalse -> "false"
  | P.TNot t -> "not(" ^ term_key t ^ ")"
  | P.TBin (op, l, r) -> op ^ "(" ^ term_key l ^ "," ^ term_key r ^ ")"
  | P.TEq (l, r) ->
    (* == is symmetric: order the sides so [i == j] and [j == i] are the
       same atom. *)
    let a = term_key l and b = term_key r in
    if String.compare a b <= 0 then "==(" ^ a ^ "," ^ b ^ ")"
    else "==(" ^ b ^ "," ^ a ^ ")"
  | P.TIf (c, t, e) -> "if(" ^ term_key c ^ "," ^ term_key t ^ "," ^ term_key e ^ ")"

(* Propositional abstraction of an assumption's lhs: connectives are
   interpreted, anything else becomes an atom keyed by its syntax. *)
let atoms : (string, Term.t) Hashtbl.t = Hashtbl.create 16
let atom_sig = lazy (Signature.create ())
let atom_mutex = Mutex.create ()

let atom_of key =
  Mutex.protect atom_mutex @@ fun () ->
  match Hashtbl.find_opt atoms key with
  | Some t -> t
  | None ->
    (* The atom is named by its syntax so residuals in diagnostics read
       as the user's predicate, e.g. [lock(s)] rather than a fresh id. *)
    let op = Signature.declare (Lazy.force atom_sig) key [] Sort.bool ~attrs:[] in
    let t = Term.const op in
    Hashtbl.add atoms key t;
    t

let rec poly_of (t : P.term) =
  match t with
  | P.TTrue -> Boolring.tru
  | P.TFalse -> Boolring.fls
  | P.TNot t -> Boolring.not_ (poly_of t)
  | P.TBin ("and", l, r) -> Boolring.and_ (poly_of l) (poly_of r)
  | P.TBin ("or", l, r) -> Boolring.or_ (poly_of l) (poly_of r)
  | P.TBin ("xor", l, r) -> Boolring.xor_ (poly_of l) (poly_of r)
  | P.TBin ("implies", l, r) -> Boolring.implies_ (poly_of l) (poly_of r)
  | P.TBin ("iff", l, r) -> Boolring.iff_ (poly_of l) (poly_of r)
  | t -> Boolring.atom (atom_of (term_key t))

(* The boolean literals a passage assumes: [eq c = true .] contributes the
   positive literal [c], [eq c = false .] the negative one.  Assumption
   equations over data (e.g. [eq n = c1 .]) are not part of a boolean case
   split and are ignored. *)
let passage_literals decls =
  List.filter_map
    (fun (ld : P.ldecl) ->
      match ld.P.decl with
      | P.DEq (lhs, P.TTrue) -> Some (poly_of lhs)
      | P.DEq (lhs, P.TFalse) -> Some (Boolring.not_ (poly_of lhs))
      | _ -> None)
    decls

type passage = {
  p_module : string;
  p_pos : Lexer.pos;
  p_decls : P.ldecl list;
}

(* Extract passages ([open M … close]) and the maximal runs of consecutive
   passages over the same module; anything else between two passages
   breaks the run. *)
let passages_of_program (program : P.program) =
  let rec go acc cur = function
    | [] -> List.rev (if cur = [] then acc else cur :: acc)
    | (P.TOpen name, pos) :: rest ->
      let rec collect decls = function
        | (P.TClose, _) :: rest ->
          ( { p_module = name; p_pos = pos; p_decls = List.rev decls }, rest )
        | (P.TDecl d, _) :: rest -> collect (d :: decls) rest
        | (_, _) :: rest -> collect decls rest
        | [] ->
          ( { p_module = name; p_pos = pos; p_decls = List.rev decls }, [] )
      in
      let p, rest = collect [] rest in
      go acc (cur @ [ p ]) rest
    | _ :: rest ->
      let acc = if cur = [] then acc else cur :: acc in
      go acc [] rest
  in
  let runs = go [] [] program in
  (* split each run into maximal same-module groups *)
  List.concat_map
    (fun run ->
      let rec split groups cur = function
        | [] -> List.rev (if cur = [] then groups else List.rev cur :: groups)
        | p :: rest -> (
          match cur with
          | c :: _ when String.equal c.p_module p.p_module ->
            split groups (p :: cur) rest
          | [] -> split groups [ p ] rest
          | _ -> split (List.rev cur :: groups) [ p ] rest)
      in
      split [] [] run)
    runs

let check (program : P.program) =
  let groups =
    List.filter_map
      (fun ps ->
        match ps with
        | [] | [ _ ] -> None  (* a single passage is not a case analysis *)
        | first :: _ ->
          let preds =
            List.map
              (fun p ->
                List.fold_left Boolring.and_ Boolring.tru (passage_literals p.p_decls))
              ps
          in
          (* Case analyses split on assumptions; if no passage assumes a
             boolean literal this is just a sequence of lemmas. *)
          if List.for_all Boolring.is_true preds then None
          else
            let sum = List.fold_left Boolring.or_ Boolring.fls preds in
            let exhaustive = Boolring.is_true sum in
            let residual =
              if exhaustive then None
              else Some (Format.asprintf "%a" Boolring.pp (Boolring.not_ sum))
            in
            Some
              {
                module_name = first.p_module;
                pos = first.p_pos.Lexer.line, first.p_pos.Lexer.col;
                passages = List.length ps;
                exhaustive;
                residual;
              })
      (passages_of_program program)
  in
  let diagnostics =
    List.filter_map
      (fun g ->
        if g.exhaustive then None
        else
          Some
            (Diagnostic.make ~pos:g.pos ~severity:Diagnostic.Error
               ~checker:"coverage" ~code:"non-exhaustive-split" ~spec:g.module_name
               (Printf.sprintf
                  "case analysis on %s (%d passages) is not exhaustive; uncovered: %s"
                  g.module_name g.passages
                  (Option.value ~default:"?" g.residual))))
      groups
  in
  { groups; diagnostics }
