(** Static secrecy analysis: a Horn-clause abstraction of the Dolev-Yao
    intruder, saturated to a fixpoint ({!Horn}).

    The analyzer recovers the OTS structure of a spec from its rewrite
    rules — observers, transitions, the network observer (default
    ["nw"]), membership predicates and the intruder's gleaning
    predicates ([in-cpms], [in-csig], …) — and translates it into Horn
    clauses over three predicate families:

    - [net(m)]: a message matching pattern [m] can appear on the network;
    - [glean:<p>(x)]: the intruder can glean [x] via collector [p];
    - [stored:<o>(v)]: observer [o] can store value [v] (session stores).

    Transition guards compile to premises (message/gleaning membership),
    unifications (equality and shape tests) and residual constraints;
    freshness and other negative guards are dropped, so the abstraction
    over-approximates the reachable knowledge: saturation without
    deriving the secret is an {e unbounded} proof of secrecy, while a
    derivation is a leak {e candidate} whose witness can be replayed
    against the concrete rewrite system ({!replay}) and certified by the
    independent {!Certify} kernel. *)

open Kernel

type query = {
  q_name : string;
  q_pred : string;  (** e.g. ["glean:in-cpms"] *)
  q_pattern : Term.t;
  q_honest : Term.var list;
      (** variables of [q_pattern] that must be bindable to a
          non-intruder principal for a derived fact to count as a leak *)
}

type options = {
  network : string;  (** network observer name (default ["nw"]) *)
  depth : int;  (** abstraction cut on derived facts *)
  max_facts : int;  (** saturation budget; exceeding it is inconclusive *)
  expansion : int;  (** constructor-expansion fuel per constraint *)
  queries : query list;  (** empty: derive defaults from the signature *)
}

val default_options : options

type leak = {
  l_query : query;
  l_fact : Horn.fact;  (** the derived fact covering the secret *)
  l_secret : Term.t;  (** the query pattern under the leak unifier *)
}

type verdict =
  | Secure  (** saturated without deriving any queried secret *)
  | Leak of leak
  | Inconclusive  (** fact budget exhausted before the fixpoint *)
  | Not_applicable of string  (** not an OTS/protocol spec: reason *)

type result = {
  r_verdict : verdict;
  r_clauses : int;
  r_facts : int;
  r_rounds : int;
  r_resolutions : int;
  r_queries : query list;
}

(** [analyze ?opts spec] translates and saturates.  Deterministic. *)
val analyze : ?opts:options -> Cafeobj.Spec.t -> result

(** [verdict_name r] — ["secure"], ["leaks"], ["inconclusive"] or
    ["n/a"], the spelling used by reports and golden CI verdicts. *)
val verdict_name : result -> string

(** [clauses ?network spec] is the Horn translation alone, without
    saturation ([Error reason] when the spec is not an OTS).  The clause
    list feeds {!Horn.saturate} directly — exposed so tests can exercise
    saturation under clause-order permutations. *)
val clauses :
  ?network:string -> Cafeobj.Spec.t -> (Horn.clause list, string) Stdlib.result

(** {1 Lint checker} *)

type check = { result : result; diagnostics : Diagnostic.t list }

(** [check spec] is {!analyze} rendered as lint diagnostics: a leak is an
    error ([secret-leaks]), an exhausted budget a warning
    ([saturation-budget]); non-protocol specs yield no diagnostics. *)
val check : Cafeobj.Spec.t -> check

(** {1 Witnesses} *)

(** The derivation tree of a leak as a replayable s-expression:
    [(secrecy-witness (spec ..) (query ..) (secret ..) (step ...))]. *)
val witness_sexp : spec:string -> leak -> Certify.Sexp.t

type replay = {
  rp_ok : bool;  (** every step replayed in the concrete rewriter *)
  rp_checks : int;  (** concrete reductions performed *)
  rp_cert_ok : bool;  (** the certify kernel accepted the trace *)
  rp_obligations : int;
  rp_error : string option;
}

(** [replay spec leak] grounds the witness (fresh constants stand in for
    unconstrained variables and honest principals) and re-runs every
    derivation step as a concrete reduction: gleanings reduce to [true]
    over the materialized network, transition emissions re-fire via
    [reduce_in] under assumptions pinning the pre-state's observers.
    All reductions are traced and checked by the {!Certify} kernel. *)
val replay : Cafeobj.Spec.t -> leak -> replay
