(* Bridge from the engine to the certificate world: converts traced
   derivations, the LPO search result and confluence join certificates into
   a [Certify.Cert.t].  This module is on the UNTRUSTED side of the trust
   boundary — a bug here produces a certificate the independent checker
   rejects, never one it wrongly accepts. *)

open Kernel
module C = Certify.Cert

module Phys = Hashtbl.Make (struct
  type t = Obj.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type t = {
  ops : C.op Phys.t;  (* engine op -> cert op *)
  terms : C.term Term.Tbl.t;  (* structural: equal engine terms share one cert term *)
  rules : C.rule Phys.t;  (* engine rule -> cert rule *)
  rsets : (int, C.rset) Hashtbl.t;  (* sys uid -> cert rule set *)
  derivs : C.deriv Phys.t;  (* engine deriv node -> cert deriv (keeps DAG sharing) *)
  mutable reds : C.red list;  (* reversed *)
  mutable next_red : int;
  mutable lpo : C.lpo option;
  mutable joins : C.join list;  (* reversed *)
}

let create () =
  {
    ops = Phys.create 256;
    terms = Term.Tbl.create 4096;
    rules = Phys.create 256;
    rsets = Hashtbl.create 16;
    derivs = Phys.create 4096;
    reds = [];
    next_red = 0;
    lpo = None;
    joins = [];
  }

let flags_of (o : Signature.op) =
  let module B = Signature.Builtin in
  List.concat
    [
      (if Signature.is_ac o then [ C.Ac ] else []);
      (if Signature.is_comm o then [ C.Comm ] else []);
      (if Signature.op_equal o B.tt then [ C.Tt ] else []);
      (if Signature.op_equal o B.ff then [ C.Ff ] else []);
      (if Signature.op_equal o B.not_ then [ C.Not ] else []);
      (if Signature.op_equal o B.and_ then [ C.And ] else []);
      (if Signature.op_equal o B.or_ then [ C.Or ] else []);
      (if Signature.op_equal o B.xor then [ C.Xor ] else []);
      (if Signature.op_equal o B.implies then [ C.Implies ] else []);
      (if Signature.op_equal o B.iff then [ C.Iff ] else []);
      (if B.is_if o then [ C.If ] else []);
      (if B.is_eq o then [ C.Eq ] else []);
    ]

let op b (o : Signature.op) =
  match Phys.find_opt b.ops (Obj.repr o) with
  | Some co -> co
  | None ->
    let co =
      {
        C.op_name = o.Signature.name;
        op_arity = List.map (fun (s : Sort.t) -> s.Sort.name) o.Signature.arity;
        op_sort = o.Signature.sort.Sort.name;
        op_flags = flags_of o;
      }
    in
    Phys.replace b.ops (Obj.repr o) co;
    co

let rec term b (t : Term.t) =
  match Term.Tbl.find_opt b.terms t with
  | Some ct -> ct
  | None ->
    let ct =
      match Term.view t with
      | Term.Var v -> C.V { v_name = v.Term.v_name; v_sort = v.Term.v_sort.Sort.name }
      | Term.App (o, args) -> C.A (op b o, List.map (term b) args)
    in
    Term.Tbl.replace b.terms t ct;
    ct

let rule b (r : Rewrite.rule) =
  match Phys.find_opt b.rules (Obj.repr r) with
  | Some cr -> cr
  | None ->
    let cr =
      {
        C.r_label = r.Rewrite.label;
        r_lhs = term b r.Rewrite.lhs;
        r_rhs = term b r.Rewrite.rhs;
        r_cond = Option.map (term b) r.Rewrite.cond;
      }
    in
    Phys.replace b.rules (Obj.repr r) cr;
    cr

let rec rset b (si : Rewrite.sys_info) =
  match Hashtbl.find_opt b.rsets si.Rewrite.si_uid with
  | Some rs -> rs
  | None ->
    let rs =
      {
        C.rs_parent = Option.map (rset b) si.Rewrite.si_parent;
        rs_rules = List.map (rule b) si.Rewrite.si_added;
      }
    in
    Hashtbl.replace b.rsets si.Rewrite.si_uid rs;
    rs

let sub_bindings b (s : Subst.t) =
  List.map
    (fun ((v : Term.var), img) -> (v.Term.v_name, v.Term.v_sort.Sort.name, term b img))
    (Subst.bindings s)

let rec deriv b (d : Rewrite.deriv) =
  match Phys.find_opt b.derivs (Obj.repr d) with
  | Some cd -> cd
  | None ->
    let node =
      match d.Rewrite.d_node with
      | Rewrite.Triv -> C.Triv
      | Rewrite.Dapp { children; perm; step } ->
        C.App
          {
            children = List.map (deriv b) children;
            perm;
            step =
              Option.map
                (fun (s : Rewrite.rstep) ->
                  {
                    C.s_rule = rule b s.Rewrite.rs_rule;
                    s_sub = sub_bindings b s.Rewrite.rs_sub;
                    s_cond = Option.map (deriv b) s.Rewrite.rs_cond;
                    s_next = deriv b s.Rewrite.rs_next;
                  })
                step;
          }
    in
    let cd =
      { C.d_in = term b d.Rewrite.d_in; d_out = term b d.Rewrite.d_out; d_node = node }
    in
    Phys.replace b.derivs (Obj.repr d) cd;
    cd

let add_obligation b (ob : Rewrite.obligation) =
  let n = b.next_red in
  b.next_red <- n + 1;
  let d = deriv b ob.Rewrite.ob_deriv in
  b.reds <-
    {
      C.red_name = Printf.sprintf "r%d" n;
      red_rset = rset b ob.Rewrite.ob_info;
      red_in = term b ob.Rewrite.ob_input;
      red_out = d.C.d_out;
      red_deriv = d;
    }
    :: b.reds

let add_obligations b obs = List.iter (add_obligation b) obs

let add_lpo b ~precedence rules =
  b.lpo <-
    Some
      { C.lpo_prec = List.map (op b) precedence; lpo_rules = List.map (rule b) rules }

let add_join b ~rs (ov : Completion.overlap) (jc : Confluence.jcert) =
  let rec conv (jc : Confluence.jcert) =
    {
      C.jc_left = deriv b jc.Confluence.jc_left;
      jc_right = deriv b jc.Confluence.jc_right;
      jc_tail =
        (match jc.Confluence.jc_tail with
        | Confluence.Tsyn -> C.Jsyn
        | Confluence.Tring -> C.Jring
        | Confluence.Tsplit (c, jt, jf) -> C.Jsplit (term b c, conv jt, conv jf));
    }
  in
  b.joins <-
    {
      C.j_label =
        Printf.sprintf "%s/%s" ov.Completion.outer.Rewrite.label
          ov.Completion.inner.Rewrite.label;
      j_rset = rs;
      j_peak = term b ov.Completion.peak;
      j_left = term b ov.Completion.left;
      j_right = term b ov.Completion.right;
      j_cert = conv jc;
    }
    :: b.joins

let add_joins b ~rules certs =
  (* Join derivations were produced by private systems over the spec's full
     rule list; their certificate scope is that flat rule set. *)
  let rs = { C.rs_parent = None; rs_rules = List.map (rule b) rules } in
  List.iter (fun (ov, jc) -> add_join b ~rs ov jc) certs

let cert b =
  { C.reds = List.rev b.reds; lpo = b.lpo; joins = List.rev b.joins }

(* ------------------------------------------------------------------ *)
(* Pool-chunked checking.  Each chunk gets its own checker (the memo
   tables are not thread-safe); the LPO obligation rides with the first
   chunk. *)

type check_result = {
  errors : Certify.Check.error list;
  obligations : int;
  steps_replayed : int;
}

let chunks_of n xs =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = n then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

type job =
  | Jlpo
  | Jred of C.red list
  | Jjoin of C.join list

let check ?pool (c : C.t) : check_result =
  let njobs = match pool with Some p -> Sched.Pool.jobs p * 4 | None -> 1 in
  let nred = List.length c.C.reds in
  let chunk = max 1 ((nred + njobs - 1) / njobs) in
  let jobs =
    (if c.C.lpo = None then [] else [ Jlpo ])
    @ List.map (fun rs -> Jred rs) (chunks_of chunk c.C.reds)
    @ match c.C.joins with [] -> [] | js -> [ Jjoin js ]
  in
  let run job =
    let ck = Certify.Check.create c in
    let errs =
      match job with
      | Jlpo -> Certify.Check.check_lpo ck
      | Jred rs -> List.filter_map (Certify.Check.check_red ck) rs
      | Jjoin js -> List.filter_map (Certify.Check.check_join ck) js
    in
    (errs, Certify.Check.steps_validated ck)
  in
  let results =
    match pool with
    | None -> List.map run jobs
    | Some p -> Sched.Pool.parallel_map p run jobs
  in
  {
    errors = List.concat_map fst results;
    obligations = nred + List.length c.C.joins;
    steps_replayed = List.fold_left (fun acc (_, s) -> acc + s) 0 results;
  }
