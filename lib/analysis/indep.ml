open Kernel
module Sexp = Certify.Sexp

(* ------------------------------------------------------------------ *)
(* Public types                                                        *)
(* ------------------------------------------------------------------ *)

type target =
  | Obs of string  (** commutation of one observer over the two orders *)
  | Enabled of string  (** the named action stays enabled after the other *)

type claim = {
  cl_target : target;
  cl_via : string option;  (** collector predicate used as the view, if any *)
  cl_left : Term.t;
  cl_right : Term.t;
  cl_status : Confluence.join_status;
}

type verdict = Independent | Dependent of string

type pair = {
  p_a : string;
  p_b : string;
  p_overlaps : int;  (** critical-pair overlaps between the two rule sets *)
  p_hyps : Term.t list;  (** co-enabledness hypotheses *)
  p_claims : claim list;
  p_verdict : verdict;
}

type result = {
  r_spec : string;
  r_actions : string list;
  r_pairs : pair list;
  r_independent : int;
  r_total : int;
  r_diagnostics : Diagnostic.t list;
}

(* ------------------------------------------------------------------ *)
(* Action extraction                                                   *)
(* ------------------------------------------------------------------ *)

(* One transition of the OTS, recovered from its observer equations.
   [act_issue] is set when the equations do not have the regular
   generated shape (non-variable parameters, inconsistent guards):
   such an action is never claimed independent of anything. *)
type action = {
  act_op : Signature.op;
  act_state : Term.var;
  act_params : Term.var list;
  act_cond : Term.t;  (** enabling guard over the state variable and params *)
  act_writes : string list;  (** observers whose value can change *)
  act_eqs : Flow.obs_eq list;
  act_issue : string option;
}

type ctx = {
  cx_spec : Cafeobj.Spec.t;
  cx_actions : action list;
  cx_observers : (Signature.op * Term.t list) list;
      (** observer op, renamed sample parameters *)
  cx_collectors : (string * (Signature.op * Sort.t) list) list;
      (** observer name -> boolean view predicates over its result sort *)
  cx_fuel : int;
  cx_budget : int;
}

let var_term (v : Term.var) = Term.var v.Term.v_name v.Term.v_sort

(* Rename every variable of [t] not in [keep] by prefixing [pfx] — used to
   rename the two actions' parameters apart before composing them. *)
let rename_vars pfx ~keep t =
  let rec go t =
    match Term.view t with
    | Term.Var v ->
      if
        List.exists
          (fun (k : Term.var) -> String.equal k.Term.v_name v.Term.v_name)
          keep
      then t
      else Term.var (pfx ^ v.Term.v_name) v.Term.v_sort
    | Term.App (o, args) -> Term.app_unchecked o (List.map go args)
  in
  go t

let subst_var (v : Term.var) ~by t =
  let rec go t =
    match Term.view t with
    | Term.Var w ->
      if String.equal w.Term.v_name v.Term.v_name && Sort.equal w.Term.v_sort v.Term.v_sort
      then by
      else t
    | Term.App (o, args) -> Term.app_unchecked o (List.map go args)
  in
  go t

let group_by_action obs_eqs =
  List.fold_left
    (fun acc (oe : Flow.obs_eq) ->
      let name = oe.Flow.oe_action.Signature.name in
      match List.assoc_opt name acc with
      | Some eqs ->
        (name, oe :: eqs) :: List.remove_assoc name acc
      | None -> (name, [ oe ]) :: acc)
    [] obs_eqs
  |> List.map (fun (n, eqs) -> (n, List.rev eqs))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let extract_action (eqs : Flow.obs_eq list) =
  let oe0 = List.hd eqs in
  let inner_args (oe : Flow.obs_eq) =
    match Term.view oe.Flow.oe_rule.Rewrite.lhs with
    | Term.App (_, inner :: _) -> (
      match Term.view inner with
      | Term.App (_, _ :: xs) -> Some xs
      | _ -> None)
    | _ -> None
  in
  let args0 = Option.value ~default:[] (inner_args oe0) in
  let issue = ref None in
  let note why = if !issue = None then issue := Some why in
  (* every equation of the action must apply it to the same parameters *)
  List.iter
    (fun oe ->
      match inner_args oe with
      | Some xs
        when (try List.for_all2 Term.equal xs args0 with Invalid_argument _ -> false)
        -> ()
      | _ -> note "inconsistent action parameters across equations")
    eqs;
  let params =
    List.filter_map
      (fun t ->
        match Term.view t with
        | Term.Var v -> Some v
        | Term.App _ -> note "non-variable action parameter"; None)
      args0
  in
  List.iter
    (fun (oe : Flow.obs_eq) ->
      if not (String.equal oe.Flow.oe_state.Term.v_name oe0.Flow.oe_state.Term.v_name)
      then note "inconsistent state variable across equations")
    eqs;
  let conds =
    List.filter_map
      (fun (oe : Flow.obs_eq) ->
        match Term.view oe.Flow.oe_rule.Rewrite.rhs with
        | Term.App (o, [ c; _; e ])
          when Signature.Builtin.is_if o && Term.equal e (Flow.frame oe) ->
          Some c
        | _ -> None)
      eqs
    |> List.sort_uniq Term.compare
  in
  let cond =
    match conds with
    | [] -> Term.tt
    | [ c ] -> c
    | _ -> note "inconsistent guards across equations"; Term.tt
  in
  let writes =
    List.filter_map
      (fun (oe : Flow.obs_eq) ->
        if Term.equal oe.Flow.oe_rule.Rewrite.rhs (Flow.frame oe) then None
        else Some oe.Flow.oe_obs.Signature.name)
      eqs
    |> List.sort_uniq String.compare
  in
  {
    act_op = oe0.Flow.oe_action;
    act_state = oe0.Flow.oe_state;
    act_params = params;
    act_cond = cond;
    act_writes = writes;
    act_eqs = eqs;
    act_issue = !issue;
  }

let context ?(fuel = 24) ?(budget = 20_000) spec =
  let obs_eqs = List.filter_map Flow.recognize_rule (Cafeobj.Spec.own_rules spec) in
  if obs_eqs = [] then None
  else begin
    let actions = List.map (fun (_, eqs) -> extract_action eqs) (group_by_action obs_eqs) in
    let observers =
      List.fold_left
        (fun acc (oe : Flow.obs_eq) ->
          if List.mem_assoc oe.Flow.oe_obs.Signature.name acc then acc
          else
            (oe.Flow.oe_obs.Signature.name,
             (oe.Flow.oe_obs, List.map (rename_vars "z!" ~keep:[]) oe.Flow.oe_params))
            :: acc)
        [] obs_eqs
      |> List.rev |> List.map snd
    in
    (* Boolean view predicates: every (visible, result-sort) -> Bool
       operator of the data signature is an observation through which a
       hidden-sorted collection value can be told apart.  Commutation is
       checked through all of them (hidden-algebra behavioural
       equivalence), which matches the executable checker exactly: its
       states store collections extensionally. *)
    let all_ops = Cafeobj.Spec.all_ops spec in
    let collectors =
      List.map
        (fun ((o : Signature.op), _) ->
          let views =
            List.filter_map
              (fun (p : Signature.op) ->
                match p.Signature.arity with
                | [ s1; s2 ]
                  when Sort.equal p.Signature.sort Sort.bool
                       && Sort.equal s2 o.Signature.sort
                       && (not s1.Sort.hidden)
                       && not (Signature.Builtin.is_builtin p) ->
                  Some (p, s1)
                | _ -> None)
              all_ops
          in
          (o.Signature.name, views))
        observers
    in
    Some
      {
        cx_spec = spec;
        cx_actions = actions;
        cx_observers = observers;
        cx_collectors = collectors;
        cx_fuel = fuel;
        cx_budget = budget;
      }
  end

(* ------------------------------------------------------------------ *)
(* Joinability under co-enabledness hypotheses                         *)
(* ------------------------------------------------------------------ *)

(* [join_under sys fuel hyps l r]: are [l] and [r] joinable whenever every
   hypothesis holds?  Both sides are wrapped in the same conditional
   tower [if h then . else x fi] over a shared fresh variable [x]: when
   some hypothesis is false both towers collapse to [x], and when all
   hold they collapse to [l] / [r] — so plain joinability of the wrapped
   terms is exactly conditional joinability.  The boolean ring decides
   boolean instances wholesale; other sorts fall back to Shannon splits
   inside {!Confluence.join_terms}. *)
let join_under sys fuel hyps l r =
  if Term.equal l r then Confluence.Syntactic
  else begin
    let else_ = Term.var "indep!else" (Term.sort l) in
    let wrap t = List.fold_left (fun acc h -> Term.ite h acc else_) t hyps in
    Confluence.join_terms sys fuel (wrap l) (wrap r)
  end

let joined = function
  | Confluence.Syntactic | Confluence.Semantic -> true
  | Confluence.Undecided | Confluence.Unjoinable _ -> false

(* ------------------------------------------------------------------ *)
(* One pair                                                            *)
(* ------------------------------------------------------------------ *)

let find_action cx name =
  List.find_opt (fun a -> String.equal a.act_op.Signature.name name) cx.cx_actions

let analyze_pair sys cx a b =
  let pname = (a.act_op.Signature.name, b.act_op.Signature.name) in
  let dependent why claims hyps overlaps =
    {
      p_a = fst pname;
      p_b = snd pname;
      p_overlaps = overlaps;
      p_hyps = hyps;
      p_claims = List.rev claims;
      p_verdict = Dependent why;
    }
  in
  match (a.act_issue, b.act_issue) with
  | Some why, _ | _, Some why -> dependent ("unanalyzable: " ^ why) [] [] 0
  | None, None ->
    let sv = a.act_state in
    let s = var_term sv in
    let rename_act pfx (act : action) t =
      let t = rename_vars pfx ~keep:[ act.act_state ] t in
      if String.equal act.act_state.Term.v_name sv.Term.v_name then t
      else subst_var act.act_state ~by:s t
    in
    let pa = List.map (fun (v : Term.var) -> Term.var ("l!" ^ v.Term.v_name) v.Term.v_sort) a.act_params in
    let pb = List.map (fun (v : Term.var) -> Term.var ("r!" ^ v.Term.v_name) v.Term.v_sort) b.act_params in
    let post_a st = Term.app_unchecked a.act_op (st :: pa) in
    let post_b st = Term.app_unchecked b.act_op (st :: pb) in
    let cond_a = rename_act "l!" a a.act_cond in
    let cond_b = rename_act "r!" b b.act_cond in
    (* Hypotheses as individual atoms, not whole conjunctions: a Shannon
       split on an atom then reaches the same atom inside the other
       order's (monotonically expanded) guard, where a split on the
       conjunction would leave it opaque. *)
    let rec flat t =
      match Term.view t with
      | Term.App (o, [ x; y ]) when Signature.op_equal o Signature.Builtin.and_ ->
        flat x @ flat y
      | _ -> if Term.equal t Term.tt then [] else [ t ]
    in
    let hyps = flat cond_a @ flat cond_b in
    (* 1. critical-pair overlaps between the two rule sets must join *)
    let rules_a = List.map (fun oe -> oe.Flow.oe_rule) a.act_eqs in
    let rules_b = List.map (fun oe -> oe.Flow.oe_rule) b.act_eqs in
    let overlaps =
      List.concat_map
        (fun ra -> List.concat_map (fun rb -> Completion.overlaps ra rb) rules_b)
        rules_a
      @
      if a.act_op == b.act_op then []
      else
        List.concat_map
          (fun rb -> List.concat_map (fun ra -> Completion.overlaps rb ra) rules_a)
          rules_b
    in
    let n_overlaps = List.length overlaps in
    let bad_overlap =
      List.find_opt
        (fun (o : Completion.overlap) ->
          not (joined (Confluence.join_terms sys cx.cx_fuel o.Completion.left o.Completion.right)))
        overlaps
    in
    (match bad_overlap with
    | Some o ->
      dependent
        (Printf.sprintf "overlap[%s/%s]" o.Completion.outer.Rewrite.label
           o.Completion.inner.Rewrite.label)
        [] hyps n_overlaps
    | None ->
      let claims = ref [] in
      let claim target via l r =
        let status = join_under sys cx.cx_fuel hyps l r in
        claims := { cl_target = target; cl_via = via; cl_left = l; cl_right = r; cl_status = status } :: !claims;
        joined status
      in
      (* 2. neither action disables the other (both enabled at S) *)
      let stable_after outer_post (inner : action) cond_inner =
        claim (Enabled inner.act_op.Signature.name) None
          (subst_var sv ~by:outer_post cond_inner)
          Term.tt
      in
      if not (stable_after (post_a s) b cond_b) then
        dependent (Printf.sprintf "enabled[%s]" b.act_op.Signature.name) !claims hyps n_overlaps
      else if not (stable_after (post_b s) a cond_a) then
        dependent (Printf.sprintf "enabled[%s]" a.act_op.Signature.name) !claims hyps n_overlaps
      else begin
        (* 3. every observer one of them writes commutes over the two
           orders — directly, or through every boolean view of its
           result sort *)
        let s_ab = post_b (post_a s) (* a fired first *) in
        let s_ba = post_a (post_b s) (* b fired first *) in
        let touched =
          List.filter
            (fun ((o : Signature.op), _) ->
              List.mem o.Signature.name a.act_writes
              || List.mem o.Signature.name b.act_writes)
            cx.cx_observers
        in
        let check_obs ((o : Signature.op), zs) =
          let l = Term.app_unchecked o (s_ab :: zs) in
          let r = Term.app_unchecked o (s_ba :: zs) in
          let direct = join_under sys cx.cx_fuel hyps l r in
          if joined direct then begin
            claims :=
              { cl_target = Obs o.Signature.name; cl_via = None; cl_left = l;
                cl_right = r; cl_status = direct }
              :: !claims;
            None
          end
          else begin
            match List.assoc o.Signature.name cx.cx_collectors with
            | [] ->
              claims :=
                { cl_target = Obs o.Signature.name; cl_via = None; cl_left = l;
                  cl_right = r; cl_status = direct }
                :: !claims;
              Some (Printf.sprintf "commute[%s]" o.Signature.name)
            | views ->
              List.find_map
                (fun ((p : Signature.op), elt_sort) ->
                  let x = Term.var "w!x" elt_sort in
                  let vl = Term.app_unchecked p [ x; l ] in
                  let vr = Term.app_unchecked p [ x; r ] in
                  if claim (Obs o.Signature.name) (Some p.Signature.name) vl vr
                  then None
                  else
                    Some
                      (Printf.sprintf "commute[%s]/via[%s]" o.Signature.name
                         p.Signature.name))
                views
          end
        in
        match List.find_map check_obs touched with
        | Some why -> dependent why !claims hyps n_overlaps
        | None ->
          {
            p_a = fst pname;
            p_b = snd pname;
            p_overlaps = n_overlaps;
            p_hyps = hyps;
            p_claims = List.rev !claims;
            p_verdict = Independent;
          }
      end)

(* ------------------------------------------------------------------ *)
(* Whole-spec analysis                                                 *)
(* ------------------------------------------------------------------ *)

let chunks size xs =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n >= size then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

let analyze ?pool ?(fuel = 24) ?(budget = 20_000) ?focus spec =
  match context ~fuel ~budget spec with
  | None -> None
  | Some cx ->
    let names = List.map (fun a -> a.act_op.Signature.name) cx.cx_actions in
    let wanted a b =
      match focus with
      | None -> true
      | Some fs -> List.mem a.act_op.Signature.name fs || List.mem b.act_op.Signature.name fs
    in
    let rec all_pairs = function
      | [] -> []
      | a :: rest ->
        List.filter_map (fun b -> if wanted a b then Some (a, b) else None) (a :: rest)
        @ all_pairs rest
    in
    let pairs = all_pairs cx.cx_actions in
    let run_chunk ps =
      (* private rewrite system per chunk: it carries a mutable memo
         table and step counter, so sharing one across workers races *)
      let sys = Rewrite.make (Cafeobj.Spec.all_rules spec) in
      Rewrite.set_step_limit sys budget;
      List.map (fun (a, b) -> analyze_pair sys cx a b) ps
    in
    let chunked = chunks (max 4 (List.length pairs / 64)) pairs in
    let results =
      List.concat
        (match pool with
        | Some pool when List.length chunked > 1 ->
          Sched.Pool.parallel_map pool run_chunk chunked
        | _ -> List.map run_chunk chunked)
    in
    let independent =
      List.length (List.filter (fun p -> p.p_verdict = Independent) results)
    in
    let total = List.length results in
    let name = Cafeobj.Spec.name spec in
    let diagnostics =
      [
        Diagnostic.make ~severity:Diagnostic.Info ~checker:"independence"
          ~code:"independent-pairs" ~spec:name
          (Printf.sprintf
             "%d of %d action pairs proved independent (%d commutation claims)"
             independent total
             (List.fold_left
                (fun n p ->
                  if p.p_verdict = Independent then n + List.length p.p_claims else n)
                0 results));
      ]
    in
    Some
      {
        r_spec = name;
        r_actions = names;
        r_pairs = results;
        r_independent = independent;
        r_total = total;
        r_diagnostics = diagnostics;
      }

let independent_pairs r =
  List.filter_map
    (fun p -> if p.p_verdict = Independent then Some (p.p_a, p.p_b) else None)
    r.r_pairs

let is_independent r a b =
  List.exists
    (fun p ->
      p.p_verdict = Independent
      && ((String.equal p.p_a a && String.equal p.p_b b)
          || (String.equal p.p_a b && String.equal p.p_b a)))
    r.r_pairs

(* [certified_ample r candidates]: the candidates that are provably
   independent of *every* action of the spec (including themselves) —
   exactly the admission condition for an ample/flooding set. *)
let certified_ample r candidates =
  List.filter
    (fun c ->
      List.mem c r.r_actions
      && List.for_all (fun g -> is_independent r c g) r.r_actions)
    candidates

(* ------------------------------------------------------------------ *)
(* Certificate: emission                                               *)
(* ------------------------------------------------------------------ *)

let rec term_sexp t =
  match Term.view t with
  | Term.Var v ->
    Sexp.List [ Sexp.Atom "?"; Sexp.Atom v.Term.v_name; Sexp.Atom v.Term.v_sort.Sort.name ]
  | Term.App (o, []) -> Sexp.Atom o.Signature.name
  | Term.App (o, args) ->
    Sexp.List (Sexp.Atom o.Signature.name :: List.map term_sexp args)

let claim_sexp c =
  let target =
    match c.cl_target with
    | Obs o -> Sexp.List [ Sexp.Atom "obs"; Sexp.Atom o ]
    | Enabled a -> Sexp.List [ Sexp.Atom "enabled"; Sexp.Atom a ]
  in
  let via = match c.cl_via with
    | None -> []
    | Some p -> [ Sexp.List [ Sexp.Atom "via"; Sexp.Atom p ] ]
  in
  Sexp.List
    ([ Sexp.Atom "claim"; target ] @ via
     @ [ Sexp.List [ Sexp.Atom "left"; term_sexp c.cl_left ];
         Sexp.List [ Sexp.Atom "right"; term_sexp c.cl_right ] ])

let certificate r =
  let pair p =
    Sexp.List
      ([ Sexp.Atom "pair";
         Sexp.List [ Sexp.Atom "a"; Sexp.Atom p.p_a ];
         Sexp.List [ Sexp.Atom "b"; Sexp.Atom p.p_b ];
         Sexp.List (Sexp.Atom "hyps" :: List.map term_sexp p.p_hyps) ]
       @ List.map claim_sexp p.p_claims)
  in
  Sexp.List
    (Sexp.Atom "indep-cert"
     :: Sexp.List [ Sexp.Atom "spec"; Sexp.Atom r.r_spec ]
     :: List.filter_map
          (fun p -> if p.p_verdict = Independent then Some (pair p) else None)
          r.r_pairs)

(* ------------------------------------------------------------------ *)
(* Certificate: replay                                                 *)
(* ------------------------------------------------------------------ *)

(* The generated OTS declares its action and observer operators on a raw
   signature, not through [Spec.declare_op], so they are reachable only
   through the rules' terms: index every operator occurring anywhere in
   the rule set (plus the booleans).  Polymorphic builtins ([if], [=])
   share a name across sorts, so resolution is by name *and* argument
   sorts. *)
let op_index spec =
  let tbl : (string, Signature.op) Hashtbl.t = Hashtbl.create 128 in
  let add (o : Signature.op) =
    (* dedup by profile, not by [op_equal]: that compares names only, and
       an action may legitimately share its name with a data constructor
       (TLS's [cert]) — resolution tells them apart by argument sorts *)
    if
      not
        (List.exists
           (fun o' -> o' == o || Signature.same_profile o' o)
           (Hashtbl.find_all tbl o.Signature.name))
    then Hashtbl.add tbl o.Signature.name o
  in
  List.iter add
    Signature.Builtin.[ tt; ff; not_; and_; or_; xor; implies; iff ];
  List.iter add (Cafeobj.Spec.all_ops spec);
  let scan t =
    List.iter
      (fun s -> match Term.view s with Term.App (o, _) -> add o | Term.Var _ -> ())
      (Term.subterms t)
  in
  List.iter
    (fun (r : Rewrite.rule) ->
      scan r.Rewrite.lhs;
      scan r.Rewrite.rhs;
      Option.iter scan r.Rewrite.cond)
    (Cafeobj.Spec.all_rules spec);
  tbl

exception Reject of string

let parse_term ops sx =
  let rec go sx =
    match sx with
    | Sexp.List [ Sexp.Atom "?"; Sexp.Atom n; Sexp.Atom srt ] ->
      if not (Sort.mem srt) then raise (Reject ("unknown-sort[" ^ srt ^ "]"));
      Term.var n (Sort.find srt)
    | Sexp.Atom n -> resolve n []
    | Sexp.List (Sexp.Atom n :: args) -> resolve n (List.map go args)
    | _ -> raise (Reject "malformed-term")
  and resolve n args =
    let candidates = Hashtbl.find_all ops n in
    match
      List.find_opt
        (fun (o : Signature.op) ->
          List.length o.Signature.arity = List.length args
          && List.for_all2
               (fun s a -> Sort.equal s (Term.sort a))
               o.Signature.arity args)
        candidates
    with
    | Some o -> Term.app_unchecked o args
    | None -> raise (Reject ("unknown-op[" ^ n ^ "]"))
  in
  go sx

let target_string = function Obs o -> "obs:" ^ o | Enabled a -> "enabled:" ^ a

(* Replay a certificate against [spec]: every claimed pair is re-analyzed
   from the spec's own rules — parameters renamed apart the same way, the
   co-enabledness hypotheses re-derived (a forged hypothesis cannot
   weaken the check), every overlap re-joined and every commutation and
   stability claim re-executed as two rewrite sequences that must land on
   identical (or boolean-ring identical) normal forms.  The certificate's
   recorded terms must match the recomputed obligations exactly.  On
   failure the result is a breadcrumb path into the certificate. *)
let check ?(fuel = 24) ?(budget = 20_000) spec sexp =
  match context ~fuel ~budget spec with
  | None -> Error "spec has no transition rules"
  | Some cx ->
    let ops = op_index spec in
    let sys = Rewrite.make (Cafeobj.Spec.all_rules spec) in
    Rewrite.set_step_limit sys budget;
    let pairs_seen = ref 0 and claims_seen = ref 0 in
    let field name = function
      | Sexp.List [ Sexp.Atom k; Sexp.Atom v ] when String.equal k name -> Some v
      | _ -> None
    in
    let check_pair crumb items =
      let fail why = raise (Reject (crumb ^ "/" ^ why)) in
      let a_name =
        match List.find_map (field "a") items with
        | Some n -> n | None -> fail "missing-action-a"
      in
      let b_name =
        match List.find_map (field "b") items with
        | Some n -> n | None -> fail "missing-action-b"
      in
      let crumb = Printf.sprintf "%s[%s,%s]" crumb a_name b_name in
      let fail why = raise (Reject (crumb ^ "/" ^ why)) in
      let a = match find_action cx a_name with
        | Some a -> a | None -> fail ("unknown-action[" ^ a_name ^ "]")
      in
      let b = match find_action cx b_name with
        | Some b -> b | None -> fail ("unknown-action[" ^ b_name ^ "]")
      in
      let computed = analyze_pair sys cx a b in
      (match computed.p_verdict with
      | Independent -> ()
      | Dependent why -> fail why);
      (* recorded hypotheses must be the recomputed enabling guards *)
      let cert_hyps =
        match
          List.find_map
            (function
              | Sexp.List (Sexp.Atom "hyps" :: hs) ->
                Some (List.map (fun h -> try parse_term ops h with Reject w -> fail ("hyps/" ^ w)) hs)
              | _ -> None)
            items
        with
        | Some hs -> hs
        | None -> fail "missing-hyps"
      in
      if
        not
          (try List.for_all2 Term.equal cert_hyps computed.p_hyps
           with Invalid_argument _ -> false)
      then fail "hyps/term-mismatch";
      (* every recorded claim must be a recomputed obligation, verbatim *)
      let cert_claims =
        List.filter_map
          (function
            | Sexp.List (Sexp.Atom "claim" :: parts) -> Some parts
            | _ -> None)
          items
      in
      let parse_claim parts =
        let target =
          match
            List.find_map
              (function
                | Sexp.List [ Sexp.Atom "obs"; Sexp.Atom o ] -> Some (Obs o)
                | Sexp.List [ Sexp.Atom "enabled"; Sexp.Atom a ] -> Some (Enabled a)
                | _ -> None)
              parts
          with
          | Some t -> t | None -> fail "claim/missing-target"
        in
        let via = List.find_map (field "via") parts in
        let side name =
          match
            List.find_map
              (function
                | Sexp.List [ Sexp.Atom k; t ] when String.equal k name -> Some t
                | _ -> None)
              parts
          with
          | Some t -> (
            try parse_term ops t
            with Reject w ->
              fail (Printf.sprintf "claim[%s]/%s/%s" (target_string target) name w))
          | None -> fail (Printf.sprintf "claim[%s]/missing-%s" (target_string target) name)
        in
        (target, via, side "left", side "right")
      in
      let parsed = List.map parse_claim cert_claims in
      (* the analysis emits claims in a fixed order, so the comparison is
         positional: count, targets, views and both terms must all agree *)
      if List.length parsed <> List.length computed.p_claims then
        fail "claim-count-mismatch";
      List.iter2
        (fun (t, v, l, r) (c : claim) ->
          let crumb_c =
            Printf.sprintf "claim[%s%s]" (target_string c.cl_target)
              (match c.cl_via with None -> "" | Some p -> "/via:" ^ p)
          in
          if t <> c.cl_target || v <> c.cl_via then fail (crumb_c ^ "/claim-mismatch");
          if not (Term.equal l c.cl_left && Term.equal r c.cl_right) then
            fail (crumb_c ^ "/term-mismatch");
          incr claims_seen)
        parsed computed.p_claims;
      incr pairs_seen
    in
    (try
       match sexp with
       | Sexp.List (Sexp.Atom "indep-cert" :: rest) ->
         let spec_name =
           match List.find_map (field "spec") rest with
           | Some n -> n
           | None -> raise (Reject "missing-spec")
         in
         if not (String.equal spec_name (Cafeobj.Spec.name spec)) then
           raise
             (Reject
                (Printf.sprintf "spec-mismatch[%s<>%s]" spec_name
                   (Cafeobj.Spec.name spec)));
         List.iter
           (function
             | Sexp.List (Sexp.Atom "pair" :: items) -> check_pair "pairs/pair" items
             | Sexp.List (Sexp.Atom "spec" :: _) -> ()
             | _ -> raise (Reject "malformed-entry"))
           rest;
         Ok (!pairs_seen, !claims_seen)
       | _ -> Error "not-an-indep-cert"
     with Reject why -> Error why)

(* ------------------------------------------------------------------ *)
(* Graphviz                                                            *)
(* ------------------------------------------------------------------ *)

(* The flow dependency graph with the statically proved independencies
   overlaid as undirected dashed green edges. *)
let dot (flow : Flow.result) r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph flow {\n";
  List.iter
    (fun (t : Flow.transition) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\"%s;\n" t.Flow.t_name
           (if t.Flow.t_dead then " [style=dashed]" else "")))
    flow.Flow.transitions;
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf (Printf.sprintf "  \"%s\" -> \"%s\";\n" a b))
    flow.Flow.edges;
  List.iter
    (fun p ->
      if p.p_verdict = Independent && String.compare p.p_a p.p_b <= 0 then
        Buffer.add_string buf
          (Printf.sprintf
             "  \"%s\" -> \"%s\" [dir=none, style=dashed, color=forestgreen, constraint=false];\n"
             p.p_a p.p_b))
    r.r_pairs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
