(** Linter orchestration: load sources (CafeOBJ files or generated specs),
    run the enabled checkers over every module they define, and collect
    diagnostics into a report, renderable as text or JSON.

    Checkers: ["termination"], ["confluence"], ["completeness"],
    ["hygiene"], ["secrecy"] (static Dolev-Yao secrecy, {!Secrecy}),
    ["flow"] (rule-level read/write footprints, {!Flow}) and
    ["independence"] (action-pair commutation, {!Indep} — the analysis
    behind the model checker's partial-order reduction; on specs with
    many actions this is the most expensive checker by far) per
    elaborated module, and ["coverage"] (per source file's proof
    passages).
    Loading failures — unreadable file, lex,
    parse and elaboration errors, with line/col where available — are
    themselves error diagnostics from the pseudo-checker ["load"], so a
    file that does not even build fails the lint gate. *)

val checkers : string list

type source =
  | File of string  (** path to a [.cafe] file *)
  | Generated of { label : string; spec : Cafeobj.Spec.t }
      (** an in-memory spec, e.g. the generated TLS module *)

type module_summary = {
  m_name : string;
  m_source : string;
  m_rules : int;
  m_terminating : bool option;  (** [None]: checker skipped or load failed *)
  m_pairs : int option;
  m_joinable : bool option;
  m_semantic_joins : int option;
  m_secrecy : string option;
      (** secrecy verdict ({!Secrecy.verdict_name}); [None]: skipped *)
  m_transitions : int option;  (** flow: recognized transitions *)
  m_independent : (int * int) option;
      (** independence: (proved-independent, total) action pairs;
          [None]: checker skipped or no transitions *)
}

type report = {
  diagnostics : Diagnostic.t list;  (** sorted, errors first *)
  modules : module_summary list;
  graphs : (string * string) list;
      (** [(module, dot)]: the {!Flow} action dependency graph with the
          proved independencies overlaid ({!Indep.dot}), one per module
          with transitions — [lint --dot]; needs both the ["flow"] and
          ["independence"] checkers enabled *)
  errors : int;
  warnings : int;
  infos : int;
}

type options = {
  only : string list;  (** run only these checkers (empty: all) *)
  skip : string list;
  hint : string list;  (** [--prec] operator names, later = greater *)
  budget : int;  (** rewrite steps per critical-pair normalization *)
  fuel : int;  (** Shannon splits per critical pair *)
  allow : string list;
      (** ["SPEC:code"] entries: matching error/warning findings are
          demoted to info (annotated ["[allowed]"]) so known, accepted
          findings — e.g. the deliberately leaky fixture — don't gate *)
}

val default_options : options

(** [run ?pool ?opts sources] lints every source.  Sources are loaded
    sequentially (elaboration shares interning tables); with [pool] the
    expensive per-module work (critical-pair joining) fans out over it.
    @raise Invalid_argument on unknown checker names in [only]/[skip]. *)
val run : ?pool:Sched.Pool.t -> ?opts:options -> source list -> report

val pp_report : Format.formatter -> report -> unit

(** The full report as a JSON document: [{"summary": …, "modules": […],
    "diagnostics": […]}]. *)
val report_to_json : report -> string
