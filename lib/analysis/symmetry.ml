open Kernel
module Sexp = Certify.Sexp

type cls = {
  c_sort : Sort.t;
  c_elems : Signature.op list;  (** interchangeable constants, sorted by name *)
}

type result = {
  y_spec : string;
  y_classes : cls list;
  y_pinned : (Signature.op * string) list;
      (** constants that break some rule's invariance, with the label of
          the first breaking rule *)
}

(* Map constants through a transposition, rebuilding the term. *)
let swap_consts c d t =
  let rec go t =
    match Term.view t with
    | Term.Var _ -> t
    | Term.App (o, []) ->
      if Signature.op_equal o c then Term.const d
      else if Signature.op_equal o d then Term.const c
      else t
    | Term.App (o, args) -> Term.app_unchecked o (List.map go args)
  in
  go t

(* The rule set as a hash set of (lhs, rhs, cond) identity triples — terms
   are hash-consed, so membership of a mapped rule is O(1). *)
let rule_set rules =
  let tbl = Hashtbl.create (2 * List.length rules) in
  List.iter
    (fun (r : Rewrite.rule) ->
      let key =
        ( Term.id r.Rewrite.lhs,
          Term.id r.Rewrite.rhs,
          Option.map Term.id r.Rewrite.cond )
      in
      Hashtbl.replace tbl key ())
    rules;
  tbl

(* [invariant rules set c d] — every rule, with [c] and [d] swapped, is
   again a rule (labels ignored: [distinct_constants] emits the symmetric
   axioms under per-pair labels).  Returns the first breaking rule. *)
let breaks rules set c d =
  List.find_opt
    (fun (r : Rewrite.rule) ->
      let lhs = swap_consts c d r.Rewrite.lhs in
      let rhs = swap_consts c d r.Rewrite.rhs in
      let cond = Option.map (swap_consts c d) r.Rewrite.cond in
      not (Hashtbl.mem set (Term.id lhs, Term.id rhs, Option.map Term.id cond)))
    rules

let constants_by_sort spec =
  List.filter
    (fun (o : Signature.op) ->
      o.Signature.arity = []
      && (not o.Signature.sort.Sort.hidden)
      && (not (Sort.equal o.Signature.sort Sort.bool))
      && not (Signature.Builtin.is_builtin o))
    (Cafeobj.Spec.all_ops spec)
  |> List.fold_left
       (fun acc (o : Signature.op) ->
         let key = o.Signature.sort.Sort.name in
         match List.assoc_opt key acc with
         | Some os -> (key, o :: os) :: List.remove_assoc key acc
         | None -> (key, [ o ]) :: acc)
       []
  |> List.map (fun (s, os) ->
         (s, List.sort (fun (a : Signature.op) b ->
                  String.compare a.Signature.name b.Signature.name)
               os))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let analyze spec =
  let rules = Cafeobj.Spec.all_rules spec in
  let set = rule_set rules in
  let classes = ref [] and pinned = ref [] in
  List.iter
    (fun (_sort_name, consts) ->
      match consts with
      | [] | [ _ ] -> ()
      | (c0 : Signature.op) :: _ ->
        (* union-find over the constants of one sort: c ~ d when every
           rule is invariant under the transposition (c d).  Invariance
           under transpositions generates the full symmetric group on
           each resulting class. *)
        let n = List.length consts in
        let arr = Array.of_list consts in
        let parent = Array.init n (fun i -> i) in
        let rec find i = if parent.(i) = i then i else find parent.(i) in
        let union i j =
          let ri = find i and rj = find j in
          if ri <> rj then parent.(max ri rj) <- min ri rj
        in
        let first_break = Array.make n None in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            match breaks rules set arr.(i) arr.(j) with
            | None -> union i j
            | Some r ->
              let note k =
                if first_break.(k) = None then
                  first_break.(k) <- Some r.Rewrite.label
              in
              note i; note j
          done
        done;
        let groups = Hashtbl.create 8 in
        Array.iteri
          (fun i c ->
            let r = find i in
            Hashtbl.replace groups r
              (c :: (try Hashtbl.find groups r with Not_found -> [])))
          arr;
        let this_sort = c0.Signature.sort in
        Hashtbl.iter
          (fun root members ->
            match members with
            | [ (lone : Signature.op) ] ->
              let why =
                match first_break.(root) with Some l -> l | None -> "singleton"
              in
              pinned := (lone, why) :: !pinned
            | _ ->
              classes :=
                {
                  c_sort = this_sort;
                  c_elems =
                    List.sort
                      (fun (a : Signature.op) b ->
                        String.compare a.Signature.name b.Signature.name)
                      members;
                }
                :: !classes)
          groups)
    (constants_by_sort spec);
  {
    y_spec = Cafeobj.Spec.name spec;
    y_classes =
      List.sort
        (fun a b ->
          compare
            (a.c_sort.Sort.name, List.map (fun (o : Signature.op) -> o.Signature.name) a.c_elems)
            (b.c_sort.Sort.name, List.map (fun (o : Signature.op) -> o.Signature.name) b.c_elems))
        !classes;
    y_pinned =
      List.sort
        (fun ((a : Signature.op), _) (b, _) ->
          String.compare a.Signature.name b.Signature.name)
        !pinned;
  }

(* [orbit_elems r ~candidates]: the subset of candidate constant terms
   that lie together in a single symmetry class — the safe canonization
   pool for a scenario drawing interchangeable values from [candidates]. *)
let orbit_elems r ~candidates =
  let name_of t =
    match Term.view t with Term.App (o, []) -> Some o.Signature.name | _ -> None
  in
  let best =
    List.map
      (fun c ->
        let names = List.map (fun (o : Signature.op) -> o.Signature.name) c.c_elems in
        List.filter
          (fun t -> match name_of t with Some n -> List.mem n names | None -> false)
          candidates)
      r.y_classes
  in
  match List.sort (fun a b -> compare (List.length b) (List.length a)) best with
  | pool :: _ when List.length pool >= 2 -> pool
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Certificate                                                         *)
(* ------------------------------------------------------------------ *)

let certificate r =
  Sexp.List
    (Sexp.Atom "symmetry-cert"
     :: Sexp.List [ Sexp.Atom "spec"; Sexp.Atom r.y_spec ]
     :: List.map
          (fun c ->
            Sexp.List
              [
                Sexp.Atom "class";
                Sexp.List [ Sexp.Atom "sort"; Sexp.Atom c.c_sort.Sort.name ];
                Sexp.List
                  (Sexp.Atom "elems"
                   :: List.map
                        (fun (o : Signature.op) -> Sexp.Atom o.Signature.name)
                        c.c_elems);
              ])
          r.y_classes)

exception Reject of string

(* Replay: re-verify, for every claimed class, that each transposition of
   its elements leaves the rule set invariant.  (Transpositions of
   adjacent representatives suffice to generate the class's symmetric
   group, but all pairs are cheap and stricter.) *)
let check spec sexp =
  let rules = Cafeobj.Spec.all_rules spec in
  let set = rule_set rules in
  let consts =
    List.filter
      (fun (o : Signature.op) -> o.Signature.arity = [])
      (Cafeobj.Spec.all_ops spec)
  in
  let classes_seen = ref 0 in
  let check_class crumb parts =
    let fail why = raise (Reject (crumb ^ "/" ^ why)) in
    let sort_name =
      match
        List.find_map
          (function
            | Sexp.List [ Sexp.Atom "sort"; Sexp.Atom s ] -> Some s
            | _ -> None)
          parts
      with
      | Some s -> s | None -> fail "missing-sort"
    in
    let crumb = Printf.sprintf "%s[%s]" crumb sort_name in
    let fail why = raise (Reject (crumb ^ "/" ^ why)) in
    let elems =
      match
        List.find_map
          (function
            | Sexp.List (Sexp.Atom "elems" :: es) ->
              Some
                (List.map
                   (function Sexp.Atom n -> n | _ -> fail "malformed-elem")
                   es)
            | _ -> None)
          parts
      with
      | Some es -> es | None -> fail "missing-elems"
    in
    let resolve n =
      match
        List.find_opt
          (fun (o : Signature.op) ->
            String.equal o.Signature.name n
            && String.equal o.Signature.sort.Sort.name sort_name)
          consts
      with
      | Some o -> o
      | None -> fail ("unknown-constant[" ^ n ^ "]")
    in
    let ops = List.map resolve elems in
    let rec all_pairs = function
      | [] -> ()
      | c :: rest ->
        List.iter
          (fun d ->
            match breaks rules set c d with
            | None -> ()
            | Some r ->
              fail
                (Printf.sprintf "swap[%s,%s]/rule[%s]" c.Signature.name
                   d.Signature.name r.Rewrite.label))
          rest;
        all_pairs rest
    in
    all_pairs ops;
    incr classes_seen
  in
  try
    match sexp with
    | Sexp.List (Sexp.Atom "symmetry-cert" :: rest) ->
      let spec_name =
        match
          List.find_map
            (function
              | Sexp.List [ Sexp.Atom "spec"; Sexp.Atom n ] -> Some n
              | _ -> None)
            rest
        with
        | Some n -> n
        | None -> raise (Reject "missing-spec")
      in
      if not (String.equal spec_name (Cafeobj.Spec.name spec)) then
        raise
          (Reject
             (Printf.sprintf "spec-mismatch[%s<>%s]" spec_name
                (Cafeobj.Spec.name spec)));
      List.iter
        (function
          | Sexp.List (Sexp.Atom "class" :: parts) -> check_class "classes/class" parts
          | Sexp.List (Sexp.Atom "spec" :: _) -> ()
          | _ -> raise (Reject "malformed-entry"))
        rest;
      Ok !classes_seen
    | _ -> Error "not-a-symmetry-cert"
  with Reject why -> Error why
