(** The trusted replay kernel.

    [Check] re-validates every obligation in a {!Cert.t} using only the
    certificate's own term representation — it never links against the
    rewriting engine, performs no AC matching search and follows no
    strategy.  Each recorded rule application is verified by instantiating
    the rule with the {e recorded} substitution and comparing against the
    redex (modulo the checker's own AC canonical form); recorded AC
    permutations are verified to be genuine permutations; condition
    discharges must bottom out at the [true] constant; the LPO certificate
    is rechecked with an independent ~30-line comparator.

    Derivations certify {e reachability} (input rewrites to output under
    the recorded rules), which is what proof-score soundness needs; they
    do not certify that the output is a normal form.

    A checker value carries physical-identity memo tables sized to one
    certificate, so callers chunking obligations across worker domains
    should [create] one checker per chunk. *)

type error = { e_path : string; e_msg : string }
(** [e_path] is a breadcrumb trail into the certificate, e.g.
    ["red r17/arg 0/step[fake-nonce]/cond"]. *)

val pp_error : Format.formatter -> error -> unit

type t

val create : Cert.t -> t

(** [check_all ck] validates the LPO certificate, every [red] obligation
    and every join certificate; returns the (possibly empty) list of
    rejections, most with positioned breadcrumb paths. *)
val check_all : t -> error list

(** Per-obligation entry points for pool-chunked callers. [None] means the
    obligation validated. *)

val check_red : t -> Cert.red -> error option

val check_join : t -> Cert.join -> error option

val check_lpo : t -> error list

(** Number of rule-application steps successfully replayed so far. *)
val steps_validated : t -> int
