(* The trusted replay kernel.  Everything here is reimplemented from the
   certificate's own term representation — no Rewrite, no Ac search, no
   strategy.  The checker never searches: it only verifies that recorded
   substitutions instantiate rules onto redexes, recorded permutations are
   permutations, recorded condition discharges end in [true], and recorded
   precedences orient rules under a ~30-line LPO. *)

module C = Cert
module IntSet = Set.Make (Int)

type error = { e_path : string; e_msg : string }

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.e_path e.e_msg

(* Physical-identity memo tables (certificate ASTs are DAGs). *)
module Phys = Hashtbl.Make (struct
  type t = Obj.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let bool_sort = "Bool"

(* ------------------------------------------------------------------ *)
(* Term operations (mirroring the engine's semantics, not its code)    *)

let sort_of = function C.V v -> v.v_sort | C.A (o, _) -> o.C.op_sort

let rec term_equal a b =
  a == b
  ||
  match a, b with
  | C.V a, C.V b -> String.equal a.v_name b.v_name && String.equal a.v_sort b.v_sort
  | C.A (oa, aa), C.A (ob, ab) ->
    (* operators compare by name, like the engine's [Term.compare] *)
    String.equal oa.C.op_name ob.C.op_name
    && List.length aa = List.length ab
    && List.for_all2 term_equal aa ab
  | _ -> false

let rec term_compare a b =
  if a == b then 0
  else
    match a, b with
    | C.V a, C.V b ->
      let c = String.compare a.v_name b.v_name in
      if c <> 0 then c else String.compare a.v_sort b.v_sort
    | C.V _, C.A _ -> -1
    | C.A _, C.V _ -> 1
    | C.A (oa, aa), C.A (ob, ab) ->
      let c = String.compare oa.C.op_name ob.C.op_name in
      if c <> 0 then c else List.compare term_compare aa ab

let has_flag f (o : C.op) = List.mem f o.C.op_flags
let is_ac o = has_flag C.Ac o
let is_comm o = has_flag C.Comm o

let rec vars acc = function
  | C.V v -> if List.mem (v.v_name, v.v_sort) acc then acc else (v.v_name, v.v_sort) :: acc
  | C.A (_, args) -> List.fold_left vars acc args

let term_vars t = vars [] t

(* Substitutions are the recorded association lists; application is plain
   simultaneous replacement (unbound variables stay). *)
let rec apply sub t =
  match t with
  | C.V v -> (
    match
      List.find_opt (fun (n, s, _) -> String.equal n v.v_name && String.equal s v.v_sort) sub
    with
    | Some (_, _, img) -> img
    | None -> t)
  | C.A (o, args) -> C.A (o, List.map (apply sub) args)

let rec flatten oname t =
  match t with
  | C.A (o, [ l; r ]) when String.equal o.C.op_name oname ->
    flatten oname l @ flatten oname r
  | _ -> [ t ]

let rebuild o args =
  match List.rev args with
  | [] -> invalid_arg "Check.rebuild: empty argument list"
  | last :: rest -> List.fold_left (fun acc t -> C.A (o, [ t; acc ])) last rest

(* AC/Comm canonical form, used to compare a redex with the instantiated
   left-hand side: both sides are canonicalized with the checker's own
   order, so no engine ordering convention is trusted and no search is
   performed. *)
let rec canon memo t =
  match Phys.find_opt memo (Obj.repr t) with
  | Some c -> c
  | None ->
    let c =
      match t with
      | C.V _ -> t
      | C.A (o, [ _; _ ]) when is_ac o ->
        let args =
          flatten o.C.op_name t |> List.map (canon memo) |> List.sort term_compare
        in
        rebuild o args
      | C.A (o, [ a; b ]) when is_comm o ->
        let a = canon memo a and b = canon memo b in
        if term_compare a b <= 0 then C.A (o, [ a; b ]) else C.A (o, [ b; a ])
      | C.A (o, args) -> C.A (o, List.map (canon memo) args)
    in
    Phys.replace memo (Obj.repr t) c;
    c

(* [Term.replace] mirror: replace every occurrence, no descent into
   replacements. *)
let rec replace ~old ~by t =
  if term_equal t old then by
  else match t with C.V _ -> t | C.A (o, args) -> C.A (o, List.map (replace ~old ~by) args)

(* ------------------------------------------------------------------ *)
(* Boolean ring (for [ring] join tails) — Hsiang normal form, mirroring
   the engine's [Boolring] on the certificate's own terms.              *)

exception Not_boolean

let mono_compare = List.compare term_compare

let rec bxor p q =
  match p, q with
  | [], q -> q
  | p, [] -> p
  | m :: p', n :: q' ->
    let c = mono_compare m n in
    if c = 0 then bxor p' q'
    else if c < 0 then m :: bxor p' q
    else n :: bxor p q'

let mono_mul m n =
  let rec merge m n =
    match m, n with
    | [], n -> n
    | m, [] -> m
    | a :: m', b :: n' ->
      let c = term_compare a b in
      if c = 0 then a :: merge m' n'
      else if c < 0 then a :: merge m' n
      else b :: merge m n'
  in
  merge m n

let band p q =
  List.fold_left
    (fun acc m -> List.fold_left (fun acc n -> bxor acc [ mono_mul m n ]) acc q)
    [] p

let btru = [ [] ]
let bnot p = bxor btru p

let batom t =
  if not (String.equal (sort_of t) bool_sort) then raise Not_boolean;
  match t with
  | C.A (o, [ a; b ]) when has_flag C.Eq o ->
    let c = term_compare a b in
    if c = 0 then btru
    else if c < 0 then [ [ t ] ]
    else [ [ C.A (o, [ b; a ]) ] ]
  | _ -> [ [ t ] ]

let rec poly_of t =
  match t with
  | C.A (o, []) when has_flag C.Tt o -> btru
  | C.A (o, []) when has_flag C.Ff o -> []
  | C.A (o, [ a ]) when has_flag C.Not o -> bnot (poly_of a)
  | C.A (o, [ a; b ]) when has_flag C.And o -> band (poly_of a) (poly_of b)
  | C.A (o, [ a; b ]) when has_flag C.Or o ->
    let a = poly_of a and b = poly_of b in
    bxor (bxor a b) (band a b)
  | C.A (o, [ a; b ]) when has_flag C.Xor o -> bxor (poly_of a) (poly_of b)
  | C.A (o, [ a; b ]) when has_flag C.Implies o ->
    let a = poly_of a and b = poly_of b in
    bnot (bxor (band a b) a)
  | C.A (o, [ a; b ]) when has_flag C.Iff o -> bnot (bxor (poly_of a) (poly_of b))
  | C.A (o, [ c; a; b ]) when has_flag C.If o && String.equal (sort_of t) bool_sort ->
    let c = poly_of c and a = poly_of a and b = poly_of b in
    bxor (bxor (band c a) (band c b)) b
  | _ -> batom t

let poly_equal l r =
  match poly_of l, poly_of r with
  | p, q -> List.compare mono_compare p q = 0
  | exception Not_boolean -> false

(* ------------------------------------------------------------------ *)
(* Independent LPO comparator                                          *)

let lpo ~prec s t =
  let rec gt s t =
    match s, t with
    | C.V _, _ -> false
    | C.A _, C.V v ->
      List.exists
        (fun (n, srt) -> String.equal n v.v_name && String.equal srt v.v_sort)
        (term_vars s)
    | C.A (f, ss), C.A (g, ts) ->
      List.exists (fun si -> ge si t) ss
      ||
      let c = prec f g in
      if c > 0 then List.for_all (gt s) ts
      else if c = 0 then lex ss ts && List.for_all (gt s) ts
      else false
  and ge s t = term_equal s t || gt s t
  and lex ss ts =
    match ss, ts with
    | s1 :: ss', t1 :: ts' -> if term_equal s1 t1 then lex ss' ts' else gt s1 t1
    | [], _ :: _ | _ :: _, [] | [], [] -> false
  in
  gt s t

(* ------------------------------------------------------------------ *)
(* The checker context                                                 *)

type t = {
  cert : C.t;
  canon_memo : C.term Phys.t;
  wf_memo : unit Phys.t;
  rule_memo : unit Phys.t;
  deriv_memo : (IntSet.t, error) result Phys.t;
  rset_memo : IntSet.t Phys.t;
  rule_ids : int Phys.t;
  mutable next_rule_id : int;
  mutable steps_validated : int;
  mutable tt_term : C.term option;
  mutable ff_term : C.term option;
}

exception Reject of error

let reject path fmt =
  Format.kasprintf (fun m -> raise (Reject { e_path = path; e_msg = m })) fmt

let sub fmt = Printf.sprintf fmt

let rule_id ck r =
  match Phys.find_opt ck.rule_ids (Obj.repr r) with
  | Some i -> i
  | None ->
    let i = ck.next_rule_id in
    ck.next_rule_id <- i + 1;
    Phys.replace ck.rule_ids (Obj.repr r) i;
    i

let pp_term ppf t =
  let rec go ppf = function
    | C.V v -> Format.fprintf ppf "%s:%s" v.v_name v.v_sort
    | C.A (o, []) -> Format.pp_print_string ppf o.C.op_name
    | C.A (o, args) ->
      Format.fprintf ppf "%s(%a)" o.C.op_name
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',') go)
        args
  in
  go ppf t

(* ----- static well-formedness -------------------------------------- *)

(* Builtin roles are pinned to the fixed BOOL signature: a certificate
   cannot re-flag an arbitrary operator as [and] to bend the checker's
   boolean ring. *)
let check_op path (o : C.op) =
  let expect name arity sort =
    if
      not
        (String.equal o.C.op_name name
        && o.C.op_arity = arity
        && String.equal o.C.op_sort sort)
    then
      raise
        (Reject
           {
             e_path = path;
             e_msg =
               sub "operator %s mis-flagged as builtin %s" o.C.op_name name;
           })
  in
  let b = bool_sort in
  List.iter
    (function
      | C.Tt -> expect "true" [] b
      | C.Ff -> expect "false" [] b
      | C.Not -> expect "not" [ b ] b
      | C.And -> expect "and" [ b; b ] b
      | C.Or -> expect "or" [ b; b ] b
      | C.Xor -> expect "xor" [ b; b ] b
      | C.Implies -> expect "implies" [ b; b ] b
      | C.Iff -> expect "iff" [ b; b ] b
      | C.If ->
        if
          not
            (String.length o.C.op_name >= 3
            && String.sub o.C.op_name 0 3 = "if:"
            && match o.C.op_arity with
               | [ c; x; y ] -> String.equal c b && String.equal x y && String.equal x o.C.op_sort
               | _ -> false)
        then
          raise
            (Reject
               { e_path = path; e_msg = sub "operator %s mis-flagged as if" o.C.op_name })
      | C.Eq ->
        if
          not
            (String.length o.C.op_name >= 2
            && String.sub o.C.op_name 0 2 = "=:"
            && String.equal o.C.op_sort b
            && match o.C.op_arity with [ x; y ] -> String.equal x y | _ -> false)
        then
          raise
            (Reject
               { e_path = path; e_msg = sub "operator %s mis-flagged as eq" o.C.op_name })
      | C.Ac | C.Comm -> ())
    o.C.op_flags

let rec wf_term ck path t =
  if not (Phys.mem ck.wf_memo (Obj.repr t)) then begin
    (match t with
    | C.V _ -> ()
    | C.A (o, args) ->
      check_op path o;
      if (is_ac o || is_comm o) && List.length o.C.op_arity <> 2 then
        reject path "AC/Comm operator %s is not binary" o.C.op_name;
      if List.length args <> List.length o.C.op_arity then
        reject path "operator %s applied to %d arguments (arity %d)" o.C.op_name
          (List.length args) (List.length o.C.op_arity);
      List.iter2
        (fun a srt ->
          if not (String.equal (sort_of a) srt) then
            reject path "argument of %s has sort %s, expected %s" o.C.op_name
              (sort_of a) srt;
          wf_term ck path a)
        args o.C.op_arity;
      if has_flag C.Tt o then ck.tt_term <- Some t;
      if has_flag C.Ff o then ck.ff_term <- Some t);
    Phys.replace ck.wf_memo (Obj.repr t) ()
  end

let wf_rule ck path (r : C.rule) =
  if not (Phys.mem ck.rule_memo (Obj.repr r)) then begin
    let path = sub "%s/rule %s" path r.C.r_label in
    wf_term ck path r.C.r_lhs;
    wf_term ck path r.C.r_rhs;
    if not (String.equal (sort_of r.C.r_lhs) (sort_of r.C.r_rhs)) then
      reject path "sides have different sorts (%s vs %s)" (sort_of r.C.r_lhs)
        (sort_of r.C.r_rhs);
    (match r.C.r_cond with
    | None -> ()
    | Some c ->
      wf_term ck path c;
      if not (String.equal (sort_of c) bool_sort) then
        reject path "condition has sort %s, expected Bool" (sort_of c));
    Phys.replace ck.rule_memo (Obj.repr r) ()
  end

(* The set of rule ids available in a rule-set chain. *)
let rec rset_closure ck path (rs : C.rset) =
  match Phys.find_opt ck.rset_memo (Obj.repr rs) with
  | Some s -> s
  | None ->
    let base =
      match rs.C.rs_parent with
      | None -> IntSet.empty
      | Some p -> rset_closure ck path p
    in
    let s =
      List.fold_left
        (fun s r ->
          wf_rule ck path r;
          IntSet.add (rule_id ck r) s)
        base rs.C.rs_rules
    in
    Phys.replace ck.rset_memo (Obj.repr rs) s;
    s

(* ----- derivation replay ------------------------------------------- *)

let is_perm n p =
  List.length p = n
  &&
  let seen = Array.make n false in
  List.for_all
    (fun i ->
      i >= 0 && i < n
      &&
      if seen.(i) then false
      else begin
        seen.(i) <- true;
        true
      end)
    p

let nth_exn path xs i =
  match List.nth_opt xs i with
  | Some x -> x
  | None -> raise (Reject { e_path = path; e_msg = sub "index %d out of range" i })

let ac_equal ck a b = term_equal (canon ck.canon_memo a) (canon ck.canon_memo b)

let is_tt = function C.A (o, []) -> has_flag C.Tt o | _ -> false

let rec validate ck path (d : C.deriv) : IntSet.t =
  match Phys.find_opt ck.deriv_memo (Obj.repr d) with
  | Some (Ok used) -> used
  | Some (Error e) -> raise (Reject e)
  | None ->
    let result =
      try Ok (validate_uncached ck path d) with Reject e -> Error e
    in
    Phys.replace ck.deriv_memo (Obj.repr d) result;
    (match result with Ok used -> used | Error e -> raise (Reject e))

and validate_uncached ck path (d : C.deriv) : IntSet.t =
  wf_term ck path d.C.d_in;
  wf_term ck path d.C.d_out;
  match d.C.d_node with
  | C.Triv ->
    (* [Triv] claims zero steps, so input and output must coincide *)
    if not (term_equal d.C.d_in d.C.d_out) then
      reject path "trivial derivation with input %a distinct from output %a" pp_term
        d.C.d_in pp_term d.C.d_out;
    IntSet.empty
  | C.App { children; perm; step } ->
    let o, args =
      match d.C.d_in with
      | C.A (o, args) -> (o, args)
      | C.V _ -> reject path "app derivation over variable input %a" pp_term d.C.d_in
    in
    if List.length children <> List.length args then
      reject path "%d child derivations for %d arguments of %s" (List.length children)
        (List.length args) o.C.op_name;
    let used = ref IntSet.empty in
    List.iteri
      (fun i (c : C.deriv) ->
        let cpath = sub "%s/arg %d" path i in
        if not (term_equal c.C.d_in (nth_exn cpath args i)) then
          reject cpath "child derivation input %a is not argument %d of %a" pp_term
            c.C.d_in i pp_term d.C.d_in;
        used := IntSet.union !used (validate ck cpath c))
      children;
    let t' = C.A (o, List.map (fun (c : C.deriv) -> c.C.d_out) children) in
    let t'' =
      match perm with
      | None -> t'
      | Some p ->
        let ppath = sub "%s/perm" path in
        if is_ac o then begin
          let flat = flatten o.C.op_name t' in
          let n = List.length flat in
          if not (is_perm n p) then
            reject ppath "bogus AC permutation [%s] over %d arguments"
              (String.concat ";" (List.map string_of_int p))
              n;
          rebuild o (List.map (nth_exn ppath flat) p)
        end
        else if is_comm o then begin
          match t', p with
          | C.A (_, ([ _; _ ] as xs)), [ a; b ] when is_perm 2 [ a; b ] ->
            C.A (o, [ nth_exn ppath xs a; nth_exn ppath xs b ])
          | _ -> reject ppath "bogus Comm permutation"
        end
        else reject ppath "permutation on non-AC/Comm operator %s" o.C.op_name
    in
    (match step with
    | None ->
      if not (term_equal d.C.d_out t'') then
        reject path "stepless derivation output %a differs from computed %a" pp_term
          d.C.d_out pp_term t''
    | Some s ->
      let r = s.C.s_rule in
      let spath = sub "%s/step[%s]" path r.C.r_label in
      wf_rule ck path r;
      (* recorded substitution: sort-correct images *)
      List.iter
        (fun (n, srt, img) ->
          wf_term ck spath img;
          if not (String.equal (sort_of img) srt) then
            reject spath "substitution binds %s:%s to a term of sort %s" n srt
              (sort_of img))
        s.C.s_sub;
      let sigma_lhs = apply s.C.s_sub r.C.r_lhs in
      if not (term_equal t'' sigma_lhs || ac_equal ck t'' sigma_lhs) then
        reject spath "rule %s does not match the redex: instantiated lhs %a, redex %a"
          r.C.r_label pp_term sigma_lhs pp_term t'';
      (* condition discharge *)
      (match r.C.r_cond, s.C.s_cond with
      | None, None -> ()
      | Some c, Some dc ->
        let cpath = sub "%s/cond" spath in
        let sigma_c = apply s.C.s_sub c in
        if not (term_equal dc.C.d_in sigma_c) then
          reject cpath "condition derivation starts at %a, not the instantiated condition %a"
            pp_term dc.C.d_in pp_term sigma_c;
        used := IntSet.union !used (validate ck cpath dc);
        if not (is_tt dc.C.d_out) then
          reject cpath "condition of rule %s discharges to %a, not true" r.C.r_label
            pp_term dc.C.d_out
      | Some _, None ->
        reject spath "rule %s is conditional but the step records no condition discharge"
          r.C.r_label
      | None, Some _ ->
        reject spath "rule %s is unconditional but the step records a condition discharge"
          r.C.r_label);
      (* right-hand side normalization *)
      let npath = sub "%s/next" spath in
      let sigma_rhs = apply s.C.s_sub r.C.r_rhs in
      if not (term_equal s.C.s_next.C.d_in sigma_rhs) then
        reject npath "continuation starts at %a, not the instantiated rhs %a" pp_term
          s.C.s_next.C.d_in pp_term sigma_rhs;
      used := IntSet.union !used (validate ck npath s.C.s_next);
      if not (term_equal d.C.d_out s.C.s_next.C.d_out) then
        reject path "derivation output %a differs from continuation output %a" pp_term
          d.C.d_out pp_term s.C.s_next.C.d_out;
      ck.steps_validated <- ck.steps_validated + 1;
      used := IntSet.add (rule_id ck r) !used);
    !used

(* ----- obligations -------------------------------------------------- *)

let check_red ck (red : C.red) : error option =
  let path = sub "red %s" red.C.red_name in
  try
    let scope = rset_closure ck path red.C.red_rset in
    let d = red.C.red_deriv in
    if not (term_equal d.C.d_in red.C.red_in) then
      reject path "derivation input %a is not the obligation input %a" pp_term
        d.C.d_in pp_term red.C.red_in;
    if not (term_equal d.C.d_out red.C.red_out) then
      reject path "derivation output %a is not the claimed normal form %a" pp_term
        d.C.d_out pp_term red.C.red_out;
    let used = validate ck path d in
    if not (IntSet.subset used scope) then
      reject path "derivation uses %d rule(s) outside its rule set"
        (IntSet.cardinal (IntSet.diff used scope));
    None
  with Reject e -> Some e

let check_join ck (join : C.join) : error option =
  let path = sub "join %s" join.C.j_label in
  try
    let scope = rset_closure ck path join.C.j_rset in
    let used = ref IntSet.empty in
    let tt_ff path =
      match ck.tt_term, ck.ff_term with
      | Some t, Some f -> (t, f)
      | _ -> reject path "certificate declares no true/false constants for a split"
    in
    let rec go path l r (jc : C.jcert) =
      if not (term_equal jc.C.jc_left.C.d_in l) then
        reject path "left derivation starts at %a, not %a" pp_term jc.C.jc_left.C.d_in
          pp_term l;
      if not (term_equal jc.C.jc_right.C.d_in r) then
        reject path "right derivation starts at %a, not %a" pp_term
          jc.C.jc_right.C.d_in pp_term r;
      used := IntSet.union !used (validate ck (sub "%s/left" path) jc.C.jc_left);
      used := IntSet.union !used (validate ck (sub "%s/right" path) jc.C.jc_right);
      let l' = jc.C.jc_left.C.d_out and r' = jc.C.jc_right.C.d_out in
      match jc.C.jc_tail with
      | C.Jsyn ->
        if not (term_equal l' r') then
          reject path "sides reduce to distinct terms %a and %a" pp_term l' pp_term r'
      | C.Jring ->
        if not (poly_equal l' r') then
          reject path "sides %a and %a are not boolean-ring equal" pp_term l' pp_term
            r'
      | C.Jsplit (c, jt, jf) ->
        wf_term ck path c;
        if not (String.equal (sort_of c) bool_sort) then
          reject path "split condition %a is not boolean" pp_term c;
        let tt, ff = tt_ff path in
        go (sub "%s/true" path)
          (replace ~old:c ~by:tt l')
          (replace ~old:c ~by:tt r')
          jt;
        go (sub "%s/false" path)
          (replace ~old:c ~by:ff l')
          (replace ~old:c ~by:ff r')
          jf
    in
    wf_term ck path join.C.j_peak;
    go path join.C.j_left join.C.j_right join.C.j_cert;
    if not (IntSet.subset !used scope) then
      reject path "join uses %d rule(s) outside its rule set"
        (IntSet.cardinal (IntSet.diff !used scope));
    None
  with Reject e -> Some e

let check_lpo ck : error list =
  match ck.cert.C.lpo with
  | None -> []
  | Some l -> (
    try
      (* The precedence ranks operators by full profile, like the engine's
         [Order.op_key]: the TLS model overloads names across sorts.  A
         profile listed twice could smuggle in an inconsistent order, so
         duplicates are rejected. *)
      let op_key (o : C.op) =
        String.concat "," (o.C.op_name :: o.C.op_arity) ^ "->" ^ o.C.op_sort
      in
      let rank = Hashtbl.create 64 in
      List.iteri
        (fun i (o : C.op) ->
          check_op "lpo/prec" o;
          let k = op_key o in
          if Hashtbl.mem rank k then
            raise
              (Reject
                 {
                   e_path = "lpo/prec";
                   e_msg = sub "operator %s listed twice in the precedence" o.C.op_name;
                 });
          Hashtbl.replace rank k i)
        l.C.lpo_prec;
      let prec o1 o2 =
        match Hashtbl.find_opt rank (op_key o1), Hashtbl.find_opt rank (op_key o2) with
        | Some i, Some j -> compare i j
        | Some _, None -> 1
        | None, Some _ -> -1
        | None, None -> String.compare o1.C.op_name o2.C.op_name
      in
      List.filter_map
        (fun (r : C.rule) ->
          let path = sub "lpo/rule %s" r.C.r_label in
          try
            wf_rule ck "lpo" r;
            if not (lpo ~prec r.C.r_lhs r.C.r_rhs) then
              reject path "lhs %a is not LPO-greater than rhs %a under the certificate precedence"
                pp_term r.C.r_lhs pp_term r.C.r_rhs;
            (match r.C.r_cond with
            | Some c when not (lpo ~prec r.C.r_lhs c) ->
              reject path "lhs is not LPO-greater than the condition %a" pp_term c
            | _ -> ());
            None
          with Reject e -> Some e)
        l.C.lpo_rules
    with Reject e -> [ e ])

let create (cert : C.t) : t =
  {
    cert;
    canon_memo = Phys.create 4096;
    wf_memo = Phys.create 4096;
    rule_memo = Phys.create 256;
    deriv_memo = Phys.create 4096;
    rset_memo = Phys.create 64;
    rule_ids = Phys.create 256;
    next_rule_id = 0;
    steps_validated = 0;
    tt_term = None;
    ff_term = None;
  }

let steps_validated ck = ck.steps_validated

let check_all ck : error list =
  let lpo_errs = check_lpo ck in
  let red_errs = List.filter_map (check_red ck) ck.cert.C.reds in
  let join_errs = List.filter_map (check_join ck) ck.cert.C.joins in
  lpo_errs @ red_errs @ join_errs
