(* Certificate AST + S-expression (de)serialization.  See the .mli for the
   documented grammar.  The encoder hash-conses every node (ops, terms,
   rules, rule sets, derivations) into id-indexed tables, so certificates
   are DAG-compact regardless of how much sharing the producer achieved;
   the decoder only ever resolves ids that are already defined (references
   point backwards), which makes cyclic certificates unrepresentable. *)

type flag = Ac | Comm | Tt | Ff | Not | And | Or | Xor | Implies | Iff | If | Eq

type op = {
  op_name : string;
  op_arity : string list;
  op_sort : string;
  op_flags : flag list;
}

type term = V of { v_name : string; v_sort : string } | A of op * term list

type rule = { r_label : string; r_lhs : term; r_rhs : term; r_cond : term option }
type rset = { rs_parent : rset option; rs_rules : rule list }

type deriv = { d_in : term; d_out : term; d_node : dnode }

and dnode =
  | Triv
  | App of { children : deriv list; perm : int list option; step : step option }

and step = {
  s_rule : rule;
  s_sub : (string * string * term) list;
  s_cond : deriv option;
  s_next : deriv;
}

type red = {
  red_name : string;
  red_rset : rset;
  red_in : term;
  red_out : term;
  red_deriv : deriv;
}

type lpo = { lpo_prec : op list; lpo_rules : rule list }

type jtail = Jsyn | Jring | Jsplit of term * jcert * jcert
and jcert = { jc_left : deriv; jc_right : deriv; jc_tail : jtail }

type join = {
  j_label : string;
  j_rset : rset;
  j_peak : term;
  j_left : term;
  j_right : term;
  j_cert : jcert;
}

type t = { reds : red list; lpo : lpo option; joins : join list }

(* ------------------------------------------------------------------ *)
(* Flags *)

let flag_name = function
  | Ac -> "ac"
  | Comm -> "comm"
  | Tt -> "tt"
  | Ff -> "ff"
  | Not -> "not"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Implies -> "implies"
  | Iff -> "iff"
  | If -> "if"
  | Eq -> "eq"

let flag_of_name = function
  | "ac" -> Some Ac
  | "comm" -> Some Comm
  | "tt" -> Some Tt
  | "ff" -> Some Ff
  | "not" -> Some Not
  | "and" -> Some And
  | "or" -> Some Or
  | "xor" -> Some Xor
  | "implies" -> Some Implies
  | "iff" -> Some Iff
  | "if" -> Some If
  | "eq" -> Some Eq
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Encoding *)

(* Physical-identity memo table: cuts DAG re-walks so encoding is linear in
   the number of distinct nodes. *)
module Phys = Hashtbl.Make (struct
  type t = Obj.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type 'k interner = {
  keys : ('k, int) Hashtbl.t;
  mutable entries : Sexp.t list;  (** reversed *)
  mutable next : int;
}

let interner () = { keys = Hashtbl.create 256; entries = []; next = 0 }

let intern it key mk =
  match Hashtbl.find_opt it.keys key with
  | Some id -> id
  | None ->
    let id = it.next in
    it.next <- id + 1;
    Hashtbl.replace it.keys key id;
    it.entries <- mk id :: it.entries;
    id

let entries it = List.rev it.entries

let atom_int n = Sexp.Atom (string_of_int n)

let to_sexp (cert : t) : Sexp.t =
  let ops = interner () in
  let terms = interner () in
  let rules = interner () in
  let rsets = interner () in
  let derivs = interner () in
  let term_phys : int Phys.t = Phys.create 4096 in
  let deriv_phys : int Phys.t = Phys.create 4096 in
  let op_id (o : op) =
    intern ops
      (o.op_name, o.op_arity, o.op_sort, o.op_flags)
      (fun id ->
        Sexp.List
          ([
             Sexp.Atom "op";
             atom_int id;
             Sexp.Atom o.op_name;
             Sexp.List (List.map (fun s -> Sexp.Atom s) o.op_arity);
             Sexp.Atom o.op_sort;
           ]
          @ List.map (fun f -> Sexp.Atom (flag_name f)) o.op_flags))
  in
  let rec term_id (t : term) =
    match Phys.find_opt term_phys (Obj.repr t) with
    | Some id -> id
    | None ->
      let id =
        match t with
        | V { v_name; v_sort } ->
          intern terms
            ("v", v_name, v_sort, [])
            (fun id ->
              Sexp.List
                [
                  Sexp.Atom "t";
                  atom_int id;
                  Sexp.Atom "v";
                  Sexp.Atom v_name;
                  Sexp.Atom v_sort;
                ])
        | A (o, args) ->
          let oid = op_id o in
          let aids = List.map term_id args in
          intern terms
            ("a", string_of_int oid, "", aids)
            (fun id ->
              Sexp.List
                ([ Sexp.Atom "t"; atom_int id; Sexp.Atom "a"; atom_int oid ]
                @ List.map atom_int aids))
      in
      Phys.replace term_phys (Obj.repr t) id;
      id
  in
  let rule_id (r : rule) =
    let lid = term_id r.r_lhs and rid = term_id r.r_rhs in
    let cid = Option.map term_id r.r_cond in
    intern rules
      (r.r_label, lid, rid, cid)
      (fun id ->
        Sexp.List
          ([
             Sexp.Atom "rule";
             atom_int id;
             Sexp.Atom r.r_label;
             atom_int lid;
             atom_int rid;
           ]
          @ match cid with None -> [] | Some c -> [ atom_int c ]))
  in
  let rec rset_id (rs : rset) =
    let pid = match rs.rs_parent with None -> -1 | Some p -> rset_id p in
    let rids = List.map rule_id rs.rs_rules in
    intern rsets (pid, rids) (fun id ->
        Sexp.List
          ([ Sexp.Atom "rs"; atom_int id; atom_int pid ] @ List.map atom_int rids))
  in
  let rec deriv_id (d : deriv) =
    match Phys.find_opt deriv_phys (Obj.repr d) with
    | Some id -> id
    | None ->
      let id =
        match d.d_node with
        | Triv ->
          let tid = term_id d.d_in in
          intern derivs
            [ -1; tid ]
            (fun id ->
              Sexp.List [ Sexp.Atom "d"; atom_int id; Sexp.Atom "triv"; atom_int tid ])
        | App { children; perm; step } ->
          let iid = term_id d.d_in and oid = term_id d.d_out in
          let cids = List.map deriv_id children in
          let perm_part =
            match perm with
            | None -> []
            | Some p -> [ Sexp.List (Sexp.Atom "perm" :: List.map atom_int p) ]
          in
          let step_part, step_key =
            match step with
            | None -> ([], [])
            | Some s ->
              let rid = rule_id s.s_rule in
              let sub =
                List.map
                  (fun (n, srt, t) ->
                    let tid = term_id t in
                    (Sexp.List [ Sexp.Atom n; Sexp.Atom srt; atom_int tid ], tid))
                  s.s_sub
              in
              let cond = Option.map deriv_id s.s_cond in
              let nid = deriv_id s.s_next in
              ( [
                  Sexp.List
                    ([ Sexp.Atom "step"; atom_int rid ]
                    @ [ Sexp.List (Sexp.Atom "sub" :: List.map fst sub) ]
                    @ (match cond with
                      | None -> []
                      | Some c -> [ Sexp.List [ Sexp.Atom "cond"; atom_int c ] ])
                    @ [ atom_int nid ]);
                ],
                (-4 :: rid :: nid :: List.map snd sub)
                @ [ (match cond with None -> -1 | Some c -> c) ] )
          in
          (* all ids are >= 0, so the negative markers make the variable-
             length sections of the key unambiguous *)
          let key =
            (-2 :: iid :: oid :: cids)
            @ (match perm with None -> [ -1 ] | Some p -> -3 :: p)
            @ (match step_key with [] -> [ -5 ] | k -> k)
          in
          intern derivs key (fun id ->
              Sexp.List
                ([
                   Sexp.Atom "d";
                   atom_int id;
                   Sexp.Atom "app";
                   atom_int iid;
                   atom_int oid;
                   Sexp.List (List.map atom_int cids);
                 ]
                @ perm_part @ step_part))
      in
      Phys.replace deriv_phys (Obj.repr d) id;
      id
  in
  let reds =
    List.map
      (fun r ->
        let rsid = rset_id r.red_rset in
        let iid = term_id r.red_in and oid = term_id r.red_out in
        let did = deriv_id r.red_deriv in
        Sexp.List
          [
            Sexp.Atom "red";
            Sexp.Atom r.red_name;
            atom_int rsid;
            atom_int iid;
            atom_int oid;
            atom_int did;
          ])
      cert.reds
  in
  let lpo =
    match cert.lpo with
    | None -> []
    | Some l ->
      let prec = List.map op_id l.lpo_prec in
      let rids = List.map rule_id l.lpo_rules in
      [
        Sexp.List
          [
            Sexp.Atom "lpo";
            Sexp.List (Sexp.Atom "prec" :: List.map atom_int prec);
            Sexp.List (Sexp.Atom "rules" :: List.map atom_int rids);
          ];
      ]
  in
  let rec jcert_sx (jc : jcert) =
    let l = deriv_id jc.jc_left and r = deriv_id jc.jc_right in
    let tail =
      match jc.jc_tail with
      | Jsyn -> Sexp.Atom "syn"
      | Jring -> Sexp.Atom "ring"
      | Jsplit (c, jt, jf) ->
        Sexp.List [ Sexp.Atom "split"; atom_int (term_id c); jcert_sx jt; jcert_sx jf ]
    in
    Sexp.List [ Sexp.Atom "j"; atom_int l; atom_int r; tail ]
  in
  let joins =
    List.map
      (fun j ->
        Sexp.List
          [
            Sexp.Atom "join";
            Sexp.Atom j.j_label;
            atom_int (rset_id j.j_rset);
            atom_int (term_id j.j_peak);
            atom_int (term_id j.j_left);
            atom_int (term_id j.j_right);
            jcert_sx j.j_cert;
          ])
      cert.joins
  in
  Sexp.List
    ([
       Sexp.Atom "eqcert";
       Sexp.List [ Sexp.Atom "version"; atom_int 1 ];
       Sexp.List (Sexp.Atom "ops" :: entries ops);
       Sexp.List (Sexp.Atom "terms" :: entries terms);
       Sexp.List (Sexp.Atom "rules" :: entries rules);
       Sexp.List (Sexp.Atom "rsets" :: entries rsets);
       Sexp.List (Sexp.Atom "derivs" :: entries derivs);
       Sexp.List (Sexp.Atom "reds" :: reds);
     ]
    @ lpo
    @ [ Sexp.List (Sexp.Atom "joins" :: joins) ])

let to_string cert = Sexp.to_string (to_sexp cert)

(* ------------------------------------------------------------------ *)
(* Decoding *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let as_int ctx = function
  | Sexp.Atom a -> (
    match int_of_string_opt a with
    | Some n -> n
    | None -> bad "%s: expected integer, got %S" ctx a)
  | Sexp.List _ -> bad "%s: expected integer, got a list" ctx

let as_atom ctx = function
  | Sexp.Atom a -> a
  | Sexp.List _ -> bad "%s: expected atom, got a list" ctx

(* Growable id-indexed store; references must point at already-defined
   entries, so a certificate cannot contain forward or cyclic references. *)
type 'a store = { what : string; mutable arr : 'a array; mutable len : int }

let store what = { what; arr = [||]; len = 0 }

let store_add st id v =
  if id <> st.len then bad "%s: id %d out of order (expected %d)" st.what id st.len;
  if Array.length st.arr = st.len then begin
    let cap = max 64 (2 * Array.length st.arr) in
    let arr = Array.make cap v in
    Array.blit st.arr 0 arr 0 st.len;
    st.arr <- arr
  end;
  st.arr.(st.len) <- v;
  st.len <- st.len + 1

let store_get st id =
  if id < 0 || id >= st.len then bad "%s: unknown id %d" st.what id;
  st.arr.(id)

let of_sexp (sx : Sexp.t) : (t, string) result =
  try
    let sections =
      match sx with
      | Sexp.List (Sexp.Atom "eqcert" :: rest) -> rest
      | _ -> bad "certificate: expected (eqcert ...)"
    in
    let ops = store "op" in
    let terms = store "term" in
    let rules = store "rule" in
    let rsets = store "rset" in
    let derivs = store "deriv" in
    let reds = ref [] in
    let lpo = ref None in
    let joins = ref [] in
    let dec_op = function
      | Sexp.List
          (Sexp.Atom "op" :: id :: name :: Sexp.List arity :: sort :: flags) ->
        let id = as_int "op id" id in
        let flags =
          List.map
            (fun f ->
              let a = as_atom "op flag" f in
              match flag_of_name a with
              | Some f -> f
              | None -> bad "op %d: unknown flag %S" id a)
            flags
        in
        store_add ops id
          {
            op_name = as_atom "op name" name;
            op_arity = List.map (as_atom "op arity sort") arity;
            op_sort = as_atom "op sort" sort;
            op_flags = flags;
          }
      | _ -> bad "ops: malformed entry"
    in
    let dec_term = function
      | Sexp.List [ Sexp.Atom "t"; id; Sexp.Atom "v"; name; sort ] ->
        let id = as_int "term id" id in
        store_add terms id
          (V { v_name = as_atom "var name" name; v_sort = as_atom "var sort" sort })
      | Sexp.List (Sexp.Atom "t" :: id :: Sexp.Atom "a" :: oid :: args) ->
        let id = as_int "term id" id in
        let o = store_get ops (as_int "term op id" oid) in
        let args = List.map (fun a -> store_get terms (as_int "term arg id" a)) args in
        store_add terms id (A (o, args))
      | _ -> bad "terms: malformed entry"
    in
    let dec_rule = function
      | Sexp.List (Sexp.Atom "rule" :: id :: label :: lhs :: rhs :: rest) ->
        let id = as_int "rule id" id in
        let cond =
          match rest with
          | [] -> None
          | [ c ] -> Some (store_get terms (as_int "rule cond id" c))
          | _ -> bad "rule %d: too many fields" id
        in
        store_add rules id
          {
            r_label = as_atom "rule label" label;
            r_lhs = store_get terms (as_int "rule lhs id" lhs);
            r_rhs = store_get terms (as_int "rule rhs id" rhs);
            r_cond = cond;
          }
      | _ -> bad "rules: malformed entry"
    in
    let dec_rset = function
      | Sexp.List (Sexp.Atom "rs" :: id :: parent :: rids) ->
        let id = as_int "rset id" id in
        let parent =
          match as_int "rset parent" parent with
          | -1 -> None
          | p -> Some (store_get rsets p)
        in
        let rs_rules =
          List.map (fun r -> store_get rules (as_int "rset rule id" r)) rids
        in
        store_add rsets id { rs_parent = parent; rs_rules }
      | _ -> bad "rsets: malformed entry"
    in
    let dec_step = function
      | Sexp.List (Sexp.Atom "step" :: rid :: Sexp.List (Sexp.Atom "sub" :: binds) :: rest) ->
        let s_rule = store_get rules (as_int "step rule id" rid) in
        let s_sub =
          List.map
            (function
              | Sexp.List [ n; s; tid ] ->
                ( as_atom "binding var" n,
                  as_atom "binding sort" s,
                  store_get terms (as_int "binding term id" tid) )
              | _ -> bad "step: malformed binding")
            binds
        in
        let s_cond, rest =
          match rest with
          | Sexp.List [ Sexp.Atom "cond"; did ] :: rest ->
            (Some (store_get derivs (as_int "cond deriv id" did)), rest)
          | _ -> (None, rest)
        in
        let s_next =
          match rest with
          | [ nid ] -> store_get derivs (as_int "step next deriv id" nid)
          | _ -> bad "step: malformed tail"
        in
        { s_rule; s_sub; s_cond; s_next }
      | _ -> bad "step: malformed"
    in
    let dec_deriv = function
      | Sexp.List [ Sexp.Atom "d"; id; Sexp.Atom "triv"; tid ] ->
        let id = as_int "deriv id" id in
        let t = store_get terms (as_int "deriv term id" tid) in
        store_add derivs id { d_in = t; d_out = t; d_node = Triv }
      | Sexp.List
          (Sexp.Atom "d" :: id :: Sexp.Atom "app" :: iid :: oid :: Sexp.List cids :: rest)
        ->
        let id = as_int "deriv id" id in
        let d_in = store_get terms (as_int "deriv input id" iid) in
        let d_out = store_get terms (as_int "deriv output id" oid) in
        let children =
          List.map (fun c -> store_get derivs (as_int "child deriv id" c)) cids
        in
        let perm, rest =
          match rest with
          | Sexp.List (Sexp.Atom "perm" :: ps) :: rest ->
            (Some (List.map (as_int "perm index") ps), rest)
          | _ -> (None, rest)
        in
        let step =
          match rest with [] -> None | [ s ] -> Some (dec_step s) | _ -> bad "deriv %d: malformed" id
        in
        store_add derivs id { d_in; d_out; d_node = App { children; perm; step } }
      | _ -> bad "derivs: malformed entry"
    in
    let dec_red = function
      | Sexp.List [ Sexp.Atom "red"; name; rsid; iid; oid; did ] ->
        reds :=
          {
            red_name = as_atom "red name" name;
            red_rset = store_get rsets (as_int "red rset id" rsid);
            red_in = store_get terms (as_int "red input id" iid);
            red_out = store_get terms (as_int "red output id" oid);
            red_deriv = store_get derivs (as_int "red deriv id" did);
          }
          :: !reds
      | _ -> bad "reds: malformed entry"
    in
    let dec_lpo = function
      | [ Sexp.List (Sexp.Atom "prec" :: ps); Sexp.List (Sexp.Atom "rules" :: rs) ] ->
        lpo :=
          Some
            {
              lpo_prec = List.map (fun p -> store_get ops (as_int "prec op id" p)) ps;
              lpo_rules =
                List.map (fun r -> store_get rules (as_int "lpo rule id" r)) rs;
            }
      | _ -> bad "lpo: malformed section"
    in
    let rec dec_jcert = function
      | Sexp.List [ Sexp.Atom "j"; l; r; tail ] ->
        let jc_left = store_get derivs (as_int "join left deriv id" l) in
        let jc_right = store_get derivs (as_int "join right deriv id" r) in
        let jc_tail =
          match tail with
          | Sexp.Atom "syn" -> Jsyn
          | Sexp.Atom "ring" -> Jring
          | Sexp.List [ Sexp.Atom "split"; c; jt; jf ] ->
            Jsplit
              ( store_get terms (as_int "split cond id" c),
                dec_jcert jt,
                dec_jcert jf )
          | _ -> bad "join: malformed tail"
        in
        { jc_left; jc_right; jc_tail }
      | _ -> bad "join: malformed certificate"
    in
    let dec_join = function
      | Sexp.List [ Sexp.Atom "join"; label; rsid; peak; left; right; jc ] ->
        joins :=
          {
            j_label = as_atom "join label" label;
            j_rset = store_get rsets (as_int "join rset id" rsid);
            j_peak = store_get terms (as_int "join peak id" peak);
            j_left = store_get terms (as_int "join left id" left);
            j_right = store_get terms (as_int "join right id" right);
            j_cert = dec_jcert jc;
          }
          :: !joins
      | _ -> bad "joins: malformed entry"
    in
    List.iter
      (function
        | Sexp.List [ Sexp.Atom "version"; v ] ->
          let v = as_int "version" v in
          if v <> 1 then bad "unsupported certificate version %d" v
        | Sexp.List (Sexp.Atom "ops" :: es) -> List.iter dec_op es
        | Sexp.List (Sexp.Atom "terms" :: es) -> List.iter dec_term es
        | Sexp.List (Sexp.Atom "rules" :: es) -> List.iter dec_rule es
        | Sexp.List (Sexp.Atom "rsets" :: es) -> List.iter dec_rset es
        | Sexp.List (Sexp.Atom "derivs" :: es) -> List.iter dec_deriv es
        | Sexp.List (Sexp.Atom "reds" :: es) -> List.iter dec_red es
        | Sexp.List (Sexp.Atom "lpo" :: es) -> dec_lpo es
        | Sexp.List (Sexp.Atom "joins" :: es) -> List.iter dec_join es
        | _ -> bad "certificate: unknown section")
      sections;
    Ok { reds = List.rev !reds; lpo = !lpo; joins = List.rev !joins }
  with Bad msg -> Error msg

let of_string s =
  match Sexp.parse_one s with
  | Error e -> Error e
  | Ok sx -> of_sexp sx

(* ------------------------------------------------------------------ *)
(* Structural equality (round-trip tests) *)

let rec term_equal a b =
  a == b
  ||
  match a, b with
  | V a, V b -> String.equal a.v_name b.v_name && String.equal a.v_sort b.v_sort
  | A (oa, aa), A (ob, ab) ->
    op_equal oa ob
    && List.length aa = List.length ab
    && List.for_all2 term_equal aa ab
  | _ -> false

and op_equal a b =
  a == b
  || String.equal a.op_name b.op_name
     && a.op_arity = b.op_arity && String.equal a.op_sort b.op_sort
     && a.op_flags = b.op_flags

let rule_equal a b =
  a == b
  || String.equal a.r_label b.r_label
     && term_equal a.r_lhs b.r_lhs && term_equal a.r_rhs b.r_rhs
     && Option.equal term_equal a.r_cond b.r_cond

let rec rset_equal a b =
  a == b
  || Option.equal rset_equal a.rs_parent b.rs_parent
     && List.length a.rs_rules = List.length b.rs_rules
     && List.for_all2 rule_equal a.rs_rules b.rs_rules

let rec deriv_equal a b =
  a == b
  || term_equal a.d_in b.d_in && term_equal a.d_out b.d_out
     &&
     match a.d_node, b.d_node with
     | Triv, Triv -> true
     | App a, App b ->
       List.length a.children = List.length b.children
       && List.for_all2 deriv_equal a.children b.children
       && a.perm = b.perm
       && Option.equal step_equal a.step b.step
     | _ -> false

and step_equal a b =
  rule_equal a.s_rule b.s_rule
  && List.length a.s_sub = List.length b.s_sub
  && List.for_all2
       (fun (n1, s1, t1) (n2, s2, t2) ->
         String.equal n1 n2 && String.equal s1 s2 && term_equal t1 t2)
       a.s_sub b.s_sub
  && Option.equal deriv_equal a.s_cond b.s_cond
  && deriv_equal a.s_next b.s_next

let red_equal a b =
  String.equal a.red_name b.red_name
  && rset_equal a.red_rset b.red_rset
  && term_equal a.red_in b.red_in
  && term_equal a.red_out b.red_out
  && deriv_equal a.red_deriv b.red_deriv

let lpo_equal a b =
  List.length a.lpo_prec = List.length b.lpo_prec
  && List.for_all2 op_equal a.lpo_prec b.lpo_prec
  && List.length a.lpo_rules = List.length b.lpo_rules
  && List.for_all2 rule_equal a.lpo_rules b.lpo_rules

let rec jcert_equal a b =
  deriv_equal a.jc_left b.jc_left
  && deriv_equal a.jc_right b.jc_right
  &&
  match a.jc_tail, b.jc_tail with
  | Jsyn, Jsyn | Jring, Jring -> true
  | Jsplit (c1, t1, f1), Jsplit (c2, t2, f2) ->
    term_equal c1 c2 && jcert_equal t1 t2 && jcert_equal f1 f2
  | _ -> false

let join_equal a b =
  String.equal a.j_label b.j_label
  && rset_equal a.j_rset b.j_rset
  && term_equal a.j_peak b.j_peak
  && term_equal a.j_left b.j_left
  && term_equal a.j_right b.j_right
  && jcert_equal a.j_cert b.j_cert

let equal a b =
  List.length a.reds = List.length b.reds
  && List.for_all2 red_equal a.reds b.reds
  && Option.equal lpo_equal a.lpo b.lpo
  && List.length a.joins = List.length b.joins
  && List.for_all2 join_equal a.joins b.joins
