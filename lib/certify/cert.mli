(** Proof-certificate AST and its S-expression wire format.

    A certificate packages three kinds of obligations emitted by the
    rewriting engine, each independently replayable by {!Check}:

    - {b reds} — every [red] performed by a proof score: the input term,
      the claimed result, and a derivation recording each rule application
      (rule, matching substitution, condition discharge, AC permutation);
    - {b lpo} — the termination certificate: an operator precedence under
      which every listed rule orients left-to-right in the lexicographic
      path order;
    - {b joins} — one certificate per critical pair: how both sides of the
      divergence reduce and how the reducts were reconciled.

    {2 Grammar}

    Atoms are bare symbols or ["double-quoted"] strings; [;] comments run
    to end of line; [ID]s are non-negative integers.  Every reference
    points to an {e earlier} entry of the relevant table, so certificates
    are acyclic by construction.

    {v
cert  ::= (eqcert (version 1)
            (ops OP ...) (terms TM ...) (rules RULE ...) (rsets RS ...)
            (derivs DV ...) (reds RED ...) LPO? (joins JOIN ...))
OP    ::= (op ID NAME (SORT ...) SORT FLAG ...)  ; arity sorts, result sort
FLAG  ::= ac | comm | tt | ff | not | and | or | xor | implies | iff | if | eq
TM    ::= (t ID v NAME SORT)                     ; variable
        | (t ID a OPID TID ...)                  ; application
RULE  ::= (rule ID LABEL LHS-TID RHS-TID COND-TID?)
RS    ::= (rs ID PARENT RULEID ...)              ; PARENT = rs ID or -1
DV    ::= (d ID triv TID)                        ; zero-step: in = out
        | (d ID app IN-TID OUT-TID (CHILD-DID ...) PERM? STEP?)
PERM  ::= (perm INT ...)                         ; AC/Comm argument permutation
STEP  ::= (step RULEID (sub BIND ...) COND? NEXT-DID)
BIND  ::= (VNAME VSORT TID)
COND  ::= (cond DID)                             ; discharge down to true
RED   ::= (red NAME RSID IN-TID OUT-TID DID)
LPO   ::= (lpo (prec OPID ...) (rules RULEID ...)) ; prec: later = greater
JOIN  ::= (join LABEL RSID PEAK-TID LEFT-TID RIGHT-TID JC)
JC    ::= (j LDID RDID TAIL)
TAIL  ::= syn | ring | (split COND-TID JC JC)
    v}

    The encoder hash-conses every node into the id tables, so the format is
    DAG-compact: a sub-derivation shared by a thousand obligations is
    serialized once. *)

type flag = Ac | Comm | Tt | Ff | Not | And | Or | Xor | Implies | Iff | If | Eq

type op = {
  op_name : string;
  op_arity : string list;  (** argument sorts *)
  op_sort : string;  (** result sort *)
  op_flags : flag list;
      (** [Ac]/[Comm] attributes plus builtin roles ([Tt] … [Eq]) the
          checker's boolean ring needs to interpret *)
}

type term = V of { v_name : string; v_sort : string } | A of op * term list

type rule = { r_label : string; r_lhs : term; r_rhs : term; r_cond : term option }

(** The rules available to a derivation: a base set plus the branch-local
    assumption rules each proof passage added ([rs_parent] chains mirror
    [Rewrite.extend]). *)
type rset = { rs_parent : rset option; rs_rules : rule list }

type deriv = { d_in : term; d_out : term; d_node : dnode }

and dnode =
  | Triv  (** zero steps; [d_in == d_out] *)
  | App of { children : deriv list; perm : int list option; step : step option }

and step = {
  s_rule : rule;
  s_sub : (string * string * term) list;  (** (var name, var sort, image) *)
  s_cond : deriv option;
  s_next : deriv;
}

type red = {
  red_name : string;
  red_rset : rset;
  red_in : term;
  red_out : term;
  red_deriv : deriv;
}

type lpo = { lpo_prec : op list; lpo_rules : rule list }

type jtail = Jsyn | Jring | Jsplit of term * jcert * jcert
and jcert = { jc_left : deriv; jc_right : deriv; jc_tail : jtail }

type join = {
  j_label : string;
  j_rset : rset;  (** the rule set both sides may reduce under *)
  j_peak : term;
  j_left : term;
  j_right : term;
  j_cert : jcert;
}

type t = { reds : red list; lpo : lpo option; joins : join list }

val to_sexp : t -> Sexp.t
val to_string : t -> string
val of_sexp : Sexp.t -> (t, string) result
val of_string : string -> (t, string) result

(** Structural equality (ignores sharing); for round-trip tests. *)
val equal : t -> t -> bool

val term_equal : term -> term -> bool
val op_equal : op -> op -> bool
val rule_equal : rule -> rule -> bool
val deriv_equal : deriv -> deriv -> bool
