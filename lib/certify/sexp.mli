(** Minimal S-expressions for the certificate format.

    Atoms print bare when they contain only symbol-safe characters and are
    double-quoted (with [\\]-escapes) otherwise; [;] starts a comment to end
    of line.  Part of the trusted checker: no dependencies, ~150 lines. *)

type t = Atom of string | List of t list

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit

(** [parse_string s] reads every toplevel s-expression in [s]; errors carry
    [line:col] positions. *)
val parse_string : string -> (t list, string) result

(** [parse_one s] expects exactly one toplevel s-expression. *)
val parse_one : string -> (t, string) result
