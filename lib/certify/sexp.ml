type t = Atom of string | List of t list

(* ------------------------------------------------------------------ *)
(* Printing *)

let bare_re c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  (* [;] is deliberately absent: it starts a comment, so an atom containing
     it must print quoted to round-trip. *)
  | '-' | '_' | '.' | ':' | '/' | '#' | '+' | '*' | '=' | '<' | '>' | '!'
  | '?' | '@' | '$' | '%' | '^' | '&' | '~' | '\'' | ',' | '[' | ']' | '{'
  | '}' | '|' ->
    true
  | _ -> false

let is_bare s = s <> "" && String.for_all bare_re s

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Atom s -> if is_bare s then Buffer.add_string buf s else escape buf s
  | List xs ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ' ';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ')'

let to_string x =
  let buf = Buffer.create 1024 in
  to_buffer buf x;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing *)

type pos = { line : int; col : int }

exception Parse_error of pos * string

let error line col msg = raise (Parse_error ({ line; col }, msg))

(* A hand-rolled recursive-descent reader with line/column tracking.  Kept
   deliberately small: this file is part of the trusted checker. *)
let parse_many s =
  let n = String.length s in
  let i = ref 0 in
  let line = ref 1 in
  let col = ref 1 in
  let advance () =
    (if !i < n then
       match s.[!i] with
       | '\n' ->
         incr line;
         col := 1
       | _ -> incr col);
    incr i
  in
  let peek () = if !i < n then Some s.[!i] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some ';' ->
      (* comment to end of line *)
      let rec to_eol () =
        match peek () with
        | Some '\n' | None -> ()
        | Some _ ->
          advance ();
          to_eol ()
      in
      to_eol ();
      skip_ws ()
    | _ -> ()
  in
  let read_quoted () =
    let l0 = !line and c0 = !col in
    advance () (* opening quote *);
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error l0 c0 "unterminated string"
      | Some '"' ->
        advance ();
        Buffer.contents buf
      | Some '\\' -> (
        advance ();
        match peek () with
        | None -> error l0 c0 "unterminated escape"
        | Some c ->
          advance ();
          Buffer.add_char buf
            (match c with 'n' -> '\n' | 't' -> '\t' | c -> c);
          go ())
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let read_bare () =
    let start = !i in
    let rec go () =
      match peek () with
      | Some c when bare_re c ->
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    String.sub s start (!i - start)
  in
  let rec read_one () =
    skip_ws ();
    match peek () with
    | None -> error !line !col "unexpected end of input"
    | Some '(' ->
      let l0 = !line and c0 = !col in
      advance ();
      let rec items acc =
        skip_ws ();
        match peek () with
        | None -> error l0 c0 "unclosed parenthesis"
        | Some ')' ->
          advance ();
          List (List.rev acc)
        | Some _ -> items (read_one () :: acc)
      in
      items []
    | Some ')' -> error !line !col "unexpected ')'"
    | Some '"' -> Atom (read_quoted ())
    | Some c when bare_re c -> Atom (read_bare ())
    | Some c -> error !line !col (Printf.sprintf "unexpected character %C" c)
  in
  let rec top acc =
    skip_ws ();
    match peek () with
    | None -> List.rev acc
    | Some _ -> top (read_one () :: acc)
  in
  top []

let parse_string s =
  match parse_many s with
  | exception Parse_error (p, msg) ->
    Error (Printf.sprintf "parse error at %d:%d: %s" p.line p.col msg)
  | xs -> Ok xs

let parse_one s =
  match parse_string s with
  | Error _ as e -> e
  | Ok [ x ] -> Ok x
  | Ok xs -> Error (Printf.sprintf "expected one s-expression, got %d" (List.length xs))
