module M = Map.Make (struct
  type t = Term.var

  let compare (v1 : Term.var) (v2 : Term.var) =
    let c = String.compare v1.v_name v2.v_name in
    if c <> 0 then c else Sort.compare v1.v_sort v2.v_sort
end)

type t = Term.t M.t

let empty = M.empty
let is_empty = M.is_empty

let bind sub (v : Term.var) t =
  if not (Sort.equal v.v_sort (Term.sort t)) then
    invalid_arg
      (Printf.sprintf "Subst.bind: %s:%s := term of sort %s" v.v_name
         v.v_sort.Sort.name (Term.sort t).Sort.name);
  match M.find_opt v sub with
  | Some t' when not (Term.equal t t') ->
    invalid_arg (Printf.sprintf "Subst.bind: %s bound twice" v.v_name)
  | _ -> M.add v t sub

let find sub v = M.find_opt v sub
let of_list bindings = List.fold_left (fun s (v, t) -> bind s v t) empty bindings
let bindings sub = M.bindings sub

let rec apply sub t =
  (* Ground terms and unchanged applications come back physically intact —
     with interning this keeps substitution allocation-free off the spine
     of the redex. *)
  if Term.is_ground t then t
  else
    match Term.view t with
    | Term.Var v -> ( match M.find_opt v sub with Some t' -> t' | None -> t)
    | Term.App (o, args) ->
      let args' = List.map (apply sub) args in
      if List.for_all2 ( == ) args args' then t else Term.app_unchecked o args'

let domain sub = List.map fst (M.bindings sub)

let pp ppf sub =
  let pp_binding ppf ((v : Term.var), t) =
    Format.fprintf ppf "%s := %a" v.v_name Term.pp t
  in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_binding)
    (M.bindings sub)
