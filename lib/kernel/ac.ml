(* Backtracking effort of the AC matcher: one bump per candidate placement
   of a rigid pattern and per sub-multiset assignment to a variable
   pattern.  A hot counter here is how the hotspot report shows when AC
   search (not plain rewriting) dominates a red. *)
let c_backtracks = Telemetry.Probe.counter "kernel.ac.backtracks"

let rec flatten op t =
  match Term.view t with
  | Term.App (o, [ l; r ]) when Signature.op_equal o op ->
    flatten op l @ flatten op r
  | Term.App _ | Term.Var _ -> [ t ]

let rebuild op args =
  match List.rev args with
  | [] -> invalid_arg "Ac.rebuild: empty argument list"
  | last :: rest ->
    List.fold_left (fun acc t -> Term.app_unchecked op [ t; acc ]) last rest

let rec normalize t =
  (* Interned terms carry their canonicity: the common already-canonical
     case is a single flag read (the [canonical] field is computed at
     intern time to agree with this function). *)
  if Term.ac_canonical t then t
  else
    match Term.view t with
    | Term.Var _ -> t
    | Term.App (o, [ _; _ ]) when Signature.is_ac o ->
      let args = flatten o t |> List.map normalize |> List.sort Term.ac_compare in
      rebuild o args
    | Term.App (o, [ a; b ]) when Signature.is_comm o ->
      let a = normalize a and b = normalize b in
      if Term.ac_compare a b <= 0 then Term.app_unchecked o [ a; b ]
      else Term.app_unchecked o [ b; a ]
    | Term.App (o, args) -> Term.app_unchecked o (List.map normalize args)

let ac_equal t1 t2 = Term.equal (normalize t1) (normalize t2)

(* AC matching by backtracking over multiset assignments.

   [select xs] enumerates ways to pick one element out of [xs], returning the
   element and the remainder. *)
let select xs =
  let rec go before = function
    | [] -> []
    | x :: after -> (x, List.rev_append before after) :: go (x :: before) after
  in
  go [] xs

(* Enumerate the non-empty sub-multisets of [xs] as (subset, rest). *)
let rec submultisets = function
  | [] -> [ [], [] ]
  | x :: xs ->
    List.concat_map
      (fun (inside, outside) -> [ x :: inside, outside; inside, x :: outside ])
      (submultisets xs)

let nonempty_submultisets xs =
  List.filter (fun (inside, _) -> inside <> []) (submultisets xs)

let rec match_term sub pat subject k =
  match Term.view pat, Term.view subject with
  | Term.Var v, _ -> (
    if not (Sort.equal v.Term.v_sort (Term.sort subject)) then []
    else
      match Subst.find sub v with
      | Some t -> if ac_equal t subject then k sub else []
      | None -> k (Subst.bind sub v subject))
  | Term.App (po, _), Term.App (so, _)
    when Signature.is_ac po && Signature.op_equal po so ->
    match_ac sub po (flatten po pat) (flatten so subject) k
  | Term.App (po, [ p1; p2 ]), Term.App (so, [ s1; s2 ])
    when Signature.is_comm po && Signature.op_equal po so ->
    match_list sub [ p1; p2 ] [ s1; s2 ] k
    @ match_list sub [ p1; p2 ] [ s2; s1 ] k
  | Term.App (po, pargs), Term.App (so, sargs)
    when Signature.op_equal po so && List.length pargs = List.length sargs ->
    match_list sub pargs sargs k
  | Term.App _, (Term.App _ | Term.Var _) -> []

and match_list sub pats subjects k =
  match pats, subjects with
  | [], [] -> k sub
  | p :: ps, s :: ss ->
    match_term sub p s (fun sub' -> match_list sub' ps ss k)
  | _, _ -> []

and match_ac sub op pats subjects k =
  (* Match rigid (non-variable) patterns first, then distribute the leftover
     subject arguments among the variable patterns. *)
  let rigid, flex =
    List.partition
      (fun p -> match Term.view p with Term.Var _ -> false | Term.App _ -> true)
      pats
  in
  let rec place_rigid sub rigid remaining k =
    match rigid with
    | [] -> distribute sub flex remaining k
    | p :: ps ->
      List.concat_map
        (fun (s, rest) ->
          Telemetry.Probe.incr c_backtracks;
          match_term sub p s (fun sub' -> place_rigid sub' ps rest k))
        (select remaining)
  and distribute sub flex remaining k =
    match flex with
    | [] -> if remaining = [] then k sub else []
    | [ v ] -> bind_var sub v remaining k
    | v :: vs ->
      List.concat_map
        (fun (inside, outside) ->
          Telemetry.Probe.incr c_backtracks;
          bind_var sub v inside (fun sub' -> distribute sub' vs outside k))
        (nonempty_submultisets remaining)
  and bind_var sub v pieces k =
    match pieces with
    | [] -> []
    | _ ->
      let value = normalize (rebuild op pieces) in
      match_term sub v value k
  in
  if List.length pats > List.length subjects then []
  else place_rigid sub rigid subjects k

let dedup subs =
  let key sub =
    List.map
      (fun ((v : Term.var), t) -> v.v_name, Term.id (normalize t))
      (Subst.bindings sub)
  in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun sub ->
      let k = key sub in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    subs

let match_ pat subject =
  dedup (match_term Subst.empty (normalize pat) (normalize subject) (fun s -> [ s ]))

let match_first pat subject =
  match match_ pat subject with [] -> None | s :: _ -> Some s
