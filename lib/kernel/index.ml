module Probe = Telemetry.Probe

(* A tree edge symbol: operator name plus argument count.  [Signature]
   keeps names unique per signature and [op_equal] is name equality, so
   agreeing on (name, argc) is implied by any successful match — filtering
   on it can only exclude rules the matcher would reject anyway. *)
type sym = { y_name : string; y_arity : int }

let sym_of o args = { y_name = o.Signature.name; y_arity = List.length args }
let sym_equal a b = a.y_arity = b.y_arity && String.equal a.y_name b.y_name

(* ------------------------------------------------------------------ *)
(* Discrimination tree over pre-order symbol strings.                  *)
(* ------------------------------------------------------------------ *)

type node = {
  mutable n_succ : (sym * node) list;  (* symbol edges, small fanout *)
  mutable n_star : node option;  (* the pattern-variable edge *)
  mutable n_leaf : int list;  (* entry slots ending here, ascending *)
}

let new_node () = { n_succ = []; n_star = None; n_leaf = [] }

type path_elt = Psym of sym | Pstar

(* Pre-order serialization of a pattern.  A variable is a wildcard that
   consumes one whole subject subterm.  Below an AC or Comm operator the
   matcher tries argument permutations, so a fixed child order must not be
   compiled in: the root symbol is kept (a match still needs the same
   operator there) and every child becomes a wildcard. *)
let rec serialize t acc =
  match Term.view t with
  | Term.Var _ -> Pstar :: acc
  | Term.App (o, args) ->
    let s = Psym (sym_of o args) in
    if Signature.is_ac o || Signature.is_comm o then
      s :: List.fold_left (fun acc _ -> Pstar :: acc) acc args
    else s :: List.fold_right serialize args acc

let insert root path slot =
  let rec go node = function
    | [] -> node.n_leaf <- node.n_leaf @ [ slot ]
    | Pstar :: rest ->
      let child =
        match node.n_star with
        | Some c -> c
        | None ->
          let c = new_node () in
          node.n_star <- Some c;
          c
      in
      go child rest
    | Psym s :: rest ->
      let child =
        match List.find_opt (fun (s', _) -> sym_equal s s') node.n_succ with
        | Some (_, c) -> c
        | None ->
          let c = new_node () in
          node.n_succ <- node.n_succ @ [ (s, c) ];
          c
      in
      go child rest
  in
  go root path

(* Retrieval: walk the subject pre-order against the tree.  A wildcard
   edge skips the whole subterm at the head of the stack; a symbol edge
   requires the subject's root there to carry the same name and argument
   count and descends into its children.  A [Var] {e subject} can only go
   through wildcard edges — a non-variable pattern position never matches
   a subject variable. *)
let query_tree root subject =
  let hits = ref [] in
  let rec walk node stack =
    match stack with
    | [] -> if node.n_leaf <> [] then hits := node.n_leaf :: !hits
    | t :: rest -> (
      (match node.n_star with Some c -> walk c rest | None -> ());
      match Term.view t with
      | Term.Var _ -> ()
      | Term.App (o, args) ->
        let s = sym_of o args in
        List.iter
          (fun (s', c) -> if sym_equal s s' then walk c (args @ rest))
          node.n_succ)
  in
  walk root [ subject ];
  match !hits with
  | [] -> []
  | [ one ] -> one
  | many -> List.sort_uniq compare (List.concat many)

(* ------------------------------------------------------------------ *)
(* AC buckets: flattened-argument multiset profiles.                   *)
(* ------------------------------------------------------------------ *)

type prof = {
  p_len : int;  (* flattened arguments of the pattern *)
  p_vars : int;  (* of which variables *)
  p_rigid : (sym * int) list;  (* root-symbol multiset of the rigid ones *)
}

let profile op lhs =
  let args = Ac.flatten op lhs in
  let vars, rigid =
    List.partition
      (fun a -> match Term.view a with Term.Var _ -> true | Term.App _ -> false)
      args
  in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun a ->
      match Term.view a with
      | Term.App (o, aa) ->
        let s = sym_of o aa in
        Hashtbl.replace counts s
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts s))
      | Term.Var _ -> assert false)
    rigid;
  {
    p_len = List.length args;
    p_vars = List.length vars;
    p_rigid = Hashtbl.fold (fun s c acc -> (s, c) :: acc) counts [];
  }

(* The never-miss pre-condition of [Ac.match_]: each rigid pattern
   argument consumes exactly one subject argument with the same root
   symbol, each variable pattern argument consumes at least one subject
   argument, and with no variables everything must be consumed.  Profiles
   ignore argument order entirely, so AC canonicalization of the subject
   cannot change the verdict. *)
let compat prof ~slen counts =
  prof.p_len <= slen
  && (prof.p_vars > 0 || prof.p_len = slen)
  && List.for_all
       (fun (s, c) ->
         match Hashtbl.find_opt counts s with Some n -> n >= c | None -> false)
       prof.p_rigid

let query_ac profs subject =
  match Term.view subject with
  | Term.Var _ -> []
  | Term.App (o, _) ->
    let args = Ac.flatten o subject in
    let slen = List.length args in
    let counts = Hashtbl.create 8 in
    List.iter
      (fun a ->
        match Term.view a with
        | Term.Var _ -> ()
        | Term.App (oo, aa) ->
          let s = sym_of oo aa in
          Hashtbl.replace counts s
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts s)))
      args;
    let hits = ref [] in
    Array.iteri
      (fun slot prof -> if compat prof ~slen counts then hits := slot :: !hits)
      profs;
    List.rev !hits

(* ------------------------------------------------------------------ *)
(* Buckets and the index proper.                                       *)
(* ------------------------------------------------------------------ *)

type kind =
  | Tree of node
  | Acb of prof array  (* aligned with [b_items] *)
  | Opaque  (* heterogeneous head operators: no filtering, full bucket *)

type 'a bucket = { b_items : ('a * Term.t) array; b_kind : kind }

type 'a t = {
  i_buckets : (string, 'a bucket) Hashtbl.t;
  i_rules : int;
  i_gen : int;
  mutable i_ok : bool;
}

(* Process-wide accounting, same pattern as the memo's per-system atomics:
   always-on atomics are the source of truth, the Probe counters mirror
   them for profiled runs (one flag read when the probe is off). *)
let s_queries = Atomic.make 0
let s_hits = Atomic.make 0
let s_filtered = Atomic.make 0
let s_fallbacks = Atomic.make 0
let c_hits = Probe.counter "kernel.index.hits"
let c_filtered = Probe.counter "kernel.index.filtered"
let c_fallbacks = Probe.counter "kernel.index.fallbacks"

type stats = { queries : int; hits : int; filtered : int; fallbacks : int }

let stats () =
  {
    queries = Atomic.get s_queries;
    hits = Atomic.get s_hits;
    filtered = Atomic.get s_filtered;
    fallbacks = Atomic.get s_fallbacks;
  }

let reset_stats () =
  Atomic.set s_queries 0;
  Atomic.set s_hits 0;
  Atomic.set s_filtered 0;
  Atomic.set s_fallbacks 0

let note_fallback n =
  ignore n;
  Atomic.incr s_fallbacks;
  Probe.incr c_fallbacks

let head_of lhs =
  match Term.view lhs with
  | Term.App (o, _) -> o
  | Term.Var _ -> invalid_arg "Index.build: variable left-hand side"

let build ?(gen = 0) ~lhs entries =
  let order = Hashtbl.create 32 in
  (* group by head name, preserving entry order within each group *)
  List.iter
    (fun e ->
      let name = (head_of (lhs e)).Signature.name in
      let prev = Option.value ~default:[] (Hashtbl.find_opt order name) in
      Hashtbl.replace order name (e :: prev))
    entries;
  let buckets = Hashtbl.create 32 in
  Hashtbl.iter
    (fun name rev_group ->
      let group = List.rev rev_group in
      let items = Array.of_list (List.map (fun e -> (e, lhs e)) group) in
      let heads = Array.map (fun (_, l) -> head_of l) items in
      let all_ac = Array.for_all Signature.is_ac heads in
      let no_ac =
        Array.for_all (fun o -> not (Signature.is_ac o)) heads
      in
      let kind =
        if all_ac then
          Acb (Array.map (fun (_, l) -> profile (head_of l) l) items)
        else if no_ac then begin
          let root = new_node () in
          Array.iteri
            (fun slot (_, l) -> insert root (serialize l []) slot)
            items;
          Tree root
        end
        else Opaque
      in
      Hashtbl.replace buckets name { b_items = items; b_kind = kind })
    order;
  { i_buckets = buckets; i_rules = List.length entries; i_gen = gen; i_ok = true }

(* Candidate slots for [subject] in [b], without accounting — shared by the
   public query and by [validate]'s self-retrieval replay. *)
let bucket_slots b subject =
  match b.b_kind with
  | Tree root -> query_tree root subject
  | Acb profs -> query_ac profs subject
  | Opaque -> List.init (Array.length b.b_items) Fun.id

let full_bucket b = Array.to_list (Array.map fst b.b_items)

let candidates t subject =
  match Term.view subject with
  | Term.Var _ -> []
  | Term.App (o, _) -> (
    match Hashtbl.find_opt t.i_buckets o.Signature.name with
    | None -> []
    | Some b when not t.i_ok ->
      Atomic.incr s_fallbacks;
      Probe.incr c_fallbacks;
      full_bucket b
    | Some b ->
      let slots = bucket_slots b subject in
      let n = Array.length b.b_items in
      let k = List.length slots in
      Atomic.incr s_queries;
      ignore (Atomic.fetch_and_add s_hits k);
      ignore (Atomic.fetch_and_add s_filtered (n - k));
      Probe.add c_hits k;
      Probe.add c_filtered (n - k);
      List.map (fun slot -> fst b.b_items.(slot)) slots)

let ok t = t.i_ok

let validate t =
  let failure = ref None in
  Hashtbl.iter
    (fun name b ->
      if !failure = None then
        Array.iteri
          (fun slot (_, l) ->
            if !failure = None && not (List.mem slot (bucket_slots b l)) then
              failure :=
                Some
                  (Printf.sprintf
                     "bucket %s: slot %d not retrieved by its own lhs %s" name
                     slot (Term.to_string l)))
          b.b_items)
    t.i_buckets;
  match !failure with
  | None -> Ok ()
  | Some msg ->
    t.i_ok <- false;
    Error msg

type info = {
  ix_rules : int;
  ix_buckets : int;
  ix_ac_buckets : int;
  ix_generation : int;
  ix_ok : bool;
}

let info t =
  let ac =
    Hashtbl.fold
      (fun _ b acc -> match b.b_kind with Acb _ -> acc + 1 | _ -> acc)
      t.i_buckets 0
  in
  {
    ix_rules = t.i_rules;
    ix_buckets = Hashtbl.length t.i_buckets;
    ix_ac_buckets = ac;
    ix_generation = t.i_gen;
    ix_ok = t.i_ok;
  }

let unsafe_drop_slot t ~bucket ~slot =
  match Hashtbl.find_opt t.i_buckets bucket with
  | None -> false
  | Some b -> (
    if slot < 0 || slot >= Array.length b.b_items then false
    else
      match b.b_kind with
      | Opaque -> false
      | Acb profs ->
        (* a profile its own lhs cannot satisfy: demands one more
           flattened argument than exists, with no variables to absorb
           the mismatch *)
        let p = profs.(slot) in
        profs.(slot) <- { p with p_len = p.p_len + 1; p_vars = 0 };
        true
      | Tree root ->
        let dropped = ref false in
        let rec scrub node =
          if List.mem slot node.n_leaf then begin
            node.n_leaf <- List.filter (fun s -> s <> slot) node.n_leaf;
            dropped := true
          end;
          (match node.n_star with Some c -> scrub c | None -> ());
          List.iter (fun (_, c) -> scrub c) node.n_succ
        in
        scrub root;
        !dropped)
