(** First-order terms over an order-sorted signature, with maximal sharing.

    A term is either a sorted variable or the application of an operator to
    argument terms (constants are nullary applications).  Terms are the
    universal currency of the kernel: protocol states, messages, boolean
    formulas and proof goals are all terms.

    Terms are hash-consed: every structurally distinct term is interned
    exactly once in a domain-safe table, so structural equality coincides
    with pointer equality, {!compare} is a constant-time id comparison, and
    {!hash}, {!size}, {!depth}, {!is_ground} and {!ac_canonical} are
    precomputed at construction.  Pattern-match on terms through {!view}. *)

type var = { v_name : string; v_sort : Sort.t }

type t = private {
  node : node;
  id : int;  (** unique per structurally-distinct term, process-wide *)
  hash : int;  (** structural hash, stable across processes *)
  term_size : int;
  term_depth : int;
  ground : bool;
  canonical : bool;  (** the term is its own AC/Comm canonical form *)
}

and node =
  | Var of var
  | App of Signature.op * t list

(** [view t] is [t]'s top node, for pattern matching:
    [match Term.view t with Term.Var v -> ... | Term.App (o, args) -> ...]. *)
val view : t -> node

(** {1 Construction} *)

(** [var name sort] builds (interns) a variable. *)
val var : string -> Sort.t -> t

(** [app op args] builds an application.
    @raise Invalid_argument if the number of arguments does not match the
    operator's arity (sorts of the arguments are checked too). *)
val app : Signature.op -> t list -> t

(** [app_unchecked op args] interns an application without re-validating
    arity or argument sorts.  For kernel internals (substitution, AC
    rebuilds, rewriting) reassembling nodes from already-checked pieces. *)
val app_unchecked : Signature.op -> t list -> t

(** [const op] is [app op []]. *)
val const : Signature.op -> t

(** {1 Builtin sugar} *)

val tt : t
val ff : t
val bool_ : bool -> t
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor : t -> t -> t
val implies : t -> t -> t
val iff : t -> t -> t

(** [conj ts] folds [and_] over [ts] ([tt] when empty). *)
val conj : t list -> t

(** [disj ts] folds [or_] over [ts] ([ff] when empty). *)
val disj : t list -> t

(** [eq t1 t2] is the equality atom at the (common) sort of [t1], [t2].
    @raise Invalid_argument on sort mismatch. *)
val eq : t -> t -> t

(** [ite c t e] is [if_then_else_fi] at the sort of [t]. *)
val ite : t -> t -> t -> t

(** {1 Inspection} *)

(** [sort t] is the sort of [t]. *)
val sort : t -> Sort.t

(** [equal] is structural equality (variables by name and sort, operators
    by name) — pointer equality, thanks to interning. *)
val equal : t -> t -> bool

(** [compare] is a total order consistent with {!equal}: id comparison.
    Subterms were interned before their parents, so a term's id is strictly
    greater than its proper subterms' — the order is a simplification order
    on any fixed set of terms within one process, but NOT stable across
    processes or runs. *)
val compare : t -> t -> int

(** [hash t] is the precomputed structural hash, consistent with {!equal}
    and stable across processes. *)
val hash : t -> int

(** [id t] is [t]'s unique intern id. *)
val id : t -> int

(** [ac_compare] — the total order used to canonicalize AC/Comm argument
    lists (and every other order that leaks into stored term structure):
    hash-major, structural walk on collision.  Purely a function of the
    structure — unlike {!compare}, it does not change when a term is
    collected from the weak intern table and later re-interned with a
    fresh id, so canonical forms are stable over time, across domains and
    across processes. *)
val ac_compare : t -> t -> int

(** [vars t] lists the distinct variables of [t], left-to-right. *)
val vars : t -> var list

(** [is_ground t] is [true] iff [t] has no variables (precomputed). *)
val is_ground : t -> bool

(** [size t] counts operator and variable occurrences (precomputed). *)
val size : t -> int

(** [depth t] is the height of the term tree ([1] for leaves,
    precomputed). *)
val depth : t -> int

(** [ac_canonical t] is [true] iff [t] is its own AC/Comm canonical form,
    i.e. [Ac.normalize] returns [t] unchanged (precomputed at intern). *)
val ac_canonical : t -> bool

(** [subterms t] lists every subterm of [t] including [t] itself
    (pre-order). *)
val subterms : t -> t list

(** [occurs ~inside t] tests whether [t] occurs as a subterm of [inside]. *)
val occurs : inside:t -> t -> bool

(** [replace ~old ~by t] replaces every occurrence of the subterm [old] by
    [by] in [t] (used for congruence-by-substitution in the prover). *)
val replace : old:t -> by:t -> t -> t

(** [map_children f t] applies [f] to the immediate children of [t],
    reusing [t] when every child comes back physically unchanged. *)
val map_children : (t -> t) -> t -> t

(** [intern_table_len ()] is the number of live interned terms — the
    footprint of maximal sharing, exported for bench/stats reporting. *)
val intern_table_len : unit -> int

(** [intern_shard_stats ()] is the live-entry count of each of the intern
    table's shards (index = shard number).  Occupancy skew across shards
    indicates structural-hash imbalance; the telemetry layer reports the
    min/mean/max at flush time. *)
val intern_shard_stats : unit -> int array

(** {1 Printing} *)

(** Prefix pretty-printer: [f(a, b)], variables as [X:Sort]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** {!Set} and {!Map} order elements by {!ac_compare} (structure-stable),
    so iteration order does not depend on intern-table allocation
    history. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
