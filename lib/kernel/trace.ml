type step = { st_path : int list; st_label : string; st_term : Term.t }

(* Walk the derivation in execution order (children left-to-right, then AC
   canonicalization, then the root step and its right-hand-side
   normalization), threading a context-embedding function so every emitted
   step shows the whole term.  Condition discharges are summarized as one
   [(cond <label>)] marker rather than expanded — the full sub-derivation
   lives in the certificate. *)
let linearize (d : Rewrite.deriv) : step list =
  let acc = ref [] in
  let emit path label term =
    acc := { st_path = List.rev path; st_label = label; st_term = term } :: !acc
  in
  let rec go path ctx (d : Rewrite.deriv) =
    match d.Rewrite.d_node with
    | Rewrite.Triv -> ()
    | Rewrite.Dapp { children; perm; step } ->
      let o =
        match Term.view d.Rewrite.d_in with
        | Term.App (o, _) -> o
        | Term.Var _ -> assert false
      in
      let arr = Array.of_list children in
      Array.iteri
        (fun i di ->
          let child_ctx x =
            let args =
              Array.to_list
                (Array.mapi
                   (fun j (dj : Rewrite.deriv) ->
                     if j < i then dj.Rewrite.d_out
                     else if j = i then x
                     else dj.Rewrite.d_in)
                   arr)
            in
            ctx (Term.app_unchecked o args)
          in
          go (i :: path) child_ctx di)
        arr;
      let t' =
        Term.app_unchecked o
          (List.map (fun (c : Rewrite.deriv) -> c.Rewrite.d_out) children)
      in
      let t'' = match perm with None -> t' | Some _ -> Ac.normalize t' in
      (match perm with
      | Some _ -> emit path "(ac)" (ctx t'')
      | None -> ());
      (match step with
      | None -> ()
      | Some rs ->
        (match rs.Rewrite.rs_cond with
        | None -> ()
        | Some _ ->
          emit path
            (Printf.sprintf "(cond %s)" rs.Rewrite.rs_rule.Rewrite.label)
            (ctx t''));
        let rhs_inst =
          Subst.apply rs.Rewrite.rs_sub rs.Rewrite.rs_rule.Rewrite.rhs
        in
        emit path rs.Rewrite.rs_rule.Rewrite.label (ctx rhs_inst);
        go path ctx rs.Rewrite.rs_next)
  in
  go [] (fun x -> x) d;
  List.rev !acc

let pp_path ppf = function
  | [] -> Format.pp_print_string ppf "root"
  | path ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '.')
      Format.pp_print_int ppf path

let pp_step ppf s =
  Format.fprintf ppf "@[<hv 2>[%s @@ %a]@ %a@]" s.st_label pp_path s.st_path
    Term.pp s.st_term

let pp_steps ppf steps =
  let n = List.length steps in
  Format.fprintf ppf "%d step%s@." n (if n = 1 then "" else "s");
  List.iteri
    (fun i s -> Format.fprintf ppf "%3d. %a@." (i + 1) pp_step s)
    steps
