(** Reduction orders for orienting equations.

    The lexicographic path order (LPO) over a total operator precedence: a
    simplification order, so [lpo ~prec s t = true] guarantees that the
    rule [s -> t] terminates (in combination with any other LPO-oriented
    rules under the same precedence).  Used by {!Completion} and available
    for termination-checking hand-written systems. *)

(** [lpo ~prec s t] — is [s] strictly greater than [t]?  [prec] must be a
    total order on operators (compare by name, by a user list, …). *)
val lpo :
  prec:(Signature.op -> Signature.op -> int) -> Term.t -> Term.t -> bool

(** [precedence_of_list ops] builds a precedence from a list, {e later}
    operators being greater; operators not listed compare by name below
    all listed ones. *)
val precedence_of_list :
  Signature.op list -> Signature.op -> Signature.op -> int

(** Result of {!search_precedence}: a total precedence and the rules no
    LPO proof was found for.  [unoriented = []] certifies the whole system
    terminating.  [prec] is the comparison to feed {!lpo}/{!terminating};
    unlike {!precedence_of_list} it distinguishes same-named operators
    with different profiles (the TLS model overloads e.g. [cert] as both
    an action and a certificate constructor), which is required to orient
    some of the generated transition rules.  [precedence] lists the same
    order (later = greater) for display and [--prec] round-tripping. *)
type search_result = {
  precedence : Signature.op list;
  prec : Signature.op -> Signature.op -> int;
  unoriented : Rewrite.rule list;
}

(** [search_precedence ?hint ~ops rules] searches for an LPO precedence
    under which every rule (and every conditional rule's condition) is
    decreasing.  The search is greedy with backtracking inside each rule:
    undecided operator comparisons needed by a proof branch are assumed on
    the fly unless they would close a cycle, and assumptions accumulate
    across rules.  [hint] seeds the order (later = greater — the user's
    [--prec] override); [ops] extends the returned total precedence to a
    full operator universe.  Sound but incomplete: [unoriented] rules may
    still terminate under some other order. *)
val search_precedence :
  ?hint:Signature.op list ->
  ops:Signature.op list ->
  Rewrite.rule list ->
  search_result

(** [orients ~prec (lhs, rhs)] — can the equation be oriented left to
    right ([`Lr]), right to left ([`Rl]), or not at all ([`No])? *)
val orients :
  prec:(Signature.op -> Signature.op -> int) ->
  Term.t * Term.t ->
  [ `Lr | `Rl | `No ]

(** [terminating ~prec rules] — [true] if every rule is LPO-decreasing
    under [prec] (a sufficient termination check). *)
val terminating :
  prec:(Signature.op -> Signature.op -> int) -> Rewrite.rule list -> bool
