type var = { v_name : string; v_sort : Sort.t }

(* Hash-consed terms: every structurally distinct term exists exactly once,
   so equality is pointer equality, comparison is id comparison and
   hash/size/depth/groundness/AC-canonicity are precomputed at interning
   time.  The [node] layer is the old structural view; [view] exposes it
   for pattern matching. *)
type t = {
  node : node;
  id : int;  (* unique per structurally-distinct term, process-wide *)
  hash : int;  (* structural hash, stable across processes *)
  term_size : int;
  term_depth : int;
  ground : bool;
  canonical : bool;  (* [Ac.normalize t == t]; see [canonical_of] *)
}

and node =
  | Var of var
  | App of Signature.op * t list

let view t = t.node

(* ------------------------------------------------------------------ *)
(* The intern table.

   Sharded like a striped lock: the shard index comes from the structural
   hash, each shard guards a private hashtable with its own mutex.  Terms
   are built bottom-up, so a node's children are already interned when the
   node itself is — one-level ("shallow") keys with children compared by
   pointer are therefore complete structural keys.  The pattern follows
   the thread-safe [Sort] intern table; sharding keeps the proof pool's
   domains off each other's locks. *)

let combine h x = (h * 0x01000193) lxor (x land max_int)

let node_hash = function
  | Var v ->
    combine (combine 0x811c9dc5 (Hashtbl.hash v.v_name)) (Hashtbl.hash v.v_sort.Sort.name)
  | App (o, args) ->
    List.fold_left
      (fun h a -> combine h a.hash)
      (combine 0x9e3779b9 (Hashtbl.hash o.Signature.name))
      args

(* Operators are interned by full profile, not identity: branched proof
   environments re-declare constants of the same name into private
   signatures, and those must denote one term.  Name alone is too coarse —
   the paper overloads names across sorts (the TLS model has both an
   action [cert] and a message-payload constructor [cert]), and collapsing
   those would smuggle one operator's sort onto the other's term. *)
let op_profile_equal (o1 : Signature.op) (o2 : Signature.op) =
  String.equal o1.Signature.name o2.Signature.name
  && Signature.same_profile o1 o2

let node_equal n1 n2 =
  match n1, n2 with
  | Var v1, Var v2 -> String.equal v1.v_name v2.v_name && Sort.equal v1.v_sort v2.v_sort
  | App (o1, a1), App (o2, a2) ->
    op_profile_equal o1 o2
    &&
    let rec phys_eq l1 l2 =
      match l1, l2 with
      | [], [] -> true
      | x :: l1, y :: l2 -> x == y && phys_eq l1 l2
      | _, _ -> false
    in
    phys_eq a1 a2
  | Var _, App _ | App _, Var _ -> false

(* Weak shards: the intern table must not keep terms alive — a proof
   campaign builds hundreds of millions of transient terms, and a strong
   table would root them all, growing the major heap (and every later GC
   mark phase) without bound.  Entries vanish once the last outside
   reference dies; a parent's node holds its children strongly, so
   children outlive their parents. *)
module WTbl = Weak.Make (struct
  type nonrec t = t

  let equal t1 t2 = node_equal t1.node t2.node
  let hash t = t.hash
end)

type shard = { lock : Mutex.t; tbl : WTbl.t }

let shard_count = 256
let shards = Array.init shard_count (fun _ -> { lock = Mutex.create (); tbl = WTbl.create 512 })
let next_id = Atomic.make 0

let intern_table_len () =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let n = WTbl.count s.tbl in
      Mutex.unlock s.lock;
      acc + n)
    0 shards

let intern_shard_stats () =
  Array.map
    (fun s ->
      Mutex.lock s.lock;
      let n = WTbl.count s.tbl in
      Mutex.unlock s.lock;
      n)
    shards

(* AC argument order: hash-major with a structural tie-break — never the
   id.  Ids are not stable over time (the intern table is weak: a term can
   die and be re-interned with a fresh id), so an id-dependent order would
   make canonical forms depend on allocation history; a sequential and a
   parallel run over the same terms must agree exactly.  The hash resolves
   almost every comparison in O(1); the structural walk only runs on
   collisions.  [compare 0] implies [node_equal], hence the same interned
   record — the order is total and consistent with equality. *)
let rec structural_compare t1 t2 =
  if t1 == t2 then 0
  else
    match t1.node, t2.node with
    | Var _, App _ -> -1
    | App _, Var _ -> 1
    | Var v1, Var v2 ->
      let c = String.compare v1.v_name v2.v_name in
      if c <> 0 then c else String.compare v1.v_sort.Sort.name v2.v_sort.Sort.name
    | App (o1, a1), App (o2, a2) ->
      let c = String.compare o1.Signature.name o2.Signature.name in
      if c <> 0 then c
      else
        let c = String.compare o1.Signature.sort.Sort.name o2.Signature.sort.Sort.name in
        if c <> 0 then c
        else
          let rec args l1 l2 =
            match l1, l2 with
            | [], [] -> 0
            | [], _ :: _ -> -1
            | _ :: _, [] -> 1
            | x :: l1, y :: l2 ->
              let c = structural_compare x y in
              if c <> 0 then c else args l1 l2
          in
          args a1 a2

let ac_compare t1 t2 =
  let c = Int.compare t1.hash t2.hash in
  if c <> 0 then c else structural_compare t1 t2

(* [canonical_of] decides, from the children's flags alone, whether this
   term is its own AC/Comm canonical form — i.e. whether [Ac.normalize]
   would return it unchanged.  For an AC node [o(l, r)] with canonical
   children that holds exactly when the term is a right-comb ([l] is not
   [o]-headed) whose leaves are sorted ([l <=] the first leaf of [r];
   [r]'s own flag covers the rest).  This turns PR 3's already-canonical
   fast path into a single field read. *)
let canonical_of node =
  match node with
  | Var _ -> true
  | App (o, [ l; r ]) when Signature.is_ac o ->
    let o_headed t =
      match t.node with
      | App (o', [ _; _ ]) -> Signature.op_equal o' o
      | App _ | Var _ -> false
    in
    let first_leaf t =
      match t.node with
      | App (o', [ a; _ ]) when Signature.op_equal o' o -> a
      | App _ | Var _ -> t
    in
    l.canonical && r.canonical && (not (o_headed l)) && ac_compare l (first_leaf r) <= 0
  | App (o, [ a; b ]) when Signature.is_comm o ->
    a.canonical && b.canonical && ac_compare a b <= 0
  | App (_, args) -> List.for_all (fun a -> a.canonical) args

(* [merge] returns the interned representative: the candidate is inserted
   when new, dropped in favour of the existing record otherwise.  A dropped
   candidate wastes one id, so ids are sparse but still strictly increasing
   from children to parents. *)
let intern node =
  let h = node_hash node in
  let s = shards.(h land (shard_count - 1)) in
  let cand =
    {
      node;
      id = Atomic.fetch_and_add next_id 1;
      hash = h;
      term_size =
        (match node with
        | Var _ -> 1
        | App (_, args) -> List.fold_left (fun n a -> n + a.term_size) 1 args);
      term_depth =
        (match node with
        | Var _ -> 1
        | App (_, args) -> 1 + List.fold_left (fun n a -> max n a.term_depth) 0 args);
      ground =
        (match node with
        | Var _ -> false
        | App (_, args) -> List.for_all (fun a -> a.ground) args);
      canonical = canonical_of node;
    }
  in
  Mutex.lock s.lock;
  match WTbl.merge s.tbl cand with
  | t ->
    Mutex.unlock s.lock;
    t
  | exception e ->
    Mutex.unlock s.lock;
    raise e

(* ------------------------------------------------------------------ *)
(* Construction *)

let var v_name v_sort = intern (Var { v_name; v_sort })

let sort t =
  match t.node with
  | Var v -> v.v_sort
  | App (o, _) -> o.Signature.sort

(* Trusted constructor: skips the arity/sort checks.  For kernel internals
   (substitution, AC rebuilds, rewriting) that reassemble nodes from
   already-checked pieces. *)
let app_unchecked op args = intern (App (op, args))

let app op args =
  let arity = op.Signature.arity in
  if List.length arity <> List.length args then
    invalid_arg
      (Printf.sprintf "Term.app: %s expects %d arguments, got %d"
         op.Signature.name (List.length arity) (List.length args));
  List.iter2
    (fun s a ->
      if not (Sort.equal s (sort a)) then
        invalid_arg
          (Printf.sprintf "Term.app: %s: argument of sort %s where %s expected"
             op.Signature.name (sort a).Sort.name s.Sort.name))
    arity args;
  app_unchecked op args

let const op = app op []

module B = Signature.Builtin

let tt = const B.tt
let ff = const B.ff
let bool_ b = if b then tt else ff
let not_ t = app B.not_ [ t ]
let and_ t1 t2 = app B.and_ [ t1; t2 ]
let or_ t1 t2 = app B.or_ [ t1; t2 ]
let xor t1 t2 = app B.xor [ t1; t2 ]
let implies t1 t2 = app B.implies [ t1; t2 ]
let iff t1 t2 = app B.iff [ t1; t2 ]

let conj = function [] -> tt | t :: ts -> List.fold_left and_ t ts
let disj = function [] -> ff | t :: ts -> List.fold_left or_ t ts

let eq t1 t2 =
  let s1 = sort t1 and s2 = sort t2 in
  if not (Sort.equal s1 s2) then
    invalid_arg
      (Printf.sprintf "Term.eq: sorts %s and %s differ" s1.Sort.name
         s2.Sort.name);
  app (B.eq s1) [ t1; t2 ]

let ite c t e = app (B.if_ (sort t)) [ c; t; e ]

let var_equal v1 v2 =
  String.equal v1.v_name v2.v_name && Sort.equal v1.v_sort v2.v_sort

(* Maximal sharing makes structural equality pointer equality and the
   structural order an id comparison. *)
let equal t1 t2 = t1 == t2
let compare t1 t2 = Int.compare t1.id t2.id
let hash t = t.hash
let id t = t.id

let vars t =
  let rec go acc t =
    match t.node with
    | Var v -> if List.exists (var_equal v) acc then acc else v :: acc
    | App (_, args) -> List.fold_left go acc args
  in
  List.rev (go [] t)

let is_ground t = t.ground
let size t = t.term_size
let depth t = t.term_depth
let ac_canonical t = t.canonical

let subterms t =
  let rec go acc t =
    let acc = t :: acc in
    match t.node with Var _ -> acc | App (_, args) -> List.fold_left go acc args
  in
  List.rev (go [] t)

let rec occurs ~inside t =
  inside == t
  ||
  match inside.node with
  | Var _ -> false
  | App (_, args) -> List.exists (fun a -> occurs ~inside:a t) args

let rec replace ~old ~by t =
  if t == old then by
  else
    match t.node with
    | Var _ -> t
    | App (o, args) ->
      let args' = List.map (replace ~old ~by) args in
      if List.for_all2 ( == ) args args' then t else app_unchecked o args'

let map_children f t =
  match t.node with
  | Var _ -> t
  | App (o, args) ->
    let args' = List.map f args in
    if List.for_all2 ( == ) args args' then t else app_unchecked o args'

let rec pp ppf t =
  match t.node with
  | Var v -> Format.fprintf ppf "%s:%s" v.v_name v.v_sort.Sort.name
  | App (o, []) -> Format.pp_print_string ppf o.Signature.name
  | App (o, args) ->
    Format.fprintf ppf "%s(%a)" o.Signature.name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp)
      args

let to_string t = Format.asprintf "%a" pp t

(* Sets and maps order by [ac_compare], not the raw id order: iteration
   order leaks — model-checker state keys serialize sets, the prover
   case-splits over [Boolring.atoms] — and with a weak intern table ids
   are not stable over time, so an id-ordered set would make those
   consumers depend on allocation history. *)
module Ord = struct
  type nonrec t = t

  let compare = ac_compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
