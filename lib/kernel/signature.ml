type attr = Ctor | Ac | Comm

type op = {
  name : string;
  arity : Sort.t list;
  sort : Sort.t;
  attrs : attr list;
  index : int;
}

(* Atomic: operators are declared concurrently when proof cases run on a
   {!Sched.Pool} (each case declares fresh constants into its own branched
   signature, but the index counter is global). *)
let counter = Atomic.make 0

let mk_op name arity sort attrs =
  { name; arity; sort; attrs; index = Atomic.fetch_and_add counter 1 }

type t = { table : (string, op) Hashtbl.t; mutable order : op list }

let create () = { table = Hashtbl.create 64; order = [] }

let same_profile o1 o2 =
  List.length o1.arity = List.length o2.arity
  && List.for_all2 Sort.equal o1.arity o2.arity
  && Sort.equal o1.sort o2.sort

let declare sg name arity sort ~attrs =
  match Hashtbl.find_opt sg.table name with
  | Some o ->
    if same_profile o (mk_op name arity sort attrs) then o
    else invalid_arg (Printf.sprintf "Signature.declare: %S redeclared" name)
  | None ->
    let o = mk_op name arity sort attrs in
    Hashtbl.add sg.table name o;
    sg.order <- o :: sg.order;
    o

let find sg name = Hashtbl.find sg.table name
let find_opt sg name = Hashtbl.find_opt sg.table name
let mem sg name = Hashtbl.mem sg.table name
let ops sg = List.rev sg.order

let constructors_of sg sort =
  List.filter (fun o -> List.mem Ctor o.attrs && Sort.equal o.sort sort) (ops sg)

let is_ctor o = List.mem Ctor o.attrs
let is_ac o = List.mem Ac o.attrs
let is_comm o = List.mem Comm o.attrs
let op_equal o1 o2 = o1 == o2 || String.equal o1.name o2.name
let op_compare o1 o2 = String.compare o1.name o2.name

let pp_op ppf o =
  Format.fprintf ppf "op %s : %a -> %a" o.name
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Sort.pp)
    o.arity Sort.pp o.sort

module Builtin = struct
  let b = Sort.bool
  let tt = mk_op "true" [] b []
  let ff = mk_op "false" [] b []
  let not_ = mk_op "not" [ b ] b []
  let and_ = mk_op "and" [ b; b ] b [ Ac ]
  let or_ = mk_op "or" [ b; b ] b [ Ac ]
  let xor = mk_op "xor" [ b; b ] b [ Ac ]
  let implies = mk_op "implies" [ b; b ] b []
  let iff = mk_op "iff" [ b; b ] b []

  (* Global like the sort intern table, and consulted on every [Term.eq] /
     [Term.ite] construction — including from parallel proof tasks.  Reads
     must be lock-free (term construction is hot), so the table is an
     immutable association list behind an atomic; it holds one entry per
     (prefix, sort) pair, so linear search is fine.  Writers race benignly:
     the CAS retry re-checks for a concurrent insertion of the same key. *)
  let poly_table : (string * op) list Atomic.t = Atomic.make []

  let poly prefix mk sort =
    let key = prefix ^ ":" ^ sort.Sort.name in
    let rec get () =
      let snapshot = Atomic.get poly_table in
      match List.assoc_opt key snapshot with
      | Some o -> o
      | None ->
        let o = mk key in
        if Atomic.compare_and_set poly_table snapshot ((key, o) :: snapshot)
        then o
        else get ()
    in
    get ()

  let if_ sort =
    let mk key = mk_op key [ b; sort; sort ] sort [] in
    poly "if" mk sort

  let eq sort =
    let mk key = mk_op key [ sort; sort ] b [] in
    poly "=" mk sort

  let has_prefix p o =
    String.length o.name > String.length p
    && String.sub o.name 0 (String.length p + 1) = p ^ ":"

  let is_if o = has_prefix "if" o
  let is_eq o = has_prefix "=" o

  let fixed = [ tt; ff; not_; and_; or_; xor; implies; iff ]
  let is_builtin o = List.exists (op_equal o) fixed || is_if o || is_eq o
end
