module Probe = Telemetry.Probe

type rule = {
  label : string;
  lhs : Term.t;
  rhs : Term.t;
  cond : Term.t option;
}

let var_subset small big =
  let inside = Term.vars big in
  List.for_all
    (fun (v : Term.var) ->
      List.exists
        (fun (w : Term.var) ->
          String.equal v.v_name w.v_name && Sort.equal v.v_sort w.v_sort)
        inside)
    (Term.vars small)

let rule ?cond ~label lhs rhs =
  (match Term.view lhs with
  | Term.Var _ -> invalid_arg (Printf.sprintf "Rewrite.rule %s: variable lhs" label)
  | Term.App _ -> ());
  if not (Sort.equal (Term.sort lhs) (Term.sort rhs)) then
    invalid_arg (Printf.sprintf "Rewrite.rule %s: sorts differ" label);
  if not (var_subset rhs lhs) then
    invalid_arg
      (Printf.sprintf "Rewrite.rule %s: rhs has variables not in lhs" label);
  (match cond with
  | Some c ->
    if not (Sort.equal (Term.sort c) Sort.bool) then
      invalid_arg (Printf.sprintf "Rewrite.rule %s: non-boolean condition" label);
    if not (var_subset c lhs) then
      invalid_arg
        (Printf.sprintf "Rewrite.rule %s: condition has variables not in lhs"
           label)
  | None -> ());
  { label; lhs; rhs; cond }

(* ------------------------------------------------------------------ *)
(* Derivations.                                                        *)
(* ------------------------------------------------------------------ *)

type deriv = { d_in : Term.t; d_out : Term.t; d_node : dnode }

and dnode =
  | Triv
  | Dapp of { children : deriv list; perm : int list option; step : rstep option }

and rstep = {
  rs_rule : rule;
  rs_sub : Subst.t;
  rs_cond : deriv option;
  rs_next : deriv;
}

type sys_info = {
  si_uid : int;
  si_parent : sys_info option;
  si_added : rule list;
}

(* ------------------------------------------------------------------ *)
(* Normal-form memo.

   Hash-consed terms make the memo a pointer-keyed table with a
   precomputed hash — no recursive hashing or comparison on lookup.  The
   table is striped (mutex per shard, shard picked by the term's hash) so
   the sched pool's domains share one read-mostly memo without contending
   on a single lock.  Every entry is stamped with the memo's generation at
   store time; [invalidate] bumps the generation, turning all existing
   entries into misses at once — this is what ties cached normal forms to
   the rule set they were computed under. *)

type memo_shard = { ms_lock : Mutex.t; ms_tbl : (int * Term.t) Term.Tbl.t }

type memo = {
  m_shards : memo_shard array;
  m_gen : int Atomic.t;
  m_hits : int Atomic.t;
  m_misses : int Atomic.t;
}

(* Keep creation cheap: the prover allocates a fresh system per split
   branch, so the empty memo must cost next to nothing.  16 shards is
   plenty of lock spread for the pool sizes we run; tables grow on
   demand. *)
let memo_shard_count = 16

let memo_create () =
  {
    m_shards =
      Array.init memo_shard_count (fun _ ->
          { ms_lock = Mutex.create (); ms_tbl = Term.Tbl.create 16 });
    m_gen = Atomic.make 0;
    m_hits = Atomic.make 0;
    m_misses = Atomic.make 0;
  }

(* The per-system atomics above are the source of truth (memo_stats);
   the telemetry counters mirror them across every system so a profiled
   run sees one process-wide hit/miss figure without holding a system. *)
let c_memo_hits = Probe.counter "kernel.memo.hits"
let c_memo_misses = Probe.counter "kernel.memo.misses"
let c_memo_invalidations = Probe.counter "kernel.memo.invalidations"

let memo_find m t =
  let s = m.m_shards.(Term.hash t land (memo_shard_count - 1)) in
  Mutex.lock s.ms_lock;
  let r = Term.Tbl.find_opt s.ms_tbl t in
  Mutex.unlock s.ms_lock;
  match r with
  | Some (g, nf) when g = Atomic.get m.m_gen ->
    Atomic.incr m.m_hits;
    Probe.incr c_memo_hits;
    Some nf
  | Some _ | None ->
    Atomic.incr m.m_misses;
    Probe.incr c_memo_misses;
    None

let memo_store m t nf =
  let g = Atomic.get m.m_gen in
  let s = m.m_shards.(Term.hash t land (memo_shard_count - 1)) in
  Mutex.lock s.ms_lock;
  Term.Tbl.replace s.ms_tbl t (g, nf);
  Mutex.unlock s.ms_lock

let memo_reset m =
  Array.iter
    (fun s ->
      Mutex.lock s.ms_lock;
      Term.Tbl.reset s.ms_tbl;
      Mutex.unlock s.ms_lock)
    m.m_shards

let memo_entries m =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.ms_lock;
      let n = Term.Tbl.length s.ms_tbl in
      Mutex.unlock s.ms_lock;
      acc + n)
    0 m.m_shards

type memo_stats = { hits : int; misses : int; entries : int; generation : int }

type system = {
  ordered : rule list;
  index : (string, rule list) Hashtbl.t;  (** head operator name -> rules *)
  dtree : rule Index.t;  (** discrimination-tree index over the same rules *)
  mutable indexing : bool;  (** [false]: rule selection via the linear scan *)
  memo : memo;
  mutable dcache : deriv Term.Tbl.t option;
      (** derivation memo, allocated lazily on first traced run *)
  mutable step_limit : int;
  mutable deadline : float;  (** CPU-seconds per [normalize]; [0.] = none *)
  mutable deadline_at : float;
  steps_total : int Atomic.t;  (** shared with systems derived by [extend] *)
  mutable budget : int;
  info : sys_info;
}

let head_name r =
  match Term.view r.lhs with
  | Term.App (o, _) -> o.Signature.name
  | Term.Var _ -> assert false

let build_index rules =
  let index = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let key = head_name r in
      let existing = Option.value ~default:[] (Hashtbl.find_opt index key) in
      Hashtbl.replace index key (existing @ [ r ]))
    rules;
  index

let uid_counter = Atomic.make 0
let fresh_uid () = Atomic.fetch_and_add uid_counter 1

(* New systems pick up the process-wide default; [set_indexing] overrides
   per system, and [extend] inherits the parent's choice so a campaign
   forced onto the linear scan stays on it through every split branch. *)
let default_indexing_flag = Atomic.make true
let set_default_indexing b = Atomic.set default_indexing_flag b
let default_indexing () = Atomic.get default_indexing_flag

let build_dtree uid rules = Index.build ~gen:uid ~lhs:(fun r -> r.lhs) rules

let make rules =
  let uid = fresh_uid () in
  let dtree = build_dtree uid rules in
  (* Defensive: a miscompiled index could silently skip rules.  The
     self-retrieval replay costs one query per rule at construction time
     and degrades a bad index to full-bucket answers. *)
  (match Index.validate dtree with Ok () | Error _ -> ());
  {
    ordered = rules;
    index = build_index rules;
    dtree;
    indexing = default_indexing ();
    memo = memo_create ();
    dcache = None;
    step_limit = 5_000_000;
    deadline = 0.;
    deadline_at = 0.;
    steps_total = Atomic.make 0;
    budget = 0;
    info = { si_uid = uid; si_parent = None; si_added = rules };
  }

let rules sys = sys.ordered
let info sys = sys.info

(* A derived system gets a fresh memo: the extra rules rewrite terms the
   base system considered normal, so no base entry may be trusted.  The
   index is likewise recompiled over the extended rule set (extends are
   frequent — one per split branch — so the rebuild skips the
   self-retrieval replay [make] performs). *)
let extend sys extra =
  let rules = extra @ sys.ordered in
  let uid = fresh_uid () in
  {
    ordered = rules;
    index = build_index rules;
    dtree = build_dtree uid rules;
    indexing = sys.indexing;
    memo = memo_create ();
    dcache = None;
    step_limit = sys.step_limit;
    deadline = sys.deadline;
    deadline_at = 0.;
    steps_total = sys.steps_total;
    budget = 0;
    info = { si_uid = uid; si_parent = Some sys.info; si_added = extra };
  }

type limit = Steps of int | Deadline of float

exception Limit_exceeded of { limit : limit; steps : int }

let () =
  Printexc.register_printer (function
    | Limit_exceeded { limit = Steps n; steps } ->
      Some
        (Printf.sprintf
           "Rewrite.Limit_exceeded (step limit %d reached after %d steps)" n steps)
    | Limit_exceeded { limit = Deadline d; steps } ->
      Some
        (Printf.sprintf
           "Rewrite.Limit_exceeded (deadline %.3fs reached after %d steps)" d
           steps)
    | _ -> None)

let set_step_limit sys n = sys.step_limit <- n
let set_deadline sys d = sys.deadline <- d
let steps sys = Atomic.get sys.steps_total
let reset_steps sys = Atomic.set sys.steps_total 0

let clear_cache sys =
  memo_reset sys.memo;
  sys.dcache <- None

let invalidate_memo sys =
  Atomic.incr sys.memo.m_gen;
  Probe.incr c_memo_invalidations

let memo_stats sys =
  {
    hits = Atomic.get sys.memo.m_hits;
    misses = Atomic.get sys.memo.m_misses;
    entries = memo_entries sys.memo;
    generation = Atomic.get sys.memo.m_gen;
  }

(* [steps_total] is atomic: a base system's counter is shared (via
   [extend]) by every branched system the proof pool runs concurrently,
   so a plain [incr] loses updates and [--jobs] totals under-report. *)
let tick sys =
  Atomic.incr sys.steps_total;
  sys.budget <- sys.budget - 1;
  if sys.budget <= 0 then
    raise (Limit_exceeded { limit = Steps sys.step_limit; steps = sys.step_limit });
  if sys.deadline > 0. && Sys.time () > sys.deadline_at then
    raise
      (Limit_exceeded
         { limit = Deadline sys.deadline; steps = sys.step_limit - sys.budget })

(* Leftmost-innermost normalization with memoization.  Children are
   normalized first; then root rules are tried until none applies.  A rule's
   condition is normalized recursively and must reach the literal [true].

   The traversal is parameterized by its cache: [normalize] runs against
   the system's shared striped memo, [normalize_uncached] against a
   private per-call table — same strategy, same step accounting, so the
   two are differentially comparable. *)

type cache_ops = {
  c_find : Term.t -> Term.t option;
  c_store : Term.t -> Term.t -> unit;
  c_rules : Term.t -> Signature.op -> rule list;
      (** candidate rules for a root, in rule order *)
}

(* The seed engine's rule selection: every rule under the subject's head
   operator name, in rule order.  Kept verbatim as the reference the
   differential suite compares the index against, and as the fallback when
   indexing is off. *)
let linear_rules sys o =
  match Hashtbl.find_opt sys.index o.Signature.name with
  | None -> []
  | Some rs -> rs

(* Indexed rule selection.  [Index.candidates] is never-miss and preserves
   rule order, so the rule that fires — and with it every normal form,
   step count and traced derivation — is identical to the linear scan's.
   With indexing off the linear answer is returned and accounted as a
   fallback (an index degraded by a failed selfcheck accounts its own
   fallbacks internally). *)
let sys_rules sys t o =
  if sys.indexing then Index.candidates sys.dtree t
  else begin
    let rs = linear_rules sys o in
    if rs <> [] then Index.note_fallback (List.length rs);
    rs
  end

(* One root-match attempt of [r.lhs] against [t] — AC roots go through the
   AC matcher, everything else through syntactic matching.  Profiled as a
   [Match] frame charged to the rule *attempted*, so the hot-rules table
   shows scan cost where it belongs: a rule that is tried at every redex
   and almost never fires is expensive even though it never rewrites
   anything, and that is precisely the cost the index removes. *)
let match_root r t =
  if not (Probe.enabled ()) then
    match Term.view r.lhs, Term.view t with
    | Term.App (po, _), Term.App (so, _)
      when Signature.is_ac po && Signature.op_equal po so ->
      Ac.match_first r.lhs t
    | _ -> Matching.match_ r.lhs t
  else begin
    let f = Probe.rule_enter () in
    let m =
      match Term.view r.lhs, Term.view t with
      | Term.App (po, _), Term.App (so, _)
        when Signature.is_ac po && Signature.op_equal po so ->
        Ac.match_first r.lhs t
      | _ -> Matching.match_ r.lhs t
    in
    Probe.rule_exit f ~kind:Probe.Match ~label:r.label;
    m
  end

let rec norm ops sys t =
  match ops.c_find t with
  | Some nf -> nf
  | None ->
    let nf =
      match Term.view t with
      | Term.Var _ -> t
      | Term.App (o, args) ->
        let args' = List.map (norm ops sys) args in
        let t' =
          if List.for_all2 ( == ) args args' then t
          else Term.app_unchecked o args'
        in
        let t' =
          if Signature.is_ac o || Signature.is_comm o then Ac.normalize t'
          else t'
        in
        reduce_root ops sys t'
    in
    ops.c_store t nf;
    nf

and reduce_root ops sys t =
  match Term.view t with
  | Term.Var _ -> t
  | Term.App (o, _) -> (
    match ops.c_rules t o with
    | [] -> t
    | candidates -> try_rules ops sys t candidates)

and try_rules ops sys t = function
  | [] -> t
  | r :: rest -> (
    match match_root r t with
    | None -> try_rules ops sys t rest
    | Some sub -> (
      (* Profiling brackets all three timed regions — the match attempt
         (in [match_root]), condition discharge and right-hand-side
         normalization — with a per-domain frame so the hotspot report
         gets exact self-times.  The probe-off path is the seed path plus
         one flag read; the differential suite holds the two to identical
         normal forms and step counts. *)
      let fires =
        match r.cond with
        | None -> true
        | Some c ->
          let inst = Subst.apply sub c in
          if not (Probe.enabled ()) then Term.equal (norm ops sys inst) Term.tt
          else begin
            let f = Probe.rule_enter () in
            match norm ops sys inst with
            | nf ->
              Probe.rule_exit f ~kind:Probe.Cond ~label:r.label;
              Term.equal nf Term.tt
            | exception e ->
              Probe.rule_exit f ~kind:Probe.Cond ~label:r.label;
              raise e
          end
      in
      if not fires then try_rules ops sys t rest
      else if not (Probe.enabled ()) then begin
        tick sys;
        norm ops sys (Subst.apply sub r.rhs)
      end
      else begin
        let f = Probe.rule_enter () in
        tick sys;
        match norm ops sys (Subst.apply sub r.rhs) with
        | nf ->
          Probe.rule_exit f ~kind:Probe.Rewrite ~label:r.label;
          nf
        | exception e ->
          Probe.rule_exit f ~kind:Probe.Rewrite ~label:r.label;
          raise e
      end))

let shared_ops sys =
  {
    c_find = memo_find sys.memo;
    c_store = memo_store sys.memo;
    c_rules = (fun t o -> sys_rules sys t o);
  }

let local_ops sys =
  let tbl = Term.Tbl.create 1024 in
  {
    c_find = Term.Tbl.find_opt tbl;
    c_store = Term.Tbl.replace tbl;
    (* the reference path selects rules by linear scan, unconditionally,
       and does not count fallbacks — it is the baseline, not a fallback *)
    c_rules = (fun _ o -> linear_rules sys o);
  }

(* ------------------------------------------------------------------ *)
(* Traced normalization.                                               *)
(*                                                                     *)
(* The traced path mirrors [norm] exactly — same strategy, same step   *)
(* accounting — but records a derivation for every visited term.  The  *)
(* derivation memo is separate from the plain normal-form memo: a memo *)
(* entry warmed by an earlier untraced run has no derivation, so       *)
(* traced runs consult only [dcache]; the plain memo is warmed only    *)
(* at derivation roots (hashing every subterm into both tables showed  *)
(* up as the bulk of the tracing overhead).                            *)
(*                                                                     *)
(* Derivations certify reachability (input rewrites to output using    *)
(* the recorded rules), which is what soundness of a proof score       *)
(* needs; they do not certify that the output is a normal form.  A     *)
(* node that performs no step anywhere collapses to [Triv].            *)
(* ------------------------------------------------------------------ *)

let dcache sys =
  match sys.dcache with
  | Some dc -> dc
  | None ->
    let dc = Term.Tbl.create 1024 in
    sys.dcache <- Some dc;
    dc

let triv t = { d_in = t; d_out = t; d_node = Triv }

(* AC/Comm canonicalization of [t'], recording the permutation of the
   flattened argument list.  Mirrors [Ac.normalize] on terms whose children
   are already canonical; [None] when canonicalization is the identity.

   Fast path: interned terms carry their canonicity, so the overwhelmingly
   common already-sorted case is a single flag read (no flatten, no
   compare — this is what keeps tracing overhead low). *)
let ac_perm o t' =
  if Term.ac_canonical t' then (None, t')
  else
    match Term.view t' with
    | Term.App (_, [ _; _ ]) when Signature.is_ac o ->
      let flat = Ac.flatten o t' in
      let idx = List.mapi (fun i t -> (t, i)) flat in
      let sorted =
        List.stable_sort (fun (a, _) (b, _) -> Term.ac_compare a b) idx
      in
      let t'' = Ac.rebuild o (List.map fst sorted) in
      if Term.equal t'' t' then (None, t')
      else (Some (List.map snd sorted), t'')
    | Term.App (_, [ a; b ]) when Signature.is_comm o ->
      if Term.ac_compare a b <= 0 then (None, t')
      else (Some [ 1; 0 ], Term.app_unchecked o [ b; a ])
    | _ -> (None, t')

let rec norm_t sys t =
  let dc = dcache sys in
  match Term.Tbl.find_opt dc t with
  | Some d -> d
  | None ->
    let d =
      match Term.view t with
      | Term.Var _ -> triv t
      | Term.App (o, args) ->
        let children = List.map (norm_t sys) args in
        (* reuse [t] when no child moved: keeps the stepless [Term.equal]
           below on its physical-equality fast path *)
        let t' =
          if List.for_all2 (fun d a -> d.d_out == a) children args then t
          else Term.app_unchecked o (List.map (fun d -> d.d_out) children)
        in
        let perm, t'' =
          if Signature.is_ac o || Signature.is_comm o then ac_perm o t'
          else (None, t')
        in
        let step =
          match sys_rules sys t'' o with
          | [] -> None
          | candidates -> try_rules_t sys t'' candidates
        in
        (match step with
        | None ->
          if Term.equal t'' t then triv t
          else { d_in = t; d_out = t''; d_node = Dapp { children; perm; step = None } }
        | Some rs ->
          {
            d_in = t;
            d_out = rs.rs_next.d_out;
            d_node = Dapp { children; perm; step = Some rs };
          })
    in
    Term.Tbl.replace dc t d;
    d

and try_rules_t sys t = function
  | [] -> None
  | r :: rest -> (
    match match_root r t with
    | None -> try_rules_t sys t rest
    | Some sub -> (
      let discharged =
        match r.cond with
        | None -> Some None
        | Some c ->
          let inst = Subst.apply sub c in
          let dc =
            if not (Probe.enabled ()) then norm_t sys inst
            else begin
              let f = Probe.rule_enter () in
              match norm_t sys inst with
              | dc ->
                Probe.rule_exit f ~kind:Probe.Cond ~label:r.label;
                dc
              | exception e ->
                Probe.rule_exit f ~kind:Probe.Cond ~label:r.label;
                raise e
            end
          in
          if Term.equal dc.d_out Term.tt then Some (Some dc) else None
      in
      match discharged with
      | None -> try_rules_t sys t rest
      | Some rs_cond ->
        if not (Probe.enabled ()) then begin
          tick sys;
          let rs_next = norm_t sys (Subst.apply sub r.rhs) in
          Some { rs_rule = r; rs_sub = sub; rs_cond; rs_next }
        end
        else begin
          let f = Probe.rule_enter () in
          tick sys;
          match norm_t sys (Subst.apply sub r.rhs) with
          | rs_next ->
            Probe.rule_exit f ~kind:Probe.Rewrite ~label:r.label;
            Some { rs_rule = r; rs_sub = sub; rs_cond; rs_next }
          | exception e ->
            Probe.rule_exit f ~kind:Probe.Rewrite ~label:r.label;
            raise e
        end))

let start_run sys =
  sys.budget <- sys.step_limit;
  if sys.deadline > 0. then sys.deadline_at <- Sys.time () +. sys.deadline

let normalize_traced_inner sys t =
  start_run sys;
  let d = norm_t sys t in
  memo_store sys.memo t d.d_out;
  (d.d_out, d)

(* One span per top-level normalization ([cat = "red"]): nested [norm]
   recursion stays span-free (rule applications are profiled separately),
   so a trace shows each red as one block under its proof case. *)
let normalize_traced sys t =
  if not (Probe.enabled ()) then normalize_traced_inner sys t
  else begin
    let t0 = Probe.now_ns () in
    match normalize_traced_inner sys t with
    | v ->
      Probe.span_since ~cat:"red" "red" t0;
      v
    | exception e ->
      Probe.span_since ~cat:"red" "red" t0;
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Global tracer.                                                      *)
(* ------------------------------------------------------------------ *)

type obligation = { ob_info : sys_info; ob_input : Term.t; ob_deriv : deriv }

type tracer = {
  tr_lock : Mutex.t;
  mutable tr_obs : obligation list;
  tr_seen : (int, unit Term.Tbl.t) Hashtbl.t;
}

let tracer () =
  { tr_lock = Mutex.create (); tr_obs = []; tr_seen = Hashtbl.create 64 }

let tracer_slot : tracer option Atomic.t = Atomic.make None
let set_tracer tr = Atomic.set tracer_slot tr

let obligations tr =
  Mutex.protect tr.tr_lock (fun () -> List.rev tr.tr_obs)

let record tr sys t d =
  match d.d_node with
  | Triv -> ()  (* zero-step runs carry nothing to check *)
  | _ ->
    Mutex.protect tr.tr_lock (fun () ->
        let uid = sys.info.si_uid in
        let seen =
          match Hashtbl.find_opt tr.tr_seen uid with
          | Some s -> s
          | None ->
            let s = Term.Tbl.create 64 in
            Hashtbl.replace tr.tr_seen uid s;
            s
        in
        if not (Term.Tbl.mem seen t) then begin
          Term.Tbl.replace seen t ();
          tr.tr_obs <-
            { ob_info = sys.info; ob_input = t; ob_deriv = d } :: tr.tr_obs
        end)

let normalize_inner sys t =
  match Atomic.get tracer_slot with
  | None ->
    start_run sys;
    norm (shared_ops sys) sys t
  | Some tr ->
    start_run sys;
    let d = norm_t sys t in
    memo_store sys.memo t d.d_out;
    record tr sys t d;
    d.d_out

let normalize sys t =
  if not (Probe.enabled ()) then normalize_inner sys t
  else begin
    let t0 = Probe.now_ns () in
    match normalize_inner sys t with
    | nf ->
      Probe.span_since ~cat:"red" "red" t0;
      nf
    | exception e ->
      Probe.span_since ~cat:"red" "red" t0;
      raise e
  end

(* The seed engine's path: identical strategy and step accounting, but
   against a private table that dies with the call — nothing read from or
   written to the shared memo.  The differential suite runs every spec
   through both entry points. *)
let normalize_uncached_inner sys t =
  start_run sys;
  norm (local_ops sys) sys t

let normalize_uncached sys t =
  if not (Probe.enabled ()) then normalize_uncached_inner sys t
  else begin
    let t0 = Probe.now_ns () in
    match normalize_uncached_inner sys t with
    | nf ->
      Probe.span_since ~cat:"red" "red" t0;
      nf
    | exception e ->
      Probe.span_since ~cat:"red" "red" t0;
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Index control and introspection.                                    *)
(* ------------------------------------------------------------------ *)

let set_indexing sys b = sys.indexing <- b
let indexing sys = sys.indexing
let index_info sys = Index.info sys.dtree

(* Re-runs the self-retrieval replay on demand.  A failure means the
   index was corrupted after construction, and any normal form computed
   through it since is suspect — so on [Error] the memo generation is
   bumped and the derivation cache dropped along with degrading the index
   to full-bucket answers.  This is the index side of the index⇄memo
   generation contract: the memo may only hold entries computed under a
   healthy index of the current rule set. *)
let selfcheck sys =
  match Index.validate sys.dtree with
  | Ok () -> Ok ()
  | Error _ as e ->
    invalidate_memo sys;
    sys.dcache <- None;
    e

let corrupt_index_for_tests sys ~bucket ~slot =
  Index.unsafe_drop_slot sys.dtree ~bucket ~slot

let pp_rule ppf r =
  match r.cond with
  | None -> Format.fprintf ppf "[%s] %a = %a" r.label Term.pp r.lhs Term.pp r.rhs
  | Some c ->
    Format.fprintf ppf "[%s] %a = %a if %a" r.label Term.pp r.lhs Term.pp r.rhs
      Term.pp c
