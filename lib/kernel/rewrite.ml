type rule = {
  label : string;
  lhs : Term.t;
  rhs : Term.t;
  cond : Term.t option;
}

let var_subset small big =
  let inside = Term.vars big in
  List.for_all
    (fun (v : Term.var) ->
      List.exists
        (fun (w : Term.var) ->
          String.equal v.v_name w.v_name && Sort.equal v.v_sort w.v_sort)
        inside)
    (Term.vars small)

let rule ?cond ~label lhs rhs =
  (match lhs with
  | Term.Var _ -> invalid_arg (Printf.sprintf "Rewrite.rule %s: variable lhs" label)
  | Term.App _ -> ());
  if not (Sort.equal (Term.sort lhs) (Term.sort rhs)) then
    invalid_arg (Printf.sprintf "Rewrite.rule %s: sorts differ" label);
  if not (var_subset rhs lhs) then
    invalid_arg
      (Printf.sprintf "Rewrite.rule %s: rhs has variables not in lhs" label);
  (match cond with
  | Some c ->
    if not (Sort.equal (Term.sort c) Sort.bool) then
      invalid_arg (Printf.sprintf "Rewrite.rule %s: non-boolean condition" label);
    if not (var_subset c lhs) then
      invalid_arg
        (Printf.sprintf "Rewrite.rule %s: condition has variables not in lhs"
           label)
  | None -> ());
  { label; lhs; rhs; cond }

(* ------------------------------------------------------------------ *)
(* Derivations.                                                        *)
(* ------------------------------------------------------------------ *)

type deriv = { d_in : Term.t; d_out : Term.t; d_node : dnode }

and dnode =
  | Triv
  | Dapp of { children : deriv list; perm : int list option; step : rstep option }

and rstep = {
  rs_rule : rule;
  rs_sub : Subst.t;
  rs_cond : deriv option;
  rs_next : deriv;
}

type sys_info = {
  si_uid : int;
  si_parent : sys_info option;
  si_added : rule list;
}

type system = {
  ordered : rule list;
  index : (string, rule list) Hashtbl.t;  (** head operator name -> rules *)
  cache : Term.t Term.Tbl.t;
  mutable dcache : deriv Term.Tbl.t option;
      (** derivation memo, allocated lazily on first traced run *)
  mutable step_limit : int;
  mutable deadline : float;  (** CPU-seconds per [normalize]; [0.] = none *)
  mutable deadline_at : float;
  steps_total : int ref;  (** shared with systems derived by [extend] *)
  mutable budget : int;
  info : sys_info;
}

let head_name r =
  match r.lhs with
  | Term.App (o, _) -> o.Signature.name
  | Term.Var _ -> assert false

let build_index rules =
  let index = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let key = head_name r in
      let existing = Option.value ~default:[] (Hashtbl.find_opt index key) in
      Hashtbl.replace index key (existing @ [ r ]))
    rules;
  index

let uid_counter = Atomic.make 0
let fresh_uid () = Atomic.fetch_and_add uid_counter 1

let make rules =
  {
    ordered = rules;
    index = build_index rules;
    cache = Term.Tbl.create 1024;
    dcache = None;
    step_limit = 5_000_000;
    deadline = 0.;
    deadline_at = 0.;
    steps_total = ref 0;
    budget = 0;
    info = { si_uid = fresh_uid (); si_parent = None; si_added = rules };
  }

let rules sys = sys.ordered
let info sys = sys.info

let extend sys extra =
  let rules = extra @ sys.ordered in
  {
    ordered = rules;
    index = build_index rules;
    cache = Term.Tbl.create 1024;
    dcache = None;
    step_limit = sys.step_limit;
    deadline = sys.deadline;
    deadline_at = 0.;
    steps_total = sys.steps_total;
    budget = 0;
    info = { si_uid = fresh_uid (); si_parent = Some sys.info; si_added = extra };
  }

type limit = Steps of int | Deadline of float

exception Limit_exceeded of { limit : limit; steps : int }

let () =
  Printexc.register_printer (function
    | Limit_exceeded { limit = Steps n; steps } ->
      Some
        (Printf.sprintf
           "Rewrite.Limit_exceeded (step limit %d reached after %d steps)" n steps)
    | Limit_exceeded { limit = Deadline d; steps } ->
      Some
        (Printf.sprintf
           "Rewrite.Limit_exceeded (deadline %.3fs reached after %d steps)" d
           steps)
    | _ -> None)

let set_step_limit sys n = sys.step_limit <- n
let set_deadline sys d = sys.deadline <- d
let steps sys = !(sys.steps_total)
let reset_steps sys = sys.steps_total := 0

let clear_cache sys =
  Term.Tbl.reset sys.cache;
  sys.dcache <- None

let tick sys =
  incr sys.steps_total;
  sys.budget <- sys.budget - 1;
  if sys.budget <= 0 then
    raise (Limit_exceeded { limit = Steps sys.step_limit; steps = sys.step_limit });
  if sys.deadline > 0. && Sys.time () > sys.deadline_at then
    raise
      (Limit_exceeded
         { limit = Deadline sys.deadline; steps = sys.step_limit - sys.budget })

(* Leftmost-innermost normalization with memoization.  Children are
   normalized first; then root rules are tried until none applies.  A rule's
   condition is normalized recursively and must reach the literal [true]. *)
let rec norm sys t =
  match Term.Tbl.find_opt sys.cache t with
  | Some nf -> nf
  | None ->
    let nf =
      match t with
      | Term.Var _ -> t
      | Term.App (o, args) ->
        let t' = Term.App (o, List.map (norm sys) args) in
        let t' =
          if Signature.is_ac o || Signature.is_comm o then Ac.normalize t'
          else t'
        in
        reduce_root sys t'
    in
    Term.Tbl.replace sys.cache t nf;
    nf

and reduce_root sys t =
  match t with
  | Term.Var _ -> t
  | Term.App (o, _) -> (
    match Hashtbl.find_opt sys.index o.Signature.name with
    | None -> t
    | Some candidates -> try_rules sys t candidates)

and try_rules sys t = function
  | [] -> t
  | r :: rest -> (
    let matcher =
      match r.lhs, t with
      | Term.App (po, _), Term.App (so, _)
        when Signature.is_ac po && Signature.op_equal po so ->
        Ac.match_first r.lhs t
      | _ -> Matching.match_ r.lhs t
    in
    match matcher with
    | None -> try_rules sys t rest
    | Some sub -> (
      let fires =
        match r.cond with
        | None -> true
        | Some c -> Term.equal (norm sys (Subst.apply sub c)) Term.tt
      in
      if not fires then try_rules sys t rest
      else begin
        tick sys;
        norm sys (Subst.apply sub r.rhs)
      end))

(* ------------------------------------------------------------------ *)
(* Traced normalization.                                               *)
(*                                                                     *)
(* The traced path mirrors [norm] exactly — same strategy, same step   *)
(* accounting — but records a derivation for every visited term.  The  *)
(* derivation memo is separate from the plain normal-form cache: a     *)
(* cache entry warmed by an earlier untraced run has no derivation, so *)
(* traced runs consult only [dcache]; the plain cache is warmed only   *)
(* at derivation roots (hashing every subterm into both tables showed  *)
(* up as the bulk of the tracing overhead).                            *)
(*                                                                     *)
(* Derivations certify reachability (input rewrites to output using    *)
(* the recorded rules), which is what soundness of a proof score       *)
(* needs; they do not certify that the output is a normal form.  A     *)
(* node that performs no step anywhere collapses to [Triv].            *)
(* ------------------------------------------------------------------ *)

let dcache sys =
  match sys.dcache with
  | Some dc -> dc
  | None ->
    let dc = Term.Tbl.create 1024 in
    sys.dcache <- Some dc;
    dc

let triv t = { d_in = t; d_out = t; d_node = Triv }

(* AC/Comm canonicalization of [t'], recording the permutation of the
   flattened argument list.  Mirrors [Ac.normalize] on terms whose children
   are already canonical; [None] when canonicalization is the identity.

   Fast path: with canonical children, [l·r] is already canonical iff [l]
   is a leaf of the comb (not [o]-headed) and [l <=] the first leaf of [r]
   — an O(1) test that skips the flatten/sort/rebuild on the overwhelmingly
   common already-sorted case (this is what keeps tracing overhead low). *)
let ac_perm o t' =
  match t' with
  | Term.App (_, [ l; r ]) when Signature.is_ac o ->
    let l_is_comb =
      match l with
      | Term.App (lo, [ _; _ ]) -> Signature.op_equal lo o
      | _ -> false
    in
    let first_leaf_r =
      match r with
      | Term.App (ro, [ a; _ ]) when Signature.op_equal ro o -> a
      | _ -> r
    in
    if (not l_is_comb) && Term.compare l first_leaf_r <= 0 then (None, t')
    else begin
      let flat = Ac.flatten o t' in
      let idx = List.mapi (fun i t -> (t, i)) flat in
      let sorted =
        List.stable_sort (fun (a, _) (b, _) -> Term.compare a b) idx
      in
      let t'' = Ac.rebuild o (List.map fst sorted) in
      if Term.equal t'' t' then (None, t')
      else (Some (List.map snd sorted), t'')
    end
  | Term.App (_, [ a; b ]) when Signature.is_comm o ->
    if Term.compare a b <= 0 then (None, t')
    else (Some [ 1; 0 ], Term.App (o, [ b; a ]))
  | _ -> (None, t')

let rec norm_t sys t =
  let dc = dcache sys in
  match Term.Tbl.find_opt dc t with
  | Some d -> d
  | None ->
    let d =
      match t with
      | Term.Var _ -> triv t
      | Term.App (o, args) ->
        let children = List.map (norm_t sys) args in
        (* reuse [t] when no child moved: keeps the stepless [Term.equal]
           below on its physical-equality fast path *)
        let t' =
          if List.for_all2 (fun d a -> d.d_out == a) children args then t
          else Term.App (o, List.map (fun d -> d.d_out) children)
        in
        let perm, t'' =
          if Signature.is_ac o || Signature.is_comm o then ac_perm o t'
          else (None, t')
        in
        let step =
          match Hashtbl.find_opt sys.index o.Signature.name with
          | None -> None
          | Some candidates -> try_rules_t sys t'' candidates
        in
        (match step with
        | None ->
          if Term.equal t'' t then triv t
          else { d_in = t; d_out = t''; d_node = Dapp { children; perm; step = None } }
        | Some rs ->
          {
            d_in = t;
            d_out = rs.rs_next.d_out;
            d_node = Dapp { children; perm; step = Some rs };
          })
    in
    Term.Tbl.replace dc t d;
    d

and try_rules_t sys t = function
  | [] -> None
  | r :: rest -> (
    let matcher =
      match r.lhs, t with
      | Term.App (po, _), Term.App (so, _)
        when Signature.is_ac po && Signature.op_equal po so ->
        Ac.match_first r.lhs t
      | _ -> Matching.match_ r.lhs t
    in
    match matcher with
    | None -> try_rules_t sys t rest
    | Some sub -> (
      let discharged =
        match r.cond with
        | None -> Some None
        | Some c ->
          let dc = norm_t sys (Subst.apply sub c) in
          if Term.equal dc.d_out Term.tt then Some (Some dc) else None
      in
      match discharged with
      | None -> try_rules_t sys t rest
      | Some rs_cond ->
        tick sys;
        let rs_next = norm_t sys (Subst.apply sub r.rhs) in
        Some { rs_rule = r; rs_sub = sub; rs_cond; rs_next }))

let start_run sys =
  sys.budget <- sys.step_limit;
  if sys.deadline > 0. then sys.deadline_at <- Sys.time () +. sys.deadline

let normalize_traced sys t =
  start_run sys;
  let d = norm_t sys t in
  Term.Tbl.replace sys.cache t d.d_out;
  (d.d_out, d)

(* ------------------------------------------------------------------ *)
(* Global tracer.                                                      *)
(* ------------------------------------------------------------------ *)

type obligation = { ob_info : sys_info; ob_input : Term.t; ob_deriv : deriv }

type tracer = {
  tr_lock : Mutex.t;
  mutable tr_obs : obligation list;
  tr_seen : (int, unit Term.Tbl.t) Hashtbl.t;
}

let tracer () =
  { tr_lock = Mutex.create (); tr_obs = []; tr_seen = Hashtbl.create 64 }

let tracer_slot : tracer option Atomic.t = Atomic.make None
let set_tracer tr = Atomic.set tracer_slot tr

let obligations tr =
  Mutex.protect tr.tr_lock (fun () -> List.rev tr.tr_obs)

let record tr sys t d =
  match d.d_node with
  | Triv -> ()  (* zero-step runs carry nothing to check *)
  | _ ->
    Mutex.protect tr.tr_lock (fun () ->
        let uid = sys.info.si_uid in
        let seen =
          match Hashtbl.find_opt tr.tr_seen uid with
          | Some s -> s
          | None ->
            let s = Term.Tbl.create 64 in
            Hashtbl.replace tr.tr_seen uid s;
            s
        in
        if not (Term.Tbl.mem seen t) then begin
          Term.Tbl.replace seen t ();
          tr.tr_obs <-
            { ob_info = sys.info; ob_input = t; ob_deriv = d } :: tr.tr_obs
        end)

let normalize sys t =
  match Atomic.get tracer_slot with
  | None ->
    start_run sys;
    norm sys t
  | Some tr ->
    start_run sys;
    let d = norm_t sys t in
    Term.Tbl.replace sys.cache t d.d_out;
    record tr sys t d;
    d.d_out

let pp_rule ppf r =
  match r.cond with
  | None -> Format.fprintf ppf "[%s] %a = %a" r.label Term.pp r.lhs Term.pp r.rhs
  | Some c ->
    Format.fprintf ppf "[%s] %a = %a if %a" r.label Term.pp r.lhs Term.pp r.rhs
      Term.pp c
