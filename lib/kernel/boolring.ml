module B = Signature.Builtin

(* A polynomial is an xor-sum of monomials; a monomial is a product (set) of
   atoms.  Both levels are kept sorted and duplicate-free, so polynomials are
   canonical: [] is false, [[]] (the empty product) is true. *)
type monomial = Term.t list

type t = monomial list

let tru : t = [ [] ]
let fls : t = []

(* Atom and monomial order: [Term.ac_compare] (hash-major), not the raw id
   order — polynomial layout leaks into rebuilt terms ([to_term]), and with
   a weak intern table ids are not stable over time, so an id-based order
   would make boolean normal forms depend on allocation history. *)
let mono_compare = List.compare Term.ac_compare

(* Canonical atom: orient equality atoms by term order; reflexive equalities
   collapse to true. *)
let canonical_atom t =
  match Term.view t with
  | Term.App (o, [ a; b ]) when B.is_eq o ->
    let c = Term.ac_compare a b in
    if c = 0 then None
    else if c < 0 then Some t
    else Some (Term.app_unchecked o [ b; a ])
  | Term.App _ | Term.Var _ -> Some t

let atom t =
  if not (Sort.equal (Term.sort t) Sort.bool) then
    invalid_arg "Boolring.atom: non-boolean term";
  match canonical_atom t with None -> tru | Some a -> [ [ a ] ]

(* xor = symmetric difference of sorted monomial lists (mod-2 sum). *)
let rec xor_ (p : t) (q : t) : t =
  match p, q with
  | [], q -> q
  | p, [] -> p
  | m :: p', n :: q' ->
    let c = mono_compare m n in
    if c = 0 then xor_ p' q'
    else if c < 0 then m :: xor_ p' q
    else n :: xor_ p q'

(* Product of two monomials: union of atom sets. *)
let mono_mul (m : monomial) (n : monomial) : monomial =
  let rec merge m n =
    match m, n with
    | [], n -> n
    | m, [] -> m
    | a :: m', b :: n' ->
      let c = Term.ac_compare a b in
      if c = 0 then a :: merge m' n'
      else if c < 0 then a :: merge m' n
      else b :: merge m n'
  in
  merge m n

let and_ (p : t) (q : t) : t =
  List.fold_left
    (fun acc m -> List.fold_left (fun acc n -> xor_ acc [ mono_mul m n ]) acc q)
    fls p

let not_ p = xor_ tru p
let or_ p q = xor_ (xor_ p q) (and_ p q)
let implies_ p q = not_ (xor_ (and_ p q) p)
let iff_ p q = not_ (xor_ p q)
let is_true p = p = tru
let is_false p = p = fls
let equal (p : t) (q : t) = List.compare mono_compare p q = 0

let rec of_term t =
  match Term.view t with
  | Term.App (o, []) when Signature.op_equal o B.tt -> tru
  | Term.App (o, []) when Signature.op_equal o B.ff -> fls
  | Term.App (o, [ a ]) when Signature.op_equal o B.not_ -> not_ (of_term a)
  | Term.App (o, [ a; b ]) when Signature.op_equal o B.and_ ->
    and_ (of_term a) (of_term b)
  | Term.App (o, [ a; b ]) when Signature.op_equal o B.or_ ->
    or_ (of_term a) (of_term b)
  | Term.App (o, [ a; b ]) when Signature.op_equal o B.xor ->
    xor_ (of_term a) (of_term b)
  | Term.App (o, [ a; b ]) when Signature.op_equal o B.implies ->
    implies_ (of_term a) (of_term b)
  | Term.App (o, [ a; b ]) when Signature.op_equal o B.iff ->
    iff_ (of_term a) (of_term b)
  | Term.App (o, [ c; a; b ]) when B.is_if o && Sort.equal (Term.sort t) Sort.bool ->
    let c = of_term c and a = of_term a and b = of_term b in
    xor_ (xor_ (and_ c a) (and_ c b)) b
  | Term.App _ | Term.Var _ -> atom t

let mono_to_term = function
  | [] -> Term.tt
  | a :: rest -> List.fold_left Term.and_ a rest

let to_term = function
  | [] -> Term.ff
  | m :: rest -> List.fold_left (fun acc n -> Term.xor acc (mono_to_term n)) (mono_to_term m) rest

let atoms_of (p : t) =
  let set = List.fold_left (fun s m -> List.fold_left (fun s a -> Term.Set.add a s) s m) Term.Set.empty p in
  Term.Set.elements set

let atoms t = atoms_of (of_term t)

let map_atoms f (p : t) : t =
  List.fold_left
    (fun acc m ->
      let product = List.fold_left (fun q a -> and_ q (f a)) tru m in
      xor_ acc product)
    fls p

let assign p at value =
  let at = match canonical_atom at with None -> at | Some a -> a in
  map_atoms
    (fun a ->
      if Term.equal a at then if value then tru else fls else [ [ a ] ])
    p

let tautology t = is_true (of_term t)
let count_monomials (p : t) = List.length p

let pp ppf p = Term.pp ppf (to_term p)

(* Constant folding only: terminating, linear, and safe to mix with large
   data-level rule sets (no distribution, so no term-size explosion).  The
   prover handles the full propositional reasoning on polynomials. *)
let const_rules () =
  let b = Sort.bool in
  let x = Term.var "X" b in
  let r label lhs rhs = Rewrite.rule ~label lhs rhs in
  let open Term in
  [
    r "not-true" (not_ tt) ff;
    r "not-false" (not_ ff) tt;
    r "not-not" (not_ (not_ x)) x;
    r "and-unit" (and_ tt x) x;
    r "and-zero" (and_ ff x) ff;
    r "or-unit" (or_ ff x) x;
    r "or-zero" (or_ tt x) tt;
    r "xor-unit" (xor ff x) x;
    r "xor-one" (xor tt x) (not_ x);
    r "implies-true-left" (implies tt x) x;
    r "implies-false-left" (implies ff x) tt;
    r "implies-true-right" (implies x tt) tt;
    r "iff-true" (iff tt x) x;
    r "iff-false" (iff ff x) (not_ x);
  ]

let rewrite_rules () =
  let b = Sort.bool in
  let x = Term.var "X" b and y = Term.var "Y" b and z = Term.var "Z" b in
  let r label lhs rhs = Rewrite.rule ~label lhs rhs in
  let open Term in
  [
    r "not-def" (not_ x) (xor x tt);
    r "or-def" (or_ x y) (xor (xor (and_ x y) x) y);
    r "implies-def" (implies x y) (xor (xor (and_ x y) x) tt);
    r "iff-def" (iff x y) (xor (xor x y) tt);
    r "if-bool" (ite x y z) (xor (xor (and_ x y) (and_ x z)) z);
    r "xor-false" (xor x ff) x;
    r "xor-nil" (xor x x) ff;
    r "xor-nil-ext" (xor x (xor x z)) z;
    r "and-true" (and_ x tt) x;
    r "and-true-ext" (and_ x (and_ tt z)) (and_ x z);
    r "and-false" (and_ x ff) ff;
    r "and-false-ext" (and_ x (and_ ff z)) ff;
    r "and-idem" (and_ x x) x;
    r "and-idem-ext" (and_ x (and_ x z)) (and_ x z);
    r "distrib" (and_ x (xor y z)) (xor (and_ x y) (and_ x z));
  ]
