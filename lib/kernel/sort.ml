type t = { name : string; hidden : bool }

(* The intern table is global and may be consulted from several domains at
   once (proof tasks running on a {!Sched.Pool}), so every access takes the
   lock; interning is far off any hot path. *)
let table : (string, t) Hashtbl.t = Hashtbl.create 64
let order : t list ref = ref []
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
    Mutex.unlock lock;
    v
  | exception e ->
    Mutex.unlock lock;
    raise e

let intern ~hidden name =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some s ->
        if s.hidden <> hidden then
          invalid_arg
            (Printf.sprintf "Sort.%s: %S already interned with other visibility"
               (if hidden then "hidden" else "visible")
               name);
        s
      | None ->
        let s = { name; hidden } in
        Hashtbl.add table name s;
        order := s :: !order;
        s)

let visible name = intern ~hidden:false name
let hidden name = intern ~hidden:true name
let find name = locked (fun () -> Hashtbl.find table name)
let mem name = locked (fun () -> Hashtbl.mem table name)
let equal s1 s2 = s1 == s2 || String.equal s1.name s2.name
let compare s1 s2 = String.compare s1.name s2.name

let pp ppf s =
  Format.pp_print_string ppf s.name;
  if s.hidden then Format.pp_print_char ppf '*'

let bool = visible "Bool"
let all () = locked (fun () -> List.rev !order)
