module StringSet = Set.Make (String)

type failure = {
  reason : string;
  unorientable : (Term.t * Term.t) option;
}

type result =
  | Completed of Rewrite.rule list
  | Failed of failure

(* All subterm occurrences of [t] with their one-hole rebuild functions,
   pre-order (root first). *)
let rec contexts t =
  let here = t, fun x -> x in
  match Term.view t with
  | Term.Var _ -> [ here ]
  | Term.App (o, args) ->
    let sub =
      List.concat
        (List.mapi
           (fun i a ->
             List.map
               (fun (s, rebuild) ->
                 ( s,
                   fun x ->
                     Term.app_unchecked o
                       (List.mapi (fun j b -> if i = j then rebuild x else b) args) ))
               (contexts a))
           args)
    in
    here :: sub

let rename_apart =
  let counter = ref 0 in
  fun (r : Rewrite.rule) ->
    incr counter;
    let tag = Printf.sprintf "%%kb%d-" !counter in
    let sub =
      Subst.of_list
        (List.map
           (fun (v : Term.var) ->
             v, Term.var (tag ^ v.v_name) v.v_sort)
           (Term.vars r.Rewrite.lhs))
    in
    Rewrite.rule ~label:r.Rewrite.label
      (Subst.apply sub r.Rewrite.lhs)
      (Subst.apply sub r.Rewrite.rhs)

type overlap = {
  outer : Rewrite.rule;  (** the rule whose left-hand side hosts the overlap *)
  inner : Rewrite.rule;  (** the rule rewriting inside (possibly [outer] itself) *)
  peak : Term.t;  (** the instantiated overlap term both sides rewrite *)
  left : Term.t;  (** peak rewritten by [inner] at the overlap position *)
  right : Term.t;  (** peak rewritten by [outer] at the root *)
}

(* Overlaps of [r2]'s lhs (renamed apart) into non-variable positions of
   [r1]'s lhs.  The root overlap of a rule with (a copy of) itself is the
   trivial one and is skipped; every other self-overlap — e.g. the classic
   associativity overlap — is genuine and kept.

   [renamed2] lets a caller rename [r2] once and reuse the copy across many
   [r1] partners: under the hash-consed kernel each [rename_apart] interns a
   fresh copy of the rule's whole term DAG (the fresh tag makes every
   subterm containing a variable new), so renaming per pair floods the
   intern table.  A shared copy is sound because its tag came from the
   global counter, so it cannot collide with variables of any rule that
   existed before it was made. *)
let overlaps ?renamed2 (r1 : Rewrite.rule) (r2 : Rewrite.rule) =
  let same = Term.equal r1.Rewrite.lhs r2.Rewrite.lhs && Term.equal r1.Rewrite.rhs r2.Rewrite.rhs in
  let orig2 = r2 in
  let r2 = match renamed2 with Some r -> r | None -> rename_apart r2 in
  List.filter_map
    (fun (s, rebuild) ->
      match Term.view s with
      | Term.Var _ -> None
      | Term.App _ ->
        let at_root = Term.equal s r1.Rewrite.lhs in
        if same && at_root then None
        else
          Option.map
            (fun sub ->
              {
                outer = r1;
                inner = orig2;
                peak = Subst.apply sub r1.Rewrite.lhs;
                left = Subst.apply sub (rebuild r2.Rewrite.rhs);
                right = Subst.apply sub r1.Rewrite.rhs;
              })
            (Matching.unify s r2.Rewrite.lhs))
    (contexts r1.Rewrite.lhs)

let critical_pairs r1 r2 =
  List.map (fun o -> o.left, o.right) (overlaps r1 r2)

(* All critical pairs of a rule set: every unordered rule pair in both
   orientations, plus each rule overlapped with (a renamed copy of) itself.
   Pairs are pre-filtered by head-operator occurrence — unifying two
   applications requires equal head operators, so a rule can only overlap
   into an lhs that mentions its head operator. *)
let all_critical_pairs (rules : Rewrite.rule list) =
  let arr = Array.of_list rules in
  let n = Array.length arr in
  let head (r : Rewrite.rule) =
    match Term.view r.Rewrite.lhs with
    | Term.App (o, _) -> o.Signature.name
    | Term.Var _ -> ""
  in
  let heads_in =
    Array.map
      (fun (r : Rewrite.rule) ->
        List.fold_left
          (fun set t ->
            match Term.view t with
            | Term.App (o, _) -> StringSet.add o.Signature.name set
            | Term.Var _ -> set)
          StringSet.empty
          (Term.subterms r.Rewrite.lhs))
      arr
  in
  let renamed = Array.map rename_apart arr in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i do
      let r1 = arr.(i) and r2 = arr.(j) in
      if j > i && StringSet.mem (head r1) heads_in.(j) then
        acc := overlaps ~renamed2:renamed.(i) r2 r1 @ !acc;
      if StringSet.mem (head r2) heads_in.(i) then
        acc := overlaps ~renamed2:renamed.(j) r1 r2 @ !acc
    done
  done;
  !acc

let joinable rules t1 t2 =
  let sys = Rewrite.make rules in
  Term.equal (Rewrite.normalize sys t1) (Rewrite.normalize sys t2)

let complete ?(max_rules = 64) ~prec equations =
  let counter = ref 0 in
  let mk_rule lhs rhs =
    incr counter;
    Rewrite.rule ~label:(Printf.sprintf "kb-%d" !counter) lhs rhs
  in
  (* [rules] is kept interreduced lazily: right-hand sides are normalized
     when the rule is created; stale rules still rewrite correctly, they
     are merely redundant. *)
  let rec go rules agenda =
    match agenda with
    | [] -> Completed rules
    | (t1, t2) :: agenda -> (
      let sys = Rewrite.make rules in
      let n1 = Rewrite.normalize sys t1 and n2 = Rewrite.normalize sys t2 in
      if Term.equal n1 n2 then go rules agenda
      else if List.length rules >= max_rules then
        Failed { reason = "rule limit exceeded"; unorientable = None }
      else
        match Order.orients ~prec (n1, n2) with
        | `No ->
          Failed { reason = "unorientable equation"; unorientable = Some (n1, n2) }
        | (`Lr | `Rl) as dir ->
          let lhs, rhs = match dir with `Lr -> n1, n2 | `Rl -> n2, n1 in
          let rule = mk_rule lhs rhs in
          (* Interreduce: any existing rule whose left-hand side the new
             rule rewrites is dropped and its equation requeued — it will
             come back simplified or join away. *)
          let newsys = Rewrite.make [ rule ] in
          let kept, requeued =
            List.partition
              (fun (r : Rewrite.rule) ->
                Term.equal (Rewrite.normalize newsys r.Rewrite.lhs) r.Rewrite.lhs)
              rules
          in
          let requeued =
            List.map (fun (r : Rewrite.rule) -> r.Rewrite.lhs, r.Rewrite.rhs) requeued
          in
          (* Self-overlaps of the new rule once, then both orientations
             against every kept rule (the old [rule :: kept] traversal
             computed the self-pairs twice). *)
          let fresh_pairs =
            critical_pairs rule rule
            @ List.concat_map
                (fun r -> critical_pairs rule r @ critical_pairs r rule)
                kept
          in
          go (kept @ [ rule ]) (agenda @ requeued @ fresh_pairs))
  in
  go [] equations
