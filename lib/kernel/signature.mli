(** Operators and signatures.

    An operator declaration gives a name, an arity (list of argument sorts)
    and a coarity (result sort), as in CafeOBJ's
    [op f : S1 ... Sn -> S].  Operators carry attributes:

    - [Ctor]: the operator is a free data constructor.  Terms built from
      constructors enjoy the no-confusion/no-junk properties used by the
      perfect-cryptography assumption (Section 4.1): two constructor terms
      are equal iff they have the same constructor and equal arguments.
    - [Ac]: associative-commutative (e.g. the bag union of the network).
    - [Comm]: commutative only.

    A signature is a mutable collection of operator declarations with unique
    names (we do not support overloading; the paper's overloaded [k] is split
    into [pk] and [hkey] in our TLS model). *)

type attr = Ctor | Ac | Comm

type op = private {
  name : string;
  arity : Sort.t list;
  sort : Sort.t;
  attrs : attr list;
  index : int;  (** creation index, used for fast total orders *)
}

type t

(** [create ()] makes an empty signature (the builtin boolean operators are
    always reachable through {!Builtin}). *)
val create : unit -> t

(** [declare sg name arity sort ~attrs] adds an operator.
    @raise Invalid_argument if [name] is already declared in [sg] with a
    different profile. Re-declaring the identical profile is idempotent. *)
val declare : t -> string -> Sort.t list -> Sort.t -> attrs:attr list -> op

(** [find sg name] looks an operator up by name.
    @raise Not_found if absent. *)
val find : t -> string -> op

val find_opt : t -> string -> op option
val mem : t -> string -> bool

(** [ops sg] lists the declared operators in declaration order. *)
val ops : t -> op list

(** [constructors_of sg sort] lists the [Ctor] operators whose coarity is
    [sort], in declaration order.  This drives constructor case-splitting in
    the prover. *)
val constructors_of : t -> Sort.t -> op list

val is_ctor : op -> bool
val is_ac : op -> bool
val is_comm : op -> bool
val op_equal : op -> op -> bool
val op_compare : op -> op -> int

(** [same_profile o1 o2] — same arity sorts and result sort (the name is not
    compared).  Two same-named operators with the same profile denote the
    same function symbol: the hash-consed term kernel collapses them, so any
    consumer telling overloads apart must compare profiles, not pointers. *)
val same_profile : op -> op -> bool
val pp_op : Format.formatter -> op -> unit

(** Builtin operators of the [Bool] sort, shared by every signature.  Their
    rewrite theory lives in {!Boolring}; [if_then_else] is polymorphic and is
    interned per result sort. *)
module Builtin : sig
  val tt : op
  val ff : op
  val not_ : op
  val and_ : op
  val or_ : op
  val xor : op
  val implies : op
  val iff : op

  (** [if_ sort] is the [if_then_else_fi] operator at result sort [sort]. *)
  val if_ : Sort.t -> op

  (** [eq sort] is the equality predicate [_=_] at argument sort [sort],
      with coarity [Bool]. *)
  val eq : Sort.t -> op

  (** [is_if op] / [is_eq op] recognize the polymorphic builtins. *)
  val is_if : op -> bool

  val is_eq : op -> bool

  (** [is_builtin op] is true for every operator created by this module. *)
  val is_builtin : op -> bool
end
