(** Term indexing for rule selection — a discrimination tree with AC-aware
    buckets.

    [try_rules] used to scan every rule whose head operator matched the
    subject's root; on the generated TLS system that means every
    [trans-*-nw] rule is re-matched against every [nw(...)] subterm even
    though at most one action constructor can possibly fit.  The index
    compiles the left-hand sides of a rule set once and answers, per
    subject, a small candidate list that provably contains every rule the
    linear scan could fire ({e never-miss}):

    - rules whose head operator is {e not} AC live in a {b discrimination
      tree} keyed on the pre-order symbol string of the pattern —
      operator name and argument count per node, a wildcard for pattern
      variables.  Below an AC/Comm operator the engine matches modulo
      argument order, so those children are compiled as wildcards (only
      the root symbol discriminates there): the tree never assumes an
      ordering the matcher does not.
    - rules whose head operator {e is} AC live in an {b AC bucket}: per
      rule, the multiset profile of its flattened arguments (count of
      flattened arguments, count of variable arguments, multiset of root
      symbols of the rigid arguments).  A subject is compatible only if
      its own flattened-argument profile can cover the rule's — the exact
      pre-condition of [Ac.match_]'s rigid-placement/variable-distribution
      search.  Profiles are multisets, so they are invariant under AC
      canonicalization (the canonical flag permutes arguments, never adds
      or removes them).

    Candidates are always returned in rule-insertion order: the rewriter
    tries them exactly as the linear scan would, so the applied rule — and
    therefore every traced derivation and certificate — is byte-identical
    with and without the index.

    The index is {e defensive}: {!validate} replays the self-retrieval
    invariant (every compiled rule must be a candidate for its own
    left-hand side) and permanently degrades a corrupted index to
    full-bucket answers, so a detected inconsistency can only cost speed,
    never soundness.  {!unsafe_drop_slot} exists for the adversarial tests
    that prove this. *)

type 'a t

(** [build ~gen ~lhs entries] compiles an index over [entries], keyed by
    the left-hand sides [lhs e].  Entry order is remembered and respected
    by {!candidates}.  [gen] stamps the index with the identity of the
    rule set it was compiled from (the owning system's uid); it is
    reported by {!info} and lets callers assert an index was rebuilt when
    the rule set changed.
    @raise Invalid_argument if some [lhs e] is a variable. *)
val build : ?gen:int -> lhs:('a -> Term.t) -> 'a list -> 'a t

(** [candidates t subject] is the entries whose left-hand side may match
    at the root of [subject], in insertion order.  Guaranteed to be a
    superset of the entries the linear scan would fire (never-miss); a
    [Var] subject has no candidates (left-hand sides are never
    variables).  On an index degraded by {!validate} the whole head
    bucket is returned and counted as a fallback. *)
val candidates : 'a t -> Term.t -> 'a list

(** [ok t] is [false] once {!validate} has detected corruption (every
    query then falls back to the full bucket). *)
val ok : 'a t -> bool

(** [validate t] replays the self-retrieval invariant: every compiled
    entry must appear in [candidates t (lhs entry)].  On failure the
    index is marked not-{!ok} (degrading all queries to full-bucket
    fallbacks) and the error names the offending bucket and slot. *)
val validate : 'a t -> (unit, string) result

type info = {
  ix_rules : int;  (** entries compiled *)
  ix_buckets : int;  (** distinct head-operator buckets *)
  ix_ac_buckets : int;  (** buckets using the AC multiset profile *)
  ix_generation : int;  (** the [gen] the index was built with *)
  ix_ok : bool;
}

val info : 'a t -> info

(** {1 Process-wide query accounting}

    Mirrors the normal-form memo's always-on counters: per-query atomics
    summed across every index in the process, plus [kernel.index.*]
    {!Telemetry.Probe} counters for profiled runs.  Queries on head
    operators with no rules at all are not counted — they do no filtering
    work and would drown the ratio in constructor noise. *)

type stats = {
  queries : int;  (** candidate lookups answered by index filtering *)
  hits : int;  (** candidates returned by those lookups *)
  filtered : int;  (** rules excluded by those lookups *)
  fallbacks : int;
      (** lookups answered with the full bucket instead: the index was
          degraded by {!validate}, or rule selection was switched back to
          the linear scan ({!note_fallback}) *)
}

val stats : unit -> stats
val reset_stats : unit -> unit

(** [note_fallback n] records one full-bucket answer of size [n] made by a
    caller that bypassed the index (the rewriter's linear-scan path when
    indexing is disabled). *)
val note_fallback : int -> unit

(**/**)

(** Test-only adversarial hook: silently corrupt the bucket for head
    operator [bucket] by unlinking entry [slot] — dropped from its
    discrimination-tree leaf, or its AC profile tampered into one its own
    left-hand side cannot satisfy.  Returns [false] if the bucket or slot
    does not exist.  After this, {!candidates} can miss the entry;
    {!validate} must detect it. *)
val unsafe_drop_slot : 'a t -> bucket:string -> slot:int -> bool
