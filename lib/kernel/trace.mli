(** Human-readable linearization of {!Rewrite} derivations.

    A derivation is tree-shaped (it mirrors the innermost strategy);
    [linearize] flattens it into the classical step-by-step presentation —
    one entry per rule application or AC canonicalization, each showing the
    {e whole} term after the step and the redex position as a path of
    argument indices.  Used by [caferepl --trace]. *)

type step = {
  st_path : int list;  (** redex position: argument indices from the root *)
  st_label : string;
      (** rule label; ["(ac)"] for an AC/Comm canonicalization step;
          ["(cond l)"] marks the condition discharge of rule [l] *)
  st_term : Term.t;  (** the whole term after the step *)
}

val linearize : Rewrite.deriv -> step list
val pp_step : Format.formatter -> step -> unit
val pp_steps : Format.formatter -> step list -> unit
