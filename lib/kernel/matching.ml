let commutative o = Signature.is_comm o || Signature.is_ac o

let rec go sub pat subject =
  match Term.view pat, Term.view subject with
  | Term.Var v, _ -> (
    if not (Sort.equal v.Term.v_sort (Term.sort subject)) then None
    else
      match Subst.find sub v with
      | Some t -> if Term.equal t subject then Some sub else None
      | None -> Some (Subst.bind sub v subject))
  | Term.App (po, pargs), Term.App (so, sargs)
    when Signature.op_equal po so && List.length pargs = List.length sargs -> (
    match pargs, sargs with
    | [ p1; p2 ], [ s1; s2 ] when commutative po -> (
      match go_list sub [ p1; p2 ] [ s1; s2 ] with
      | Some _ as r -> r
      | None -> go_list sub [ p1; p2 ] [ s2; s1 ])
    | _ -> go_list sub pargs sargs)
  | Term.App _, (Term.App _ | Term.Var _) -> None

and go_list sub pats subjects =
  match pats, subjects with
  | [], [] -> Some sub
  | p :: ps, s :: ss -> (
    match go sub p s with Some sub' -> go_list sub' ps ss | None -> None)
  | _, _ -> None

let match_under sub pat subject = go sub pat subject
let match_ pat subject = go Subst.empty pat subject
let matches pat subject = Option.is_some (match_ pat subject)

(* Unification with occurs check.  Substitutions are kept idempotent by
   applying the current bindings before inspecting a term. *)

let rec resolve sub t =
  match Term.view t with
  | Term.Var v -> (
    match Subst.find sub v with Some t' -> resolve sub t' | None -> t)
  | Term.App _ -> t

let bind_resolved sub (v : Term.var) t =
  if not (Sort.equal v.Term.v_sort (Term.sort t)) then None
  else
    let t' = Subst.apply sub t in
    if Term.occurs ~inside:t' (Term.var v.Term.v_name v.Term.v_sort) then None
    else Some (Subst.bind sub v t')

let rec unify_go sub t1 t2 =
  let t1 = resolve sub t1 and t2 = resolve sub t2 in
  match Term.view t1, Term.view t2 with
  | Term.Var v1, Term.Var v2
    when String.equal v1.v_name v2.v_name && Sort.equal v1.v_sort v2.v_sort ->
    Some sub
  | Term.Var v, _ -> bind_resolved sub v t2
  | _, Term.Var v -> bind_resolved sub v t1
  | Term.App (o1, a1), Term.App (o2, a2)
    when Signature.op_equal o1 o2 && List.length a1 = List.length a2 ->
    List.fold_left2
      (fun acc x y -> match acc with None -> None | Some s -> unify_go s x y)
      (Some sub) a1 a2
  | Term.App _, Term.App _ -> None

let unify t1 t2 =
  match unify_go Subst.empty t1 t2 with
  | None -> None
  | Some sub ->
    (* Close the substitution so it can be applied in one pass. *)
    let close (v, t) = v, Subst.apply sub (resolve sub t) in
    let rec fix sub =
      let closed = Subst.of_list (List.map close (Subst.bindings sub)) in
      if
        List.for_all2
          (fun (_, t1) (_, t2) -> Term.equal t1 t2)
          (Subst.bindings sub) (Subst.bindings closed)
      then sub
      else fix closed
    in
    Some (fix sub)
