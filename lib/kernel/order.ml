let var_equal (v1 : Term.var) (v2 : Term.var) =
  String.equal v1.v_name v2.v_name && Sort.equal v1.v_sort v2.v_sort

(* Lexicographic path order.  s > t iff
   - t is a variable occurring in s with s <> t; or, for s = f(s1..sm):
   - some si >= t; or
   - t = g(t1..tn) with f > g and s > tj for all j; or
   - t = f(t1..tn) with (s1..sm) >lex (t1..tn) and s > tj for all j. *)
let lpo ~prec s t =
  let rec gt s t =
    match Term.view s, Term.view t with
    | Term.Var _, _ -> false
    | Term.App _, Term.Var v ->
      List.exists (var_equal v) (Term.vars s)
    | Term.App (f, ss), Term.App (g, ts) ->
      List.exists (fun si -> ge si t) ss
      ||
      let c = prec f g in
      if c > 0 then List.for_all (gt s) ts
      else if c = 0 then lex ss ts && List.for_all (gt s) ts
      else false
  and ge s t = Term.equal s t || gt s t
  and lex ss ts =
    match ss, ts with
    | s1 :: ss', t1 :: ts' ->
      if Term.equal s1 t1 then lex ss' ts' else gt s1 t1
    | [], _ :: _ | _ :: _, [] | [], [] -> false
  in
  gt s t

let precedence_of_list ops o1 o2 =
  let index o =
    let rec go i = function
      | [] -> None
      | x :: rest -> if Signature.op_equal x o then Some i else go (i + 1) rest
    in
    go 0 ops
  in
  match index o1, index o2 with
  | Some i, Some j -> compare i j
  | Some _, None -> 1
  | None, Some _ -> -1
  | None, None -> Signature.op_compare o1 o2

(* ------------------------------------------------------------------ *)
(* Precedence search: find a total operator precedence under which every
   rule is LPO-decreasing.

   The search runs the LPO proof rules with an initially-empty strict
   partial order on operator names.  Whenever a proof branch needs [f > g]
   and the pair is undecided, it tentatively assumes it (unless [g >= f]
   is already implied, which would close a cycle); branches that fail roll
   their assumptions back.  Constraints accumulate across rules, so the
   greedy choice made for one rule constrains the next — rules that fail
   on the first pass get a second chance once the whole system has been
   seen.  The resulting partial order is extended to a total precedence
   and re-checked with the ordinary {!lpo}: LPO is monotone in the
   precedence (orderings only ever appear positively), so the extension
   preserves every proof found during the search. *)

type search_result = {
  precedence : Signature.op list;  (** total, later = greater *)
  prec : Signature.op -> Signature.op -> int;  (** ready for {!lpo} *)
  unoriented : Rewrite.rule list;  (** rules with no LPO proof found *)
}

(* Operators are identified by their full profile, not just their name:
   the paper overloads names across sorts (the TLS model has both an
   action [cert] and a message-payload constructor [cert]), and a
   name-keyed precedence could never order two such symbols relative to
   each other. *)
let op_key (o : Signature.op) =
  String.concat ""
    (o.Signature.name :: "/"
     :: List.map (fun (s : Sort.t) -> s.Sort.name ^ ",") o.Signature.arity)
  ^ "->" ^ o.Signature.sort.Sort.name

let search_precedence ?(hint = []) ~ops rules =
  (* [succs]: direct edges of the strict order, [f.name > g.name].
     [trail]: LIFO undo log — each entry is the cell whose head to pop. *)
  let succs : (string, string list ref) Hashtbl.t = Hashtbl.create 64 in
  let trail : string list ref list ref = ref [] in
  let cell f =
    match Hashtbl.find_opt succs f with
    | Some c -> c
    | None ->
      let c = ref [] in
      Hashtbl.add succs f c;
      c
  in
  let reachable f g =
    let seen = Hashtbl.create 16 in
    let rec go f =
      match Hashtbl.find_opt succs f with
      | None -> false
      | Some c ->
        List.exists
          (fun h ->
            (not (Hashtbl.mem seen h))
            && begin
                 Hashtbl.add seen h ();
                 String.equal h g || go h
               end)
          !c
    in
    go f
  in
  let known_gt f g = (not (String.equal f g)) && reachable f g in
  let assume f g =
    if String.equal f g || reachable g f then false
    else begin
      let c = cell f in
      c := g :: !c;
      trail := c :: !trail;
      true
    end
  in
  let save () = !trail in
  let restore sp =
    while !trail != sp do
      match !trail with
      | c :: rest ->
        c := List.tl !c;
        trail := rest
      | [] -> assert false
    done
  in
  let attempt th =
    let sp = save () in
    if th () then true
    else begin
      restore sp;
      false
    end
  in
  (* Seed the order with the user hint (later = greater). *)
  let rec seed = function
    | g :: (f :: _ as rest) ->
      ignore (assume (op_key f) (op_key g) : bool);
      seed rest
    | [ _ ] | [] -> ()
  in
  seed hint;
  let rec gt s t =
    match Term.view s, Term.view t with
    | Term.Var _, _ -> false
    | Term.App _, Term.Var v -> List.exists (var_equal v) (Term.vars s)
    | Term.App (f, ss), Term.App (g, ts) ->
      List.exists (fun si -> attempt (fun () -> ge si t)) ss
      ||
      let fn = op_key f and gn = op_key g in
      if String.equal fn gn then attempt (fun () -> lex ss ts && List.for_all (gt s) ts)
      else if known_gt fn gn then attempt (fun () -> List.for_all (gt s) ts)
      else attempt (fun () -> assume fn gn && List.for_all (gt s) ts)
  and ge s t = Term.equal s t || gt s t
  and lex ss ts =
    match ss, ts with
    | s1 :: ss', t1 :: ts' ->
      if Term.equal s1 t1 then lex ss' ts' else attempt (fun () -> gt s1 t1)
    | [], _ :: _ | _ :: _, [] | [], [] -> false
  in
  let orient (r : Rewrite.rule) =
    attempt (fun () ->
        gt r.Rewrite.lhs r.Rewrite.rhs
        && match r.Rewrite.cond with None -> true | Some c -> gt r.Rewrite.lhs c)
  in
  let failed = List.filter (fun r -> not (orient r)) rules in
  (* Second pass: constraints discovered later may orient early failures. *)
  let unoriented = List.filter (fun r -> not (orient r)) failed in
  (* Totalize: topological order of the constraint graph over the full
     operator universe, greatest first, deterministic tie-break by name. *)
  let universe = Hashtbl.create 64 in
  let add_op (o : Signature.op) =
    if not (Hashtbl.mem universe (op_key o)) then Hashtbl.add universe (op_key o) o
  in
  List.iter add_op ops;
  List.iter add_op hint;
  List.iter
    (fun (r : Rewrite.rule) ->
      List.iter
        (fun t -> match Term.view t with Term.App (o, _) -> add_op o | Term.Var _ -> ())
        (Term.subterms r.Rewrite.lhs @ Term.subterms r.Rewrite.rhs
        @ match r.Rewrite.cond with None -> [] | Some c -> Term.subterms c))
    rules;
  let names = Hashtbl.fold (fun n _ acc -> n :: acc) universe [] in
  let names = List.sort String.compare names in
  (* Kahn's algorithm on edges f -> g (f greater); emit greatest first. *)
  let indegree = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace indegree n 0) names;
  List.iter
    (fun f ->
      match Hashtbl.find_opt succs f with
      | None -> ()
      | Some c ->
        List.iter
          (fun g ->
            if Hashtbl.mem indegree g then
              Hashtbl.replace indegree g (Hashtbl.find indegree g + 1)
            else Hashtbl.replace indegree g 1)
          !c)
    names;
  let ready = ref (List.filter (fun n -> Hashtbl.find indegree n = 0) names) in
  let order = ref [] in
  while !ready <> [] do
    match !ready with
    | [] -> ()
    | n :: rest ->
      ready := rest;
      order := n :: !order;
      (match Hashtbl.find_opt succs n with
      | None -> ()
      | Some c ->
        let next =
          List.filter
            (fun g ->
              match Hashtbl.find_opt indegree g with
              | Some d ->
                Hashtbl.replace indegree g (d - 1);
                d - 1 = 0
              | None -> false)
            (List.sort_uniq String.compare !c)
        in
        ready := List.sort String.compare (next @ !ready))
  done;
  (* [order] is now least-to-greatest; ops outside the universe (none in
     practice) are dropped. *)
  let precedence =
    List.filter_map (fun n -> Hashtbl.find_opt universe n) !order
  in
  let rank = Hashtbl.create 64 in
  List.iteri (fun i n -> Hashtbl.replace rank n i) !order;
  let prec o1 o2 =
    match Hashtbl.find_opt rank (op_key o1), Hashtbl.find_opt rank (op_key o2) with
    | Some i, Some j -> compare i j
    | Some _, None -> 1
    | None, Some _ -> -1
    | None, None -> Signature.op_compare o1 o2
  in
  { precedence; prec; unoriented }

let orients ~prec (lhs, rhs) =
  if lpo ~prec lhs rhs then `Lr else if lpo ~prec rhs lhs then `Rl else `No

let terminating ~prec rules =
  List.for_all (fun (r : Rewrite.rule) -> lpo ~prec r.Rewrite.lhs r.Rewrite.rhs) rules
