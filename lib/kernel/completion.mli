(** Knuth-Bendix completion.

    The paper's method rests on equations used as left-to-right rewrite
    rules; completion is the classical procedure that turns a set of
    equations into a {e confluent} and terminating rule set (when it
    succeeds), so that rewriting decides the equational theory — the same
    property CafeOBJ's BOOL enjoys by construction (Hsiang-Dershowitz,
    the paper's reference [5], is exactly about such rewrite methods).

    The implementation is the textbook procedure: compute critical pairs
    by unifying left-hand sides into non-variable subterm positions,
    normalize both sides with the current rules, orient the survivors with
    the LPO ({!Order.lpo}) and iterate. *)

type failure = {
  reason : string;
  unorientable : (Term.t * Term.t) option;
}

type result =
  | Completed of Rewrite.rule list
  | Failed of failure

(** A critical overlap: [peak] rewrites to [left] by [inner] (applied at
    the overlap position) and to [right] by [outer] (applied at the
    root). *)
type overlap = {
  outer : Rewrite.rule;
  inner : Rewrite.rule;
  peak : Term.t;
  left : Term.t;
  right : Term.t;
}

(** [overlaps r1 r2] computes the overlaps of [r2]'s left-hand side into
    non-variable positions of [r1]'s (variables renamed apart).  With
    [r1 = r2] this includes the genuine self-overlaps — e.g. the classic
    associativity overlap — and skips only the trivial root one.
    [renamed2] supplies a pre-renamed copy of [r2], letting a caller that
    pairs [r2] against many partners rename once instead of per pair (the
    hash-consed kernel would otherwise intern a fresh copy of the rule's
    term DAG for every call). *)
val overlaps : ?renamed2:Rewrite.rule -> Rewrite.rule -> Rewrite.rule -> overlap list

(** [critical_pairs r1 r2] is [overlaps r1 r2] reduced to the divergent
    term pairs [(left, right)]. *)
val critical_pairs : Rewrite.rule -> Rewrite.rule -> (Term.t * Term.t) list

(** [all_critical_pairs rules] computes every critical overlap of the rule
    set: both orientations of every rule pair, self-overlaps included.
    This is the set whose joinability certifies local confluence
    (Knuth-Bendix criterion); used by the spec linter. *)
val all_critical_pairs : Rewrite.rule list -> overlap list

(** [complete ?max_rules ?max_steps ~prec equations] runs completion.
    @param max_rules abort when more rules than this are generated
    (default 64). *)
val complete :
  ?max_rules:int ->
  prec:(Signature.op -> Signature.op -> int) ->
  (Term.t * Term.t) list ->
  result

(** [joinable rules t1 t2] — do [t1] and [t2] have the same normal form
    under [rules]?  With a completed system this decides the equational
    theory. *)
val joinable : Rewrite.rule list -> Term.t -> Term.t -> bool
