(** Left-to-right term rewriting — the kernel of CafeOBJ's [red] command.

    Equations are oriented left-to-right as rewrite rules (Section 2.1) and
    a term is normalized with a leftmost-innermost strategy.  Conditional
    rules (CafeOBJ's [ceq]) apply only when their condition normalizes to
    [true].

    Systems are immutable; proof passages extend a base system with their
    assumption equations ({!extend}), which mirrors CafeOBJ's
    [open ... close] temporary modules.  Each system carries a memoization
    table and rewrite-step counters used by the benchmarks.

    Normalization can additionally record a {e derivation} — a replayable
    proof trace of every rule application, condition discharge and AC
    permutation — which the engine-independent [Certify] checker validates
    (de Bruijn criterion: the big engine emits certificates, a small
    separate kernel checks them).

    When the telemetry probe is on ([Telemetry.Probe.set_enabled true]),
    every top-level normalization records a [cat = "red"] span and every
    rule application / condition discharge is profiled per rule label
    (hit count, self and inclusive time).  With the probe off the
    instrumentation reduces to one flag read per guarded site; normal
    forms and step counts are identical either way. *)

type rule = private {
  label : string;
  lhs : Term.t;
  rhs : Term.t;
  cond : Term.t option;  (** [Some c]: rule fires only when [c] reduces to [true] *)
}

(** [rule ?cond ~label lhs rhs] builds a rule.
    @raise Invalid_argument if [lhs] is a variable, if the two sides have
    different sorts, or if [rhs] (or [cond]) contains variables not occurring
    in [lhs]. *)
val rule : ?cond:Term.t -> label:string -> Term.t -> Term.t -> rule

type system

(** [make rules] builds a system; rules are tried in list order. *)
val make : rule list -> system

val rules : system -> rule list

(** [extend sys rules] is a new system with [rules] appended (tried first,
    so passage assumptions take precedence over the base spec — matching
    CafeOBJ, where the innermost module's equations shadow imports). *)
val extend : system -> rule list -> system

(** [normalize sys t] is the normal form of [t].  When a global tracer is
    installed ({!set_tracer}), the run additionally records a derivation
    obligation for later certification.
    @raise Limit_exceeded if the step budget or deadline is exhausted (a
    safety net against non-terminating rule sets).  The exhausted run
    {e never} returns a partial normal form: callers either propagate the
    exception or report the reduction as inconclusive — a truncated
    reduction must not be mistaken for a proved [true]. *)
val normalize : system -> Term.t -> Term.t

(** [normalize_uncached sys t] is the seed engine's path: identical
    strategy and step accounting to {!normalize}, but memoized only in a
    private table that dies with the call — the shared memo is neither
    read nor written.  Kept as the reference implementation for the
    differential test suite.
    @raise Limit_exceeded as {!normalize}. *)
val normalize_uncached : system -> Term.t -> Term.t

(** Which resource ran out: the per-call step budget, or the per-call
    CPU-seconds deadline. *)
type limit = Steps of int | Deadline of float

exception Limit_exceeded of { limit : limit; steps : int }

(** [set_step_limit sys n] caps the number of rule applications in a single
    [normalize] call (default [5_000_000]). *)
val set_step_limit : system -> int -> unit

(** [set_deadline sys d] additionally caps a single [normalize] call at [d]
    CPU-seconds ([Sys.time]); [0.] (the default) disables the deadline.
    Checked once per rule application. *)
val set_deadline : system -> float -> unit

(** [steps sys] is the cumulative number of rule applications performed by
    this system since creation.  The counter is atomic and shared with
    every system derived by {!extend}, so totals are exact even when the
    sched pool normalizes on several domains at once. *)
val steps : system -> int

(** [reset_steps sys] zeroes the counter. *)
val reset_steps : system -> unit

(** [clear_cache sys] drops the memoization tables (normal forms remain
    valid; this is only for memory control in long benchmark runs). *)
val clear_cache : system -> unit

(** {1 Normal-form memo}

    Each system owns a striped, generation-stamped memo mapping interned
    terms to their normal forms, shared read-mostly across the sched
    pool's domains.  Entries are stamped with the memo's generation at
    store time and ignored once the generation moves on — {!extend}
    allocates a fresh memo for the derived system (its extra rules
    invalidate every base normal form), and {!invalidate_memo} bumps the
    generation in place. *)

(** [invalidate_memo sys] advances the memo generation: every cached
    normal form becomes stale (a guaranteed miss) without touching the
    tables.  Use when the meaning of the rule set changes under an
    existing system. *)
val invalidate_memo : system -> unit

type memo_stats = {
  hits : int;  (** lookups answered by a current-generation entry *)
  misses : int;  (** lookups finding nothing, or only a stale entry *)
  entries : int;  (** live table entries, stale ones included *)
  generation : int;
}

val memo_stats : system -> memo_stats

(** {1 Indexed rule selection}

    Each system compiles its rule set into a discrimination-tree index
    ({!Index}) at {!make}/{!extend} time.  Candidate selection through the
    index is {e never-miss} and preserves rule order, so normal forms,
    step counts, traced derivations and certificates are byte-identical
    with and without it — only the number of failed match attempts
    changes.  Both the plain and the traced rewriter go through the
    index; {!normalize_uncached} always uses the linear scan (it is the
    differential baseline).

    Index⇄memo generation interaction: the index is keyed to the rule
    set, the memo to the {e meaning} of that rule set.  [extend] rebuilds
    both (fresh uid stamps the new index; fresh memo).  {!invalidate_memo}
    bumps only the memo generation — the rules are unchanged, so the
    index stays valid and is {e not} rebuilt.  The one coupling runs the
    other way: if {!selfcheck} finds the index corrupted, every normal
    form computed through it is suspect, so the memo generation is bumped
    and the derivation cache dropped along with degrading the index. *)

(** [set_indexing sys b] switches rule selection between the index
    ([true], the default) and the seed's linear scan ([false]).  Linear
    selections on a non-empty bucket are accounted as index fallbacks. *)
val set_indexing : system -> bool -> unit

val indexing : system -> bool

(** [set_default_indexing b] sets the flag new systems are born with —
    {!extend} inherits the parent's flag instead, so a campaign forced
    onto the linear scan stays on it through every split branch. *)
val set_default_indexing : bool -> unit

val default_indexing : unit -> bool

(** [index_info sys] describes the compiled index (bucket counts,
    generation stamp — equal to [(info sys).si_uid] — and health). *)
val index_info : system -> Index.info

(** [selfcheck sys] re-runs the index's self-retrieval validation.  On
    [Error] the index is degraded to full-bucket answers {e and} the memo
    generation is bumped / derivation cache dropped, because normal forms
    computed through a corrupted index cannot be trusted. *)
val selfcheck : system -> (unit, string) result

(**/**)

(** Test-only: corrupt the compiled index in place (see
    {!Index.unsafe_drop_slot}).  Exists so the adversarial differential
    tests can prove {!selfcheck} detects corruption and the degraded
    index falls back to sound full-bucket answers. *)
val corrupt_index_for_tests : system -> bucket:string -> slot:int -> bool

(**/**)

val pp_rule : Format.formatter -> rule -> unit

(** {1 Derivations}

    A derivation mirrors the innermost strategy: children first, then AC
    canonicalization at the root, then at most one root rule application
    whose result is normalized by a nested derivation.  A derivation
    certifies {e reachability} — [d_in] rewrites to [d_out] with the
    recorded rules — which is exactly what the soundness of a proof score
    rests on.  Subterms on which nothing happened collapse to {!Triv}
    ([d_in == d_out], zero steps), keeping certificates small. *)

type deriv = { d_in : Term.t; d_out : Term.t; d_node : dnode }

and dnode =
  | Triv
  | Dapp of {
      children : deriv list;  (** one derivation per argument, in order *)
      perm : int list option;
          (** AC/Comm canonicalization: permutation applied to the
              flattened argument list (AC) or the two arguments (Comm);
              [None] when canonicalization was the identity *)
      step : rstep option;  (** the root rule application, if any *)
    }

and rstep = {
  rs_rule : rule;
  rs_sub : Subst.t;  (** the matching substitution, recorded — never searched for by the checker *)
  rs_cond : deriv option;  (** discharge of the instantiated condition down to [true] *)
  rs_next : deriv;  (** normalization of the instantiated right-hand side *)
}

(** [normalize_traced sys t] normalizes [t] and returns the derivation,
    bypassing the global tracer (no obligation is recorded).
    @raise Limit_exceeded as {!normalize}. *)
val normalize_traced : system -> Term.t -> Term.t * deriv

(** {1 System identity}

    Proof passages extend systems with branch-local assumption rules
    ([split-n] ground equations).  Certificates must scope every derivation
    to the rules that were actually available, so each system carries a
    unique id and a pointer to the system it extended. *)

type sys_info = {
  si_uid : int;
  si_parent : sys_info option;
  si_added : rule list;  (** rules this system added over [si_parent] *)
}

val info : system -> sys_info

(** {1 Global tracer}

    [set_tracer (Some tr)] makes every {!normalize} call — everywhere, on
    every domain — record its derivation into [tr] as a proof obligation.
    Recording is mutex-protected and deduplicated per (system, input);
    zero-step runs are skipped.  [set_tracer None] turns tracing off (the
    default; the untraced path costs one atomic load). *)

type obligation = {
  ob_info : sys_info;
  ob_input : Term.t;
  ob_deriv : deriv;
}

type tracer

val tracer : unit -> tracer
val set_tracer : tracer option -> unit

(** [obligations tr] returns the recorded obligations in recording order. *)
val obligations : tracer -> obligation list
