(* Registry of named instruments.  Registration is rare (module init /
   first use) and guarded by one mutex; the hot paths — incr, add,
   observe — touch only their own Atomic cells. *)

type counter = int Atomic.t

(* 25 log2 buckets starting at 10 µs, plus one overflow bucket. *)
let nbuckets = 25
let base_ns = 10_000

type histogram = {
  cells : int Atomic.t array;  (* nbuckets + 1, last = overflow *)
  sum_ns : int Atomic.t;
  max_ns : int Atomic.t;
}

let registry_lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 16
let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let with_lock f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let counter name =
  with_lock @@ fun () ->
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = Atomic.make 0 in
    Hashtbl.add counters name c;
    c

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let value c = Atomic.get c

let set_gauge name v =
  with_lock @@ fun () ->
  match Hashtbl.find_opt gauges name with
  | Some r -> r := v
  | None -> Hashtbl.add gauges name (ref v)

let histogram name =
  with_lock @@ fun () ->
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h =
      {
        cells = Array.init (nbuckets + 1) (fun _ -> Atomic.make 0);
        sum_ns = Atomic.make 0;
        max_ns = Atomic.make 0;
      }
    in
    Hashtbl.add histograms name h;
    h

let bucket_of_ns ns =
  let rec go i bound =
    if i >= nbuckets then nbuckets
    else if ns <= bound then i
    else go (i + 1) (bound * 2)
  in
  go 0 base_ns

let bucket_bound_ns i = base_ns * (1 lsl i)

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v <= cur then ()
  else if Atomic.compare_and_set cell cur v then ()
  else atomic_max cell v

let observe_ns h ns =
  let ns = max 0 ns in
  Atomic.incr h.cells.(bucket_of_ns ns);
  ignore (Atomic.fetch_and_add h.sum_ns ns);
  atomic_max h.max_ns ns

let observe_s h dt = observe_ns h (int_of_float (dt *. 1e9))

type histogram_view = {
  h_name : string;
  h_count : int;
  h_sum_ms : float;
  h_p50_ms : float;
  h_p90_ms : float;
  h_p99_ms : float;
  h_max_ms : float;
  h_buckets : int array;  (* nbuckets + 1 raw (non-cumulative) counts *)
  h_sum_ns : int;
}

type snapshot = {
  m_counters : (string * int) list;
  m_gauges : (string * float) list;
  m_histograms : histogram_view list;
}

let ms_of_ns ns = float_of_int ns /. 1e6

(* Quantile = upper bound of the first bucket whose cumulative count
   reaches q × total; the overflow bucket reports the observed max. *)
let quantile counts total q =
  let target = int_of_float (ceil (q *. float_of_int total)) in
  let rec go i acc =
    if i > nbuckets then nbuckets
    else
      let acc = acc + counts.(i) in
      if acc >= target then i else go (i + 1) acc
  in
  go 0 0

let view name h =
  let counts = Array.map Atomic.get h.cells in
  let total = Array.fold_left ( + ) 0 counts in
  let max_ms = ms_of_ns (Atomic.get h.max_ns) in
  let q p =
    if total = 0 then 0.
    else
      let b = quantile counts total p in
      if b >= nbuckets then max_ms else ms_of_ns (bucket_bound_ns b)
  in
  {
    h_name = name;
    h_count = total;
    h_sum_ms = ms_of_ns (Atomic.get h.sum_ns);
    h_p50_ms = q 0.50;
    h_p90_ms = q 0.90;
    h_p99_ms = q 0.99;
    h_max_ms = max_ms;
    h_buckets = counts;
    h_sum_ns = Atomic.get h.sum_ns;
  }

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f k v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  with_lock @@ fun () ->
  {
    m_counters = sorted_bindings counters (fun _ c -> Atomic.get c);
    m_gauges = sorted_bindings gauges (fun _ r -> !r);
    m_histograms = List.map snd (sorted_bindings histograms view);
  }

let reset () =
  with_lock @@ fun () ->
  Hashtbl.iter (fun _ c -> Atomic.set c 0) counters;
  Hashtbl.iter (fun _ r -> r := 0.) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.iter (fun c -> Atomic.set c 0) h.cells;
      Atomic.set h.sum_ns 0;
      Atomic.set h.max_ns 0)
    histograms
