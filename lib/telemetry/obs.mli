(** Serving observability: OpenMetrics exposition and minimal HTTP.

    Pure string builders over {!Metrics.snapshot} plus just enough
    HTTP/1.1 to answer [curl] and a Prometheus scraper.  No sockets here
    — the daemon owns the file descriptors; this module owns the bytes,
    so the renderer and parser stay unit-testable without a server. *)

(** [sanitize_name s] maps an internal dotted metric name
    (["server.request_latency"]) to the OpenMetrics charset
    [\[a-zA-Z_\]\[a-zA-Z0-9_\]*] (["server_request_latency"]). *)
val sanitize_name : string -> string

(** The [Content-Type] a compliant scraper expects for the exposition
    produced by {!render_openmetrics}. *)
val content_type : string

(** [render_openmetrics ?labeled snap] renders [snap] as OpenMetrics
    text: counters get a [_total] sample, histograms become
    [_seconds]-suffixed families with cumulative [_bucket{le="…"}]
    samples (bounds converted from ns), [_count] and [_sum]; the
    exposition ends with [# EOF].

    [labeled] groups histogram families: an entry [(prefix, label)]
    folds every histogram named [prefix] or [prefix ^ "." ^ rest] into
    the single family [sanitize_name prefix ^ "_seconds"], with [rest]
    exported as the value of [label] — e.g.
    [~labeled:["server.request_latency", "type"]] yields
    [server_request_latency_seconds_bucket{type="verify",le="…"}]
    alongside the unlabeled all-requests series. *)
val render_openmetrics :
  ?labeled:(string * string) list -> Metrics.snapshot -> string

(** [json_escape] — re-export of {!Flight.json_escape} for [/statusz]
    builders. *)
val json_escape : string -> string

module Http : sig
  type request = { meth : string; target : string }

  (** [parse buffered] inspects the bytes read so far on a connection:
      [`Ready r] once a full request head has arrived, [`Partial] if
      more bytes are needed, [`Bad] on a malformed request line or a
      head larger than 8 KiB. *)
  val parse : string -> [ `Ready of request | `Partial | `Bad ]

  (** [response ?status ?content_type body] builds a complete
      [Connection: close] HTTP/1.1 response. *)
  val response : ?status:int -> ?content_type:string -> string -> string
end
