(* Per-domain recording, merged at snapshot time.

   Every hot-path operation touches only domain-local state reached
   through [Domain.DLS]: a span/profile buffer per domain, and one cell
   per (counter, domain).  The only global synchronization is the
   registration of a fresh buffer or cell (once per domain per object,
   under a mutex) and the snapshot/reset pass, which is documented as
   quiescent-only. *)

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Monotonic ns as a native int: 2^62 ns ≈ 146 years of uptime, so the
   conversion from the clock's int64 never overflows in practice. *)
let now_ns () = Int64.to_int (Monotonic_clock.now ())

let span_min = Atomic.make 0
let set_span_min_ns n = Atomic.set span_min n

(* ------------------------------------------------------------------ *)
(* Spans and rule profiles: one buffer per domain *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_t0 : int;
  sp_dur : int;
  sp_dom : int;
  sp_depth : int;
  sp_req : string;  (* request id the span ran under; "" = unattributed *)
}

(* mutable per-domain accumulator for one rule label *)
type rcell = {
  mutable rc_fires : int;
  mutable rc_rw_self : int;
  mutable rc_rw_total : int;
  mutable rc_cond_evals : int;
  mutable rc_cond_self : int;
  mutable rc_cond_total : int;
  mutable rc_match_tries : int;
  mutable rc_match_self : int;
  mutable rc_match_total : int;
}

type frame = { fr_t0 : int; mutable fr_child : int }

type dbuf = {
  db_dom : int;
  mutable db_spans : span array;
  mutable db_n : int;
  mutable db_depth : int;
  mutable db_stack : frame list;
  db_rules : (string, rcell) Hashtbl.t;
  mutable db_dropped : int;
  mutable db_req : string;  (* current request id on this domain *)
}

let dummy_span =
  {
    sp_name = "";
    sp_cat = "";
    sp_t0 = 0;
    sp_dur = 0;
    sp_dom = 0;
    sp_depth = 0;
    sp_req = "";
  }

(* Cap per-domain span storage; beyond it spans are counted, not stored.
   The cap bounds profiled-campaign memory; the hotspot report surfaces
   the drop count so truncation is never silent. *)
let max_spans_per_domain = 1 lsl 20

let registry_lock = Mutex.create ()
let bufs : dbuf list ref = ref []

let buf_key : dbuf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          db_dom = (Domain.self () :> int);
          db_spans = Array.make 256 dummy_span;
          db_n = 0;
          db_depth = 0;
          db_stack = [];
          db_rules = Hashtbl.create 64;
          db_dropped = 0;
          db_req = "";
        }
      in
      Mutex.protect registry_lock (fun () -> bufs := b :: !bufs);
      b)

let my_buf () = Domain.DLS.get buf_key

let push_span b sp =
  if b.db_n >= max_spans_per_domain then b.db_dropped <- b.db_dropped + 1
  else begin
    let cap = Array.length b.db_spans in
    if b.db_n = cap then begin
      let fresh = Array.make (2 * cap) dummy_span in
      Array.blit b.db_spans 0 fresh 0 cap;
      b.db_spans <- fresh
    end;
    b.db_spans.(b.db_n) <- sp;
    b.db_n <- b.db_n + 1
  end

let record_span b ~always ~cat ~name ~t0 ~dur ~depth =
  if always || dur >= Atomic.get span_min then
    push_span b
      {
        sp_name = name;
        sp_cat = cat;
        sp_t0 = t0;
        sp_dur = dur;
        sp_dom = b.db_dom;
        sp_depth = depth;
        sp_req = b.db_req;
      }

let with_span ?(always = false) ~cat name f =
  if not (enabled ()) then f ()
  else begin
    let b = my_buf () in
    let depth = b.db_depth in
    b.db_depth <- depth + 1;
    let t0 = now_ns () in
    let finish () =
      let dur = now_ns () - t0 in
      b.db_depth <- depth;
      record_span b ~always ~cat ~name ~t0 ~dur ~depth
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let span_since ~cat name t0 =
  if enabled () then begin
    let b = my_buf () in
    record_span b ~always:false ~cat ~name ~t0 ~dur:(now_ns () - t0)
      ~depth:b.db_depth
  end

(* ------------------------------------------------------------------ *)
(* Request attribution: a per-domain id stamped onto every span recorded
   while it is set.  The scheduler captures it at submit time and restores
   it around task execution, so work fanned out across the pool keeps the
   id of the request that asked for it. *)

let current_request () =
  match (my_buf ()).db_req with "" -> None | s -> Some s

let set_request r =
  (my_buf ()).db_req <- (match r with None -> "" | Some s -> s)

let with_request r f =
  let b = my_buf () in
  let prev = b.db_req in
  b.db_req <- (match r with None -> "" | Some s -> s);
  Fun.protect ~finally:(fun () -> b.db_req <- prev) f

(* ------------------------------------------------------------------ *)
(* Rule profiling *)

type kind = Rewrite | Cond | Match

let rule_enter () =
  let b = my_buf () in
  let f = { fr_t0 = now_ns (); fr_child = 0 } in
  b.db_stack <- f :: b.db_stack;
  f

let rcell_of b label =
  match Hashtbl.find_opt b.db_rules label with
  | Some c -> c
  | None ->
    let c =
      {
        rc_fires = 0;
        rc_rw_self = 0;
        rc_rw_total = 0;
        rc_cond_evals = 0;
        rc_cond_self = 0;
        rc_cond_total = 0;
        rc_match_tries = 0;
        rc_match_self = 0;
        rc_match_total = 0;
      }
    in
    Hashtbl.add b.db_rules label c;
    c

let rule_exit f ~kind ~label =
  let b = my_buf () in
  let total = now_ns () - f.fr_t0 in
  let self = max 0 (total - f.fr_child) in
  (* pop, tolerating a mismatched stack after an unbalanced caller *)
  (match b.db_stack with
  | top :: rest when top == f -> b.db_stack <- rest
  | _ -> ());
  (* children count toward the parent frame's child time whichever kind
     they are: a condition discharge inside a rewrite is not self-time *)
  (match b.db_stack with
  | parent :: _ -> parent.fr_child <- parent.fr_child + total
  | [] -> ());
  let c = rcell_of b label in
  (match kind with
  | Rewrite ->
    c.rc_fires <- c.rc_fires + 1;
    c.rc_rw_self <- c.rc_rw_self + self;
    c.rc_rw_total <- c.rc_rw_total + total
  | Cond ->
    c.rc_cond_evals <- c.rc_cond_evals + 1;
    c.rc_cond_self <- c.rc_cond_self + self;
    c.rc_cond_total <- c.rc_cond_total + total
  | Match ->
    c.rc_match_tries <- c.rc_match_tries + 1;
    c.rc_match_self <- c.rc_match_self + self;
    c.rc_match_total <- c.rc_match_total + total);
  if total >= Atomic.get span_min && Atomic.get span_min > 0 then
    record_span b ~always:false
      ~cat:(match kind with Rewrite -> "rule" | Cond -> "cond" | Match -> "match")
      ~name:label ~t0:f.fr_t0 ~dur:total ~depth:(List.length b.db_stack)

(* ------------------------------------------------------------------ *)
(* Counters *)

type counter = {
  c_name : string;
  c_mode : [ `Sum | `Max ];
  c_lock : Mutex.t;
  mutable c_cells : int ref list;
  c_key : int ref Domain.DLS.key;
}

let counters_lock = Mutex.create ()
let all_counters : counter list ref = ref []

let counter ?(mode = `Sum) name =
  let rec c =
    lazy
      {
        c_name = name;
        c_mode = mode;
        c_lock = Mutex.create ();
        c_cells = [];
        c_key =
          Domain.DLS.new_key (fun () ->
              let cell = ref 0 in
              let c = Lazy.force c in
              Mutex.protect c.c_lock (fun () -> c.c_cells <- cell :: c.c_cells);
              cell);
      }
  in
  let c = Lazy.force c in
  Mutex.protect counters_lock (fun () -> all_counters := c :: !all_counters);
  c

let incr c = if enabled () then Stdlib.incr (Domain.DLS.get c.c_key)

let add c n =
  if enabled () then begin
    let cell = Domain.DLS.get c.c_key in
    cell := !cell + n
  end

let record_max c n =
  if enabled () then begin
    let cell = Domain.DLS.get c.c_key in
    if n > !cell then cell := n
  end

let value c =
  Mutex.protect c.c_lock (fun () ->
      match c.c_mode with
      | `Sum -> List.fold_left (fun acc cell -> acc + !cell) 0 c.c_cells
      | `Max -> List.fold_left (fun acc cell -> max acc !cell) 0 c.c_cells)

(* ------------------------------------------------------------------ *)
(* Gauges *)

let gauges_lock = Mutex.create ()
let gauges : (string, float) Hashtbl.t = Hashtbl.create 32

let set_gauge name v =
  Mutex.protect gauges_lock (fun () -> Hashtbl.replace gauges name v)

(* ------------------------------------------------------------------ *)
(* Snapshot / reset *)

type rule_stat = {
  rl_label : string;
  rl_fires : int;
  rl_rw_self_ns : int;
  rl_rw_total_ns : int;
  rl_cond_evals : int;
  rl_cond_self_ns : int;
  rl_cond_total_ns : int;
  rl_match_tries : int;
  rl_match_self_ns : int;
  rl_match_total_ns : int;
}

type snapshot = {
  sn_spans : span list;
  sn_rules : rule_stat list;
  sn_counters : (string * int) list;
  sn_gauges : (string * float) list;
  sn_dropped : int;
  sn_dropped_by_dom : (int * int) list;
  sn_t0 : int;
}

let snapshot () =
  let bufs = Mutex.protect registry_lock (fun () -> !bufs) in
  let spans =
    List.concat_map
      (fun b -> Array.to_list (Array.sub b.db_spans 0 b.db_n))
      bufs
  in
  let spans =
    List.stable_sort
      (fun a b ->
        match compare a.sp_t0 b.sp_t0 with 0 -> compare a.sp_depth b.sp_depth | c -> c)
      spans
  in
  let merged : (string, rcell) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun label (c : rcell) ->
          let m =
            match Hashtbl.find_opt merged label with
            | Some m -> m
            | None ->
              let m =
                {
                  rc_fires = 0;
                  rc_rw_self = 0;
                  rc_rw_total = 0;
                  rc_cond_evals = 0;
                  rc_cond_self = 0;
                  rc_cond_total = 0;
                  rc_match_tries = 0;
                  rc_match_self = 0;
                  rc_match_total = 0;
                }
              in
              Hashtbl.add merged label m;
              m
          in
          m.rc_fires <- m.rc_fires + c.rc_fires;
          m.rc_rw_self <- m.rc_rw_self + c.rc_rw_self;
          m.rc_rw_total <- m.rc_rw_total + c.rc_rw_total;
          m.rc_cond_evals <- m.rc_cond_evals + c.rc_cond_evals;
          m.rc_cond_self <- m.rc_cond_self + c.rc_cond_self;
          m.rc_cond_total <- m.rc_cond_total + c.rc_cond_total;
          m.rc_match_tries <- m.rc_match_tries + c.rc_match_tries;
          m.rc_match_self <- m.rc_match_self + c.rc_match_self;
          m.rc_match_total <- m.rc_match_total + c.rc_match_total)
        b.db_rules)
    bufs;
  let rules =
    Hashtbl.fold
      (fun label c acc ->
        {
          rl_label = label;
          rl_fires = c.rc_fires;
          rl_rw_self_ns = c.rc_rw_self;
          rl_rw_total_ns = c.rc_rw_total;
          rl_cond_evals = c.rc_cond_evals;
          rl_cond_self_ns = c.rc_cond_self;
          rl_cond_total_ns = c.rc_cond_total;
          rl_match_tries = c.rc_match_tries;
          rl_match_self_ns = c.rc_match_self;
          rl_match_total_ns = c.rc_match_total;
        }
        :: acc)
      merged []
  in
  let counters =
    Mutex.protect counters_lock (fun () -> !all_counters)
    |> List.map (fun c -> c.c_name, value c)
    |> List.sort_uniq compare
  in
  let gauges =
    Mutex.protect gauges_lock (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) gauges [])
    |> List.sort compare
  in
  {
    sn_spans = spans;
    sn_rules = rules;
    sn_counters = counters;
    sn_gauges = gauges;
    sn_dropped = List.fold_left (fun acc b -> acc + b.db_dropped) 0 bufs;
    sn_dropped_by_dom =
      (* group-sum per domain: a domain id appears once even if several
         historical buffers carry it *)
      (let tbl = Hashtbl.create 8 in
       List.iter
         (fun b ->
           if b.db_dropped > 0 then
             Hashtbl.replace tbl b.db_dom
               (b.db_dropped
               + Option.value ~default:0 (Hashtbl.find_opt tbl b.db_dom)))
         bufs;
       Hashtbl.fold (fun d n acc -> (d, n) :: acc) tbl []
       |> List.sort compare);
    sn_t0 = (match spans with [] -> 0 | s :: _ -> s.sp_t0);
  }

let reset () =
  let bufs = Mutex.protect registry_lock (fun () -> !bufs) in
  List.iter
    (fun b ->
      b.db_n <- 0;
      b.db_depth <- 0;
      b.db_stack <- [];
      b.db_dropped <- 0;
      b.db_req <- "";
      Hashtbl.reset b.db_rules)
    bufs;
  List.iter
    (fun c ->
      Mutex.protect c.c_lock (fun () ->
          List.iter (fun cell -> cell := 0) c.c_cells))
    (Mutex.protect counters_lock (fun () -> !all_counters));
  Mutex.protect gauges_lock (fun () -> Hashtbl.reset gauges)
