(** Always-on operational metrics for long-lived processes.

    {!Probe} is profiling instrumentation: zero-cost when disabled and
    meant to be switched on for one run at a time.  A resident server
    instead needs a handful of {e operational} metrics — requests served,
    cache hits, latency distributions — that are cheap enough to leave on
    forever (an atomic increment per event) and can be snapshotted at any
    moment while requests are in flight.

    All registration functions return the existing instrument when the
    name is already taken, so modules can register at initialization time
    without coordinating.  Everything is domain- and thread-safe. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** {1 Gauges}

    Point-in-time values, overwritten on every set. *)

val set_gauge : string -> float -> unit

(** {1 Histograms}

    Log-bucketed latency histograms: bucket [i] counts observations of at
    most [10 µs × 2^i] (25 buckets, so the top bucket covers ~167 s;
    larger observations land in an overflow bucket).  Quantiles in the
    snapshot are upper-bound approximations (the bucket boundary), which
    is the standard trade for lock-free recording. *)

type histogram

val histogram : string -> histogram
val observe_ns : histogram -> int -> unit

(** [observe_s h dt] records a duration in seconds. *)
val observe_s : histogram -> float -> unit

(** {1 Bucket geometry}

    Exposed so exporters (OpenMetrics [_bucket{le=...}] series) and the
    boundary tests can reason about the exact bucketing. *)

(** Number of bounded buckets; one overflow bucket follows. *)
val nbuckets : int

(** [bucket_bound_ns i] is the inclusive upper bound of bucket [i]
    ([10 µs × 2^i]); observations [<= bound] land in the first such
    bucket. *)
val bucket_bound_ns : int -> int

(** [bucket_of_ns ns] is the index ([0 .. nbuckets]) an observation of
    [ns] lands in; [nbuckets] is the overflow bucket. *)
val bucket_of_ns : int -> int

(** {1 Snapshot} *)

type histogram_view = {
  h_name : string;
  h_count : int;
  h_sum_ms : float;
  h_p50_ms : float;
  h_p90_ms : float;
  h_p99_ms : float;
  h_max_ms : float;
  h_buckets : int array;
      (** raw (non-cumulative) per-bucket counts, [nbuckets + 1] long,
          last = overflow *)
  h_sum_ns : int;  (** exact sum, for loss-free export *)
}

type snapshot = {
  m_counters : (string * int) list;  (** sorted by name *)
  m_gauges : (string * float) list;  (** sorted by name *)
  m_histograms : histogram_view list;  (** sorted by name *)
}

val snapshot : unit -> snapshot

(** [reset ()] zeroes every registered instrument (tests only). *)
val reset : unit -> unit
