module Exit = struct
  let ok = 0
  let failure = 1
  let usage = 2
  let lint_gate = 3
  let cert_rejected = 4
  let timeout = 5
end

let active ~profile ~trace_out = profile || trace_out <> ""

let setup ?(span_min_ns = 10_000) ~profile ~trace_out () =
  if active ~profile ~trace_out then begin
    Probe.set_span_min_ns span_min_ns;
    Probe.set_enabled true
  end

let flush ?(process_name = Filename.basename Sys.executable_name) ?(top = 10)
    ?(gauges = fun () -> []) ?(out = Format.std_formatter) ~profile ~trace_out
    () =
  if active ~profile ~trace_out then begin
    List.iter (fun (name, v) -> Probe.set_gauge name v) (gauges ());
    let snap = Probe.snapshot () in
    if trace_out <> "" then begin
      Perfetto.write_file ~process_name trace_out snap;
      Format.fprintf out "telemetry: wrote %s (%d spans%s)@." trace_out
        (List.length snap.Probe.sn_spans)
        (if snap.Probe.sn_dropped = 0 then ""
         else Printf.sprintf ", %d dropped" snap.Probe.sn_dropped)
    end;
    if profile then Format.fprintf out "%a" (Hotspot.pp ~top) snap
  end
