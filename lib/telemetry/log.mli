(** Structured event log: leveled, key-value, JSON-lines.

    The serving layer's replacement for ad-hoc stderr prints.  Every
    event is one JSON object per line — UTC timestamp, level, event name,
    then the caller's key-value fields — appended to a sink file (or
    stderr) with optional size-based rotation.

    Cost contract: an {!event} below the level threshold, with the
    {!Flight} recorder disabled, is two atomic loads — no formatting, no
    allocation — so instrumented request paths stay measurably free when
    logging is off.  While the flight recorder {e is} enabled, every
    event (any level) is also rendered and teed into its ring, so the
    post-mortem keeps debug-grain history even when the live sink is
    quiet or absent.

    Emission serializes under one mutex: events are per-request /
    per-lifecycle, never per-rewrite. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string

(** [level_of_name s] parses ["debug"], ["info"], ["warn"]/["warning"],
    ["error"]. *)
val level_of_name : string -> level option

(** [set_level (Some l)] emits events at [l] and above; [set_level None]
    (the initial state) disables the sink entirely. *)
val set_level : level option -> unit

val level : unit -> level option

(** [logs l] — would an event at [l] reach the sink? *)
val logs : level -> bool

(** {1 Sink} *)

(** [open_sink ?rotate_bytes path] appends events to [path].  With
    [rotate_bytes > 0], once the file reaches that size it is renamed to
    [path ^ ".1"] (replacing any previous rotation) and a fresh file is
    started.  Without an open sink, events at or above the level go to
    stderr. *)
val open_sink : ?rotate_bytes:int -> string -> unit

val close_sink : unit -> unit

(** {1 Events} *)

type value = S of string | I of int | F of float | B of bool

(** [event lvl name fields] — one JSON line:
    [{"ts":…,"lvl":…,"ev":name,…fields}]. *)
val event : level -> string -> (string * value) list -> unit

val debug : string -> (string * value) list -> unit
val info : string -> (string * value) list -> unit
val warn : string -> (string * value) list -> unit
val error : string -> (string * value) list -> unit
