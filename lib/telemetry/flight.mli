(** Crash flight recorder.

    A fixed-size ring buffer of recent event lines {e per domain}, cheap
    enough to leave on in production (one array store per {!note}, no
    locks on the hot path), dumped as a JSON post-mortem file when the
    process is about to become undebuggable: an escaped exception, a
    SIGQUIT, or a reduction blowing its {!Kernel.Rewrite.Limit_exceeded}
    budget mid-campaign.

    {!Log.event} tees every structured event line into the recorder while
    it is enabled — including events below the sink's level threshold — so
    the post-mortem carries debug-grain history even when the live log is
    quiet.

    Capacity changes and {!reset} assume quiescence (no domain actively
    noting), like {!Probe.snapshot}; {!dump} is best-effort by design —
    it is called on the way down. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

(** [note line] appends [line] to the calling domain's ring (overwriting
    the oldest entry when full), stamped with the wall clock.  No-op when
    disabled. *)
val note : string -> unit

(** [set_capacity n] resizes every domain's ring to [n] entries (and
    clears them); rings created later also use [n].  Default 256. *)
val set_capacity : int -> unit

(** [reset ()] clears every ring. *)
val reset : unit -> unit

(** [dump ~reason] renders all rings, merged and sorted by wall time,
    as one JSON document: the reason, dump time, pid, per-domain span
    summaries (when {!Probe} is recording) and every surviving entry
    with its timestamp and domain. *)
val dump : reason:string -> string

(** [dump_to_file ~reason path] writes {!dump} to [path]; best-effort
    (write failures are swallowed — this runs on crash paths). *)
val dump_to_file : reason:string -> string -> unit

(** {1 Shared formatting helpers} (also used by {!Log}) *)

(** [json_escape s] escapes [s] for inclusion inside a JSON string. *)
val json_escape : string -> string

(** [iso8601 t] renders a [Unix.gettimeofday]-style timestamp as
    ISO-8601 UTC with millisecond precision. *)
val iso8601 : float -> string
