(** Shared command-line wiring for [--profile] / [--trace-out FILE].

    Every binary in the stack exposes the same two flags; this module is
    the one place that interprets them so their behaviour cannot drift:

    - {!setup} turns recording on when either flag is given (and applies a
      minimum span duration so rule-level spans cannot blow up the trace);
    - {!flush} samples late-bound gauges, takes the snapshot, writes the
      Perfetto trace and prints the hotspot report.

    The [gauges] thunk lets each binary contribute process-specific
    gauges (intern-table occupancy, memo hit rate, pool utilization)
    without this module depending on the kernel. *)

(** [setup ~profile ~trace_out ()] enables recording iff [profile] or
    [trace_out <> ""].  [span_min_ns] (default [10_000], i.e. 10 µs)
    bounds rule/cond span volume; structural spans ([~always:true]) are
    unaffected. *)
val setup : ?span_min_ns:int -> profile:bool -> trace_out:string -> unit -> unit

(** [active ~profile ~trace_out] mirrors {!setup}'s enabling condition. *)
val active : profile:bool -> trace_out:string -> bool

(** [flush ~profile ~trace_out ()] is a no-op unless {!active}.
    Otherwise: runs [gauges] (default none) and records each returned
    pair with {!Probe.set_gauge}, snapshots, writes [trace_out] (when
    non-empty, announcing the file and span count on [out]) and — when
    [profile] — prints the top-[top] hotspot report to [out] (default
    {!Format.std_formatter}). *)
val flush :
  ?process_name:string ->
  ?top:int ->
  ?gauges:(unit -> (string * float) list) ->
  ?out:Format.formatter ->
  profile:bool ->
  trace_out:string ->
  unit ->
  unit
