(** Shared command-line wiring for [--profile] / [--trace-out FILE].

    Every binary in the stack exposes the same two flags; this module is
    the one place that interprets them so their behaviour cannot drift:

    - {!setup} turns recording on when either flag is given (and applies a
      minimum span duration so rule-level spans cannot blow up the trace);
    - {!flush} samples late-bound gauges, takes the snapshot, writes the
      Perfetto trace and prints the hotspot report.

    The [gauges] thunk lets each binary contribute process-specific
    gauges (intern-table occupancy, memo hit rate, pool utilization)
    without this module depending on the kernel. *)

(** The one table of process exit codes, shared by every binary ([verify],
    [lint], [check], [verifyd], the remote client) so overlapping numbers
    cannot drift between the binaries' headers and their behaviour.  Not
    every binary uses every code; each binary's header doc lists the ones
    it can produce. *)
module Exit : sig
  val ok : int
  (** [0] — the requested work succeeded. *)

  val failure : int
  (** [1] — a proof failed / a lint error / a rejected certificate chunk:
      the work ran to completion and the answer is "no". *)

  val usage : int
  (** [2] — bad command line, unreadable input, malformed request. *)

  val lint_gate : int
  (** [3] — [verify --lint]'s gate refused to prove over an uncertified
      rewrite system; no proof was attempted. *)

  val cert_rejected : int
  (** [4] — [verify --certify]'s independent checker refused a recorded
      derivation, the LPO certificate or a join certificate. *)

  val timeout : int
  (** [5] — a reduction hit its step budget or deadline
      ({!Kernel.Rewrite.Limit_exceeded} surfaced as a structured timeout
      verdict): the run is inconclusive, neither success nor refutation. *)
end

(** [setup ~profile ~trace_out ()] enables recording iff [profile] or
    [trace_out <> ""].  [span_min_ns] (default [10_000], i.e. 10 µs)
    bounds rule/cond span volume; structural spans ([~always:true]) are
    unaffected. *)
val setup : ?span_min_ns:int -> profile:bool -> trace_out:string -> unit -> unit

(** [active ~profile ~trace_out] mirrors {!setup}'s enabling condition. *)
val active : profile:bool -> trace_out:string -> bool

(** [flush ~profile ~trace_out ()] is a no-op unless {!active}.
    Otherwise: runs [gauges] (default none) and records each returned
    pair with {!Probe.set_gauge}, snapshots, writes [trace_out] (when
    non-empty, announcing the file and span count on [out]) and — when
    [profile] — prints the top-[top] hotspot report to [out] (default
    {!Format.std_formatter}). *)
val flush :
  ?process_name:string ->
  ?top:int ->
  ?gauges:(unit -> (string * float) list) ->
  ?out:Format.formatter ->
  profile:bool ->
  trace_out:string ->
  unit ->
  unit
