(** Structured runtime telemetry: spans, counters and per-rule profiles.

    The verification stack is instrumented at four altitudes — proof score,
    proof case, [red] (one normalization), rule application — plus a set of
    engine counters (AC-matcher backtracks, sched-pool steals, …).  All
    recording funnels through this module:

    - {b zero-cost when disabled}: every probe is guarded by one load of an
      atomic flag; with the flag off the instrumented code paths are the
      un-instrumented ones plus a single branch.  The differential suite
      asserts byte-identical normal forms and step counts either way.
    - {b domain-safe and contention-free}: each domain records into its own
      buffer (spans, rule profiles) or its own counter cell, discovered
      through [Domain.DLS]; nothing is shared on the hot path.  Buffers are
      merged under a registry lock only at {!snapshot} time.
    - {b monotonic}: all timestamps come from the OS monotonic clock
      ([CLOCK_MONOTONIC], nanoseconds), never from wall-clock time.

    {!snapshot} and {!reset} assume quiescence (no domain actively
    recording): take them after pool work has settled, as the CLIs do. *)

(** [set_enabled b] turns recording on or off, globally (all domains). *)
val set_enabled : bool -> unit

(** [enabled ()] is the single-branch guard every probe starts with. *)
val enabled : unit -> bool

(** [now_ns ()] is the monotonic clock, in nanoseconds (ns since an
    arbitrary epoch; differences are meaningful, absolute values are not). *)
val now_ns : unit -> int

(** {1 Spans}

    A span is a named, categorized interval attributed to the domain that
    ran it.  Spans nest (per domain): depth is tracked so exporters and
    tests can check proper nesting.  Short spans of the hot categories can
    be dropped at record time ({!set_span_min_ns}) to bound trace size;
    spans recorded with [~always:true] ignore the threshold. *)

(** [with_span ~cat name f] runs [f ()] inside a span.  When recording is
    disabled this is exactly [f ()].  The span is recorded even if [f]
    raises.  [always] (default [false]) bypasses the minimum-duration
    filter. *)
val with_span : ?always:bool -> cat:string -> string -> (unit -> 'a) -> 'a

(** [span_since ~cat name t0] records a span started at [t0] (a {!now_ns}
    reading) and ending now — the allocation-free variant for hot paths
    that cannot afford a closure.  Subject to the minimum-duration filter;
    no-op when disabled.  Does not affect nesting depth. *)
val span_since : cat:string -> string -> int -> unit

(** [set_span_min_ns n] drops spans shorter than [n] ns at record time
    (except [~always:true] ones).  Default [0]: keep everything. *)
val set_span_min_ns : int -> unit

(** {1 Request attribution}

    A per-domain request id, stamped onto every span recorded while it is
    set ([sp_req]), so a Perfetto trace of a server process can be
    filtered down to the spans — request, obligation, case, red, rule — of
    one wire request.  {!Sched.Pool.submit} captures the submitting
    domain's id and restores it around task execution on whichever worker
    runs the task, so the attribution follows fan-out.  All three
    operations are cheap domain-local field accesses. *)

(** [current_request ()] is the id set on the calling domain, if any. *)
val current_request : unit -> string option

(** [set_request r] installs (or with [None] clears) the calling domain's
    request id. *)
val set_request : string option -> unit

(** [with_request r f] runs [f ()] with the calling domain's request id
    set to [r], restoring the previous id afterwards (also on raise). *)
val with_request : string option -> (unit -> 'a) -> 'a

(** {1 Counters}

    A counter owns one cell per domain (created on first use through
    [Domain.DLS]); increments are plain stores to the local cell, and
    {!value} merges the cells — by sum ([`Sum], default) or maximum
    ([`Max]).  All mutating operations are no-ops while disabled. *)

type counter

(** [counter ?mode name] registers a counter.  Call at module
    initialization time, once per name. *)
val counter : ?mode:[ `Sum | `Max ] -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit

(** [record_max c v] raises a [`Max] counter's local cell to [v]. *)
val record_max : counter -> int -> unit

(** [value c] merges all domains' cells (sum or max, per the mode). *)
val value : counter -> int

(** {1 Gauges}

    Point-in-time values sampled by the reporting layer (memo hit rates,
    intern-table occupancy, pool utilization).  Unlike counters, gauges are
    set unconditionally — they are written at flush time, not on hot
    paths. *)

val set_gauge : string -> float -> unit

(** {1 Per-rule profiling}

    The rewriter brackets every rule application (and every condition
    discharge, and every root-match attempt) with
    {!rule_enter}/{!rule_exit}.  Frames form a per-domain stack so
    self-time is exact: a frame's children's total time is subtracted
    from its own.  Callers must guard with {!enabled} — the bracket
    assumes recording is on — and must pair enter/exit even on
    exceptions.  An application whose total time reaches the span
    threshold is additionally recorded as a span (cat ["rule"], ["cond"]
    or ["match"]), so slow instances show up on the trace timeline. *)

type kind =
  | Rewrite  (** normalizing the instantiated right-hand side *)
  | Cond  (** discharging the instantiated condition *)
  | Match
      (** one root-match attempt of the rule's left-hand side, successful
          or not — the cost rule indexing exists to avoid, attributed to
          the rule that was tried rather than dissolved into whichever
          rule happened to be firing above it *)

type frame

val rule_enter : unit -> frame
val rule_exit : frame -> kind:kind -> label:string -> unit

(** {1 Snapshot}

    Merges every domain's buffers into one immutable view. *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_t0 : int;  (** start, ns (monotonic) *)
  sp_dur : int;  (** duration, ns *)
  sp_dom : int;  (** id of the domain that ran the span *)
  sp_depth : int;  (** nesting depth within its domain at start time *)
  sp_req : string;  (** request id the span ran under; [""] = unattributed *)
}

type rule_stat = {
  rl_label : string;
  rl_fires : int;  (** rewrite applications of this rule *)
  rl_rw_self_ns : int;  (** rewrite time minus nested rule applications *)
  rl_rw_total_ns : int;  (** inclusive rewrite time *)
  rl_cond_evals : int;  (** condition discharges attempted *)
  rl_cond_self_ns : int;
  rl_cond_total_ns : int;
  rl_match_tries : int;  (** root-match attempts (successful and failed) *)
  rl_match_self_ns : int;
  rl_match_total_ns : int;
}

type snapshot = {
  sn_spans : span list;  (** all domains, sorted by start time *)
  sn_rules : rule_stat list;  (** merged across domains, unsorted *)
  sn_counters : (string * int) list;  (** sorted by name *)
  sn_gauges : (string * float) list;  (** sorted by name *)
  sn_dropped : int;  (** spans lost to the per-domain buffer cap *)
  sn_dropped_by_dom : (int * int) list;
      (** the same drops, attributed per domain id (only domains that
          dropped anything; sorted by domain) *)
  sn_t0 : int;  (** earliest span start (0 when no spans) *)
}

val snapshot : unit -> snapshot

(** [reset ()] clears every buffer, counter cell and gauge (the enabled
    flag and minimum-duration threshold are left as they are). *)
val reset : unit -> unit
