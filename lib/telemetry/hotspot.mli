(** Human-readable hotspot report over a {!Probe.snapshot}.

    Answers "which rule, which proof case, which worker is the hot spot?"
    without leaving the terminal:

    - top-N rules by self-time (rewrite, condition-discharge and
      match-attempt components split out);
    - per-invariant proof-case table (from [cat = "case"] spans), slowest
      first, with the domain each case ran on;
    - the merged counters and gauges;
    - the span count and how many spans the buffer cap dropped. *)

(** [hot_rules ?top snap] is the rule profile sorted by descending
    self-time (rewrite self + condition self + match-attempt self),
    truncated to [top] (default 10). *)
val hot_rules : ?top:int -> Probe.snapshot -> Probe.rule_stat list

(** [slowest_cases ?top snap] is the [cat = "case"] spans sorted by
    descending duration, truncated to [top] (default 10). *)
val slowest_cases : ?top:int -> Probe.snapshot -> Probe.span list

val pp : ?top:int -> Format.formatter -> Probe.snapshot -> unit
