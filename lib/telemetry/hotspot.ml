(* A rule's cost is what it makes the engine do: fire (rewrite self),
   discharge conditions, and be *tried* — match attempts, failed or not,
   charged to the rule attempted.  Including match time here is what lets
   the hot-rules table show the scan cost that rule indexing removes. *)
let self_ns (r : Probe.rule_stat) =
  r.Probe.rl_rw_self_ns + r.Probe.rl_cond_self_ns + r.Probe.rl_match_self_ns

let hot_rules ?(top = 10) (snap : Probe.snapshot) =
  let sorted =
    List.sort
      (fun a b ->
        match compare (self_ns b) (self_ns a) with
        | 0 -> compare a.Probe.rl_label b.Probe.rl_label
        | c -> c)
      snap.Probe.sn_rules
  in
  List.filteri (fun i _ -> i < top) sorted

let slowest_cases ?(top = 10) (snap : Probe.snapshot) =
  let cases =
    List.filter
      (fun (sp : Probe.span) -> String.equal sp.Probe.sp_cat "case")
      snap.Probe.sn_spans
  in
  let sorted =
    List.sort
      (fun (a : Probe.span) (b : Probe.span) ->
        compare b.Probe.sp_dur a.Probe.sp_dur)
      cases
  in
  List.filteri (fun i _ -> i < top) sorted

let ms ns = float_of_int ns /. 1e6

let pp ?(top = 10) ppf (snap : Probe.snapshot) =
  let dropped_detail =
    match snap.Probe.sn_dropped_by_dom with
    | [] -> ""
    | per_dom ->
      Printf.sprintf " [%s]"
        (String.concat ", "
           (List.map
              (fun (dom, n) -> Printf.sprintf "dom%d: %d" dom n)
              per_dom))
  in
  Format.fprintf ppf
    "telemetry: %d spans recorded (%d dropped%s), %d rules profiled@."
    (List.length snap.Probe.sn_spans)
    snap.Probe.sn_dropped dropped_detail
    (List.length snap.Probe.sn_rules);
  (match hot_rules ~top snap with
  | [] -> ()
  | rules ->
    Format.fprintf ppf "top %d rules by self-time:@." (List.length rules);
    Format.fprintf ppf "  %-28s %10s %10s %10s %10s %10s %10s %10s@." "rule"
      "fires" "self-ms" "total-ms" "cond-evals" "cond-ms" "tries" "match-ms";
    List.iter
      (fun (r : Probe.rule_stat) ->
        Format.fprintf ppf "  %-28s %10d %10.3f %10.3f %10d %10.3f %10d %10.3f@."
          r.Probe.rl_label r.Probe.rl_fires
          (ms (self_ns r))
          (ms r.Probe.rl_rw_total_ns)
          r.Probe.rl_cond_evals
          (ms r.Probe.rl_cond_self_ns)
          r.Probe.rl_match_tries
          (ms r.Probe.rl_match_self_ns))
      rules);
  (match slowest_cases ~top snap with
  | [] -> ()
  | cases ->
    Format.fprintf ppf "slowest proof cases:@.";
    Format.fprintf ppf "  %-44s %8s %12s@." "case" "domain" "ms";
    List.iter
      (fun (sp : Probe.span) ->
        Format.fprintf ppf "  %-44s %8d %12.3f@." sp.Probe.sp_name
          sp.Probe.sp_dom
          (ms sp.Probe.sp_dur))
      cases);
  (match snap.Probe.sn_counters with
  | [] -> ()
  | counters ->
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-36s %d@." name v)
      counters);
  match snap.Probe.sn_gauges with
  | [] -> ()
  | gauges ->
    Format.fprintf ppf "gauges:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-36s %.4g@." name v)
      gauges
