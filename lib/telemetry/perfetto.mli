(** Chrome/Perfetto trace-event export.

    Serializes a {!Probe.snapshot} to the JSON Trace Event Format (the
    ["traceEvents"] object form) understood by Perfetto
    ([ui.perfetto.dev]) and the legacy [chrome://tracing] viewer:

    - one track (tid) per recording domain, named [domain N];
    - every span becomes a complete event ([ph = "X"]) with microsecond
      [ts]/[dur], timestamps rebased to the snapshot's earliest span;
    - counters and gauges ride along in the top-level ["otherData"]
      object, which both viewers preserve.

    Nesting needs no explicit parent links: complete events on the same
    track nest by interval containment, which is exactly how the spans
    were recorded. *)

(** [to_string snap] is the trace JSON. *)
val to_string : ?process_name:string -> Probe.snapshot -> string

(** [write_file path snap] writes {!to_string} to [path]. *)
val write_file : ?process_name:string -> string -> Probe.snapshot -> unit
