(* Crash flight recorder: a fixed-size ring of recent event lines per
   domain, kept in memory at a cost of one array store per note, dumped
   as a JSON post-mortem when something goes wrong (crash, SIGQUIT,
   Limit_exceeded).  The rings are domain-local (Domain.DLS, like the
   Probe buffers): recording never takes a lock; only capacity changes,
   reset and the dump itself touch the registry, and those are rare. *)

type entry = { e_ts : float; e_line : string }

type ring = {
  r_dom : int;
  mutable r_buf : entry array;
  mutable r_idx : int;  (* next write position *)
  mutable r_count : int;  (* live entries, <= capacity *)
}

let dummy = { e_ts = 0.; e_line = "" }
let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag
let default_capacity = 256
let capacity = Atomic.make default_capacity
let registry_lock = Mutex.create ()
let rings : ring list ref = ref []

let ring_key : ring Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let r =
        {
          r_dom = (Domain.self () :> int);
          r_buf = Array.make (Atomic.get capacity) dummy;
          r_idx = 0;
          r_count = 0;
        }
      in
      Mutex.protect registry_lock (fun () -> rings := r :: !rings);
      r)

(* Resizes (and clears) every existing ring as well as setting the size
   for rings created later; quiescent-only, like Probe.reset. *)
let set_capacity n =
  let n = max 1 n in
  Atomic.set capacity n;
  Mutex.protect registry_lock (fun () ->
      List.iter
        (fun r ->
          r.r_buf <- Array.make n dummy;
          r.r_idx <- 0;
          r.r_count <- 0)
        !rings)

let reset () =
  Mutex.protect registry_lock (fun () ->
      List.iter
        (fun r ->
          Array.fill r.r_buf 0 (Array.length r.r_buf) dummy;
          r.r_idx <- 0;
          r.r_count <- 0)
        !rings)

let note line =
  if enabled () then begin
    let r = Domain.DLS.get ring_key in
    let cap = Array.length r.r_buf in
    r.r_buf.(r.r_idx) <- { e_ts = Unix.gettimeofday (); e_line = line };
    r.r_idx <- (r.r_idx + 1) mod cap;
    if r.r_count < cap then r.r_count <- r.r_count + 1
  end

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec
    (min 999 (int_of_float ((t -. Float.of_int (int_of_float t)) *. 1000.)))

(* Oldest-to-newest walk of one ring. *)
let entries_of r =
  let cap = Array.length r.r_buf in
  let start = if r.r_count < cap then 0 else r.r_idx in
  List.init r.r_count (fun i -> r.r_buf.((start + i) mod cap))

let dump ~reason =
  let rings = Mutex.protect registry_lock (fun () -> !rings) in
  let entries =
    List.concat_map (fun r -> List.map (fun e -> r.r_dom, e) (entries_of r)) rings
    |> List.sort (fun (_, a) (_, b) -> compare a.e_ts b.e_ts)
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"reason\":\"";
  Buffer.add_string b (json_escape reason);
  Buffer.add_string b "\",\"dumped_at\":\"";
  Buffer.add_string b (iso8601 (Unix.gettimeofday ()));
  Buffer.add_string b (Printf.sprintf "\",\"pid\":%d" (Unix.getpid ()));
  (* span summaries per domain — only when the profiler has anything *)
  if Probe.enabled () then begin
    match Probe.snapshot () with
    | snap ->
      let per_dom = Hashtbl.create 8 in
      List.iter
        (fun (sp : Probe.span) ->
          Hashtbl.replace per_dom sp.Probe.sp_dom
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_dom sp.Probe.sp_dom)))
        snap.Probe.sn_spans;
      let doms =
        List.sort_uniq compare
          (Hashtbl.fold (fun d _ acc -> d :: acc) per_dom []
          @ List.map fst snap.Probe.sn_dropped_by_dom)
      in
      Buffer.add_string b ",\"span_summary\":[";
      List.iteri
        (fun i d ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "{\"dom\":%d,\"spans\":%d,\"dropped\":%d}" d
               (Option.value ~default:0 (Hashtbl.find_opt per_dom d))
               (Option.value ~default:0
                  (List.assoc_opt d snap.Probe.sn_dropped_by_dom))))
        doms;
      Buffer.add_char b ']'
    | exception _ -> ()
  end;
  Buffer.add_string b ",\"entries\":[";
  List.iteri
    (fun i (dom, e) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"ts\":\"%s\",\"dom\":%d,\"line\":\"%s\"}"
           (iso8601 e.e_ts) dom (json_escape e.e_line)))
    entries;
  Buffer.add_string b "]}\n";
  Buffer.contents b

let dump_to_file ~reason path =
  match open_out path with
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (dump ~reason))
  | exception Sys_error _ -> ()
