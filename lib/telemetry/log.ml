(* Structured event log: leveled, key-value, JSON-lines.

   The hot-path contract mirrors Metrics: an event below the threshold
   (and with the flight recorder off) costs two atomic loads and nothing
   else — no formatting, no allocation.  Emission itself serializes under
   one mutex (events are per-request, not per-rewrite), writes one line,
   and rotates the sink file when it outgrows the configured cap. *)

type level = Debug | Info | Warn | Error

let int_of_level = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_name = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

(* 99 = off; comparisons against it fail for every level *)
let threshold = Atomic.make 99

let set_level = function
  | None -> Atomic.set threshold 99
  | Some l -> Atomic.set threshold (int_of_level l)

let level () =
  match Atomic.get threshold with
  | 0 -> Some Debug
  | 1 -> Some Info
  | 2 -> Some Warn
  | 3 -> Some Error
  | _ -> None

let logs l = int_of_level l >= Atomic.get threshold

type value = S of string | I of int | F of float | B of bool

(* ------------------------------------------------------------------ *)
(* Sink *)

type sink = {
  mutable oc : out_channel option;  (* None = stderr *)
  mutable path : string;  (* "" = stderr *)
  mutable rotate_bytes : int;  (* 0 = never rotate *)
  mutable written : int;
}

let sink_lock = Mutex.create ()
let sink = { oc = None; path = ""; rotate_bytes = 0; written = 0 }

let close_sink () =
  Mutex.protect sink_lock (fun () ->
      (match sink.oc with Some oc -> close_out_noerr oc | None -> ());
      sink.oc <- None;
      sink.path <- "";
      sink.rotate_bytes <- 0;
      sink.written <- 0)

let open_sink ?(rotate_bytes = 0) path =
  close_sink ();
  Mutex.protect sink_lock (fun () ->
      sink.oc <-
        Some (open_out_gen [ Open_append; Open_creat ] 0o644 path);
      sink.path <- path;
      sink.rotate_bytes <- max 0 rotate_bytes;
      sink.written <- (try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0))

(* call with sink_lock held *)
let rotate_locked () =
  match sink.oc with
  | Some oc when sink.rotate_bytes > 0 && sink.written >= sink.rotate_bytes ->
    close_out_noerr oc;
    (try Sys.rename sink.path (sink.path ^ ".1") with Sys_error _ -> ());
    sink.oc <- Some (open_out_gen [ Open_append; Open_creat ] 0o644 sink.path);
    sink.written <- 0
  | _ -> ()

let write_line line =
  Mutex.protect sink_lock (fun () ->
      match sink.oc with
      | Some oc ->
        output_string oc line;
        output_char oc '\n';
        flush oc;
        sink.written <- sink.written + String.length line + 1;
        rotate_locked ()
      | None ->
        prerr_string line;
        prerr_newline ())

(* ------------------------------------------------------------------ *)
(* Rendering *)

let escape = Flight.json_escape

let timestamp () = Flight.iso8601 (Unix.gettimeofday ())

let render lvl ev fields =
  let b = Buffer.create 160 in
  Buffer.add_string b "{\"ts\":\"";
  Buffer.add_string b (timestamp ());
  Buffer.add_string b "\",\"lvl\":\"";
  Buffer.add_string b (level_name lvl);
  Buffer.add_string b "\",\"ev\":\"";
  Buffer.add_string b (escape ev);
  Buffer.add_char b '"';
  List.iter
    (fun (k, v) ->
      Buffer.add_string b ",\"";
      Buffer.add_string b (escape k);
      Buffer.add_string b "\":";
      match v with
      | S s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
      | I n -> Buffer.add_string b (string_of_int n)
      | F f ->
        (* JSON has no nan/inf literals; quote the degenerate cases *)
        if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.6g" f)
        else Buffer.add_string b (Printf.sprintf "\"%h\"" f)
      | B b' -> Buffer.add_string b (if b' then "true" else "false"))
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

let event lvl ev fields =
  let to_sink = logs lvl in
  let to_flight = Flight.enabled () in
  if to_sink || to_flight then begin
    let line = render lvl ev fields in
    if to_flight then Flight.note line;
    if to_sink then write_line line
  end

let debug ev fields = event Debug ev fields
let info ev fields = event Info ev fields
let warn ev fields = event Warn ev fields
let error ev fields = event Error ev fields
