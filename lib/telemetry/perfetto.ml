let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us_of_ns ns = float_of_int ns /. 1e3

let to_string ?(process_name = "eqtls") (snap : Probe.snapshot) =
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  let first = ref true in
  let event s =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b s
  in
  event
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"%s\"}}"
       (escape process_name));
  let doms =
    List.sort_uniq compare
      (List.map (fun (sp : Probe.span) -> sp.Probe.sp_dom) snap.Probe.sn_spans)
  in
  List.iter
    (fun d ->
      event
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
            \"args\":{\"name\":\"domain %d\"}}"
           d d))
    doms;
  List.iter
    (fun (sp : Probe.span) ->
      (* request-scoped spans carry the id as an arg so a Perfetto query
         can filter one remote request's work across domains *)
      let args =
        if String.equal sp.Probe.sp_req "" then ""
        else Printf.sprintf ",\"args\":{\"req\":\"%s\"}" (escape sp.Probe.sp_req)
      in
      event
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\
            \"dur\":%.3f,\"pid\":1,\"tid\":%d%s}"
           (escape sp.Probe.sp_name) (escape sp.Probe.sp_cat)
           (us_of_ns (sp.Probe.sp_t0 - snap.Probe.sn_t0))
           (us_of_ns sp.Probe.sp_dur) sp.Probe.sp_dom args))
    snap.Probe.sn_spans;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{";
  let first = ref true in
  let field k v =
    if !first then first := false else Buffer.add_string b ",";
    Buffer.add_string b (Printf.sprintf "\"%s\":%s" (escape k) v)
  in
  List.iter
    (fun (name, v) -> field name (string_of_int v))
    snap.Probe.sn_counters;
  List.iter
    (fun (name, v) -> field name (Printf.sprintf "%.6g" v))
    snap.Probe.sn_gauges;
  field "spans_dropped" (string_of_int snap.Probe.sn_dropped);
  List.iter
    (fun (dom, n) ->
      field (Printf.sprintf "spans_dropped_dom%d" dom) (string_of_int n))
    snap.Probe.sn_dropped_by_dom;
  Buffer.add_string b "}}\n";
  Buffer.contents b

let write_file ?process_name path snap =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?process_name snap))
