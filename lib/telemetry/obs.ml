(* Serving observability: OpenMetrics text exposition over a Metrics
   snapshot, plus the dependency-free HTTP/1.1 plumbing the daemon's
   select() loop needs to serve it.  Everything here is pure string
   work — sockets stay in lib/server, so this library keeps its tiny
   dependency footprint and the renderers stay unit-testable. *)

(* ------------------------------------------------------------------ *)
(* Metric-name sanitization: OpenMetrics names are [a-zA-Z_][a-zA-Z0-9_]* *)

let sanitize_name s =
  let b = Buffer.create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' -> Buffer.add_char b c
      | '0' .. '9' ->
        if i = 0 then Buffer.add_char b '_';
        Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    s;
  if Buffer.length b = 0 then "_" else Buffer.contents b

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let fmt_float f = Printf.sprintf "%.17g" f

(* ------------------------------------------------------------------ *)
(* OpenMetrics exposition *)

let content_type = "application/openmetrics-text; version=1.0.0; charset=utf-8"

let seconds_of_ns ns = float_of_int ns /. 1e9

(* One histogram family: [label] is [Some (name, value)] for a member of
   a labeled family, [None] for a standalone one.  Buckets are emitted
   cumulative with [le] in seconds; the overflow bucket is [+Inf]. *)
let add_histogram_samples buf family label (h : Metrics.histogram_view) =
  let labels extra =
    match label, extra with
    | None, [] -> ""
    | _ ->
      let parts =
        (match label with
        | None -> []
        | Some (k, v) -> [ Printf.sprintf "%s=\"%s\"" k (escape_label v) ])
        @ List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k v) extra
      in
      "{" ^ String.concat "," parts ^ "}"
  in
  let cum = ref 0 in
  Array.iteri
    (fun i n ->
      cum := !cum + n;
      let le =
        if i >= Metrics.nbuckets then "+Inf"
        else Printf.sprintf "%g" (seconds_of_ns (Metrics.bucket_bound_ns i))
      in
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket%s %d\n" family
           (labels [ "le", le ])
           !cum))
    h.Metrics.h_buckets;
  Buffer.add_string buf
    (Printf.sprintf "%s_count%s %d\n" family (labels []) h.Metrics.h_count);
  Buffer.add_string buf
    (Printf.sprintf "%s_sum%s %s\n" family (labels [])
       (fmt_float (seconds_of_ns h.Metrics.h_sum_ns)))

(* [labeled] maps a histogram-name prefix to a label name: histograms
   called [prefix] or [prefix ^ "." ^ rest] are grouped into ONE family
   [sanitize prefix ^ "_seconds"], the suffix becoming the label value —
   so per-request-type latencies export as
   [server_request_latency_seconds{type="verify",le="…"}] next to the
   unlabeled all-requests series of the same family. *)
let render_openmetrics ?(labeled = []) (snap : Metrics.snapshot) =
  let buf = Buffer.create 8192 in
  List.iter
    (fun (name, v) ->
      let n = sanitize_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
      Buffer.add_string buf (Printf.sprintf "%s_total %d\n" n v))
    snap.Metrics.m_counters;
  List.iter
    (fun (name, v) ->
      let n = sanitize_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
      Buffer.add_string buf (Printf.sprintf "%s %s\n" n (fmt_float v)))
    snap.Metrics.m_gauges;
  let member_of spec h =
    let prefix, label = spec in
    let name = h.Metrics.h_name in
    if String.equal name prefix then Some (h, None)
    else
      let dotted = prefix ^ "." in
      let pl = String.length dotted in
      if String.length name > pl && String.equal (String.sub name 0 pl) dotted
      then
        Some (h, Some (label, String.sub name pl (String.length name - pl)))
      else None
  in
  let grouped, plain =
    List.fold_left
      (fun (grouped, plain) h ->
        match List.find_map (fun spec -> member_of spec h) labeled with
        | Some (h, lbl) -> ((h, lbl) :: grouped, plain)
        | None -> (grouped, h :: plain))
      ([], []) snap.Metrics.m_histograms
  in
  List.iter
    (fun (prefix, _label) ->
      let members =
        List.rev
          (List.filter
             (fun (h, _) ->
               let name = h.Metrics.h_name in
               String.equal name prefix
               || String.length name > String.length prefix
                  && String.equal
                       (String.sub name 0 (String.length prefix + 1))
                       (prefix ^ "."))
             grouped)
      in
      if members <> [] then begin
        let family = sanitize_name prefix ^ "_seconds" in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" family);
        List.iter (fun (h, lbl) -> add_histogram_samples buf family lbl h) members
      end)
    labeled;
  List.iter
    (fun h ->
      let family = sanitize_name h.Metrics.h_name ^ "_seconds" in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" family);
      add_histogram_samples buf family None h)
    (List.rev plain);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON helper for /statusz builders *)

let json_escape = Flight.json_escape

(* ------------------------------------------------------------------ *)
(* Minimal HTTP/1.1: enough to serve GET /metrics to curl / Prometheus *)

module Http = struct
  type request = { meth : string; target : string }

  let max_head_bytes = 8192

  (* Find the end of the request head in [buffered]; parse the request
     line.  Tolerates both CRLF and bare LF line endings. *)
  let parse buffered =
    let find_head_end () =
      let n = String.length buffered in
      let rec go i =
        if i + 3 < n then
          if
            buffered.[i] = '\r' && buffered.[i + 1] = '\n'
            && buffered.[i + 2] = '\r'
            && buffered.[i + 3] = '\n'
          then Some (i + 4)
          else if buffered.[i] = '\n' && buffered.[i + 1] = '\n' then
            Some (i + 2)
          else go (i + 1)
        else if i + 1 < n && buffered.[i] = '\n' && buffered.[i + 1] = '\n'
        then Some (i + 2)
        else if i < n then go (i + 1)
        else None
      in
      go 0
    in
    match find_head_end () with
    | None ->
      if String.length buffered > max_head_bytes then `Bad else `Partial
    | Some _ -> (
      let line =
        match String.index_opt buffered '\n' with
        | Some i ->
          let l = String.sub buffered 0 i in
          if l <> "" && l.[String.length l - 1] = '\r' then
            String.sub l 0 (String.length l - 1)
          else l
        | None -> buffered
      in
      match String.split_on_char ' ' line with
      | [ meth; target; version ]
        when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
        `Ready { meth; target }
      | _ -> `Bad)

  let status_text = function
    | 200 -> "OK"
    | 400 -> "Bad Request"
    | 404 -> "Not Found"
    | 405 -> "Method Not Allowed"
    | 503 -> "Service Unavailable"
    | _ -> "Internal Server Error"

  let response ?(status = 200) ?(content_type = "text/plain; charset=utf-8")
      body =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n%s"
      status (status_text status) content_type (String.length body) body
end
