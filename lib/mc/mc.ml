type ('state, 'action) system = {
  initial : 'state;
  next : 'state -> ('action * 'state) list;
  key : 'state -> string;
  show_action : 'action -> string;
}

type stats = {
  states_explored : int;
  transitions_fired : int;
  max_depth : int;
  elapsed : float;
}

type 'action violation = {
  property : string;
  trace : 'action list;
  depth : int;
}

type 'action outcome =
  | No_violation of stats
  | Violation of 'action violation * stats
  | Out_of_bounds of stats

exception Found of string * int

(* Shared BFS core: explores until exhaustion or a state satisfying [stop].
   Parent pointers (by state key) reconstruct traces. *)
type 'a node = { parent_key : string option; via : 'a option; depth : int }

let explore ?(max_states = 1_000_000) ?(max_depth = max_int) system ~stop =
  let t0 = Unix.gettimeofday () in
  let seen : (string, 'a node) Hashtbl.t = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let states = ref 0 in
  let transitions = ref 0 in
  let deepest = ref 0 in
  let complete = ref true in
  let trace_to key =
    let rec go key acc =
      match Hashtbl.find seen key with
      | { parent_key = None; _ } -> acc
      | { parent_key = Some pk; via = Some a; _ } -> go pk (a :: acc)
      | { parent_key = Some _; via = None; _ } -> acc
    in
    go key []
  in
  let enqueue state parent_key via depth =
    let k = system.key state in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k { parent_key; via; depth };
      incr states;
      if depth > !deepest then deepest := depth;
      (match stop state with
      | Some (_ : string) -> raise (Found (k, depth))
      | None -> ());
      if depth < max_depth then Queue.add (state, k, depth) queue
      else complete := false
    end
  in
  let mk_stats () =
    {
      states_explored = !states;
      transitions_fired = !transitions;
      max_depth = !deepest;
      elapsed = Unix.gettimeofday () -. t0;
    }
  in
  try
    enqueue system.initial None None 0;
    while not (Queue.is_empty queue) do
      if !states > max_states then begin
        complete := false;
        Queue.clear queue
      end
      else begin
        let state, k, depth = Queue.pop queue in
        List.iter
          (fun (a, s') ->
            incr transitions;
            enqueue s' (Some k) (Some a) (depth + 1))
          (system.next state)
      end
    done;
    `Exhausted (mk_stats (), !complete)
  with Found (key, depth) ->
    `Stopped (mk_stats (), trace_to key, depth)

(* Level-synchronous parallel BFS.  Each frontier level is expanded on the
   pool ([system.next] on distinct states, chunked to bound task count);
   the seen-set merge is sequential, walking the expanded items in frontier
   order and replaying exactly the [enqueue] logic of {!explore} — same
   per-item bound check, same dedup order, same stop-at-first-violation.
   The outcome (violation, trace, depth, states, transitions) is therefore
   identical to the sequential exploration; only wall-clock differs.

   State handoff is synchronized: closures reach workers through the pool's
   queues and successor states return through task results, so per-state
   caches written on one side are visible on the other. *)
let explore_par ?(max_states = 1_000_000) ?(max_depth = max_int) pool system
    ~stop =
  let t0 = Unix.gettimeofday () in
  let seen : (string, 'a node) Hashtbl.t = Hashtbl.create 4096 in
  let states = ref 0 in
  let transitions = ref 0 in
  let deepest = ref 0 in
  let complete = ref true in
  let frontier = ref [] in
  let trace_to key =
    let rec go key acc =
      match Hashtbl.find seen key with
      | { parent_key = None; _ } -> acc
      | { parent_key = Some pk; via = Some a; _ } -> go pk (a :: acc)
      | { parent_key = Some _; via = None; _ } -> acc
    in
    go key []
  in
  let enqueue state parent_key via depth =
    let k = system.key state in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k { parent_key; via; depth };
      incr states;
      if depth > !deepest then deepest := depth;
      (match stop state with
      | Some (_ : string) -> raise (Found (k, depth))
      | None -> ());
      if depth < max_depth then frontier := (state, k, depth) :: !frontier
      else complete := false
    end
  in
  let mk_stats () =
    {
      states_explored = !states;
      transitions_fired = !transitions;
      max_depth = !deepest;
      elapsed = Unix.gettimeofday () -. t0;
    }
  in
  let chunks level =
    let size =
      max 1
        ((List.length level + (4 * Sched.Pool.jobs pool) - 1)
        / (4 * Sched.Pool.jobs pool))
    in
    let rec split acc current n = function
      | [] ->
        List.rev
          (if current = [] then acc else List.rev current :: acc)
      | x :: rest ->
        if n = size then split (List.rev current :: acc) [ x ] 1 rest
        else split acc (x :: current) (n + 1) rest
    in
    split [] [] 0 level
  in
  try
    enqueue system.initial None None 0;
    while !frontier <> [] do
      let level = List.rev !frontier in
      frontier := [];
      if !states > max_states then complete := false
      else begin
        let expanded =
          Sched.Pool.parallel_map pool
            (List.map (fun (state, k, depth) -> k, depth, system.next state))
            (chunks level)
        in
        List.iter
          (List.iter (fun (k, depth, succs) ->
               if !states > max_states then complete := false
               else
                 List.iter
                   (fun (a, s') ->
                     incr transitions;
                     enqueue s' (Some k) (Some a) (depth + 1))
                   succs))
          expanded
      end
    done;
    `Exhausted (mk_stats (), !complete)
  with Found (key, depth) ->
    `Stopped (mk_stats (), trace_to key, depth)

let outcome_of_explore violated = function
  | `Exhausted (stats, true) -> No_violation stats
  | `Exhausted (stats, false) -> Out_of_bounds stats
  | `Stopped (stats, trace, depth) ->
    Violation ({ property = !violated; trace; depth }, stats)

let stop_of_props props =
  let violated = ref "" in
  let stop state =
    match
      List.find_map
        (fun (name, pred) -> if pred state then None else Some name)
        props
    with
    | Some name ->
      violated := name;
      Some name
    | None -> None
  in
  violated, stop

let par_bfs ?max_states ?max_depth ~pool system ~props =
  let violated, stop = stop_of_props props in
  outcome_of_explore violated
    (explore_par ?max_states ?max_depth pool system ~stop)

let bfs ?max_states ?max_depth system ~props =
  (* [stop] returns the name of a *violated* property. *)
  let violated, stop = stop_of_props props in
  outcome_of_explore violated (explore ?max_states ?max_depth system ~stop)

let reachable ?max_states ?max_depth system ~goal =
  let witness = ref None in
  let stop state =
    if goal state then begin
      witness := Some state;
      Some "goal"
    end
    else None
  in
  match explore ?max_states ?max_depth system ~stop with
  | `Exhausted _ -> None
  | `Stopped (_, trace, _) -> (
    match !witness with Some s -> Some (trace, s) | None -> None)

let outcome_stats = function
  | No_violation s -> s
  | Violation (_, s) -> s
  | Out_of_bounds s -> s

let pp_stats ppf s =
  Format.fprintf ppf "states=%d transitions=%d depth=%d %.3fs"
    s.states_explored s.transitions_fired s.max_depth s.elapsed

let pp_outcome pp_action ppf = function
  | No_violation s ->
    Format.fprintf ppf "no violation (exhaustive; %a)" pp_stats s
  | Out_of_bounds s ->
    Format.fprintf ppf "no violation within bounds (%a)" pp_stats s
  | Violation (v, s) ->
    Format.fprintf ppf "@[<v2>violation of %s at depth %d (%a):" v.property
      v.depth pp_stats s;
    List.iter (fun a -> Format.fprintf ppf "@,%a" pp_action a) v.trace;
    Format.fprintf ppf "@]"
