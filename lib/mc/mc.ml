type ('state, 'action) system = {
  initial : 'state;
  next : 'state -> ('action * 'state) list;
  key : 'state -> string;
  show_action : 'action -> string;
}

type ('state, 'action) reduction = {
  ample : 'action -> bool;
  canon : 'state -> 'state;
}

let no_reduction = { ample = (fun _ -> false); canon = (fun s -> s) }

type stats = {
  states_explored : int;
  transitions_fired : int;
  states_pruned : int;
  max_depth : int;
  elapsed : float;
}

type 'action violation = {
  property : string;
  trace : 'action list;
  depth : int;
}

type 'action outcome =
  | No_violation of stats
  | Violation of 'action violation * stats
  | Out_of_bounds of stats

exception Found of string * int

let c_pruned = Telemetry.Metrics.counter "mc.por.pruned"

(* Shared BFS core: explores until exhaustion or a state satisfying [stop].
   Parent pointers (by state key) reconstruct traces.  With a reduction, a
   whole chase of ample transitions collapses into one compound edge, so
   [via] is a label {e chain}: singleton for an ordinary step, the fired
   sequence for a compound one, flattened on trace reconstruction. *)
type 'a node = { parent_key : string option; via : 'a list; depth : int }

(* Saturate the certified-independent ample transitions from [s] into one
   compound step: repeatedly follow the first ample successor whose
   canonical key actually changes, until none does (or a safety cap trips
   — ample cycles are possible, e.g. the intruder re-faking a message it
   already sent).  Independence of the ample actions from *every* action
   makes the endpoint order-insensitive; the cap keeps cycles finite.
   [peek] checks the properties on the intermediate states so a violation
   inside the chase surfaces at the point it appears instead of being
   jumped over; the chase truncates there and the caller enqueues the
   violating state. *)
let flood ~red ~key ~next ~peek s k =
  let rec go s k labels n =
    if n >= 256 then (List.rev labels, s, k)
    else
      match
        List.find_map
          (fun (a, s') ->
            if red.ample a then begin
              let s' = red.canon s' in
              let k' = key s' in
              if String.equal k' k then None else Some (a, s', k')
            end
            else None)
          (next s)
      with
      | None -> (List.rev labels, s, k)
      | Some (a, s', k') ->
        let labels = a :: labels in
        if peek s' then (List.rev labels, s', k') else go s' k' labels (n + 1)
  in
  go s k [] 0

let explore ?(max_states = 1_000_000) ?(max_depth = max_int) ?reduction system
    ~stop =
  let t0 = Unix.gettimeofday () in
  let red = Option.value reduction ~default:no_reduction in
  let reduced = Option.is_some reduction in
  let seen : (string, 'a node) Hashtbl.t = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let states = ref 0 in
  let transitions = ref 0 in
  let pruned = ref 0 in
  let compound_fired = ref false in
  let deepest = ref 0 in
  let complete = ref true in
  let trace_to key =
    let rec go key acc =
      match Hashtbl.find seen key with
      | { parent_key = None; _ } -> acc
      | { parent_key = Some pk; via; _ } -> go pk (via @ acc)
    in
    go key []
  in
  (* [state] must already be canonical. *)
  let enqueue state parent_key via depth =
    let k = system.key state in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k { parent_key; via; depth };
      incr states;
      if depth > !deepest then deepest := depth;
      (match stop state with
      | Some (_ : string) -> raise (Found (k, depth))
      | None -> ());
      if depth < max_depth then Queue.add (state, k, depth) queue
      else complete := false
    end
  in
  let mk_stats () =
    Telemetry.Metrics.add c_pruned !pruned;
    {
      states_explored = !states;
      transitions_fired = !transitions;
      states_pruned = !pruned;
      max_depth = !deepest;
      elapsed = Unix.gettimeofday () -. t0;
    }
  in
  let peek s = Option.is_some (stop s) in
  let expand state k depth =
    let succs = system.next state in
    if not reduced then
      List.iter
        (fun (a, s') ->
          incr transitions;
          enqueue s' (Some k) [ a ] (depth + 1))
        succs
    else begin
      let amples, honest = List.partition (fun (a, _) -> red.ample a) succs in
      (match amples with
      | [] -> ()
      | _ -> (
        let labels, s_end, k_end =
          flood ~red ~key:system.key ~next:system.next ~peek state k
        in
        if String.equal k_end k then
          (* the whole ample set only shuffles within the current orbit *)
          pruned := !pruned + List.length amples
        else begin
          incr transitions;
          compound_fired := true;
          pruned := !pruned + List.length amples - 1;
          enqueue s_end (Some k) labels (depth + 1)
        end));
      List.iter
        (fun (a, s') ->
          incr transitions;
          enqueue (red.canon s') (Some k) [ a ] (depth + 1))
        honest
    end
  in
  try
    enqueue (red.canon system.initial) None [] 0;
    while not (Queue.is_empty queue) do
      if !states > max_states then begin
        complete := false;
        Queue.clear queue
      end
      else begin
        let state, k, depth = Queue.pop queue in
        expand state k depth
      end
    done;
    (* A compound edge compresses several transitions into one depth level,
       so under a finite depth bound exhaustion of the reduced graph does
       not certify the full bounded space: report [Out_of_bounds] exactly
       as the unreduced exploration would. *)
    let genuinely_complete =
      !complete && not (!compound_fired && max_depth < max_int)
    in
    `Exhausted (mk_stats (), genuinely_complete)
  with Found (key, depth) -> `Stopped (mk_stats (), trace_to key, depth)

(* Level-synchronous parallel BFS.  Each frontier level is expanded on the
   pool ([system.next] — and, under a reduction, the canonization and the
   whole flood chase — on distinct states, chunked to bound task count);
   the seen-set merge is sequential, walking the expanded items in frontier
   order and replaying exactly the [enqueue] logic of {!explore} — same
   per-item bound check, same dedup order, same stop-at-first-violation.
   The outcome (violation, trace, depth, states, transitions, pruning) is
   therefore identical to the sequential exploration; only wall-clock
   differs.

   State handoff is synchronized: closures reach workers through the pool's
   queues and successor states return through task results, so per-state
   caches written on one side are visible on the other. *)
let explore_par ?(max_states = 1_000_000) ?(max_depth = max_int) ?reduction
    pool system ~stop =
  let t0 = Unix.gettimeofday () in
  let red = Option.value reduction ~default:no_reduction in
  let reduced = Option.is_some reduction in
  let seen : (string, 'a node) Hashtbl.t = Hashtbl.create 4096 in
  let states = ref 0 in
  let transitions = ref 0 in
  let pruned = ref 0 in
  let compound_fired = ref false in
  let deepest = ref 0 in
  let complete = ref true in
  let frontier = ref [] in
  let trace_to key =
    let rec go key acc =
      match Hashtbl.find seen key with
      | { parent_key = None; _ } -> acc
      | { parent_key = Some pk; via; _ } -> go pk (via @ acc)
    in
    go key []
  in
  let enqueue state parent_key via depth =
    let k = system.key state in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k { parent_key; via; depth };
      incr states;
      if depth > !deepest then deepest := depth;
      (match stop state with
      | Some (_ : string) -> raise (Found (k, depth))
      | None -> ());
      if depth < max_depth then frontier := (state, k, depth) :: !frontier
      else complete := false
    end
  in
  let mk_stats () =
    Telemetry.Metrics.add c_pruned !pruned;
    {
      states_explored = !states;
      transitions_fired = !transitions;
      states_pruned = !pruned;
      max_depth = !deepest;
      elapsed = Unix.gettimeofday () -. t0;
    }
  in
  let peek s = Option.is_some (stop s) in
  (* Workers do the expensive part — [next], canonization, flooding — and
     return step descriptors; the merge replays them in frontier order so
     counting and enqueue order match the sequential exploration. *)
  let expand_worker state k =
    let succs = system.next state in
    if not reduced then
      List.map (fun (a, s') -> `Step (a, s')) succs
    else begin
      let amples, honest = List.partition (fun (a, _) -> red.ample a) succs in
      let compound =
        match amples with
        | [] -> []
        | _ -> (
          let labels, s_end, k_end =
            flood ~red ~key:system.key ~next:system.next ~peek state k
          in
          if String.equal k_end k then [ `Prune (List.length amples) ]
          else [ `Comp (labels, s_end, List.length amples - 1) ])
      in
      compound
      @ List.map (fun (a, s') -> `Step (a, red.canon s')) honest
    end
  in
  let chunks level =
    let size =
      max 1
        ((List.length level + (4 * Sched.Pool.jobs pool) - 1)
        / (4 * Sched.Pool.jobs pool))
    in
    let rec split acc current n = function
      | [] ->
        List.rev
          (if current = [] then acc else List.rev current :: acc)
      | x :: rest ->
        if n = size then split (List.rev current :: acc) [ x ] 1 rest
        else split acc (x :: current) (n + 1) rest
    in
    split [] [] 0 level
  in
  try
    enqueue (red.canon system.initial) None [] 0;
    while !frontier <> [] do
      let level = List.rev !frontier in
      frontier := [];
      if !states > max_states then complete := false
      else begin
        let expanded =
          Sched.Pool.parallel_map pool
            (List.map (fun (state, k, depth) -> (k, depth, expand_worker state k)))
            (chunks level)
        in
        List.iter
          (List.iter (fun (k, depth, steps) ->
               if !states > max_states then complete := false
               else
                 List.iter
                   (function
                     | `Step (a, s') ->
                       incr transitions;
                       enqueue s' (Some k) [ a ] (depth + 1)
                     | `Comp (labels, s', n_pruned) ->
                       incr transitions;
                       compound_fired := true;
                       pruned := !pruned + n_pruned;
                       enqueue s' (Some k) labels (depth + 1)
                     | `Prune n -> pruned := !pruned + n)
                   steps))
          expanded
      end
    done;
    let genuinely_complete =
      !complete && not (!compound_fired && max_depth < max_int)
    in
    `Exhausted (mk_stats (), genuinely_complete)
  with Found (key, depth) -> `Stopped (mk_stats (), trace_to key, depth)

let outcome_of_explore violated = function
  | `Exhausted (stats, true) -> No_violation stats
  | `Exhausted (stats, false) -> Out_of_bounds stats
  | `Stopped (stats, trace, depth) ->
    Violation ({ property = !violated; trace; depth }, stats)

let stop_of_props props =
  let violated = ref "" in
  let stop state =
    match
      List.find_map
        (fun (name, pred) -> if pred state then None else Some name)
        props
    with
    | Some name ->
      violated := name;
      Some name
    | None -> None
  in
  violated, stop

let par_bfs ?max_states ?max_depth ?reduction ~pool system ~props =
  let violated, stop = stop_of_props props in
  outcome_of_explore violated
    (explore_par ?max_states ?max_depth ?reduction pool system ~stop)

let bfs ?max_states ?max_depth ?reduction system ~props =
  (* [stop] returns the name of a *violated* property. *)
  let violated, stop = stop_of_props props in
  outcome_of_explore violated
    (explore ?max_states ?max_depth ?reduction system ~stop)

let reachable ?max_states ?max_depth ?reduction system ~goal =
  let witness = ref None in
  let stop state =
    if goal state then begin
      witness := Some state;
      Some "goal"
    end
    else None
  in
  match explore ?max_states ?max_depth ?reduction system ~stop with
  | `Exhausted _ -> None
  | `Stopped (_, trace, _) -> (
    match !witness with Some s -> Some (trace, s) | None -> None)

let outcome_stats = function
  | No_violation s -> s
  | Violation (_, s) -> s
  | Out_of_bounds s -> s

let pp_stats ppf s =
  Format.fprintf ppf "states=%d transitions=%d depth=%d %.3fs"
    s.states_explored s.transitions_fired s.max_depth s.elapsed;
  if s.states_pruned > 0 then
    Format.fprintf ppf " (pruned %d)" s.states_pruned

let pp_outcome pp_action ppf = function
  | No_violation s ->
    Format.fprintf ppf "no violation (exhaustive; %a)" pp_stats s
  | Out_of_bounds s ->
    Format.fprintf ppf "no violation within bounds (%a)" pp_stats s
  | Violation (v, s) ->
    Format.fprintf ppf "@[<v2>violation of %s at depth %d (%a):" v.property
      v.depth pp_stats s;
    List.iter (fun a -> Format.fprintf ppf "@,%a" pp_action a) v.trace;
    Format.fprintf ppf "@]"
