(** An explicit-state model checker à la Murφ.

    This is the reproduction of the paper's related-work baseline (Mitchell,
    Shmatikov and Stern's finite-state analysis of SSL 3.0, Section 6):
    exhaustive breadth-first exploration of a finite protocol scenario,
    invariant checking at every reachable state, and counterexample trace
    reconstruction.

    The checker is generic: a system is a record of initial state, enabled
    transitions and state identity.  States are deduplicated with a hash
    table over a caller-supplied canonical key. *)

type ('state, 'action) system = {
  initial : 'state;
  next : 'state -> ('action * 'state) list;
      (** enabled transitions in the given state *)
  key : 'state -> string;
      (** canonical identity: two states with the same key are merged *)
  show_action : 'action -> string;
}

type stats = {
  states_explored : int;
  transitions_fired : int;
  max_depth : int;
  elapsed : float;  (** seconds *)
}

type 'action violation = {
  property : string;
  trace : 'action list;  (** action labels from the initial state *)
  depth : int;
}

type 'action outcome =
  | No_violation of stats  (** the full (bounded) space satisfied everything *)
  | Violation of 'action violation * stats
  | Out_of_bounds of stats
      (** a bound was hit before exhaustion and no violation found *)

(** [bfs ?max_states ?max_depth system ~props] explores breadth-first and
    checks each named predicate at every state, returning the first
    violation (whose trace is minimal by BFS) or exhaustion.  Defaults:
    [max_states = 1_000_000], [max_depth = max_int]. *)
val bfs :
  ?max_states:int ->
  ?max_depth:int ->
  ('s, 'a) system ->
  props:(string * ('s -> bool)) list ->
  'a outcome

(** [par_bfs ?max_states ?max_depth ~pool system ~props] is {!bfs} with
    each frontier level expanded in parallel on [pool]: [system.next] runs
    on the pool's domains (chunked over the level), and successors are
    merged into the seen set sequentially, in frontier order, replaying the
    sequential enqueue logic exactly.  The outcome — violation, minimal
    trace, depth, state and transition counts — is identical to [bfs] on
    the same system and bounds; only [elapsed] differs.  [system.next] must
    be safe to call concurrently on distinct states. *)
val par_bfs :
  ?max_states:int ->
  ?max_depth:int ->
  pool:Sched.Pool.t ->
  ('s, 'a) system ->
  props:(string * ('s -> bool)) list ->
  'a outcome

(** [reachable ?max_states ?max_depth system ~goal] searches for a state
    satisfying [goal]; returns the (BFS-minimal) witness trace, if any.
    Used to answer “can the protocol reach a completed handshake?” style
    questions positively. *)
val reachable :
  ?max_states:int ->
  ?max_depth:int ->
  ('s, 'a) system ->
  goal:('s -> bool) ->
  ('a list * 's) option

val outcome_stats : 'a outcome -> stats
val pp_stats : Format.formatter -> stats -> unit

val pp_outcome :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a outcome -> unit
