(** An explicit-state model checker à la Murφ.

    This is the reproduction of the paper's related-work baseline (Mitchell,
    Shmatikov and Stern's finite-state analysis of SSL 3.0, Section 6):
    exhaustive breadth-first exploration of a finite protocol scenario,
    invariant checking at every reachable state, and counterexample trace
    reconstruction.

    The checker is generic: a system is a record of initial state, enabled
    transitions and state identity.  States are deduplicated with a hash
    table over a caller-supplied canonical key. *)

type ('state, 'action) system = {
  initial : 'state;
  next : 'state -> ('action * 'state) list;
      (** enabled transitions in the given state *)
  key : 'state -> string;
      (** canonical identity: two states with the same key are merged *)
  show_action : 'action -> string;
}

(** A state-space reduction, justified by the static analyses of
    {!Analysis.Indep} and {!Analysis.Symmetry}:

    - [ample a] marks actions proved independent of {e every} action of
      the system (including themselves) — see [Indep.certified_ample].
      From each state, all enabled ample transitions are saturated into a
      single compound step (a chase following the first ample successor
      whose key changes, cycle-capped), instead of branching the frontier
      on each of them.  Properties are still checked on every chase
      intermediate, so violations inside a compound step are not jumped
      over.
    - [canon s] maps a state to a canonical representative of its orbit
      under a proved permutation symmetry (see [Symmetry.orbit_elems]);
      orbit-minimization makes it idempotent.  [fun s -> s] when no
      symmetry is used.

    Soundness caveat inherited from ample-set reduction: with a finite
    [max_depth], compound steps compress several transitions into one
    level, so exhaustion of the reduced graph within the bound does not
    certify the full bounded space — such runs report [Out_of_bounds],
    matching the unreduced verdict.  Unbounded exhaustive runs still
    report [No_violation]. *)
type ('state, 'action) reduction = {
  ample : 'action -> bool;
  canon : 'state -> 'state;
}

type stats = {
  states_explored : int;
  transitions_fired : int;
  states_pruned : int;
      (** enabled ample transitions subsumed by compound steps; also
          accumulated on the [mc.por.pruned] telemetry counter *)
  max_depth : int;
  elapsed : float;  (** seconds *)
}

type 'action violation = {
  property : string;
  trace : 'action list;  (** action labels from the initial state *)
  depth : int;
}

type 'action outcome =
  | No_violation of stats  (** the full (bounded) space satisfied everything *)
  | Violation of 'action violation * stats
  | Out_of_bounds of stats
      (** a bound was hit before exhaustion and no violation found *)

(** [bfs ?max_states ?max_depth ?reduction system ~props] explores
    breadth-first and checks each named predicate at every state,
    returning the first violation (whose trace is minimal by BFS) or
    exhaustion.  With [reduction], the search runs on the reduced state
    graph: states are canonized before dedup and certified-ample
    transitions collapse into compound steps (a violation trace then lists
    every action fired, compound chains flattened in order).  Defaults:
    [max_states = 1_000_000], [max_depth = max_int], no reduction. *)
val bfs :
  ?max_states:int ->
  ?max_depth:int ->
  ?reduction:('s, 'a) reduction ->
  ('s, 'a) system ->
  props:(string * ('s -> bool)) list ->
  'a outcome

(** [par_bfs ?max_states ?max_depth ?reduction ~pool system ~props] is
    {!bfs} with each frontier level expanded in parallel on [pool]:
    [system.next] — and, under a reduction, canonization and the compound
    chase — runs on the pool's domains (chunked over the level), and
    successors are merged into the seen set sequentially, in frontier
    order, replaying the sequential enqueue logic exactly.  The outcome —
    violation, minimal trace, depth, state/transition/pruned counts — is
    identical to [bfs] on the same system, bounds and reduction; only
    [elapsed] differs.  [system.next] (and [reduction], if any) must be
    safe to call concurrently on distinct states. *)
val par_bfs :
  ?max_states:int ->
  ?max_depth:int ->
  ?reduction:('s, 'a) reduction ->
  pool:Sched.Pool.t ->
  ('s, 'a) system ->
  props:(string * ('s -> bool)) list ->
  'a outcome

(** [reachable ?max_states ?max_depth ?reduction system ~goal] searches
    for a state satisfying [goal]; returns the (BFS-minimal) witness
    trace, if any.  Used to answer “can the protocol reach a completed
    handshake?” style questions positively. *)
val reachable :
  ?max_states:int ->
  ?max_depth:int ->
  ?reduction:('s, 'a) reduction ->
  ('s, 'a) system ->
  goal:('s -> bool) ->
  ('a list * 's) option

val outcome_stats : 'a outcome -> stats
val pp_stats : Format.formatter -> stats -> unit

val pp_outcome :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a outcome -> unit
