open Kernel
open Core
module D = Tls.Data

type proof =
  | Inductive of Induction.invariant * Induction.hint list
  | Derived of Induction.invariant * (Term.t -> Term.t list -> Term.t list)

let name_of = function
  | Inductive (inv, _) -> inv.Induction.inv_name
  | Derived (inv, _) -> inv.Induction.inv_name

let main_properties = [ "inv1"; "inv2"; "inv3"; "inv4"; "inv5" ]

let auxiliary =
  [
    "sig-genuine"; "ct-gleans-sig"; "sf-gleans-esfin"; "sf2-gleans-esfin2";
    "cepms-key"; "esfin-genuine"; "esfin2-genuine"; "sf-history";
    "sf2-history"; "ch-rand-used"; "sh-rand-used"; "kx-secret-used";
    "sh-sid-used";
  ]

(* ------------------------------------------------------------------ *)
(* Campaign construction, parameterized by the protocol style. *)

let build style =
  let o =
    match style with
    | Tls.Model.Original -> Tls.Model.ots ()
    | Tls.Model.Cf2First -> Tls.Model.variant_ots ()
  in
  let nw s = Tls.Model.nw o s in
  let ur s = Tls.Model.ur o s in
  let ui s = Tls.Model.ui o s in
  let us s = Tls.Model.us o s in
  let inv name params body : Induction.invariant =
    { inv_name = name; inv_params = params; inv_body = body }
  in
  let not_intruder t = Term.not_ (Term.eq t D.intruder) in

  (* --- the full-handshake ServerFinished ciphertext for parameters
     (a, b, se, r1, r2, i, l, c) --- *)
  let esfin_of a b se r1 r2 i l c =
    let pmsv = D.pms_ ~client:a ~server:b se in
    D.esfin_ (D.hkey_ b pmsv r1 r2) (D.sfin_ [ a; b; i; l; c; r1; r2; pmsv ])
  in
  let esfin2_of a b se r1 r2 i c =
    let pmsv = D.pms_ ~client:a ~server:b se in
    D.esfin2_ (D.hkey_ b pmsv r1 r2) (D.sfin2_ [ a; b; i; c; r1; r2; pmsv ])
  in
  let genuine_cert b = D.cert_of b (D.pk_ b) (D.sig_of ~signer:D.ca ~subject:b (D.pk_ b)) in

  (* ================= auxiliary invariants ================= *)

  (* Gleanable CA signatures certify the subject's own key: the intruder
     cannot sign with the CA's private key. *)
  let sig_genuine =
    inv "sig-genuine"
      [ "B", D.prin; "K", D.pub_key ]
      (fun s args ->
        match args with
        | [ b; k ] ->
          Term.implies
            (D.in_csig (D.sig_of ~signer:D.ca ~subject:b k) (nw s))
            (Term.eq k (D.pk_ b))
        | _ -> assert false)
  in

  (* Coherence: a Certificate message in the network makes its signature
     gleanable. *)
  let ct_gleans_sig =
    inv "ct-gleans-sig"
      [ "M", D.msg ]
      (fun s args ->
        match args with
        | [ m ] ->
          Term.implies
            (Term.and_ (D.msg_in m (nw s)) (D.is_ct m))
            (D.in_csig (D.cert_sig (D.msg_cert m)) (nw s))
        | _ -> assert false)
  in
  let sf_gleans_esfin =
    inv "sf-gleans-esfin"
      [ "M", D.msg ]
      (fun s args ->
        match args with
        | [ m ] ->
          Term.implies
            (Term.and_ (D.msg_in m (nw s)) (D.is_sf m))
            (D.in_cesfin (D.msg_esfin m) (nw s))
        | _ -> assert false)
  in
  let sf2_gleans_esfin2 =
    inv "sf2-gleans-esfin2"
      [ "M", D.msg ]
      (fun s args ->
        match args with
        | [ m ] ->
          Term.implies
            (Term.and_ (D.msg_in m (nw s)) (D.is_sf2 m))
            (D.in_cesfin2 (D.msg_esfin2 m) (nw s))
        | _ -> assert false)
  in

  (* A gleanable encrypted pre-master secret under the intruder's public key
     has a gleanable payload (the intruder can decrypt it). *)
  let cepms_key =
    inv "cepms-key"
      [ "E", D.enc_pms ]
      (fun s args ->
        match args with
        | [ e ] ->
          Term.implies
            (Term.and_
               (D.in_cepms e (nw s))
               (Term.eq (D.epms_key e) (D.pk_ D.intruder)))
            (D.in_cpms (D.epms_pms e) (nw s))
        | _ -> assert false)
  in

  (* ================= inv1 ================= *)
  let inv1 =
    inv "inv1"
      [ "PMS", D.pms ]
      (fun s args ->
        match args with
        | [ p ] ->
          Term.implies
            (D.in_cpms p (nw s))
            (Term.or_
               (Term.eq (D.pms_client p) D.intruder)
               (Term.eq (D.pms_server p) D.intruder))
        | _ -> assert false)
  in
  let inv1_hints : Induction.hint list =
    [
      {
        hint_action = "kexch";
        hint_instances =
          (fun s ~inv_args:_ ~act_args ->
            match act_args with
            | [ _a; _se; _m1; m2; m3 ] ->
              [
                ct_gleans_sig.Induction.inv_body s [ m3 ];
                sig_genuine.Induction.inv_body s
                  [ D.src m2; D.cert_key (D.msg_cert m3) ];
              ]
            | _ -> []);
      };
      {
        hint_action = "fakeKx1";
        hint_instances =
          (fun s ~inv_args:_ ~act_args ->
            match act_args with
            | [ _a; _b; e ] -> [ cepms_key.Induction.inv_body s [ e ] ]
            | _ -> []);
      };
    ]
  in

  (* ================= the inductive hearts of inv2 / inv3 ================= *)
  let esfin_params =
    [
      "A", D.prin; "B", D.prin; "SE", D.secret; "R1", D.rand; "R2", D.rand;
      "I", D.sid; "L", D.list_of_choices; "C", D.choice;
    ]
  in
  let esfin_genuine =
    inv "esfin-genuine" esfin_params (fun s args ->
        match args with
        | [ a; b; se; r1; r2; i; l; c ] ->
          let e = esfin_of a b se r1 r2 i l c in
          Term.implies
            (Term.and_ (not_intruder a) (D.in_cesfin e (nw s)))
            (D.msg_in (D.sf_ ~crt:b ~src:b ~dst:a e) (nw s))
        | _ -> assert false)
  in
  let pms_hint action =
    (* fakeSf2 / fakeSf22 construct Finished ciphertexts from a known pms:
       inv1 rules the honest pms out. *)
    {
      Induction.hint_action = action;
      hint_instances =
        (fun s ~inv_args:_ ~act_args ->
          match List.rev act_args with
          | p :: _ -> [ inv1.Induction.inv_body s [ p ] ]
          | [] -> []);
    }
  in
  let esfin_genuine_hints = [ pms_hint "fakeSf2" ] in

  let esfin2_params =
    [
      "A", D.prin; "B", D.prin; "SE", D.secret; "R1", D.rand; "R2", D.rand;
      "I", D.sid; "C", D.choice;
    ]
  in
  let esfin2_genuine =
    inv "esfin2-genuine" esfin2_params (fun s args ->
        match args with
        | [ a; b; se; r1; r2; i; c ] ->
          let e = esfin2_of a b se r1 r2 i c in
          Term.implies
            (Term.and_ (not_intruder a) (D.in_cesfin2 e (nw s)))
            (D.msg_in (D.sf2_ ~crt:b ~src:b ~dst:a e) (nw s))
        | _ -> assert false)
  in
  let esfin2_genuine_hints = [ pms_hint "fakeSf22" ] in

  (* ================= server-history lemmas ================= *)
  let sf_history =
    inv "sf-history" esfin_params (fun s args ->
        match args with
        | [ a; b; se; r1; r2; i; l; c ] ->
          let e = esfin_of a b se r1 r2 i l c in
          Term.implies
            (Term.and_ (not_intruder b)
               (D.msg_in (D.sf_ ~crt:b ~src:b ~dst:a e) (nw s)))
            (Term.and_
               (D.msg_in (D.sh_ ~crt:b ~src:b ~dst:a r2 i c) (nw s))
               (D.msg_in (D.ct_ ~crt:b ~src:b ~dst:a (genuine_cert b)) (nw s)))
        | _ -> assert false)
  in
  let sf2_history =
    inv "sf2-history" esfin2_params (fun s args ->
        match args with
        | [ a; b; se; r1; r2; i; c ] ->
          let e = esfin2_of a b se r1 r2 i c in
          Term.implies
            (Term.and_ (not_intruder b)
               (D.msg_in (D.sf2_ ~crt:b ~src:b ~dst:a e) (nw s)))
            (D.msg_in (D.sh2_ ~crt:b ~src:b ~dst:a r2 i c) (nw s))
        | _ -> assert false)
  in

  (* ================= freshness bookkeeping ================= *)
  let honest m = Term.not_ (Term.eq (D.crt m) D.intruder) in
  let ch_rand_used =
    inv "ch-rand-used"
      [ "M", D.msg ]
      (fun s args ->
        match args with
        | [ m ] ->
          Term.implies
            (Term.conj [ D.msg_in m (nw s); D.is_ch m; honest m ])
            (D.rand_in (D.msg_rand m) (ur s))
        | _ -> assert false)
  in
  let sh_rand_used =
    inv "sh-rand-used"
      [ "M", D.msg ]
      (fun s args ->
        match args with
        | [ m ] ->
          Term.implies
            (Term.conj [ D.msg_in m (nw s); D.is_sh m; honest m ])
            (D.rand_in (D.msg_rand m) (ur s))
        | _ -> assert false)
  in
  let kx_secret_used =
    inv "kx-secret-used"
      [ "M", D.msg ]
      (fun s args ->
        match args with
        | [ m ] ->
          Term.implies
            (Term.conj [ D.msg_in m (nw s); D.is_kx m; honest m ])
            (D.secret_in (D.pms_secret (D.epms_pms (D.msg_epms m))) (us s))
        | _ -> assert false)
  in
  let sh_sid_used =
    inv "sh-sid-used"
      [ "M", D.msg ]
      (fun s args ->
        match args with
        | [ m ] ->
          Term.implies
            (Term.conj [ D.msg_in m (nw s); D.is_sh m; honest m ])
            (D.sid_in (D.msg_sid m) (ui s))
        | _ -> assert false)
  in

  (* ================= the main authenticity properties ================= *)
  let inv2_params = esfin_params @ [ "B1", D.prin ] in
  let inv2 =
    inv "inv2" inv2_params (fun s args ->
        match args with
        | [ a; b; se; r1; r2; i; l; c; b1 ] ->
          let e = esfin_of a b se r1 r2 i l c in
          Term.implies
            (Term.and_ (not_intruder a)
               (D.msg_in (D.sf_ ~crt:b1 ~src:b ~dst:a e) (nw s)))
            (D.msg_in (D.sf_ ~crt:b ~src:b ~dst:a e) (nw s))
        | _ -> assert false)
  in
  let inv2_hyps s args =
    match args with
    | [ a; b; se; r1; r2; i; l; c; b1 ] ->
      let e = esfin_of a b se r1 r2 i l c in
      [
        sf_gleans_esfin.Induction.inv_body s [ D.sf_ ~crt:b1 ~src:b ~dst:a e ];
        esfin_genuine.Induction.inv_body s [ a; b; se; r1; r2; i; l; c ];
      ]
    | _ -> []
  in

  let inv3_params = esfin2_params @ [ "B1", D.prin ] in
  let inv3 =
    inv "inv3" inv3_params (fun s args ->
        match args with
        | [ a; b; se; r1; r2; i; c; b1 ] ->
          let e = esfin2_of a b se r1 r2 i c in
          Term.implies
            (Term.and_ (not_intruder a)
               (D.msg_in (D.sf2_ ~crt:b1 ~src:b ~dst:a e) (nw s)))
            (D.msg_in (D.sf2_ ~crt:b ~src:b ~dst:a e) (nw s))
        | _ -> assert false)
  in
  let inv3_hyps s args =
    match args with
    | [ a; b; se; r1; r2; i; c; b1 ] ->
      let e = esfin2_of a b se r1 r2 i c in
      [
        sf2_gleans_esfin2.Induction.inv_body s [ D.sf2_ ~crt:b1 ~src:b ~dst:a e ];
        esfin2_genuine.Induction.inv_body s [ a; b; se; r1; r2; i; c ];
      ]
    | _ -> []
  in

  let inv4_params =
    esfin_params @ [ "B1", D.prin; "B2", D.prin; "B3", D.prin; "K", D.pub_key ]
  in
  let inv4 =
    inv "inv4" inv4_params (fun s args ->
        match args with
        | [ a; b; se; r1; r2; i; l; c; b1; b2; b3; k ] ->
          let e = esfin_of a b se r1 r2 i l c in
          let recv_cert = D.cert_of b k (D.sig_of ~signer:D.ca ~subject:b k) in
          Term.implies
            (Term.conj
               [
                 not_intruder a;
                 not_intruder b;
                 D.msg_in (D.sf_ ~crt:b3 ~src:b ~dst:a e) (nw s);
                 D.msg_in (D.sh_ ~crt:b1 ~src:b ~dst:a r2 i c) (nw s);
                 D.msg_in (D.ct_ ~crt:b2 ~src:b ~dst:a recv_cert) (nw s);
               ])
            (Term.and_
               (D.msg_in (D.sh_ ~crt:b ~src:b ~dst:a r2 i c) (nw s))
               (D.msg_in (D.ct_ ~crt:b ~src:b ~dst:a recv_cert) (nw s)))
        | _ -> assert false)
  in
  let inv4_hyps s args =
    match args with
    | [ a; b; se; r1; r2; i; l; c; b1; b2; b3; k ] ->
      ignore b1;
      let recv_cert = D.cert_of b k (D.sig_of ~signer:D.ca ~subject:b k) in
      inv2_hyps s [ a; b; se; r1; r2; i; l; c; b3 ]
      @ [
          inv2.Induction.inv_body s [ a; b; se; r1; r2; i; l; c; b3 ];
          sf_history.Induction.inv_body s [ a; b; se; r1; r2; i; l; c ];
          ct_gleans_sig.Induction.inv_body s
            [ D.ct_ ~crt:b2 ~src:b ~dst:a recv_cert ];
          sig_genuine.Induction.inv_body s [ b; k ];
        ]
    | _ -> []
  in

  let inv5_params = esfin2_params @ [ "B1", D.prin; "B3", D.prin ] in
  let inv5 =
    inv "inv5" inv5_params (fun s args ->
        match args with
        | [ a; b; se; r1; r2; i; c; b1; b3 ] ->
          let e = esfin2_of a b se r1 r2 i c in
          Term.implies
            (Term.conj
               [
                 not_intruder a;
                 not_intruder b;
                 D.msg_in (D.sf2_ ~crt:b3 ~src:b ~dst:a e) (nw s);
                 D.msg_in (D.sh2_ ~crt:b1 ~src:b ~dst:a r2 i c) (nw s);
               ])
            (D.msg_in (D.sh2_ ~crt:b ~src:b ~dst:a r2 i c) (nw s))
        | _ -> assert false)
  in
  let inv5_hyps s args =
    match args with
    | [ a; b; se; r1; r2; i; c; _b1; b3 ] ->
      inv3_hyps s [ a; b; se; r1; r2; i; c; b3 ]
      @ [
          inv3.Induction.inv_body s [ a; b; se; r1; r2; i; c; b3 ];
          sf2_history.Induction.inv_body s [ a; b; se; r1; r2; i; c ];
        ]
    | _ -> []
  in

  (* ================= the failing properties (Section 5.3) ================= *)
  let ecfin_of a b se_pms r1 r2 i l c =
    D.ecfin_ (D.hkey_ a se_pms r1 r2) (D.cfin_ [ a; b; i; l; c; r1; r2; se_pms ])
  in
  let prop2' =
    inv "prop2'"
      [
        "A", D.prin; "B", D.prin; "PMS", D.pms; "R1", D.rand; "R2", D.rand;
        "I", D.sid; "L", D.list_of_choices; "C", D.choice; "A1", D.prin;
      ]
      (fun s args ->
        match args with
        | [ a; b; p; r1; r2; i; l; c; a1 ] ->
          let e = ecfin_of a b p r1 r2 i l c in
          Term.implies
            (Term.and_ (not_intruder b)
               (D.msg_in (D.cf_ ~crt:a1 ~src:a ~dst:b e) (nw s)))
            (D.msg_in (D.cf_ ~crt:a ~src:a ~dst:b e) (nw s))
        | _ -> assert false)
  in
  let prop3' =
    inv "prop3'"
      [
        "A", D.prin; "B", D.prin; "PMS", D.pms; "R1", D.rand; "R2", D.rand;
        "I", D.sid; "C", D.choice; "A1", D.prin;
      ]
      (fun s args ->
        match args with
        | [ a; b; p; r1; r2; i; c; a1 ] ->
          let e =
            D.ecfin2_ (D.hkey_ a p r1 r2) (D.cfin2_ [ a; b; i; c; r1; r2; p ])
          in
          Term.implies
            (Term.and_ (not_intruder b)
               (D.msg_in (D.cf2_ ~crt:a1 ~src:a ~dst:b e) (nw s)))
            (D.msg_in (D.cf2_ ~crt:a ~src:a ~dst:b e) (nw s))
        | _ -> assert false)
  in

  (* Extensions beyond the paper's 18: well-formedness of honestly created
     key-exchange and Finished messages (the kind of sanity invariant the
     OTS method makes cheap once the scaffolding exists). *)
  let kx_own_pms =
    inv "kx-own-pms"
      [ "M", D.msg ]
      (fun s args ->
        match args with
        | [ m ] ->
          Term.implies
            (Term.conj [ D.msg_in m (nw s); D.is_kx m; honest m ])
            (Term.and_
               (Term.eq (D.pms_client (D.epms_pms (D.msg_epms m))) (D.crt m))
               (Term.eq (D.pms_server (D.epms_pms (D.msg_epms m))) (D.dst m)))
        | _ -> assert false)
  in
  let cf_own_key =
    inv "cf-own-key"
      [ "M", D.msg ]
      (fun s args ->
        match args with
        | [ m ] ->
          let key = D.ecfin_key (D.msg_ecfin m) in
          Term.implies
            (Term.conj [ D.msg_in m (nw s); D.is_cf m; honest m ])
            (Term.and_
               (Term.eq (D.hkey_prin key) (D.crt m))
               (Term.eq (D.pms_client (D.hkey_pms key)) (D.crt m)))
        | _ -> assert false)
  in
  let ch2_rand_used =
    inv "ch2-rand-used"
      [ "M", D.msg ]
      (fun s args ->
        match args with
        | [ m ] ->
          Term.implies
            (Term.conj [ D.msg_in m (nw s); D.is_ch2 m; honest m ])
            (D.rand_in (D.msg_rand m) (ur s))
        | _ -> assert false)
  in
  let sh2_rand_used =
    inv "sh2-rand-used"
      [ "M", D.msg ]
      (fun s args ->
        match args with
        | [ m ] ->
          Term.implies
            (Term.conj [ D.msg_in m (nw s); D.is_sh2 m; honest m ])
            (D.rand_in (D.msg_rand m) (ur s))
        | _ -> assert false)
  in
  let campaign =
    [
      Inductive (sig_genuine, []);
      Inductive (ct_gleans_sig, []);
      Inductive (sf_gleans_esfin, []);
      Inductive (sf2_gleans_esfin2, []);
      Inductive (cepms_key, []);
      Inductive (inv1, inv1_hints);
      Inductive (esfin_genuine, esfin_genuine_hints);
      Inductive (esfin2_genuine, esfin2_genuine_hints);
      Inductive (sf_history, []);
      Inductive (sf2_history, []);
      Inductive (ch_rand_used, []);
      Inductive (sh_rand_used, []);
      Inductive (kx_secret_used, []);
      Inductive (sh_sid_used, []);
      Derived (inv2, inv2_hyps);
      Derived (inv3, inv3_hyps);
      Derived (inv4, inv4_hyps);
      Derived (inv5, inv5_hyps);
    ]
  in
  let extensions =
    [
      Inductive (kx_own_pms, []);
      Inductive (cf_own_key, []);
      Inductive (ch2_rand_used, []);
      Inductive (sh2_rand_used, []);
    ]
  in
  (campaign, extensions), Inductive (prop2', []), Inductive (prop3', [])

let original_entry = lazy (build Tls.Model.Original)
let variant_entry = lazy (build Tls.Model.Cf2First)

let get = function
  | Tls.Model.Original -> Lazy.force original_entry
  | Tls.Model.Cf2First -> Lazy.force variant_entry

let all style =
  let (campaign, _), _, _ = get style in
  campaign

let extensions style =
  let (_, ext), _, _ = get style in
  ext

let find style name =
  List.find
    (fun p -> String.equal (name_of p) name)
    (all style @ extensions style)

let prop2' style =
  let _, p, _ = get style in
  p

let prop3' style =
  let _, _, p = get style in
  p

let run ?config ?pool env proof =
  (* Top of the span hierarchy: invariant → case → red → rule. *)
  Telemetry.Probe.with_span ~always:true ~cat:"invariant"
    ("invariant:" ^ name_of proof)
  @@ fun () ->
  match proof with
  | Inductive (inv, hints) ->
    Induction.prove_invariant ?config ?pool env ~hints inv
  | Derived (inv, hyps) -> Induction.prove_derived ?config env ~hyps inv

(* The campaign fans out at both levels when a pool is given: one task per
   invariant, and each invariant's cases are themselves pool tasks (nested
   submission).  Every case runs in a branched environment whose results do
   not depend on scheduling, and [parallel_map] keys results by submission
   index — so the report is identical to the sequential run. *)
let campaign_env ?config ?pool env proofs =
  match pool with
  | None -> List.map (run ?config env) proofs
  | Some p ->
    Sched.Pool.parallel_map p (fun proof -> run ?config ~pool:p env proof) proofs

let campaign ?config ?pool style =
  campaign_env ?config ?pool (Tls.Model.env style) (all style)
