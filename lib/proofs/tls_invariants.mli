(** The verification campaign of Section 5: eighteen invariants.

    Five main properties (Section 5.1):
    - [inv1] — pre-master secrets cannot be leaked;
    - [inv2] — a ServerFinished accepted by a trustable client really
      originates from the server;
    - [inv3] — likewise for ServerFinished2 (abbreviated handshake);
    - [inv4] — the ServerHello and Certificate behind an accepted full
      handshake really originate from the server;
    - [inv5] — likewise for ServerHello2.

    Thirteen auxiliary invariants strengthen the induction (the paper
    reports 18 invariants total, 13 of them supporting):
    - [sig-genuine] — every gleanable CA signature certifies the subject's
      own public key (signatures cannot be forged);
    - [ct-gleans-sig], [sf-gleans-esfin], [sf2-gleans-esfin2] — coherence
      between messages in the network and the gleaning collections;
    - [cepms-key] — a gleanable encrypted pre-master secret under the
      intruder's key has a gleanable payload;
    - [esfin-genuine], [esfin2-genuine] — the inductive hearts of inv2/inv3:
      a well-formed Finished ciphertext for an honest client's pre-master
      secret can only have been produced by the server;
    - [sf-history], [sf2-history] — a genuine ServerFinished(2) presupposes
      the server's own Hello (and Certificate) messages;
    - [ch-rand-used], [sh-rand-used], [kx-secret-used], [sh-sid-used] —
      freshness bookkeeping: honestly created messages only use values
      recorded in [ur]/[ui]/[us].

    [inv2]–[inv5] are proved by case analysis from the others (the paper:
    “Five of the properties … have been proved by case analyses with other
    properties”); the rest by simultaneous induction with the listed
    strengthening hints. *)

open Kernel
open Core

(** One entry of the campaign: an invariant together with how to prove it. *)
type proof =
  | Inductive of Induction.invariant * Induction.hint list
  | Derived of Induction.invariant * (Term.t -> Term.t list -> Term.t list)
      (** hypothesis instances from (state, parameter constants) *)

val name_of : proof -> string

(** [all style] is the campaign for the given protocol style, in dependency
    order (auxiliary lemmas first). *)
val all : Tls.Model.style -> proof list

(** [main_properties] / [auxiliary] — the names partitioning {!all}. *)
val main_properties : string list

val auxiliary : string list

(** [extensions style] — well-formedness invariants beyond the paper's
    eighteen ([kx-own-pms], [cf-own-key], [ch2-rand-used],
    [sh2-rand-used]): honest principals' key-exchange and Finished messages
    carry their own identities and pre-master secrets, and abbreviated-
    handshake hellos only use recorded randoms. *)
val extensions : Tls.Model.style -> proof list

(** [find style name] retrieves one proof entry.
    @raise Not_found on unknown names. *)
val find : Tls.Model.style -> string -> proof

(** [run ?config ?pool env proof] executes one proof entry; with [pool],
    an inductive proof's cases run in parallel on its domains. *)
val run :
  ?config:Prover.config ->
  ?pool:Sched.Pool.t ->
  Induction.env ->
  proof ->
  Induction.result

(** [campaign ?config ?pool style] runs everything and returns the results
    in order.  With [pool], invariants fan out across the pool and each
    invariant's induction cases fan out further (nested submission); the
    results — statistics included — are identical to the sequential run
    whatever the pool size. *)
val campaign :
  ?config:Prover.config ->
  ?pool:Sched.Pool.t ->
  Tls.Model.style ->
  Induction.result list

(** [campaign_env ?config ?pool env proofs] — the re-entrant core of
    {!campaign}: runs [proofs] against a caller-supplied (typically
    long-lived) environment instead of building a fresh one, so a resident
    process can serve campaign after campaign over the same interned term
    universe and warm normal-form memos.  Each case still runs in its own
    branched child of [env] (fresh-constant numbering and memo tables are
    case-local), so repeated and concurrent calls sharing [env] are safe
    and return byte-identical results. *)
val campaign_env :
  ?config:Prover.config ->
  ?pool:Sched.Pool.t ->
  Induction.env ->
  proof list ->
  Induction.result list

(** {1 The failing properties (Section 5.3)}

    The servers' counterparts of inv2/inv3.  [run] on these returns a
    refutation; the concrete traces are in {!Tls.Scenario}. *)

val prop2' : Tls.Model.style -> proof
val prop3' : Tls.Model.style -> proof
