(** Concrete finite-scenario semantics of the abstract handshake, for the
    explicit-state model checker (the Murφ-style baseline of Section 6).

    States carry the monotone network (a set of ground message terms from
    {!Data}), the used-value sets, the principals' session tables, and the
    intruder's knowledge is recomputed as the Dolev-Yao closure of what is
    gleanable from the network.  Transitions enumerate the same 12 + 15
    rules as the symbolic model ({!Model}), instantiated over a finite
    scenario. *)

open Kernel

(** A finite scenario: the value pools transitions may draw from.
    Principals always additionally include the intruder; [ca] never acts. *)
type scenario = {
  clients : Term.t list;
  servers : Term.t list;
  rands : Term.t list;  (** honest principals take fresh ones, the intruder any *)
  sids : Term.t list;
  suites : Term.t list;
  lists : Term.t list;
  secrets : Term.t list;  (** honest clients' pre-master-secret seeds *)
  intruder_secrets : Term.t list;
  intruder_rands : Term.t list;
      (** rands used in the intruder's faked clear messages (one is enough:
          distinct guessable values only add symmetric states) *)
  oops : bool;
      (** enable Paulson's Oops rule: the Finished-protection keys of
          established sessions may leak to the intruder.  Paulson's TLS
          analysis (discussed in the paper's Section 6) showed resumption
          stays safe under such leaks; see the [oops] tests/bench. *)
  style : Model.style;
}

(** [default_scenario ()] — Alice vs Bob with the cast of {!Scenario}:
    one honest client, one honest server, enough fresh values for one full
    handshake plus one resumption, and the intruder. *)
val default_scenario : unit -> scenario

type state

val initial : scenario -> state

(** [network st] / [knowledge st] expose the state for property writing. *)
val network : state -> Term.t list

val knows : state -> Term.t -> bool

(** [derivable st t] — can the intruder synthesize [t]? *)
val derivable : state -> Term.t -> bool

(** [session st ~owner ~peer ~sid] is the stored session quadruple
    [(suite, rand1, rand2, pms)] if established. *)
val session :
  state -> owner:Term.t -> peer:Term.t -> sid:Term.t -> (Term.t * Term.t * Term.t * Term.t) option

(** An action label: transition name plus a rendering of its arguments. *)
type label = { rule : string; info : string }

val pp_label : Format.formatter -> label -> unit

(** [system scenario] packages everything for {!Mc.bfs}. *)
val system : scenario -> (state, label) Mc.system

(** {1 The paper's properties as state predicates} *)

(** [prop_pms_secrecy st]: no pre-master secret of two honest principals is
    derivable by the intruder (property 1). *)
val prop_pms_secrecy : scenario -> state -> bool

(** [prop_sf_authentic st]: every ServerFinished that a trustable client
    would accept originates from the server (property 2; [prop_sf2_authentic]
    is property 3). *)
val prop_sf_authentic : state -> bool

val prop_sf2_authentic : state -> bool

(** Properties 2' and 3' — the client-authentication mirror images; the
    checker finds the paper's four-message counterexamples. *)
val prop_cf_authentic : state -> bool

val prop_cf2_authentic : state -> bool

(** [handshake_complete scenario st]: some honest client and server both
    established the same session (used with {!Mc.reachable} as a sanity
    witness that the scenario can actually finish a handshake). *)
val handshake_complete : scenario -> state -> bool

(** [resumption_complete scenario st]: a session was established and later
    refreshed (both Finished2 messages exchanged). *)
val resumption_complete : scenario -> state -> bool

(** {1 State-space reduction}

    The reduction is justified statically, on the generated equational
    theory of the symbolic model ({!Model.spec}): the concrete fake rules
    carry the same names as the symbolic intruder actions, and are
    admitted as an ample/flooding set only when {!Analysis.Indep} proves
    them independent of every action; states are canonized over the
    honest-rand permutation orbit found by {!Analysis.Symmetry}.  Both
    analyses are memoized per style. *)

(** [reduction ?por ?symmetry scenario] — a reduction for
    [Mc.bfs ~reduction]/[Mc.par_bfs ~reduction] over {!system} of the
    same scenario.  [por:false] disables the ample set, [symmetry:false]
    the canonization (both default [true]).  Scenarios with [oops] keep
    the full interleaving of the Oops rule (it has no symbolic
    counterpart, so no certified commutations). *)
val reduction :
  ?por:bool -> ?symmetry:bool -> scenario -> (state, label) Mc.reduction

(** The memoized independence analysis over the style's generated theory
    ([None] when the spec has no recognizable transitions — does not
    happen for these models). *)
val independence : Model.style -> Analysis.Indep.result option

(** The memoized symmetry analysis over the style's generated theory. *)
val symmetries : Model.style -> Analysis.Symmetry.result
