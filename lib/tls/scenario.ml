open Kernel
open Core
module D = Data

type cast = {
  alice : Term.t;
  bob : Term.t;
  ra : Term.t;
  rb : Term.t;
  rc : Term.t;
  rd : Term.t;
  re : Term.t;
  rf : Term.t;
  ri : Term.t;
  sid1 : Term.t;
  suite1 : Term.t;
  suite2 : Term.t;
  clist : Term.t;
  sec1 : Term.t;
  sec2 : Term.t;
}

let cast =
  let two = Cafeobj.Datatype.distinct_constants D.spec in
  let alice, bob =
    match two ~sort:D.prin [ "alice"; "bob" ] with
    | [ a; b ] -> a, b
    | _ -> assert false
  in
  let rands = two ~sort:D.rand [ "ra"; "rb"; "rc"; "rd"; "re"; "rf"; "ri" ] in
  let ra, rb, rc, rd, re, rf, ri =
    match rands with
    | [ r1; r2; r3; r4; r5; r6; r7 ] -> r1, r2, r3, r4, r5, r6, r7
    | _ -> assert false
  in
  let sid1 =
    match two ~sort:D.sid [ "sid1" ] with [ i ] -> i | _ -> assert false
  in
  let suite1, suite2 =
    match two ~sort:D.choice [ "suite1"; "suite2" ] with
    | [ c1; c2 ] -> c1, c2
    | _ -> assert false
  in
  let sec1, sec2 =
    match two ~sort:D.secret [ "sec1"; "sec2" ] with
    | [ s1; s2 ] -> s1, s2
    | _ -> assert false
  in
  let clist = D.list_of [ suite1; suite2 ] in
  {
    alice; bob; ra; rb; rc; rd; re; rf; ri; sid1; suite1; suite2; clist; sec1;
    sec2;
  }

type step = { label : string; state : Term.t }

type run = {
  run_name : string;
  ots : Ots.t;
  sys : Rewrite.system;
  steps : step list;
}

let final run =
  match List.rev run.steps with
  | last :: _ -> last.state
  | [] -> invalid_arg "Scenario.final: empty run"

let eval run t = Rewrite.normalize run.sys t
let holds run t = Term.equal (eval run t) Term.tt

(* A step is effective iff the action's condition holds in the state it was
   applied to.  Each step's state term is [act(s, args…)], so both the
   action and its arguments can be read back from it. *)
let step_fired run { label = _; state } =
  match Term.view state with
  | Term.App (op, s :: args) ->
    let a = Ots.action run.ots op.Signature.name in
    let sub =
      Subst.of_list
        (({ Term.v_name = "S"; v_sort = run.ots.Ots.hidden }, s)
        :: List.map2
             (fun (n, srt) arg -> { Term.v_name = n; v_sort = srt }, arg)
             a.Ots.act_params args)
    in
    Term.equal (eval run (Subst.apply sub a.Ots.act_cond)) Term.tt
  | Term.App (_, []) | Term.Var _ -> true

let effective run =
  List.filter_map
    (fun step -> if step_fired run step then None else Some step.label)
    run.steps

(* ------------------------------------------------------------------ *)
(* Run construction *)

let build ~style ~name actions =
  let ots = match style with
    | Model.Original -> Model.ots ()
    | Model.Cf2First -> Model.variant_ots ()
  in
  let sys = Cafeobj.Spec.system (Model.spec style) in
  let init = Ots.init_state ots in
  let steps =
    List.rev
      (fst
         (List.fold_left
            (fun (acc, state) (label, act_name, args) ->
              let state' = Ots.apply ots act_name state args in
              { label; state = state' } :: acc, state')
            ([], init) actions))
  in
  { run_name = name; ots; sys; steps }

let c = cast

(* The honest messages of the Figure-2 run. *)
let pms1 = D.pms_ ~client:c.alice ~server:c.bob c.sec1
let ch_msg = D.ch_ ~crt:c.alice ~src:c.alice ~dst:c.bob c.ra c.clist
let sh_msg = D.sh_ ~crt:c.bob ~src:c.bob ~dst:c.alice c.rb c.sid1 c.suite1

let bob_cert =
  D.cert_of c.bob (D.pk_ c.bob) (D.sig_of ~signer:D.ca ~subject:c.bob (D.pk_ c.bob))

let ct_msg = D.ct_ ~crt:c.bob ~src:c.bob ~dst:c.alice bob_cert

let kx_msg =
  D.kx_ ~crt:c.alice ~src:c.alice ~dst:c.bob (D.epms_ (D.pk_ c.bob) pms1)

let cfin1 =
  D.cfin_ [ c.alice; c.bob; c.sid1; c.clist; c.suite1; c.ra; c.rb; pms1 ]

let cf_msg =
  D.cf_ ~crt:c.alice ~src:c.alice ~dst:c.bob
    (D.ecfin_ (D.hkey_ c.alice pms1 c.ra c.rb) cfin1)

let sfin1 =
  D.sfin_ [ c.alice; c.bob; c.sid1; c.clist; c.suite1; c.ra; c.rb; pms1 ]

let sf_msg =
  D.sf_ ~crt:c.bob ~src:c.bob ~dst:c.alice
    (D.esfin_ (D.hkey_ c.bob pms1 c.ra c.rb) sfin1)

let ch2_msg = D.ch2_ ~crt:c.alice ~src:c.alice ~dst:c.bob c.rc c.sid1
let sh2_msg = D.sh2_ ~crt:c.bob ~src:c.bob ~dst:c.alice c.rd c.sid1 c.suite1

let sf2_msg =
  D.sf2_ ~crt:c.bob ~src:c.bob ~dst:c.alice
    (D.esfin2_
       (D.hkey_ c.bob pms1 c.rc c.rd)
       (D.sfin2_ [ c.alice; c.bob; c.sid1; c.suite1; c.rc; c.rd; pms1 ]))

let cf2_msg =
  D.cf2_ ~crt:c.alice ~src:c.alice ~dst:c.bob
    (D.ecfin2_
       (D.hkey_ c.alice pms1 c.rc c.rd)
       (D.cfin2_ [ c.alice; c.bob; c.sid1; c.suite1; c.rc; c.rd; pms1 ]))

type honest_messages = {
  ch_msg : Term.t;
  sh_msg : Term.t;
  ct_msg : Term.t;
  kx_msg : Term.t;
  cf_msg : Term.t;
  sf_msg : Term.t;
  ch2_msg : Term.t;
  sh2_msg : Term.t;
  sf2_msg : Term.t;
  cf2_msg : Term.t;
}

let honest_messages =
  {
    ch_msg; sh_msg; ct_msg; kx_msg; cf_msg; sf_msg; ch2_msg; sh2_msg; sf2_msg;
    cf2_msg;
  }

let full_handshake_actions =
  [
    "ClientHello", "chello", [ c.alice; c.bob; c.ra; c.clist ];
    "ServerHello", "shello", [ c.bob; c.rb; c.sid1; c.suite1; ch_msg ];
    "Certificate", "cert", [ c.bob; ch_msg; sh_msg ];
    "ClientKeyExchange", "kexch", [ c.alice; c.sec1; ch_msg; sh_msg; ct_msg ];
    "ClientFinished", "cfin", [ c.alice; c.sec1; ch_msg; sh_msg; kx_msg ];
    "ServerFinished", "sfin", [ c.bob; ch_msg; sh_msg; ct_msg; kx_msg; cf_msg ];
    "complete", "compl", [ c.alice; c.sec1; ch_msg; sh_msg; kx_msg; sf_msg ];
  ]

let resumption_actions style =
  let head =
    [
      "ClientHello2", "chello2", [ c.alice; c.bob; c.rc; c.sid1 ];
      "ServerHello2", "shello2", [ c.bob; c.rd; ch2_msg ];
    ]
  in
  match style with
  | Model.Original ->
    head
    @ [
        "ServerFinished2", "sfin2", [ c.bob; ch2_msg; sh2_msg ];
        "ClientFinished2", "cfin2", [ c.alice; ch2_msg; sh2_msg; sf2_msg ];
        "complete2", "compl2", [ c.bob; ch2_msg; sh2_msg; cf2_msg ];
      ]
  | Model.Cf2First ->
    head
    @ [
        "ClientFinished2", "cfin2", [ c.alice; ch2_msg; sh2_msg ];
        "ServerFinished2", "sfin2", [ c.bob; ch2_msg; sh2_msg; cf2_msg ];
        "complete2", "compl2", [ c.alice; ch2_msg; sh2_msg; sf2_msg ];
      ]

let full_handshake ?(style = Model.Original) () =
  build ~style ~name:"full-handshake" full_handshake_actions

let resumption ?(style = Model.Original) () =
  build ~style ~name:"resumption"
    (full_handshake_actions @ resumption_actions style)

(* A second abbreviated handshake on the same session id: the paper's
   "duplication" of a current session.  Only the Figure-2 order is built
   concretely (the variant order mirrors it). *)
let ch2'_msg = D.ch2_ ~crt:c.alice ~src:c.alice ~dst:c.bob c.re c.sid1
let sh2'_msg = D.sh2_ ~crt:c.bob ~src:c.bob ~dst:c.alice c.rf c.sid1 c.suite1

let sf2'_msg =
  D.sf2_ ~crt:c.bob ~src:c.bob ~dst:c.alice
    (D.esfin2_
       (D.hkey_ c.bob pms1 c.re c.rf)
       (D.sfin2_ [ c.alice; c.bob; c.sid1; c.suite1; c.re; c.rf; pms1 ]))

let cf2'_msg =
  D.cf2_ ~crt:c.alice ~src:c.alice ~dst:c.bob
    (D.ecfin2_
       (D.hkey_ c.alice pms1 c.re c.rf)
       (D.cfin2_ [ c.alice; c.bob; c.sid1; c.suite1; c.re; c.rf; pms1 ]))

let duplication () =
  build ~style:Model.Original ~name:"duplication"
    (full_handshake_actions
    @ resumption_actions Model.Original
    @ [
        "ClientHello2 (dup)", "chello2", [ c.alice; c.bob; c.re; c.sid1 ];
        "ServerHello2 (dup)", "shello2", [ c.bob; c.rf; ch2'_msg ];
        "ServerFinished2 (dup)", "sfin2", [ c.bob; ch2'_msg; sh2'_msg ];
        "ClientFinished2 (dup)", "cfin2", [ c.alice; ch2'_msg; sh2'_msg; sf2'_msg ];
        "complete2 (dup)", "compl2", [ c.bob; ch2'_msg; sh2'_msg; cf2'_msg ];
      ])

(* ------------------------------------------------------------------ *)
(* The Section 5.3 counterexamples.  The paper's malicious client a' is the
   intruder; pms' = pms(intruder, bob, sec2) is available to it from the
   start (it generated it). *)

let pms' = D.pms_ ~client:D.intruder ~server:c.bob c.sec2
let atk_ch = D.ch_ ~crt:D.intruder ~src:c.alice ~dst:c.bob c.ri c.clist
let atk_sh = D.sh_ ~crt:c.bob ~src:c.bob ~dst:c.alice c.rb c.sid1 c.suite1
let atk_ct = D.ct_ ~crt:c.bob ~src:c.bob ~dst:c.alice bob_cert

let atk_kx =
  D.kx_ ~crt:D.intruder ~src:c.alice ~dst:c.bob (D.epms_ (D.pk_ c.bob) pms')

let atk_cf =
  D.cf_ ~crt:D.intruder ~src:c.alice ~dst:c.bob
    (D.ecfin_
       (D.hkey_ c.alice pms' c.ri c.rb)
       (D.cfin_ [ c.alice; c.bob; c.sid1; c.clist; c.suite1; c.ri; c.rb; pms' ]))

let attack_2prime_actions =
  [
    "ch (faked as alice)", "fakeCh", [ c.alice; c.bob; c.ri; c.clist ];
    "ServerHello", "shello", [ c.bob; c.rb; c.sid1; c.suite1; atk_ch ];
    "Certificate", "cert", [ c.bob; atk_ch; atk_sh ];
    "kx (intruder pms)", "fakeKx2", [ c.alice; c.bob; D.pk_ c.bob; pms' ];
    "cf (faked as alice)", "fakeCf2",
    [ c.alice; c.bob; c.sid1; c.clist; c.suite1; c.ri; c.rb; pms' ];
    "ServerFinished (bob accepts)", "sfin",
    [ c.bob; atk_ch; atk_sh; atk_ct; atk_kx; atk_cf ];
  ]

let attack_2prime () =
  build ~style:Model.Original ~name:"attack-2prime" attack_2prime_actions

let atk_ch2 = D.ch2_ ~crt:D.intruder ~src:c.alice ~dst:c.bob c.rc c.sid1
let atk_sh2 = D.sh2_ ~crt:c.bob ~src:c.bob ~dst:c.alice c.rd c.sid1 c.suite1

let atk_cf2 =
  D.cf2_ ~crt:D.intruder ~src:c.alice ~dst:c.bob
    (D.ecfin2_
       (D.hkey_ c.alice pms' c.rc c.rd)
       (D.cfin2_ [ c.alice; c.bob; c.sid1; c.suite1; c.rc; c.rd; pms' ]))

let attack_3prime () =
  build ~style:Model.Original ~name:"attack-3prime"
    (attack_2prime_actions
    @ [
        "ch2 (faked as alice)", "fakeCh2", [ c.alice; c.bob; c.rc; c.sid1 ];
        "ServerHello2", "shello2", [ c.bob; c.rd; atk_ch2 ];
        "ServerFinished2", "sfin2", [ c.bob; atk_ch2; atk_sh2 ];
        "cf2 (faked as alice)", "fakeCf22",
        [ c.alice; c.bob; c.sid1; c.suite1; c.rc; c.rd; pms' ];
        "complete2 (bob accepts)", "compl2", [ c.bob; atk_ch2; atk_sh2; atk_cf2 ];
      ])
