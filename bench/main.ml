(* Benchmark harness: regenerates every evaluation artifact of the paper
   (experiments E1-E10 of DESIGN.md; EXPERIMENTS.md records the
   paper-vs-measured comparison), then times the core operations with
   Bechamel.

   The paper's evaluation is qualitative — which properties hold, which
   fail and with what counterexamples, and how much effort verification
   takes.  Part 1 reproduces those outcomes, one line per experiment;
   part 2 measures the machinery that produced them (one Bechamel test per
   experiment). *)

open Kernel

let section name = Format.printf "@.== %s ==@." name

(* ------------------------------------------------------------------ *)
(* Machine-readable report (--json): one record per timed experiment.
   [rec_steps]/[rec_splits] are 0 where the notion does not apply (model
   checking counts states, not rewrite steps). *)

type record = {
  rec_name : string;
  rec_wall : float;  (* seconds *)
  rec_steps : int;  (* rewrite steps *)
  rec_splits : int;  (* prover case splits *)
}

let records : record list ref = ref []
let lint_ms = ref 0.0
let certify_ms = ref 0.0
let cert_bytes = ref 0
let red_untraced_ms = ref 0.0
let red_traced_ms = ref 0.0
let red_memo_ms = ref 0.0
let memo_hit_rate = ref 0.0
let intern_table_len = ref 0
let telemetry_overhead_pct = ref 0.0
let server_cold_ms = ref 0.0
let server_warm_ms = ref 0.0
let secrecy_ms = ref 0.0
let horn_clauses = ref 0
let saturation_rounds = ref 0
let server_dedup_hit_rate = ref 0.0
let mc_full_states = ref 0
let mc_por_states = ref 0
let mc_reduction_factor = ref 0.0
let indep_cert_ms = ref 0.0
let red_linear_ms = ref 0.0
let red_indexed_ms = ref 0.0
let index_candidate_ratio = ref 0.0

(* campaign-wide rule-selection work (the cost indexing targets): total
   root-match attempts and their self-time, under each engine *)
let match_tries_linear = ref 0
let match_tries_indexed = ref 0
let match_self_ms_linear = ref 0.0
let match_self_ms_indexed = ref 0.0

(* E21 — production observability: per-request cost of the full
   observability surface (structured log + flight recorder + HTTP
   exporter) on a warm server round-trip, the scrape itself, and the
   server's own latency distribution *)
let obs_overhead_pct = ref 0.0
let obs_overhead_ms = ref 0.0
let metrics_scrape_ms = ref 0.0
let server_p99_ms = ref 0.0

(* spans lost to the per-domain Probe buffer cap across the profiled
   campaign (E16) — nonzero means the hot-rules tables under-report *)
let spans_dropped = ref 0
let spans_dropped_dom : (int * int) list ref = ref []

(* per invariant, the top rules by self-time:
   (label, fires, self_ms, match_tries, match_self_ms) — [hot_rules] with
   the discrimination-tree index (the default engine), [hot_rules_linear]
   with the seed's linear scan (the E20 baseline) *)
let hot_rules : (string * (string * int * float * int * float) list) list ref =
  ref []

let hot_rules_linear :
    (string * (string * int * float * int * float) list) list ref =
  ref []

let record ?(steps = 0) ?(splits = 0) name wall =
  records :=
    { rec_name = name; rec_wall = wall; rec_steps = steps; rec_splits = splits }
    :: !records

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json file ~jobs =
  let oc = open_out file in
  Printf.fprintf oc
    "{\n  \"jobs\": %d,\n  \"lint_ms\": %.3f,\n  \"certify_ms\": %.3f,\n  \
     \"cert_bytes\": %d,\n  \"red_untraced_ms\": %.3f,\n  \"red_traced_ms\": \
     %.3f,\n  \"red_memo_ms\": %.3f,\n  \"memo_hit_rate\": %.4f,\n  \
     \"intern_table_len\": %d,\n  \"telemetry_overhead_pct\": %.2f,\n  \
     \"server_cold_ms\": %.3f,\n  \"server_warm_ms\": %.3f,\n  \
     \"server_dedup_hit_rate\": %.4f,\n  \"secrecy_ms\": %.3f,\n  \
     \"horn_clauses\": %d,\n  \"saturation_rounds\": %d,\n  \
     \"mc_full_states\": %d,\n  \"mc_por_states\": %d,\n  \
     \"mc_reduction_factor\": %.2f,\n  \"indep_cert_ms\": %.3f,\n  \
     \"red_linear_ms\": %.3f,\n  \"red_indexed_ms\": %.3f,\n  \
     \"index_candidate_ratio\": %.4f,\n  \
     \"match_tries_linear\": %d,\n  \"match_tries_indexed\": %d,\n  \
     \"match_self_ms_linear\": %.3f,\n  \"match_self_ms_indexed\": %.3f,\n  \
     \"obs_overhead_pct\": %.2f,\n  \"obs_overhead_ms\": %.3f,\n  \
     \"metrics_scrape_ms\": %.3f,\n  \
     \"server_p99_ms\": %.3f,\n  \"spans_dropped\": %d,\n  \
     \"spans_dropped_by_dom\": {%s},\n  \
     \"experiments\": ["
    jobs !lint_ms !certify_ms !cert_bytes !red_untraced_ms !red_traced_ms
    !red_memo_ms !memo_hit_rate !intern_table_len !telemetry_overhead_pct
    !server_cold_ms !server_warm_ms !server_dedup_hit_rate !secrecy_ms
    !horn_clauses !saturation_rounds !mc_full_states !mc_por_states
    !mc_reduction_factor !indep_cert_ms !red_linear_ms !red_indexed_ms
    !index_candidate_ratio !match_tries_linear !match_tries_indexed
    !match_self_ms_linear !match_self_ms_indexed !obs_overhead_pct
    !obs_overhead_ms !metrics_scrape_ms !server_p99_ms !spans_dropped
    (String.concat ", "
       (List.map
          (fun (dom, n) -> Printf.sprintf "\"dom%d\": %d" dom n)
          (List.sort compare !spans_dropped_dom)));
  List.iteri
    (fun i r ->
      Printf.fprintf oc "%s\n    { \"name\": \"%s\", \"wall_s\": %.6f, \"rewrite_steps\": %d, \"splits\": %d }"
        (if i = 0 then "" else ",")
        (json_escape r.rec_name) r.rec_wall r.rec_steps r.rec_splits)
    (List.rev !records);
  Printf.fprintf oc "\n  ],";
  let write_hot key table =
    Printf.fprintf oc "\n  \"%s\": [" key;
    List.iteri
      (fun i (inv, rules) ->
        Printf.fprintf oc "%s\n    { \"invariant\": \"%s\", \"rules\": ["
          (if i = 0 then "" else ",")
          (json_escape inv);
        List.iteri
          (fun j (label, fires, self_ms, tries, match_ms) ->
            Printf.fprintf oc
              "%s{\"rule\": \"%s\", \"fires\": %d, \"self_ms\": %.3f, \
               \"match_tries\": %d, \"match_self_ms\": %.3f}"
              (if j = 0 then "" else ", ")
              (json_escape label) fires self_ms tries match_ms)
          rules;
        Printf.fprintf oc "] }")
      table;
    Printf.fprintf oc "\n  ]"
  in
  write_hot "hot_rules" !hot_rules;
  Printf.fprintf oc ",";
  write_hot "hot_rules_linear" !hot_rules_linear;
  Printf.fprintf oc "\n}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* Part 1: the experiment report *)

let report_verification ?pool style name =
  let t0 = Unix.gettimeofday () in
  let results = Proofs.Tls_invariants.campaign ?pool style in
  let dt = Unix.gettimeofday () -. t0 in
  let s = Core.Report.summarize results in
  Format.printf
    "%s: %d/%d invariants proved (%d/%d cases, %d splits, %d rewrite steps) in %.2fs@."
    name s.Core.Report.invariants_proved s.Core.Report.invariants_total
    s.Core.Report.cases_proved s.Core.Report.cases_total
    s.Core.Report.total_splits s.Core.Report.total_rewrite_steps dt;
  record
    (Printf.sprintf "campaign-%s" (String.trim name))
    dt ~steps:s.Core.Report.total_rewrite_steps ~splits:s.Core.Report.total_splits;
  s

let report_negative style =
  let env = Tls.Model.env style in
  List.iter
    (fun (name, proof) ->
      let r = Proofs.Tls_invariants.run env proof in
      let refuting =
        List.filter_map
          (fun (c : Core.Induction.case_result) ->
            match c.Core.Induction.outcome with
            | Core.Prover.Refuted _ -> Some c.Core.Induction.case_name
            | _ -> None)
          r.Core.Induction.cases
      in
      Format.printf "%s: %s (refuted at %s)@." name
        (if r.Core.Induction.proved then "PROVED (unexpected!)" else "does not hold")
        (String.concat ", " refuting))
    [
      "property 2'", Proofs.Tls_invariants.prop2' style;
      "property 3'", Proofs.Tls_invariants.prop3' style;
    ]

let report_mc ~pool () =
  let scen = Tls.Concrete.default_scenario () in
  let system = Tls.Concrete.system scen in
  (match
     Mc.par_bfs ~max_states:50_000 ~max_depth:6 ~pool system
       ~props:[ "cf-authentic", Tls.Concrete.prop_cf_authentic ]
   with
  | Mc.Violation (v, stats) ->
    Format.printf
      "E4  2' counterexample: depth %d, %d states, %.3fs (paper: 5-message trace)@."
      v.Mc.depth stats.Mc.states_explored stats.Mc.elapsed;
    record "mc-2prime-attack" stats.Mc.elapsed
  | _ -> Format.printf "E4  2' counterexample NOT found (unexpected)@.");
  (match
     Mc.par_bfs ~max_states:100_000 ~max_depth:9 ~pool system
       ~props:[ "cf2-authentic", Tls.Concrete.prop_cf2_authentic ]
   with
  | Mc.Violation (v, stats) ->
    Format.printf
      "E5  3' counterexample: depth %d, %d states, %.3fs (paper: 4 more messages)@."
      v.Mc.depth stats.Mc.states_explored stats.Mc.elapsed;
    record "mc-3prime-attack" stats.Mc.elapsed
  | _ -> Format.printf "E5  3' counterexample NOT found (unexpected)@.");
  match
    Mc.par_bfs ~max_states:25_000 ~max_depth:6 ~pool system
      ~props:
        [
          "pms-secrecy", Tls.Concrete.prop_pms_secrecy scen;
          "sf-authentic", Tls.Concrete.prop_sf_authentic;
          "sf2-authentic", Tls.Concrete.prop_sf2_authentic;
        ]
  with
  | Mc.Violation (v, _) ->
    Format.printf "E8  bounded check VIOLATED %s (unexpected)@." v.Mc.property
  | outcome ->
    let stats = Mc.outcome_stats outcome in
    Format.printf
      "E8  properties 1-3 hold over %d states (depth %d, %.3fs, Murphi-style bound)@."
      stats.Mc.states_explored stats.Mc.max_depth stats.Mc.elapsed;
    record "mc-bounded-sweep" stats.Mc.elapsed

let report_nspk () =
  (let module P = Nspk.Symbolic_proofs in
   let module M = Nspk.Symbolic in
   let env = Tls.Model.env Tls.Model.Original in
   ignore env;
   let nsl_env = M.proof_env M.Lowe_fixed in
   let nsl =
     List.for_all
       (fun p -> (P.run ~env:nsl_env M.Lowe_fixed p).Core.Induction.proved)
       (P.campaign M.Lowe_fixed)
   in
   let cls_env = M.proof_env M.Classic in
   let cls =
     (P.run ~env:cls_env M.Classic (P.find M.Classic "nonce-secrecy"))
       .Core.Induction.proved
   in
   Format.printf
     "E9  symbolic: NSL nonce secrecy %s; classic NSPK secrecy %s (refuted at finishInit)@."
     (if nsl then "proved (8 invariants)" else "FAILED (unexpected)")
     (if cls then "PROVED (unexpected!)" else "does not hold"));
  (match
     Mc.bfs ~max_states:100_000 ~max_depth:8
       (Nspk.system (Nspk.default_scenario Nspk.Classic))
       ~props:[ "responder-agreement", Nspk.responder_agreement ]
   with
  | Mc.Violation (v, stats) ->
    Format.printf "E9  NSPK: Lowe's attack at depth %d (%d states, %.3fs)@."
      v.Mc.depth stats.Mc.states_explored stats.Mc.elapsed
  | _ -> Format.printf "E9  NSPK attack NOT found (unexpected)@.");
  match
    Mc.bfs ~max_states:60_000 ~max_depth:8
      (Nspk.system (Nspk.default_scenario Nspk.Lowe_fixed))
      ~props:[ "responder-agreement", Nspk.responder_agreement ]
  with
  | Mc.Violation _ -> Format.printf "E9  NSL VIOLATED (unexpected)@."
  | outcome ->
    let stats = Mc.outcome_stats outcome in
    Format.printf "E9  NSL (Lowe's fix): clean over %d states@."
      stats.Mc.states_explored

(* Full-campaign per-rule totals: label -> (match tries, match self ns,
   total self ns), over every rule in every invariant's snapshot — the
   per-invariant tables truncate to the top 3, which would bias any
   rule-to-rule comparison between engines (a rule makes the top 3 more
   often once the scan-heavy rules around it drop out). *)
let rule_totals_linear : (string, int * int * int) Hashtbl.t = Hashtbl.create 256
let rule_totals_indexed : (string, int * int * int) Hashtbl.t = Hashtbl.create 256

(* Per-invariant rule attribution: sequential on purpose — reset/snapshot
   need quiescence, and one invariant at a time keeps the profiles
   separable.  Shared by E16 (indexed) and E20 (linear baseline).
   Returns the per-invariant top-3 table plus the campaign-wide
   rule-selection totals (root-match attempts and their self-time, over
   *all* rules, not just the top 3); [totals] gets the exact per-rule
   sums. *)
let profile_hot_rules ~totals env proofs =
  Telemetry.Probe.set_enabled true;
  let tries_total = ref 0 and match_ns_total = ref 0 in
  Hashtbl.reset totals;
  let table =
    List.map
      (fun proof ->
        Telemetry.Probe.reset ();
        ignore (Proofs.Tls_invariants.run env proof);
        let snap = Telemetry.Probe.snapshot () in
        spans_dropped := !spans_dropped + snap.Telemetry.Probe.sn_dropped;
        List.iter
          (fun (dom, n) ->
            let prev =
              Option.value ~default:0 (List.assoc_opt dom !spans_dropped_dom)
            in
            spans_dropped_dom :=
              (dom, prev + n) :: List.remove_assoc dom !spans_dropped_dom)
          snap.Telemetry.Probe.sn_dropped_by_dom;
        List.iter
          (fun (r : Telemetry.Probe.rule_stat) ->
            tries_total := !tries_total + r.Telemetry.Probe.rl_match_tries;
            match_ns_total :=
              !match_ns_total + r.Telemetry.Probe.rl_match_self_ns;
            let t0, m0, s0 =
              Option.value ~default:(0, 0, 0)
                (Hashtbl.find_opt totals r.Telemetry.Probe.rl_label)
            in
            Hashtbl.replace totals r.Telemetry.Probe.rl_label
              ( t0 + r.Telemetry.Probe.rl_match_tries,
                m0 + r.Telemetry.Probe.rl_match_self_ns,
                s0 + r.Telemetry.Probe.rl_rw_self_ns
                + r.Telemetry.Probe.rl_cond_self_ns
                + r.Telemetry.Probe.rl_match_self_ns ))
          snap.Telemetry.Probe.sn_rules;
        ( Proofs.Tls_invariants.name_of proof,
          List.map
            (fun (r : Telemetry.Probe.rule_stat) ->
              ( r.Telemetry.Probe.rl_label,
                r.Telemetry.Probe.rl_fires,
                float_of_int
                  (r.Telemetry.Probe.rl_rw_self_ns
                  + r.Telemetry.Probe.rl_cond_self_ns
                  + r.Telemetry.Probe.rl_match_self_ns)
                /. 1e6,
                r.Telemetry.Probe.rl_match_tries,
                float_of_int r.Telemetry.Probe.rl_match_self_ns /. 1e6 ))
            (Telemetry.Hotspot.hot_rules ~top:3 snap) ))
      proofs
  in
  Telemetry.Probe.set_enabled false;
  Telemetry.Probe.reset ();
  (table, (!tries_total, float_of_int !match_ns_total /. 1e6))

let hot_weight (_, rules) =
  List.fold_left (fun acc (_, _, ms, _, _) -> acc +. ms) 0. rules

let bool_const name =
  Term.const
    (Cafeobj.Spec.declare_op (Cafeobj.Builtins.bool_spec ()) name [] Sort.bool
       ~attrs:[])

let report ~pool () =
  section "E1: Figure-2 protocol runs (symbolic execution)";
  let run = Tls.Scenario.full_handshake () in
  Format.printf "full handshake: %d transitions, all effective: %b@."
    (List.length run.Tls.Scenario.steps)
    (Tls.Scenario.effective run = []);
  let run = Tls.Scenario.resumption () in
  Format.printf "with resumption: %d transitions, all effective: %b@."
    (List.length run.Tls.Scenario.steps)
    (Tls.Scenario.effective run = []);

  section
    "E2+E3+E7: the verification campaign (paper: 18 invariants, ~1 week by hand)";
  let s = report_verification ~pool Tls.Model.Original "original protocol " in
  Format.printf
    "E7  effort: %d proof cases checked mechanically vs ~1 week by hand@."
    s.Core.Report.cases_total;

  (let env = Tls.Model.env Tls.Model.Original in
   let ext = Proofs.Tls_invariants.extensions Tls.Model.Original in
   let results = List.map (Proofs.Tls_invariants.run env) ext in
   Format.printf "extensions beyond the paper: %d/%d proved (%s)@."
     (List.length (List.filter (fun (r : Core.Induction.result) -> r.Core.Induction.proved) results))
     (List.length results)
     (String.concat ", " (List.map Proofs.Tls_invariants.name_of ext)));

  section "E6: the ClientFinished2-first variant (Section 5.3)";
  ignore (report_verification ~pool Tls.Model.Cf2First "variant protocol  ");

  section "E4+E5+E8: explicit-state analysis (Murphi-style baseline)";
  report_negative Tls.Model.Original;
  report_mc ~pool ();

  section "E11: Paulson's Oops rule (Section 6) — resumption despite key loss";
  (let oops_scen = { (Tls.Concrete.default_scenario ()) with Tls.Concrete.oops = true } in
   match
     Mc.bfs ~max_states:25_000 ~max_depth:8 (Tls.Concrete.system oops_scen)
       ~props:
         [
           "pms-secrecy", Tls.Concrete.prop_pms_secrecy oops_scen;
           "sf-authentic", Tls.Concrete.prop_sf_authentic;
           "sf2-authentic", Tls.Concrete.prop_sf2_authentic;
         ]
   with
  | Mc.Violation (v, _) ->
    Format.printf "E11 Oops BROKE %s (unexpected)@." v.Mc.property
  | outcome ->
    let stats = Mc.outcome_stats outcome in
    Format.printf
      "E11 session-key leakage breaks nothing over %d states (Paulson's finding)@."
      stats.Mc.states_explored);

  section "E9: NSPK comparison (Section 3.2 / Lowe [6])";
  report_nspk ();

  section "E10: BOOL completeness (Hsiang system, Section 2.1)";
  let p = bool_const "bench-p" in
  let q = bool_const "bench-q" in
  let peirce = Term.implies (Term.implies (Term.implies p q) p) p in
  Format.printf "peirce's law by polynomial normal form: %b@."
    (Boolring.tautology peirce);
  let sys = Rewrite.make (Boolring.rewrite_rules ()) in
  Format.printf "peirce's law by Hsiang rewriting:       %a@." Term.pp
    (Rewrite.normalize sys peirce);

  section "E13: static analysis of the generated rewrite system (lint)";
  let t0 = Unix.gettimeofday () in
  let lr =
    Analysis.Lint.run ~pool
      [
        Analysis.Lint.Generated
          { label = "generated:tls"; spec = Tls.Model.spec Tls.Model.Original };
      ]
  in
  let dt = Unix.gettimeofday () -. t0 in
  lint_ms := dt *. 1000.;
  Format.printf
    "E13 lint: generated TLS spec certified=%b (%d errors, %d warnings, %d infos) in %.3fs@."
    (lr.Analysis.Lint.errors = 0)
    lr.Analysis.Lint.errors lr.Analysis.Lint.warnings lr.Analysis.Lint.infos dt;
  record "lint-generated-tls" dt;

  section "E14: proof certificates (trace, emit, independently re-check)";
  let spec = Tls.Model.spec Tls.Model.Original in
  (* traced-vs-untraced overhead of red on the E1 gleaning observation *)
  (let full = Tls.Scenario.full_handshake () in
   let nwt = Tls.Model.nw full.Tls.Scenario.ots (Tls.Scenario.final full) in
   let c = Tls.Scenario.cast in
   let pms =
     Tls.Data.pms_ ~client:c.Tls.Scenario.alice ~server:c.Tls.Scenario.bob
       c.Tls.Scenario.sec1
   in
   let sys = Cafeobj.Spec.system spec in
   let goal = Tls.Data.in_cpms pms nwt in
   let reps = 50 in
   let time f =
     f ();
     let t0 = Unix.gettimeofday () in
     for _ = 1 to reps do
       f ()
     done;
     (Unix.gettimeofday () -. t0) *. 1000. /. float_of_int reps
   in
   let untraced =
     time (fun () ->
         Rewrite.clear_cache sys;
         ignore (Rewrite.normalize sys goal))
   in
   let traced =
     time (fun () ->
         Rewrite.clear_cache sys;
         ignore (Rewrite.normalize_traced sys goal))
   in
   red_untraced_ms := untraced;
   red_traced_ms := traced;
   Format.printf
     "E14 red tracing overhead: %.3f ms untraced, %.3f ms traced (%+.1f%%)@."
     untraced traced
     ((traced -. untraced) /. untraced *. 100.);
   (* E15: the same red through the warm normal-form memo — steady state of
      a proof campaign, where most subterms have been normalized before. *)
   let memo =
     time (fun () -> ignore (Rewrite.normalize sys goal))
   in
   red_memo_ms := memo;
   let ms = Rewrite.memo_stats sys in
   let looked_up = ms.Rewrite.hits + ms.Rewrite.misses in
   memo_hit_rate :=
     (if looked_up = 0 then 0. else float_of_int ms.Rewrite.hits /. float_of_int looked_up);
   intern_table_len := Term.intern_table_len ();
   Format.printf
     "E15 red memo: %.3f ms warm (%.1fx untraced), hit rate %.1f%%, %d live interned terms@."
     memo (untraced /. Float.max memo 1e-9)
     (!memo_hit_rate *. 100.) !intern_table_len);
  (* one invariant's campaign as a certificate, replayed independently *)
  (let env = Tls.Model.env Tls.Model.Original in
   let inv1 = Proofs.Tls_invariants.find Tls.Model.Original "inv1" in
   let tr = Rewrite.tracer () in
   Rewrite.set_tracer (Some tr);
   let t0 = Unix.gettimeofday () in
   ignore (Proofs.Tls_invariants.run ~pool env inv1);
   let run_s = Unix.gettimeofday () -. t0 in
   Rewrite.set_tracer None;
   let t0 = Unix.gettimeofday () in
   let b = Analysis.Certgen.create () in
   Analysis.Certgen.add_obligations b (Rewrite.obligations tr);
   let term_res = Analysis.Termination.check spec in
   if term_res.Analysis.Termination.certified then
     Analysis.Certgen.add_lpo b
       ~precedence:term_res.Analysis.Termination.search.Order.precedence
       (Cafeobj.Spec.all_rules spec);
   let conf = Analysis.Confluence.check ~pool ~certify:true spec in
   Analysis.Certgen.add_joins b
     ~rules:(Cafeobj.Spec.all_rules spec)
     conf.Analysis.Confluence.certs;
   let cert = Analysis.Certgen.cert b in
   let bytes = String.length (Certify.Cert.to_string cert) in
   let produce_s = Unix.gettimeofday () -. t0 in
   let t0 = Unix.gettimeofday () in
   let res = Analysis.Certgen.check ~pool cert in
   let check_s = Unix.gettimeofday () -. t0 in
   certify_ms := check_s *. 1000.;
   cert_bytes := bytes;
   Format.printf
     "E14 inv1 certificate: %d obligations, %d steps replayed, %d bytes; \
      proof %.2fs, emit %.2fs, check %.2fs (check/produce %.2fx)%s@."
     res.Analysis.Certgen.obligations res.Analysis.Certgen.steps_replayed bytes
     run_s produce_s check_s
     (check_s /. (run_s +. produce_s))
     (if res.Analysis.Certgen.errors = [] then "" else " — REJECTED (unexpected)");
   record "certify-inv1" check_s);

  section "E16: telemetry overhead and per-invariant hot rules";
  (let full = Tls.Scenario.full_handshake () in
   let nwt = Tls.Model.nw full.Tls.Scenario.ots (Tls.Scenario.final full) in
   let c = Tls.Scenario.cast in
   let pms =
     Tls.Data.pms_ ~client:c.Tls.Scenario.alice ~server:c.Tls.Scenario.bob
       c.Tls.Scenario.sec1
   in
   let sys = Cafeobj.Spec.system (Tls.Model.spec Tls.Model.Original) in
   let goal = Tls.Data.in_cpms pms nwt in
   let reps = 50 in
   let time f =
     f ();
     let t0 = Unix.gettimeofday () in
     for _ = 1 to reps do
       f ()
     done;
     (Unix.gettimeofday () -. t0) *. 1000. /. float_of_int reps
   in
   let red () =
     Rewrite.clear_cache sys;
     ignore (Rewrite.normalize sys goal)
   in
   (* the cold E14 red, with recording off and on: the on-path records a
      span per red plus rule profiles, so this is the worst-case price of
      --profile, not of the flag merely existing (that price is measured
      by the CI guard on red_untraced_ms) *)
   Telemetry.Probe.set_enabled false;
   let off = time red in
   Telemetry.Probe.set_span_min_ns 1_000_000;
   Telemetry.Probe.set_enabled true;
   let on = time red in
   Telemetry.Probe.set_enabled false;
   Telemetry.Probe.reset ();
   telemetry_overhead_pct := (on -. off) /. Float.max off 1e-9 *. 100.;
   Format.printf
     "E16 telemetry: red %.3f ms off, %.3f ms recording (%+.1f%%)@." off on
     !telemetry_overhead_pct;
   let env = Tls.Model.env Tls.Model.Original in
   let table, (tries, match_ms) =
     profile_hot_rules ~totals:rule_totals_indexed env
       (Proofs.Tls_invariants.all Tls.Model.Original)
   in
   hot_rules := table;
   match_tries_indexed := tries;
   match_self_ms_indexed := match_ms;
   match
     List.stable_sort
       (fun a b -> compare (hot_weight b) (hot_weight a))
       !hot_rules
   with
   | [] -> ()
   | (inv, rules) :: _ ->
     Format.printf "E16 hottest invariant %s:@." inv;
     List.iter
       (fun (label, fires, self_ms, _, _) ->
         Format.printf "      %-32s %5d fires %10.3f ms self@." label fires self_ms)
       rules);

  section "E17: resident verification server (verifyd)";
  (let module P = Server.Protocol in
   let socket =
     Filename.concat
       (Filename.get_temp_dir_name ())
       (Printf.sprintf "eqtls-bench-vd-%d.sock" (Unix.getpid ()))
   in
   (try Unix.unlink socket with Unix.Unix_error _ -> ());
   let config =
     {
       (Server.Daemon.default_config ~socket) with
       jobs = 2;
       handle_signals = false;
     }
   in
   let d = Domain.spawn (fun () -> Server.Daemon.run config) in
   let rec wait_up n =
     if n = 0 then failwith "bench: verifyd did not come up"
     else
       match Server.Client.connect ~socket with
       | c -> Server.Client.close c
       | exception Unix.Unix_error _ ->
         Unix.sleepf 0.05;
         wait_up (n - 1)
   in
   wait_up 400;
   Fun.protect
     ~finally:(fun () ->
       (try
          ignore
            (Server.Client.with_client ~socket (fun c ->
                 Server.Client.request c P.Shutdown ~on_response:(fun _ -> ())))
        with _ -> ());
       Domain.join d)
   @@ fun () ->
   let req =
     P.Verify
       { style = P.Original; only = [ "inv1" ]; negative = false; extensions = false; certify = false }
   in
   let round_trip () =
     let t0 = Unix.gettimeofday () in
     let _, code =
       Server.Client.with_client ~socket (fun c ->
           Server.Client.request_collect c req)
     in
     if code <> 0 then failwith "bench: remote verify failed";
     (Unix.gettimeofday () -. t0) *. 1000.
   in
   (* cold: the daemon's first campaign request proves from scratch;
      warm: the identical repeat is served from the resident obligation
      cache (dedup registry) over the same hot term universe *)
   server_cold_ms := round_trip ();
   server_warm_ms := round_trip ();
   let counters = ref [] in
   ignore
     (Server.Client.with_client ~socket (fun c ->
          Server.Client.request c P.Metrics ~on_response:(function
            | P.Rmetrics { counters = cs; _ } -> counters := cs
            | _ -> ())));
   let counter name =
     match List.assoc_opt name !counters with Some n -> n | None -> 0
   in
   let hits = counter "server.dedup.hits"
   and misses = counter "server.dedup.misses" in
   server_dedup_hit_rate :=
     (if hits + misses = 0 then 0.
      else float_of_int hits /. float_of_int (hits + misses));
   record "server-warm-inv1" (!server_warm_ms /. 1000.);
   Format.printf
     "E17 verifyd: inv1 over the socket %.1f ms cold, %.2f ms warm (%.0fx); \
      dedup hit rate %.2f (%d/%d)@."
     !server_cold_ms !server_warm_ms
     (!server_cold_ms /. Float.max !server_warm_ms 1e-9)
     !server_dedup_hit_rate hits (hits + misses));

  section "E18: static secrecy analysis (Horn-clause saturation)";
  (let t0 = Unix.gettimeofday () in
   let r = Analysis.Secrecy.analyze (Tls.Model.spec Tls.Model.Original) in
   let dt = Unix.gettimeofday () -. t0 in
   secrecy_ms := dt *. 1000.;
   horn_clauses := r.Analysis.Secrecy.r_clauses;
   saturation_rounds := r.Analysis.Secrecy.r_rounds;
   record "secrecy-generated-tls" dt;
   Format.printf
     "E18 secrecy: generated TLS spec %s in %.3fs (%d clauses, %d facts, %d \
      rounds, %d resolutions)@."
     (Analysis.Secrecy.verdict_name r)
     dt r.Analysis.Secrecy.r_clauses r.Analysis.Secrecy.r_facts
     r.Analysis.Secrecy.r_rounds r.Analysis.Secrecy.r_resolutions);

  section "E19: state-space reduction (certified POR + symmetry)";
  (* Full vs reduced exploration under identical bounds and identical
     verdicts: the reduction is the point, the byte-identical outcome is
     the soundness check (also enforced by the mc-reduction tests). *)
  (let scen = Nspk.default_scenario Nspk.Lowe_fixed in
   let system = Nspk.system scen in
   let props = [ "responder-agreement", Nspk.responder_agreement ] in
   let run ?reduction () =
     let t0 = Unix.gettimeofday () in
     let o = Mc.bfs ~max_states:60_000 ~max_depth:8 ?reduction system ~props in
     Mc.outcome_stats o, Unix.gettimeofday () -. t0
   in
   let fs, full_s = run () in
   let rs, red_s = run ~reduction:(Nspk.reduction scen) () in
   mc_full_states := fs.Mc.states_explored;
   mc_por_states := rs.Mc.states_explored;
   mc_reduction_factor :=
     float_of_int fs.Mc.states_explored
     /. float_of_int (max rs.Mc.states_explored 1);
   record "mc-nsl-full" full_s;
   record "mc-nsl-reduced" red_s;
   Format.printf
     "E19 NSL (60k states / depth 8): full %d states %.2fs; reduced %d \
      states %.2fs (pruned %d) — %.0fx fewer states@."
     fs.Mc.states_explored full_s rs.Mc.states_explored red_s
     rs.Mc.states_pruned !mc_reduction_factor);
  (let scen = Tls.Concrete.default_scenario () in
   let system = Tls.Concrete.system scen in
   let props = [ "cf-authentic", Tls.Concrete.prop_cf_authentic ] in
   let full = Mc.bfs ~max_states:20_000 ~max_depth:6 system ~props in
   let red =
     Mc.bfs ~max_states:20_000 ~max_depth:6
       ~reduction:(Tls.Concrete.reduction scen) system ~props
   in
   match full, red with
   | Mc.Violation (v, s), Mc.Violation (v', s') ->
     Format.printf
       "E19 TLS 2' attack: full depth %d / %d states vs reduced depth %d / \
        %d states (pruned %d)@."
       v.Mc.depth s.Mc.states_explored v'.Mc.depth s'.Mc.states_explored
       s'.Mc.states_pruned
   | _ -> Format.printf "E19 TLS 2' attack NOT preserved (unexpected)@.");
  (* The static certificate behind the ample sets: full NSL independence
     analysis, s-expression certificate, independent replay. *)
  (let nspec = Nspk.Symbolic.gen_spec Nspk.Lowe_fixed in
   match Analysis.Indep.analyze ~pool nspec with
   | None ->
     Format.printf "E19 independence: no transitions found (unexpected)@."
   | Some r ->
     let cert = Analysis.Indep.certificate r in
     let t0 = Unix.gettimeofday () in
     (match Analysis.Indep.check nspec cert with
     | Ok (pairs, claims) ->
       let dt = Unix.gettimeofday () -. t0 in
       indep_cert_ms := dt *. 1000.;
       record "indep-cert-replay-nsl" dt;
       Format.printf
         "E19 independence certificate: %d pairs / %d claims replayed clean \
          in %.2fs@."
         pairs claims dt
     | Error breadcrumb ->
       Format.printf "E19 independence certificate REJECTED at %s (unexpected)@."
         breadcrumb));

  section "E20: indexed matching (discrimination tree vs linear scan)";
  (* Same red as E14/E16, timed under both rule-selection strategies.
     The differential suite holds the two to identical results; the only
     thing allowed to differ is how many rules fail to match. *)
  (let full = Tls.Scenario.full_handshake () in
   let nwt = Tls.Model.nw full.Tls.Scenario.ots (Tls.Scenario.final full) in
   let c = Tls.Scenario.cast in
   let pms =
     Tls.Data.pms_ ~client:c.Tls.Scenario.alice ~server:c.Tls.Scenario.bob
       c.Tls.Scenario.sec1
   in
   let sys = Cafeobj.Spec.system (Tls.Model.spec Tls.Model.Original) in
   let goal = Tls.Data.in_cpms pms nwt in
   let reps = 50 in
   let time f =
     f ();
     let t0 = Unix.gettimeofday () in
     for _ = 1 to reps do
       f ()
     done;
     (Unix.gettimeofday () -. t0) *. 1000. /. float_of_int reps
   in
   let red () =
     Rewrite.clear_cache sys;
     ignore (Rewrite.normalize sys goal)
   in
   Rewrite.set_indexing sys false;
   let linear = time red in
   Rewrite.set_indexing sys true;
   Index.reset_stats ();
   let indexed = time red in
   let st = Index.stats () in
   let considered = st.Index.hits + st.Index.filtered in
   red_linear_ms := linear;
   red_indexed_ms := indexed;
   index_candidate_ratio :=
     (if considered = 0 then 1.
      else float_of_int st.Index.hits /. float_of_int considered);
   let ii = Rewrite.index_info sys in
   Format.printf
     "E20 red rule selection: %.3f ms linear, %.3f ms indexed (%.2fx); \
      candidate ratio %.3f (%d rules, %d buckets, %d AC)@."
     linear indexed
     (linear /. Float.max indexed 1e-9)
     !index_candidate_ratio ii.Index.ix_rules ii.Index.ix_buckets
     ii.Index.ix_ac_buckets;
   (* the linear-scan counterpart of E16's per-invariant hot-rules table:
      this is the before/after evidence that indexing cuts the self-time
      of the hottest transition rules (match attempts — failed or not —
      are charged to the rule attempted, so a rule the linear scan tries
      at every redex is expensive even when it never fires) *)
   let env = Tls.Model.env Tls.Model.Original in
   let base = Core.Induction.system env in
   Rewrite.set_default_indexing false;
   Rewrite.set_indexing base false;
   (let table, (ltries, lmatch_ms) =
      profile_hot_rules ~totals:rule_totals_linear env
        (Proofs.Tls_invariants.all Tls.Model.Original)
    in
    hot_rules_linear := table;
    match_tries_linear := ltries;
    match_self_ms_linear := lmatch_ms);
   (* campaign fingerprints must be byte-identical under both strategies *)
   let proofs = Proofs.Tls_invariants.all Tls.Model.Original in
   let fingerprints () =
     List.map
       (fun p ->
         Core.Report.result_fingerprint (Proofs.Tls_invariants.run ~pool env p))
       proofs
   in
   let fp_linear = fingerprints () in
   Rewrite.set_default_indexing true;
   Rewrite.set_indexing base true;
   let fp_indexed = fingerprints () in
   Format.printf "E20 campaign fingerprints, indexed vs linear: %s@."
     (if List.equal String.equal fp_linear fp_indexed then "byte-identical"
      else "DIVERGED (unexpected!)");
   (* the work the index exists to remove: root-match attempts across the
      whole profiled campaign (every rule, not just the top 3) *)
   Format.printf
     "E20 rule-selection work, full campaign: %d tries / %.1f ms match time \
      linear, %d tries / %.1f ms indexed (%.1fx fewer tries, %.1fx less \
      match time)@."
     !match_tries_linear !match_self_ms_linear !match_tries_indexed
     !match_self_ms_indexed
     (float_of_int !match_tries_linear
     /. Float.max (float_of_int !match_tries_indexed) 1.)
     (!match_self_ms_linear /. Float.max !match_self_ms_indexed 1e-9);
   match
     List.stable_sort
       (fun a b -> compare (hot_weight b) (hot_weight a))
       !hot_rules_linear
   with
   | [] -> ()
   | (inv, (top_label, _, _, _, _) :: _) :: _ ->
     (* exact full-campaign totals for the hottest rule, from the
        untruncated per-rule sums: tries are deterministic, the
        self-times carry run-to-run GC/warmth noise *)
     let find tbl =
       Option.value ~default:(0, 0, 0) (Hashtbl.find_opt tbl top_label)
     in
     let lt, lm, ls = find rule_totals_linear in
     let it, im, is = find rule_totals_indexed in
     Format.printf
       "E20 hottest linear-scan rule %s (invariant %s), full campaign: \
        tries %d -> %d (%.1fx), match-self %.2f -> %.2f ms, total self \
        %.1f -> %.1f ms@."
       top_label inv lt it
       (float_of_int lt /. Float.max (float_of_int it) 1.)
       (float_of_int lm /. 1e6)
       (float_of_int im /. 1e6)
       (float_of_int ls /. 1e6)
       (float_of_int is /. 1e6)
   | _ -> ());

  section "E21: production observability (OpenMetrics scrape, per-request cost)";
  (* Two resident servers, identical except for the observability
     surface: one dark (no exporter, no log, no flight recorder), one
     with everything on.  The warm round-trip medians bound what a
     production deployment pays per request for being observable; the
     scrape and p99 come from the instrumented server itself. *)
  (let module P = Server.Protocol in
   let obs_seq = ref 0 in
   let with_obs_bench_daemon ~config_f f =
     incr obs_seq;
     let socket =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "eqtls-bench-obs-%d-%d.sock" (Unix.getpid ()) !obs_seq)
     in
     (try Unix.unlink socket with Unix.Unix_error _ -> ());
     let config =
       config_f
         {
           (Server.Daemon.default_config ~socket) with
           jobs = 2;
           handle_signals = false;
           flight_path = None;
         }
     in
     let d = Domain.spawn (fun () -> Server.Daemon.run config) in
     let rec wait_up n =
       if n = 0 then failwith "bench: obs verifyd did not come up"
       else
         match Server.Client.connect ~socket with
         | c -> Server.Client.close c
         | exception Unix.Unix_error _ ->
           Unix.sleepf 0.05;
           wait_up (n - 1)
     in
     wait_up 400;
     Fun.protect
       ~finally:(fun () ->
         (try
            ignore
              (Server.Client.with_client ~socket (fun c ->
                   Server.Client.request c P.Shutdown ~on_response:(fun _ -> ())))
          with _ -> ());
         Domain.join d)
       (fun () -> f socket)
   in
   let median l =
     let a = List.sort compare l in
     List.nth a (List.length a / 2)
   in
   let warm_median ?id socket ~reps =
     let req =
       P.Verify
         {
           style = P.Original;
           only = [ "inv1" ];
           negative = false;
           extensions = false;
           certify = false;
         }
     in
     let round () =
       let t0 = Unix.gettimeofday () in
       let _, code =
         Server.Client.with_client ~socket (fun c ->
             Server.Client.request_collect ?id c req)
       in
       if code <> 0 then failwith "bench: obs round-trip failed";
       (Unix.gettimeofday () -. t0) *. 1000.
     in
     ignore (round ());
     (* cold: prove once, then measure the cached repeats *)
     median (List.init reps (fun _ -> round ()))
   in
   let reps = 120 in
   let dark_ms =
     with_obs_bench_daemon ~config_f:(fun c -> c) (fun socket ->
         warm_median socket ~reps)
   in
   let port = Atomic.make 0 in
   let log_tmp = Filename.temp_file "eqtls-bench-obs" ".log" in
   let lit_ms =
     with_obs_bench_daemon
       ~config_f:(fun c ->
         {
           c with
           Server.Daemon.metrics_port = Some 0;
           announce_metrics_port = (fun p -> Atomic.set port p);
           log_file = Some log_tmp;
           log_level = Some Telemetry.Log.Info;
           flight_path = Some (c.Server.Daemon.socket ^ ".flight.json");
         })
       (fun socket ->
         let ms = warm_median ~id:"bench-obs" socket ~reps in
         (* scrape the OpenMetrics endpoint the way Prometheus would *)
         let http_get path =
           let fd = Unix.socket PF_INET SOCK_STREAM 0 in
           Fun.protect
             ~finally:(fun () ->
               try Unix.close fd with Unix.Unix_error _ -> ())
           @@ fun () ->
           Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, Atomic.get port));
           let req =
             Printf.sprintf
               "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
               path
           in
           ignore (Unix.write_substring fd req 0 (String.length req));
           let buf = Buffer.create 8192 in
           let chunk = Bytes.create 8192 in
           let rec slurp () =
             match Unix.read fd chunk 0 8192 with
             | 0 -> ()
             | n ->
               Buffer.add_subbytes buf chunk 0 n;
               slurp ()
           in
           slurp ();
           Buffer.contents buf
         in
         let scrape () =
           let t0 = Unix.gettimeofday () in
           let body = http_get "/metrics" in
           if String.length body = 0 then failwith "bench: empty scrape";
           (Unix.gettimeofday () -. t0) *. 1000.
         in
         metrics_scrape_ms := median (List.init 20 (fun _ -> scrape ()));
         (* the server's own latency distribution, from its always-on
            histograms (p99 is the log2-bucket upper bound) *)
         ignore
           (Server.Client.with_client ~socket (fun c ->
                Server.Client.request c P.Metrics ~on_response:(function
                  | P.Rmetrics { histograms; _ } -> (
                    match List.assoc_opt "server.request_latency" histograms with
                    | Some a when Array.length a = 6 -> server_p99_ms := a.(4)
                    | _ -> ())
                  | _ -> ())));
         ms)
   in
   Telemetry.Log.set_level None;
   (try Sys.remove log_tmp with Sys_error _ -> ());
   (try Sys.remove (log_tmp ^ ".1") with Sys_error _ -> ());
   obs_overhead_ms := lit_ms -. dark_ms;
   obs_overhead_pct := (lit_ms -. dark_ms) /. Float.max dark_ms 1e-9 *. 100.;
   record "server-warm-inv1-observed" (lit_ms /. 1000.);
   Format.printf
     "E21 observability: warm inv1 %.3f ms dark, %.3f ms fully observed \
      (%+.1f%%); /metrics scrape %.2f ms; server p99 %.2f ms@."
     dark_ms lit_ms !obs_overhead_pct !metrics_scrape_ms !server_p99_ms)

(* ------------------------------------------------------------------ *)
(* Part 2: timing *)

open Bechamel
open Toolkit

let make_tautology n =
  (* (a1 -> a2 -> ... -> an -> (a1 and ... and an)), a valid formula whose
     polynomial grows with n. *)
  let atoms = List.init n (fun i -> bool_const (Printf.sprintf "bench-atom-%d" i)) in
  let conj = Term.conj atoms in
  List.fold_left (fun acc a -> Term.implies a acc) conj (List.rev atoms)

let bench_tests () =
  let full = Tls.Scenario.full_handshake () in
  let nwt = Tls.Model.nw full.Tls.Scenario.ots (Tls.Scenario.final full) in
  let c = Tls.Scenario.cast in
  let pms =
    Tls.Data.pms_ ~client:c.Tls.Scenario.alice ~server:c.Tls.Scenario.bob
      c.Tls.Scenario.sec1
  in
  let sys = Cafeobj.Spec.system (Tls.Model.spec Tls.Model.Original) in
  let observe () =
    Rewrite.clear_cache sys;
    ignore (Rewrite.normalize sys (Tls.Data.in_cpms pms nwt))
  in
  let env = Tls.Model.env Tls.Model.Original in
  let inv1 = Proofs.Tls_invariants.find Tls.Model.Original "inv1" in
  let esfin = Proofs.Tls_invariants.find Tls.Model.Original "esfin-genuine" in
  let inv2 = Proofs.Tls_invariants.find Tls.Model.Original "inv2" in
  let scen = Tls.Concrete.default_scenario () in
  let taut = make_tautology 8 in
  let hsiang_sys = Rewrite.make (Boolring.rewrite_rules ()) in
  [
    "E1-gleaning-observation", observe;
    "E2-verify-inv1", (fun () -> ignore (Proofs.Tls_invariants.run env inv1));
    "E2-verify-inv2-derived", (fun () -> ignore (Proofs.Tls_invariants.run env inv2));
    "E3-verify-esfin-genuine", (fun () -> ignore (Proofs.Tls_invariants.run env esfin));
    ( "E4-mc-find-2prime-attack",
      fun () ->
        ignore
          (Mc.bfs ~max_states:5_000 ~max_depth:5 (Tls.Concrete.system scen)
             ~props:[ "cf", Tls.Concrete.prop_cf_authentic ]) );
    ( "E8-mc-sweep-depth4",
      fun () ->
        ignore
          (Mc.bfs ~max_states:2_000 ~max_depth:4 (Tls.Concrete.system scen)
             ~props:[ "pms", Tls.Concrete.prop_pms_secrecy scen ]) );
    ( "E9-nspk-lowe-attack",
      fun () ->
        ignore
          (Mc.bfs ~max_states:20_000 ~max_depth:7
             (Nspk.system (Nspk.default_scenario Nspk.Classic))
             ~props:[ "agree", Nspk.responder_agreement ]) );
    "E10-boolring-tautology", (fun () -> ignore (Boolring.tautology taut));
    ( "E10-hsiang-rewriting",
      fun () ->
        (* defeat the memo table: we measure rewriting, not the cache *)
        Rewrite.clear_cache hsiang_sys;
        ignore (Rewrite.normalize hsiang_sys taut) );
  ]

(* Heavier experiments need a larger sampling budget for the regression to
   converge; micro benchmarks are fine with half a second. *)
let run_group ~quota ~name entries =
  (* Warm up every function once so that lazily built rewrite systems and
     caches do not land in the first regression sample. *)
  List.iter (fun (_, fn) -> fn ()) entries;
  let tests =
    List.map (fun (n, fn) -> Test.make ~name:n (Staged.stage fn)) entries
  in
  let cfg = Benchmark.cfg ~limit:3000 ~quota:(Time.second quota) () in
  let grouped = Test.make_grouped ~name tests in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name est acc ->
        let ns =
          match Analyze.OLS.estimates est with
          | Some (v :: _) -> v
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
  in
  List.iter
    (fun (name, ns) -> Format.printf "%-36s %12.3f ms/run@." name (ns /. 1e6))
    (List.sort compare rows)

let run_benchmarks () =
  section "timings (Bechamel, ordinary-least-squares estimate per run)";
  let micro, macro =
    List.partition
      (fun (name, _) ->
        List.exists
          (fun tag ->
            String.length name >= String.length tag
            && String.sub name 0 (String.length tag) = tag)
          [ "E1-"; "E2-verify-inv2"; "E10-boolring"; "E8-" ])
      (bench_tests ())
  in
  run_group ~quota:0.5 ~name:"micro" micro;
  run_group ~quota:8.0 ~name:"macro" macro

let () =
  let jobs = ref (Domain.recommended_domain_count ()) in
  let json = ref "" in
  let no_bechamel = ref false in
  let spec =
    [
      "--jobs", Arg.Set_int jobs, "N number of domains (default: cores)";
      "--json", Arg.Set_string json, "FILE write a machine-readable report";
      "--report-only", Arg.Set no_bechamel, "skip the Bechamel timing pass";
    ]
  in
  Arg.parse spec
    (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
    "bench [options]";
  if !jobs < 1 then begin
    prerr_endline "bench: --jobs must be at least 1";
    exit 2
  end;
  (* fail on an unwritable --json target now, not after a long run *)
  if !json <> "" then begin
    match open_out !json with
    | oc -> close_out oc
    | exception Sys_error msg ->
      Printf.eprintf "bench: cannot write --json file: %s\n" msg;
      exit 2
  end;
  Format.printf "eqtls benchmark harness — reproduces the paper's evaluation@.";
  Sched.Pool.with_pool ~jobs:!jobs @@ fun pool ->
  report ~pool ();
  if !json <> "" then write_json !json ~jobs:!jobs;
  if not !no_bechamel then run_benchmarks ();
  Format.printf "@.done@."
