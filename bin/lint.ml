(* lint — statically certify the rewrite systems behind red.

   Usage:
     lint specs/*.cafe             lint CafeOBJ files
     lint --tls                    lint the generated TLS handshake spec
     lint --tls-variant            lint the generated Cf2First variant spec
     lint --json FILE              also write machine-readable diagnostics
     lint --only CHECKER           run one checker (repeatable);
     lint --skip CHECKER           or skip one (repeatable); checkers:
                                   termination confluence completeness
                                   hygiene coverage secrecy flow
     lint --allow SPEC:CODE        demote a known finding to info
                                   (repeatable), e.g. LEAKY:secret-leaks
     lint --sarif FILE             write a SARIF 2.1.0 report for CI
                                   code-scanning / PR annotation
     lint --dot FILE               write the action dependency graph(s)
                                   with proved independence edges as
                                   Graphviz (needs flow + independence)
     lint --prec f,g,h             seed the termination precedence
                                   (later = greater)
     lint --budget N               rewrite steps per critical-pair join
     lint --fuel N                 case splits per critical-pair join
     lint --jobs N                 join critical pairs on N domains
     lint --profile                record telemetry, print a hotspot report
     lint --trace-out FILE         write a Chrome/Perfetto trace of the run

   Exit status (Telemetry.Cli.Exit, shared by verify / lint / check):
     0  no error-severity diagnostics
     1  at least one error diagnostic
     2  usage error *)

module Exit = Telemetry.Cli.Exit

let () =
  let files = ref [] in
  let tls = ref false in
  let tls_variant = ref false in
  let json = ref "" in
  let sarif = ref "" in
  let dot = ref "" in
  let only = ref [] in
  let skip = ref [] in
  let allow = ref [] in
  let prec = ref "" in
  let budget = ref Analysis.Lint.default_options.Analysis.Lint.budget in
  let fuel = ref Analysis.Lint.default_options.Analysis.Lint.fuel in
  let profile = ref false in
  let trace_out = ref "" in
  let jobs = ref (Domain.recommended_domain_count ()) in
  let spec =
    [
      "--tls", Arg.Set tls, "lint the generated TLS handshake spec";
      "--tls-variant", Arg.Set tls_variant, "lint the generated Cf2First variant";
      "--json", Arg.Set_string json, "FILE write the JSON report to FILE";
      "--sarif", Arg.Set_string sarif, "FILE write a SARIF 2.1.0 report to FILE";
      "--dot", Arg.Set_string dot, "FILE write the action dependency graph(s) as Graphviz";
      "--only", Arg.String (fun s -> only := s :: !only), "CHECKER run only this checker (repeatable)";
      "--skip", Arg.String (fun s -> skip := s :: !skip), "CHECKER skip this checker (repeatable)";
      "--allow", Arg.String (fun s -> allow := s :: !allow), "SPEC:CODE demote a known finding to info (repeatable)";
      "--prec", Arg.Set_string prec, "OPS comma-separated precedence seed, later = greater";
      "--budget", Arg.Set_int budget, "N rewrite steps per critical-pair join (default 20000)";
      "--fuel", Arg.Set_int fuel, "N case splits per critical-pair join (default 8)";
      "--jobs", Arg.Set_int jobs, "N number of domains (default: cores)";
      "--profile", Arg.Set profile, "record telemetry and print a hotspot report";
      ( "--trace-out",
        Arg.Set_string trace_out,
        "FILE write a Chrome/Perfetto trace (implies recording)" );
    ]
  in
  Arg.parse spec (fun f -> files := f :: !files) "lint [options] [files]";
  let sources =
    List.map (fun f -> Analysis.Lint.File f) (List.rev !files)
    @ (if !tls then
         [ Analysis.Lint.Generated { label = "generated:tls"; spec = Tls.Model.spec Tls.Model.Original } ]
       else [])
    @
    if !tls_variant then
      [ Analysis.Lint.Generated { label = "generated:tls-variant"; spec = Tls.Model.spec Tls.Model.Cf2First } ]
    else []
  in
  if sources = [] then begin
    prerr_endline "lint: nothing to lint (pass files, --tls or --tls-variant)";
    exit Exit.usage
  end;
  if !jobs < 1 then begin
    prerr_endline "lint: --jobs must be at least 1";
    exit Exit.usage
  end;
  let opts =
    {
      Analysis.Lint.only = List.rev !only;
      skip = List.rev !skip;
      hint =
        (if !prec = "" then []
         else String.split_on_char ',' !prec |> List.map String.trim);
      budget = !budget;
      fuel = !fuel;
      allow = List.rev !allow;
    }
  in
  Telemetry.Cli.setup ~profile:!profile ~trace_out:!trace_out ();
  let report =
    try
      Sched.Pool.with_pool ~jobs:!jobs @@ fun pool ->
      Analysis.Lint.run ~pool ~opts sources
    with Invalid_argument m ->
      prerr_endline ("lint: " ^ m);
      exit Exit.usage
  in
  Format.printf "%a" Analysis.Lint.pp_report report;
  if !json <> "" then begin
    let oc = open_out !json in
    output_string oc (Analysis.Lint.report_to_json report);
    close_out oc;
    Format.printf "wrote %s@." !json
  end;
  if !sarif <> "" then begin
    Analysis.Sarif.write !sarif report;
    Format.printf "wrote %s@." !sarif
  end;
  if !dot <> "" then begin
    match report.Analysis.Lint.graphs with
    | [] ->
      prerr_endline
        "lint: --dot needs the flow and independence checkers enabled on a \
         module with transitions";
      exit Exit.usage
    | graphs ->
      let oc = open_out !dot in
      List.iter (fun (_, g) -> output_string oc g) graphs;
      close_out oc;
      Format.printf "wrote %s (%d graph%s)@." !dot (List.length graphs)
        (if List.length graphs = 1 then "" else "s")
  end;
  Telemetry.Cli.flush ~process_name:"lint"
    ~gauges:(fun () ->
      let shards = Kernel.Term.intern_shard_stats () in
      [
        "kernel.intern.live_terms",
        float_of_int (Array.fold_left ( + ) 0 shards);
        "kernel.intern.max_shard", float_of_int (Array.fold_left max 0 shards);
      ])
    ~profile:!profile ~trace_out:!trace_out ();
  exit (if report.Analysis.Lint.errors > 0 then Exit.failure else Exit.ok)
