(* check — replay a proof certificate with the independent checker.

   Usage:
     check FILE            validate every obligation in FILE
     check FILE --json     machine-readable report on stdout
     check FILE --jobs N   chunk obligations across N domains
     check FILE --profile  record telemetry, print a hotspot report
     check FILE --trace-out OUT  write a Chrome/Perfetto trace of the replay

   This binary deliberately links only [certify] (the trusted replay
   kernel), [sched] (a generic domain pool) and [telemetry] (passive
   observation): the rewriting engine, AC matcher and proof strategy are
   nowhere in the executable, so accepting a certificate depends on
   nothing the engine computed.

   Exit status (Telemetry.Cli.Exit, shared by verify / lint / check):
     0  certificate accepted
     1  certificate rejected (diagnostics on stderr, or in the JSON report)
     2  usage error, unreadable file or malformed certificate *)

module Exit = Telemetry.Cli.Exit

let usage = "check FILE [--json] [--jobs N] [--profile] [--trace-out OUT]"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let chunks_of n xs =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = n then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

type job = Jlpo | Jred of Certify.Cert.red list | Jjoin of Certify.Cert.join list

let () =
  let json = ref false in
  let jobs = ref 1 in
  let file = ref "" in
  let profile = ref false in
  let trace_out = ref "" in
  let spec =
    [
      "--json", Arg.Set json, "print a machine-readable report";
      "--jobs", Arg.Set_int jobs, "N number of domains (default: 1)";
      "--profile", Arg.Set profile, "record telemetry and print a hotspot report";
      ( "--trace-out",
        Arg.Set_string trace_out,
        "OUT write a Chrome/Perfetto trace (implies recording)" );
    ]
  in
  Arg.parse spec
    (fun s ->
      if !file = "" then file := s
      else raise (Arg.Bad ("unexpected argument " ^ s)))
    usage;
  if !file = "" then begin
    prerr_endline ("check: no certificate file given\nusage: " ^ usage);
    exit Exit.usage
  end;
  if !jobs < 1 then begin
    prerr_endline "check: --jobs must be at least 1";
    exit Exit.usage
  end;
  let contents =
    try In_channel.with_open_bin !file In_channel.input_all
    with Sys_error msg ->
      Printf.eprintf "check: %s\n" msg;
      exit Exit.usage
  in
  let cert =
    match Certify.Cert.of_string contents with
    | Ok c -> c
    | Error msg ->
      Printf.eprintf "check: %s: %s\n" !file msg;
      exit Exit.usage
  in
  let t0 = Sys.time () in
  let njobs = !jobs * 4 in
  let nred = List.length cert.Certify.Cert.reds in
  let chunk = max 1 ((nred + njobs - 1) / njobs) in
  let work =
    (if cert.Certify.Cert.lpo = None then [] else [ Jlpo ])
    @ List.map (fun rs -> Jred rs) (chunks_of chunk cert.Certify.Cert.reds)
    @ match cert.Certify.Cert.joins with [] -> [] | js -> [ Jjoin js ]
  in
  Telemetry.Cli.setup ~profile:!profile ~trace_out:!trace_out ();
  let run job =
    let label =
      match job with
      | Jlpo -> "lpo"
      | Jred rs -> Printf.sprintf "reds[%d]" (List.length rs)
      | Jjoin js -> Printf.sprintf "joins[%d]" (List.length js)
    in
    Telemetry.Probe.with_span ~always:true ~cat:"check" label @@ fun () ->
    (* one checker per chunk: the memo tables are single-domain *)
    let ck = Certify.Check.create cert in
    let errs =
      match job with
      | Jlpo -> Certify.Check.check_lpo ck
      | Jred rs -> List.filter_map (Certify.Check.check_red ck) rs
      | Jjoin js -> List.filter_map (Certify.Check.check_join ck) js
    in
    (errs, Certify.Check.steps_validated ck)
  in
  let results =
    if !jobs = 1 then List.map run work
    else Sched.Pool.with_pool ~jobs:!jobs (fun pool -> Sched.Pool.parallel_map pool run work)
  in
  Telemetry.Cli.flush ~process_name:"check" ~profile:!profile
    ~trace_out:!trace_out ();
  let errors = List.concat_map fst results in
  let steps = List.fold_left (fun acc (_, s) -> acc + s) 0 results in
  let dt = Sys.time () -. t0 in
  let njoin = List.length cert.Certify.Cert.joins in
  let has_lpo = cert.Certify.Cert.lpo <> None in
  if !json then begin
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf
         "{\"file\":\"%s\",\"ok\":%b,\"reds\":%d,\"joins\":%d,\"lpo\":%b,\
          \"steps_replayed\":%d,\"cert_bytes\":%d,\"check_ms\":%.1f,\"errors\":["
         (json_escape !file) (errors = []) nred njoin has_lpo steps
         (String.length contents) (dt *. 1000.));
    List.iteri
      (fun i (e : Certify.Check.error) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "{\"path\":\"%s\",\"msg\":\"%s\"}" (json_escape e.e_path)
             (json_escape e.e_msg)))
      errors;
    Buffer.add_string b "]}";
    print_endline (Buffer.contents b)
  end
  else begin
    Printf.printf "check: %s: %d red(s), %d join(s)%s; %d steps replayed in %.2fs\n"
      !file nred njoin
      (if has_lpo then ", lpo certificate" else "")
      steps dt;
    List.iter
      (fun e -> Format.eprintf "check: %a@." Certify.Check.pp_error e)
      errors;
    if errors = [] then print_endline "check: certificate ACCEPTED"
    else Printf.eprintf "check: certificate REJECTED (%d error(s))\n" (List.length errors)
  end;
  if errors <> [] then exit Exit.failure
