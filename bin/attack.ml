(* attack — explicit-state analysis of the bounded TLS scenario.

   Reproduces Section 5.3 with the Murphi-style baseline: searches for the
   counterexamples to client authentication (properties 2' and 3') and
   bound-checks the five positive properties.

   By default the search runs under the statically certified reduction
   (ample-set partial-order reduction + nonce-symmetry canonization,
   Analysis.Indep / Analysis.Symmetry via Tls.Concrete.reduction); pass
   --no-por / --no-symmetry to fall back to the unreduced baseline, e.g.
   to reproduce the raw state counts from the paper.

   Usage:
     attack [--max-states N] [--max-depth N]
            [--por|--no-por] [--symmetry|--no-symmetry]
            [--profile] [--trace-out FILE] *)

let pp_label = Tls.Concrete.pp_label

let check name ?max_states ?max_depth ?reduction scen props =
  Format.printf "@.== %s ==@." name;
  let outcome =
    Mc.bfs ?max_states ?max_depth ?reduction (Tls.Concrete.system scen) ~props
  in
  Format.printf "%a@." (Mc.pp_outcome pp_label) outcome;
  outcome

let () =
  let max_states = ref 200_000 in
  let max_depth = ref 12 in
  let por = ref true in
  let symmetry = ref true in
  let profile = ref false in
  let trace_out = ref "" in
  let spec =
    [
      "--max-states", Arg.Set_int max_states, "N state budget (default 200000)";
      "--max-depth", Arg.Set_int max_depth, "N depth bound (default 12)";
      "--por", Arg.Set por, "enable partial-order reduction (default)";
      "--no-por", Arg.Clear por, "disable partial-order reduction";
      "--symmetry", Arg.Set symmetry, "enable symmetry canonization (default)";
      "--no-symmetry", Arg.Clear symmetry, "disable symmetry canonization";
      "--profile", Arg.Set profile, "record telemetry and print a hotspot report";
      ( "--trace-out",
        Arg.Set_string trace_out,
        "FILE write a Chrome/Perfetto trace (implies recording)" );
    ]
  in
  Arg.parse spec (fun s -> raise (Arg.Bad ("unexpected argument " ^ s))) "attack [options]";
  Telemetry.Cli.setup ~profile:!profile ~trace_out:!trace_out ();
  let scen = Tls.Concrete.default_scenario () in
  let system = Tls.Concrete.system scen in
  let reduction =
    if !por || !symmetry then
      Some (Tls.Concrete.reduction ~por:!por ~symmetry:!symmetry scen)
    else None
  in
  (match reduction with
  | Some _ ->
    Format.printf "reduction: por=%b symmetry=%b@." !por !symmetry
  | None -> Format.printf "reduction: off (full state space)@.");

  (* Sanity witness: the scenario can complete a handshake and a
     resumption. *)
  Format.printf "@.== reachability: completed handshake ==@.";
  (match
     Mc.reachable ~max_states:!max_states ~max_depth:!max_depth ?reduction
       system ~goal:(Tls.Concrete.handshake_complete scen)
   with
  | Some (trace, _) ->
    List.iter (fun l -> Format.printf "  %a@." pp_label l) trace
  | None -> Format.printf "  NOT reachable (scenario too small?)@.");

  ignore
    (check "property 2' (client authentication, full handshake)"
       ~max_states:!max_states ~max_depth:!max_depth ?reduction scen
       [ "cf-authentic", Tls.Concrete.prop_cf_authentic ]);
  ignore
    (check "property 3' (client authentication, resumption)"
       ~max_states:!max_states ~max_depth:!max_depth ?reduction scen
       [ "cf2-authentic", Tls.Concrete.prop_cf2_authentic ]);
  ignore
    (check "properties 1-3 (secrecy + server authentication)"
       ~max_states:!max_states ~max_depth:!max_depth ?reduction scen
       [
         "pms-secrecy", Tls.Concrete.prop_pms_secrecy scen;
         "sf-authentic", Tls.Concrete.prop_sf_authentic;
         "sf2-authentic", Tls.Concrete.prop_sf2_authentic;
       ]);
  Telemetry.Cli.flush ~process_name:"attack" ~profile:!profile
    ~gauges:(fun () ->
      [
        ( "mc.por.pruned",
          float_of_int (Telemetry.Metrics.value (Telemetry.Metrics.counter "mc.por.pruned")) );
      ])
    ~trace_out:!trace_out ()
