(* caferepl — a tiny CafeOBJ-style interpreter.

   Usage:
     caferepl file.cafe ...     evaluate files, then exit
     caferepl --trace ...       additionally print every rewrite step of
                                each red (rule label, redex position, term)
     caferepl --profile ...     record telemetry; print a hotspot report
                                (per-rule self-time) on exit
     caferepl --trace-out FILE  write a Chrome/Perfetto trace on exit
     caferepl --no-index        select rules by linear scan instead of the
                                discrimination-tree index (same results)
     caferepl                   interactive session (phrases end with '.';
                                'mod' blocks end with '}') *)

let process env src =
  match Cafeobj.Eval.eval_string env src with
  | outputs ->
    List.iter (Format.printf "%a@." Cafeobj.Eval.pp_output) outputs;
    true
  | exception Cafeobj.Eval.Error m ->
    Format.printf "error: %s@." m;
    false
  | exception (Kernel.Rewrite.Limit_exceeded _ as e) ->
    (* distinct from a normal result: the reduction was cut off, no
       (partial) normal form is shown *)
    Format.printf "error: %s@." (Printexc.to_string e);
    false
  | exception Cafeobj.Parser.Error m ->
    Format.printf "parse error: %s@." m;
    false
  | exception Cafeobj.Lexer.Error { line; col; message } ->
    Format.printf "lex error at line %d, col %d: %s@." line col message;
    false

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* A phrase is complete when braces balance and the last token is '.',
   '}' or 'close'. *)
let complete buffer =
  let src = Buffer.contents buffer in
  let depth = ref 0 in
  String.iter
    (fun c -> if c = '{' then incr depth else if c = '}' then decr depth)
    src;
  let trimmed = String.trim src in
  !depth <= 0
  && trimmed <> ""
  && (String.length trimmed > 0
      && (trimmed.[String.length trimmed - 1] = '.'
          || trimmed.[String.length trimmed - 1] = '}'
          || Filename.check_suffix trimmed "close"))

let repl env =
  Format.printf "mini-CafeOBJ — phrases end with '.', modules with '}'; ^D quits@.";
  let buffer = Buffer.create 256 in
  let rec loop () =
    Format.printf (if Buffer.length buffer = 0 then "> @?" else ". @?");
    match input_line stdin with
    | exception End_of_file -> ()
    | line ->
      Buffer.add_string buffer line;
      Buffer.add_char buffer '\n';
      if complete buffer then begin
        ignore (process env (Buffer.contents buffer));
        Buffer.clear buffer
      end;
      loop ()
  in
  loop ()

let () =
  let env = Cafeobj.Eval.create () in
  let args = List.tl (Array.to_list Sys.argv) in
  let no_index = ref false in
  let rec parse files trace profile trace_out = function
    | [] -> List.rev files, trace, profile, trace_out
    | "--trace" :: rest -> parse files true profile trace_out rest
    | "--profile" :: rest -> parse files trace true trace_out rest
    | "--no-index" :: rest ->
      no_index := true;
      parse files trace profile trace_out rest
    | "--trace-out" :: out :: rest -> parse files trace profile out rest
    | [ "--trace-out" ] ->
      prerr_endline "caferepl: --trace-out needs a file argument";
      exit 2
    | f :: rest -> parse (f :: files) trace profile trace_out rest
  in
  let files, trace, profile, trace_out = parse [] false false "" args in
  if trace then Cafeobj.Eval.set_tracing env true;
  if !no_index then begin
    Kernel.Rewrite.set_default_indexing false;
    Cafeobj.Eval.set_indexing env false
  end;
  Telemetry.Cli.setup ~profile ~trace_out ();
  let finish () =
    Telemetry.Cli.flush ~process_name:"caferepl" ~profile ~trace_out ()
  in
  match files with
  | [] ->
    repl env;
    finish ()
  | files ->
    let ok = List.for_all (fun f -> process env (read_file f)) files in
    finish ();
    if not ok then exit 1
