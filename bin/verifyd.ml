(* verifyd — serve verification from a resident process.

   Usage:
     verifyd --socket PATH [--jobs N] [--idle-timeout S]
                                serve until SIGINT/SIGTERM or a shutdown
                                request (specs load once; the intern table,
                                NF memos and finished obligations stay hot)
     verifyd ping     --socket PATH     liveness + uptime
     verifyd status   --socket PATH     pool size, requests served, styles
     verifyd metrics  --socket PATH     counters, gauges, latency histograms
     verifyd shutdown --socket PATH     graceful drain
     verifyd lint     --socket PATH [--variant]
     verifyd secrecy  --socket PATH [--variant]
                                static Dolev-Yao secrecy analysis of the
                                resident spec; the saturated Horn state is
                                cached per style, so re-queries are warm
     verifyd eval     --socket PATH [--steps N] [--deadline S] FILE|-
                                run mini-CafeOBJ phrases in the daemon's
                                resident REPL; a red that exhausts --steps
                                or --deadline answers a structured timeout
                                verdict (exit 5) and the daemon survives

   Campaigns are driven through the standalone binary:
     verify --remote PATH [--variant] [--only NAME] [--negative] ...

   Exit status: the server-assigned request code — the same
   Telemetry.Cli.Exit codes verify/lint/check use (0 ok, 1 failure,
   2 usage/protocol, 5 timeout); serve mode exits 0 after a clean drain. *)

module P = Server.Protocol
module Exit = Telemetry.Cli.Exit

let die_usage msg =
  prerr_endline ("verifyd: " ^ msg);
  exit Exit.usage

let connect socket f =
  match Server.Client.with_client ~socket f with
  | code -> code
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "verifyd: cannot reach %s: %s\n" socket
      (Unix.error_message e);
    Exit.failure
  | exception Failure msg ->
    Printf.eprintf "verifyd: %s\n" msg;
    Exit.failure

let print_response = function
  | P.Pong { pid; uptime_s } ->
    Printf.printf "verifyd: alive, pid %d, up %.1fs\n" pid uptime_s
  | P.Rstatus
      { uptime_s; jobs; requests; in_flight; dedup_hits; dedup_misses; styles }
    ->
    Printf.printf "uptime:      %.1fs\n" uptime_s;
    Printf.printf "jobs:        %d\n" jobs;
    Printf.printf "requests:    %d\n" requests;
    Printf.printf "in flight:   %d\n" in_flight;
    Printf.printf "dedup:       %d hit(s), %d miss(es)\n" dedup_hits
      dedup_misses;
    Printf.printf "styles:      %s\n"
      (String.concat ", " (List.map P.style_name styles))
  | P.Rmetrics { counters; gauges; histograms } ->
    print_endline "--- counters ---";
    List.iter (fun (k, v) -> Printf.printf "%-34s %d\n" k v) counters;
    print_endline "--- gauges ---";
    List.iter (fun (k, v) -> Printf.printf "%-34s %.3f\n" k v) gauges;
    print_endline "--- histograms (ms) ---";
    List.iter
      (fun (k, a) ->
        if Array.length a = 6 then
          Printf.printf
            "%-34s n=%d sum=%.2f p50=%.3f p90=%.3f p99=%.3f max=%.3f\n" k
            (int_of_float a.(0))
            a.(1) a.(2) a.(3) a.(4) a.(5))
      histograms
  | P.Rlint { errors; warnings; infos; cached; text } ->
    print_string text;
    Printf.printf "lint: %d error(s), %d warning(s), %d info(s)%s\n" errors
      warnings infos
      (if cached then " [resident cache]" else "")
  | P.Rsecrecy { verdict; clauses; facts; rounds; resolutions; cached } ->
    Printf.printf
      "secrecy: %s (%d clauses, %d facts, %d rounds, %d resolutions)%s\n"
      verdict clauses facts rounds resolutions
      (if cached then " [resident cache]" else "")
  | P.Rcert { cert } ->
    Printf.printf "certificate: %d bytes\n" (String.length cert)
  | P.Reval { text } -> print_endline text
  | P.Rtimeout { limit; steps; name } ->
    let limit_s =
      match limit with
      | `Steps n -> Printf.sprintf "%d-step budget" n
      | `Deadline d -> Printf.sprintf "%.3fs deadline" d
    in
    Printf.eprintf "verifyd: %s exhausted its %s after %d steps\n" name
      limit_s steps
  | P.Rerror { code; msg } -> Printf.eprintf "verifyd: %s: %s\n" code msg
  | _ -> ()

let simple_request socket req =
  connect socket @@ fun c -> Server.Client.request c req ~on_response:print_response

let serve args =
  let socket = ref "" in
  let jobs = ref (Domain.recommended_domain_count ()) in
  let idle = ref 300. in
  let metrics_port = ref (-1) in
  let log_file = ref "" in
  let log_level = ref "" in
  let log_rotate = ref 0 in
  let slow_ms = ref 500. in
  let flight = ref "" in
  let no_flight = ref false in
  let profile = ref false in
  let trace_out = ref "" in
  let spec =
    [
      "--socket", Arg.Set_string socket, "PATH Unix-domain socket to bind";
      "--jobs", Arg.Set_int jobs, "N sched-pool parallelism (default: cores)";
      ( "--idle-timeout",
        Arg.Set_float idle,
        "S close idle connections after S seconds (0 = never; default 300)" );
      ( "--metrics-port",
        Arg.Set_int metrics_port,
        "PORT serve GET /metrics, /healthz, /statusz over HTTP on \
         127.0.0.1:PORT (0 = pick an ephemeral port)" );
      ( "--log",
        Arg.Set_string log_file,
        "FILE append structured JSON-lines events to FILE" );
      ( "--log-level",
        Arg.Set_string log_level,
        "LEVEL debug|info|warn|error (default: info when --log is given)" );
      ( "--log-rotate",
        Arg.Set_int log_rotate,
        "BYTES rotate the log file beyond this size (0 = never)" );
      ( "--slow-ms",
        Arg.Set_float slow_ms,
        "MS log requests at least this slow at warn level (0 = off; \
         default 500)" );
      ( "--flight",
        Arg.Set_string flight,
        "PATH write the crash flight-recorder dump to PATH (default: \
         SOCKET.flight.json)" );
      "--no-flight", Arg.Set no_flight, " disable the flight recorder";
      "--profile", Arg.Set profile, " print a hotspot report after draining";
      ( "--trace-out",
        Arg.Set_string trace_out,
        "FILE write a Perfetto trace of the serve run to FILE" );
    ]
  in
  (try
     Arg.parse_argv ~current:(ref 0)
       (Array.of_list (Sys.executable_name :: args))
       spec
       (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
       "verifyd [options]"
   with
  | Arg.Bad msg -> die_usage msg
  | Arg.Help msg ->
    print_string msg;
    exit Exit.ok);
  if !socket = "" then die_usage "--socket PATH is required";
  if !jobs < 1 then die_usage "--jobs must be at least 1";
  let log_level =
    match !log_level with
    | "" -> if !log_file <> "" then Some Telemetry.Log.Info else None
    | s -> (
      match Telemetry.Log.level_of_name s with
      | Some _ as l -> l
      | None -> die_usage (Printf.sprintf "unknown log level %S" s))
  in
  let base = Server.Daemon.default_config ~socket:!socket in
  let config =
    { base with
      jobs = !jobs;
      idle_timeout_s = !idle;
      metrics_port = (if !metrics_port >= 0 then Some !metrics_port else None);
      announce_metrics_port =
        (fun port ->
          Printf.printf "verifyd: metrics on http://127.0.0.1:%d/metrics\n%!"
            port);
      log_file = (if !log_file <> "" then Some !log_file else None);
      log_level;
      log_rotate_bytes = !log_rotate;
      slow_ms = !slow_ms;
      flight_path =
        (if !no_flight then None
         else if !flight <> "" then Some !flight
         else base.Server.Daemon.flight_path);
    }
  in
  Telemetry.Cli.setup ~profile:!profile ~trace_out:!trace_out ();
  Printf.printf "verifyd: serving %s with %d job(s)\n%!" !socket !jobs;
  (match Server.Daemon.run config with
  | () -> ()
  | exception Failure msg ->
    prerr_endline ("verifyd: " ^ msg);
    exit Exit.failure);
  Telemetry.Cli.flush ~process_name:"verifyd" ~profile:!profile
    ~trace_out:!trace_out ();
  print_endline "verifyd: drained, bye";
  exit Exit.ok

let client_command name args ~extra ~make_request =
  let socket = ref "" in
  let anon = ref [] in
  let spec =
    ("--socket", Arg.Set_string socket, "PATH socket of the daemon") :: extra
  in
  (try
     Arg.parse_argv ~current:(ref 0)
       (Array.of_list (Sys.executable_name :: args))
       spec
       (fun s -> anon := s :: !anon)
       ("verifyd " ^ name ^ " --socket PATH")
   with
  | Arg.Bad msg -> die_usage msg
  | Arg.Help msg ->
    print_string msg;
    exit Exit.ok);
  if !socket = "" then die_usage "--socket PATH is required";
  exit (simple_request !socket (make_request (List.rev !anon)))

let () =
  match Array.to_list Sys.argv with
  | _ :: "ping" :: rest ->
    client_command "ping" rest ~extra:[] ~make_request:(fun _ -> P.Ping)
  | _ :: "status" :: rest ->
    client_command "status" rest ~extra:[] ~make_request:(fun _ -> P.Status)
  | _ :: "metrics" :: rest ->
    client_command "metrics" rest ~extra:[] ~make_request:(fun _ -> P.Metrics)
  | _ :: "shutdown" :: rest ->
    client_command "shutdown" rest ~extra:[] ~make_request:(fun _ ->
        P.Shutdown)
  | _ :: "lint" :: rest ->
    let variant = ref false in
    client_command "lint" rest
      ~extra:[ "--variant", Arg.Set variant, "lint the Cf2First variant spec" ]
      ~make_request:(fun _ ->
        P.Lint { style = (if !variant then P.Variant else P.Original) })
  | _ :: "secrecy" :: rest ->
    let variant = ref false in
    client_command "secrecy" rest
      ~extra:
        [ "--variant", Arg.Set variant, "analyze the Cf2First variant spec" ]
      ~make_request:(fun _ ->
        P.Secrecy { style = (if !variant then P.Variant else P.Original) })
  | _ :: "eval" :: rest ->
    let steps = ref 0 in
    let deadline = ref 0. in
    client_command "eval" rest
      ~extra:
        [
          "--steps", Arg.Set_int steps, "N per-red rewrite-step budget";
          "--deadline", Arg.Set_float deadline, "S per-red deadline (seconds)";
        ]
      ~make_request:(fun anon ->
        let src =
          match anon with
          | [ "-" ] -> In_channel.input_all In_channel.stdin
          | [ file ] -> (
            try In_channel.with_open_bin file In_channel.input_all
            with Sys_error msg -> die_usage msg)
          | _ -> die_usage "eval takes exactly one FILE (or - for stdin)"
        in
        P.Eval
          {
            src;
            step_limit = (if !steps > 0 then Some !steps else None);
            deadline_s = (if !deadline > 0. then Some !deadline else None);
          })
  | _ :: rest -> serve rest
  | [] -> serve []
