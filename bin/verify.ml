(* verify — run the Section-5 verification campaign.

   Usage:
     verify                     run all 18 invariants (original protocol)
     verify --variant           run them for the Cf2First variant
     verify --only inv1         run a single proof
     verify --negative          also attempt the failing properties 2'/3'
     verify --extensions        also prove the two beyond-paper invariants
     verify --lint              gate: statically lint the spec first and
                                refuse to prove over an uncertified system
     verify --stats             print campaign totals only
     verify --jobs N            verify on N domains (work-stealing pool)

   Exit status:
     0  every requested proof succeeded (and, with --negative, the failing
        properties were refuted as the paper predicts)
     1  an invariant was left unproved or refuted, or a negative property
        unexpectedly proved
     2  usage error
     3  the --lint gate failed: the rewrite system behind the proofs is
        not certified (termination/confluence/… error diagnostics) —
        no proof was attempted

   Results are independent of --jobs: every case runs in its own branched
   spec environment, so statistics and outcomes are byte-identical to the
   sequential run. *)

open Core

let run_one ?pool env proof =
  let r = Proofs.Tls_invariants.run ?pool env proof in
  Format.printf "%a@.@." Report.pp_result r;
  r

let () =
  let variant = ref false in
  let only = ref [] in
  let negative = ref false in
  let extensions = ref false in
  let lint = ref false in
  let stats_only = ref false in
  let jobs = ref (Domain.recommended_domain_count ()) in
  let spec =
    [
      "--variant", Arg.Set variant, "verify the Cf2First variant protocol";
      "--only", Arg.String (fun s -> only := s :: !only), "NAME run one proof (repeatable)";
      "--negative", Arg.Set negative, "also attempt properties 2' and 3'";
      "--extensions", Arg.Set extensions, "also prove the beyond-paper invariants";
      "--lint", Arg.Set lint, "lint the spec and refuse to prove over an uncertified system";
      "--stats", Arg.Set stats_only, "print summary only";
      "--jobs", Arg.Set_int jobs, "N number of domains (default: cores)";
    ]
  in
  Arg.parse spec (fun s -> raise (Arg.Bad ("unexpected argument " ^ s))) "verify [options]";
  if !jobs < 1 then begin
    prerr_endline "verify: --jobs must be at least 1";
    exit 2
  end;
  let style = if !variant then Tls.Model.Cf2First else Tls.Model.Original in
  let env = Tls.Model.env style in
  let proofs =
    match !only with
    | [] ->
      Proofs.Tls_invariants.all style
      @ (if !extensions then Proofs.Tls_invariants.extensions style else [])
    | names ->
      List.map
        (fun name ->
          try Proofs.Tls_invariants.find style name
          with Not_found ->
            Printf.eprintf "verify: unknown proof %S (see lib/proofs)\n" name;
            exit 2)
        (List.rev names)
  in
  Sched.Pool.with_pool ~jobs:!jobs @@ fun pool ->
  if !lint then begin
    (* Gate the campaign on the static certificate: a looping or
       non-confluent system makes every red result meaningless. *)
    let label =
      if !variant then "generated:tls-variant" else "generated:tls"
    in
    let t0 = Unix.gettimeofday () in
    let report =
      Analysis.Lint.run ~pool
        [ Analysis.Lint.Generated { label; spec = Tls.Model.spec style } ]
    in
    let dt = Unix.gettimeofday () -. t0 in
    if report.Analysis.Lint.errors > 0 then begin
      List.iter
        (fun d ->
          if d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error then
            Format.eprintf "%a@." Analysis.Diagnostic.pp d)
        report.Analysis.Lint.diagnostics;
      Format.eprintf
        "verify: lint gate failed: %d error(s) — system not certified, \
         refusing to prove@."
        report.Analysis.Lint.errors;
      exit 3
    end;
    Format.printf "lint gate: %s certified in %.2fs (%d warnings, %d infos)@.@."
      label dt report.Analysis.Lint.warnings report.Analysis.Lint.infos
  end;
  let t0 = Unix.gettimeofday () in
  let results =
    if !stats_only then
      Sched.Pool.parallel_map pool
        (fun proof -> Proofs.Tls_invariants.run ~pool env proof)
        proofs
    else List.map (run_one ~pool env) proofs
  in
  Format.printf "%a@." Report.pp_summary (Report.summarize results);
  Format.printf "wall-clock: %.2fs (%d domain%s)@."
    (Unix.gettimeofday () -. t0)
    !jobs
    (if !jobs = 1 then "" else "s");
  let unexpected_proof = ref false in
  if !negative then begin
    Format.printf "@.--- negative properties (Section 5.3) ---@.";
    List.iter
      (fun p ->
        let r = run_one ~pool env p in
        if r.Induction.proved then unexpected_proof := true)
      [ Proofs.Tls_invariants.prop2' style; Proofs.Tls_invariants.prop3' style ]
  end;
  let failures = Report.failures results in
  if failures <> [] || !unexpected_proof then exit 1
