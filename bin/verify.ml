(* verify — run the Section-5 verification campaign.

   Usage:
     verify                     run all 18 invariants (original protocol)
     verify --variant           run them for the Cf2First variant
     verify --only inv1         run a single proof
     verify --negative          also attempt the failing properties 2'/3'
     verify --extensions        also prove the two beyond-paper invariants
     verify --lint              gate: statically lint the spec first and
                                refuse to prove over an uncertified system
     verify --stats             print campaign totals only
     verify --jobs N            verify on N domains (work-stealing pool)
     verify --certify           trace every red, rebuild the campaign as a
                                proof certificate (LPO + critical-pair joins
                                included) and replay it with the independent
                                Certify checker
     verify --certify-out FILE  also write the certificate (implies --certify)
     verify --profile           record telemetry and print a hotspot report
                                (top rules by self-time, slowest proof cases)
     verify --trace-out FILE    write a Chrome/Perfetto trace of the campaign
                                (implies recording; open at ui.perfetto.dev)
     verify --remote SOCKET     don't prove locally: send the request to a
                                resident verifyd serving SOCKET and stream
                                its verdicts back (see bin/verifyd.ml);
                                with --certify the daemon traces the
                                campaign and streams the certificate over
                                the wire (write it with --certify-out,
                                re-check it with a check request)

   Exit status (Telemetry.Cli.Exit, shared by verify / lint / check / verifyd):
     0  every requested proof succeeded (and, with --negative, the failing
        properties were refuted as the paper predicts)
     1  an invariant was left unproved or refuted, or a negative property
        unexpectedly proved
     2  usage error
     3  the --lint gate failed: the rewrite system behind the proofs is
        not certified (termination/confluence/… error diagnostics) —
        no proof was attempted
     4  certificate rejected: the independent checker refused a recorded
        derivation, the LPO certificate or a join certificate
     5  a reduction exhausted its step budget or deadline (remote runs:
        the server answers a structured timeout verdict, the daemon and
        the connection survive)

   Results are independent of --jobs: every case runs in its own branched
   spec environment, so statistics and outcomes are byte-identical to the
   sequential run — and byte-identical to what a verifyd serving the same
   style answers over the wire. *)

open Core

(* Flush-time gauges: sampled once, after the campaign has settled. *)
let intern_gauges () =
  let shards = Kernel.Term.intern_shard_stats () in
  let live = Array.fold_left ( + ) 0 shards in
  let occupied =
    Array.fold_left (fun n c -> if c > 0 then n + 1 else n) 0 shards
  in
  [
    "kernel.intern.live_terms", float_of_int live;
    "kernel.intern.shards_occupied", float_of_int occupied;
    "kernel.intern.max_shard", float_of_int (Array.fold_left max 0 shards);
  ]

let run_one ?pool env proof =
  let r = Proofs.Tls_invariants.run ?pool env proof in
  Format.printf "%a@.@." Report.pp_result r;
  r

module Exit = Telemetry.Cli.Exit

(* --remote: ship the request to a resident verifyd and stream its
   verdicts.  [v_text] is the server-side rendering of Report.pp_result,
   so the per-proof output is byte-identical to a local run (modulo
   wall-clock durations); negative verdicts stream after the positives,
   before the campaign summary. *)
let run_remote ~socket ~variant ~only ~negative ~extensions ~stats_only
    ~certify ~certify_out =
  let module P = Server.Protocol in
  let style = if variant then P.Variant else P.Original in
  let req = P.Verify { style; only; negative; extensions; certify } in
  (* a client-generated request id: the daemon stamps it onto its log
     lines, dedup registry entries and (when profiling) telemetry spans,
     so this one invocation can be singled out server-side *)
  let req_id =
    Printf.sprintf "cli-%d-%x" (Unix.getpid ())
      (int_of_float (Unix.gettimeofday () *. 1e3) land 0xffffff)
  in
  Format.printf "request id: %s@." req_id;
  let negative_header = ref false in
  let on_response = function
    | P.Rcert { cert } ->
      if certify_out = "" then
        Format.printf "certify: received a %d-byte certificate@."
          (String.length cert)
      else begin
        let oc = open_out certify_out in
        output_string oc cert;
        output_char oc '\n';
        close_out oc;
        Format.printf "certify: wrote %s (%d bytes)@." certify_out
          (String.length cert)
      end
    | P.Rverdict v ->
      if v.P.v_negative && not !negative_header then begin
        negative_header := true;
        Format.printf "--- negative properties (Section 5.3) ---@."
      end;
      if not stats_only then Format.printf "%s@.@." v.P.v_text
    | P.Rsummary { text; _ } -> Format.printf "%s@." text
    | P.Rtimeout { limit; steps; name } ->
      let limit_s =
        match limit with
        | `Steps n -> Printf.sprintf "%d-step budget" n
        | `Deadline d -> Printf.sprintf "%.3fs deadline" d
      in
      Format.eprintf "verify: %s exhausted its %s after %d steps@." name
        limit_s steps
    | P.Rerror { code; msg } -> Format.eprintf "verify: %s: %s@." code msg
    | _ -> ()
  in
  match
    Server.Client.with_client ~socket (fun c ->
        Server.Client.request ~id:req_id c req ~on_response)
  with
  | code -> code
  | exception Unix.Unix_error (e, _, _) ->
    Format.eprintf "verify: cannot reach verifyd at %s: %s@." socket
      (Unix.error_message e);
    Exit.failure
  | exception Failure msg ->
    Format.eprintf "verify: %s@." msg;
    Exit.failure

let () =
  let variant = ref false in
  let only = ref [] in
  let negative = ref false in
  let extensions = ref false in
  let lint = ref false in
  let stats_only = ref false in
  let certify = ref false in
  let certify_out = ref "" in
  let profile = ref false in
  let trace_out = ref "" in
  let jobs = ref (Domain.recommended_domain_count ()) in
  let remote = ref "" in
  let no_index = ref false in
  let log_file = ref "" in
  let spec =
    [
      "--variant", Arg.Set variant, "verify the Cf2First variant protocol";
      "--only", Arg.String (fun s -> only := s :: !only), "NAME run one proof (repeatable)";
      "--negative", Arg.Set negative, "also attempt properties 2' and 3'";
      "--extensions", Arg.Set extensions, "also prove the beyond-paper invariants";
      "--lint", Arg.Set lint, "lint the spec and refuse to prove over an uncertified system";
      "--stats", Arg.Set stats_only, "print summary only";
      "--certify", Arg.Set certify, "record and independently re-check proof certificates";
      ( "--certify-out",
        Arg.Set_string certify_out,
        "FILE write the certificate to FILE (implies --certify)" );
      "--profile", Arg.Set profile, "record telemetry and print a hotspot report";
      ( "--trace-out",
        Arg.Set_string trace_out,
        "FILE write a Chrome/Perfetto trace (implies recording)" );
      "--jobs", Arg.Set_int jobs, "N number of domains (default: cores)";
      ( "--remote",
        Arg.Set_string remote,
        "SOCKET send the request to a verifyd serving SOCKET" );
      ( "--no-index",
        Arg.Set no_index,
        "select rules by linear scan instead of the discrimination-tree \
         index (results are identical; for differential timing)" );
      ( "--log",
        Arg.Set_string log_file,
        "FILE append structured JSON-lines events to FILE" );
    ]
  in
  Arg.parse spec (fun s -> raise (Arg.Bad ("unexpected argument " ^ s))) "verify [options]";
  if !certify_out <> "" then certify := true;
  if !jobs < 1 then begin
    prerr_endline "verify: --jobs must be at least 1";
    exit Exit.usage
  end;
  if !log_file <> "" then begin
    Telemetry.Log.open_sink !log_file;
    Telemetry.Log.set_level (Some Telemetry.Log.Info);
    Telemetry.Log.info "campaign_start"
      [
        "style",
        Telemetry.Log.S (if !variant then "variant" else "original");
        "remote", Telemetry.Log.B (!remote <> "");
        "jobs", Telemetry.Log.I !jobs;
      ]
  end;
  if !remote <> "" then begin
    if !lint || !profile || !trace_out <> "" then begin
      prerr_endline
        "verify: --lint/--profile/--trace-out do not apply to --remote \
         (the daemon owns its own pool and telemetry)";
      exit Exit.usage
    end;
    let code =
      run_remote ~socket:!remote ~variant:!variant ~only:(List.rev !only)
        ~negative:!negative ~extensions:!extensions ~stats_only:!stats_only
        ~certify:!certify ~certify_out:!certify_out
    in
    if !log_file <> "" then
      Telemetry.Log.info "campaign_done" [ "exit", Telemetry.Log.I code ];
    exit code
  end;
  Telemetry.Cli.setup ~profile:!profile ~trace_out:!trace_out ();
  if !no_index then Kernel.Rewrite.set_default_indexing false;
  let style = if !variant then Tls.Model.Cf2First else Tls.Model.Original in
  let env = Tls.Model.env style in
  (* the base system may already exist (memoized per style) — flip it too *)
  if !no_index then
    Kernel.Rewrite.set_indexing (Core.Induction.system env) false;
  let proofs =
    match !only with
    | [] ->
      Proofs.Tls_invariants.all style
      @ (if !extensions then Proofs.Tls_invariants.extensions style else [])
    | names ->
      List.map
        (fun name ->
          try Proofs.Tls_invariants.find style name
          with Not_found ->
            Printf.eprintf "verify: unknown proof %S (see lib/proofs)\n" name;
            exit Exit.usage)
        (List.rev names)
  in
  let code =
    Sched.Pool.with_pool ~jobs:!jobs @@ fun pool ->
  if !lint then begin
    (* Gate the campaign on the static certificate: a looping or
       non-confluent system makes every red result meaningless. *)
    let label =
      if !variant then "generated:tls-variant" else "generated:tls"
    in
    let t0 = Unix.gettimeofday () in
    let report =
      Analysis.Lint.run ~pool
        [ Analysis.Lint.Generated { label; spec = Tls.Model.spec style } ]
    in
    let dt = Unix.gettimeofday () -. t0 in
    if report.Analysis.Lint.errors > 0 then begin
      List.iter
        (fun d ->
          if d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error then
            Format.eprintf "%a@." Analysis.Diagnostic.pp d)
        report.Analysis.Lint.diagnostics;
      Format.eprintf
        "verify: lint gate failed: %d error(s) — system not certified, \
         refusing to prove@."
        report.Analysis.Lint.errors;
      exit Exit.lint_gate
    end;
    Format.printf "lint gate: %s certified in %.2fs (%d warnings, %d infos)@.@."
      label dt report.Analysis.Lint.warnings report.Analysis.Lint.infos
  end;
  let tracer =
    if !certify then begin
      let tr = Kernel.Rewrite.tracer () in
      Kernel.Rewrite.set_tracer (Some tr);
      Some tr
    end
    else None
  in
  let t0 = Unix.gettimeofday () in
  let results =
    if !stats_only then
      Sched.Pool.parallel_map pool
        (fun proof -> Proofs.Tls_invariants.run ~pool env proof)
        proofs
    else List.map (run_one ~pool env) proofs
  in
  Kernel.Rewrite.set_tracer None;
  Format.printf "%a@." Report.pp_summary (Report.summarize results);
  Format.printf "wall-clock: %.2fs (%d domain%s)@."
    (Unix.gettimeofday () -. t0)
    !jobs
    (if !jobs = 1 then "" else "s");
  let unexpected_proof = ref false in
  if !negative then begin
    Format.printf "@.--- negative properties (Section 5.3) ---@.";
    List.iter
      (fun p ->
        let r = run_one ~pool env p in
        if r.Induction.proved then unexpected_proof := true)
      [ Proofs.Tls_invariants.prop2' style; Proofs.Tls_invariants.prop3' style ]
  end;
  (match tracer with
  | None -> ()
  | Some tr ->
    (* Rebuild everything the campaign relied on as one certificate — the
       traced reds plus the termination and local-confluence evidence —
       and replay it with the engine-independent checker. *)
    Format.printf "@.--- proof certificate ---@.";
    let spec = Tls.Model.spec style in
    let t0 = Unix.gettimeofday () in
    let b = Analysis.Certgen.create () in
    Analysis.Certgen.add_obligations b (Kernel.Rewrite.obligations tr);
    let term = Analysis.Termination.check spec in
    if term.Analysis.Termination.certified then
      Analysis.Certgen.add_lpo b
        ~precedence:term.Analysis.Termination.search.Kernel.Order.precedence
        (Cafeobj.Spec.all_rules spec)
    else Format.printf "certify: no LPO certificate (termination search failed)@.";
    let conf = Analysis.Confluence.check ~pool ~certify:true spec in
    Analysis.Certgen.add_joins b
      ~rules:(Cafeobj.Spec.all_rules spec)
      conf.Analysis.Confluence.certs;
    let cert = Analysis.Certgen.cert b in
    let produce_s = Unix.gettimeofday () -. t0 in
    let bytes =
      if !certify_out = "" then String.length (Certify.Cert.to_string cert)
      else begin
        let s = Certify.Cert.to_string cert in
        let oc = open_out !certify_out in
        output_string oc s;
        output_char oc '\n';
        close_out oc;
        String.length s
      end
    in
    let t1 = Unix.gettimeofday () in
    let res = Analysis.Certgen.check ~pool cert in
    let check_s = Unix.gettimeofday () -. t1 in
    Format.printf
      "certify: %d obligations (%d reds, %d joins%s), %d steps replayed, %d bytes@."
      res.Analysis.Certgen.obligations
      (List.length cert.Certify.Cert.reds)
      (List.length cert.Certify.Cert.joins)
      (if cert.Certify.Cert.lpo = None then "" else ", lpo")
      res.Analysis.Certgen.steps_replayed bytes;
    Format.printf "certify: produced in %.2fs, checked in %.2fs@." produce_s check_s;
    if !certify_out <> "" then Format.printf "certify: wrote %s@." !certify_out;
    match res.Analysis.Certgen.errors with
    | [] -> Format.printf "certify: certificate ACCEPTED@."
    | errs ->
      List.iter (fun e -> Format.eprintf "certify: %a@." Certify.Check.pp_error e) errs;
      Format.eprintf "certify: certificate REJECTED (%d error(s))@." (List.length errs);
      exit Exit.cert_rejected);
    let failures = Report.failures results in
    if failures <> [] || !unexpected_proof then Exit.failure else Exit.ok
  in
  (* flush outside with_pool so the shutdown-time utilization gauge and
     every worker's buffers are included *)
  Telemetry.Cli.flush ~process_name:"verify" ~gauges:intern_gauges
    ~profile:!profile ~trace_out:!trace_out ();
  if !log_file <> "" then
    Telemetry.Log.info "campaign_done" [ "exit", Telemetry.Log.I code ];
  if code <> 0 then exit code
