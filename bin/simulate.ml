(* simulate — execute the Figure-2 handshake scenarios symbolically and
   print every message, observer values, and the intruder's gleanings.

   With --mc the symbolic replay is followed by a bounded explicit-state
   check of the corresponding property over the concrete scenario
   (Tls.Concrete), under the statically certified reduction by default
   (ample-set POR + nonce-symmetry canonization); --no-por / --no-symmetry
   fall back to the full state space.

   Usage:
     simulate [--scenario full|resumption|duplication|attack2|attack3]
              [--variant]
              [--mc] [--max-states N] [--max-depth N]
              [--por|--no-por] [--symmetry|--no-symmetry] *)

open Kernel
module S = Tls.Scenario
module D = Tls.Data

let print_run run =
  Format.printf "=== %s ===@." run.S.run_name;
  List.iteri
    (fun i (step : S.step) -> Format.printf "%2d. %s@." (i + 1) step.S.label)
    run.S.steps;
  (match S.effective run with
  | [] -> Format.printf "(all transitions effective)@."
  | dead -> Format.printf "NON-EFFECTIVE: %s@." (String.concat ", " dead));
  let final = S.final run in
  let o = run.S.ots in
  let nw = Tls.Model.nw o final in
  Format.printf "@.network (normal form):@.  %a@.@." Term.pp (S.eval run nw);
  let c = S.cast in
  let honest_pms = D.pms_ ~client:c.S.alice ~server:c.S.bob c.S.sec1 in
  let intruder_pms = D.pms_ ~client:D.intruder ~server:c.S.bob c.S.sec2 in
  Format.printf "intruder gleanings:@.";
  Format.printf "  honest pms:    %a@." Term.pp (S.eval run (D.in_cpms honest_pms nw));
  Format.printf "  own pms:       %a@." Term.pp (S.eval run (D.in_cpms intruder_pms nw));
  Format.printf "  bob's cert sig: %a@." Term.pp
    (S.eval run (D.in_csig (D.sig_of ~signer:D.ca ~subject:c.S.bob (D.pk_ c.S.bob)) nw))

(* The bounded explicit-state counterpart of the chosen scenario: the
   attack replays become violation searches for the matching property,
   the honest replays a bound-check of the positive properties. *)
let model_check ~scenario ~style ~max_states ~max_depth ~por ~symmetry =
  let scen = { (Tls.Concrete.default_scenario ()) with style } in
  let props =
    match scenario with
    | "attack2" -> [ "cf-authentic", Tls.Concrete.prop_cf_authentic ]
    | "attack3" -> [ "cf2-authentic", Tls.Concrete.prop_cf2_authentic ]
    | _ ->
      [
        "pms-secrecy", Tls.Concrete.prop_pms_secrecy scen;
        "sf-authentic", Tls.Concrete.prop_sf_authentic;
        "sf2-authentic", Tls.Concrete.prop_sf2_authentic;
      ]
  in
  let reduction =
    if por || symmetry then Some (Tls.Concrete.reduction ~por ~symmetry scen)
    else None
  in
  Format.printf "@.== bounded model check (%s, por=%b symmetry=%b) ==@."
    (String.concat ", " (List.map fst props))
    por symmetry;
  let outcome =
    Mc.bfs ~max_states ~max_depth ?reduction (Tls.Concrete.system scen) ~props
  in
  Format.printf "%a@." (Mc.pp_outcome Tls.Concrete.pp_label) outcome

let () =
  let scenario = ref "full" in
  let variant = ref false in
  let mc = ref false in
  let max_states = ref 20_000 in
  let max_depth = ref 6 in
  let por = ref true in
  let symmetry = ref true in
  let spec =
    [
      "--scenario", Arg.Set_string scenario,
      "full|resumption|duplication|attack2|attack3";
      "--variant", Arg.Set variant, "use the ClientFinished2-first variant";
      "--mc", Arg.Set mc, "also model-check the matching property (bounded)";
      "--max-states", Arg.Set_int max_states, "N state budget for --mc (default 20000)";
      "--max-depth", Arg.Set_int max_depth, "N depth bound for --mc (default 6)";
      "--por", Arg.Set por, "enable partial-order reduction for --mc (default)";
      "--no-por", Arg.Clear por, "disable partial-order reduction for --mc";
      "--symmetry", Arg.Set symmetry, "enable symmetry canonization for --mc (default)";
      "--no-symmetry", Arg.Clear symmetry, "disable symmetry canonization for --mc";
    ]
  in
  Arg.parse spec (fun s -> raise (Arg.Bad ("unexpected argument " ^ s))) "simulate [options]";
  let style = if !variant then Tls.Model.Cf2First else Tls.Model.Original in
  let run =
    match !scenario with
    | "full" -> S.full_handshake ~style ()
    | "resumption" -> S.resumption ~style ()
    | "duplication" -> S.duplication ()
    | "attack2" -> S.attack_2prime ()
    | "attack3" -> S.attack_3prime ()
    | other -> raise (Arg.Bad ("unknown scenario " ^ other))
  in
  print_run run;
  if !mc then
    model_check ~scenario:!scenario ~style ~max_states:!max_states
      ~max_depth:!max_depth ~por:!por ~symmetry:!symmetry
