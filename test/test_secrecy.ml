(* Tests of the static secrecy analyzer (lib/analysis/secrecy.ml): the
   unbounded secrecy proof of the generated TLS handshake, the golden
   derivation witness and its concrete certified replay on the
   deliberately leaky fixture, the QCheck property that saturation order
   does not change the verdict, the flow checker, and the lint
   integration (allowlist demotion, SARIF rendering). *)

open Kernel

let find_file name =
  let candidates =
    [ name; "../" ^ name; "../../" ^ name; "../../../" ^ name;
      "test/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "file %s not found from %s" name (Sys.getcwd ())

let eval_module src name =
  let env = Cafeobj.Eval.create () in
  ignore (Cafeobj.Eval.eval_string env src);
  match Cafeobj.Eval.find_module env name with
  | Some m -> m
  | None -> Alcotest.failf "module %s not elaborated" name

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let load_leaky () =
  let path = find_file "specs/leaky.cafe" in
  let src = In_channel.with_open_bin path In_channel.input_all in
  eval_module src "LEAKY"

let leaky_spec = lazy (load_leaky ())
let tls_spec = lazy (Tls.Model.spec Tls.Model.Original)
let leaky_result = lazy (Analysis.Secrecy.analyze (Lazy.force leaky_spec))
let tls_result = lazy (Analysis.Secrecy.analyze (Lazy.force tls_spec))

let leak_of (r : Analysis.Secrecy.result) =
  match r.Analysis.Secrecy.r_verdict with
  | Analysis.Secrecy.Leak l -> l
  | _ -> Alcotest.fail "expected a Leak verdict"

(* ------------------------------------------------------------------ *)
(* The unbounded TLS secrecy proof — the point of the analyzer: no BFS,
   no induction, just saturation of the Horn abstraction. *)

let test_tls_secure () =
  List.iter
    (fun style ->
      let r = Analysis.Secrecy.analyze (Tls.Model.spec style) in
      (match r.Analysis.Secrecy.r_verdict with
      | Analysis.Secrecy.Not_applicable reason ->
        Alcotest.failf "not applicable: %s" reason
      | _ -> ());
      Alcotest.(check string) "verdict" "secure"
        (Analysis.Secrecy.verdict_name r);
      Alcotest.(check bool) "saturated with facts" true
        (r.Analysis.Secrecy.r_facts > 0);
      Alcotest.(check bool) "pms query derived from the signature" true
        (List.exists
           (fun q -> q.Analysis.Secrecy.q_name = "in-cpms")
           r.Analysis.Secrecy.r_queries))
    [ Tls.Model.Original; Tls.Model.Cf2First ]

let test_non_protocol_not_applicable () =
  let m =
    eval_module
      {|mod SNAT {
          [ SN ]
          op sz : -> SN { ctor } .
          op ss : SN -> SN { ctor } .
          op sp : SN SN -> SN .
          vars M N : SN .
          eq sp(sz, N) = N .
          eq sp(ss(M), N) = ss(sp(M, N)) .
        }|}
      "SNAT"
  in
  let r = Analysis.Secrecy.analyze m in
  Alcotest.(check string) "verdict" "n/a" (Analysis.Secrecy.verdict_name r)

(* ------------------------------------------------------------------ *)
(* Golden derivation witness on the leaky fixture *)

let golden_witness =
  "(secrecy-witness (spec LEAKY) (query in-cpms) (secret (pms (? Q1 Prin) \
   (? Q2 Prin) (? Q3 Secret))) (step (pred glean:in-cpms) (fact (pms (? %1 \
   Prin) (? %2 Prin) (? %3 Secret))) (rule LEAKY-eq-22/1) (via (kx (? %1 \
   Prin) (? %2 Prin) (epms (pk intruder) (pms (? %1 Prin) (? %2 Prin) (? %3 \
   Secret)))) (step (pred net) (fact (kx (? %1 Prin) (? %2 Prin) (epms (? \
   %3 PubKey) (pms (? %1 Prin) (? %2 Prin) (? %4 Secret))))) (rule \
   LEAKY-eq-49) (via (ct intruder (? %1 Prin) (cert (? %2 Prin) (? %3 \
   PubKey) (sig ca intruder (pk intruder)))) (step (pred net) (fact (ct \
   intruder (? %1 Prin) (cert (? %2 Prin) (? %3 PubKey) (sig ca intruder \
   (pk intruder))))) (rule LEAKY-eq-50) (via (sig ca intruder (pk \
   intruder)) (step (pred glean:in-csig) (fact (sig ca intruder (pk \
   intruder))) (rule LEAKY-eq-23/base1)))))))))"

let test_leaky_golden_witness () =
  let r = Lazy.force leaky_result in
  Alcotest.(check string) "verdict" "leaks" (Analysis.Secrecy.verdict_name r);
  let l = leak_of r in
  let sx = Analysis.Secrecy.witness_sexp ~spec:"LEAKY" l in
  Alcotest.(check string) "golden witness" golden_witness
    (Certify.Sexp.to_string sx)

(* Differential: the static leak witness replays step by step in the
   concrete rewriter, and the certify kernel accepts the traced run. *)
let test_leaky_replay () =
  let spec = Lazy.force leaky_spec in
  let l = leak_of (Lazy.force leaky_result) in
  let rp = Analysis.Secrecy.replay spec l in
  (match rp.Analysis.Secrecy.rp_error with
  | None -> ()
  | Some e -> Alcotest.failf "replay error: %s" e);
  Alcotest.(check bool) "replayed concretely" true rp.Analysis.Secrecy.rp_ok;
  Alcotest.(check bool) "certify kernel accepts" true
    rp.Analysis.Secrecy.rp_cert_ok;
  Alcotest.(check bool) "performed concrete reductions" true
    (rp.Analysis.Secrecy.rp_checks > 0);
  Alcotest.(check bool) "traced obligations" true
    (rp.Analysis.Secrecy.rp_obligations > 0)

(* ------------------------------------------------------------------ *)
(* QCheck: permuting the Horn clause list does not change the verdict *)

let clauses_of spec =
  match Analysis.Secrecy.clauses spec with
  | Ok cs -> cs
  | Error e -> Alcotest.failf "not an OTS spec: %s" e

let leaky_clauses = lazy (clauses_of (Lazy.force leaky_spec))
let tls_clauses = lazy (clauses_of (Lazy.force tls_spec))

let saturate_with spec cls =
  let o = Analysis.Secrecy.default_options in
  let normalize t =
    try Cafeobj.Spec.reduce spec t with Rewrite.Limit_exceeded _ -> t
  in
  let constructors srt =
    List.filter
      (fun (op : Signature.op) ->
        Signature.is_ctor op && Sort.equal op.Signature.sort srt)
      (Cafeobj.Spec.all_ops spec)
  in
  Analysis.Horn.saturate ~depth:o.Analysis.Secrecy.depth
    ~max_facts:o.Analysis.Secrecy.max_facts
    ~expansion:o.Analysis.Secrecy.expansion ~normalize ~constructors cls

(* [find_leak] re-derived over a raw saturation outcome: some fact of the
   query predicate covers the secret pattern with honest principals. *)
let leaks spec outcome (q : Analysis.Secrecy.query) =
  let intr =
    List.find_map
      (fun (o : Signature.op) ->
        if o.Signature.name = "intruder" && o.Signature.arity = [] then
          Some (Term.const o)
        else None)
      (Cafeobj.Spec.all_ops spec)
  in
  List.exists
    (fun (f : Analysis.Horn.fact) ->
      let arg =
        Analysis.Horn.map_vars
          (fun v -> Term.var (v.Term.v_name ^ "!f") v.Term.v_sort)
          f.Analysis.Horn.f_arg
      in
      match Matching.unify arg q.Analysis.Secrecy.q_pattern with
      | None -> false
      | Some s ->
        List.for_all
          (fun v ->
            match (Subst.find s v, intr) with
            | Some t, Some i -> not (Term.equal t i)
            | _ -> true)
          q.Analysis.Secrecy.q_honest)
    (Analysis.Horn.facts_of outcome q.Analysis.Secrecy.q_pred)

let apply_perm cls perm = List.map (List.nth cls) perm

let gen_perms st =
  let perm cls =
    QCheck.Gen.shuffle_l (List.init (List.length cls) Fun.id) st
  in
  (perm (Lazy.force leaky_clauses), perm (Lazy.force tls_clauses))

let print_perms (lp, tp) =
  let s l = String.concat "," (List.map string_of_int l) in
  Printf.sprintf "leaky:[%s] tls:[%s]" (s lp) (s tp)

let prop_order_invariant =
  QCheck.Test.make ~count:15
    ~name:"saturation verdict is clause-order invariant"
    (QCheck.make ~print:print_perms gen_perms)
    (fun (lp, tp) ->
      let lspec = Lazy.force leaky_spec and tspec = Lazy.force tls_spec in
      let lout =
        saturate_with lspec (apply_perm (Lazy.force leaky_clauses) lp)
      in
      let tout = saturate_with tspec (apply_perm (Lazy.force tls_clauses) tp) in
      let lqs = (Lazy.force leaky_result).Analysis.Secrecy.r_queries in
      let tqs = (Lazy.force tls_result).Analysis.Secrecy.r_queries in
      lout.Analysis.Horn.saturated
      && List.exists (leaks lspec lout) lqs
      && tout.Analysis.Horn.saturated
      && not (List.exists (leaks tspec tout) tqs))

(* ------------------------------------------------------------------ *)
(* Flow checker *)

let test_flow_dead_transition () =
  let m =
    eval_module
      {|mod FLOWD {
          *[ Sys ]*
          [ Cnt ]
          op fz : -> Cnt { ctor } .
          op fs : Cnt -> Cnt { ctor } .
          op finit : -> Sys .
          op tick : Sys -> Sys .
          op noop : Sys -> Sys .
          op cnt : Sys -> Cnt .
          var S : Sys .
          eq cnt(finit) = fz .
          eq cnt(tick(S)) = fs(cnt(S)) .
          eq cnt(noop(S)) = cnt(S) .
        }|}
      "FLOWD"
  in
  let r = Analysis.Flow.check m in
  let find name =
    match
      List.find_opt
        (fun t -> t.Analysis.Flow.t_name = name)
        r.Analysis.Flow.transitions
    with
    | Some t -> t
    | None -> Alcotest.failf "transition %s not recognized" name
  in
  Alcotest.(check bool) "noop is dead" true (find "noop").Analysis.Flow.t_dead;
  Alcotest.(check bool) "tick is live" false
    (find "tick").Analysis.Flow.t_dead;
  Alcotest.(check (list string)) "tick writes cnt" [ "cnt" ]
    (find "tick").Analysis.Flow.t_writes;
  Alcotest.(check bool) "dead-transition reported" true
    (List.exists
       (fun d -> d.Analysis.Diagnostic.code = "dead-transition")
       r.Analysis.Flow.diagnostics)

let test_flow_shipped_specs_clean () =
  (* the five shipped specs and both generated TLS styles are flow-clean;
     CI greps for this, so keep it pinned here too *)
  List.iter
    (fun style ->
      let r = Analysis.Flow.check (Tls.Model.spec style) in
      Alcotest.(check int) "no flow diagnostics" 0
        (List.length r.Analysis.Flow.diagnostics))
    [ Tls.Model.Original; Tls.Model.Cf2First ]

(* ------------------------------------------------------------------ *)
(* Lint integration: allowlist demotion and SARIF rendering *)

let lint_leaky ?(allow = []) () =
  let opts =
    { Analysis.Lint.default_options with
      only = [ "secrecy" ];
      allow;
    }
  in
  Analysis.Lint.run ~opts [ Analysis.Lint.File (find_file "specs/leaky.cafe") ]

let test_lint_secrecy_error () =
  let report = lint_leaky () in
  Alcotest.(check int) "one error" 1 report.Analysis.Lint.errors;
  Alcotest.(check bool) "secret-leaks code" true
    (List.exists
       (fun d -> d.Analysis.Diagnostic.code = "secret-leaks")
       report.Analysis.Lint.diagnostics);
  Alcotest.(check bool) "summary records verdict" true
    (List.exists
       (fun m -> m.Analysis.Lint.m_secrecy = Some "leaks")
       report.Analysis.Lint.modules)

let test_lint_allow_demotes () =
  let report = lint_leaky ~allow:[ "LEAKY:secret-leaks" ] () in
  Alcotest.(check int) "no errors" 0 report.Analysis.Lint.errors;
  let demoted =
    List.find_opt
      (fun d -> d.Analysis.Diagnostic.code = "secret-leaks")
      report.Analysis.Lint.diagnostics
  in
  match demoted with
  | None -> Alcotest.fail "secret-leaks diagnostic disappeared"
  | Some d ->
    Alcotest.(check bool) "demoted to info" true
      (d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Info);
    Alcotest.(check bool) "annotated [allowed]" true
      (contains ~needle:"[allowed]" d.Analysis.Diagnostic.message)

let test_sarif () =
  let report = lint_leaky () in
  let s = Analysis.Sarif.of_report report in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("sarif contains " ^ needle) true
        (contains ~needle s))
    [
      "\"version\": \"2.1.0\"";
      "\"name\": \"ots-lint\"";
      "\"ruleId\": \"secrecy/secret-leaks\"";
      "\"level\": \"error\"";
      "leaky.cafe";
      "\"startLine\"";
    ]

(* ------------------------------------------------------------------ *)

let suite =
  ( "secrecy",
    [
      "tls handshake proven secure", `Quick, test_tls_secure;
      "non-protocol spec is n/a", `Quick, test_non_protocol_not_applicable;
      "leaky golden witness", `Quick, test_leaky_golden_witness;
      "leaky witness replays + certifies", `Quick, test_leaky_replay;
      "flow: dead transition detected", `Quick, test_flow_dead_transition;
      "flow: tls specs are clean", `Quick, test_flow_shipped_specs_clean;
      "lint: leak is an error", `Quick, test_lint_secrecy_error;
      "lint: allowlist demotes to info", `Quick, test_lint_allow_demotes;
      "lint: sarif rendering", `Quick, test_sarif;
      QCheck_alcotest.to_alcotest ?verbose:None ?long:None
        prop_order_invariant;
    ] )
