(* The verifyd server stack: codec/framing fuzz (no spec loaded — the
   protocol module is deliberately self-contained), the obligation
   registry, and a live daemon exercised end-to-end over its socket —
   including the guarantees the ISSUE pins down: concurrent clients get
   verdicts byte-identical to a single-client (and to a local) run,
   Limit_exceeded comes back as a structured timeout verdict without
   tearing the connection down, and a drained daemon removes its
   socket file. *)

module P = Server.Protocol
module Exit = Telemetry.Cli.Exit

(* ------------------------------------------------------------------ *)
(* Generators *)

let gen_byte_string =
  QCheck.Gen.(string_size ~gen:(map char_of_int (int_bound 255)) (int_bound 24))

let gen_name = QCheck.Gen.(string_size ~gen:printable (int_bound 12))

let gen_style = QCheck.Gen.oneofl [ P.Original; P.Variant ]

(* finite, exactly-representable-enough floats; the codec promises exact
   round-trips for every finite float (hex notation) *)
let gen_float =
  QCheck.Gen.(
    map2
      (fun a b -> float_of_int a /. float_of_int (b + 1))
      (int_range (-10000) 10000) (int_bound 999))

let gen_request =
  QCheck.Gen.(
    oneof
      [
        oneofl [ P.Ping; P.Status; P.Metrics; P.Shutdown ];
        map (fun style -> P.Lint { style }) gen_style;
        map (fun style -> P.Secrecy { style }) gen_style;
        map4
          (fun style (only, certify) negative extensions ->
            P.Verify { style; only; negative; extensions; certify })
          gen_style
          (pair (list_size (int_bound 4) gen_name) bool)
          bool bool;
        map (fun cert -> P.Check { cert }) gen_byte_string;
        map3
          (fun src steps dl ->
            P.Eval
              {
                src;
                step_limit = (if steps = 0 then None else Some steps);
                deadline_s = (if dl <= 0. then None else Some dl);
              })
          gen_byte_string (int_bound 5000) gen_float;
      ])

let gen_case =
  QCheck.Gen.(
    map4
      (fun c_name st c_splits c_steps ->
        { P.c_name; c_status = st; c_splits; c_steps })
      gen_name
      (oneofl [ "proved"; "refuted"; "unknown" ])
      small_nat small_nat)

let gen_verdict =
  QCheck.Gen.(
    map4
      (fun v_name v_proved v_negative (v_cases, v_text) ->
        { P.v_name; v_proved; v_negative; v_cases; v_text })
      gen_name bool bool
      (pair (list_size (int_bound 5) gen_case) gen_byte_string))

let gen_response =
  QCheck.Gen.(
    oneof
      [
        map2 (fun pid uptime_s -> P.Pong { pid; uptime_s }) small_nat gen_float;
        map3
          (fun uptime_s (jobs, requests) (in_flight, styles) ->
            P.Rstatus { uptime_s; jobs; requests; in_flight; styles })
          gen_float (pair small_nat small_nat)
          (pair small_nat (list_size (int_bound 2) gen_style));
        map3
          (fun counters gauges histograms ->
            P.Rmetrics { counters; gauges; histograms })
          (list_size (int_bound 4) (pair gen_name small_nat))
          (list_size (int_bound 4) (pair gen_name gen_float))
          (list_size (int_bound 3)
             (pair gen_name (array_size (int_bound 6) gen_float)));
        map (fun v -> P.Rverdict v) gen_verdict;
        map3
          (fun (invariants, cases) (splits, steps) text ->
            P.Rsummary { invariants; cases; splits; steps; text })
          (pair (pair small_nat small_nat) (pair small_nat small_nat))
          (pair small_nat small_nat)
          gen_byte_string;
        map3
          (fun (errors, warnings) (infos, cached) text ->
            P.Rlint { errors; warnings; infos; cached; text })
          (pair small_nat small_nat)
          (pair small_nat bool) gen_byte_string;
        map3
          (fun verdict (clauses, facts) (rounds, (resolutions, cached)) ->
            P.Rsecrecy { verdict; clauses; facts; rounds; resolutions; cached })
          (oneofl [ "secure"; "leaks"; "inconclusive"; "n/a" ])
          (pair small_nat small_nat)
          (pair small_nat (pair small_nat bool));
        map (fun cert -> P.Rcert { cert }) gen_byte_string;
        map3
          (fun (ok, obligations) steps errors ->
            P.Rcheck { ok; obligations; steps; errors })
          (pair bool small_nat) small_nat
          (list_size (int_bound 3) (pair gen_name gen_byte_string));
        map (fun text -> P.Reval { text }) gen_byte_string;
        map3
          (fun limit steps name -> P.Rtimeout { limit; steps; name })
          (oneof
             [
               map (fun n -> `Steps n) small_nat;
               map (fun d -> `Deadline d) gen_float;
             ])
          small_nat gen_name;
        map2 (fun code msg -> P.Rerror { code; msg }) gen_name gen_byte_string;
        map (fun exit_code -> P.Done { exit_code }) (int_bound 5);
      ])

let arb_request = QCheck.make ~print:P.encode_request gen_request
let arb_response = QCheck.make ~print:P.encode_response gen_response

(* ------------------------------------------------------------------ *)
(* Codec properties *)

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request codec round-trips" ~count:500 arb_request
    (fun req -> P.decode_request (P.encode_request req) = Ok req)

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response codec round-trips" ~count:500 arb_response
    (fun resp -> P.decode_response (P.encode_response resp) = Ok resp)

let prop_garbage_request_never_raises =
  QCheck.Test.make ~name:"garbage payloads are rejected, never raise"
    ~count:500
    (QCheck.make QCheck.Gen.(string_size ~gen:(map char_of_int (int_bound 255)) (int_bound 64)))
    (fun s ->
      match P.decode_request s, P.decode_response s with
      | (Ok _ | Error _), (Ok _ | Error _) -> true)

(* ------------------------------------------------------------------ *)
(* Framing properties *)

let feed_in_chunks dec bytes sizes =
  let n = Bytes.length bytes in
  let off = ref 0 in
  let sizes = if sizes = [] then [ n ] else sizes in
  let k = ref 0 in
  let nsizes = List.length sizes in
  while !off < n do
    let want = max 1 (List.nth sizes (!k mod nsizes)) in
    let len = min want (n - !off) in
    P.Frame.feed dec bytes !off len;
    off := !off + len;
    incr k
  done

let drain dec =
  let rec go acc =
    match P.Frame.next dec with
    | Ok (Some p) -> go (p :: acc)
    | Ok None -> List.rev acc, None
    | Error e -> List.rev acc, Some e
  in
  go []

let prop_framing_roundtrip =
  QCheck.Test.make
    ~name:"frames survive arbitrary re-chunking of the byte stream"
    ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_bound 6) (make gen_byte_string))
        (list_of_size (Gen.int_bound 5) small_nat))
    (fun (payloads, sizes) ->
      let buf = Buffer.create 256 in
      List.iter (fun p -> P.Frame.encode buf p) payloads;
      let dec = P.Frame.decoder () in
      feed_in_chunks dec (Buffer.to_bytes buf) sizes;
      let frames, err = drain dec in
      err = None && frames = payloads)

let prop_framing_truncated =
  QCheck.Test.make
    ~name:"a truncated final frame yields its predecessors then Ok None"
    ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_bound 4) (make gen_byte_string))
        (make gen_byte_string))
    (fun (payloads, last) ->
      let buf = Buffer.create 256 in
      List.iter (fun p -> P.Frame.encode buf p) payloads;
      let whole = Buffer.length buf in
      P.Frame.encode buf last;
      let cut = whole + 1 + Random.int (Buffer.length buf - whole) in
      let cut = min cut (Buffer.length buf - 1) in
      let dec = P.Frame.decoder () in
      P.Frame.feed dec (Buffer.to_bytes buf) 0 cut;
      let frames, err = drain dec in
      err = None
      && (frames = payloads
         || (* the cut may fall after the last full frame's end *)
         frames = payloads @ [ last ])
      && P.Frame.buffered dec >= 0)

let prop_framing_oversized =
  QCheck.Test.make
    ~name:"an oversized length is a sticky protocol error, not an exception"
    ~count:200
    QCheck.(pair (make gen_byte_string) small_nat)
    (fun (junk, extra) ->
      let max_frame = 1024 in
      let buf = Buffer.create 64 in
      let oversized = max_frame + 1 + extra in
      Buffer.add_char buf (Char.chr ((oversized lsr 24) land 0xff));
      Buffer.add_char buf (Char.chr ((oversized lsr 16) land 0xff));
      Buffer.add_char buf (Char.chr ((oversized lsr 8) land 0xff));
      Buffer.add_char buf (Char.chr (oversized land 0xff));
      Buffer.add_string buf junk;
      let dec = P.Frame.decoder ~max_frame () in
      P.Frame.feed dec (Buffer.to_bytes buf) 0 (Buffer.length buf);
      match P.Frame.next dec with
      | Error _ -> (
        (* poisoned: stays an error even after more (valid-looking) bytes *)
        P.Frame.feed dec (Bytes.of_string (P.Frame.to_string "ok")) 0
          (String.length (P.Frame.to_string "ok"));
        match P.Frame.next dec with Error _ -> true | Ok _ -> false)
      | Ok _ -> false)

let prop_framing_garbage_never_raises =
  QCheck.Test.make ~name:"random bytes never make the decoder raise"
    ~count:300
    (QCheck.make
       QCheck.Gen.(string_size ~gen:(map char_of_int (int_bound 255)) (int_bound 128)))
    (fun s ->
      let dec = P.Frame.decoder ~max_frame:4096 () in
      P.Frame.feed dec (Bytes.of_string s) 0 (String.length s);
      let rec spin n = if n = 0 then true else
        match P.Frame.next dec with
        | Ok (Some _) -> spin (n - 1)
        | Ok None | Error _ -> true
      in
      spin 64)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_dedup () =
  let r = Server.Registry.create () in
  let spawned = ref 0 in
  let spawn v () =
    incr spawned;
    Sched.Task.of_result v
  in
  let t1, how1 = Server.Registry.find_or_submit r ~key:"a" (spawn 1) in
  Alcotest.(check int) "spawned once" 1 !spawned;
  Alcotest.(check bool) "fresh" true (how1 = `Fresh);
  let t2, how2 = Server.Registry.find_or_submit r ~key:"a" (spawn 99) in
  Alcotest.(check int) "not respawned" 1 !spawned;
  Alcotest.(check bool) "cached (already resolved)" true (how2 = `Cached);
  Alcotest.(check bool) "same future" true (t1 == t2);
  Alcotest.(check (option int)) "value" (Some 1) (Sched.Task.poll t2);
  (* an unresolved entry dedups as `Inflight *)
  let pending : int Sched.Task.t = Sched.Task.create () in
  let t3, _ = Server.Registry.find_or_submit r ~key:"b" (fun () -> pending) in
  let t4, how4 = Server.Registry.find_or_submit r ~key:"b" (fun () -> Sched.Task.of_result 0) in
  Alcotest.(check bool) "inflight" true (how4 = `Inflight);
  Alcotest.(check bool) "shared inflight future" true (t3 == t4);
  Alcotest.(check int) "in_flight_count" 1 (Server.Registry.in_flight_count r)

let test_registry_eviction () =
  let r = Server.Registry.create ~capacity:2 () in
  let pending : int Sched.Task.t = Sched.Task.create () in
  ignore (Server.Registry.find_or_submit r ~key:"live" (fun () -> pending));
  ignore (Server.Registry.find_or_submit r ~key:"r1" (fun () -> Sched.Task.of_result 1));
  ignore (Server.Registry.find_or_submit r ~key:"r2" (fun () -> Sched.Task.of_result 2));
  ignore (Server.Registry.find_or_submit r ~key:"r3" (fun () -> Sched.Task.of_result 3));
  Alcotest.(check bool) "capacity respected" true (Server.Registry.size r <= 2 + 1);
  (* the in-flight entry must never be evicted *)
  let spawned = ref false in
  let t, _ =
    Server.Registry.find_or_submit r ~key:"live" (fun () ->
        spawned := true;
        Sched.Task.of_result 0)
  in
  Alcotest.(check bool) "in-flight entry survived eviction" false !spawned;
  Alcotest.(check bool) "still the same future" true (t == pending)

let test_exit_codes () =
  let codes =
    [
      Exit.ok; Exit.failure; Exit.usage; Exit.lint_gate; Exit.cert_rejected;
      Exit.timeout;
    ]
  in
  Alcotest.(check (list int)) "documented values" [ 0; 1; 2; 3; 4; 5 ] codes

(* ------------------------------------------------------------------ *)
(* Live daemon *)

let daemon_seq = ref 0

let with_daemon ?(jobs = 2) f =
  incr daemon_seq;
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "eqtls-vd-%d-%d.sock" (Unix.getpid ()) !daemon_seq)
  in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let config =
    {
      (Server.Daemon.default_config ~socket) with
      jobs;
      idle_timeout_s = 60.;
      handle_signals = false;
    }
  in
  let d = Domain.spawn (fun () -> Server.Daemon.run config) in
  let rec wait_up n =
    if n = 0 then failwith "verifyd did not come up"
    else
      match Server.Client.connect ~socket with
      | c -> Server.Client.close c
      | exception Unix.Unix_error _ ->
        Unix.sleepf 0.05;
        wait_up (n - 1)
  in
  wait_up 400;
  Fun.protect
    ~finally:(fun () ->
      (try
         ignore
           (Server.Client.with_client ~socket (fun c ->
                Server.Client.request c P.Shutdown ~on_response:(fun _ -> ())))
       with _ -> ());
      Domain.join d)
    (fun () -> f socket)

let verify_inv1 =
  P.Verify
    {
      style = P.Original;
      only = [ "inv1" ];
      negative = false;
      extensions = false;
      certify = false;
    }

let fingerprints_of responses =
  List.filter_map
    (function P.Rverdict v -> Some (P.verdict_fingerprint v) | _ -> None)
    responses

let local_inv1_fingerprint =
  lazy
    (let env = Tls.Model.env Tls.Model.Original in
     let proof = Proofs.Tls_invariants.find Tls.Model.Original "inv1" in
     Core.Report.result_fingerprint (Proofs.Tls_invariants.run env proof))

let test_live_verify_identity () =
  with_daemon @@ fun socket ->
  (* single client, twice: second run is served from the resident result
     cache and must be byte-identical *)
  let run () =
    Server.Client.with_client ~socket (fun c ->
        Server.Client.request_collect c verify_inv1)
  in
  let r1, code1 = run () in
  let r2, code2 = run () in
  Alcotest.(check int) "first exit ok" Exit.ok code1;
  Alcotest.(check int) "second exit ok" Exit.ok code2;
  let fp1 = fingerprints_of r1 and fp2 = fingerprints_of r2 in
  Alcotest.(check int) "one verdict" 1 (List.length fp1);
  Alcotest.(check (list string)) "warm repeat byte-identical" fp1 fp2;
  Alcotest.(check string) "identical to the local standalone run"
    (Lazy.force local_inv1_fingerprint) (List.hd fp1);
  (* N concurrent clients: all verdict streams byte-identical *)
  let domains = List.init 3 (fun _ -> Domain.spawn run) in
  let results = List.map Domain.join domains in
  List.iter
    (fun (resps, code) ->
      Alcotest.(check int) "concurrent exit ok" Exit.ok code;
      Alcotest.(check (list string)) "concurrent stream byte-identical" fp1
        (fingerprints_of resps))
    results

let looping_module =
  "mod LOOP {\n  [ N ]\n  op z : -> N .\n  op f : N -> N .\n  var X : N .\n\
  \  eq f(X) = f(f(X)) .\n}\nred in LOOP : f(z) .\n"

let test_live_timeout_keeps_connection () =
  with_daemon ~jobs:1 @@ fun socket ->
  Server.Client.with_client ~socket @@ fun c ->
  let resps, code =
    Server.Client.request_collect c
      (P.Eval { src = looping_module; step_limit = Some 500; deadline_s = None })
  in
  Alcotest.(check int) "timeout exit code" Exit.timeout code;
  let timeouts =
    List.filter_map
      (function
        | P.Rtimeout { limit = `Steps n; steps; _ } -> Some (n, steps)
        | _ -> None)
      resps
  in
  Alcotest.(check (list (pair int int)))
    "structured timeout verdict" [ (500, 500) ] timeouts;
  (* the same connection keeps working *)
  let resps, code = Server.Client.request_collect c P.Ping in
  Alcotest.(check int) "ping after timeout" Exit.ok code;
  Alcotest.(check bool) "pong received" true
    (List.exists (function P.Pong _ -> true | _ -> false) resps)

let test_live_protocol_error () =
  with_daemon ~jobs:1 @@ fun socket ->
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (ADDR_UNIX socket);
  (* a well-framed payload that is not a request *)
  P.Frame.write fd "this is (not a request";
  let rec read_until_done acc =
    match P.Frame.read fd with
    | Ok (Some payload) -> (
      match P.decode_response payload with
      | Ok (P.Done { exit_code }) -> List.rev acc, exit_code
      | Ok r -> read_until_done (r :: acc)
      | Error e -> failwith e)
    | Ok None -> failwith "eof before Done"
    | Error e -> failwith e
  in
  let resps, code = read_until_done [] in
  Alcotest.(check int) "usage exit over the wire" Exit.usage code;
  Alcotest.(check bool) "protocol error response" true
    (List.exists
       (function P.Rerror { code = "protocol"; _ } -> true | _ -> false)
       resps);
  (* the daemon survives a hostile client *)
  let resps2, code2 =
    Server.Client.with_client ~socket (fun c ->
        Server.Client.request_collect c P.Ping)
  in
  Alcotest.(check int) "daemon alive" Exit.ok code2;
  Alcotest.(check bool) "pong" true
    (List.exists (function P.Pong _ -> true | _ -> false) resps2)

let test_live_secrecy_cached () =
  with_daemon ~jobs:1 @@ fun socket ->
  Server.Client.with_client ~socket @@ fun c ->
  let run () =
    Server.Client.request_collect c (P.Secrecy { style = P.Original })
  in
  let pick resps =
    List.find_map
      (function
        | P.Rsecrecy { verdict; clauses; facts; rounds; resolutions; cached }
          ->
          Some (verdict, clauses, facts, rounds, resolutions, cached)
        | _ -> None)
      resps
  in
  let r1, code1 = run () in
  let r2, code2 = run () in
  match (pick r1, pick r2) with
  | Some (v1, c1, f1, ro1, re1, cached1), Some (v2, c2, f2, ro2, re2, cached2)
    ->
    Alcotest.(check int) "first exit ok" Exit.ok code1;
    Alcotest.(check int) "second exit ok" Exit.ok code2;
    Alcotest.(check string) "secure verdict" "secure" v1;
    Alcotest.(check bool) "cold first query" false cached1;
    Alcotest.(check bool) "warm second query" true cached2;
    Alcotest.(check (list int)) "identical saturation stats"
      [ c1; f1; ro1; re1 ] [ c2; f2; ro2; re2 ];
    Alcotest.(check string) "identical verdict" v1 v2
  | _ -> Alcotest.fail "missing secrecy-report response"

let test_live_certify_roundtrip () =
  with_daemon ~jobs:1 @@ fun socket ->
  Server.Client.with_client ~socket @@ fun c ->
  let resps, code =
    Server.Client.request_collect c
      (P.Verify
         {
           style = P.Original;
           only = [ "inv1" ];
           negative = false;
           extensions = false;
           certify = true;
         })
  in
  Alcotest.(check int) "verify exit ok" Exit.ok code;
  let cert =
    match
      List.find_map (function P.Rcert { cert } -> Some cert | _ -> None) resps
    with
    | Some s -> s
    | None -> Alcotest.fail "no certificate response"
  in
  Alcotest.(check bool) "certificate non-empty" true (String.length cert > 0);
  (* the certificate the daemon emits is accepted by its own checker *)
  let resps2, code2 = Server.Client.request_collect c (P.Check { cert }) in
  Alcotest.(check int) "check exit ok" Exit.ok code2;
  (match
     List.find_map
       (function
         | P.Rcheck { ok; obligations; steps; errors } ->
           Some (ok, obligations, steps, errors)
         | _ -> None)
       resps2
   with
  | Some (ok, obligations, steps, errors) ->
    List.iter
      (fun (path, msg) -> Printf.eprintf "cert error %s: %s\n%!" path msg)
      errors;
    Alcotest.(check bool) "certificate checks" true ok;
    Alcotest.(check bool) "has obligations" true (obligations > 0);
    Alcotest.(check bool) "replayed steps" true (steps > 0)
  | None -> Alcotest.fail "no check-report response");
  (* and it parses as a certificate locally *)
  match Certify.Cert.of_string cert with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "certificate does not parse: %s" e

let test_live_shutdown_removes_socket () =
  with_daemon ~jobs:1 @@ fun socket ->
  let _, code =
    Server.Client.with_client ~socket (fun c ->
        Server.Client.request_collect c P.Shutdown)
  in
  Alcotest.(check int) "shutdown acknowledged" Exit.ok code;
  let rec wait_gone n =
    if not (Sys.file_exists socket) then ()
    else if n = 0 then Alcotest.fail "socket file not removed after drain"
    else begin
      Unix.sleepf 0.05;
      wait_gone (n - 1)
    end
  in
  wait_gone 200

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  List.map
    (QCheck_alcotest.to_alcotest ?verbose:None ?long:None)
    [
      prop_request_roundtrip;
      prop_response_roundtrip;
      prop_garbage_request_never_raises;
      prop_framing_roundtrip;
      prop_framing_truncated;
      prop_framing_oversized;
      prop_framing_garbage_never_raises;
    ]

let tests =
  qcheck_tests
  @ [
      Alcotest.test_case "registry dedups against one shared future" `Quick
        test_registry_dedup;
      Alcotest.test_case "registry never evicts in-flight entries" `Quick
        test_registry_eviction;
      Alcotest.test_case "exit codes are the documented values" `Quick
        test_exit_codes;
      Alcotest.test_case "live: concurrent verdicts byte-identical" `Slow
        test_live_verify_identity;
      Alcotest.test_case "live: timeout is a verdict, not a hangup" `Slow
        test_live_timeout_keeps_connection;
      Alcotest.test_case "live: protocol errors answered, daemon survives"
        `Slow test_live_protocol_error;
      Alcotest.test_case "live: secrecy served and cached" `Slow
        test_live_secrecy_cached;
      Alcotest.test_case "live: certificate round-trips through check" `Slow
        test_live_certify_roundtrip;
      Alcotest.test_case "live: drained daemon removes its socket" `Slow
        test_live_shutdown_removes_socket;
    ]

let suite = "server", tests
