(* The verifyd server stack: codec/framing fuzz (no spec loaded — the
   protocol module is deliberately self-contained), the obligation
   registry, and a live daemon exercised end-to-end over its socket —
   including the guarantees the ISSUE pins down: concurrent clients get
   verdicts byte-identical to a single-client (and to a local) run,
   Limit_exceeded comes back as a structured timeout verdict without
   tearing the connection down, and a drained daemon removes its
   socket file. *)

module P = Server.Protocol
module Exit = Telemetry.Cli.Exit

(* ------------------------------------------------------------------ *)
(* Generators *)

let gen_byte_string =
  QCheck.Gen.(string_size ~gen:(map char_of_int (int_bound 255)) (int_bound 24))

let gen_name = QCheck.Gen.(string_size ~gen:printable (int_bound 12))

let gen_style = QCheck.Gen.oneofl [ P.Original; P.Variant ]

(* finite, exactly-representable-enough floats; the codec promises exact
   round-trips for every finite float (hex notation) *)
let gen_float =
  QCheck.Gen.(
    map2
      (fun a b -> float_of_int a /. float_of_int (b + 1))
      (int_range (-10000) 10000) (int_bound 999))

let gen_request =
  QCheck.Gen.(
    oneof
      [
        oneofl [ P.Ping; P.Status; P.Metrics; P.Shutdown ];
        map (fun style -> P.Lint { style }) gen_style;
        map (fun style -> P.Secrecy { style }) gen_style;
        map4
          (fun style (only, certify) negative extensions ->
            P.Verify { style; only; negative; extensions; certify })
          gen_style
          (pair (list_size (int_bound 4) gen_name) bool)
          bool bool;
        map (fun cert -> P.Check { cert }) gen_byte_string;
        map3
          (fun src steps dl ->
            P.Eval
              {
                src;
                step_limit = (if steps = 0 then None else Some steps);
                deadline_s = (if dl <= 0. then None else Some dl);
              })
          gen_byte_string (int_bound 5000) gen_float;
      ])

let gen_case =
  QCheck.Gen.(
    map4
      (fun c_name st c_splits c_steps ->
        { P.c_name; c_status = st; c_splits; c_steps })
      gen_name
      (oneofl [ "proved"; "refuted"; "unknown" ])
      small_nat small_nat)

let gen_verdict =
  QCheck.Gen.(
    map4
      (fun v_name v_proved v_negative (v_cases, v_text) ->
        { P.v_name; v_proved; v_negative; v_cases; v_text })
      gen_name bool bool
      (pair (list_size (int_bound 5) gen_case) gen_byte_string))

let gen_response =
  QCheck.Gen.(
    oneof
      [
        map2 (fun pid uptime_s -> P.Pong { pid; uptime_s }) small_nat gen_float;
        map4
          (fun uptime_s (jobs, requests) (in_flight, styles)
               (dedup_hits, dedup_misses) ->
            P.Rstatus
              {
                uptime_s;
                jobs;
                requests;
                in_flight;
                dedup_hits;
                dedup_misses;
                styles;
              })
          gen_float (pair small_nat small_nat)
          (pair small_nat (list_size (int_bound 2) gen_style))
          (pair small_nat small_nat);
        map3
          (fun counters gauges histograms ->
            P.Rmetrics { counters; gauges; histograms })
          (list_size (int_bound 4) (pair gen_name small_nat))
          (list_size (int_bound 4) (pair gen_name gen_float))
          (list_size (int_bound 3)
             (pair gen_name (array_size (int_bound 6) gen_float)));
        map (fun v -> P.Rverdict v) gen_verdict;
        map3
          (fun (invariants, cases) (splits, steps) text ->
            P.Rsummary { invariants; cases; splits; steps; text })
          (pair (pair small_nat small_nat) (pair small_nat small_nat))
          (pair small_nat small_nat)
          gen_byte_string;
        map3
          (fun (errors, warnings) (infos, cached) text ->
            P.Rlint { errors; warnings; infos; cached; text })
          (pair small_nat small_nat)
          (pair small_nat bool) gen_byte_string;
        map3
          (fun verdict (clauses, facts) (rounds, (resolutions, cached)) ->
            P.Rsecrecy { verdict; clauses; facts; rounds; resolutions; cached })
          (oneofl [ "secure"; "leaks"; "inconclusive"; "n/a" ])
          (pair small_nat small_nat)
          (pair small_nat (pair small_nat bool));
        map (fun cert -> P.Rcert { cert }) gen_byte_string;
        map3
          (fun (ok, obligations) steps errors ->
            P.Rcheck { ok; obligations; steps; errors })
          (pair bool small_nat) small_nat
          (list_size (int_bound 3) (pair gen_name gen_byte_string));
        map (fun text -> P.Reval { text }) gen_byte_string;
        map3
          (fun limit steps name -> P.Rtimeout { limit; steps; name })
          (oneof
             [
               map (fun n -> `Steps n) small_nat;
               map (fun d -> `Deadline d) gen_float;
             ])
          small_nat gen_name;
        map2 (fun code msg -> P.Rerror { code; msg }) gen_name gen_byte_string;
        map (fun exit_code -> P.Done { exit_code }) (int_bound 5);
      ])

let arb_request = QCheck.make ~print:P.encode_request gen_request
let arb_response = QCheck.make ~print:P.encode_response gen_response

(* ------------------------------------------------------------------ *)
(* Codec properties *)

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request codec round-trips" ~count:500 arb_request
    (fun req -> P.decode_request (P.encode_request req) = Ok req)

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response codec round-trips" ~count:500 arb_response
    (fun resp -> P.decode_response (P.encode_response resp) = Ok resp)

let prop_garbage_request_never_raises =
  QCheck.Test.make ~name:"garbage payloads are rejected, never raise"
    ~count:500
    (QCheck.make QCheck.Gen.(string_size ~gen:(map char_of_int (int_bound 255)) (int_bound 64)))
    (fun s ->
      match P.decode_request s, P.decode_response s with
      | (Ok _ | Error _), (Ok _ | Error _) -> true)

(* Request ids ride as an optional trailing [(id …)] field: decoders
   ignore unknown fields, so a tagged frame still round-trips to the
   same request, and [request_id] recovers the tag exactly. *)
let prop_request_id_roundtrip =
  QCheck.Test.make ~name:"request id tags round-trip and stay invisible"
    ~count:300
    (QCheck.make QCheck.Gen.(pair gen_request gen_byte_string))
    (fun (req, id) ->
      let tagged = P.encode_request ~id req in
      P.request_id tagged = Some id
      && P.decode_request tagged = Ok req
      && P.request_id (P.encode_request req) = None)

(* ------------------------------------------------------------------ *)
(* Framing properties *)

let feed_in_chunks dec bytes sizes =
  let n = Bytes.length bytes in
  let off = ref 0 in
  let sizes = if sizes = [] then [ n ] else sizes in
  let k = ref 0 in
  let nsizes = List.length sizes in
  while !off < n do
    let want = max 1 (List.nth sizes (!k mod nsizes)) in
    let len = min want (n - !off) in
    P.Frame.feed dec bytes !off len;
    off := !off + len;
    incr k
  done

let drain dec =
  let rec go acc =
    match P.Frame.next dec with
    | Ok (Some p) -> go (p :: acc)
    | Ok None -> List.rev acc, None
    | Error e -> List.rev acc, Some e
  in
  go []

let prop_framing_roundtrip =
  QCheck.Test.make
    ~name:"frames survive arbitrary re-chunking of the byte stream"
    ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_bound 6) (make gen_byte_string))
        (list_of_size (Gen.int_bound 5) small_nat))
    (fun (payloads, sizes) ->
      let buf = Buffer.create 256 in
      List.iter (fun p -> P.Frame.encode buf p) payloads;
      let dec = P.Frame.decoder () in
      feed_in_chunks dec (Buffer.to_bytes buf) sizes;
      let frames, err = drain dec in
      err = None && frames = payloads)

let prop_framing_truncated =
  QCheck.Test.make
    ~name:"a truncated final frame yields its predecessors then Ok None"
    ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_bound 4) (make gen_byte_string))
        (make gen_byte_string))
    (fun (payloads, last) ->
      let buf = Buffer.create 256 in
      List.iter (fun p -> P.Frame.encode buf p) payloads;
      let whole = Buffer.length buf in
      P.Frame.encode buf last;
      let cut = whole + 1 + Random.int (Buffer.length buf - whole) in
      let cut = min cut (Buffer.length buf - 1) in
      let dec = P.Frame.decoder () in
      P.Frame.feed dec (Buffer.to_bytes buf) 0 cut;
      let frames, err = drain dec in
      err = None
      && (frames = payloads
         || (* the cut may fall after the last full frame's end *)
         frames = payloads @ [ last ])
      && P.Frame.buffered dec >= 0)

let prop_framing_oversized =
  QCheck.Test.make
    ~name:"an oversized length is a sticky protocol error, not an exception"
    ~count:200
    QCheck.(pair (make gen_byte_string) small_nat)
    (fun (junk, extra) ->
      let max_frame = 1024 in
      let buf = Buffer.create 64 in
      let oversized = max_frame + 1 + extra in
      Buffer.add_char buf (Char.chr ((oversized lsr 24) land 0xff));
      Buffer.add_char buf (Char.chr ((oversized lsr 16) land 0xff));
      Buffer.add_char buf (Char.chr ((oversized lsr 8) land 0xff));
      Buffer.add_char buf (Char.chr (oversized land 0xff));
      Buffer.add_string buf junk;
      let dec = P.Frame.decoder ~max_frame () in
      P.Frame.feed dec (Buffer.to_bytes buf) 0 (Buffer.length buf);
      match P.Frame.next dec with
      | Error _ -> (
        (* poisoned: stays an error even after more (valid-looking) bytes *)
        P.Frame.feed dec (Bytes.of_string (P.Frame.to_string "ok")) 0
          (String.length (P.Frame.to_string "ok"));
        match P.Frame.next dec with Error _ -> true | Ok _ -> false)
      | Ok _ -> false)

let prop_framing_garbage_never_raises =
  QCheck.Test.make ~name:"random bytes never make the decoder raise"
    ~count:300
    (QCheck.make
       QCheck.Gen.(string_size ~gen:(map char_of_int (int_bound 255)) (int_bound 128)))
    (fun s ->
      let dec = P.Frame.decoder ~max_frame:4096 () in
      P.Frame.feed dec (Bytes.of_string s) 0 (String.length s);
      let rec spin n = if n = 0 then true else
        match P.Frame.next dec with
        | Ok (Some _) -> spin (n - 1)
        | Ok None | Error _ -> true
      in
      spin 64)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_dedup () =
  let r = Server.Registry.create () in
  let spawned = ref 0 in
  let spawn v () =
    incr spawned;
    Sched.Task.of_result v
  in
  let t1, how1 = Server.Registry.find_or_submit r ~key:"a" (spawn 1) in
  Alcotest.(check int) "spawned once" 1 !spawned;
  Alcotest.(check bool) "fresh" true (how1 = `Fresh);
  let t2, how2 = Server.Registry.find_or_submit r ~key:"a" (spawn 99) in
  Alcotest.(check int) "not respawned" 1 !spawned;
  Alcotest.(check bool) "cached (already resolved)" true (how2 = `Cached);
  Alcotest.(check bool) "same future" true (t1 == t2);
  Alcotest.(check (option int)) "value" (Some 1) (Sched.Task.poll t2);
  (* an unresolved entry dedups as `Inflight *)
  let pending : int Sched.Task.t = Sched.Task.create () in
  let t3, _ = Server.Registry.find_or_submit r ~key:"b" (fun () -> pending) in
  let t4, how4 = Server.Registry.find_or_submit r ~key:"b" (fun () -> Sched.Task.of_result 0) in
  Alcotest.(check bool) "inflight" true (how4 = `Inflight);
  Alcotest.(check bool) "shared inflight future" true (t3 == t4);
  Alcotest.(check int) "in_flight_count" 1 (Server.Registry.in_flight_count r)

let test_registry_eviction () =
  let r = Server.Registry.create ~capacity:2 () in
  let pending : int Sched.Task.t = Sched.Task.create () in
  ignore (Server.Registry.find_or_submit r ~key:"live" (fun () -> pending));
  ignore (Server.Registry.find_or_submit r ~key:"r1" (fun () -> Sched.Task.of_result 1));
  ignore (Server.Registry.find_or_submit r ~key:"r2" (fun () -> Sched.Task.of_result 2));
  ignore (Server.Registry.find_or_submit r ~key:"r3" (fun () -> Sched.Task.of_result 3));
  Alcotest.(check bool) "capacity respected" true (Server.Registry.size r <= 2 + 1);
  (* the in-flight entry must never be evicted *)
  let spawned = ref false in
  let t, _ =
    Server.Registry.find_or_submit r ~key:"live" (fun () ->
        spawned := true;
        Sched.Task.of_result 0)
  in
  Alcotest.(check bool) "in-flight entry survived eviction" false !spawned;
  Alcotest.(check bool) "still the same future" true (t == pending)

let test_registry_requesters () =
  let r = Server.Registry.create () in
  let pending : int Sched.Task.t = Sched.Task.create () in
  ignore
    (Server.Registry.find_or_submit ~requester:"a" r ~key:"k" (fun () ->
         pending));
  ignore
    (Server.Registry.find_or_submit ~requester:"b" r ~key:"k" (fun () ->
         Sched.Task.of_result 0));
  Alcotest.(check (list string))
    "newest first" [ "b"; "a" ]
    (Server.Registry.requesters r ~key:"k");
  (* re-attaching an id moves it to the front instead of duplicating *)
  ignore
    (Server.Registry.find_or_submit ~requester:"a" r ~key:"k" (fun () ->
         Sched.Task.of_result 0));
  Alcotest.(check (list string))
    "deduplicated" [ "a"; "b" ]
    (Server.Registry.requesters r ~key:"k");
  (* the per-entry list is capped *)
  for i = 0 to 19 do
    ignore
      (Server.Registry.find_or_submit
         ~requester:(Printf.sprintf "r%d" i)
         r ~key:"k"
         (fun () -> Sched.Task.of_result 0))
  done;
  let ids = Server.Registry.requesters r ~key:"k" in
  Alcotest.(check int) "capped at 8" 8 (List.length ids);
  Alcotest.(check string) "newest survives the cap" "r19" (List.hd ids);
  Alcotest.(check (list string))
    "unknown key" []
    (Server.Registry.requesters r ~key:"nope")

let test_exit_codes () =
  let codes =
    [
      Exit.ok; Exit.failure; Exit.usage; Exit.lint_gate; Exit.cert_rejected;
      Exit.timeout;
    ]
  in
  Alcotest.(check (list int)) "documented values" [ 0; 1; 2; 3; 4; 5 ] codes

(* ------------------------------------------------------------------ *)
(* Live daemon *)

let daemon_seq = ref 0

let with_daemon ?(jobs = 2) ?(config_f = fun c -> c) f =
  incr daemon_seq;
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "eqtls-vd-%d-%d.sock" (Unix.getpid ()) !daemon_seq)
  in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let config =
    config_f
      {
        (Server.Daemon.default_config ~socket) with
        jobs;
        idle_timeout_s = 60.;
        handle_signals = false;
      }
  in
  let d = Domain.spawn (fun () -> Server.Daemon.run config) in
  let rec wait_up n =
    if n = 0 then failwith "verifyd did not come up"
    else
      match Server.Client.connect ~socket with
      | c -> Server.Client.close c
      | exception Unix.Unix_error _ ->
        Unix.sleepf 0.05;
        wait_up (n - 1)
  in
  wait_up 400;
  Fun.protect
    ~finally:(fun () ->
      (try
         ignore
           (Server.Client.with_client ~socket (fun c ->
                Server.Client.request c P.Shutdown ~on_response:(fun _ -> ())))
       with _ -> ());
      Domain.join d;
      (* the default config points the flight recorder next to the
         socket; don't leave post-mortems of expected timeouts in /tmp *)
      try Unix.unlink (socket ^ ".flight.json") with Unix.Unix_error _ -> ())
    (fun () -> f socket)

let verify_inv1 =
  P.Verify
    {
      style = P.Original;
      only = [ "inv1" ];
      negative = false;
      extensions = false;
      certify = false;
    }

let fingerprints_of responses =
  List.filter_map
    (function P.Rverdict v -> Some (P.verdict_fingerprint v) | _ -> None)
    responses

let local_inv1_fingerprint =
  lazy
    (let env = Tls.Model.env Tls.Model.Original in
     let proof = Proofs.Tls_invariants.find Tls.Model.Original "inv1" in
     Core.Report.result_fingerprint (Proofs.Tls_invariants.run env proof))

let test_live_verify_identity () =
  with_daemon @@ fun socket ->
  (* single client, twice: second run is served from the resident result
     cache and must be byte-identical *)
  let run () =
    Server.Client.with_client ~socket (fun c ->
        Server.Client.request_collect c verify_inv1)
  in
  let r1, code1 = run () in
  let r2, code2 = run () in
  Alcotest.(check int) "first exit ok" Exit.ok code1;
  Alcotest.(check int) "second exit ok" Exit.ok code2;
  let fp1 = fingerprints_of r1 and fp2 = fingerprints_of r2 in
  Alcotest.(check int) "one verdict" 1 (List.length fp1);
  Alcotest.(check (list string)) "warm repeat byte-identical" fp1 fp2;
  Alcotest.(check string) "identical to the local standalone run"
    (Lazy.force local_inv1_fingerprint) (List.hd fp1);
  (* N concurrent clients: all verdict streams byte-identical *)
  let domains = List.init 3 (fun _ -> Domain.spawn run) in
  let results = List.map Domain.join domains in
  List.iter
    (fun (resps, code) ->
      Alcotest.(check int) "concurrent exit ok" Exit.ok code;
      Alcotest.(check (list string)) "concurrent stream byte-identical" fp1
        (fingerprints_of resps))
    results

let looping_module =
  "mod LOOP {\n  [ N ]\n  op z : -> N .\n  op f : N -> N .\n  var X : N .\n\
  \  eq f(X) = f(f(X)) .\n}\nred in LOOP : f(z) .\n"

let test_live_timeout_keeps_connection () =
  with_daemon ~jobs:1 @@ fun socket ->
  Server.Client.with_client ~socket @@ fun c ->
  let resps, code =
    Server.Client.request_collect c
      (P.Eval { src = looping_module; step_limit = Some 500; deadline_s = None })
  in
  Alcotest.(check int) "timeout exit code" Exit.timeout code;
  let timeouts =
    List.filter_map
      (function
        | P.Rtimeout { limit = `Steps n; steps; _ } -> Some (n, steps)
        | _ -> None)
      resps
  in
  Alcotest.(check (list (pair int int)))
    "structured timeout verdict" [ (500, 500) ] timeouts;
  (* the same connection keeps working *)
  let resps, code = Server.Client.request_collect c P.Ping in
  Alcotest.(check int) "ping after timeout" Exit.ok code;
  Alcotest.(check bool) "pong received" true
    (List.exists (function P.Pong _ -> true | _ -> false) resps)

let test_live_protocol_error () =
  with_daemon ~jobs:1 @@ fun socket ->
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (ADDR_UNIX socket);
  (* a well-framed payload that is not a request *)
  P.Frame.write fd "this is (not a request";
  let rec read_until_done acc =
    match P.Frame.read fd with
    | Ok (Some payload) -> (
      match P.decode_response payload with
      | Ok (P.Done { exit_code }) -> List.rev acc, exit_code
      | Ok r -> read_until_done (r :: acc)
      | Error e -> failwith e)
    | Ok None -> failwith "eof before Done"
    | Error e -> failwith e
  in
  let resps, code = read_until_done [] in
  Alcotest.(check int) "usage exit over the wire" Exit.usage code;
  Alcotest.(check bool) "protocol error response" true
    (List.exists
       (function P.Rerror { code = "protocol"; _ } -> true | _ -> false)
       resps);
  (* the daemon survives a hostile client *)
  let resps2, code2 =
    Server.Client.with_client ~socket (fun c ->
        Server.Client.request_collect c P.Ping)
  in
  Alcotest.(check int) "daemon alive" Exit.ok code2;
  Alcotest.(check bool) "pong" true
    (List.exists (function P.Pong _ -> true | _ -> false) resps2)

let test_live_secrecy_cached () =
  with_daemon ~jobs:1 @@ fun socket ->
  Server.Client.with_client ~socket @@ fun c ->
  let run () =
    Server.Client.request_collect c (P.Secrecy { style = P.Original })
  in
  let pick resps =
    List.find_map
      (function
        | P.Rsecrecy { verdict; clauses; facts; rounds; resolutions; cached }
          ->
          Some (verdict, clauses, facts, rounds, resolutions, cached)
        | _ -> None)
      resps
  in
  let r1, code1 = run () in
  let r2, code2 = run () in
  match (pick r1, pick r2) with
  | Some (v1, c1, f1, ro1, re1, cached1), Some (v2, c2, f2, ro2, re2, cached2)
    ->
    Alcotest.(check int) "first exit ok" Exit.ok code1;
    Alcotest.(check int) "second exit ok" Exit.ok code2;
    Alcotest.(check string) "secure verdict" "secure" v1;
    Alcotest.(check bool) "cold first query" false cached1;
    Alcotest.(check bool) "warm second query" true cached2;
    Alcotest.(check (list int)) "identical saturation stats"
      [ c1; f1; ro1; re1 ] [ c2; f2; ro2; re2 ];
    Alcotest.(check string) "identical verdict" v1 v2
  | _ -> Alcotest.fail "missing secrecy-report response"

let test_live_certify_roundtrip () =
  with_daemon ~jobs:1 @@ fun socket ->
  Server.Client.with_client ~socket @@ fun c ->
  let resps, code =
    Server.Client.request_collect c
      (P.Verify
         {
           style = P.Original;
           only = [ "inv1" ];
           negative = false;
           extensions = false;
           certify = true;
         })
  in
  Alcotest.(check int) "verify exit ok" Exit.ok code;
  let cert =
    match
      List.find_map (function P.Rcert { cert } -> Some cert | _ -> None) resps
    with
    | Some s -> s
    | None -> Alcotest.fail "no certificate response"
  in
  Alcotest.(check bool) "certificate non-empty" true (String.length cert > 0);
  (* the certificate the daemon emits is accepted by its own checker *)
  let resps2, code2 = Server.Client.request_collect c (P.Check { cert }) in
  Alcotest.(check int) "check exit ok" Exit.ok code2;
  (match
     List.find_map
       (function
         | P.Rcheck { ok; obligations; steps; errors } ->
           Some (ok, obligations, steps, errors)
         | _ -> None)
       resps2
   with
  | Some (ok, obligations, steps, errors) ->
    List.iter
      (fun (path, msg) -> Printf.eprintf "cert error %s: %s\n%!" path msg)
      errors;
    Alcotest.(check bool) "certificate checks" true ok;
    Alcotest.(check bool) "has obligations" true (obligations > 0);
    Alcotest.(check bool) "replayed steps" true (steps > 0)
  | None -> Alcotest.fail "no check-report response");
  (* and it parses as a certificate locally *)
  match Certify.Cert.of_string cert with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "certificate does not parse: %s" e

let test_live_shutdown_removes_socket () =
  with_daemon ~jobs:1 @@ fun socket ->
  let _, code =
    Server.Client.with_client ~socket (fun c ->
        Server.Client.request_collect c P.Shutdown)
  in
  Alcotest.(check int) "shutdown acknowledged" Exit.ok code;
  let rec wait_gone n =
    if not (Sys.file_exists socket) then ()
    else if n = 0 then Alcotest.fail "socket file not removed after drain"
    else begin
      Unix.sleepf 0.05;
      wait_gone (n - 1)
    end
  in
  wait_gone 200

(* ------------------------------------------------------------------ *)
(* Observability: HTTP sidecar, flight recorder, request tracing *)

(* A daemon whose config binds an ephemeral HTTP port; the actually-bound
   port is announced before the unix socket is claimed, so once
   [with_daemon]'s connect probe succeeds the atomic is set. *)
let with_obs_daemon ?(jobs = 2) ?(config_f = fun c -> c) f =
  let port = Atomic.make 0 in
  with_daemon ~jobs
    ~config_f:(fun c ->
      config_f
        {
          c with
          Server.Daemon.metrics_port = Some 0;
          announce_metrics_port = (fun p -> Atomic.set port p);
        })
    (fun socket ->
      let p = Atomic.get port in
      if p <= 0 then Alcotest.fail "metrics port was not announced";
      f socket p)

let http_get ~port path =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
  let req =
    Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
      path
  in
  let _ = Unix.write_substring fd req 0 (String.length req) in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec slurp () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      slurp ()
  in
  slurp ();
  let s = Buffer.contents buf in
  let code =
    try int_of_string (String.sub s (String.index s ' ' + 1) 3)
    with _ -> Alcotest.failf "unparsable HTTP response: %S" s
  in
  let n = String.length s in
  let rec body i =
    if i + 3 >= n then ""
    else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
            && s.[i + 3] = '\n'
    then String.sub s (i + 4) (n - i - 4)
    else body (i + 1)
  in
  code, body 0

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_live_http_endpoints () =
  with_obs_daemon ~jobs:1 @@ fun socket port ->
  (* serve one tagged campaign request so latency histograms have data *)
  let _, code =
    Server.Client.with_client ~socket (fun c ->
        Server.Client.request_collect ~id:"http-req" c verify_inv1)
  in
  Alcotest.(check int) "verify over socket ok" Exit.ok code;
  let mcode, mbody = http_get ~port "/metrics" in
  Alcotest.(check int) "/metrics 200" 200 mcode;
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "/metrics contains %S" needle)
        true (contains ~needle mbody))
    [
      "# TYPE server_requests counter";
      "server_requests_total";
      "# TYPE server_request_latency_seconds histogram";
      "server_request_latency_seconds_bucket{le=";
      "server_request_latency_seconds_bucket{type=\"verify\",le=";
      "le=\"+Inf\"";
      "server_request_latency_seconds_count";
      "server_uptime_s";
    ];
  Alcotest.(check bool) "/metrics ends with # EOF" true
    (String.length mbody >= 6
    && String.sub mbody (String.length mbody - 6) 6 = "# EOF\n");
  let hcode, hbody = http_get ~port "/healthz" in
  Alcotest.(check int) "/healthz 200" 200 hcode;
  Alcotest.(check string) "/healthz body" "ok\n" hbody;
  let scode, sbody = http_get ~port "/statusz" in
  Alcotest.(check int) "/statusz 200" 200 scode;
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "/statusz contains %S" needle)
        true (contains ~needle sbody))
    [ "\"draining\":false"; "\"requests_served\":"; "\"dedup_hits\":" ];
  let ncode, _ = http_get ~port "/no-such" in
  Alcotest.(check int) "unknown target 404" 404 ncode

let test_live_healthz_drain_flip () =
  with_obs_daemon ~jobs:1 @@ fun socket port ->
  let hcode, _ = http_get ~port "/healthz" in
  Alcotest.(check int) "healthy while serving" 200 hcode;
  (* hold the drain open with backpressure: an eval whose response
     stream far exceeds the socket buffer, on a connection we refuse to
     read — the daemon cannot flush it, so the connection never counts
     as drained and the daemon sits in its draining state (HTTP listener
     still answering) until we drain the stream ourselves *)
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (ADDR_UNIX socket);
  let src = Buffer.create (1 lsl 20) in
  Buffer.add_string src "mod M {\n  [ N ]\n  op z : -> N .\n}\n";
  for _ = 1 to 30_000 do
    Buffer.add_string src "red in M : z .\n"
  done;
  P.Frame.write fd
    (P.encode_request
       (P.Eval
          { src = Buffer.contents src; step_limit = None; deadline_s = None }));
  (* wait for the eval to have run (it executes on the event loop) *)
  let rec await_served n =
    if n = 0 then Alcotest.fail "eval was never served"
    else
      let _, body = http_get ~port "/statusz" in
      if not (contains ~needle:"\"requests_served\":1" body) then begin
        Unix.sleepf 0.05;
        await_served (n - 1)
      end
  in
  await_served 100;
  let _, code =
    Server.Client.with_client ~socket (fun c ->
        Server.Client.request_collect c P.Shutdown)
  in
  Alcotest.(check int) "shutdown acknowledged" Exit.ok code;
  let rec await_503 n =
    if n = 0 then Alcotest.fail "healthz never flipped to 503"
    else
      match http_get ~port "/healthz" with
      | 503, body ->
        Alcotest.(check string) "draining body" "draining\n" body
      | _ ->
        Unix.sleepf 0.05;
        await_503 (n - 1)
  in
  await_503 40;
  (* now drain the response stream; once flushed the daemon finishes *)
  let dones = ref 0 in
  let rec read_all () =
    match P.Frame.read fd with
    | Ok (Some payload) ->
      (match P.decode_response payload with
      | Ok (P.Done _) -> incr dones
      | _ -> ());
      read_all ()
    | Ok None -> ()
    | Error _ -> ()
  in
  read_all ();
  Alcotest.(check int) "the in-flight eval was answered during drain" 1 !dones

let test_live_flight_on_timeout () =
  let flight =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "eqtls-flight-%d.json" (Unix.getpid ()))
  in
  (try Unix.unlink flight with Unix.Unix_error _ -> ());
  Fun.protect
    ~finally:(fun () ->
      try Unix.unlink flight with Unix.Unix_error _ -> ())
  @@ fun () ->
  ( with_daemon ~jobs:1
      ~config_f:(fun c -> { c with Server.Daemon.flight_path = Some flight })
  @@ fun socket ->
    let _, code =
      Server.Client.with_client ~socket (fun c ->
          Server.Client.request_collect c
            (P.Eval
               { src = looping_module; step_limit = Some 500; deadline_s = None }))
    in
    Alcotest.(check int) "timeout exit" Exit.timeout code;
    (* the dump is written at the catch site, before the verdict is
       streamed back — by now the file must exist *)
    Alcotest.(check bool) "flight dump written" true (Sys.file_exists flight);
    let dump = In_channel.with_open_bin flight In_channel.input_all in
    Alcotest.(check bool) "dump is a JSON object" true
      (String.length dump > 0 && dump.[0] = '{');
    Alcotest.(check bool) "dump names the reason" true
      (contains ~needle:"limit-exceeded: eval" dump) )

let test_live_obs_fingerprint_identity () =
  (* every observability surface on at once must not perturb verdicts:
     the remote fingerprint stays byte-identical to the local run *)
  let tmp = Filename.get_temp_dir_name () in
  let log = Filename.concat tmp (Printf.sprintf "eqtls-obs-%d.log" (Unix.getpid ())) in
  (try Unix.unlink log with Unix.Unix_error _ -> ());
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Log.set_level None;
      (try Unix.unlink log with Unix.Unix_error _ -> ());
      try Unix.unlink (log ^ ".1") with Unix.Unix_error _ -> ())
  @@ fun () ->
  ( with_obs_daemon ~jobs:2
      ~config_f:(fun c ->
        {
          c with
          Server.Daemon.log_file = Some log;
          log_level = Some Telemetry.Log.Debug;
          slow_ms = 0.000001;
        })
  @@ fun socket _port ->
    let resps, code =
      Server.Client.with_client ~socket (fun c ->
          Server.Client.request_collect ~id:"fp-req" c verify_inv1)
    in
    Alcotest.(check int) "exit ok" Exit.ok code;
    match fingerprints_of resps with
    | [ fp ] ->
      Alcotest.(check string) "fingerprint identical with observability on"
        (Lazy.force local_inv1_fingerprint) fp
    | fps -> Alcotest.failf "expected one verdict, got %d" (List.length fps) );
  (* the structured log carried the request id end to end *)
  let logged = In_channel.with_open_bin log In_channel.input_all in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "log contains %S" needle)
        true (contains ~needle logged))
    (* slow_ms is set below every real latency, so the request must have
       been classified slow — the slow log rides the same fields *)
    [ "\"ev\":\"daemon_start\""; "\"id\":\"fp-req\""; "\"ev\":\"slow_request\"" ]

let test_live_request_spans () =
  (* two tagged requests through a live daemon: the Perfetto snapshot
     must be filterable to each request's spans, and the attribution must
     cross the pool boundary down into proof work *)
  Telemetry.Probe.reset ();
  Telemetry.Probe.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Probe.set_enabled false;
      Telemetry.Probe.reset ())
  @@ fun () ->
  ( with_daemon ~jobs:2 @@ fun socket ->
    let run id req =
      Server.Client.with_client ~socket (fun c ->
          Server.Client.request_collect ~id c req)
    in
    let _, code_a = run "req-A" verify_inv1 in
    let _, code_b = run "req-B" (P.Secrecy { style = P.Original }) in
    Alcotest.(check int) "verify ok" Exit.ok code_a;
    Alcotest.(check int) "secrecy ok" Exit.ok code_b );
  (* daemon and its pool have joined: snapshot is quiescent *)
  let snap = Telemetry.Probe.snapshot () in
  let of_req id =
    List.filter (fun s -> s.Telemetry.Probe.sp_req = id) snap.sn_spans
  in
  let spans_a = of_req "req-A" and spans_b = of_req "req-B" in
  Alcotest.(check bool) "req-A has spans" true (spans_a <> []);
  Alcotest.(check bool) "req-B has spans" true (spans_b <> []);
  Alcotest.(check bool) "req-A attribution crosses the pool" true
    (List.exists (fun s -> s.Telemetry.Probe.sp_cat <> "server") spans_a);
  Alcotest.(check bool) "req-B attribution crosses the pool" true
    (List.exists (fun s -> s.Telemetry.Probe.sp_cat <> "server") spans_b)

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  List.map
    (QCheck_alcotest.to_alcotest ?verbose:None ?long:None)
    [
      prop_request_roundtrip;
      prop_response_roundtrip;
      prop_garbage_request_never_raises;
      prop_request_id_roundtrip;
      prop_framing_roundtrip;
      prop_framing_truncated;
      prop_framing_oversized;
      prop_framing_garbage_never_raises;
    ]

let tests =
  qcheck_tests
  @ [
      Alcotest.test_case "registry dedups against one shared future" `Quick
        test_registry_dedup;
      Alcotest.test_case "registry never evicts in-flight entries" `Quick
        test_registry_eviction;
      Alcotest.test_case "registry remembers who asked, capped and deduped"
        `Quick test_registry_requesters;
      Alcotest.test_case "exit codes are the documented values" `Quick
        test_exit_codes;
      Alcotest.test_case "live: concurrent verdicts byte-identical" `Slow
        test_live_verify_identity;
      Alcotest.test_case "live: timeout is a verdict, not a hangup" `Slow
        test_live_timeout_keeps_connection;
      Alcotest.test_case "live: protocol errors answered, daemon survives"
        `Slow test_live_protocol_error;
      Alcotest.test_case "live: secrecy served and cached" `Slow
        test_live_secrecy_cached;
      Alcotest.test_case "live: certificate round-trips through check" `Slow
        test_live_certify_roundtrip;
      Alcotest.test_case "live: drained daemon removes its socket" `Slow
        test_live_shutdown_removes_socket;
      Alcotest.test_case "live: /metrics, /healthz, /statusz answer" `Slow
        test_live_http_endpoints;
      Alcotest.test_case "live: /healthz flips to 503 mid-drain" `Slow
        test_live_healthz_drain_flip;
      Alcotest.test_case "live: Limit_exceeded dumps the flight recorder"
        `Slow test_live_flight_on_timeout;
      Alcotest.test_case
        "live: verdict fingerprint identical with observability on" `Slow
        test_live_obs_fingerprint_identity;
      Alcotest.test_case "live: spans filterable per request id" `Slow
        test_live_request_spans;
    ]

let suite = "server", tests
