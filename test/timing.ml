(* Per-suite timing footer for the aggregated runner.

   The runner wraps every test case to accumulate wall time per suite.
   Suites that registered but ran zero cases (an Alcotest name filter, or
   a suite that registers none) must not enter the slowest-first ordering:
   their 0.000s rows interleave with genuinely fast suites and bury the
   ones that actually ran.  [order] splits them out; [render] is the
   exact footer text, kept pure so the regression tests can pin it. *)

type entry = {
  e_name : string;
  e_runs : int;  (* test cases that executed (pass or fail) *)
  e_ns : int;  (* total monotonic nanoseconds across those cases *)
}

(* Slowest-first over the suites that ran at least one case, stable so
   equal totals keep registration order; never-run suites separately, in
   registration order. *)
let order entries =
  let ran, skipped = List.partition (fun e -> e.e_runs > 0) entries in
  ( List.stable_sort (fun a b -> compare b.e_ns a.e_ns) ran,
    List.map (fun e -> e.e_name) skipped )

let render entries =
  let ran, skipped = order entries in
  let b = Buffer.create 256 in
  Buffer.add_string b "Per-suite timing (slowest first):\n";
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "  %-20s %8.3fs\n" e.e_name (float_of_int e.e_ns /. 1e9)))
    ran;
  if skipped <> [] then
    Buffer.add_string b
      (Printf.sprintf "  (no tests run: %s)\n" (String.concat ", " skipped));
  Buffer.contents b
