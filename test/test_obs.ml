(* The observability layer in isolation: Metrics histogram edge cases
   (zero-observation export, log2 bucket boundaries, merge across
   domains), the OpenMetrics renderer over hand-built snapshots, the
   minimal HTTP codec, the structured event log and the flight
   recorder.  Everything here is pure or file-local — the live daemon
   surfaces are exercised in [Test_server]. *)

module Metrics = Telemetry.Metrics
module Obs = Telemetry.Obs
module Log = Telemetry.Log
module Flight = Telemetry.Flight

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let count_occurrences ~needle hay =
  let nl = String.length needle in
  let rec go i acc =
    if i + nl > String.length hay then acc
    else if String.sub hay i nl = needle then go (i + nl) (acc + 1)
    else go (i + 1) acc
  in
  if nl = 0 then 0 else go 0 0

(* ------------------------------------------------------------------ *)
(* Metrics: bucket geometry *)

let prop_bucket_boundaries =
  QCheck.Test.make ~name:"log2 bucket boundaries are exact and inclusive"
    ~count:200
    (QCheck.make QCheck.Gen.(int_bound (Metrics.nbuckets - 1)))
    (fun i ->
      let bound = Metrics.bucket_bound_ns i in
      Metrics.bucket_of_ns bound = i
      && Metrics.bucket_of_ns (bound + 1) = i + 1
      && (i = 0 || Metrics.bucket_of_ns (Metrics.bucket_bound_ns (i - 1) + 1) = i))

let test_bucket_edges () =
  Alcotest.(check int) "zero lands in the first bucket" 0
    (Metrics.bucket_of_ns 0);
  Alcotest.(check int) "negative clamps to the first bucket" 0
    (Metrics.bucket_of_ns (-1));
  Alcotest.(check int) "beyond the last bound is overflow" Metrics.nbuckets
    (Metrics.bucket_of_ns (Metrics.bucket_bound_ns (Metrics.nbuckets - 1) + 1));
  Alcotest.(check int) "max_int is overflow" Metrics.nbuckets
    (Metrics.bucket_of_ns max_int)

(* Observations split across domains must merge to the same view as the
   same observations recorded by one domain: snapshot merging is a plain
   per-bucket sum, independent of partition and interleaving. *)
let merge_uid = ref 0

let prop_merge_across_domains =
  QCheck.Test.make ~name:"domain-split observations merge to the same view"
    ~count:30
    (QCheck.make QCheck.Gen.(list_size (int_bound 40) (int_bound 100_000)))
    (fun raw ->
      incr merge_uid;
      let split =
        Metrics.histogram (Printf.sprintf "obst.merge%d.split" !merge_uid)
      in
      let whole =
        Metrics.histogram (Printf.sprintf "obst.merge%d.whole" !merge_uid)
      in
      let ns = List.map (fun x -> (x * 7919) + 1) raw in
      let evens = List.filteri (fun i _ -> i mod 2 = 0) ns in
      let odds = List.filteri (fun i _ -> i mod 2 = 1) ns in
      let d1 = Domain.spawn (fun () -> List.iter (Metrics.observe_ns split) evens) in
      let d2 = Domain.spawn (fun () -> List.iter (Metrics.observe_ns split) odds) in
      Domain.join d1;
      Domain.join d2;
      List.iter (Metrics.observe_ns whole) ns;
      let snap = Metrics.snapshot () in
      let view name =
        List.find
          (fun v -> v.Metrics.h_name = name)
          snap.Metrics.m_histograms
      in
      let a = view (Printf.sprintf "obst.merge%d.split" !merge_uid) in
      let b = view (Printf.sprintf "obst.merge%d.whole" !merge_uid) in
      a.Metrics.h_buckets = b.Metrics.h_buckets
      && a.Metrics.h_count = b.Metrics.h_count
      && a.Metrics.h_sum_ns = b.Metrics.h_sum_ns)

(* ------------------------------------------------------------------ *)
(* OpenMetrics renderer over hand-built snapshots *)

let hist name buckets sum_ns =
  let count = Array.fold_left ( + ) 0 buckets in
  {
    Metrics.h_name = name;
    h_count = count;
    h_sum_ms = float_of_int sum_ns /. 1e6;
    h_p50_ms = 0.;
    h_p90_ms = 0.;
    h_p99_ms = 0.;
    h_max_ms = 0.;
    h_buckets = buckets;
    h_sum_ns = sum_ns;
  }

let empty_snap =
  { Metrics.m_counters = []; m_gauges = []; m_histograms = [] }

let test_render_counters_gauges () =
  let out =
    Obs.render_openmetrics
      {
        empty_snap with
        Metrics.m_counters = [ "server.requests", 3 ];
        m_gauges = [ "server.queue_depth", 1.5 ];
      }
  in
  Alcotest.(check bool) "counter family + sample" true
    (contains ~needle:"# TYPE server_requests counter\nserver_requests_total 3\n" out);
  Alcotest.(check bool) "gauge family + sample" true
    (contains ~needle:"# TYPE server_queue_depth gauge\nserver_queue_depth 1.5\n" out);
  Alcotest.(check bool) "terminated" true
    (String.length out >= 6
    && String.sub out (String.length out - 6) 6 = "# EOF\n");
  Alcotest.(check int) "exactly one EOF" 1 (count_occurrences ~needle:"# EOF" out)

let test_render_zero_observation_histogram () =
  (* a registered histogram that was never observed must still export a
     complete, schema-valid family: every cumulative bucket 0, count 0,
     sum 0 — not be dropped, and not divide by zero anywhere *)
  let buckets = Array.make (Metrics.nbuckets + 1) 0 in
  let out =
    Obs.render_openmetrics
      { empty_snap with Metrics.m_histograms = [ hist "idle.lat" buckets 0 ] }
  in
  Alcotest.(check bool) "family present" true
    (contains ~needle:"# TYPE idle_lat_seconds histogram" out);
  Alcotest.(check int) "all buckets exported"
    (Metrics.nbuckets + 1)
    (count_occurrences ~needle:"idle_lat_seconds_bucket{le=" out);
  Alcotest.(check bool) "+Inf bucket zero" true
    (contains ~needle:"idle_lat_seconds_bucket{le=\"+Inf\"} 0\n" out);
  Alcotest.(check bool) "count zero" true
    (contains ~needle:"idle_lat_seconds_count 0\n" out);
  Alcotest.(check bool) "sum zero" true
    (contains ~needle:"idle_lat_seconds_sum 0\n" out)

let test_render_histogram_cumulative () =
  let buckets = Array.make (Metrics.nbuckets + 1) 0 in
  buckets.(0) <- 2;
  buckets.(2) <- 1;
  buckets.(Metrics.nbuckets) <- 1;
  let out =
    Obs.render_openmetrics
      { empty_snap with Metrics.m_histograms = [ hist "lat" buckets 40_000 ] }
  in
  (* bucket 0's bound is 10 µs = 1e-05 s; buckets are cumulative *)
  Alcotest.(check bool) "first bucket" true
    (contains ~needle:"lat_seconds_bucket{le=\"1e-05\"} 2\n" out);
  Alcotest.(check bool) "bucket 1 carries bucket 0 forward" true
    (contains ~needle:"lat_seconds_bucket{le=\"2e-05\"} 2\n" out);
  Alcotest.(check bool) "bucket 2 adds its own" true
    (contains ~needle:"lat_seconds_bucket{le=\"4e-05\"} 3\n" out);
  Alcotest.(check bool) "+Inf equals count" true
    (contains ~needle:"lat_seconds_bucket{le=\"+Inf\"} 4\n" out);
  Alcotest.(check bool) "count" true
    (contains ~needle:"lat_seconds_count 4\n" out)

let test_render_labeled_grouping () =
  let buckets = Array.make (Metrics.nbuckets + 1) 0 in
  buckets.(0) <- 1;
  let out =
    Obs.render_openmetrics
      ~labeled:[ "server.request_latency", "type" ]
      {
        empty_snap with
        Metrics.m_histograms =
          [
            hist "server.request_latency" buckets 5_000;
            hist "server.request_latency.verify" buckets 5_000;
            hist "other.lat" buckets 5_000;
          ];
      }
  in
  Alcotest.(check int) "one family TYPE line for the group" 1
    (count_occurrences ~needle:"# TYPE server_request_latency_seconds histogram" out);
  Alcotest.(check bool) "unlabeled all-requests series" true
    (contains ~needle:"server_request_latency_seconds_bucket{le=\"1e-05\"} 1\n" out);
  Alcotest.(check bool) "labeled per-type series" true
    (contains
       ~needle:"server_request_latency_seconds_bucket{type=\"verify\",le=\"1e-05\"} 1\n"
       out);
  Alcotest.(check bool) "ungrouped histogram untouched" true
    (contains ~needle:"# TYPE other_lat_seconds histogram" out)

let test_sanitize_name () =
  Alcotest.(check string) "dots become underscores" "server_request_latency"
    (Obs.sanitize_name "server.request_latency");
  Alcotest.(check string) "leading digit is prefixed" "_9lives"
    (Obs.sanitize_name "9lives");
  Alcotest.(check string) "hostile charset collapses" "a_b_c_d"
    (Obs.sanitize_name "a-b c{d")

(* ------------------------------------------------------------------ *)
(* HTTP codec *)

let test_http_parse () =
  let ready s =
    match Obs.Http.parse s with
    | `Ready r -> r.Obs.Http.meth, r.Obs.Http.target
    | `Partial -> Alcotest.failf "unexpectedly partial: %S" s
    | `Bad -> Alcotest.failf "unexpectedly bad: %S" s
  in
  Alcotest.(check (pair string string))
    "plain GET" ("GET", "/metrics")
    (ready "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  Alcotest.(check (pair string string))
    "LF-only heads tolerated" ("GET", "/healthz")
    (ready "GET /healthz HTTP/1.1\nHost: x\n\n");
  Alcotest.(check (pair string string))
    "non-GET methods surface for the 405" ("POST", "/metrics")
    (ready "POST /metrics HTTP/1.1\r\n\r\n");
  (match Obs.Http.parse "" with
  | `Partial -> ()
  | _ -> Alcotest.fail "empty buffer should be partial");
  (match Obs.Http.parse "GET /metrics HTTP/1.1\r\nHos" with
  | `Partial -> ()
  | _ -> Alcotest.fail "unterminated head should be partial");
  (match Obs.Http.parse "GARBAGE\r\n\r\n" with
  | `Bad -> ()
  | _ -> Alcotest.fail "mangled request line should be bad");
  match Obs.Http.parse (String.make 9000 'A') with
  | `Bad -> ()
  | _ -> Alcotest.fail "oversized head should be bad"

let test_http_response () =
  let r = Obs.Http.response ~status:200 ~content_type:"text/plain" "ok\n" in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "response contains %S" needle)
        true (contains ~needle r))
    [
      "HTTP/1.1 200 OK\r\n";
      "Content-Type: text/plain\r\n";
      "Content-Length: 3\r\n";
      "Connection: close\r\n";
      "\r\n\r\nok\n";
    ];
  let bad = Obs.Http.response ~status:503 "draining\n" in
  Alcotest.(check bool) "status text tracks the code" true
    (contains ~needle:"HTTP/1.1 503 Service Unavailable\r\n" bad)

(* ------------------------------------------------------------------ *)
(* Structured log *)

let with_tmp_file f =
  let path = Filename.temp_file "eqtls-obs-test" ".log" in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      try Unix.unlink (path ^ ".1") with Unix.Unix_error _ -> ())
    (fun () -> f path)

let with_log_sink ?rotate_bytes level f =
  with_tmp_file @@ fun path ->
  Log.open_sink ?rotate_bytes path;
  Log.set_level (Some level);
  Fun.protect
    ~finally:(fun () ->
      Log.set_level None;
      Log.close_sink ())
    (fun () -> f path)

let test_log_levels () =
  Alcotest.(check (option string))
    "warn parses" (Some "warn")
    (Option.map Log.level_name (Log.level_of_name "warning"));
  Alcotest.(check bool) "unknown level rejected" true
    (Log.level_of_name "chatty" = None);
  with_log_sink Log.Warn @@ fun path ->
  Log.info "too_quiet" [];
  Log.warn "loud_enough" [];
  Log.error "also_loud" [];
  Log.close_sink ();
  let lines =
    In_channel.with_open_bin path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "below-threshold events dropped" 2 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "each line is a JSON object" true
        (String.length l > 0 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  Alcotest.(check bool) "warn event present" true
    (contains ~needle:"\"ev\":\"loud_enough\"" (String.concat "\n" lines))

let test_log_fields_and_escaping () =
  with_log_sink Log.Debug @@ fun path ->
  Log.info "fields"
    [
      "s", Log.S "he said \"hi\"\n";
      "i", Log.I 42;
      "f", Log.F 1.5;
      "b", Log.B true;
    ];
  Log.close_sink ();
  let line = In_channel.with_open_bin path In_channel.input_all in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "line contains %S" needle)
        true (contains ~needle line))
    [
      "{\"ts\":\"";
      "\"lvl\":\"info\"";
      "\"ev\":\"fields\"";
      "\"s\":\"he said \\\"hi\\\"\\n\"";
      "\"i\":42";
      "\"b\":true";
    ]

let test_log_rotation () =
  with_log_sink ~rotate_bytes:256 Log.Debug @@ fun path ->
  for i = 1 to 50 do
    Log.info "filler" [ "n", Log.I i ]
  done;
  Log.close_sink ();
  Alcotest.(check bool) "rotated file exists" true
    (Sys.file_exists (path ^ ".1"));
  let live = (Unix.stat path).Unix.st_size in
  Alcotest.(check bool) "live file stayed under the cap + one event" true
    (live < 512)

let test_log_tees_into_flight () =
  (* with the recorder on, even events below the sink threshold are
     retained for the post-mortem *)
  Flight.reset ();
  Flight.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Flight.set_enabled false;
      Flight.reset ())
  @@ fun () ->
  Log.set_level None;
  Log.debug "invisible_live" [ "k", Log.S "v" ];
  let dump = Flight.dump ~reason:"tee-test" in
  Alcotest.(check bool) "suppressed event reached the ring" true
    (contains ~needle:"invisible_live" dump)

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let test_flight_dump () =
  Flight.reset ();
  Flight.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Flight.set_enabled false;
      Flight.reset ())
  @@ fun () ->
  Flight.note "alpha";
  Flight.note "beta \"quoted\"";
  let dump = Flight.dump ~reason:"unit \"test\"" in
  Alcotest.(check bool) "JSON object" true
    (String.length dump > 0 && dump.[0] = '{');
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "dump contains %S" needle)
        true (contains ~needle dump))
    [
      "\"reason\":\"unit \\\"test\\\"\"";
      "\"pid\":";
      "alpha";
      "beta \\\"quoted\\\"";
    ];
  with_tmp_file @@ fun path ->
  Flight.dump_to_file ~reason:"to-file" path;
  Alcotest.(check bool) "dump file written" true
    ((Unix.stat path).Unix.st_size > 0)

let test_flight_ring_wraps () =
  Flight.reset ();
  Flight.set_enabled true;
  Flight.set_capacity 8;
  Fun.protect
    ~finally:(fun () ->
      Flight.set_enabled false;
      Flight.set_capacity 256;
      Flight.reset ())
  @@ fun () ->
  for i = 1 to 100 do
    Flight.note (Printf.sprintf "entry-%d" i)
  done;
  let dump = Flight.dump ~reason:"wrap" in
  Alcotest.(check bool) "newest entry survives" true
    (contains ~needle:"entry-100" dump);
  Alcotest.(check bool) "oldest entry overwritten" false
    (contains ~needle:"entry-1\"" dump)

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  List.map
    (QCheck_alcotest.to_alcotest ?verbose:None ?long:None)
    [ prop_bucket_boundaries; prop_merge_across_domains ]

let tests =
  qcheck_tests
  @ [
      Alcotest.test_case "bucket edge cases" `Quick test_bucket_edges;
      Alcotest.test_case "render: counters and gauges" `Quick
        test_render_counters_gauges;
      Alcotest.test_case "render: zero-observation histogram" `Quick
        test_render_zero_observation_histogram;
      Alcotest.test_case "render: cumulative buckets" `Quick
        test_render_histogram_cumulative;
      Alcotest.test_case "render: labeled family grouping" `Quick
        test_render_labeled_grouping;
      Alcotest.test_case "metric name sanitization" `Quick test_sanitize_name;
      Alcotest.test_case "http: request parsing" `Quick test_http_parse;
      Alcotest.test_case "http: response building" `Quick test_http_response;
      Alcotest.test_case "log: level threshold" `Quick test_log_levels;
      Alcotest.test_case "log: fields and escaping" `Quick
        test_log_fields_and_escaping;
      Alcotest.test_case "log: size-based rotation" `Quick test_log_rotation;
      Alcotest.test_case "log: tees into the flight recorder" `Quick
        test_log_tees_into_flight;
      Alcotest.test_case "flight: dump shape" `Quick test_flight_dump;
      Alcotest.test_case "flight: ring wraps" `Quick test_flight_ring_wraps;
    ]

let suite = "obs", tests
