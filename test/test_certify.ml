(* Certificate round-trip and adversarial-tampering tests: a valid traced
   campaign must check, and every forged certificate — wrong rule, wrong
   position, wrong substitution, skipped condition discharge, bogus AC
   permutation, reversed LPO precedence — must be rejected with a
   positioned diagnostic. *)

open Kernel
module C = Certify.Cert

let nat = Sort.visible "TcNat"
let sg = Signature.create ()
let zop = Signature.declare sg "tcZ" [] nat ~attrs:[ Signature.Ctor ]
let sop = Signature.declare sg "tcS" [ nat ] nat ~attrs:[ Signature.Ctor ]
let plusop = Signature.declare sg "tcP" [ nat; nat ] nat ~attrs:[]
let uop = Signature.declare sg "tcU" [ nat; nat ] nat ~attrs:[ Signature.Ac ]
let iszop = Signature.declare sg "tcIsz" [ nat ] Sort.bool ~attrs:[]
let gateop = Signature.declare sg "tcGate" [ nat ] nat ~attrs:[]
let caop = Signature.declare sg "tcA" [] nat ~attrs:[ Signature.Ctor ]
let cbop = Signature.declare sg "tcB" [] nat ~attrs:[ Signature.Ctor ]
let ccop = Signature.declare sg "tcC" [] nat ~attrs:[ Signature.Ctor ]
let z = Term.const zop
let s t = Term.app sop [ t ]
let plus a b = Term.app plusop [ a; b ]
let u a b = Term.app uop [ a; b ]
let isz t = Term.app iszop [ t ]
let gate t = Term.app gateop [ t ]
let vM = Term.var "M" nat
let vN = Term.var "N" nat

let rules =
  [
    Rewrite.rule ~label:"tc-p0" (plus z vN) vN;
    Rewrite.rule ~label:"tc-ps" (plus (s vM) vN) (s (plus vM vN));
    Rewrite.rule ~label:"tc-isz" (isz z) Term.tt;
    Rewrite.rule ~cond:(isz vN) ~label:"tc-gate" (gate vN) z;
  ]

(* Trace three reductions: a two-step [plus], a pure AC reorder (records a
   permutation, no rule step) and a conditional rule discharge. *)
let traced_cert () =
  let sys = Rewrite.make rules in
  let tr = Rewrite.tracer () in
  Rewrite.set_tracer (Some tr);
  Fun.protect ~finally:(fun () -> Rewrite.set_tracer None) @@ fun () ->
  ignore (Rewrite.normalize sys (plus (s z) (s (s z))));
  ignore (Rewrite.normalize sys (u (Term.const ccop) (u (Term.const caop) (Term.const cbop))));
  ignore (Rewrite.normalize sys (gate z));
  let b = Analysis.Certgen.create () in
  Analysis.Certgen.add_obligations b (Rewrite.obligations tr);
  Analysis.Certgen.cert b

let check_errors cert = Certify.Check.create cert |> Certify.Check.check_all

let expect_reject what cert ~path ~msg =
  match check_errors cert with
  | [] -> Alcotest.failf "%s: tampered certificate was accepted" what
  | e :: _ ->
    let contains hay needle =
      let lh = String.length hay and ln = String.length needle in
      let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
      ln = 0 || go 0
    in
    if not (contains e.Certify.Check.e_path path) then
      Alcotest.failf "%s: diagnostic path %S does not mention %S" what
        e.Certify.Check.e_path path;
    if not (contains e.Certify.Check.e_msg msg) then
      Alcotest.failf "%s: diagnostic %S does not mention %S" what
        e.Certify.Check.e_msg msg

(* Rebuild the cert with red number [i]'s derivation transformed. *)
let tamper_red cert i f =
  {
    cert with
    C.reds =
      List.mapi
        (fun j (r : C.red) -> if i = j then { r with C.red_deriv = f r.red_deriv } else r)
        cert.C.reds;
  }

(* [App] carries an inlined record, so the rebuild has to happen inside
   the match: [f] maps the (children, perm, step) triple. *)
let map_root_app what (d : C.deriv) f =
  match d.C.d_node with
  | C.App { children; perm; step } ->
    let children, perm, step = f children perm step in
    { d with C.d_node = C.App { children; perm; step } }
  | C.Triv -> Alcotest.failf "%s: expected an app derivation at the root" what

let map_root_step what (d : C.deriv) f =
  map_root_app what d (fun children perm step ->
      match step with
      | Some st -> (children, perm, f st)
      | None -> Alcotest.failf "%s: expected a rule step at the root" what)

(* ------------------------------------------------------------------ *)

let test_valid_cert () =
  let cert = traced_cert () in
  Alcotest.(check int) "three obligations" 3 (List.length cert.C.reds);
  (match check_errors cert with
  | [] -> ()
  | e :: _ ->
    Alcotest.failf "valid certificate rejected: %s: %s" e.Certify.Check.e_path
      e.Certify.Check.e_msg);
  let ck = Certify.Check.create cert in
  ignore (Certify.Check.check_all ck);
  Alcotest.(check bool) "steps were replayed" true (Certify.Check.steps_validated ck >= 3)

let test_roundtrip () =
  let cert = traced_cert () in
  let text = C.to_string cert in
  match C.of_string text with
  | Error m -> Alcotest.failf "serialized certificate does not parse: %s" m
  | Ok cert' ->
    Alcotest.(check bool) "round-trip is identical" true (C.equal cert cert');
    Alcotest.(check int) "round-tripped cert checks" 0 (List.length (check_errors cert'))

let test_tamper_wrong_rule () =
  let cert = traced_cert () in
  let other =
    match
      List.find_opt
        (fun (r : C.rule) -> r.C.r_label = "tc-isz")
        (List.hd cert.C.reds).C.red_rset.C.rs_rules
    with
    | Some r -> r
    | None -> Alcotest.fail "fixture rule tc-isz not in rule set"
  in
  (* make the plus step claim it used tc-isz *)
  let wrong =
    tamper_red cert 0 (fun d ->
        map_root_step "wrong-rule" d (fun st -> Some { st with C.s_rule = other }))
  in
  expect_reject "wrong-rule" wrong ~path:"red r0" ~msg:"does not match the redex"

let test_tamper_wrong_position () =
  let cert = traced_cert () in
  (* swap the argument derivations: each now starts at the other argument *)
  let wrong =
    tamper_red cert 0 (fun d ->
        map_root_app "wrong-position" d (fun children perm step ->
            (List.rev children, perm, step)))
  in
  expect_reject "wrong-position" wrong ~path:"red r0/arg 0" ~msg:"not argument"

let test_tamper_wrong_substitution () =
  let cert = traced_cert () in
  (* swap the images bound to M and N: same variables, wrong instance *)
  let wrong =
    tamper_red cert 0 (fun d ->
        map_root_step "wrong-subst" d (fun st ->
            let sub =
              match st.C.s_sub with
              | [ (n1, s1, t1); (n2, s2, t2) ] -> [ (n1, s1, t2); (n2, s2, t1) ]
              | _ -> Alcotest.fail "expected two bindings in the plus step"
            in
            Some { st with C.s_sub = sub }))
  in
  expect_reject "wrong-subst" wrong ~path:"red r0" ~msg:"does not match the redex"

let test_tamper_skipped_condition () =
  let cert = traced_cert () in
  (* red r2 is the conditional gate rule: drop its condition discharge *)
  let wrong =
    tamper_red cert 2 (fun d ->
        map_root_step "skip-cond" d (fun st -> Some { st with C.s_cond = None }))
  in
  expect_reject "skip-cond" wrong ~path:"red r2" ~msg:"records no condition discharge"

let test_tamper_bogus_perm () =
  let cert = traced_cert () in
  (* red r1 is the pure AC reorder: replace its permutation with a non-bijection *)
  let wrong =
    tamper_red cert 1 (fun d ->
        map_root_app "bogus-perm" d (fun children perm step ->
            (match perm with
            | Some _ -> ()
            | None -> Alcotest.fail "fixture AC derivation records no permutation");
            (children, Some [ 0; 0; 0 ], step)))
  in
  expect_reject "bogus-perm" wrong ~path:"red r1/perm" ~msg:"bogus AC permutation"

(* ------------------------------------------------------------------ *)

let lpo_cert () =
  let ops = [ zop; sop; plusop; uop; iszop; gateop; caop; cbop; ccop ] in
  let sr = Order.search_precedence ~ops rules in
  Alcotest.(check int) "fixture rules orient" 0 (List.length sr.Order.unoriented);
  let b = Analysis.Certgen.create () in
  Analysis.Certgen.add_lpo b ~precedence:sr.Order.precedence rules;
  Analysis.Certgen.cert b

let test_lpo_cert () =
  let cert = lpo_cert () in
  (match check_errors cert with
  | [] -> ()
  | e :: _ ->
    Alcotest.failf "valid LPO certificate rejected: %s: %s" e.Certify.Check.e_path
      e.Certify.Check.e_msg);
  (* reversing the precedence must break at least one orientation *)
  let reversed =
    match cert.C.lpo with
    | Some l -> { cert with C.lpo = Some { l with C.lpo_prec = List.rev l.C.lpo_prec } }
    | None -> Alcotest.fail "certificate has no LPO section"
  in
  expect_reject "reversed-precedence" reversed ~path:"lpo/rule" ~msg:"not LPO-greater"

let test_join_cert () =
  let b = Analysis.Certgen.create () in
  let cert0 = Analysis.Certgen.cert b in
  let cterm name = C.A ({ C.op_name = name; op_arity = []; op_sort = "TcNat"; op_flags = [] }, []) in
  let l = cterm "tcA" in
  let r = cterm "tcB" in
  let triv t = { C.d_in = t; d_out = t; d_node = C.Triv } in
  let rs = { C.rs_parent = None; rs_rules = [] } in
  let join jc_right =
    {
      C.j_label = "t1";
      j_rset = rs;
      j_peak = l;
      j_left = l;
      j_right = l;
      j_cert = { C.jc_left = triv l; jc_right; jc_tail = C.Jsyn };
    }
  in
  let good = { cert0 with C.joins = [ join (triv l) ] } in
  (match check_errors good with
  | [] -> ()
  | e :: _ ->
    Alcotest.failf "valid join certificate rejected: %s: %s" e.Certify.Check.e_path
      e.Certify.Check.e_msg);
  (* a join whose right side silently ends somewhere else must be refused *)
  let bad = { cert0 with C.joins = [ { (join (triv r)) with C.j_right = r } ] } in
  expect_reject "unjoined" bad ~path:"join t1" ~msg:"distinct terms"

(* ------------------------------------------------------------------ *)
(* Serialization fuzz: random certificates (weird atom spellings
   included) must round-trip to structurally identical values. *)

let gen_name =
  QCheck.Gen.(
    oneof
      [
        map (Printf.sprintf "op-%d") (int_bound 30);
        map (Printf.sprintf "weird %d \"quoted\" \\ ;semi") (int_bound 9);
        return "";
      ])

let gen_term =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [
              map (fun nm -> C.V { v_name = nm; v_sort = "S" }) gen_name;
              map
                (fun nm ->
                  C.A ({ C.op_name = nm; op_arity = []; op_sort = "S"; op_flags = [] }, []))
                gen_name;
            ]
        else
          map2
            (fun nm args ->
              C.A
                ( {
                    C.op_name = nm;
                    op_arity = List.map (fun _ -> "S") args;
                    op_sort = "S";
                    op_flags = [];
                  },
                  args ))
            gen_name
            (list_size (int_bound 3) (self (n / 2)))))

let gen_cert =
  QCheck.Gen.(
    map2
      (fun lhs rhs ->
        let rule = { C.r_label = "g"; r_lhs = lhs; r_rhs = lhs; r_cond = None } in
        let rs = { C.rs_parent = None; rs_rules = [ rule ] } in
        let d = { C.d_in = rhs; d_out = rhs; d_node = C.Triv } in
        {
          C.reds =
            [ { C.red_name = "r0"; red_rset = rs; red_in = rhs; red_out = rhs; red_deriv = d } ];
          lpo = None;
          joins = [];
        })
      gen_term gen_term)

let prop_roundtrip =
  QCheck.Test.make ~name:"certificate serialization round-trips" ~count:200
    (QCheck.make gen_cert) (fun cert ->
      match C.of_string (C.to_string cert) with
      | Ok cert' -> C.equal cert cert'
      | Error _ -> false)

let suite =
  ( "certify",
    [
      "valid certificate accepted", `Quick, test_valid_cert;
      "serialize/parse round-trip", `Quick, test_roundtrip;
      "tamper: wrong rule", `Quick, test_tamper_wrong_rule;
      "tamper: wrong position", `Quick, test_tamper_wrong_position;
      "tamper: wrong substitution", `Quick, test_tamper_wrong_substitution;
      "tamper: skipped condition", `Quick, test_tamper_skipped_condition;
      "tamper: bogus AC permutation", `Quick, test_tamper_bogus_perm;
      "LPO certificate and reversed precedence", `Quick, test_lpo_cert;
      "join certificate and unjoined tamper", `Quick, test_join_cert;
      QCheck_alcotest.to_alcotest prop_roundtrip;
    ] )
