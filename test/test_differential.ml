(* Differential test: every spec in specs/ runs twice — once through the
   seed engine's path ([Rewrite.normalize_uncached], private per-call memo)
   and once through the shared generation-stamped memo ([Rewrite.normalize]).
   Both engines must produce identical outputs phrase by phrase: the same
   normal forms, the same verify verdicts, and memo step counts never above
   the uncached engine's (the memo can only skip work, not add it). *)

open Cafeobj

let spec_dir () =
  let candidates = [ "../specs"; "../../specs"; "specs"; "../../../specs" ] in
  match List.find_opt Sys.file_exists candidates with
  | Some dir -> dir
  | None -> Alcotest.fail "specs directory not found"

let all_specs () =
  let dir = spec_dir () in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".cafe")
  |> List.sort compare
  |> List.map (fun f -> f, Filename.concat dir f)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A digest of one toplevel output that both engines must agree on. *)
type obs =
  | ODefined of string
  | OReduced of { input : string; nf : string; verdict : bool; steps : int }
  | OOpened of string
  | OClosed
  | OShown

let observe = function
  | Eval.Defined name -> ODefined name
  | Eval.Reduced r ->
    OReduced
      {
        input = Kernel.Term.to_string r.Eval.input;
        nf = Kernel.Term.to_string r.Eval.normal_form;
        verdict = Kernel.Term.equal r.Eval.normal_form Kernel.Term.tt;
        steps = r.Eval.steps;
      }
  | Eval.Opened name -> OOpened name
  | Eval.Closed -> OClosed
  | Eval.Shown _ -> OShown

(* The two protocol theories ship as pure module definitions (their [red]s
   live in the verify campaign), so the differential run appends a proof
   passage reducing representative observations over a one-step reachable
   state.  [mod_name] is read back from the source so the driver follows a
   renamed module. *)
let driver_for src =
  if
    String.split_on_char '\n' src
    |> List.exists (fun l -> String.length (String.trim l) >= 3
                             && String.sub (String.trim l) 0 3 = "red")
  then ""
  else
    let mod_name =
      String.split_on_char '\n' src
      |> List.find_map (fun l ->
             match String.split_on_char ' ' (String.trim l) with
             | "mod" :: name :: _ -> Some name
             | _ -> None)
    in
    match mod_name with
    | None -> Alcotest.fail "spec defines no module and performs no red"
    | Some m ->
      Printf.sprintf
        {|
open %s
op dxa : -> Prin { ctor } .
op dxb : -> Prin { ctor } .
op dxr : -> Rand { ctor } .
op dxc : -> Choice { ctor } .
red msg-in(ch(dxa, dxa, dxb, dxr, lcons(dxc, lnil)),
           nw(chello(tls-init, dxa, dxb, dxr, lcons(dxc, lnil)))) .
red rand-in(dxr, ur(chello(tls-init, dxa, dxb, dxr, lcons(dxc, lnil)))) .
red rand-in(dxr, ur(tls-init)) .
close
|}
        m

let run ~uncached src =
  let env = Eval.create () in
  Eval.set_uncached env uncached;
  List.map observe (Eval.eval_string env (src ^ driver_for src))

let check_spec (file, path) () =
  let src = read_file path in
  let old_path = run ~uncached:true src in
  let memo_path = run ~uncached:false src in
  Alcotest.(check int)
    (file ^ ": same number of outputs")
    (List.length old_path) (List.length memo_path)
  ;
  let reds = ref 0 in
  List.iteri
    (fun i (o, m) ->
      let at what = Printf.sprintf "%s phrase %d: %s" file (i + 1) what in
      match o, m with
      | OReduced o, OReduced m ->
        incr reds;
        Alcotest.(check string) (at "input") o.input m.input;
        Alcotest.(check string) (at "normal form") o.nf m.nf;
        Alcotest.(check bool) (at "verdict") o.verdict m.verdict;
        (* The memo can only save rewrite steps, never add them. *)
        if m.steps > o.steps then
          Alcotest.failf "%s: memoized path used %d steps, uncached used %d"
            (at "steps") m.steps o.steps
      | ODefined a, ODefined b -> Alcotest.(check string) (at "defined") a b
      | OOpened a, OOpened b -> Alcotest.(check string) (at "opened") a b
      | OClosed, OClosed | OShown, OShown -> ()
      | _ -> Alcotest.failf "%s" (at "output kinds diverge"))
    (List.combine old_path memo_path);
  Alcotest.(check bool) (file ^ ": exercises red") true (!reds > 0)

let test_coverage () =
  (* The differential suite must cover every spec shipped in specs/ — if a
     spec is added, it is picked up automatically; this guards against the
     directory moving out from under the globs. *)
  let names = List.map fst (all_specs ()) in
  Alcotest.(check bool) "at least the five seed specs" true (List.length names >= 5);
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("covers " ^ expected) true (List.mem expected names))
    [
      "bool_demo.cafe"; "lock.cafe"; "peano.cafe"; "tls_handshake.cafe";
      "tls_variant.cafe";
    ]

let suite =
  ( "differential",
    Alcotest.test_case "covers all specs" `Quick test_coverage
    :: List.map
         (fun spec ->
           Alcotest.test_case ("memo vs uncached: " ^ fst spec) `Quick
             (check_spec spec))
         (all_specs ()) )
