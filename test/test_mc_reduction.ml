(* Tests of the statically certified state-space reduction: the ample-set
   partial-order reduction and symmetry canonization (Analysis.Indep /
   Analysis.Symmetry wired into Mc via Nspk.reduction and
   Tls.Concrete.reduction).

   The load-bearing property is differential: on the same system, bounds
   and properties, the reduced search must reach the same verdict — same
   outcome constructor, same violated property when there is one — while
   exploring strictly fewer states.  The static certificates behind the
   ample sets and symmetry classes must replay cleanly through the
   independent checkers, and tampered certificates must be rejected with a
   breadcrumb. *)

module Sexp = Certify.Sexp
module Indep = Analysis.Indep
module Symmetry = Analysis.Symmetry

(* Lazy for the same reason as test_mc: building a concrete scenario
   extends the shared generated specs, which must not happen at
   module-init time (the analysis suite lints the pristine spec). *)
let nsl_scen_l = lazy (Nspk.default_scenario Nspk.Lowe_fixed)
let nspk_scen_l = lazy (Nspk.default_scenario Nspk.Classic)
let tls_scen_l = lazy (Tls.Concrete.default_scenario ())

let tls_variant_scen_l =
  lazy
    { (Tls.Concrete.default_scenario ()) with Tls.Concrete.style = Tls.Model.Cf2First }

(* The observable part of an outcome that reduction must preserve: the
   constructor, and the property name when there is a violation.  Depth
   and trace length may legitimately shrink (compound steps compress
   several ample transitions into one BFS level). *)
let verdict = function
  | Mc.No_violation _ -> "no-violation"
  | Mc.Out_of_bounds _ -> "out-of-bounds"
  | Mc.Violation (v, _) -> "violation:" ^ v.Mc.property

(* ------------------------------------------------------------------ *)
(* Exact reduction bar on NSL (the ISSUE acceptance criterion)          *)

let test_nsl_reduction_bar () =
  let scen = Lazy.force nsl_scen_l in
  let system = Nspk.system scen in
  let props = [ "responder-agreement", Nspk.responder_agreement ] in
  let full = Mc.bfs ~max_states:60_000 ~max_depth:8 system ~props in
  let red =
    Mc.bfs ~max_states:60_000 ~max_depth:8 ~reduction:(Nspk.reduction scen)
      system ~props
  in
  Alcotest.(check string) "same verdict" (verdict full) (verdict red);
  match full, red with
  | Mc.Out_of_bounds fs, Mc.Out_of_bounds rs ->
    Alcotest.(check bool)
      (Printf.sprintf "reduced %d states <= 1/3 of full %d"
         rs.Mc.states_explored fs.Mc.states_explored)
      true
      (rs.Mc.states_explored * 3 <= fs.Mc.states_explored);
    Alcotest.(check bool) "pruning happened" true (rs.Mc.states_pruned > 0);
    Alcotest.(check int) "full search prunes nothing" 0 fs.Mc.states_pruned
  | _ -> Alcotest.fail "expected out-of-bounds on both searches"

(* Violations must survive the reduction with the same property (Lowe's
   attack on classic NSPK, both properties). *)
let test_nspk_attacks_preserved () =
  let scen = Lazy.force nspk_scen_l in
  let system = Nspk.system scen in
  let red = Nspk.reduction scen in
  List.iter
    (fun (bound_d, name, prop) ->
      let props = [ name, prop ] in
      let full = Mc.bfs ~max_states:30_000 ~max_depth:bound_d system ~props in
      let reduced =
        Mc.bfs ~max_states:30_000 ~max_depth:bound_d ~reduction:red system
          ~props
      in
      Alcotest.(check string) (name ^ " verdict") (verdict full) (verdict reduced);
      match full, reduced with
      | Mc.Violation (_, fs), Mc.Violation (_, rs) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: reduced %d < full %d states" name
             rs.Mc.states_explored fs.Mc.states_explored)
          true
          (rs.Mc.states_explored < fs.Mc.states_explored)
      | _ -> Alcotest.fail (name ^ ": expected a violation on both"))
    [
      7, "responder-agreement", Nspk.responder_agreement;
      5, "nonce-secrecy", Nspk.nonce_secrecy;
    ]

(* ------------------------------------------------------------------ *)
(* QCheck differential: full vs reduced across random bounds/props      *)

(* Under a depth bound the two searches need not agree verbatim: compound
   steps compress several transitions into one BFS level, so the reduced
   search may find a (real) violation the bounded full search has not
   reached yet, and the conservative Out_of_bounds downgrade may replace
   a full-search No_violation.  What must NEVER happen: the reduced
   search misses a violation the full search found, invents a violation
   over a space the full search exhausted clean, or disagrees on which
   property broke. *)
let compatible full reduced =
  match full, reduced with
  | Mc.Violation (v, _), Mc.Violation (v', _) ->
    String.equal v.Mc.property v'.Mc.property
  | Mc.Violation _, _ -> false (* reduction lost a violation *)
  | Mc.No_violation _, Mc.Violation _ -> false (* invented a violation *)
  | Mc.Out_of_bounds _, Mc.Violation _ -> true (* found earlier, compressed *)
  | (Mc.No_violation _ | Mc.Out_of_bounds _),
    (Mc.No_violation _ | Mc.Out_of_bounds _) ->
    true

let nsl_props =
  [
    "responder-agreement", Nspk.responder_agreement;
    "nonce-secrecy", Nspk.nonce_secrecy;
  ]

let gen_nspk_case =
  QCheck.Gen.(
    triple (int_range 2 6) (int_range 0 1) (oneofl [ `Classic; `Lowe ]))

let print_nspk_case (depth, pi, v) =
  Printf.sprintf "depth=%d prop=%s variant=%s" depth
    (fst (List.nth nsl_props pi))
    (match v with `Classic -> "classic" | `Lowe -> "lowe")

let prop_nspk_differential =
  QCheck.Test.make ~name:"nspk/nsl: reduced bfs verdict compatible with full"
    ~count:8
    (QCheck.make ~print:print_nspk_case gen_nspk_case)
    (fun (depth, pi, v) ->
      let scen =
        match v with
        | `Classic -> Lazy.force nspk_scen_l
        | `Lowe -> Lazy.force nsl_scen_l
      in
      let system = Nspk.system scen in
      let props = [ List.nth nsl_props pi ] in
      let full = Mc.bfs ~max_states:15_000 ~max_depth:depth system ~props in
      let red =
        Mc.bfs ~max_states:15_000 ~max_depth:depth
          ~reduction:(Nspk.reduction scen) system ~props
      in
      compatible full red)

let tls_props scen =
  [
    "cf-authentic", Tls.Concrete.prop_cf_authentic;
    "sf-authentic", Tls.Concrete.prop_sf_authentic;
    "pms-secrecy", Tls.Concrete.prop_pms_secrecy scen;
  ]

let gen_tls_case =
  QCheck.Gen.(
    triple (int_range 2 4) (int_range 0 2) (oneofl [ `Original; `Variant ]))

let print_tls_case (depth, pi, s) =
  Printf.sprintf "depth=%d prop=%d style=%s" depth pi
    (match s with `Original -> "original" | `Variant -> "cf2first")

let prop_tls_differential =
  QCheck.Test.make ~name:"tls: reduced bfs verdict compatible with full"
    ~count:6
    (QCheck.make ~print:print_tls_case gen_tls_case)
    (fun (depth, pi, s) ->
      let scen =
        match s with
        | `Original -> Lazy.force tls_scen_l
        | `Variant -> Lazy.force tls_variant_scen_l
      in
      let system = Tls.Concrete.system scen in
      let props = [ List.nth (tls_props scen) pi ] in
      let full = Mc.bfs ~max_states:5_000 ~max_depth:depth system ~props in
      let red =
        Mc.bfs ~max_states:5_000 ~max_depth:depth
          ~reduction:(Tls.Concrete.reduction scen) system ~props
      in
      compatible full red)

(* ------------------------------------------------------------------ *)
(* par_bfs under reduction mirrors bfs byte for byte                    *)

let test_par_bfs_reduction_agrees () =
  Sched.Pool.with_pool ~jobs:2 @@ fun pool ->
  let check_system name system reduction ~props ~max_depth =
    let seq = Mc.bfs ~max_states:20_000 ~max_depth ~reduction system ~props in
    let par =
      Mc.par_bfs ~max_states:20_000 ~max_depth ~reduction ~pool system ~props
    in
    Alcotest.(check string) (name ^ " verdict") (verdict seq) (verdict par);
    let s = Mc.outcome_stats seq and p = Mc.outcome_stats par in
    Alcotest.(check int) (name ^ " states") s.Mc.states_explored p.Mc.states_explored;
    Alcotest.(check int) (name ^ " transitions") s.Mc.transitions_fired p.Mc.transitions_fired;
    Alcotest.(check int) (name ^ " pruned") s.Mc.states_pruned p.Mc.states_pruned;
    Alcotest.(check int) (name ^ " depth") s.Mc.max_depth p.Mc.max_depth;
    match seq, par with
    | Mc.Violation (v, _), Mc.Violation (v', _) ->
      Alcotest.(check (list string))
        (name ^ " trace")
        (List.map system.Mc.show_action v.Mc.trace)
        (List.map system.Mc.show_action v'.Mc.trace)
    | _ -> ()
  in
  let nsl = Lazy.force nsl_scen_l in
  check_system "nsl" (Nspk.system nsl) (Nspk.reduction nsl)
    ~props:[ "responder-agreement", Nspk.responder_agreement ]
    ~max_depth:6;
  let nspk = Lazy.force nspk_scen_l in
  check_system "nspk" (Nspk.system nspk) (Nspk.reduction nspk)
    ~props:[ "responder-agreement", Nspk.responder_agreement ]
    ~max_depth:7;
  let tls = Lazy.force tls_scen_l in
  check_system "tls" (Tls.Concrete.system tls) (Tls.Concrete.reduction tls)
    ~props:[ "cf-authentic", Tls.Concrete.prop_cf_authentic ]
    ~max_depth:4

(* ------------------------------------------------------------------ *)
(* Canonization is idempotent (orbit minimization)                      *)

(* Collect a few BFS levels of raw (uncanonized) states. *)
let sample_states system ~depth ~limit =
  let out = ref [] and n = ref 0 in
  let rec go s d =
    if !n < limit then begin
      incr n;
      out := s :: !out;
      if d < depth then
        List.iter (fun (_, s') -> go s' (d + 1)) (system.Mc.next s)
    end
  in
  go system.Mc.initial 0;
  !out

let check_canon_idempotent name system (red : (_, _) Mc.reduction) states =
  List.iteri
    (fun i s ->
      let c = red.Mc.canon s in
      let cc = red.Mc.canon c in
      Alcotest.(check string)
        (Printf.sprintf "%s state %d: canon(canon s) = canon s" name i)
        (system.Mc.key c) (system.Mc.key cc))
    states

let test_canon_idempotent () =
  let nsl = Lazy.force nsl_scen_l in
  let nsys = Nspk.system nsl in
  check_canon_idempotent "nsl" nsys (Nspk.reduction nsl)
    (sample_states nsys ~depth:3 ~limit:300);
  let tls = Lazy.force tls_scen_l in
  let tsys = Tls.Concrete.system tls in
  check_canon_idempotent "tls" tsys (Tls.Concrete.reduction tls)
    (sample_states tsys ~depth:2 ~limit:60)

(* Oops transitions have no symbolic counterpart, so POR must stay off
   for oops scenarios — the reduction degenerates to symmetry only. *)
let test_oops_disables_por () =
  let scen =
    { (Lazy.force tls_scen_l) with Tls.Concrete.oops = true }
  in
  let system = Tls.Concrete.system scen in
  let props = [ "sf-authentic", Tls.Concrete.prop_sf_authentic ] in
  let full = Mc.bfs ~max_states:5_000 ~max_depth:3 system ~props in
  let red =
    Mc.bfs ~max_states:5_000 ~max_depth:3
      ~reduction:(Tls.Concrete.reduction scen) system ~props
  in
  Alcotest.(check string) "same verdict" (verdict full) (verdict red);
  Alcotest.(check int) "no ample pruning under oops" 0
    (Mc.outcome_stats red).Mc.states_pruned

(* ------------------------------------------------------------------ *)
(* Certificates: clean replay and tamper rejection                      *)

let nsl_indep_l =
  lazy
    (match Nspk.independence Nspk.Lowe_fixed with
    | Some r -> r
    | None -> Alcotest.fail "no independence result for NSL")

let test_indep_cert_replays_nsl () =
  let r = Lazy.force nsl_indep_l in
  let spec = Nspk.Symbolic.gen_spec Nspk.Lowe_fixed in
  match Indep.check spec (Indep.certificate r) with
  | Ok (pairs, claims) ->
    Alcotest.(check bool) "some pairs" true (pairs > 0);
    Alcotest.(check bool) "claims outnumber pairs" true (claims >= pairs)
  | Error crumb -> Alcotest.fail ("NSL certificate rejected: " ^ crumb)

let test_indep_cert_replays_tls () =
  List.iter
    (fun (name, style) ->
      match Tls.Concrete.independence style with
      | None -> Alcotest.fail (name ^ ": no independence result")
      | Some r -> (
        match Indep.check (Tls.Model.spec style) (Indep.certificate r) with
        | Ok (pairs, _) ->
          Alcotest.(check bool) (name ^ ": some pairs") true (pairs > 0)
        | Error crumb ->
          Alcotest.fail (name ^ " certificate rejected: " ^ crumb)))
    [ "tls-original", Tls.Model.Original; "tls-variant", Tls.Model.Cf2First ]

(* Replace the first claim's left-hand term with a wrong one; the checker
   must reject with a breadcrumb locating the forged claim. *)
let rec tamper_left = function
  | Sexp.List [ Sexp.Atom "left"; _ ] ->
    Sexp.List [ Sexp.Atom "left"; Sexp.Atom "true" ], true
  | Sexp.Atom _ as a -> a, false
  | Sexp.List xs ->
    let xs, changed =
      List.fold_left
        (fun (acc, ch) x ->
          if ch then x :: acc, ch
          else
            let x', ch' = tamper_left x in
            x' :: acc, ch')
        ([], false) xs
    in
    Sexp.List (List.rev xs), changed

let test_indep_cert_forged_rejected () =
  let r = Lazy.force nsl_indep_l in
  let spec = Nspk.Symbolic.gen_spec Nspk.Lowe_fixed in
  let forged, changed = tamper_left (Indep.certificate r) in
  Alcotest.(check bool) "tamper found a claim" true changed;
  match Indep.check spec forged with
  | Ok _ -> Alcotest.fail "forged certificate accepted"
  | Error crumb ->
    Alcotest.(check bool)
      (Printf.sprintf "breadcrumb locates the pair: %s" crumb)
      true
      (String.length crumb > 0
      && List.exists
           (fun needle ->
             (* substring check, no Str dependency *)
             let nl = String.length needle and cl = String.length crumb in
             let rec at i = i + nl <= cl && (String.sub crumb i nl = needle || at (i + 1)) in
             at 0)
           [ "pair" ])

let test_symmetry_cert_replays () =
  let sym = Nspk.symmetries Nspk.Lowe_fixed in
  let spec = Nspk.Symbolic.gen_spec Nspk.Lowe_fixed in
  match Symmetry.check spec (Symmetry.certificate sym) with
  | Ok n ->
    Alcotest.(check int) "every class replayed" (List.length sym.Symmetry.y_classes) n
  | Error crumb -> Alcotest.fail ("symmetry certificate rejected: " ^ crumb)

(* Smuggle a pinned (asymmetric) constant into a claimed class: some
   transposition now breaks a rule and the checker must say which. *)
let rec smuggle_elem name = function
  | Sexp.List (Sexp.Atom "elems" :: es) ->
    Sexp.List (Sexp.Atom "elems" :: Sexp.Atom name :: es), true
  | Sexp.Atom _ as a -> a, false
  | Sexp.List xs ->
    let xs, changed =
      List.fold_left
        (fun (acc, ch) x ->
          if ch then x :: acc, ch
          else
            let x', ch' = smuggle_elem name x in
            x' :: acc, ch')
        ([], false) xs
    in
    Sexp.List (List.rev xs), changed

let test_symmetry_cert_forged_rejected () =
  let sym = Nspk.symmetries Nspk.Lowe_fixed in
  let spec = Nspk.Symbolic.gen_spec Nspk.Lowe_fixed in
  match sym.Symmetry.y_pinned, sym.Symmetry.y_classes with
  | [], _ | _, [] ->
    Alcotest.fail "expected at least one pinned constant and one class"
  | (pinned, _) :: _, _ ->
    let forged, changed =
      smuggle_elem pinned.Kernel.Signature.name (Symmetry.certificate sym)
    in
    Alcotest.(check bool) "smuggled into a class" true changed;
    (match Symmetry.check spec forged with
    | Ok _ -> Alcotest.fail "forged symmetry certificate accepted"
    | Error crumb ->
      Alcotest.(check bool)
        (Printf.sprintf "breadcrumb non-empty: %s" crumb)
        true
        (String.length crumb > 0))

let qcheck_cases =
  List.map
    (QCheck_alcotest.to_alcotest ?verbose:None ?long:None)
    [ prop_nspk_differential; prop_tls_differential ]

let tests =
  [
    "nsl reduction bar (<= 1/3 states)", `Quick, test_nsl_reduction_bar;
    "nspk attacks preserved", `Quick, test_nspk_attacks_preserved;
    "par_bfs agrees under reduction", `Quick, test_par_bfs_reduction_agrees;
    "canon idempotent", `Quick, test_canon_idempotent;
    "oops disables por", `Quick, test_oops_disables_por;
    "indep cert replays (nsl)", `Quick, test_indep_cert_replays_nsl;
    "indep cert replays (tls both styles)", `Quick, test_indep_cert_replays_tls;
    "indep forged cert rejected", `Quick, test_indep_cert_forged_rejected;
    "symmetry cert replays", `Quick, test_symmetry_cert_replays;
    "symmetry forged cert rejected", `Quick, test_symmetry_cert_forged_rejected;
  ]
  @ qcheck_cases

let suite = "mc-reduction", tests
