(* The hash-consed kernel: interning invariants (maximal sharing, precomputed
   metadata, AC-canonicity flag), the generation-stamped normal-form memo,
   and shared-memo determinism under the sched pool. *)

open Kernel

let nat = Sort.visible "HcNat"
let sg = Signature.create ()
let zero = Signature.declare sg "hc0" [] nat ~attrs:[ Signature.Ctor ]
let succ = Signature.declare sg "hcS" [ nat ] nat ~attrs:[ Signature.Ctor ]
let plus = Signature.declare sg "hcP" [ nat; nat ] nat ~attrs:[]
let union = Signature.declare sg "hcU" [ nat; nat ] nat ~attrs:[ Signature.Ac ]
let pair = Signature.declare sg "hcC" [ nat; nat ] nat ~attrs:[ Signature.Comm ]
let opaque = Signature.declare sg "hcA" [] nat ~attrs:[]

let rec church n = if n <= 0 then Term.const zero else Term.app succ [ church (n - 1) ]

(* ------------------------------------------------------------------ *)
(* Skeletons: a term description that can be built twice, independently,
   so physical equality of the two builds is a real test of interning. *)

type sk =
  | Z
  | V of string
  | S of sk
  | P of sk * sk
  | U of sk * sk
  | C of sk * sk

let rec build = function
  | Z -> Term.const zero
  | V n -> Term.var n nat
  | S a -> Term.app succ [ build a ]
  | P (a, b) -> Term.app plus [ build a; build b ]
  | U (a, b) -> Term.app union [ build a; build b ]
  | C (a, b) -> Term.app pair [ build a; build b ]

let gen_sk =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then
             oneof [ return Z; return (V "X"); return (V "Y") ]
           else
             frequency
               [
                 1, return Z;
                 1, oneof [ return (V "X"); return (V "Y") ];
                 2, map (fun a -> S a) (self (n / 2));
                 2, map2 (fun a b -> P (a, b)) (self (n / 2)) (self (n / 2));
                 3, map2 (fun a b -> U (a, b)) (self (n / 2)) (self (n / 2));
                 2, map2 (fun a b -> C (a, b)) (self (n / 2)) (self (n / 2));
               ]))

let arb_sk = QCheck.make ~print:(fun sk -> Term.to_string (build sk)) gen_sk

let prop_build_interns =
  QCheck.Test.make ~name:"build t == build t (maximal sharing)" ~count:500 arb_sk
    (fun sk ->
      let t1 = build sk and t2 = build sk in
      t1 == t2 && Term.equal t1 t2 && Term.compare t1 t2 = 0
      && Term.hash t1 = Term.hash t2 && Term.id t1 = Term.id t2)

(* Reference recursions for the precomputed fields. *)
let rec size_spec t =
  match Term.view t with
  | Term.Var _ -> 1
  | Term.App (_, args) -> List.fold_left (fun n a -> n + size_spec a) 1 args

let rec depth_spec t =
  match Term.view t with
  | Term.Var _ -> 1
  | Term.App (_, args) -> 1 + List.fold_left (fun n a -> max n (depth_spec a)) 0 args

let rec ground_spec t =
  match Term.view t with
  | Term.Var _ -> false
  | Term.App (_, args) -> List.for_all ground_spec args

let prop_precomputed_fields =
  QCheck.Test.make ~name:"size/depth/is_ground agree with recomputation" ~count:500
    arb_sk (fun sk ->
      let t = build sk in
      Term.size t = size_spec t
      && Term.depth t = depth_spec t
      && Term.is_ground t = ground_spec t)

let prop_subterm_ids_decrease =
  QCheck.Test.make ~name:"children interned before parents (id order)" ~count:500
    arb_sk (fun sk ->
      let t = build sk in
      match Term.view t with
      | Term.Var _ -> true
      | Term.App (_, args) -> List.for_all (fun a -> Term.id a < Term.id t) args)

let prop_ac_idempotent =
  QCheck.Test.make ~name:"Ac.normalize idempotent and flag-consistent" ~count:500
    arb_sk (fun sk ->
      let t = build sk in
      let n = Ac.normalize t in
      Ac.normalize n == n
      && Term.ac_canonical n
      && Term.ac_canonical t = (n == t))

(* Order independence: folding the same multiset of AC arguments in any
   order canonicalizes to the same interned term. *)
let prop_ac_order_independent =
  QCheck.Test.make ~name:"Ac canonical form is order-independent" ~count:300
    QCheck.(list_of_size Gen.(1 -- 6) (int_bound 5))
    (fun ns ->
      let args = List.map church ns in
      let comb l =
        match l with
        | [] -> church 0
        | x :: rest -> List.fold_left (fun acc a -> Term.app union [ acc; a ]) x rest
      in
      let left = comb args in
      let right = comb (List.rev args) in
      Ac.normalize left == Ac.normalize right)

(* ------------------------------------------------------------------ *)
(* Memo behavior *)

let plus_rules () =
  let x = Term.var "X" nat and y = Term.var "Y" nat in
  [
    Rewrite.rule ~label:"hc-plus-z" (Term.app plus [ Term.const zero; y ]) y;
    Rewrite.rule ~label:"hc-plus-s"
      (Term.app plus [ Term.app succ [ x ]; y ])
      (Term.app succ [ Term.app plus [ x; y ] ]);
  ]

let test_memo_hits () =
  let sys = Rewrite.make (plus_rules ()) in
  let t = Term.app plus [ church 8; church 5 ] in
  let n1 = Rewrite.normalize sys t in
  Alcotest.(check bool) "normal form" true (Term.equal n1 (church 13));
  let s1 = Rewrite.memo_stats sys in
  Alcotest.(check bool) "first run misses" true (s1.Rewrite.misses > 0);
  Alcotest.(check bool) "entries cached" true (s1.Rewrite.entries > 0);
  let n2 = Rewrite.normalize sys t in
  let s2 = Rewrite.memo_stats sys in
  Alcotest.(check bool) "second run result shared" true (n1 == n2);
  Alcotest.(check bool) "second run hits" true (s2.Rewrite.hits > s1.Rewrite.hits);
  Alcotest.(check int) "no new misses" s1.Rewrite.misses s2.Rewrite.misses

let test_memo_generation_tamper () =
  (* Bumping the generation must invalidate every cached normal form: the
     lookups that used to hit now miss, though the entries are still in the
     tables. *)
  let sys = Rewrite.make (plus_rules ()) in
  let t = Term.app plus [ church 6; church 6 ] in
  let n1 = Rewrite.normalize sys t in
  ignore (Rewrite.normalize sys t : Term.t);
  let before = Rewrite.memo_stats sys in
  Rewrite.invalidate_memo sys;
  let after_invalidate = Rewrite.memo_stats sys in
  Alcotest.(check int) "generation bumped"
    (before.Rewrite.generation + 1) after_invalidate.Rewrite.generation;
  let n2 = Rewrite.normalize sys t in
  let after = Rewrite.memo_stats sys in
  Alcotest.(check bool) "same normal form recomputed" true (n1 == n2);
  Alcotest.(check bool) "stale entries miss" true
    (after.Rewrite.misses > before.Rewrite.misses);
  Alcotest.(check bool) "entries survived (stale)" true (after.Rewrite.entries > 0)

let test_no_stale_nf_across_branch () =
  (* A branched proof environment adds equations; terms the base system
     considered normal must re-reduce under the branch even though the base
     memo is warm (Spec.branch compiles to Rewrite.extend, which allocates
     a fresh memo). *)
  let a = Term.const opaque in
  let sys = Rewrite.make (plus_rules ()) in
  let t = Term.app plus [ a; church 3 ] in
  let nf_base = Rewrite.normalize sys t in
  (* [a] is opaque: plus cannot reduce it away. *)
  Alcotest.(check bool) "base nf stuck on opaque" true
    (Term.equal nf_base (Term.app plus [ a; church 3 ]));
  let branch =
    Rewrite.extend sys [ Rewrite.rule ~label:"hc-branch-a" a (church 2) ]
  in
  let nf_branch = Rewrite.normalize branch t in
  Alcotest.(check bool) "branch sees through the assumption" true
    (Term.equal nf_branch (church 5));
  (* And the base system is untouched. *)
  Alcotest.(check bool) "base unchanged" true
    (Term.equal (Rewrite.normalize sys t) nf_base)

let test_shared_memo_parallel () =
  (* Parallel workers normalizing through one shared memo must agree with a
     sequential run on a fresh system ("--jobs 1"). *)
  let inputs =
    List.concat_map
      (fun i -> List.map (fun j -> Term.app plus [ church i; church j ]) [ 0; 3; 7; 11 ])
      [ 0; 1; 2; 5; 9; 12 ]
  in
  let seq_sys = Rewrite.make (plus_rules ()) in
  let expected = List.map (Rewrite.normalize seq_sys) inputs in
  let par_sys = Rewrite.make (plus_rules ()) in
  let results =
    Sched.Pool.with_pool ~jobs:4 (fun pool ->
        Sched.Pool.parallel_map pool (Rewrite.normalize par_sys) inputs)
  in
  List.iter2
    (fun e r -> Alcotest.(check bool) "parallel == sequential" true (Term.equal e r))
    expected results;
  let s = Rewrite.memo_stats par_sys in
  Alcotest.(check bool) "shared memo used" true (s.Rewrite.entries > 0)

let test_intern_table_len () =
  (* The intern table is weak, so exact counts are racy (a GC can collect
     entries between two reads).  What must hold: terms we keep alive are
     counted, and re-interning an alive term yields the same record rather
     than a second entry. *)
  let probes =
    List.init 64 (fun i -> Term.var (Printf.sprintf "%%hc-probe-%d" i) nat)
  in
  Alcotest.(check bool) "live terms are counted" true
    (Term.intern_table_len () >= List.length probes);
  List.iteri
    (fun i v ->
      Alcotest.(check bool) "re-intern shares" true
        (Term.var (Printf.sprintf "%%hc-probe-%d" i) nat == v))
    probes

let test_uncached_matches_memoized () =
  let sys = Rewrite.make (plus_rules ()) in
  let t = Term.app plus [ church 9; Term.app plus [ church 4; church 2 ] ] in
  let memo_nf = Rewrite.normalize sys t in
  let uncached_nf = Rewrite.normalize_uncached sys t in
  Alcotest.(check bool) "same nf" true (Term.equal memo_nf uncached_nf);
  (* The uncached path must not have touched the shared memo for [t]'s
     subterms beyond what normalize already stored. *)
  let entries = (Rewrite.memo_stats sys).Rewrite.entries in
  ignore (Rewrite.normalize_uncached sys t : Term.t);
  Alcotest.(check int) "uncached leaves memo alone" entries
    (Rewrite.memo_stats sys).Rewrite.entries

let qcheck_cases =
  List.map
    (QCheck_alcotest.to_alcotest ?verbose:None ?long:None)
    [
      prop_build_interns;
      prop_precomputed_fields;
      prop_subterm_ids_decrease;
      prop_ac_idempotent;
      prop_ac_order_independent;
    ]

let suite =
  ( "hashcons",
    [
      Alcotest.test_case "memo hit accounting" `Quick test_memo_hits;
      Alcotest.test_case "generation tamper invalidates memo" `Quick
        test_memo_generation_tamper;
      Alcotest.test_case "no stale nf across branch" `Quick
        test_no_stale_nf_across_branch;
      Alcotest.test_case "shared memo parallel == sequential" `Quick
        test_shared_memo_parallel;
      Alcotest.test_case "intern table length" `Quick test_intern_table_len;
      Alcotest.test_case "uncached path matches memoized" `Quick
        test_uncached_matches_memoized;
    ]
    @ qcheck_cases )
