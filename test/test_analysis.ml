(* Tests of the lib/analysis spec linter: the five checkers, the
   end-to-end lint report on the deliberately broken fixture, the
   certification of the shipped specs and the generated TLS module, and
   the property that a linter-certified system computes order-independent
   normal forms. *)

open Kernel

let find_file name =
  let candidates =
    [ name; "../" ^ name; "../../" ^ name; "../../../" ^ name;
      "test/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "file %s not found from %s" name (Sys.getcwd ())

let eval_module src name =
  let env = Cafeobj.Eval.create () in
  ignore (Cafeobj.Eval.eval_string env src);
  match Cafeobj.Eval.find_module env name with
  | Some m -> m
  | None -> Alcotest.failf "module %s not elaborated" name

let codes ds = List.map (fun d -> d.Analysis.Diagnostic.code) ds

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let errors_of ds =
  List.filter (fun d -> d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error) ds

(* ------------------------------------------------------------------ *)
(* Termination *)

let test_termination_certifies () =
  let m =
    eval_module
      {|mod TNAT {
          [ TN ]
          op tz : -> TN { ctor } .
          op ts : TN -> TN { ctor } .
          op tplus : TN TN -> TN .
          vars M N : TN .
          eq tplus(tz, N) = N .
          eq tplus(ts(M), N) = ts(tplus(M, N)) .
        }|}
      "TNAT"
  in
  let r = Analysis.Termination.check m in
  Alcotest.(check bool) "certified" true r.Analysis.Termination.certified;
  Alcotest.(check int) "no diagnostics" 0
    (List.length r.Analysis.Termination.diagnostics)

let test_termination_loop () =
  let m =
    eval_module
      {|mod TLOOP {
          [ TL ]
          op la : -> TL { ctor } .
          op lf : TL -> TL .
          var X : TL .
          eq lf(X) = lf(lf(X)) .
        }|}
      "TLOOP"
  in
  let r = Analysis.Termination.check m in
  Alcotest.(check bool) "not certified" false r.Analysis.Termination.certified;
  let errs = errors_of r.Analysis.Termination.diagnostics in
  Alcotest.(check (list string)) "one unoriented" [ "unoriented-rule" ] (codes errs);
  Alcotest.(check bool) "has position" true
    ((List.hd errs).Analysis.Diagnostic.pos <> None)

(* ------------------------------------------------------------------ *)
(* Confluence *)

let test_confluence_unjoinable () =
  let m =
    eval_module
      {|mod COIN {
          [ Coin ]
          op heads : -> Coin { ctor } .
          op tails : -> Coin { ctor } .
          op toss : -> Coin .
          eq toss = heads .
          eq toss = tails .
        }|}
      "COIN"
  in
  let r = Analysis.Confluence.check m in
  Alcotest.(check bool) "not certified" false r.Analysis.Confluence.certified;
  Alcotest.(check bool) "unjoinable reported" true
    (List.mem "unjoinable-pair" (codes (errors_of r.Analysis.Confluence.diagnostics)))

let test_confluence_semantic_join () =
  (* The critical pair of the two [pick] rules diverges into nested
     conditionals in opposite orders — exactly the shape the if-lifted TLS
     rules produce.  The normal forms differ syntactically and only a
     Shannon case split on the conditions identifies them. *)
  let m =
    eval_module
      {|mod CSEM {
          [ CS ]
          op ca : -> CS { ctor } .
          op cb : -> CS { ctor } .
          op prd : CS -> Bool .
          op qrd : CS -> Bool .
          op pick : CS -> CS .
          var X : CS .
          eq pick(X) = if prd(X) then (if qrd(X) then X else ca fi) else (if qrd(X) then ca else cb fi) fi .
          eq pick(X) = if qrd(X) then (if prd(X) then X else ca fi) else (if prd(X) then ca else cb fi) fi .
        }|}
      "CSEM"
  in
  let r = Analysis.Confluence.check m in
  Alcotest.(check bool) "certified" true r.Analysis.Confluence.certified;
  Alcotest.(check bool) "semantic joins counted" true
    (r.Analysis.Confluence.semantic > 0)

(* ------------------------------------------------------------------ *)
(* Sufficient completeness *)

let test_completeness_missing_case () =
  let m =
    eval_module
      {|mod CHALF {
          [ CN ]
          op cz : -> CN { ctor } .
          op cs : CN -> CN { ctor } .
          op chalf : CN -> CN .
          var N : CN .
          eq chalf(cz) = cz .
          eq chalf(cs(cs(N))) = cs(chalf(N)) .
        }|}
      "CHALF"
  in
  let r = Analysis.Completeness.check m in
  let errs = errors_of r.Analysis.Completeness.diagnostics in
  Alcotest.(check (list string)) "one missing pattern" [ "missing-pattern" ]
    (codes errs);
  Alcotest.(check bool) "names the pattern" true
    (contains ~needle:"chalf(cs(cz))" (List.hd errs).Analysis.Diagnostic.message)

let test_completeness_projection_is_info () =
  (* A selector defined on one of two constructors: partial, but every rhs
     is a variable, so the missing case is idiomatic junk — info only. *)
  let m =
    eval_module
      {|mod CSEL {
          [ CB ]
          op leaf : -> CB { ctor } .
          op node : CB -> CB { ctor } .
          op child : CB -> CB .
          var N : CB .
          eq child(node(N)) = N .
        }|}
      "CSEL"
  in
  let r = Analysis.Completeness.check m in
  Alcotest.(check int) "no errors" 0
    (List.length (errors_of r.Analysis.Completeness.diagnostics));
  Alcotest.(check bool) "info missing-pattern present" true
    (List.exists
       (fun d ->
         d.Analysis.Diagnostic.code = "missing-pattern"
         && d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Info)
       r.Analysis.Completeness.diagnostics)

(* ------------------------------------------------------------------ *)
(* Hygiene *)

let hygiene_module =
  {|mod HYG {
      [ HS ]
      op ha : -> HS { ctor } .
      op hf : HS -> HS .
      op hg : HS -> HS .
      var X : HS .
      eq hf(X) = ha .
      eq hf(ha) = hg(ha) .
      eq hg(X) = ha .
      eq hg(X) = ha .
    }|}

let test_hygiene_shadowed_and_duplicate () =
  let m = eval_module hygiene_module "HYG" in
  let ds = (Analysis.Hygiene.check m).Analysis.Hygiene.diagnostics in
  Alcotest.(check bool) "shadowed (different result) is a warning" true
    (List.exists
       (fun d ->
         d.Analysis.Diagnostic.code = "shadowed-rule"
         && d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Warning)
       ds);
  Alcotest.(check bool) "duplicate is an info" true
    (List.exists
       (fun d ->
         d.Analysis.Diagnostic.code = "duplicate-rule"
         && d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Info)
       ds)

let test_hygiene_vacuous_condition () =
  let m =
    eval_module
      {|mod HVAC {
          [ HV ]
          op va : -> HV { ctor } .
          op vp : HV -> Bool .
          op vf : HV -> HV .
          var X : HV .
          ceq vf(X) = va if vp(X) and not(vp(X)) .
        }|}
      "HVAC"
  in
  let ds = (Analysis.Hygiene.check m).Analysis.Hygiene.diagnostics in
  Alcotest.(check bool) "vacuous condition is an error" true
    (List.mem "vacuous-condition" (codes (errors_of ds)))

(* ------------------------------------------------------------------ *)
(* Proof-score coverage *)

let coverage_program complementary =
  Printf.sprintf
    {|mod COV {
        [ CV ]
        op cva : -> CV { ctor } .
        op good : CV -> Bool .
      }
      open COV
      op w : -> CV .
      eq good(w) = true .
      red good(w) .
      close
      open COV
      op w : -> CV .
      eq good(w) = %s .
      red good(w) == %s .
      close|}
    (if complementary then "false" else "true")
    (if complementary then "false" else "true")

let test_coverage_exhaustive () =
  let program = Cafeobj.Parser.parse_string (coverage_program true) in
  let r = Analysis.Coverage.check program in
  Alcotest.(check int) "one group" 1 (List.length r.Analysis.Coverage.groups);
  Alcotest.(check int) "no diagnostics" 0
    (List.length r.Analysis.Coverage.diagnostics)

let test_coverage_inexhaustive () =
  let program = Cafeobj.Parser.parse_string (coverage_program false) in
  let r = Analysis.Coverage.check program in
  Alcotest.(check (list string)) "one non-exhaustive split"
    [ "non-exhaustive-split" ]
    (codes r.Analysis.Coverage.diagnostics)

(* ------------------------------------------------------------------ *)
(* End-to-end lint of the broken fixture *)

let broken_report =
  lazy (Analysis.Lint.run [ Analysis.Lint.File (find_file "fixtures/broken.cafe") ])

let test_fixture_exact_errors () =
  let r = Lazy.force broken_report in
  Alcotest.(check int) "exactly three errors" 3 r.Analysis.Lint.errors;
  let errs = errors_of r.Analysis.Lint.diagnostics in
  Alcotest.(check (list string)) "the three expected codes"
    [ "missing-pattern"; "non-exhaustive-split"; "unoriented-rule" ]
    (List.sort String.compare (codes errs));
  List.iter
    (fun d ->
      Alcotest.(check bool)
        ("error has a position: " ^ d.Analysis.Diagnostic.message)
        true
        (d.Analysis.Diagnostic.pos <> None))
    errs

let test_fixture_json () =
  let json = Analysis.Lint.report_to_json (Lazy.force broken_report) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json contains " ^ needle) true
        (contains ~needle json))
    [
      {|"errors": 3|};
      {|"code": "unoriented-rule"|};
      {|"code": "missing-pattern"|};
      {|"code": "non-exhaustive-split"|};
      {|"terminating": false|};
    ]

let test_lint_only_skip () =
  let file = Analysis.Lint.File (find_file "fixtures/broken.cafe") in
  let opts =
    { Analysis.Lint.default_options with Analysis.Lint.only = [ "termination" ] }
  in
  let r = Analysis.Lint.run ~opts [ file ] in
  Alcotest.(check (list string)) "only termination errors" [ "unoriented-rule" ]
    (codes (errors_of r.Analysis.Lint.diagnostics));
  let opts =
    { Analysis.Lint.default_options with Analysis.Lint.skip = [ "coverage" ] }
  in
  let r = Analysis.Lint.run ~opts [ file ] in
  Alcotest.(check int) "coverage skipped" 2 r.Analysis.Lint.errors;
  Alcotest.check_raises "unknown checker rejected"
    (Invalid_argument
       "unknown checker nope (expected one of termination, confluence, \
        completeness, hygiene, coverage, secrecy, flow, independence)")
    (fun () ->
      ignore
        (Analysis.Lint.run
           ~opts:{ Analysis.Lint.default_options with Analysis.Lint.only = [ "nope" ] }
           [ file ]))

(* ------------------------------------------------------------------ *)
(* Certification of the shipped specs and the generated TLS module *)

let test_certify_shipped_specs () =
  let r =
    Analysis.Lint.run
      [
        Analysis.Lint.File (find_file "specs/peano.cafe");
        Analysis.Lint.File (find_file "specs/lock.cafe");
      ]
  in
  Alcotest.(check int) "no errors" 0 r.Analysis.Lint.errors;
  Alcotest.(check int) "no warnings" 0 r.Analysis.Lint.warnings;
  List.iter
    (fun m ->
      Alcotest.(check (option bool))
        (m.Analysis.Lint.m_name ^ " terminating")
        (Some true) m.Analysis.Lint.m_terminating;
      Alcotest.(check (option bool))
        (m.Analysis.Lint.m_name ^ " joinable")
        (Some true) m.Analysis.Lint.m_joinable)
    r.Analysis.Lint.modules

let test_certify_generated_tls () =
  let r =
    (* independence over all 378 TLS action pairs costs ~40 s and is
       exercised (focused, certified and replayed) by the mc-reduction
       suite; this test certifies termination/confluence. *)
    Analysis.Lint.run
      ~opts:
        {
          Analysis.Lint.default_options with
          Analysis.Lint.skip = [ "independence" ];
        }
      [
        Analysis.Lint.Generated
          { label = "generated:tls"; spec = Tls.Model.spec Tls.Model.Original };
      ]
  in
  Alcotest.(check int) "no errors" 0 r.Analysis.Lint.errors;
  match r.Analysis.Lint.modules with
  | [ m ] ->
    Alcotest.(check (option bool)) "terminating" (Some true) m.Analysis.Lint.m_terminating;
    Alcotest.(check (option bool)) "joinable" (Some true) m.Analysis.Lint.m_joinable;
    Alcotest.(check bool) "thousands of pairs actually checked" true
      (match m.Analysis.Lint.m_pairs with Some n -> n > 1000 | None -> false)
  | ms -> Alcotest.failf "expected one module, got %d" (List.length ms)

(* ------------------------------------------------------------------ *)
(* Property: a certified system has order-independent normal forms.

   The linter's certificate is "terminating (LPO) + every critical pair
   joinable"; by Newman's lemma such a system is confluent, so normalize
   must compute the same normal form whatever order the rules are tried
   in.  Random ground systems keep the certificate checkable directly. *)

let psort = Sort.visible "LintProp"
let psig = Signature.create ()
let pa = Signature.declare psig "lint-a" [] psort ~attrs:[]
let pb = Signature.declare psig "lint-b" [] psort ~attrs:[]
let pf = Signature.declare psig "lint-f" [ psort ] psort ~attrs:[]
let pg = Signature.declare psig "lint-g" [ psort; psort ] psort ~attrs:[]

let gen_pterm =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then oneofl [ Term.const pa; Term.const pb ]
        else
          frequency
            [
              1, oneofl [ Term.const pa; Term.const pb ];
              2, map (fun t -> Term.app pf [ t ]) (self (n / 2));
              2, map2 (fun a b -> Term.app pg [ a; b ]) (self (n / 2)) (self (n / 2));
            ]))

let gen_system =
  QCheck.Gen.(
    pair
      (list_size (1 -- 3) (pair gen_pterm gen_pterm))
      (list_size (return 4) gen_pterm))

let print_system (eqs, terms) =
  String.concat "; "
    (List.map (fun (l, r) -> Term.to_string l ^ " -> " ^ Term.to_string r) eqs)
  ^ " @ "
  ^ String.concat ", " (List.map Term.to_string terms)

let certified_normal_forms_agree (eqs, terms) =
  match
    List.mapi
      (fun i (l, r) -> Rewrite.rule ~label:(Printf.sprintf "prop%d" i) l r)
      eqs
  with
  | exception Invalid_argument _ -> true
  | rules -> (
    let res = Order.search_precedence ~ops:[ pa; pb; pf; pg ] rules in
    if res.Order.unoriented <> [] then true
    else
      let nf sys t =
        try Some (Rewrite.normalize sys t)
        with Rewrite.Limit_exceeded _ -> None
      in
      let sys = Rewrite.make rules in
      Rewrite.set_step_limit sys 50_000;
      let joinable =
        List.for_all
          (fun (o : Completion.overlap) ->
            match nf sys o.Completion.left, nf sys o.Completion.right with
            | Some l, Some r -> Term.equal l r
            | _ -> false)
          (Completion.all_critical_pairs rules)
      in
      if not joinable then true
      else
        (* certified: any rule order must give the same normal forms *)
        let reordered =
          [ Rewrite.make (List.rev rules);
            Rewrite.make (match rules with [] -> [] | r :: rest -> rest @ [ r ]) ]
        in
        List.iter (fun s -> Rewrite.set_step_limit s 50_000) reordered;
        List.for_all
          (fun t ->
            let reference = nf sys t in
            reference <> None
            && List.for_all
                 (fun s ->
                   match reference, nf s t with
                   | Some a, Some b -> Term.equal a b
                   | _ -> false)
                 reordered)
          terms)

let prop_certified_order_independent =
  QCheck.Test.make ~name:"linter-certified systems are order-independent"
    ~count:300
    (QCheck.make ~print:print_system gen_system)
    certified_normal_forms_agree

let qcheck_cases =
  List.map
    (QCheck_alcotest.to_alcotest ?verbose:None ?long:None)
    [ prop_certified_order_independent ]

let tests =
  [
    "termination certifies", `Quick, test_termination_certifies;
    "termination flags loop", `Quick, test_termination_loop;
    "confluence flags unjoinable", `Quick, test_confluence_unjoinable;
    "confluence semantic join", `Quick, test_confluence_semantic_join;
    "completeness missing case", `Quick, test_completeness_missing_case;
    "completeness projection info", `Quick, test_completeness_projection_is_info;
    "hygiene shadowed/duplicate", `Quick, test_hygiene_shadowed_and_duplicate;
    "hygiene vacuous condition", `Quick, test_hygiene_vacuous_condition;
    "coverage exhaustive", `Quick, test_coverage_exhaustive;
    "coverage inexhaustive", `Quick, test_coverage_inexhaustive;
    "fixture exact errors", `Quick, test_fixture_exact_errors;
    "fixture json", `Quick, test_fixture_json;
    "lint only/skip", `Quick, test_lint_only_skip;
    "shipped specs certified", `Quick, test_certify_shipped_specs;
    "generated TLS certified", `Quick, test_certify_generated_tls;
  ]
  @ qcheck_cases

let suite = "analysis", tests
