(* End-to-end tests of the OTS framework on a small mutual-exclusion
   protocol: a test-and-set lock.

   Observers:   lock : H -> Bool        cs : H × Pid -> Bool
   Transitions: enter(i)  (condition: not lock;  effects: lock := true,
                                                  cs(i) := true)
                leave(i)  (condition: cs(i);     effects: lock := false,
                                                  cs(i) := false)

   Invariants:  mutex(i,j): cs(i) and cs(j) implies i = j
                holds(i):   cs(i) implies lock

   [mutex] needs [holds] as a strengthening hint for the [enter] case —
   exactly the SIH mechanism of Section 5.2 of the paper. *)

open Kernel
open Core

let pid = Sort.visible "Pid"
let proto = Sort.hidden "LockState"

let data =
  let m = Cafeobj.Spec.create "LOCK-DATA" in
  ignore (Cafeobj.Spec.declare_sort m "Pid");
  m

let spid name = Term.var name pid
let svar = Term.var "S" proto

(* Observer and action operators. *)
let sg = Signature.create ()
let lock_op = Signature.declare sg "lock" [ proto ] Sort.bool ~attrs:[]
let cs_op = Signature.declare sg "cs" [ proto; pid ] Sort.bool ~attrs:[]
let enter_op = Signature.declare sg "enter" [ proto; pid ] proto ~attrs:[]
let leave_op = Signature.declare sg "leave" [ proto; pid ] proto ~attrs:[]
let init_op = Signature.declare sg "lock-init" [] proto ~attrs:[]

let lock_obs : Ots.observer =
  { obs_op = lock_op; obs_params = []; obs_result = Sort.bool }

let cs_obs : Ots.observer =
  { obs_op = cs_op; obs_params = [ "I", pid ]; obs_result = Sort.bool }

let lock_of s = Term.app lock_op [ s ]
let cs_of s i = Term.app cs_op [ s; i ]

let enter_action : Ots.action =
  {
    act_op = enter_op;
    act_params = [ "J", pid ];
    act_cond = Term.not_ (lock_of svar);
    act_effects =
      [
        { eff_observer = lock_obs; eff_value = Term.tt };
        {
          eff_observer = cs_obs;
          eff_value =
            Term.ite (Term.eq (spid "I") (spid "J")) Term.tt
              (cs_of svar (spid "I"));
        };
      ];
  }

let leave_action : Ots.action =
  {
    act_op = leave_op;
    act_params = [ "J", pid ];
    act_cond = cs_of svar (spid "J");
    act_effects =
      [
        { eff_observer = lock_obs; eff_value = Term.ff };
        {
          eff_observer = cs_obs;
          eff_value =
            Term.ite (Term.eq (spid "I") (spid "J")) Term.ff
              (cs_of svar (spid "I"));
        };
      ];
  }

let lock_ots : Ots.t =
  {
    ots_name = "LOCK";
    hidden = proto;
    init = init_op;
    observers = [ lock_obs; cs_obs ];
    actions = [ enter_action; leave_action ];
    init_equations =
      [
        Term.app lock_op [ Term.const init_op ], Term.ff;
        Term.app cs_op [ Term.const init_op; spid "I" ], Term.ff;
      ];
  }

let holds_inv : Induction.invariant =
  {
    inv_name = "holds";
    inv_params = [ "I", pid ];
    inv_body =
      (fun s args ->
        match args with
        | [ i ] -> Term.implies (cs_of s i) (lock_of s)
        | _ -> assert false);
  }

let mutex_inv : Induction.invariant =
  {
    inv_name = "mutex";
    inv_params = [ "I", pid; "J", pid ];
    inv_body =
      (fun s args ->
        match args with
        | [ i; j ] ->
          Term.implies (Term.and_ (cs_of s i) (cs_of s j)) (Term.eq i j)
        | _ -> assert false);
  }

(* Simultaneous induction: [mutex] needs [holds] at the [enter] case (a
   process can only enter when the lock is free, so nobody is inside), and
   [holds] needs [mutex] at the [leave] case (the leaver is the only one
   inside, so dropping the lock strands nobody). *)
let mutex_hints : Induction.hint list =
  [
    {
      hint_action = "enter";
      hint_instances =
        (fun s ~inv_args ~act_args ->
          ignore act_args;
          List.map (fun i -> holds_inv.inv_body s [ i ]) inv_args);
    };
  ]

let holds_hints : Induction.hint list =
  [
    {
      hint_action = "leave";
      hint_instances =
        (fun s ~inv_args ~act_args ->
          List.concat_map
            (fun i ->
              List.map (fun j -> mutex_inv.inv_body s [ i; j ]) act_args)
            inv_args);
    };
  ]

let make_env () =
  let spec = Specgen.generate ~data lock_ots in
  Induction.make_env ~spec ~ots:lock_ots ()

let check_proved name (r : Induction.result) =
  if not r.Induction.proved then
    Alcotest.failf "%s: %a" name
      (fun ppf -> Report.pp_result ppf)
      r

(* ------------------------------------------------------------------ *)

let test_ots_check_passes () =
  Ots.check lock_ots;
  Alcotest.(check pass) "well-formed" () ()

let test_ots_check_catches_bad_effect () =
  let bad =
    {
      lock_ots with
      actions =
        [
          {
            enter_action with
            act_effects =
              [
                {
                  Ots.eff_observer = lock_obs;
                  eff_value = Term.eq (spid "Z") (spid "Z");
                };
              ];
          };
        ];
    }
  in
  Alcotest.(check bool) "free variable rejected" true
    (try
       Ots.check bad;
       false
     with Invalid_argument _ -> true)

let test_successor_equation_shape () =
  let lhs, rhs = Specgen.successor_equation lock_ots enter_action lock_obs in
  Alcotest.(check string)
    "lhs" "lock(enter(S:LockState, J:Pid))" (Term.to_string lhs);
  Alcotest.(check bool) "rhs guarded" true
    (match Term.view rhs with Term.App (o, _) -> Signature.Builtin.is_if o | _ -> false)

let test_reduction_of_concrete_run () =
  let env = make_env () in
  (* Build p1 entering from init, then observe.  The constructor equality
     theory must be in place before the system is first built. *)
  let data_spec = data in
  let p1 = Term.const (Cafeobj.Spec.declare_op data_spec "p1" [] pid ~attrs:[ Signature.Ctor ]) in
  let p2 = Term.const (Cafeobj.Spec.declare_op data_spec "p2" [] pid ~attrs:[ Signature.Ctor ]) in
  Cafeobj.Datatype.finalize_sort data_spec pid;
  let sys = Induction.system env in
  let s1 = Term.app enter_op [ Term.const init_op; p1 ] in
  Alcotest.(check string) "lock set" "true"
    (Term.to_string (Rewrite.normalize sys (Term.app lock_op [ s1 ])));
  Alcotest.(check string) "p1 in cs" "true"
    (Term.to_string (Rewrite.normalize sys (Term.app cs_op [ s1; p1 ])));
  Alcotest.(check string) "p2 not in cs" "false"
    (Term.to_string (Rewrite.normalize sys (Term.app cs_op [ s1; p2 ])))

let test_holds_invariant () =
  let env = make_env () in
  check_proved "holds" (Induction.prove_invariant env ~hints:holds_hints holds_inv)

let test_holds_needs_hint () =
  let env = make_env () in
  let r = Induction.prove_invariant env ~hints:[] holds_inv in
  Alcotest.(check bool) "fails without SIH" false r.Induction.proved;
  (* The refutation trail must mention two distinct processes both in the
     critical section -- the unreachable state excluded by [mutex]. *)
  let leave =
    List.find
      (fun (c : Induction.case_result) -> c.Induction.case_name = "leave")
      r.Induction.cases
  in
  match leave.Induction.outcome with
  | Prover.Refuted { trail; _ } ->
    Alcotest.(check bool) "trail nonempty" true (trail <> [])
  | _ -> Alcotest.fail "expected a refutation for leave"

let test_mutex_needs_hint () =
  let env = make_env () in
  let r = Induction.prove_invariant env ~hints:[] mutex_inv in
  Alcotest.(check bool) "fails without SIH" false r.Induction.proved

let test_mutex_with_hint () =
  let env = make_env () in
  check_proved "mutex" (Induction.prove_invariant env ~hints:mutex_hints mutex_inv)

let test_base_case_only () =
  let env = make_env () in
  let c = Induction.base_case env mutex_inv in
  Alcotest.(check bool) "init proved" true
    (match c.Induction.outcome with Prover.Proved _ -> true | _ -> false)

let test_report_summary () =
  let env = make_env () in
  let results =
    [
      Induction.prove_invariant env ~hints:holds_hints holds_inv;
      Induction.prove_invariant env ~hints:mutex_hints mutex_inv;
    ]
  in
  let s = Report.summarize results in
  Alcotest.(check int) "invariants" 2 s.Report.invariants_total;
  Alcotest.(check int) "all proved" 2 s.Report.invariants_proved;
  Alcotest.(check int) "cases = 2 * (init + 2 actions)" 6 s.Report.cases_total;
  Alcotest.(check bool) "splits happened" true (s.Report.total_splits > 0);
  Alcotest.(check bool) "no failures" true (Report.failures results = [])

let test_refutation_of_false_invariant () =
  let env = make_env () in
  (* "nobody is ever in the critical section" is false after enter. *)
  let bogus : Induction.invariant =
    {
      inv_name = "bogus";
      inv_params = [ "I", pid ];
      inv_body =
        (fun s args ->
          match args with
          | [ i ] -> Term.not_ (cs_of s i)
          | _ -> assert false);
    }
  in
  let r = Induction.prove_invariant env ~hints:[] bogus in
  Alcotest.(check bool) "not proved" false r.Induction.proved;
  let refuted =
    List.exists
      (fun (c : Induction.case_result) ->
        match c.Induction.outcome with Prover.Refuted _ -> true | _ -> false)
      r.Induction.cases
  in
  Alcotest.(check bool) "some case refuted" true refuted

let tests =
  [
    "ots check passes", `Quick, test_ots_check_passes;
    "ots check catches bad effect", `Quick, test_ots_check_catches_bad_effect;
    "successor equation shape", `Quick, test_successor_equation_shape;
    "concrete run reduces", `Quick, test_reduction_of_concrete_run;
    "holds invariant proved", `Quick, test_holds_invariant;
    "holds fails without hint", `Quick, test_holds_needs_hint;
    "mutex fails without hint", `Quick, test_mutex_needs_hint;
    "mutex proved with hint", `Quick, test_mutex_with_hint;
    "base case only", `Quick, test_base_case_only;
    "report summary", `Quick, test_report_summary;
    "false invariant refuted", `Quick, test_refutation_of_false_invariant;
  ]

let suite = "core", tests
