(* Tests of the work-stealing pool (lib/sched) and its integration with the
   verification campaign: determinism across pool sizes, exception
   propagation, and deadlock-freedom of nested submission. *)

open Sched

(* ------------------------------------------------------------------ *)
(* Chan *)

let test_chan_fifo () =
  let ch = Chan.create () in
  List.iter (Chan.send ch) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Chan.length ch);
  let recv1 = Chan.try_recv ch in
  let recv2 = Chan.try_recv ch in
  let recv3 = Chan.try_recv ch in
  let recv4 = Chan.try_recv ch in
  let received = [ recv1; recv2; recv3; recv4 ] in
  Alcotest.(check (list (option int)))
    "fifo order" [ Some 1; Some 2; Some 3; None ] received

let test_chan_close () =
  let ch = Chan.create () in
  Chan.send ch "a";
  Chan.close ch;
  Alcotest.check_raises "send after close" Chan.Closed (fun () ->
      Chan.send ch "b");
  Alcotest.(check (option string)) "drains" (Some "a") (Chan.recv ch);
  Alcotest.(check (option string)) "then none" None (Chan.recv ch)

let test_chan_cross_domain () =
  let ch = Chan.create () in
  let consumer =
    Domain.spawn (fun () ->
        let rec drain acc =
          match Chan.recv ch with
          | Some v -> drain (v :: acc)
          | None -> List.rev acc
        in
        drain [])
  in
  List.iter (Chan.send ch) (List.init 100 Fun.id);
  Chan.close ch;
  Alcotest.(check (list int))
    "all received in order"
    (List.init 100 Fun.id)
    (Domain.join consumer)

(* ------------------------------------------------------------------ *)
(* Task *)

exception Boom of string

let test_task_fill () =
  let t = Task.create () in
  Alcotest.(check bool) "unresolved" false (Task.is_resolved t);
  Alcotest.(check (option int)) "poll pending" None (Task.poll t);
  Task.fill t 42;
  Alcotest.(check (option int)) "poll done" (Some 42) (Task.poll t);
  Alcotest.(check int) "wait" 42 (Task.wait t);
  Alcotest.check_raises "double fill" (Invalid_argument "Sched.Task: already resolved")
    (fun () -> Task.fill t 0)

let test_task_exn () =
  let t = Task.of_fun (fun () -> raise (Boom "task")) in
  Alcotest.check_raises "re-raised at poll" (Boom "task") (fun () ->
      ignore (Task.poll t))

(* ------------------------------------------------------------------ *)
(* Pool basics *)

let test_parallel_map_order () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let xs = List.init 200 Fun.id in
  (* uneven workloads, so completion order differs from submission order *)
  let f n =
    let rec spin k acc = if k = 0 then acc else spin (k - 1) (acc + k) in
    ignore (spin ((n mod 7) * 1000) 0);
    n * n
  in
  Alcotest.(check (list int))
    "same as List.map" (List.map f xs)
    (Pool.parallel_map pool f xs)

let test_parallel_filter_map () =
  Pool.with_pool ~jobs:2 @@ fun pool ->
  Alcotest.(check (list int))
    "evens doubled" [ 0; 4; 8; 12 ]
    (Pool.parallel_filter_map pool
       (fun n -> if n mod 2 = 0 then Some (2 * n) else None)
       (List.init 8 Fun.id))

let test_exception_propagation () =
  Pool.with_pool ~jobs:2 @@ fun pool ->
  Alcotest.check_raises "first failing index wins" (Boom "3") (fun () ->
      ignore
        (Pool.parallel_map pool
           (fun n ->
             if n >= 3 then raise (Boom (string_of_int n));
             n)
           (List.init 8 Fun.id)));
  (* the pool survives a failed batch *)
  Alcotest.(check int) "pool still works" 7 (Pool.run pool (fun () -> 7))

let test_nested_no_deadlock () =
  (* More in-flight parents than domains: every parent blocks on children
     that can only run if awaiting helps. *)
  Pool.with_pool ~jobs:2 @@ fun pool ->
  let result =
    Pool.parallel_map pool
      (fun i ->
        let inner =
          Pool.parallel_map pool (fun j -> (i * 10) + j) (List.init 8 Fun.id)
        in
        List.fold_left ( + ) 0 inner)
      (List.init 8 Fun.id)
  in
  Alcotest.(check (list int))
    "nested sums"
    (List.init 8 (fun i -> (i * 80) + 28))
    result

let test_single_domain_pool () =
  (* jobs = 1: zero workers; everything runs on the caller inside await. *)
  Pool.with_pool ~jobs:1 @@ fun pool ->
  let result =
    Pool.parallel_map pool
      (fun i -> Pool.run pool (fun () -> i + 1))
      (List.init 5 Fun.id)
  in
  Alcotest.(check (list int)) "nested on one domain" [ 1; 2; 3; 4; 5 ] result

let test_deadlock_detected () =
  (* Awaiting a task nobody can resolve on a zero-worker pool must raise,
     not hang. *)
  Pool.with_pool ~jobs:1 @@ fun pool ->
  Alcotest.check_raises "detected" Pool.Deadlock (fun () ->
      ignore (Pool.await pool (Task.create () : unit Task.t)))

let test_shutdown_rejects () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Sched.Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit pool (fun () -> ())))

(* ------------------------------------------------------------------ *)
(* Campaign determinism: the full 18-invariant campaign must produce
   byte-identical results — statistics included — whatever the pool size. *)

let outcome_sig (o : Core.Prover.outcome) =
  let stats_sig (s : Core.Prover.stats) =
    ( s.Core.Prover.splits,
      s.Core.Prover.max_depth_reached,
      s.Core.Prover.rewrite_steps,
      s.Core.Prover.vacuous )
  in
  match o with
  | Core.Prover.Proved s -> "proved", stats_sig s
  | Core.Prover.Refuted { trail; stats } ->
    Printf.sprintf "refuted/%d" (List.length trail), stats_sig stats
  | Core.Prover.Unknown { reason; stats; _ } -> "unknown:" ^ reason, stats_sig stats

let result_sig (r : Core.Induction.result) =
  ( r.Core.Induction.res_invariant,
    r.Core.Induction.proved,
    List.map
      (fun (c : Core.Induction.case_result) ->
        c.Core.Induction.case_name, outcome_sig c.Core.Induction.outcome)
      r.Core.Induction.cases )

let summary_sig (s : Core.Report.summary) =
  (* everything except wall-clock *)
  ( s.Core.Report.invariants_total,
    s.Core.Report.invariants_proved,
    s.Core.Report.cases_total,
    s.Core.Report.cases_proved,
    s.Core.Report.total_splits,
    s.Core.Report.total_rewrite_steps )

let campaign ~jobs =
  Pool.with_pool ~jobs @@ fun pool ->
  Proofs.Tls_invariants.campaign ~pool Tls.Model.Original

let test_campaign_jobs_equivalence () =
  let r1 = campaign ~jobs:1 in
  let r4 = campaign ~jobs:4 in
  Alcotest.(check int) "all proved (jobs 4)" 0
    (List.length (Core.Report.failures r4));
  Alcotest.(check bool) "identical per-case results" true
    (List.map result_sig r1 = List.map result_sig r4);
  Alcotest.(check bool) "identical summaries" true
    (summary_sig (Core.Report.summarize r1)
    = summary_sig (Core.Report.summarize r4))

let tests =
  [
    "chan fifo", `Quick, test_chan_fifo;
    "chan close", `Quick, test_chan_close;
    "chan cross-domain", `Quick, test_chan_cross_domain;
    "task fill/wait", `Quick, test_task_fill;
    "task exception", `Quick, test_task_exn;
    "parallel_map order", `Quick, test_parallel_map_order;
    "parallel_filter_map", `Quick, test_parallel_filter_map;
    "exception propagation", `Quick, test_exception_propagation;
    "nested no deadlock", `Quick, test_nested_no_deadlock;
    "single-domain pool", `Quick, test_single_domain_pool;
    "deadlock detected", `Quick, test_deadlock_detected;
    "shutdown rejects submit", `Quick, test_shutdown_rejects;
    "campaign jobs equivalence", `Slow, test_campaign_jobs_equivalence;
  ]

let suite = "sched", tests
